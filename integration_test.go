package ptemagnet_test

import (
	"testing"

	"ptemagnet"
	"ptemagnet/internal/arch"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/physmem"
	"ptemagnet/internal/vm"
	"ptemagnet/internal/workload"
)

// TestIntegrationFrameConservation runs a full colocated machine under every
// policy and checks that guest-physical frames are exactly accounted for:
// used frames == page-table nodes + user pages + live-reservation pages.
func TestIntegrationFrameConservation(t *testing.T) {
	for _, policy := range []guestos.AllocPolicy{
		guestos.PolicyDefault, guestos.PolicyPTEMagnet, guestos.PolicyCAPaging, guestos.PolicyTHP,
	} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			cfg := vm.DefaultConfig()
			cfg.HostMemBytes = 128 << 20
			cfg.GuestMemBytes = 64 << 20
			cfg.Policy = policy
			cfg.Seed = 5
			m, err := vm.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.AddTask(workload.NewXZ(workload.SpecConfig{
				FootprintBytes: 6 << 20, Accesses: 30_000, Seed: 5}), vm.RolePrimary); err != nil {
				t.Fatal(err)
			}
			if _, err := m.AddTask(workload.NewObjdet(workload.CorunnerConfig{
				FootprintBytes: 4 << 20, Seed: 6}), vm.RoleCorunner); err != nil {
				t.Fatal(err)
			}
			if err := m.Run(vm.RunOptions{}); err != nil {
				t.Fatal(err)
			}
			mem := m.Guest().Memory()
			user := mem.CountKind(physmem.KindUser)
			pt := mem.CountKind(physmem.KindPageTable)
			reserved := mem.CountKind(physmem.KindReserved)
			if user+pt+reserved != mem.UsedFrames() {
				t.Errorf("frames unaccounted: user %d + pt %d + reserved %d != used %d",
					user, pt, reserved, mem.UsedFrames())
			}
			// RSS across processes matches user frames net of COW sharing
			// (no fork here, so exactly).
			var rss uint64
			for _, p := range m.Guest().Processes() {
				rss += p.RSS()
			}
			if rss != user {
				t.Errorf("sum RSS %d != user frames %d", rss, user)
			}
		})
	}
}

// TestIntegrationTranslationCoherence verifies that after a full run every
// mapped guest page translates through the nested machinery to the frame
// the host page table holds for its guest-physical address.
func TestIntegrationTranslationCoherence(t *testing.T) {
	cfg := vm.DefaultConfig()
	cfg.HostMemBytes = 128 << 20
	cfg.GuestMemBytes = 64 << 20
	cfg.Policy = guestos.PolicyPTEMagnet
	cfg.Seed = 9
	m, err := vm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	task, err := m.AddTask(workload.NewPagerank(workload.GraphConfig{
		DatasetBytes: 4 << 20, Accesses: 20_000, Seed: 9}), vm.RolePrimary)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(vm.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	proc := task.Process()
	checked := 0
	proc.PageTable().ForEachMapped(func(va arch.VirtAddr, gpa arch.PhysAddr, _ pagetable.Flags) bool {
		hpaFromHost, ok := m.HostVM().Translate(gpa)
		if !ok {
			// Mapped but never accessed through the walker (possible for
			// pages the workload only faulted): skip.
			return true
		}
		out := m.Walker().Translate(0, proc.ASID(), proc.PageTable(), va, false)
		if !out.Ok {
			t.Errorf("va %#x mapped but walker failed: %+v", uint64(va), out)
			return false
		}
		if out.HPA.PageBase() != hpaFromHost.PageBase() {
			t.Errorf("va %#x: walker %#x != host PT %#x", uint64(va), out.HPA, hpaFromHost)
			return false
		}
		checked++
		return true
	})
	if checked < 500 {
		t.Errorf("only %d pages checked", checked)
	}
}

// TestIntegrationDeterminism: identical scenarios produce identical results
// bit for bit — the property that lets seeds stand in for repeat runs.
func TestIntegrationDeterminism(t *testing.T) {
	run := func() ptemagnet.ScenarioResult {
		r, err := ptemagnet.RunScenario(ptemagnet.Scenario{
			Benchmark: "omnetpp", Corunners: []string{"objdet", "pyaes"},
			Policy: ptemagnet.PolicyPTEMagnet,
			Scale:  ptemagnet.QuickScale(), Seed: 33,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Task.Cycles != b.Task.Cycles || a.Task.Accesses != b.Task.Accesses {
		t.Errorf("cycles differ: %d vs %d", a.Task.Cycles, b.Task.Cycles)
	}
	if a.Walk != b.Walk {
		t.Errorf("walk stats differ:\n%+v\n%+v", a.Walk, b.Walk)
	}
	if a.Task.Frag.Mean != b.Task.Frag.Mean {
		t.Errorf("fragmentation differs: %f vs %f", a.Task.Frag.Mean, b.Task.Frag.Mean)
	}
}
