// Package ptemagnet is a complete, simulation-backed reproduction of
// "PTEMagnet: Fine-Grained Physical Memory Reservation for Faster Page
// Walks in Public Clouds" (Margaritov, Ustiugov, Shahab, Grot — ASPLOS
// 2021, DOI 10.1145/3445814.3446704).
//
// The paper's contribution is a guest-kernel memory allocator that prevents
// guest-physical fragmentation under VM colocation by eagerly reserving
// aligned eight-page groups on the first page fault to each 32KB virtual
// region, which packs the corresponding *host* page-table entries into
// single cache blocks and shortens nested (2D) page walks.
//
// This library implements that allocator in full — the Page Reservation
// Table (PaRT), the reservation/reclamation life cycle, fork semantics, and
// the cgroup-style enable threshold — together with every substrate the
// paper's evaluation depends on, built from scratch: a Linux-style buddy
// allocator, guest and host kernels with demand paging, x86-64 four-level
// page tables materialized in simulated physical memory, a nested page
// walker with TLBs and page-walk caches, a cache hierarchy, and synthetic
// stand-ins for the paper's benchmarks and co-runners.
//
// Three entry levels, lowest to highest:
//
//   - NewPaRT gives the bare reservation table, the paper's §4 data
//     structure, usable against any frame allocator.
//   - NewMachine assembles the full simulated platform (host + VM + guest
//     kernel + caches + nested walker) for custom experiments.
//   - RunScenario / the Run* experiment functions reproduce the paper's
//     tables and figures (see EXPERIMENTS.md).
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory.
package ptemagnet

import (
	"context"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/cache"
	"ptemagnet/internal/core"
	"ptemagnet/internal/engine"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/nested"
	"ptemagnet/internal/sim"
	"ptemagnet/internal/trace"
	"ptemagnet/internal/vm"
	"ptemagnet/internal/workload"
)

// Dimension distinguishes the guest and host page tables of a nested walk.
type Dimension = nested.Dimension

// Walk dimensions.
const (
	// DimGuest is the guest page table.
	DimGuest = nested.DimGuest
	// DimHost is the host page table — the one PTEMagnet defragments.
	DimHost = nested.DimHost
)

// Address and geometry types.
type (
	// VirtAddr is a guest-virtual address.
	VirtAddr = arch.VirtAddr
	// PhysAddr is a physical address (guest- or host-physical by context).
	PhysAddr = arch.PhysAddr
)

// Geometry constants re-exported for callers of the low-level API.
const (
	// PageSize is the base page size (4KB).
	PageSize = arch.PageSize
	// GroupPages is the paper's reservation granularity: eight pages,
	// whose leaf PTEs fill exactly one 64-byte cache block.
	GroupPages = arch.GroupPages
	// GroupBytes is the reservation span (32KB).
	GroupBytes = arch.GroupBytes
)

// The paper's primary contribution: the Page Reservation Table.
type (
	// PaRT is the per-process Page Reservation Table (§4.2).
	PaRT = core.PaRT
	// PaRTConfig parameterizes group size and locking granularity.
	PaRTConfig = core.Config
	// Reservation is one live eight-page reservation.
	Reservation = core.Reservation
	// PaRTStats counts reservation life-cycle events.
	PaRTStats = core.Stats
	// FaultResult describes how a PaRT served a fault.
	FaultResult = core.FaultResult
)

// PaRT fault outcomes.
const (
	// FaultNewReservation: a fresh group was reserved.
	FaultNewReservation = core.FaultNewReservation
	// FaultReservationHit: served from an existing reservation with no
	// buddy-allocator call.
	FaultReservationHit = core.FaultReservationHit
	// FaultNoMemory: group allocation failed; fall back to single pages.
	FaultNoMemory = core.FaultNoMemory
)

// NewPaRT creates an empty Page Reservation Table.
func NewPaRT(cfg PaRTConfig) *PaRT { return core.New(cfg) }

// DefaultPaRTConfig returns the paper's design point: 8-page groups,
// fine-grained per-node locking.
func DefaultPaRTConfig() PaRTConfig { return core.DefaultConfig() }

// Guest kernel (the layer the paper patches).
type (
	// GuestKernel simulates the guest Linux VM subsystem.
	GuestKernel = guestos.Kernel
	// GuestConfig configures it, including the allocator policy.
	GuestConfig = guestos.Config
	// Process is one guest process.
	Process = guestos.Process
	// AllocPolicy selects the fault-time allocator.
	AllocPolicy = guestos.AllocPolicy
)

// Allocator policies.
const (
	// PolicyDefault is the stock Linux page-at-a-time buddy path.
	PolicyDefault = guestos.PolicyDefault
	// PolicyPTEMagnet is the paper's reservation-based path.
	PolicyPTEMagnet = guestos.PolicyPTEMagnet
	// PolicyCAPaging is the best-effort contiguity baseline from the
	// paper's related work, for comparison experiments.
	PolicyCAPaging = guestos.PolicyCAPaging
	// PolicyTHP is a transparent-huge-pages baseline (the §2.3 "big
	// hammer" the paper argues clouds avoid), for comparison experiments.
	PolicyTHP = guestos.PolicyTHP
)

// NewGuestKernel boots a guest kernel.
func NewGuestKernel(cfg GuestConfig) *GuestKernel { return guestos.NewKernel(cfg) }

// Full platform.
type (
	// Machine is the assembled host + VM + guest + caches + walker.
	Machine = vm.Machine
	// MachineConfig sizes the platform.
	MachineConfig = vm.Config
	// RunOptions controls a Machine.Run.
	RunOptions = vm.RunOptions
	// Task is one scheduled workload.
	Task = vm.Task
	// TaskReport is the per-benchmark measurement.
	TaskReport = vm.TaskReport
	// Tracer receives the machine's event stream (see NewTraceWriter).
	Tracer = vm.Tracer
	// Role distinguishes measured primaries from background co-runners.
	Role = vm.Role
)

// Task roles.
const (
	// RolePrimary marks a measured benchmark.
	RolePrimary = vm.RolePrimary
	// RoleCorunner marks a background co-runner.
	RoleCorunner = vm.RoleCorunner
)

// CacheConfig describes the simulated cache hierarchy.
type CacheConfig = cache.Config

// DefaultCacheConfig returns the Broadwell-like hierarchy used by default.
func DefaultCacheConfig(numCPUs int) CacheConfig { return cache.DefaultConfig(numCPUs) }

// NewMachine assembles a simulated platform.
func NewMachine(cfg MachineConfig) (*Machine, error) { return vm.New(cfg) }

// DefaultMachineConfig mirrors the paper's Table 2 platform at 1/256 scale.
func DefaultMachineConfig() MachineConfig { return vm.DefaultConfig() }

// Workloads.
type (
	// Program is a deterministic access-stream generator. Implement it to
	// run your own workload on the machine (see examples/kvstore).
	Program = workload.Program
	// Env is the system interface a Program sees (mmap/free).
	Env = workload.Env
	// Access is one memory reference emitted by a Program.
	Access = workload.Access
	// GraphConfig sizes the GPOP graph-kernel stand-ins.
	GraphConfig = workload.GraphConfig
	// SpecConfig sizes the SPEC'17 stand-ins.
	SpecConfig = workload.SpecConfig
	// CorunnerConfig sizes the co-runner stand-ins.
	CorunnerConfig = workload.CorunnerConfig
)

// Workload constructors (the paper's Table 3).
var (
	NewPagerank   = workload.NewPagerank
	NewCC         = workload.NewCC
	NewBFS        = workload.NewBFS
	NewNibble     = workload.NewNibble
	NewMCF        = workload.NewMCF
	NewGCC        = workload.NewGCC
	NewOmnetpp    = workload.NewOmnetpp
	NewXZ         = workload.NewXZ
	NewObjdet     = workload.NewObjdet
	NewStressNG   = workload.NewStressNG
	NewChameleon  = workload.NewChameleon
	NewPyaes      = workload.NewPyaes
	NewJSONSerdes = workload.NewJSONSerdes
	NewRNNServing = workload.NewRNNServing
	NewAllocMicro = workload.NewAllocMicro
	NewSparse     = workload.NewSparse
)

// Experiment harness.
type (
	// Scenario is one measured configuration (benchmark × co-runners ×
	// policy).
	Scenario = sim.Scenario
	// ScenarioResult is everything measured in one run.
	ScenarioResult = sim.Result
	// Scale sets experiment sizing.
	Scale = sim.Scale
	// FragReport is the §3.2 host-PT fragmentation metric.
	FragReport = metrics.FragReport
)

// Benchmark and co-runner names accepted by RunScenario.
var (
	// Benchmarks lists the paper's eight evaluated benchmarks.
	Benchmarks = sim.Benchmarks
	// Corunners lists the Table 3 co-runner combination.
	Corunners = sim.Corunners
)

// RunScenario executes one scenario on a freshly assembled machine.
func RunScenario(s Scenario) (ScenarioResult, error) { return sim.Run(s) }

// RunScenarioCtx is RunScenario under a cancellable context.
func RunScenarioCtx(ctx context.Context, s Scenario) (ScenarioResult, error) {
	return sim.RunCtx(ctx, s)
}

// RunScenarioPair runs a scenario under the default policy and under
// PTEMagnet, returning (default, ptemagnet).
func RunScenarioPair(s Scenario) (ScenarioResult, ScenarioResult, error) {
	return sim.RunPair(s)
}

// Scenario-execution engine: experiment sets run through a bounded worker
// pool with deterministic (worker-count-independent) reduced output.
type (
	// Engine executes scenario sets; see NewEngine.
	Engine = engine.Engine
	// EngineEvent is one per-scenario progress report (Engine.OnEvent).
	EngineEvent = engine.Event
)

// NewEngine returns an engine with the given worker count (<= 0 means
// GOMAXPROCS). A nil *Engine is also accepted by the RunXxxCtx functions
// and behaves like NewEngine(0).
func NewEngine(workers int) *Engine { return engine.New(workers) }

// DeriveSeed maps a base seed and a scenario name to a per-scenario seed
// independent of worker count and completion order.
func DeriveSeed(base int64, name string) int64 { return engine.DeriveSeed(base, name) }

// Context-aware experiment entry points. Each RunXxxCtx variant runs its
// scenarios through the given engine's worker pool (nil means default
// settings) and honours ctx cancellation; the reduced result is identical
// for any worker count.
var (
	RunTable1Ctx              = sim.RunTable1Ctx
	RunObjdetSuiteCtx         = sim.RunObjdetSuiteCtx
	RunCombinationSuiteCtx    = sim.RunCombinationSuiteCtx
	RunTable4Ctx              = sim.RunTable4Ctx
	RunSec62Ctx               = sim.RunSec62Ctx
	RunSec64Ctx               = sim.RunSec64Ctx
	RunGranularityCtx         = sim.RunGranularityCtx
	RunReclaimSweepCtx        = sim.RunReclaimSweepCtx
	RunCAPagingComparisonCtx  = sim.RunCAPagingComparisonCtx
	RunTHPComparisonCtx       = sim.RunTHPComparisonCtx
	RunFiveLevelComparisonCtx = sim.RunFiveLevelComparisonCtx
	RunLowPressureCtx         = sim.RunLowPressureCtx
)

// DefaultScale returns the calibrated experiment sizing (1/256 of the
// paper's 16GB-dataset setup); QuickScale a fast variant for smoke tests.
func DefaultScale() Scale { return sim.DefaultScale() }

// QuickScale returns a reduced sizing for fast runs.
func QuickScale() Scale { return sim.QuickScale() }

// Paper experiment entry points (see EXPERIMENTS.md for the mapping to
// tables and figures).
var (
	// RunTable1 reproduces Table 1 (§3.3 fragmentation effects).
	RunTable1 = sim.RunTable1
	// RunObjdetSuite reproduces Figures 5 and 6 (§6.1, objdet co-runner).
	RunObjdetSuite = sim.RunObjdetSuite
	// RunCombinationSuite reproduces Figure 7 (§6.1, all co-runners).
	RunCombinationSuite = sim.RunCombinationSuite
	// RunTable4 reproduces Table 4 (§6.3 hardware metrics).
	RunTable4 = sim.RunTable4
	// RunSec62 reproduces the §6.2 reservation-waste study.
	RunSec62 = sim.RunSec62
	// RunSec64 reproduces the §6.4 allocation-latency microbenchmark.
	RunSec64 = sim.RunSec64
	// RunGranularity, RunLockingAblation, RunReclaimSweep and
	// RunThresholdDemo cover the §4 design-choice ablations.
	RunGranularity = sim.RunGranularity
	// RunCAPagingComparison contrasts best-effort contiguity (CA paging,
	// related work §7) with PTEMagnet's eager reservation.
	RunCAPagingComparison = sim.RunCAPagingComparison
	// RunTHPComparison contrasts transparent huge pages (§2.3) with
	// PTEMagnet across colocation levels.
	RunTHPComparison = sim.RunTHPComparison
	// RunFiveLevelComparison measures PTEMagnet under the five-level
	// paging migration the paper's §2.5 anticipates.
	RunFiveLevelComparison = sim.RunFiveLevelComparison
	// RunLowPressure verifies the §6.1 overhead-freedom claim on
	// low-TLB-pressure applications.
	RunLowPressure     = sim.RunLowPressure
	RunLockingAblation = sim.RunLockingAblation
	RunReclaimSweep    = sim.RunReclaimSweep
	RunThresholdDemo   = sim.RunThresholdDemo
)

// Tracing: record a machine's event stream to a compact binary format and
// analyze it offline.
type (
	// TraceWriter streams events; TraceReader iterates them.
	TraceWriter = trace.Writer
	TraceReader = trace.Reader
	// TraceEvent is one record; TraceSummary an aggregate.
	TraceEvent   = trace.Event
	TraceSummary = trace.Summary
	// TraceCollector adapts a TraceWriter to the Machine's Tracer.
	TraceCollector = trace.Collector
)

// Trace constructors.
var (
	// NewTraceWriter starts a trace on an io.Writer.
	NewTraceWriter = trace.NewWriter
	// NewTraceReader opens a recorded trace.
	NewTraceReader = trace.NewReader
	// NewTraceCollector wraps a writer for Machine.SetTracer.
	NewTraceCollector = trace.NewCollector
	// SummarizeTrace aggregates a recorded trace.
	SummarizeTrace = trace.Summarize
)
