// Package ptemagnet is a complete, simulation-backed reproduction of
// "PTEMagnet: Fine-Grained Physical Memory Reservation for Faster Page
// Walks in Public Clouds" (Margaritov, Ustiugov, Shahab, Grot — ASPLOS
// 2021, DOI 10.1145/3445814.3446704).
//
// The paper's contribution is a guest-kernel memory allocator that prevents
// guest-physical fragmentation under VM colocation by eagerly reserving
// aligned eight-page groups on the first page fault to each 32KB virtual
// region, which packs the corresponding *host* page-table entries into
// single cache blocks and shortens nested (2D) page walks.
//
// This library implements that allocator in full — the Page Reservation
// Table (PaRT), the reservation/reclamation life cycle, fork semantics, and
// the cgroup-style enable threshold — together with every substrate the
// paper's evaluation depends on, built from scratch: a Linux-style buddy
// allocator, guest and host kernels with demand paging, x86-64 four-level
// page tables materialized in simulated physical memory, a nested page
// walker with TLBs and page-walk caches, a cache hierarchy, and synthetic
// stand-ins for the paper's benchmarks and co-runners.
//
// Three entry levels, lowest to highest:
//
//   - NewPaRT gives the bare reservation table, the paper's §4 data
//     structure, usable against any frame allocator.
//   - NewMachine assembles the full simulated platform (host + VM + guest
//     kernel + caches + nested walker) for custom experiments.
//   - RunScenario / the Run* experiment functions reproduce the paper's
//     tables and figures (see EXPERIMENTS.md).
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory.
package ptemagnet

import (
	"context"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/balloon"
	"ptemagnet/internal/cache"
	"ptemagnet/internal/core"
	"ptemagnet/internal/engine"
	"ptemagnet/internal/faults"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/migrate"
	"ptemagnet/internal/nested"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/sim"
	"ptemagnet/internal/trace"
	"ptemagnet/internal/vm"
	"ptemagnet/internal/workload"
)

// Dimension distinguishes the guest and host page tables of a nested walk.
type Dimension = nested.Dimension

// Walk dimensions.
const (
	// DimGuest is the guest page table.
	DimGuest = nested.DimGuest
	// DimHost is the host page table — the one PTEMagnet defragments.
	DimHost = nested.DimHost
)

// Address and geometry types.
type (
	// VirtAddr is a guest-virtual address.
	VirtAddr = arch.VirtAddr
	// PhysAddr is a physical address (guest- or host-physical by context).
	PhysAddr = arch.PhysAddr
)

// Geometry constants re-exported for callers of the low-level API.
const (
	// PageSize is the base page size (4KB).
	PageSize = arch.PageSize
	// GroupPages is the paper's reservation granularity: eight pages,
	// whose leaf PTEs fill exactly one 64-byte cache block.
	GroupPages = arch.GroupPages
	// GroupBytes is the reservation span (32KB).
	GroupBytes = arch.GroupBytes
)

// The paper's primary contribution: the Page Reservation Table.
type (
	// PaRT is the per-process Page Reservation Table (§4.2).
	PaRT = core.PaRT
	// PaRTConfig parameterizes group size and locking granularity.
	PaRTConfig = core.Config
	// Reservation is one live eight-page reservation.
	Reservation = core.Reservation
	// PaRTStats counts reservation life-cycle events.
	PaRTStats = core.Stats
	// FaultResult describes how a PaRT served a fault.
	FaultResult = core.FaultResult
)

// PaRT fault outcomes.
const (
	// FaultNewReservation: a fresh group was reserved.
	FaultNewReservation = core.FaultNewReservation
	// FaultReservationHit: served from an existing reservation with no
	// buddy-allocator call.
	FaultReservationHit = core.FaultReservationHit
	// FaultNoMemory: group allocation failed; fall back to single pages.
	FaultNoMemory = core.FaultNoMemory
)

// ConfigError is the typed validation failure returned when a PaRTConfig or
// MachineConfig is rejected (PaRTConfig.Validate, MachineConfig.Validate,
// NewPaRT, NewMachine). Match it with errors.As.
type ConfigError = core.ConfigError

// NewPaRT creates an empty Page Reservation Table. An invalid configuration
// (e.g. a GroupPages that is not a power of two) is rejected with a
// *ConfigError; use PaRTConfig.Validate to check a configuration up front.
func NewPaRT(cfg PaRTConfig) (*PaRT, error) { return core.New(cfg) }

// MustNewPaRT is NewPaRT, panicking on an invalid configuration — for
// package-level variables and tests with known-good configs.
func MustNewPaRT(cfg PaRTConfig) *PaRT { return core.MustNew(cfg) }

// DefaultPaRTConfig returns the paper's design point: 8-page groups,
// fine-grained per-node locking.
func DefaultPaRTConfig() PaRTConfig { return core.DefaultConfig() }

// Guest kernel (the layer the paper patches).
type (
	// GuestKernel simulates the guest Linux VM subsystem.
	GuestKernel = guestos.Kernel
	// GuestConfig configures it, including the allocator policy.
	GuestConfig = guestos.Config
	// Process is one guest process.
	Process = guestos.Process
	// AllocPolicy selects the fault-time allocator.
	AllocPolicy = guestos.AllocPolicy
)

// Allocator policies.
const (
	// PolicyDefault is the stock Linux page-at-a-time buddy path.
	PolicyDefault = guestos.PolicyDefault
	// PolicyPTEMagnet is the paper's reservation-based path.
	PolicyPTEMagnet = guestos.PolicyPTEMagnet
	// PolicyCAPaging is the best-effort contiguity baseline from the
	// paper's related work, for comparison experiments.
	PolicyCAPaging = guestos.PolicyCAPaging
	// PolicyTHP is a transparent-huge-pages baseline (the §2.3 "big
	// hammer" the paper argues clouds avoid), for comparison experiments.
	PolicyTHP = guestos.PolicyTHP
)

// NewGuestKernel boots a guest kernel.
func NewGuestKernel(cfg GuestConfig) *GuestKernel { return guestos.NewKernel(cfg) }

// Full platform.
type (
	// Machine is the assembled host + VM + guest + caches + walker.
	Machine = vm.Machine
	// MachineConfig sizes the platform.
	MachineConfig = vm.Config
	// RunOptions controls a Machine.Run.
	//
	// Deprecated: use Machine.RunWith with MachineRunOpt options.
	RunOptions = vm.RunOptions
	// MachineRunOpt configures a Machine.RunWith (functional options:
	// WithEvents, WithSampleEvery, WithStopAtAccesses, WithMaxAccesses,
	// WithStopCorunnersAtInit).
	MachineRunOpt = vm.RunOpt
	// Task is one scheduled workload.
	Task = vm.Task
	// TaskReport is the per-benchmark measurement.
	TaskReport = vm.TaskReport
	// Tracer receives the machine's event stream in batches (see
	// NewTraceWriter for a ready-made recorder, PerAccessTracer to adapt a
	// per-event implementation).
	Tracer = vm.Tracer
	// AccessRecord is one executed access as delivered to a Tracer batch.
	AccessRecord = vm.AccessRecord
	// AccessTracer is the legacy per-event tracing interface; wrap with
	// PerAccessTracer before installing it on a Machine.
	AccessTracer = vm.AccessTracer
	// Role distinguishes measured primaries from background co-runners.
	Role = vm.Role
	// HostMachineConfig describes a multi-tenant platform: shared host
	// hardware plus one TenantConfig per VM packed onto it.
	HostMachineConfig = vm.HostConfig
	// TenantConfig describes one VM on a multi-tenant host (size and
	// guest allocator policy). The name differs from the internal
	// vm.GuestConfig because GuestConfig here already names the guest
	// kernel's own configuration.
	TenantConfig = vm.GuestConfig
	// Guest is one tenant VM's stack (kernel, walker, tasks) on a shared
	// host machine.
	Guest = vm.Guest
	// GuestStats is one guest's slice of the machine counters.
	GuestStats = vm.GuestStats
	// GuestReport is the per-guest post-run observation inside a Report.
	GuestReport = vm.GuestReport
	// RunEvent is a scheduled mid-run action (VM churn hooks).
	RunEvent = vm.RunEvent
)

// PerAccessTracer adapts a per-event AccessTracer to the batched Tracer
// interface a Machine expects.
func PerAccessTracer(t AccessTracer) Tracer { return vm.PerAccess(t) }

// Machine run options (Machine.RunWith).
var (
	// WithEvents schedules mid-run actions (VM churn hooks); repeated
	// uses append.
	WithEvents = vm.WithEvents
	// WithSampleEvery sets the fragmentation sampling interval in
	// accesses (0 = end-of-run only).
	WithSampleEvery = vm.WithSampleEvery
	// WithMaxAccesses caps each primary's access budget.
	WithMaxAccesses = vm.WithMaxAccesses
	// WithStopAtAccesses pauses the run once every primary has executed
	// the given access count (resume with another RunWith).
	WithStopAtAccesses = vm.WithStopAtAccesses
	// WithStopCorunnersAtInit stops co-runners once primaries finish
	// their init phase.
	WithStopCorunnersAtInit = vm.WithStopCorunnersAtInit
)

// Task roles.
const (
	// RolePrimary marks a measured benchmark.
	RolePrimary = vm.RolePrimary
	// RoleCorunner marks a background co-runner.
	RoleCorunner = vm.RoleCorunner
)

// CacheConfig describes the simulated cache hierarchy.
type CacheConfig = cache.Config

// DefaultCacheConfig returns the Broadwell-like hierarchy used by default.
func DefaultCacheConfig(numCPUs int) CacheConfig { return cache.DefaultConfig(numCPUs) }

// NewMachine assembles a simulated platform.
func NewMachine(cfg MachineConfig) (*Machine, error) { return vm.New(cfg) }

// NewHostMachine assembles a multi-tenant platform: one shared host
// running every guest in cfg.Guests.
func NewHostMachine(cfg HostMachineConfig) (*Machine, error) { return vm.NewHost(cfg) }

// DefaultMachineConfig mirrors the paper's Table 2 platform at 1/256 scale.
func DefaultMachineConfig() MachineConfig { return vm.DefaultConfig() }

// Workloads.
type (
	// Program is a deterministic access-stream generator. Implement it to
	// run your own workload on the machine (see examples/kvstore).
	Program = workload.Program
	// BatchProgram extends Program with StepBatch, the machine's fast path.
	// Plain Programs still run everywhere via an internal adapter; implement
	// StepBatch (respecting its determinism contract) for throughput.
	BatchProgram = workload.BatchProgram
	// Env is the system interface a Program sees (mmap/free).
	Env = workload.Env
	// Access is one memory reference emitted by a Program.
	Access = workload.Access
	// GraphConfig sizes the GPOP graph-kernel stand-ins.
	GraphConfig = workload.GraphConfig
	// SpecConfig sizes the SPEC'17 stand-ins.
	SpecConfig = workload.SpecConfig
	// CorunnerConfig sizes the co-runner stand-ins.
	CorunnerConfig = workload.CorunnerConfig
)

// Workload constructors (the paper's Table 3).
var (
	NewPagerank   = workload.NewPagerank
	NewCC         = workload.NewCC
	NewBFS        = workload.NewBFS
	NewNibble     = workload.NewNibble
	NewMCF        = workload.NewMCF
	NewGCC        = workload.NewGCC
	NewOmnetpp    = workload.NewOmnetpp
	NewXZ         = workload.NewXZ
	NewObjdet     = workload.NewObjdet
	NewStressNG   = workload.NewStressNG
	NewChameleon  = workload.NewChameleon
	NewPyaes      = workload.NewPyaes
	NewJSONSerdes = workload.NewJSONSerdes
	NewRNNServing = workload.NewRNNServing
	NewAllocMicro = workload.NewAllocMicro
	NewSparse     = workload.NewSparse
)

// AsBatch upgrades a Program to a BatchProgram, returning it unchanged when
// it already implements StepBatch and wrapping it in a one-access-per-batch
// adapter otherwise. Machines do this internally; it is exported for
// benchmarks and custom harnesses.
var AsBatch = workload.AsBatch

// Experiment harness.
type (
	// Scenario is one measured configuration (benchmark × co-runners ×
	// policy).
	Scenario = sim.Scenario
	// ScenarioResult is everything measured in one run. Its Report field
	// is the aggregated observation of the machine.
	ScenarioResult = sim.Result
	// Scale sets experiment sizing.
	Scale = sim.Scale
	// FragReport is the §3.2 host-PT fragmentation metric.
	FragReport = metrics.FragReport
)

// Observability (DESIGN.md §8). Every stat-bearing component follows one
// API shape — Snapshot() T to read its counters, T.Delta(prev T) for
// windowed measurement — and Report aggregates them all: walker + cache +
// TLB + guest kernel + both buddy allocators + per-task fragmentation.
// Run*Ctx entry points return it in ScenarioResult.Report; Machine.Observe
// produces one for custom experiments. The scattered per-subsystem
// accessors that predated this shape (Machine.SteadyWalkStats, the
// cache/TLB getter methods) are gone; Snapshot/Observe are the only
// reading paths.
type (
	// Report is the aggregated observation of one machine after a run.
	Report = vm.Report
	// MachineStats is one Snapshot of every counter the machine owns.
	MachineStats = vm.Stats
	// CounterRegistry is the machine's named counter view
	// (Machine.Registry); its Snapshot backs run telemetry.
	CounterRegistry = obs.Registry
	// CounterSnapshot is an ordered point-in-time counter reading.
	CounterSnapshot = obs.Snapshot
	// RunRecord is the per-scenario telemetry record emitted by the
	// Run*Ctx functions when a RunCollector is attached to the context.
	RunRecord = obs.RunRecord
	// RunCollector accumulates RunRecords across concurrent scenarios.
	RunCollector = obs.Collector
)

// WithRunCollector returns a context that makes every Run*Ctx scenario
// executed under it emit a RunRecord to c.
func WithRunCollector(ctx context.Context, c *RunCollector) context.Context {
	return obs.WithCollector(ctx, c)
}

// Telemetry encoders: one JSON object per line, or CSV with one column
// per counter (see EXPERIMENTS.md for the schema).
var (
	WriteRunRecordsJSONL = obs.WriteJSONL
	WriteRunRecordsCSV   = obs.WriteCSV
)

// Benchmark and co-runner names accepted by RunScenario.
var (
	// Benchmarks lists the paper's eight evaluated benchmarks.
	Benchmarks = sim.Benchmarks
	// Corunners lists the Table 3 co-runner combination.
	Corunners = sim.Corunners
)

// RunScenarioCtx executes one scenario on a freshly assembled machine under
// a cancellable context. The Ctx forms are the primary API; the non-Ctx
// names are conveniences that pass context.Background().
func RunScenarioCtx(ctx context.Context, s Scenario) (ScenarioResult, error) {
	return sim.RunCtx(ctx, s)
}

// RunScenario is RunScenarioCtx with a background context.
func RunScenario(s Scenario) (ScenarioResult, error) {
	return sim.RunCtx(context.Background(), s)
}

// RunScenarioPairCtx runs a scenario under the default policy and under
// PTEMagnet, returning (default, ptemagnet).
func RunScenarioPairCtx(ctx context.Context, s Scenario) (ScenarioResult, ScenarioResult, error) {
	return sim.RunPairCtx(ctx, s)
}

// RunScenarioPair is RunScenarioPairCtx with a background context.
func RunScenarioPair(s Scenario) (ScenarioResult, ScenarioResult, error) {
	return sim.RunPairCtx(context.Background(), s)
}

// Scenario-execution engine: experiment sets run through a bounded worker
// pool with deterministic (worker-count-independent) reduced output.
type (
	// Engine executes scenario sets; see NewEngine.
	Engine = engine.Engine
	// EngineEvent is one per-scenario progress report (Engine.OnEvent).
	EngineEvent = engine.Event
	// EngineHeartbeat is the periodic in-flight progress report
	// (Engine.OnHeartbeat, enabled by Engine.HeartbeatEvery).
	EngineHeartbeat = engine.Heartbeat
	// EngineStats counts the engine's lifetime activity (Engine.Snapshot).
	EngineStats = engine.Stats
)

// NewEngine returns an engine with the given worker count (<= 0 means
// GOMAXPROCS). A nil *Engine is also accepted by the RunXxxCtx functions
// and behaves like NewEngine(0).
func NewEngine(workers int) *Engine { return engine.New(workers) }

// DeriveSeed maps a base seed and a scenario name to a per-scenario seed
// independent of worker count and completion order.
func DeriveSeed(base int64, name string) int64 { return engine.DeriveSeed(base, name) }

// Context-aware experiment entry points — the primary API. Each RunXxxCtx
// variant runs its scenarios through the given engine's worker pool (nil
// means default settings) and honours ctx cancellation; the reduced result
// is identical for any worker count. The non-Ctx RunXxx forms further down
// are one-line conveniences over these.
var (
	RunTable1Ctx              = sim.RunTable1Ctx
	RunObjdetSuiteCtx         = sim.RunObjdetSuiteCtx
	RunCombinationSuiteCtx    = sim.RunCombinationSuiteCtx
	RunTable4Ctx              = sim.RunTable4Ctx
	RunSec62Ctx               = sim.RunSec62Ctx
	RunSec64Ctx               = sim.RunSec64Ctx
	RunGranularityCtx         = sim.RunGranularityCtx
	RunReclaimSweepCtx        = sim.RunReclaimSweepCtx
	RunCAPagingComparisonCtx  = sim.RunCAPagingComparisonCtx
	RunTHPComparisonCtx       = sim.RunTHPComparisonCtx
	RunFiveLevelComparisonCtx = sim.RunFiveLevelComparisonCtx
	RunLowPressureCtx         = sim.RunLowPressureCtx
)

// DefaultScale returns the calibrated experiment sizing (1/256 of the
// paper's 16GB-dataset setup); QuickScale a fast variant for smoke tests.
func DefaultScale() Scale { return sim.DefaultScale() }

// QuickScale returns a reduced sizing for fast runs.
func QuickScale() Scale { return sim.QuickScale() }

// Experiment result types (returned by the Run* entry points below).
type (
	// Table1Result compares colocated vs standalone execution (§3.3).
	Table1Result = sim.Table1Result
	// SuiteResult covers all benchmarks under one co-runner set (§6.1).
	SuiteResult = sim.SuiteResult
	// Table4Result holds the §6.3 hardware-metric comparison.
	Table4Result = sim.Table4Result
	// Sec62Result holds the §6.2 reservation-waste study.
	Sec62Result = sim.Sec62Result
	// Sec64Result holds the §6.4 allocation-latency microbenchmark.
	Sec64Result = sim.Sec64Result
	// GranularityResult holds the §4 GroupPages sweep.
	GranularityResult = sim.GranularityResult
	// ReclaimResult holds the §4.3 reclaim-watermark sweep.
	ReclaimResult = sim.ReclaimResult
	// CAPagingResult compares CA paging against PTEMagnet.
	CAPagingResult = sim.CAPagingResult
	// THPResult compares transparent huge pages against PTEMagnet.
	THPResult = sim.THPResult
	// FiveLevelResult measures PTEMagnet under five-level paging (§2.5).
	FiveLevelResult = sim.FiveLevelResult
	// LowPressureResult verifies overhead freedom at low TLB pressure.
	LowPressureResult = sim.LowPressureResult
	// LockingResult holds the §4.2 locking-granularity ablation.
	LockingResult = sim.LockingResult
	// ThresholdResult demonstrates the §4.4 enable threshold.
	ThresholdResult = sim.ThresholdResult
)

// Paper experiment entry points, non-Ctx convenience forms (see
// EXPERIMENTS.md for the mapping to tables and figures). Each is a one-line
// wrapper passing context.Background() and the default engine to its
// primary RunXxxCtx counterpart above.

// RunTable1 reproduces Table 1 (§3.3 fragmentation effects).
func RunTable1(sc Scale, seed int64) (Table1Result, error) {
	return sim.RunTable1Ctx(context.Background(), nil, sc, seed)
}

// RunObjdetSuite reproduces Figures 5 and 6 (§6.1, objdet co-runner).
func RunObjdetSuite(sc Scale, seed int64) (SuiteResult, error) {
	return sim.RunObjdetSuiteCtx(context.Background(), nil, sc, seed)
}

// RunCombinationSuite reproduces Figure 7 (§6.1, all co-runners).
func RunCombinationSuite(sc Scale, seed int64) (SuiteResult, error) {
	return sim.RunCombinationSuiteCtx(context.Background(), nil, sc, seed)
}

// RunTable4 reproduces Table 4 (§6.3 hardware metrics).
func RunTable4(sc Scale, seed int64) (Table4Result, error) {
	return sim.RunTable4Ctx(context.Background(), nil, sc, seed)
}

// RunSec62 reproduces the §6.2 reservation-waste study.
func RunSec62(sc Scale, seed int64) (Sec62Result, error) {
	return sim.RunSec62Ctx(context.Background(), nil, sc, seed)
}

// RunSec64 reproduces the §6.4 allocation-latency microbenchmark.
func RunSec64(sc Scale, seed int64) (Sec64Result, error) {
	return sim.RunSec64Ctx(context.Background(), nil, sc, seed)
}

// RunGranularity sweeps the reservation granularity (§4 ablation).
func RunGranularity(sc Scale, seed int64) (GranularityResult, error) {
	return sim.RunGranularityCtx(context.Background(), nil, sc, seed)
}

// RunReclaimSweep sweeps the reclaim watermark (§4.3 ablation).
func RunReclaimSweep(sc Scale, seed int64) (ReclaimResult, error) {
	return sim.RunReclaimSweepCtx(context.Background(), nil, sc, seed)
}

// RunCAPagingComparison contrasts best-effort contiguity (CA paging,
// related work §7) with PTEMagnet's eager reservation.
func RunCAPagingComparison(sc Scale, seed int64) (CAPagingResult, error) {
	return sim.RunCAPagingComparisonCtx(context.Background(), nil, sc, seed)
}

// RunTHPComparison contrasts transparent huge pages (§2.3) with PTEMagnet
// across colocation levels.
func RunTHPComparison(sc Scale, seed int64) (THPResult, error) {
	return sim.RunTHPComparisonCtx(context.Background(), nil, sc, seed)
}

// RunFiveLevelComparison measures PTEMagnet under the five-level paging
// migration the paper's §2.5 anticipates.
func RunFiveLevelComparison(sc Scale, seed int64) (FiveLevelResult, error) {
	return sim.RunFiveLevelComparisonCtx(context.Background(), nil, sc, seed)
}

// RunLowPressure verifies the §6.1 overhead-freedom claim on
// low-TLB-pressure applications.
func RunLowPressure(sc Scale, seed int64) (LowPressureResult, error) {
	return sim.RunLowPressureCtx(context.Background(), nil, sc, seed)
}

// Synchronous ablations (no scenario engine underneath — these run inline).
var (
	// RunLockingAblation covers the §4.2 locking-granularity choice.
	RunLockingAblation = sim.RunLockingAblation
	// RunThresholdDemo demonstrates the §4.4 enable threshold.
	RunThresholdDemo = sim.RunThresholdDemo
)

// Experiment registry: every experiment above is also registered under a
// canonical name for uniform, name-driven dispatch (cmd/experiments runs
// entirely through it). The typed RunXxx functions remain the primary API;
// the registry is for tools that select experiments at runtime.
type (
	// ExperimentInfo describes one registered experiment (name, display
	// title, selector tags, paper notes).
	ExperimentInfo = sim.ExperimentInfo
	// ExperimentResult is the reduced output of one experiment; render it
	// with String.
	ExperimentResult = sim.ExperimentResult
	// ExperimentOptions carries RunExperimentOpts' optional knobs (engine,
	// multitenant VM counts).
	//
	// Deprecated: use RunExperiment's functional options (WithEngine,
	// WithVMCounts).
	ExperimentOptions = sim.ExperimentOptions
	// ExperimentRunOpt configures a RunExperiment call (functional
	// options: WithScale, WithSeed, WithEngine, WithVMCounts,
	// WithFaultPlan, WithRetry, WithCollector).
	ExperimentRunOpt = sim.RunOpt
)

// Registry entry points.
var (
	// Experiments lists every registered experiment in execution order.
	Experiments = sim.Experiments
	// MatchExperiments resolves a selector ("all", a name, or a tag like
	// "fig6") to the experiments it runs.
	MatchExperiments = sim.MatchExperiments
	// RunExperimentOpts runs one experiment by name with explicit options.
	//
	// Deprecated: use RunExperiment with functional options.
	RunExperimentOpts = sim.RunExperimentOpts
)

// Experiment run options (RunExperiment).
var (
	// WithScale selects the sweep sizing (default DefaultScale()).
	WithScale = sim.WithScale
	// WithSeed sets the base simulation seed (default DefaultSeed).
	WithSeed = sim.WithSeed
	// WithEngine runs the experiment through a configured Engine.
	WithEngine = sim.WithEngine
	// WithVMCounts narrows the multitenant sweep.
	WithVMCounts = sim.WithVMCounts
	// WithFaultPlan sets the fault campaign for fault-aware experiments
	// (the chaos sweep).
	WithFaultPlan = sim.WithFaultPlan
	// WithRetry sets the per-scenario retry policy for fault-aware
	// experiments.
	WithRetry = sim.WithRetry
	// WithCollector attaches a RunCollector to the run, capturing one
	// RunRecord per executed scenario.
	WithCollector = sim.WithCollector
)

// DefaultExperimentSeed is the seed RunExperiment uses when WithSeed is
// absent (the cmd/experiments default).
const DefaultExperimentSeed = sim.DefaultSeed

// RunExperiment runs one registered experiment by canonical name,
// configured by functional options; omitted options take the documented
// defaults. Even on error the returned result may be non-nil, carrying
// the partial output the engine completed before failing.
func RunExperiment(ctx context.Context, name string, opts ...ExperimentRunOpt) (ExperimentResult, error) {
	return sim.RunExperiment(ctx, name, opts...)
}

// Live migration: move a Guest between Machines with pre-copy semantics
// over the host's PML-style dirty-page log (DESIGN.md §10).
type (
	// MigrateOptions tunes the pre-copy protocol (round length, stop-and-
	// copy threshold, dirty-log sizing).
	MigrateOptions = migrate.Options
	// MigrationReport counts what one migration did: rounds, page traffic,
	// downtime in access-units.
	MigrationReport = migrate.Report
	// MigrateError is the typed failure of a migration; match the
	// destination-OOM case with errors.Is(err, ErrDestinationOOM).
	MigrateError = migrate.MigrateError
	// MigrationScenario configures one run of the migration sweep.
	MigrationScenario = sim.MigrationScenario
	// MigrationRunResult is one migration scenario's measurement.
	MigrationRunResult = sim.MigrationRunResult
	// MigrationResult covers the -exp migration sweep.
	MigrationResult = sim.MigrationResult
)

// ErrDestinationOOM reports that the destination host ran out of physical
// memory while receiving the guest image; the migration rolled back.
var ErrDestinationOOM = migrate.ErrDestinationOOM

// Migration entry points.
var (
	// MigrateGuestCtx live-migrates a guest onto a destination machine
	// under a cancellable context — the primary API.
	MigrateGuestCtx = migrate.MigrateCtx
	// MigrateGuest is MigrateGuestCtx with a background context.
	MigrateGuest = migrate.Migrate
	// RunMigrationScenarioCtx executes one migration scenario end to end.
	RunMigrationScenarioCtx = sim.RunMigrationScenarioCtx
	// RunMigrationCtx runs the migration sweep through an engine.
	RunMigrationCtx = sim.RunMigrationCtx
)

// RunMigration runs the migration sweep with default settings.
func RunMigration(sc Scale, seed int64) (MigrationResult, error) {
	return sim.RunMigrationCtx(context.Background(), nil, sc, seed)
}

// Deterministic fault injection & recovery (DESIGN.md §11): seed-derived
// fault plans armed on a Machine's allocation, host-fault, dirty-log and
// migration choke points, with per-scenario retry in the engine.
type (
	// FaultConfig declares a deterministic fault campaign (what to
	// inject, how often, and for how many attempts).
	FaultConfig = faults.Config
	// FaultPlan is one attempt's materialized injection schedule; arm it
	// with Machine.InstallFaultPlan or MigrateOptions.Faults.
	FaultPlan = faults.Plan
	// FaultSite identifies where a fault was injected.
	FaultSite = faults.Site
	// FaultError is the typed injected failure; errors.Is(err,
	// ErrFaultInjected) matches any injected fault.
	FaultError = faults.Error
	// RetryPolicy is the engine's per-scenario retry contract (max
	// attempts plus a retryable-error classifier).
	RetryPolicy = engine.RetryPolicy
	// ChaosRunResult is one chaos scenario's outcome.
	ChaosRunResult = sim.ChaosRunResult
	// ChaosResult covers the -exp chaos sweep.
	ChaosResult = sim.ChaosResult
)

// ErrFaultInjected is the sentinel wrapped by every injected fault.
var ErrFaultInjected = faults.ErrInjected

// Fault-injection entry points.
var (
	// NewFaultPlan materializes the attempt's schedule from a campaign.
	NewFaultPlan = faults.NewPlan
	// IsFaultInjected reports whether err stems from an injected fault.
	IsFaultInjected = faults.IsInjected
	// IsFaultTransient reports whether err is a transient injected fault
	// (the chaos sweep's default retry classifier).
	IsFaultTransient = faults.IsTransient
	// DefaultChaosRetry is the chaos sweep's default retry policy.
	DefaultChaosRetry = sim.DefaultChaosRetry
	// RunChaosCtx runs the chaos sweep through an engine.
	RunChaosCtx = sim.RunChaosCtx
)

// RunChaos runs the chaos sweep with default settings (built-in fault
// ladder, default retry policy).
func RunChaos(sc Scale, seed int64) (ChaosResult, error) {
	return sim.RunChaosCtx(context.Background(), nil, sc, seed, FaultConfig{}, RetryPolicy{})
}

// Host memory overcommit (DESIGN.md §12): a watermark-driven balloon
// controller that relieves host pressure by inflating per-guest balloon
// targets, driving the guest reclaim daemon to break PTEMagnet
// reservations and return cold frames to the host buddy allocator.
type (
	// BalloonConfig arms the controller on a Machine (HostConfig.Balloon).
	BalloonConfig = balloon.Config
	// BalloonStats counts what the controller did (inflate/deflate cycles,
	// pages unbacked, OOM reliefs).
	BalloonStats = balloon.Stats
	// BalloonController is the host-side pressure controller itself,
	// reachable via Machine.Balloon.
	BalloonController = balloon.Controller
	// OvercommitScenario configures one cell of the overcommit sweep.
	OvercommitScenario = sim.OvercommitScenario
	// OvercommitRunResult is one overcommit scenario's measurement.
	OvercommitRunResult = sim.OvercommitRunResult
	// OvercommitResult covers the -exp overcommit sweep.
	OvercommitResult = sim.OvercommitResult
)

// Overcommit entry points.
var (
	// OvercommitRatios is the sweep's declared-memory ratios, in percent.
	OvercommitRatios = sim.OvercommitRatios
	// BuildOvercommitMachine assembles one overcommitted multi-VM machine.
	BuildOvercommitMachine = sim.BuildOvercommitMachine
	// RunOvercommitScenarioCtx executes one overcommit scenario end to end.
	RunOvercommitScenarioCtx = sim.RunOvercommitScenarioCtx
	// RunOvercommitCtx runs the overcommit sweep through an engine.
	RunOvercommitCtx = sim.RunOvercommitCtx
)

// RunOvercommit runs the overcommit sweep with default settings.
func RunOvercommit(sc Scale, seed int64) (OvercommitResult, error) {
	return sim.RunOvercommitCtx(context.Background(), nil, sc, seed)
}

// Tracing: record a machine's event stream to a compact binary format and
// analyze it offline.
type (
	// TraceWriter streams events; TraceReader iterates them.
	TraceWriter = trace.Writer
	TraceReader = trace.Reader
	// TraceEvent is one record; TraceSummary an aggregate.
	TraceEvent   = trace.Event
	TraceSummary = trace.Summary
	// TraceCollector adapts a TraceWriter to the Machine's Tracer.
	TraceCollector = trace.Collector
)

// Trace constructors.
var (
	// NewTraceWriter starts a trace on an io.Writer.
	NewTraceWriter = trace.NewWriter
	// NewTraceReader opens a recorded trace.
	NewTraceReader = trace.NewReader
	// NewTraceCollector wraps a writer for Machine.SetTracer.
	NewTraceCollector = trace.NewCollector
	// SummarizeTrace aggregates a recorded trace.
	SummarizeTrace = trace.Summarize
)
