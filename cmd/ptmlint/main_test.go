package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"ptemagnet/internal/lint"
)

// fixtureDir resolves an internal/lint fixture from this package's
// directory.
func fixtureDir(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", "src", name)
}

// soloFlags disables every analyzer except keep.
func soloFlags(keep string) []string {
	var args []string
	for _, a := range lint.Analyzers {
		if a.Name != keep {
			args = append(args, fmt.Sprintf("-%s=false", a.Name))
		}
	}
	return args
}

// TestDriverFailsOnFixtures is the acceptance check for the driver: for
// each analyzer, introducing a violation (the fixture) makes ptmlint exit
// non-zero with the correct [check] tag on stdout.
func TestDriverFailsOnFixtures(t *testing.T) {
	for _, a := range lint.Analyzers {
		t.Run(a.Name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			args := append([]string{"-dir", fixtureDir(a.Name)}, soloFlags(a.Name)...)
			code := run(args, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
			}
			tag := "[" + a.Name + "]"
			if !strings.Contains(stdout.String(), tag) {
				t.Errorf("stdout lacks %s tag:\n%s", tag, stdout.String())
			}
			if !strings.Contains(stderr.String(), "finding(s)") {
				t.Errorf("stderr lacks the findings summary:\n%s", stderr.String())
			}
		})
	}
}

// TestDriverCleanExit runs an analyzer over a fixture that violates a
// different check: no findings, exit 0, empty stdout.
func TestDriverCleanExit(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := append([]string{"-dir", fixtureDir("archconst")}, soloFlags("detrange")...)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout not empty on a clean run:\n%s", stdout.String())
	}
}

// TestDriverFlagDisablesCheck pins that a per-analyzer flag really
// removes the check: the errwrap fixture is clean once -errwrap=false.
func TestDriverFlagDisablesCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-dir", fixtureDir("errwrap"), "-errwrap=false"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestDriverJSON checks the -json output shape.
func TestDriverJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := append([]string{"-json", "-dir", fixtureDir("noclock")}, soloFlags("noclock")...)
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var findings []lint.Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("stdout is not a JSON finding array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output carries no findings")
	}
	for _, f := range findings {
		if f.Check != "noclock" || f.File == "" || f.Line == 0 {
			t.Errorf("malformed JSON finding: %+v", f)
		}
	}
}

// TestDriverBadFlags pins the usage-error exit code.
func TestDriverBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if code := run([]string{"stray-arg"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code for stray argument = %d, want 2", code)
	}
}
