// Command ptmlint runs the repo's determinism and address-hygiene
// analyzers (internal/lint) over the whole module and exits non-zero on
// findings. Loading builds a module-wide static call graph, so the
// interprocedural checks (noclock, seedflow, deprflow, obscover) see
// through module helpers. It is wired into `make lint` and CI as a
// blocking check; see DESIGN.md §6 for the contract each of the nine
// analyzers enforces and the //ptmlint:allow escape hatch.
//
// Usage:
//
//	ptmlint [-dir module-root] [-json] [-detrange=false] ...
//
// Each analyzer has an enable flag named after it (default true), so a
// single check can be run in isolation (`ptmlint -noclock=false
// -seedflow=false ...`) or temporarily waived while a large refactor
// lands. Allow directives are audited on every run: malformed ones,
// ones naming unknown checks, and stale ones (suppressing nothing, for
// a check that ran) are reported under the "ptmlint" tag.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ptemagnet/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body: 0 clean, 1 findings, 2 usage or load
// failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ptmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to lint (directory containing go.mod)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line lines")
	enabled := make(map[string]*bool, len(lint.Analyzers))
	for _, a := range lint.Analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" check: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ptmlint: unexpected arguments %v\n", fs.Args())
		return 2
	}

	var active []*lint.Analyzer
	for _, a := range lint.Analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	mod, err := lint.Load(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "ptmlint: %v\n", err)
		return 2
	}
	findings := lint.Run(mod, active)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "ptmlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "ptmlint: %d finding(s) in %d package(s) checked\n", len(findings), len(mod.Pkgs))
		return 1
	}
	return 0
}
