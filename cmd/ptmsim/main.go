// Command ptmsim runs one colocation scenario on the simulated platform and
// prints the full metric set — the single-run workhorse behind the paper
// experiments.
//
// Usage:
//
//	ptmsim -bench pagerank -corunners objdet,stress-ng -policy ptemagnet [flags]
//
// Benchmarks: cc bfs nibble pagerank gcc mcf omnetpp xz allocmicro sparse.
// Co-runners: objdet stress-ng chameleon pyaes json_serdes rnn_serving
// gcc-co xz-co.
//
// -telemetry / -telemetry-csv write the run's RunRecord (full counter
// registry plus wall-clock) to a file; -pprof serves net/http/pprof for
// live profiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ptemagnet/internal/cache"
	"ptemagnet/internal/engine"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/nested"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/sim"
)

func main() {
	bench := flag.String("bench", "pagerank", "primary benchmark")
	corunners := flag.String("corunners", "", "comma-separated co-runner list")
	policy := flag.String("policy", "default", "allocator policy: default, ptemagnet, capaging, or thp")
	seed := flag.Int64("seed", 11, "simulation seed")
	quick := flag.Bool("quick", false, "use the reduced quick scale")
	stopAtInit := flag.Bool("stop-corunners-at-init", false, "stop co-runners at the primary's init boundary (§3.3 methodology)")
	watermark := flag.Float64("reclaim-watermark", 0, "reclaim daemon watermark (0 = default 0.95)")
	threshold := flag.Uint64("enable-threshold", 0, "PTEMagnet enable threshold in bytes (0 = always on)")
	telemetry := flag.String("telemetry", "", "write the run's RunRecord as JSON Lines to this file")
	telemetryCSV := flag.String("telemetry-csv", "", "write the run's RunRecord as CSV to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	s := sim.Scenario{
		Benchmark:            *bench,
		Seed:                 *seed,
		StopCorunnersAtInit:  *stopAtInit,
		ReclaimWatermark:     *watermark,
		EnableThresholdBytes: *threshold,
		Scale:                sim.DefaultScale(),
	}
	if *quick {
		s.Scale = sim.QuickScale()
	}
	if *corunners != "" {
		s.Corunners = strings.Split(*corunners, ",")
	}
	switch *policy {
	case "default":
		s.Policy = guestos.PolicyDefault
	case "ptemagnet":
		s.Policy = guestos.PolicyPTEMagnet
	case "capaging":
		s.Policy = guestos.PolicyCAPaging
	case "thp":
		s.Policy = guestos.PolicyTHP
	default:
		fmt.Fprintf(os.Stderr, "ptmsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "ptmsim: pprof server: %v\n", err)
			}
		}()
	}

	var collector *obs.Collector
	if *telemetry != "" || *telemetryCSV != "" {
		collector = &obs.Collector{}
		ctx = obs.WithCollector(ctx, collector)
		ctx = engine.WithScenarioInfo(ctx, engine.ScenarioInfo{Set: "ptmsim", Scenario: s.Identity()})
	}

	res, err := sim.RunCtx(ctx, s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptmsim: %v\n", err)
		os.Exit(1)
	}
	printResult(res)

	if collector != nil {
		recs := collector.Records()
		if *telemetry != "" {
			if err := writeFile(*telemetry, recs, obs.WriteJSONL); err != nil {
				fmt.Fprintf(os.Stderr, "ptmsim: %v\n", err)
				os.Exit(1)
			}
		}
		if *telemetryCSV != "" {
			if err := writeFile(*telemetryCSV, recs, obs.WriteCSV); err != nil {
				fmt.Fprintf(os.Stderr, "ptmsim: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeFile(path string, recs []obs.RunRecord, write func(w io.Writer, recs []obs.RunRecord) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printResult(r sim.Result) {
	t := r.Task
	fmt.Printf("benchmark        %s  (policy %v, co-runners: %s)\n",
		t.Name, r.Scenario.Policy, strings.Join(r.Scenario.Corunners, ","))
	fmt.Printf("accesses         %d total, %d steady\n", t.Accesses, t.SteadyAccesses)
	fmt.Printf("cycles           %d total  (work %d, data %d, translation %d, faults %d)\n",
		t.Cycles, t.WorkCycles, t.DataCycles, t.TranslationCycles, t.FaultCycles)
	fmt.Printf("steady cycles    %d  (translation %d, data %d)\n",
		t.SteadyCycles, t.SteadyTranslationCycles, t.SteadyDataCycles)
	fmt.Printf("CPI (steady)     %.2f cycles/access\n",
		float64(t.SteadyCycles)/float64(max(1, t.SteadyAccesses)))

	w := r.Walk
	fmt.Printf("\ntranslation (steady window)\n")
	fmt.Printf("  TLB            %d lookups, %d misses (%.2f%%)\n",
		w.Lookups, w.TLBMisses(), 100*float64(w.TLBMisses())/float64(max(1, w.Lookups)))
	fmt.Printf("  nested walks   %d  (%d walk cycles, %.0f cycles/walk, p50 ≤ %d, p99 ≤ %d)\n",
		w.Walks, w.WalkCycles, float64(w.WalkCycles)/float64(max(1, w.Walks)),
		w.WalkLatencyPercentile(0.5), w.WalkLatencyPercentile(0.99))
	for _, d := range []nested.Dimension{nested.DimGuest, nested.DimHost} {
		name := "guest PT"
		if d == nested.DimHost {
			name = "host PT"
		}
		fmt.Printf("  %-13s  %d accesses, served L1 %d / L2 %d / LLC %d / memory %d, %d cycles\n",
			name, w.Accesses[d],
			w.Served[d][cache.LevelL1], w.Served[d][cache.LevelL2],
			w.Served[d][cache.LevelLLC], w.Served[d][cache.LevelMemory],
			w.Cycles[d])
	}

	fmt.Printf("\nhost PT fragmentation (§3.2)\n")
	fmt.Printf("  mean           %.2f hPTE blocks per gPTE block over %d groups\n", t.Frag.Mean, t.Frag.Groups)
	fmt.Printf("  fully scattered %.1f%% of groups span all 8 blocks\n", t.Frag.FullyScattered*100)
	fmt.Printf("  histogram      %v (groups spanning 1..8 blocks)\n", t.Frag.Histogram)

	g := r.Guest
	fmt.Printf("\nguest kernel\n")
	fmt.Printf("  faults         default %d, magnet-new %d, magnet-hit %d, ca-hit %d, parent-claim %d, cow %d\n",
		g.Faults[guestos.FaultDefault], g.Faults[guestos.FaultMagnetNew],
		g.Faults[guestos.FaultMagnetHit], g.Faults[guestos.FaultCAHit],
		g.Faults[guestos.FaultParentClaim], g.Faults[guestos.FaultCOW])
	fmt.Printf("  buddy calls    %d   reclaim runs %d (reservations destroyed %d)\n",
		g.BuddyCalls, g.ReclaimRuns, g.ReclaimedReservations)
	if r.Scenario.Policy == guestos.PolicyPTEMagnet {
		fmt.Printf("  reservations   created %d, fully mapped %d, fully freed %d, reclaimed %d, hits %d\n",
			r.MagnetStats.Created, r.MagnetStats.FullyMapped,
			r.MagnetStats.FullyFreed, r.MagnetStats.Reclaimed, r.MagnetStats.Hits)
		fmt.Printf("  unused pages   peak %d, mean %.1f (footprint %d pages)\n",
			r.UnusedMax, r.UnusedMean, r.FootprintPages)
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
