// Command experiments regenerates every table and figure of the PTEMagnet
// paper's evaluation on the simulated platform and prints paper-versus-
// measured comparisons.
//
// Usage:
//
//	experiments [-exp all|table1|fig5|fig6|fig7|table4|sec62|sec64|ablation|multitenant]
//	            [-quick] [-seed N] [-parallel N] [-progress] [-vms N]
//	            [-telemetry run.jsonl] [-telemetry-csv run.csv]
//	            [-heartbeat 30s] [-pprof localhost:6060]
//
// -exp multitenant runs the multi-VM sweep (2/4/8 VMs on one shared host,
// plus a VM-churn scenario); it is not part of "all". -vms narrows the
// sweep to one VM count.
//
// fig5 and fig6 come from the same runs (the objdet suite) and print
// together. With -quick the reduced test scale is used (seconds instead of
// minutes); headline numbers in EXPERIMENTS.md come from the default scale.
//
// Scenarios within each experiment run through the engine's worker pool
// (-parallel, default GOMAXPROCS); results are deterministic for any
// worker count. A failing scenario does not abort the rest: partial
// results print, the error is reported, and the process exits non-zero
// at the end.
//
// -telemetry / -telemetry-csv write one RunRecord per executed scenario
// (see EXPERIMENTS.md for the schema); everything except elapsed_ms is
// byte-identical for any -parallel value. -heartbeat prints periodic
// in-flight progress on stderr; -pprof serves net/http/pprof on the given
// address for live profiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ptemagnet/internal/engine"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig5, fig6, fig7, table4, sec62, sec64, ablation, multitenant")
	quick := flag.Bool("quick", false, "use the reduced quick scale")
	seed := flag.Int64("seed", 11, "simulation seed")
	vms := flag.Int("vms", 0, "multitenant only: run a single VM count (2, 4 or 8; 0 = the full sweep)")
	parallel := flag.Int("parallel", 0, "concurrent scenarios per experiment (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report per-scenario completion on stderr")
	telemetry := flag.String("telemetry", "", "write per-scenario RunRecords as JSON Lines to this file")
	telemetryCSV := flag.String("telemetry-csv", "", "write per-scenario RunRecords as CSV to this file")
	heartbeat := flag.Duration("heartbeat", 0, "report in-flight progress on stderr at this interval (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	sc := sim.DefaultScale()
	if *quick {
		sc = sim.QuickScale()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: pprof server: %v\n", err)
			}
		}()
	}

	var collector *obs.Collector
	if *telemetry != "" || *telemetryCSV != "" {
		collector = &obs.Collector{}
		ctx = obs.WithCollector(ctx, collector)
	}

	eng := engine.New(*parallel)
	if *progress {
		eng.OnEvent = func(ev engine.Event) {
			status := "ok"
			if ev.Err != nil {
				status = "FAILED: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s/%s (%.1fs) %s\n",
				ev.Done, ev.Total, ev.Set, ev.Scenario, ev.Elapsed.Seconds(), status)
		}
	}
	if *heartbeat > 0 {
		eng.HeartbeatEvery = *heartbeat
		eng.OnHeartbeat = func(hb engine.Heartbeat) {
			fmt.Fprintf(os.Stderr, "  ... %s: %d/%d scenarios done after %.0fs\n",
				hb.Set, hb.Done, hb.Total, hb.Elapsed.Seconds())
		}
	}

	failed := false
	// run executes one experiment. The engine delivers partial results
	// alongside the error, so a failure prints whatever completed, marks
	// the process for a non-zero exit, and lets the remaining experiments
	// proceed.
	run := func(name string, f func() (fmt.Stringer, error)) {
		t0 := time.Now()
		fmt.Printf("==> %s\n", name)
		r, err := f()
		if r != nil {
			fmt.Print(r.String())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			failed = true
			fmt.Println()
			return
		}
		fmt.Printf("    (%.1fs)\n\n", time.Since(t0).Seconds())
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("Table 1 (§3.3)", func() (fmt.Stringer, error) {
			r, err := sim.RunTable1Ctx(ctx, eng, sc, *seed)
			return r, err
		})
	}
	if want("fig5") || want("fig6") {
		run("Figures 5 and 6 (§6.1, objdet co-runner)", func() (fmt.Stringer, error) {
			r, err := sim.RunObjdetSuiteCtx(ctx, eng, sc, *seed)
			if err == nil {
				fmt.Print(r.String())
				fmt.Println("  paper: fragmentation drops to ~1 for every benchmark (Fig 5);")
				fmt.Println("  improvement 4% geomean, 9% max on xz, never negative (Fig 6)")
				return nil, nil
			}
			return r, err
		})
	}
	if want("fig7") {
		run("Figure 7 (§6.1, combination of co-runners)", func() (fmt.Stringer, error) {
			r, err := sim.RunCombinationSuiteCtx(ctx, eng, sc, *seed)
			if err == nil {
				fmt.Print(r.String())
				fmt.Println("  paper: 3% geomean, 5% max on mcf — about 1% below the objdet-only scenario")
				return nil, nil
			}
			return r, err
		})
	}
	if want("fig6") {
		run("Section 6.1: low-TLB-pressure applications", func() (fmt.Stringer, error) {
			r, err := sim.RunLowPressureCtx(ctx, eng, sc, *seed)
			return r, err
		})
	}
	if want("table4") {
		run("Table 4 (§6.3)", func() (fmt.Stringer, error) {
			r, err := sim.RunTable4Ctx(ctx, eng, sc, *seed)
			return r, err
		})
	}
	if want("sec62") {
		run("Section 6.2 (reservation waste)", func() (fmt.Stringer, error) {
			r, err := sim.RunSec62Ctx(ctx, eng, sc, *seed)
			return r, err
		})
	}
	if want("sec64") {
		run("Section 6.4 (allocation latency)", func() (fmt.Stringer, error) {
			r, err := sim.RunSec64Ctx(ctx, eng, sc, *seed)
			return r, err
		})
	}
	if want("ablation") {
		run("Ablation: reservation granularity", func() (fmt.Stringer, error) {
			r, err := sim.RunGranularityCtx(ctx, eng, sc, *seed)
			return r, err
		})
		run("Ablation: PaRT locking", func() (fmt.Stringer, error) {
			return sim.RunLockingAblation(64, 20000), nil
		})
		run("Ablation: reclaim watermark", func() (fmt.Stringer, error) {
			r, err := sim.RunReclaimSweepCtx(ctx, eng, sc, *seed)
			return r, err
		})
		run("Extension: five-level paging", func() (fmt.Stringer, error) {
			r, err := sim.RunFiveLevelComparisonCtx(ctx, eng, sc, *seed)
			return r, err
		})
		run("Baseline: transparent huge pages vs PTEMagnet", func() (fmt.Stringer, error) {
			r, err := sim.RunTHPComparisonCtx(ctx, eng, sc, *seed)
			return r, err
		})
		run("Baseline: CA paging vs PTEMagnet", func() (fmt.Stringer, error) {
			r, err := sim.RunCAPagingComparisonCtx(ctx, eng, sc, *seed)
			return r, err
		})
		run("Ablation: enable threshold", func() (fmt.Stringer, error) {
			r, err := sim.RunThresholdDemo(sc, *seed)
			return r, err
		})
	}

	// The multi-tenant sweep is opt-in (-exp multitenant), not part of
	// "all": it measures the cross-VM packing, not a paper table, and
	// keeping it out of "all" keeps that output stable.
	if *exp == "multitenant" {
		run("Multi-tenant host (N VMs, shared host)", func() (fmt.Stringer, error) {
			var counts []int
			if *vms > 0 {
				counts = []int{*vms}
			}
			r, err := sim.RunMultiTenantCtx(ctx, eng, sc, *seed, counts)
			return r, err
		})
	}

	if collector != nil {
		recs := collector.Records()
		if *telemetry != "" {
			if err := writeTelemetry(*telemetry, recs, obs.WriteJSONL); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				failed = true
			}
		}
		if *telemetryCSV != "" {
			if err := writeTelemetry(*telemetryCSV, recs, obs.WriteCSV); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				failed = true
			}
		}
	}

	if failed {
		os.Exit(1)
	}
}

func writeTelemetry(path string, recs []obs.RunRecord, write func(w io.Writer, recs []obs.RunRecord) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
