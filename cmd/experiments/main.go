// Command experiments regenerates every table and figure of the PTEMagnet
// paper's evaluation on the simulated platform and prints paper-versus-
// measured comparisons.
//
// Usage:
//
//	experiments [-exp all|table1|fig5|fig6|fig7|table4|sec62|sec64|ablation] [-quick] [-seed N]
//
// fig5 and fig6 come from the same runs (the objdet suite) and print
// together. With -quick the reduced test scale is used (seconds instead of
// minutes); headline numbers in EXPERIMENTS.md come from the default scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ptemagnet/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig5, fig6, fig7, table4, sec62, sec64, ablation")
	quick := flag.Bool("quick", false, "use the reduced quick scale")
	seed := flag.Int64("seed", 11, "simulation seed")
	flag.Parse()

	sc := sim.DefaultScale()
	if *quick {
		sc = sim.QuickScale()
	}

	run := func(name string, f func() error) {
		t0 := time.Now()
		fmt.Printf("==> %s\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("    (%.1fs)\n\n", time.Since(t0).Seconds())
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("Table 1 (§3.3)", func() error {
			r, err := sim.RunTable1(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		})
	}
	if want("fig5") || want("fig6") {
		run("Figures 5 and 6 (§6.1, objdet co-runner)", func() error {
			r, err := sim.RunObjdetSuite(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			fmt.Println("  paper: fragmentation drops to ~1 for every benchmark (Fig 5);")
			fmt.Println("  improvement 4% geomean, 9% max on xz, never negative (Fig 6)")
			return nil
		})
	}
	if want("fig7") {
		run("Figure 7 (§6.1, combination of co-runners)", func() error {
			r, err := sim.RunCombinationSuite(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			fmt.Println("  paper: 3% geomean, 5% max on mcf — about 1% below the objdet-only scenario")
			return nil
		})
	}
	if want("fig6") {
		run("Section 6.1: low-TLB-pressure applications", func() error {
			r, err := sim.RunLowPressure(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		})
	}
	if want("table4") {
		run("Table 4 (§6.3)", func() error {
			r, err := sim.RunTable4(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		})
	}
	if want("sec62") {
		run("Section 6.2 (reservation waste)", func() error {
			r, err := sim.RunSec62(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		})
	}
	if want("sec64") {
		run("Section 6.4 (allocation latency)", func() error {
			r, err := sim.RunSec64(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		})
	}
	if want("ablation") {
		run("Ablation: reservation granularity", func() error {
			r, err := sim.RunGranularity(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		})
		run("Ablation: PaRT locking", func() error {
			fmt.Print(sim.RunLockingAblation(64, 20000).String())
			return nil
		})
		run("Ablation: reclaim watermark", func() error {
			r, err := sim.RunReclaimSweep(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		})
		run("Extension: five-level paging", func() error {
			r, err := sim.RunFiveLevelComparison(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		})
		run("Baseline: transparent huge pages vs PTEMagnet", func() error {
			r, err := sim.RunTHPComparison(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		})
		run("Baseline: CA paging vs PTEMagnet", func() error {
			r, err := sim.RunCAPagingComparison(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		})
		run("Ablation: enable threshold", func() error {
			r, err := sim.RunThresholdDemo(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		})
	}
}
