// Command experiments regenerates every table and figure of the PTEMagnet
// paper's evaluation on the simulated platform and prints paper-versus-
// measured comparisons.
//
// Usage:
//
//	experiments [-exp all|table1|fig5|fig6|fig7|table4|sec62|sec64|ablation|multitenant|migration|chaos]
//	            [-quick] [-seed N] [-parallel N] [-progress] [-vms N] [-list]
//	            [-telemetry run.jsonl] [-telemetry-csv run.csv]
//	            [-heartbeat 30s] [-pprof localhost:6060]
//
// Experiments live in a registry (sim.Experiments); -list prints it. The
// -exp selector matches an experiment's canonical name (e.g. objdet-suite,
// granularity) or one of its aliases: fig5/fig6/fig7 select by figure,
// ablation selects the whole ablation group, and all runs the default set.
//
// -exp multitenant runs the multi-VM sweep (2/4/8 VMs on one shared host,
// plus a VM-churn scenario); -exp migration the live-migration sweep; -exp
// chaos the fault-injection-and-recovery sweep (default vs PTEMagnet under
// escalating deterministic fault rates, plus mid-migration OOM-and-retry).
// All three are opt-in, not part of "all". -vms narrows the multitenant
// sweep to one VM count.
//
// fig5 and fig6 come from the same runs (the objdet suite) and print
// together. With -quick the reduced test scale is used (seconds instead of
// minutes); headline numbers in EXPERIMENTS.md come from the default scale.
//
// Scenarios within each experiment run through the engine's worker pool
// (-parallel, default GOMAXPROCS); results are deterministic for any
// worker count. A failing scenario does not abort the rest: partial
// results print, the error is reported, and the process exits non-zero
// at the end.
//
// -telemetry / -telemetry-csv write one RunRecord per executed scenario
// (see EXPERIMENTS.md for the schema); everything except elapsed_ms is
// byte-identical for any -parallel value. -heartbeat prints periodic
// in-flight progress on stderr; -pprof serves net/http/pprof on the given
// address for live profiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ptemagnet/internal/engine"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, a registry name, or an alias (see -list)")
	list := flag.Bool("list", false, "list the experiment registry and exit")
	quick := flag.Bool("quick", false, "use the reduced quick scale")
	seed := flag.Int64("seed", 11, "simulation seed")
	vms := flag.Int("vms", 0, "multitenant only: run a single VM count (2, 4 or 8; 0 = the full sweep)")
	parallel := flag.Int("parallel", 0, "concurrent scenarios per experiment (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report per-scenario completion on stderr")
	telemetry := flag.String("telemetry", "", "write per-scenario RunRecords as JSON Lines to this file")
	telemetryCSV := flag.String("telemetry-csv", "", "write per-scenario RunRecords as CSV to this file")
	heartbeat := flag.Duration("heartbeat", 0, "report in-flight progress on stderr at this interval (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *list {
		for _, info := range sim.Experiments() {
			sel := info.Name
			if len(info.Tags) > 0 {
				sel += " (" + strings.Join(info.Tags, ", ") + ")"
			}
			scope := "all"
			if !info.InAll {
				scope = "opt-in"
			}
			fmt.Printf("  %-36s  %-7s  %s\n", sel, scope, info.Title)
		}
		return
	}

	selected, err := sim.MatchExperiments(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v (use -list to see the registry)\n", err)
		os.Exit(2)
	}

	sc := sim.DefaultScale()
	if *quick {
		sc = sim.QuickScale()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: pprof server: %v\n", err)
			}
		}()
	}

	var collector *obs.Collector
	if *telemetry != "" || *telemetryCSV != "" {
		collector = &obs.Collector{}
		ctx = obs.WithCollector(ctx, collector)
	}

	eng := engine.New(*parallel)
	if *progress {
		eng.OnEvent = func(ev engine.Event) {
			status := "ok"
			if ev.Err != nil {
				status = "FAILED: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s/%s (%.1fs) %s\n",
				ev.Done, ev.Total, ev.Set, ev.Scenario, ev.Elapsed.Seconds(), status)
		}
	}
	if *heartbeat > 0 {
		eng.HeartbeatEvery = *heartbeat
		eng.OnHeartbeat = func(hb engine.Heartbeat) {
			fmt.Fprintf(os.Stderr, "  ... %s: %d/%d scenarios done after %.0fs\n",
				hb.Set, hb.Done, hb.Total, hb.Elapsed.Seconds())
		}
	}

	runOpts := []sim.RunOpt{sim.WithEngine(eng), sim.WithScale(sc), sim.WithSeed(*seed)}
	if *vms > 0 {
		runOpts = append(runOpts, sim.WithVMCounts(*vms))
	}

	failed := false
	// Each experiment dispatches through the registry. The engine delivers
	// partial results alongside the error, so a failure prints whatever
	// completed, marks the process for a non-zero exit, and lets the
	// remaining experiments proceed.
	for _, info := range selected {
		t0 := time.Now()
		fmt.Printf("==> %s\n", info.Title)
		r, err := sim.RunExperiment(ctx, info.Name, runOpts...)
		if r != nil {
			fmt.Print(r.String())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", info.Title, err)
			failed = true
			fmt.Println()
			continue
		}
		for _, note := range info.Notes {
			fmt.Println(note)
		}
		fmt.Printf("    (%.1fs)\n\n", time.Since(t0).Seconds())
	}

	if collector != nil {
		recs := collector.Records()
		if *telemetry != "" {
			if err := writeTelemetry(*telemetry, recs, obs.WriteJSONL); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				failed = true
			}
		}
		if *telemetryCSV != "" {
			if err := writeTelemetry(*telemetryCSV, recs, obs.WriteCSV); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				failed = true
			}
		}
	}

	if failed {
		os.Exit(1)
	}
}

func writeTelemetry(path string, recs []obs.RunRecord, write func(w io.Writer, recs []obs.RunRecord) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
