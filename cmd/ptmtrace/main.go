// Command ptmtrace records and analyzes simulator event traces.
//
//	ptmtrace record -o run.trace -bench pagerank -corunners objdet -policy ptemagnet
//	ptmtrace summarize run.trace
//
// record runs a scenario with the trace collector attached and writes the
// per-access event stream to a file; summarize aggregates a recorded trace
// (TLB behaviour, cycle split, fault mix, hottest pages). Both subcommands
// accept -json for machine-readable output; record's JSON includes the
// machine's full counter registry (DESIGN.md §8) alongside the trace
// metadata.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ptemagnet/internal/guestos"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/sim"
	"ptemagnet/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "summarize":
		summarize(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ptmtrace record -o FILE [scenario flags] | ptmtrace summarize [-json] FILE")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "run.trace", "output trace file")
	bench := fs.String("bench", "pagerank", "primary benchmark")
	corunners := fs.String("corunners", "", "comma-separated co-runner list")
	policy := fs.String("policy", "default", "allocator policy: default, ptemagnet, capaging, or thp")
	seed := fs.Int64("seed", 11, "simulation seed")
	quick := fs.Bool("quick", true, "use the reduced quick scale (traces get large fast)")
	asJSON := fs.Bool("json", false, "emit the recording report as JSON (with the counter registry)")
	fs.Parse(args)

	s := sim.Scenario{Benchmark: *bench, Seed: *seed, Scale: sim.DefaultScale()}
	if *quick {
		s.Scale = sim.QuickScale()
	}
	if *corunners != "" {
		s.Corunners = strings.Split(*corunners, ",")
	}
	switch *policy {
	case "default":
		s.Policy = guestos.PolicyDefault
	case "ptemagnet":
		s.Policy = guestos.PolicyPTEMagnet
	case "capaging":
		s.Policy = guestos.PolicyCAPaging
	case "thp":
		s.Policy = guestos.PolicyTHP
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		fatal(err)
	}
	collector := trace.NewCollector(tw)

	m, err := sim.BuildMachine(s)
	if err != nil {
		fatal(err)
	}
	m.SetTracer(collector)
	if err := m.RunWith(context.Background()); err != nil {
		fatal(err)
	}
	if err := collector.Close(); err != nil {
		fatal(err)
	}
	if *asJSON {
		type recordOut struct {
			Trace       string       `json:"trace"`
			Events      uint64       `json:"events"`
			Scenario    string       `json:"scenario"`
			Fingerprint string       `json:"fingerprint"`
			Tasks       []string     `json:"tasks"`
			Counters    obs.Snapshot `json:"counters"`
		}
		rep := recordOut{
			Trace:       *out,
			Events:      tw.Count(),
			Scenario:    s.Identity(),
			Fingerprint: s.Fingerprint(),
			Counters:    m.Registry().Snapshot(),
		}
		for _, task := range m.Tasks() {
			rep.Tasks = append(rep.Tasks, task.Name())
		}
		writeJSON(rep)
		return
	}
	fmt.Printf("recorded %d events to %s\n", tw.Count(), *out)
	for i, task := range m.Tasks() {
		fmt.Printf("  task %d: %s\n", i, task.Name())
	}
}

func summarize(args []string) {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the summary as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	s, err := trace.Summarize(f, 10)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		writeJSON(s)
		return
	}
	fmt.Printf("events            %d  (%d accesses, %d faults)\n", s.Events, s.Accesses, s.Faults)
	if s.Accesses > 0 {
		fmt.Printf("writes            %d (%.1f%%)\n", s.Writes, 100*float64(s.Writes)/float64(s.Accesses))
		fmt.Printf("TLB hit rate      %.2f%%\n", 100*float64(s.TLBHits)/float64(s.Accesses))
		fmt.Printf("cycles            translation %d, data %d (%.2f translation share)\n",
			s.TranslationCycles, s.DataCycles,
			float64(s.TranslationCycles)/float64(s.TranslationCycles+s.DataCycles))
	}
	var tasks []uint8
	for task := range s.PerTask {
		tasks = append(tasks, task)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i] < tasks[j] })
	for _, task := range tasks {
		fmt.Printf("task %d accesses   %d\n", task, s.PerTask[task])
	}
	var kinds []uint8
	for k := range s.FaultsByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("faults %-14v %d\n", guestos.FaultKind(k), s.FaultsByKind[k])
	}
	fmt.Println("hottest pages:")
	for _, pc := range s.HotPages {
		fmt.Printf("  %#014x  %d accesses\n", uint64(pc.Page), pc.Count)
	}
}

func writeJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ptmtrace: %v\n", err)
	os.Exit(1)
}
