// Command fraginspect runs a colocation scenario and dumps the low-level
// memory-layout state the headline metrics summarize: the host-PT
// fragmentation histogram per process, guest buddy-allocator free-list
// shape, and a physical-contiguity map of the primary benchmark's virtual
// space. It exists for studying *why* a configuration fragments.
//
// Usage:
//
//	fraginspect -bench pagerank -corunners stress-ng -policy default
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/sim"
	"ptemagnet/internal/vm"
)

func main() {
	bench := flag.String("bench", "pagerank", "primary benchmark")
	corunners := flag.String("corunners", "stress-ng", "comma-separated co-runner list")
	policy := flag.String("policy", "default", "allocator policy: default or ptemagnet")
	seed := flag.Int64("seed", 11, "simulation seed")
	quick := flag.Bool("quick", true, "use the reduced quick scale")
	flag.Parse()

	sc := sim.DefaultScale()
	if *quick {
		sc = sim.QuickScale()
	}
	pol := guestos.PolicyDefault
	if *policy == "ptemagnet" {
		pol = guestos.PolicyPTEMagnet
	}

	cfg := vm.DefaultConfig()
	cfg.HostMemBytes = sc.HostMemBytes
	cfg.GuestMemBytes = sc.GuestMemBytes
	cfg.Policy = pol
	cfg.Seed = *seed
	cfg.Quantum = 2
	m, err := vm.New(cfg)
	if err != nil {
		fatal(err)
	}
	prog, err := sim.NewBenchmark(*bench, sc, *seed)
	if err != nil {
		fatal(err)
	}
	if _, err := m.AddTask(prog, vm.RolePrimary); err != nil {
		fatal(err)
	}
	if *corunners != "" {
		for i, name := range strings.Split(*corunners, ",") {
			co, err := sim.NewCorunner(name, sc, *seed+int64(i)+100)
			if err != nil {
				fatal(err)
			}
			if _, err := m.AddTask(co, vm.RoleCorunner); err != nil {
				fatal(err)
			}
		}
	}
	if err := m.Run(vm.RunOptions{}); err != nil {
		fatal(err)
	}

	fmt.Printf("policy: %v\n\n", pol)
	for _, task := range m.Tasks() {
		dumpProcess(m, task)
	}
	dumpBuddy(m)
	dumpWalkHistogram(m)
}

// dumpWalkHistogram prints the per-walk latency distribution — the per-walk
// view of the fragmentation penalty (compare policies to watch the mass
// shift between buckets).
func dumpWalkHistogram(m *vm.Machine) {
	s := m.Walker().Snapshot()
	fmt.Printf("\nnested-walk latency distribution (%d walks, p50 ≤ %d cycles, p99 ≤ %d cycles)\n",
		s.Walks, s.WalkLatencyPercentile(0.5), s.WalkLatencyPercentile(0.99))
	var max uint64
	for _, c := range s.WalkHist {
		if c > max {
			max = c
		}
	}
	for i, c := range s.WalkHist {
		if c == 0 {
			continue
		}
		bar := int(c * 50 / max)
		fmt.Printf("  <%6d cyc  %8d  %s\n", 1<<(i+1), c, strings.Repeat("#", bar))
	}
}

func dumpProcess(m *vm.Machine, task *vm.Task) {
	proc := task.Process()
	rep := metrics.HostPTFragmentation(proc.PageTable(), m.HostVM().PageTable())
	fmt.Printf("process %-12s  rss %6d pages  host-PT frag %.2f over %d groups\n",
		task.Name(), proc.RSS(), rep.Mean, rep.Groups)
	fmt.Printf("  hPTE-blocks-per-group histogram: ")
	for n, c := range rep.Histogram {
		fmt.Printf("%d:%d ", n+1, c)
	}
	fmt.Println()
	// Physical contiguity map of the first VMA span: one char per page
	// run (C = continues previous page physically, gap digit = log2 of
	// the jump).
	fmt.Printf("  contiguity (first 512 mapped pages): ")
	var prev arch.PhysAddr
	count := 0
	proc.PageTable().ForEachMapped(func(va arch.VirtAddr, pa arch.PhysAddr, _ pagetable.Flags) bool {
		if count >= 512 {
			return false
		}
		if count > 0 {
			if pa == prev+arch.PageSize {
				fmt.Print(".")
			} else {
				fmt.Print("|")
			}
		}
		prev = pa
		count++
		return true
	})
	fmt.Println("\n  ('.' physically adjacent to previous page, '|' discontinuity)")
}

func dumpBuddy(m *vm.Machine) {
	b := m.Guest().Memory().Buddy()
	fmt.Printf("\nguest buddy allocator: %d/%d frames free, largest free order %d\n",
		b.FreeFrames(), b.NumFrames(), b.LargestFreeOrder())
	counts := b.FreeBlocksByOrder()
	fmt.Printf("  free blocks by order: ")
	for o, c := range counts {
		if c > 0 {
			fmt.Printf("2^%d:%d ", o, c)
		}
	}
	fmt.Println()
	s := b.Snapshot()
	fmt.Printf("  splits %d  merges %d  failures %d\n", s.Splits, s.Merges, s.Failures)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fraginspect: %v\n", err)
	os.Exit(1)
}
