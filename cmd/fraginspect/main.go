// Command fraginspect runs a colocation scenario and dumps the low-level
// memory-layout state the headline metrics summarize: the host-PT
// fragmentation histogram per process, guest buddy-allocator free-list
// shape, and a physical-contiguity map of the primary benchmark's virtual
// space. It exists for studying *why* a configuration fragments.
//
// Counters come from the machine's aggregated observation (Observe) and
// named counter registry (DESIGN.md §8); only layout state that is not a
// counter — free-list shape, per-page contiguity — is read from the
// components directly.
//
// With -vms N (N > 1) the same study runs on a multi-tenant host: the
// primary benchmark boots in vm0 (with the chosen -policy) and each
// co-runner gets its own default-policy pressure VM, so the layout dump
// shows cross-VM interleaving on the shared host instead of same-guest
// colocation.
//
// Usage:
//
//	fraginspect -bench pagerank -corunners stress-ng -policy default [-vms N] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/balloon"
	"ptemagnet/internal/buddy"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/physmem"
	"ptemagnet/internal/sim"
	"ptemagnet/internal/vm"
)

func main() {
	bench := flag.String("bench", "pagerank", "primary benchmark")
	corunners := flag.String("corunners", "stress-ng", "comma-separated co-runner list")
	policy := flag.String("policy", "default", "allocator policy: default or ptemagnet")
	seed := flag.Int64("seed", 11, "simulation seed")
	quick := flag.Bool("quick", true, "use the reduced quick scale")
	vms := flag.Int("vms", 1, "number of VMs: 1 = same-guest colocation; N>1 puts the primary in vm0 and each co-runner in its own pressure VM")
	overcommit := flag.Int("overcommit", 0, "overcommit ratio in percent (e.g. 150): shrink the host so combined guest memory is this fraction of it and arm the balloon controller; 0 = off (requires -vms > 1)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of the text dump")
	flag.Parse()
	if *vms < 1 {
		fatal(fmt.Errorf("-vms must be >= 1, got %d", *vms))
	}
	if *overcommit != 0 && (*overcommit < 100 || *vms < 2) {
		fatal(fmt.Errorf("-overcommit needs a ratio >= 100 and -vms > 1, got %d%% with %d VM(s)", *overcommit, *vms))
	}

	sc := sim.DefaultScale()
	if *quick {
		sc = sim.QuickScale()
	}
	pol := guestos.PolicyDefault
	if *policy == "ptemagnet" {
		pol = guestos.PolicyPTEMagnet
	}

	m, err := buildMachine(sc, pol, *seed, *vms, *overcommit)
	if err != nil {
		fatal(err)
	}
	prog, err := sim.NewBenchmark(*bench, sc, *seed)
	if err != nil {
		fatal(err)
	}
	if _, err := m.Guests()[0].AddTask(prog, vm.RolePrimary); err != nil {
		fatal(err)
	}
	if *corunners != "" {
		for i, name := range strings.Split(*corunners, ",") {
			co, err := sim.NewCorunner(name, sc, *seed+int64(i)+100)
			if err != nil {
				fatal(err)
			}
			// Same guest as the primary when single-VM; otherwise each
			// co-runner rotates through the pressure VMs.
			g := m.Guests()[0]
			if *vms > 1 {
				g = m.Guests()[1+i%(*vms-1)]
			}
			if _, err := g.AddTask(co, vm.RoleCorunner); err != nil {
				fatal(err)
			}
		}
	}
	if err := m.RunWith(context.Background()); err != nil {
		fatal(err)
	}

	rep := m.Observe()
	if *asJSON {
		dumpJSON(m, pol, rep)
		return
	}

	fmt.Printf("policy: %v\n\n", pol)
	for _, task := range m.Tasks() {
		dumpProcess(m, task)
	}
	dumpBuddies(m, rep)
	dumpWalkHistogram(rep)
}

// buildMachine assembles either the legacy single-VM colocation machine or
// an n-VM host: the primary's guest (vm0) gets the chosen policy, pressure
// guests run the default allocator, each with its own kernel seed. A
// nonzero overcommit ratio (percent) shrinks the host so the guests'
// combined memory oversubscribes it and arms the balloon controller,
// making ballooned-out frames appear in the layout dump.
func buildMachine(sc sim.Scale, pol guestos.AllocPolicy, seed int64, n, overcommitPct int) (*vm.Machine, error) {
	if n == 1 {
		cfg := vm.DefaultConfig()
		cfg.HostMemBytes = sc.HostMemBytes
		cfg.GuestMemBytes = sc.GuestMemBytes
		cfg.Policy = pol
		cfg.Seed = seed
		cfg.Quantum = 2
		return vm.New(cfg)
	}
	hc := vm.HostConfig{HostMemBytes: sc.HostMemBytes, Quantum: 2}
	guestMem := func(int) uint64 { return sc.GuestMemBytes }
	if overcommitPct > 0 {
		// Size guests by role (1.5× their footprint), the overcommit
		// sweep's sizing, so the declared ratio reflects what the
		// workloads actually touch and ballooning genuinely engages.
		guestMem = func(i int) uint64 {
			bytes := sc.CorunnerFootprint * 3 / 2
			if i == 0 {
				bytes = sc.DatasetBytes * 3 / 2
			}
			return (bytes + arch.PageSize - 1) / arch.PageSize * arch.PageSize
		}
		var combined uint64
		for i := 0; i < n; i++ {
			combined += guestMem(i)
		}
		hostMem := combined * 100 / uint64(overcommitPct)
		hc.HostMemBytes = (hostMem + arch.PageSize - 1) / arch.PageSize * arch.PageSize
		hc.Balloon = balloon.Config{Enabled: true}
	}
	for i := 0; i < n; i++ {
		gp := guestos.PolicyDefault
		if i == 0 {
			gp = pol
		}
		hc.Guests = append(hc.Guests, vm.GuestConfig{
			MemBytes: guestMem(i),
			Policy:   gp,
			Seed:     seed + int64(i)*10,
		})
	}
	return vm.NewHost(hc)
}

// jsonOutput is the -json document: the per-process layout views plus the
// machine's full counter registry in registration order.
type jsonOutput struct {
	Policy    string     `json:"policy"`
	Processes []jsonProc `json:"processes"`
	// Buddy is vm0's (the primary's guest); VMBuddies lists every live
	// guest's allocator on a multi-VM run.
	Buddy     jsonBuddy    `json:"buddy"`
	VMBuddies []jsonBuddy  `json:"vm_buddies,omitempty"`
	Counters  obs.Snapshot `json:"counters"`
}

type jsonProc struct {
	Name           string  `json:"name"`
	VM             int     `json:"vm,omitempty"`
	RSSPages       uint64  `json:"rss_pages"`
	FragMean       float64 `json:"frag_mean"`
	FragGroups     int     `json:"frag_groups"`
	FullyScattered float64 `json:"fully_scattered"`
	Histogram      []int   `json:"histogram"`
}

type jsonBuddy struct {
	VM                int      `json:"vm,omitempty"`
	FreeFrames        uint64   `json:"free_frames"`
	TotalFrames       uint64   `json:"total_frames"`
	LargestFreeOrder  int      `json:"largest_free_order"`
	FreeBlocksByOrder []uint64 `json:"free_blocks_by_order"`
	// BalloonFrames counts guest frames ballooned out to the host (their
	// host backing is dropped); only present on balloon-armed runs.
	BalloonFrames uint64 `json:"balloon_frames,omitempty"`
}

func buddyJSON(b *buddy.Allocator) jsonBuddy {
	counts := b.FreeBlocksByOrder()
	return jsonBuddy{
		FreeFrames:        b.FreeFrames(),
		TotalFrames:       b.NumFrames(),
		LargestFreeOrder:  b.LargestFreeOrder(),
		FreeBlocksByOrder: counts[:],
	}
}

func dumpJSON(m *vm.Machine, pol guestos.AllocPolicy, rep vm.Report) {
	out := jsonOutput{
		Policy:   pol.String(),
		Counters: m.Registry().Snapshot(),
	}
	for _, task := range m.Tasks() {
		proc := task.Process()
		g := m.Guests()[task.GuestIndex()]
		frag := metrics.HostPTFragmentation(proc.PageTable(), g.HostVM().PageTable())
		out.Processes = append(out.Processes, jsonProc{
			Name:           task.Name(),
			VM:             g.Index(),
			RSSPages:       proc.RSS(),
			FragMean:       frag.Mean,
			FragGroups:     frag.Groups,
			FullyScattered: frag.FullyScattered,
			Histogram:      frag.Histogram[:],
		})
	}
	out.Buddy = buddyJSON(m.Guest().Memory().Buddy())
	out.Buddy.BalloonFrames = m.Guest().BalloonPages()
	if gs := m.Guests(); len(gs) > 1 {
		for _, g := range gs {
			if !g.Alive() {
				continue
			}
			jb := buddyJSON(g.Kernel().Memory().Buddy())
			jb.VM = g.Index()
			jb.BalloonFrames = g.Kernel().BalloonPages()
			out.VMBuddies = append(out.VMBuddies, jb)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// dumpWalkHistogram prints the per-walk latency distribution — the per-walk
// view of the fragmentation penalty (compare policies to watch the mass
// shift between buckets).
func dumpWalkHistogram(rep vm.Report) {
	s := rep.Whole.Walker
	fmt.Printf("\nnested-walk latency distribution (%d walks, p50 ≤ %d cycles, p99 ≤ %d cycles)\n",
		s.Walks, s.WalkLatencyPercentile(0.5), s.WalkLatencyPercentile(0.99))
	var max uint64
	for _, c := range s.WalkHist {
		if c > max {
			max = c
		}
	}
	for i, c := range s.WalkHist {
		if c == 0 {
			continue
		}
		bar := int(c * 50 / max)
		fmt.Printf("  <%6d cyc  %8d  %s\n", 1<<(i+1), c, strings.Repeat("#", bar))
	}
}

func dumpProcess(m *vm.Machine, task *vm.Task) {
	proc := task.Process()
	g := m.Guests()[task.GuestIndex()]
	rep := metrics.HostPTFragmentation(proc.PageTable(), g.HostVM().PageTable())
	name := task.Name()
	if len(m.Guests()) > 1 {
		name = fmt.Sprintf("vm%d/%s", g.Index(), name)
	}
	fmt.Printf("process %-12s  rss %6d pages  host-PT frag %.2f over %d groups\n",
		name, proc.RSS(), rep.Mean, rep.Groups)
	fmt.Printf("  hPTE-blocks-per-group histogram: ")
	for n, c := range rep.Histogram {
		fmt.Printf("%d:%d ", n+1, c)
	}
	fmt.Println()
	// Physical contiguity map of the first VMA span: one char per page
	// run (C = continues previous page physically, gap digit = log2 of
	// the jump).
	fmt.Printf("  contiguity (first 512 mapped pages): ")
	var prev arch.PhysAddr
	count := 0
	proc.PageTable().ForEachMapped(func(va arch.VirtAddr, pa arch.PhysAddr, _ pagetable.Flags) bool {
		if count >= 512 {
			return false
		}
		if count > 0 {
			if pa == prev+arch.PageSize {
				fmt.Print(".")
			} else {
				fmt.Print("|")
			}
		}
		prev = pa
		count++
		return true
	})
	fmt.Println("\n  ('.' physically adjacent to previous page, '|' discontinuity)")
}

func dumpBuddies(m *vm.Machine, rep vm.Report) {
	if len(m.Guests()) == 1 {
		dumpBuddy("guest", m.Guest().Memory().Buddy(), rep.Whole.GuestBuddy, m.Guest())
		return
	}
	for _, g := range m.Guests() {
		if !g.Alive() {
			continue
		}
		dumpBuddy(fmt.Sprintf("vm%d guest", g.Index()), g.Kernel().Memory().Buddy(), g.Snapshot().GuestBuddy, g.Kernel())
	}
}

func dumpBuddy(label string, b *buddy.Allocator, s buddy.Stats, k *guestos.Kernel) {
	fmt.Printf("\n%s buddy allocator: %d/%d frames free in %d extents, largest free order %d\n",
		label, b.FreeFrames(), b.NumFrames(), b.FreeExtents(), b.LargestFreeOrder())
	counts := b.FreeBlocksByOrder()
	fmt.Printf("  free blocks by order: ")
	for o, c := range counts {
		if c > 0 {
			fmt.Printf("2^%d:%d ", o, c)
		}
	}
	fmt.Println()
	fmt.Printf("  splits %d  merges %d  failures %d\n", s.Splits, s.Merges, s.Failures)
	// Balloon-armed runs only: frames this guest surrendered to the host,
	// cross-checked against the physmem kind tags.
	if pages := k.BalloonPages(); pages > 0 {
		fmt.Printf("  ballooned out: %d frames (target %d, %d tagged balloon in guest physmem)\n",
			pages, k.BalloonTarget(), k.Memory().CountKind(physmem.KindBalloon))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fraginspect: %v\n", err)
	os.Exit(1)
}
