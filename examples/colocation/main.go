// Colocation walks through the paper's §3.3 motivating experiment with the
// low-level machine API: pagerank shares a VM with a stress-ng style
// memory hog during its allocation phase; the hog is stopped once pagerank
// finishes initializing, so the only thing it leaves behind is a
// fragmented guest-physical layout — and pagerank's steady phase still
// slows down, purely from longer nested page walks through the scattered
// host page table.
package main

import (
	"fmt"
	"log"

	"ptemagnet"
)

// run executes pagerank (optionally colocated) and reports its steady-state
// cycles plus the walker's host-dimension behaviour.
func run(colocated bool) (ptemagnet.TaskReport, uint64, uint64) {
	cfg := ptemagnet.DefaultMachineConfig()
	cfg.HostMemBytes = 128 << 20
	cfg.GuestMemBytes = 64 << 20
	cfg.Quantum = 2 // aggressive fault interleaving across vCPUs
	cfg.Seed = 7
	// Shrink the caches along with the 12MB dataset so the footprint-to-
	// LLC ratio stays in the regime the paper studies (16GB vs 25MB).
	cfg.Cache = ptemagnet.DefaultCacheConfig(cfg.NumCPUs)
	cfg.Cache.L2.SizeBytes = 64 << 10
	cfg.Cache.LLC.SizeBytes = 128 << 10
	m, err := ptemagnet.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	pagerank := ptemagnet.NewPagerank(ptemagnet.GraphConfig{
		DatasetBytes: 12 << 20,
		Accesses:     150_000,
		Seed:         7,
	})
	if _, err := m.AddTask(pagerank, ptemagnet.RolePrimary); err != nil {
		log.Fatal(err)
	}
	if colocated {
		hog := ptemagnet.NewStressNG(ptemagnet.CorunnerConfig{FootprintBytes: 8 << 20, Seed: 8})
		if _, err := m.AddTask(hog, ptemagnet.RoleCorunner); err != nil {
			log.Fatal(err)
		}
	}
	// §3.3 methodology: the co-runner stops the moment pagerank finishes
	// allocating, so the steady phase has no cache contention — only the
	// fragmentation the hog caused survives.
	if err := m.Run(ptemagnet.RunOptions{StopCorunnersAtPrimaryInit: true}); err != nil {
		log.Fatal(err)
	}
	walk := m.Observe().Steady.Walker
	return m.Report()[0], walk.WalkCycles, walk.MemServed(ptemagnet.DimHost)
}

func main() {
	soloRep, soloWalk, soloMem := run(false)
	colRep, colWalk, colMem := run(true)

	fmt.Println("pagerank steady phase, default kernel (stress-ng stopped after pagerank's init)")
	fmt.Printf("%-34s  %12s  %12s  %s\n", "", "standalone", "colocated", "change")
	row := func(name string, a, b uint64) {
		fmt.Printf("%-34s  %12d  %12d  %+.0f%%\n", name, a, b,
			(float64(b)/float64(a)-1)*100)
	}
	row("execution cycles", soloRep.SteadyCycles, colRep.SteadyCycles)
	row("page-walk cycles", soloWalk, colWalk)
	row("host-PT accesses from memory", soloMem, colMem)
	fmt.Printf("%-34s  %12.2f  %12.2f\n", "host-PT fragmentation (§3.2)",
		soloRep.Frag.Mean, colRep.Frag.Mean)
	fmt.Printf("%-34s  %11.0f%%  %11.0f%%\n", "groups scattered to 8 blocks",
		soloRep.Frag.FullyScattered*100, colRep.Frag.FullyScattered*100)
	fmt.Println("\nNothing about pagerank's own code or data changed — only where the")
	fmt.Println("guest buddy allocator placed its pages. That is the bottleneck")
	fmt.Println("PTEMagnet removes (run examples/quickstart to see the fix).")
}
