// Quickstart: run one big-memory benchmark (pagerank) colocated with a
// noisy neighbour (MLPerf-style objdet) inside a simulated VM, once under
// the stock Linux allocator and once under PTEMagnet, and print the
// headline comparison — the paper's core result in ~30 lines of API use.
package main

import (
	"fmt"
	"log"

	"ptemagnet"
)

func main() {
	scenario := ptemagnet.Scenario{
		Benchmark: "pagerank",
		Corunners: []string{"objdet"},
		Scale:     ptemagnet.QuickScale(), // switch to DefaultScale() for paper-scale runs
		Seed:      1,
	}

	stock, magnet, err := ptemagnet.RunScenarioPair(scenario)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pagerank colocated with objdet in one VM")
	fmt.Printf("%-26s  %14s  %14s\n", "", "default kernel", "PTEMagnet")
	fmt.Printf("%-26s  %14d  %14d\n", "execution cycles (steady)",
		stock.Task.SteadyCycles, magnet.Task.SteadyCycles)
	fmt.Printf("%-26s  %14.2f  %14.2f\n", "host-PT fragmentation",
		stock.Task.Frag.Mean, magnet.Task.Frag.Mean)
	fmt.Printf("%-26s  %14d  %14d\n", "page-walk cycles",
		stock.Walk.WalkCycles, magnet.Walk.WalkCycles)
	fmt.Printf("%-26s  %14d  %14d\n", "hPT accesses from memory",
		stock.Walk.MemServed(1), magnet.Walk.MemServed(1))
	fmt.Printf("\nPTEMagnet speedup: %+.1f%%  (paper: ~4%% average, up to 9%%)\n",
		magnet.Speedup(stock))
}
