// Kvstore shows how to bring your own workload: it implements the
// ptemagnet.Program interface with an in-memory key-value store — the kind
// of "massive, continually expanding in-memory dataset" the paper's
// introduction motivates — and measures how much PTEMagnet buys it when a
// noisy neighbour shares the VM.
//
// The store models a hash-table service: a bucket array (random accesses,
// Zipf-skewed keys), a value heap (pointer chase from bucket to value), and
// an append-only log (sequential writes). GETs dominate, PUTs append.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ptemagnet"
)

// kvstore implements ptemagnet.Program.
type kvstore struct {
	footprint uint64
	ops       uint64
	rng       *rand.Rand
	zipf      *rand.Zipf

	buckets ptemagnet.VirtAddr
	values  ptemagnet.VirtAddr
	logArea ptemagnet.VirtAddr
	bPages  uint64
	vPages  uint64
	lPages  uint64

	init    uint64 // pages touched during load phase
	loaded  bool
	step    uint64
	pending int                 // accesses left in the current operation
	opAddrs [3]ptemagnet.Access // current operation's access sequence
	logPos  uint64
}

func newKVStore(footprint, ops uint64, seed int64) *kvstore {
	rng := rand.New(rand.NewSource(seed))
	return &kvstore{footprint: footprint, ops: ops, rng: rng}
}

func (k *kvstore) Name() string           { return "kvstore" }
func (k *kvstore) FootprintBytes() uint64 { return k.footprint }
func (k *kvstore) InitDone() bool         { return k.loaded }

func (k *kvstore) Setup(env ptemagnet.Env) error {
	var err error
	// 1/8 buckets, 3/4 values, 1/8 log.
	if k.buckets, err = env.Mmap(k.footprint / 8); err != nil {
		return err
	}
	if k.values, err = env.Mmap(k.footprint * 3 / 4); err != nil {
		return err
	}
	if k.logArea, err = env.Mmap(k.footprint / 8); err != nil {
		return err
	}
	k.bPages = k.footprint / 8 / ptemagnet.PageSize
	k.vPages = k.footprint * 3 / 4 / ptemagnet.PageSize
	k.lPages = k.footprint / 8 / ptemagnet.PageSize
	// Zipf-skewed keys: a few hot buckets, a long tail.
	k.zipf = rand.NewZipf(k.rng, 1.2, 8, k.bPages-1)
	return nil
}

func (k *kvstore) Step(env ptemagnet.Env) (ptemagnet.Access, bool) {
	// Load phase: populate every page (bucket array, values, log head).
	total := k.bPages + k.vPages
	if k.init < total {
		var va ptemagnet.VirtAddr
		if k.init < k.bPages {
			va = k.buckets + ptemagnet.VirtAddr(k.init*ptemagnet.PageSize)
		} else {
			va = k.values + ptemagnet.VirtAddr((k.init-k.bPages)*ptemagnet.PageSize)
		}
		k.init++
		if k.init == total {
			k.loaded = true
		}
		return ptemagnet.Access{VA: va, Write: true}, false
	}
	if k.step >= k.ops {
		return ptemagnet.Access{}, true
	}
	if k.pending > 0 {
		k.pending--
		return k.opAddrs[2-k.pending], false
	}
	k.step++
	bucket := k.zipf.Uint64()
	// GET: bucket read, then value read (pseudo-pointer derived from the
	// bucket, spread over the value heap). 1 in 8 ops is a PUT adding a
	// log append.
	k.opAddrs[0] = ptemagnet.Access{VA: k.buckets + ptemagnet.VirtAddr(bucket*ptemagnet.PageSize+uint64(k.rng.Intn(512)*8))}
	vpage := (bucket*2654435761 + k.step) % k.vPages
	k.opAddrs[1] = ptemagnet.Access{VA: k.values + ptemagnet.VirtAddr(vpage*ptemagnet.PageSize+uint64(k.rng.Intn(512)*8))}
	if k.step%8 == 0 {
		k.logPos++
		lpage := (k.logPos / 16) % k.lPages
		k.opAddrs[2] = ptemagnet.Access{VA: k.logArea + ptemagnet.VirtAddr(lpage*ptemagnet.PageSize), Write: true}
		k.pending = 2
	} else {
		k.opAddrs[2] = k.opAddrs[1]
		k.pending = 1
	}
	return k.opAddrs[0], false
}

func run(policy ptemagnet.AllocPolicy) (uint64, float64) {
	cfg := ptemagnet.DefaultMachineConfig()
	cfg.HostMemBytes = 128 << 20
	cfg.GuestMemBytes = 64 << 20
	cfg.Policy = policy
	cfg.Quantum = 2
	cfg.Seed = 21
	cfg.Cache = ptemagnet.DefaultCacheConfig(cfg.NumCPUs)
	cfg.Cache.L2.SizeBytes = 64 << 10
	cfg.Cache.LLC.SizeBytes = 128 << 10
	m, err := ptemagnet.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	store := newKVStore(16<<20, 120_000, 21)
	if _, err := m.AddTask(store, ptemagnet.RolePrimary); err != nil {
		log.Fatal(err)
	}
	noisy := ptemagnet.NewStressNG(ptemagnet.CorunnerConfig{FootprintBytes: 8 << 20, Seed: 22})
	if _, err := m.AddTask(noisy, ptemagnet.RoleCorunner); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(ptemagnet.RunOptions{}); err != nil {
		log.Fatal(err)
	}
	rep := m.Report()[0]
	return rep.SteadyCycles, rep.Frag.Mean
}

func main() {
	defCycles, defFrag := run(ptemagnet.PolicyDefault)
	magCycles, magFrag := run(ptemagnet.PolicyPTEMagnet)
	fmt.Println("custom key-value store (Zipf GETs + log appends) vs a stress-ng neighbour")
	fmt.Printf("%-28s  %14s  %14s\n", "", "default kernel", "PTEMagnet")
	fmt.Printf("%-28s  %14d  %14d\n", "steady cycles", defCycles, magCycles)
	fmt.Printf("%-28s  %14.2f  %14.2f\n", "host-PT fragmentation", defFrag, magFrag)
	fmt.Printf("\nPTEMagnet speedup for the store: %+.1f%%\n",
		(float64(defCycles)/float64(magCycles)-1)*100)
}
