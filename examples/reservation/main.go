// Reservation drives the Page Reservation Table — the paper's §4 data
// structure — directly through the public API, demonstrating the complete
// reservation life cycle: eager group allocation on first fault, instant
// hits on later faults, entry deletion when a group fills, free() returning
// pages to their reservation, pressure-driven reclamation, and the §6.2
// sparse adversary that maximizes reservation waste.
package main

import (
	"fmt"
	"log"

	"ptemagnet"
	"ptemagnet/internal/physmem"
)

func main() {
	part, err := ptemagnet.NewPaRT(ptemagnet.DefaultPaRTConfig())
	if err != nil {
		log.Fatal(err)
	}
	mem := physmem.New(64 << 20) // 64MB of simulated guest-physical memory
	alloc := func() (ptemagnet.PhysAddr, bool) {
		return mem.AllocGroup(ptemagnet.GroupPages, physmem.KindReserved, physmem.Own(0, 1))
	}

	// --- First fault to a 32KB group reserves the whole group. ---------
	base := ptemagnet.VirtAddr(0x7f00_0000_0000)
	pa, res := part.HandleFault(base+2*ptemagnet.PageSize, alloc)
	fmt.Printf("fault page 2 of group: %v → physical %#x\n", res, uint64(pa))
	fmt.Printf("  live reservations %d, reserved-but-unmapped pages %d\n",
		part.Live(), part.UnusedPages())

	// --- Later faults in the group skip the buddy allocator entirely. --
	for _, idx := range []int{0, 5, 7} {
		pa, res = part.HandleFault(base+ptemagnet.VirtAddr(idx)*ptemagnet.PageSize, alloc)
		fmt.Printf("fault page %d: %v → %#x (contiguous with the group)\n", idx, res, uint64(pa))
	}
	r, ok := part.Lookup(base)
	if !ok {
		log.Fatal("reservation vanished")
	}
	fmt.Printf("  occupancy mask %#08b (pages 0,2,5,7 mapped)\n", r.Mask())

	// --- Filling the group deletes its PaRT entry (§4.2). --------------
	for _, idx := range []int{1, 3, 4, 6} {
		part.HandleFault(base+ptemagnet.VirtAddr(idx)*ptemagnet.PageSize, alloc)
	}
	fmt.Printf("group full: live reservations %d (entry deleted)\n\n", part.Live())

	// --- free() of a partially used group returns pages to it. ---------
	g2 := base + ptemagnet.GroupBytes
	paG2, _ := part.HandleFault(g2, alloc)
	paG2b, _ := part.HandleFault(g2+ptemagnet.PageSize, alloc)
	handled := part.NotifyFree(g2+ptemagnet.PageSize, paG2b, func(pa ptemagnet.PhysAddr) {
		mem.FreeBlock(pa)
	})
	fmt.Printf("free page 1 of a live group: handled by PaRT = %v, unused back to %d\n",
		handled, part.UnusedPages())
	// Freeing the last mapped page dissolves the reservation and returns
	// all eight pages to the buddy allocator.
	freed := 0
	part.NotifyFree(g2, paG2, func(pa ptemagnet.PhysAddr) { mem.FreeBlock(pa); freed++ })
	fmt.Printf("free last mapped page: %d pages returned to the buddy allocator\n\n", freed)

	// --- The §6.2 adversary and §4.3 reclamation. ----------------------
	// Touch one page per group across many groups: 7 of 8 reserved pages
	// stay unused.
	for g := 0; g < 1000; g++ {
		va := ptemagnet.VirtAddr(0x4000_0000) + ptemagnet.VirtAddr(g)*ptemagnet.GroupBytes
		if _, res := part.HandleFault(va, alloc); res == ptemagnet.FaultNoMemory {
			log.Fatal("out of memory")
		}
	}
	fmt.Printf("sparse adversary: %d live reservations, %d unused pages (7 per group)\n",
		part.Live(), part.UnusedPages())

	// Memory pressure: the reclaim daemon destroys reservations until the
	// gauge drops below a target, releasing only the unmapped pages.
	target := 7 * 100 // keep at most 100 groups' worth of waste
	released := 0
	infos := part.Reclaim(
		func(pa ptemagnet.PhysAddr) { mem.FreeBlock(pa); released++ },
		func() bool { return part.UnusedPages() <= target },
	)
	fmt.Printf("reclaim under pressure: destroyed %d reservations, released %d pages\n",
		len(infos), released)
	fmt.Printf("after reclaim: %d live, %d unused pages\n\n", part.Live(), part.UnusedPages())

	s := part.Snapshot()
	fmt.Printf("lifetime stats: created %d, fully mapped %d, fully freed %d, reclaimed %d, fault hits %d\n",
		s.Created, s.FullyMapped, s.FullyFreed, s.Reclaimed, s.Hits)
}
