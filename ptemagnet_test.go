package ptemagnet_test

import (
	"testing"

	"ptemagnet"
	"ptemagnet/internal/physmem"
)

func TestGeometryReexports(t *testing.T) {
	if ptemagnet.PageSize != 4096 || ptemagnet.GroupPages != 8 || ptemagnet.GroupBytes != 32768 {
		t.Error("geometry constants wrong")
	}
}

func TestPaRTFacade(t *testing.T) {
	part, err := ptemagnet.NewPaRT(ptemagnet.DefaultPaRTConfig())
	if err != nil {
		t.Fatal(err)
	}
	mem := physmem.New(16 << 20)
	alloc := func() (ptemagnet.PhysAddr, bool) {
		return mem.AllocGroup(ptemagnet.GroupPages, physmem.KindReserved, physmem.Own(0, 1))
	}
	pa, res := part.HandleFault(0x40000000, alloc)
	if res != ptemagnet.FaultNewReservation || pa == 0 {
		t.Fatalf("HandleFault = %#x, %v", uint64(pa), res)
	}
	if res.String() != "new-reservation" {
		t.Errorf("String = %q", res.String())
	}
	if part.Live() != 1 || part.UnusedPages() != 7 {
		t.Errorf("live=%d unused=%d", part.Live(), part.UnusedPages())
	}
}

func TestGuestKernelFacade(t *testing.T) {
	k := ptemagnet.NewGuestKernel(ptemagnet.GuestConfig{
		MemBytes: 16 << 20,
		Policy:   ptemagnet.PolicyPTEMagnet,
	})
	p, err := k.Spawn("demo", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	va, err := p.Mmap(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Touch(va); err != nil {
		t.Fatal(err)
	}
	if p.RSS() != 1 {
		t.Errorf("RSS = %d", p.RSS())
	}
}

func TestMachineFacadeSmoke(t *testing.T) {
	cfg := ptemagnet.DefaultMachineConfig()
	cfg.HostMemBytes = 64 << 20
	cfg.GuestMemBytes = 32 << 20
	m, err := ptemagnet.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := ptemagnet.NewGCC(ptemagnet.SpecConfig{FootprintBytes: 2 << 20, Accesses: 5000, Seed: 1})
	if _, err := m.AddTask(prog, ptemagnet.RolePrimary); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(ptemagnet.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(m.Report()) != 1 {
		t.Fatal("no report")
	}
}

func TestScenarioFacadeSmoke(t *testing.T) {
	res, err := ptemagnet.RunScenario(ptemagnet.Scenario{
		Benchmark: "xz",
		Policy:    ptemagnet.PolicyPTEMagnet,
		Scale:     ptemagnet.QuickScale(),
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Task.Frag.Mean == 0 {
		t.Error("no fragmentation measured")
	}
	if res.Walk.MemServed(ptemagnet.DimHost) == 0 && res.Walk.MemServed(ptemagnet.DimGuest) == 0 {
		t.Log("note: no PT memory traffic at this scale (acceptable)")
	}
}
