module ptemagnet

go 1.22
