package metrics

import (
	"math"
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/physmem"
)

// buildTables creates a guest table whose 16 pages map to gPAs produced by
// layout(i), and a host table backing every one of those gPAs.
func buildTables(t *testing.T, pages int, layout func(i int) arch.PhysAddr) (*pagetable.Table, *pagetable.Table) {
	t.Helper()
	gmem := physmem.New(64 << 20)
	hmem := physmem.New(64 << 20)
	gpt, err := pagetable.New(gmem, physmem.Own(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	hpt, err := pagetable.New(hmem, physmem.Own(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	base := arch.VirtAddr(0x7f0000000000)
	for i := 0; i < pages; i++ {
		gpa := layout(i)
		if err := gpt.Map(base+arch.VirtAddr(i*arch.PageSize), gpa, 0); err != nil {
			t.Fatal(err)
		}
		// Host backs the guest-physical page (host frame address is
		// irrelevant to the metric — only the hPTE location matters).
		if err := hpt.Map(arch.VirtAddr(gpa), arch.PhysAddr(0x100000+i*arch.PageSize), 0); err != nil {
			t.Fatal(err)
		}
	}
	return gpt, hpt
}

func TestFragmentationPerfectPacking(t *testing.T) {
	// Contiguous, aligned gPAs: one hPTE block per gPTE block → metric 1.
	gpt, hpt := buildTables(t, 16, func(i int) arch.PhysAddr {
		return arch.PhysAddr(0x400000 + i*arch.PageSize)
	})
	rep := HostPTFragmentation(gpt, hpt)
	if rep.Groups != 2 {
		t.Fatalf("Groups = %d, want 2", rep.Groups)
	}
	if rep.Mean != 1 {
		t.Errorf("Mean = %f, want 1", rep.Mean)
	}
	if rep.FullyScattered != 0 {
		t.Errorf("FullyScattered = %f", rep.FullyScattered)
	}
	if rep.Histogram[0] != 2 {
		t.Errorf("Histogram = %v", rep.Histogram)
	}
}

func TestFragmentationFullScatter(t *testing.T) {
	// Every page 64KB apart: 8 distinct hPTE blocks per gPTE block.
	gpt, hpt := buildTables(t, 16, func(i int) arch.PhysAddr {
		return arch.PhysAddr(0x400000 + i*16*arch.PageSize)
	})
	rep := HostPTFragmentation(gpt, hpt)
	if rep.Mean != 8 {
		t.Errorf("Mean = %f, want 8", rep.Mean)
	}
	if rep.FullyScattered != 1 {
		t.Errorf("FullyScattered = %f, want 1", rep.FullyScattered)
	}
}

func TestFragmentationMisalignedContiguity(t *testing.T) {
	// Contiguous but offset by one page: each 8-page group straddles two
	// hPTE blocks → metric 2 (the reason isolation measures ~2.8, not 1).
	gpt, hpt := buildTables(t, 16, func(i int) arch.PhysAddr {
		return arch.PhysAddr(0x400000 + (i+1)*arch.PageSize)
	})
	rep := HostPTFragmentation(gpt, hpt)
	if rep.Mean != 2 {
		t.Errorf("Mean = %f, want 2", rep.Mean)
	}
}

func TestFragmentationSkipsHostUnbacked(t *testing.T) {
	gmem := physmem.New(64 << 20)
	hmem := physmem.New(64 << 20)
	gpt, _ := pagetable.New(gmem, physmem.Own(0, 1))
	hpt, _ := pagetable.New(hmem, physmem.Own(0, 1))
	base := arch.VirtAddr(0x7f0000000000)
	for i := 0; i < 8; i++ {
		gpt.Map(base+arch.VirtAddr(i*arch.PageSize), arch.PhysAddr(0x400000+i*arch.PageSize), 0)
	}
	// Host backs nothing: no groups.
	rep := HostPTFragmentation(gpt, hpt)
	if rep.Groups != 0 || rep.Mean != 0 {
		t.Errorf("report = %+v, want empty", rep)
	}
}

func TestFragmentationIgnoresSingletons(t *testing.T) {
	// One mapped page per group cannot fragment; it must not count.
	gpt, hpt := buildTables(t, 1, func(i int) arch.PhysAddr {
		return arch.PhysAddr(0x400000)
	})
	rep := HostPTFragmentation(gpt, hpt)
	if rep.Groups != 0 {
		t.Errorf("Groups = %d, want 0 (singleton)", rep.Groups)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.Mean() != 0 {
		t.Error("empty series not zero")
	}
	s.Record(10, 5)
	s.Record(20, 15)
	s.Record(30, 10)
	if s.Max() != 15 {
		t.Errorf("Max = %d", s.Max())
	}
	if s.Mean() != 10 {
		t.Errorf("Mean = %f", s.Mean())
	}
	if len(s.Samples) != 3 || s.Samples[1].Accesses != 20 {
		t.Errorf("samples = %+v", s.Samples)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %f", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %f", g)
	}
	if g := Geomean([]float64{0, 4}); g <= 0 || math.IsNaN(g) {
		t.Errorf("Geomean with zero = %f", g)
	}
}

func TestMeanMedian(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %f", m)
	}
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("Median odd = %f", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("Median even = %f", m)
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty inputs not zero")
	}
}

func TestPercentChangeAndSpeedup(t *testing.T) {
	if c := PercentChange(100, 111); math.Abs(c-11) > 1e-9 {
		t.Errorf("PercentChange = %f", c)
	}
	if c := PercentChange(0, 5); c != 0 {
		t.Errorf("PercentChange base 0 = %f", c)
	}
	if s := Speedup(109, 100); math.Abs(s-9) > 1e-9 {
		t.Errorf("Speedup = %f", s)
	}
	if s := Speedup(100, 0); s != 0 {
		t.Errorf("Speedup zero = %f", s)
	}
}
