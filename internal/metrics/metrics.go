// Package metrics computes the paper's measurement quantities that are not
// plain hardware counters — above all the host page-table fragmentation
// metric of §3.2: for every cache block of guest leaf PTEs, how many
// distinct cache blocks hold the corresponding host leaf PTEs. A value of 1
// is perfect packing (PTEMagnet's goal); 8 means every page of the group
// needs its own host PTE block (full fragmentation).
package metrics

import (
	"math"
	"sort"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/pagetable"
)

// FragReport summarizes host-PT fragmentation for one process.
type FragReport struct {
	// Mean is the §3.2 metric: average number of distinct hPTE cache
	// blocks per populated gPTE cache block.
	Mean float64
	// Groups is the number of populated gPTE cache blocks considered.
	Groups int
	// Histogram[n-1] counts gPTE blocks whose hPTEs span exactly n blocks
	// (n in 1..8).
	Histogram [arch.PTEsPerBlock]int
	// FullyScattered is the fraction of gPTE blocks spanning the maximum
	// 8 hPTE blocks — the "63% of contiguous memory regions" figure from
	// the paper's §3.3.
	FullyScattered float64
}

// HostPTFragmentation computes the fragmentation metric for the process
// whose guest page table is gpt, running in the VM whose host page table is
// hpt. Guest pages without host backing (never touched through the nested
// walker) are skipped, as are gPTE blocks with fewer than two mapped pages
// (a single PTE cannot fragment).
func HostPTFragmentation(gpt, hpt *pagetable.Table) FragReport {
	type groupInfo struct {
		hostBlocks map[uint64]bool
		pages      int
	}
	groups := map[uint64]*groupInfo{}
	gpt.ForEachMapped(func(va arch.VirtAddr, gpa arch.PhysAddr, _ pagetable.Flags) bool {
		gEntry, ok := gpt.LeafEntryAddr(va)
		if !ok {
			return true
		}
		hEntry, ok := hpt.LeafEntryAddr(arch.VirtAddr(gpa))
		if !ok {
			return true // page never touched under virtualization
		}
		gi := groups[gEntry.CacheBlock()]
		if gi == nil {
			gi = &groupInfo{hostBlocks: map[uint64]bool{}}
			groups[gEntry.CacheBlock()] = gi
		}
		gi.hostBlocks[hEntry.CacheBlock()] = true
		gi.pages++
		return true
	})
	// Fold in ascending block order: float addition is not associative,
	// so summing in map-iteration order could flip low bits of Mean
	// between runs.
	blocks := make([]uint64, 0, len(groups))
	for b := range groups {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	var rep FragReport
	var sum float64
	for _, b := range blocks {
		gi := groups[b]
		if gi.pages < 2 {
			continue
		}
		n := len(gi.hostBlocks)
		sum += float64(n)
		rep.Groups++
		if n >= 1 && n <= arch.PTEsPerBlock {
			rep.Histogram[n-1]++
		}
	}
	if rep.Groups > 0 {
		rep.Mean = sum / float64(rep.Groups)
		rep.FullyScattered = float64(rep.Histogram[arch.PTEsPerBlock-1]) / float64(rep.Groups)
	}
	return rep
}

// Combine merges two fragmentation reports into one covering both
// underlying page-table populations — per-VM reports rolled up into a
// host-wide view. Means are weighted by group count, so Combine over every
// process of every VM equals the metric computed over the union.
func Combine(a, b FragReport) FragReport {
	out := FragReport{Groups: a.Groups + b.Groups}
	for i := range out.Histogram {
		out.Histogram[i] = a.Histogram[i] + b.Histogram[i]
	}
	if out.Groups > 0 {
		out.Mean = (a.Mean*float64(a.Groups) + b.Mean*float64(b.Groups)) / float64(out.Groups)
		out.FullyScattered = float64(out.Histogram[arch.PTEsPerBlock-1]) / float64(out.Groups)
	}
	return out
}

// GaugeSample is one periodic observation of a gauge (§6.2 sampling).
type GaugeSample struct {
	// Accesses is the simulation progress stamp (total accesses executed).
	Accesses uint64
	// Value is the gauge reading.
	Value int64
}

// Series is a recorded gauge time series.
type Series struct {
	Samples []GaugeSample
}

// Record appends a sample.
func (s *Series) Record(accesses uint64, value int64) {
	s.Samples = append(s.Samples, GaugeSample{Accesses: accesses, Value: value})
}

// Max returns the largest sample value, or 0 for an empty series.
func (s *Series) Max() int64 {
	var m int64
	for _, x := range s.Samples {
		if x.Value > m {
			m = x.Value
		}
	}
	return m
}

// Mean returns the average sample value, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.Samples {
		sum += float64(x.Value)
	}
	return sum / float64(len(s.Samples))
}

// Geomean returns the geometric mean of strictly positive values. Values
// ≤ 0 are clamped to the smallest positive ratio the paper's charts would
// show (1e-9) so a single zero does not zero the whole mean.
func Geomean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range values {
		if v <= 0 {
			v = 1e-9
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(values)))
}

// Mean returns the arithmetic mean.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Median returns the median (average of middle two for even counts).
func Median(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// PercentChange returns (now-base)/base as a percentage; 0 when base is 0.
func PercentChange(base, now float64) float64 {
	if base == 0 {
		return 0
	}
	return (now - base) / base * 100
}

// Speedup returns baseCycles/newCycles - 1 as a percentage — the paper's
// "performance improvement" (positive = PTEMagnet faster).
func Speedup(baseCycles, newCycles uint64) float64 {
	if newCycles == 0 {
		return 0
	}
	return (float64(baseCycles)/float64(newCycles) - 1) * 100
}
