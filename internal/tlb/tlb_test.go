package tlb

import (
	"testing"
	"testing/quick"

	"ptemagnet/internal/arch"
)

func small() Config { return Config{Entries: 8, Ways: 2} } // 4 sets

func TestLookupMissThenHit(t *testing.T) {
	tl := New(small())
	if _, ok := tl.Lookup(1, 100); ok {
		t.Fatal("hit on empty TLB")
	}
	tl.Insert(1, 100, 0x5000)
	pa, ok := tl.Lookup(1, 100)
	if !ok || pa != 0x5000 {
		t.Fatalf("Lookup = %#x,%v", pa, ok)
	}
}

func TestASIDIsolation(t *testing.T) {
	tl := New(small())
	tl.Insert(1, 100, 0x5000)
	if _, ok := tl.Lookup(2, 100); ok {
		t.Error("ASID 2 hit ASID 1's entry")
	}
	tl.Insert(2, 100, 0x6000)
	pa1, _ := tl.Lookup(1, 100)
	pa2, _ := tl.Lookup(2, 100)
	if pa1 != 0x5000 || pa2 != 0x6000 {
		t.Errorf("pa1=%#x pa2=%#x", pa1, pa2)
	}
}

func TestInsertRefreshesExisting(t *testing.T) {
	tl := New(small())
	tl.Insert(1, 100, 0x5000)
	if _, evicted := tl.Insert(1, 100, 0x7000); evicted {
		t.Error("re-insert of same key evicted something")
	}
	pa, _ := tl.Lookup(1, 100)
	if pa != 0x7000 {
		t.Errorf("pa = %#x, want updated 0x7000", pa)
	}
}

func TestLRUEviction(t *testing.T) {
	tl := New(small())
	// VPNs 0, 4, 8 map to set 0 (4 sets). 2 ways.
	tl.Insert(1, 0, 0x1000)
	tl.Insert(1, 4, 0x2000)
	tl.Lookup(1, 0) // refresh 0; 4 is LRU
	victim, evicted := tl.Insert(1, 8, 0x3000)
	if !evicted || victim.VPN != 4 {
		t.Fatalf("victim = %+v evicted=%v, want VPN 4", victim, evicted)
	}
	if _, ok := tl.Lookup(1, 4); ok {
		t.Error("evicted entry still present")
	}
	if _, ok := tl.Lookup(1, 0); !ok {
		t.Error("refreshed entry was evicted")
	}
}

func TestInvalidatePage(t *testing.T) {
	tl := New(small())
	tl.Insert(1, 100, 0x5000)
	tl.Insert(2, 100, 0x6000)
	tl.InvalidatePage(1, 100)
	if _, ok := tl.Lookup(1, 100); ok {
		t.Error("invalidated page still present")
	}
	if _, ok := tl.Lookup(2, 100); !ok {
		t.Error("other ASID's entry wrongly invalidated")
	}
}

func TestInvalidateASIDAndFlush(t *testing.T) {
	tl := New(small())
	for vpn := uint64(0); vpn < 4; vpn++ {
		tl.Insert(1, vpn, arch.PhysAddr(0x1000*vpn+0x1000))
		tl.Insert(2, vpn+8, arch.PhysAddr(0x9000+0x1000*vpn))
	}
	tl.InvalidateASID(1)
	for vpn := uint64(0); vpn < 4; vpn++ {
		if _, ok := tl.Lookup(1, vpn); ok {
			t.Errorf("ASID 1 vpn %d survived InvalidateASID", vpn)
		}
	}
	if _, ok := tl.Lookup(2, 8); !ok {
		t.Error("ASID 2 entry lost")
	}
	tl.Flush()
	if _, ok := tl.Lookup(2, 8); ok {
		t.Error("entry survived Flush")
	}
}

func TestCounters(t *testing.T) {
	tl := New(small())
	tl.Lookup(1, 1)
	tl.Insert(1, 1, 0x1000)
	tl.Lookup(1, 1)
	if s := tl.Snapshot(); s.Lookups != 2 || s.Hits != 1 {
		t.Errorf("lookups=%d hits=%d", s.Lookups, s.Hits)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{{Entries: 0, Ways: 1}, {Entries: 8, Ways: 0}, {Entries: 9, Ways: 2}, {Entries: 12, Ways: 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestTwoLevelPromotion(t *testing.T) {
	tl := NewTwoLevel(TwoLevelConfig{
		L1: Config{Entries: 4, Ways: 2},
		L2: Config{Entries: 16, Ways: 2},
	})
	tl.Insert(1, 10, 0x5000)
	// Force 10 out of L1: set = vpn&1... L1 has 2 sets. VPNs 10, 12, 14
	// all map to set 0.
	tl.Insert(1, 12, 0x6000)
	tl.Insert(1, 14, 0x7000) // evicts vpn 10 into L2
	pa, ok := tl.Lookup(1, 10)
	if !ok || pa != 0x5000 {
		t.Fatalf("L2 lookup = %#x,%v", pa, ok)
	}
	if tl.l2Hits != 1 {
		t.Errorf("l2Hits = %d, want 1", tl.l2Hits)
	}
	// Promoted back to L1.
	tl.Lookup(1, 10)
	if tl.l1Hits != 1 {
		t.Errorf("l1Hits = %d, want 1 after promotion", tl.l1Hits)
	}
}

func TestTwoLevelMissAccounting(t *testing.T) {
	tl := NewTwoLevel(DefaultConfig())
	for vpn := uint64(0); vpn < 10; vpn++ {
		tl.Lookup(1, vpn)
	}
	if s := tl.Snapshot(); s.Misses() != 10 {
		t.Errorf("Misses = %d, want 10", s.Misses())
	}
	if r := tl.Snapshot().MissRatio(); r != 1.0 {
		t.Errorf("MissRatio = %f", r)
	}
	for vpn := uint64(0); vpn < 10; vpn++ {
		tl.Insert(1, vpn, arch.PhysAddr(0x1000*(vpn+1)))
	}
	for vpn := uint64(0); vpn < 10; vpn++ {
		if _, ok := tl.Lookup(1, vpn); !ok {
			t.Errorf("vpn %d missing after insert", vpn)
		}
	}
	if r := tl.Snapshot().MissRatio(); r != 0.5 {
		t.Errorf("MissRatio = %f, want 0.5", r)
	}
}

func TestTwoLevelInvalidation(t *testing.T) {
	tl := NewTwoLevel(DefaultConfig())
	tl.Insert(1, 5, 0x1000)
	tl.Insert(1, 6, 0x2000)
	tl.InvalidatePage(1, 5)
	if _, ok := tl.Lookup(1, 5); ok {
		t.Error("page survived InvalidatePage")
	}
	tl.InvalidateASID(1)
	if _, ok := tl.Lookup(1, 6); ok {
		t.Error("page survived InvalidateASID")
	}
	tl.Insert(2, 7, 0x3000)
	tl.Flush()
	if _, ok := tl.Lookup(2, 7); ok {
		t.Error("page survived Flush")
	}
}

// Property: after inserting any set of distinct (asid, vpn) pairs that all
// map to distinct sets or fit within associativity, lookups return what was
// inserted most recently for that key.
func TestQuickInsertThenLookup(t *testing.T) {
	f := func(vpns []uint16) bool {
		tl := NewTwoLevel(DefaultConfig())
		last := map[uint64]arch.PhysAddr{}
		for i, v := range vpns {
			if len(last) >= 48 { // stay within total capacity
				break
			}
			pa := arch.PhysAddr((uint64(i) + 1) << arch.PageShift)
			tl.Insert(3, uint64(v), pa)
			last[uint64(v)] = pa
		}
		for vpn, pa := range last {
			got, ok := tl.Lookup(3, vpn)
			if !ok || got != pa {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTwoLevelHit(b *testing.B) {
	tl := NewTwoLevel(DefaultConfig())
	tl.Insert(1, 42, 0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(1, 42)
	}
}

func TestQuickLRUNeverEvictsMostRecent(t *testing.T) {
	// Property: immediately after any operation sequence, the most
	// recently inserted or looked-up entry is always present.
	f := func(ops []uint16) bool {
		tl := New(Config{Entries: 16, Ways: 2})
		var lastKey uint64
		var have bool
		for _, op := range ops {
			vpn := uint64(op % 64)
			if op%3 == 0 {
				tl.Insert(1, vpn, arch.PhysAddr((vpn+1)<<arch.PageShift))
				lastKey, have = vpn, true
			} else if have {
				tl.Lookup(1, lastKey)
			}
			if have {
				if _, ok := tl.Lookup(1, lastKey); !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
