package tlb

import (
	"testing"

	"ptemagnet/internal/arch"
)

// fillPattern inserts a deterministic mix of entries for two ASIDs so that
// invalidation tests exercise occupied sets, ASID isolation and LRU state.
func fillPattern(tl *TLB) {
	for i := uint64(0); i < 24; i++ {
		tl.Insert(1, 100+i*3, 0x5000+arch.PhysAddr(i))
		tl.Insert(2, 100+i*3, 0x9000+arch.PhysAddr(i))
	}
}

// snapshot captures the externally observable translation state: which
// (asid, vpn) pairs still hit, and what the counters read afterwards.
func snapshot(tl *TLB) map[[2]uint64]bool {
	s := make(map[[2]uint64]bool)
	for asid := uint32(1); asid <= 2; asid++ {
		for vpn := uint64(90); vpn < 190; vpn++ {
			_, ok := tl.Lookup(asid, vpn)
			s[[2]uint64{uint64(asid), vpn}] = ok
		}
	}
	return s
}

func equalSnapshots(t *testing.T, name string, a, b map[[2]uint64]bool) {
	t.Helper()
	for k, v := range a {
		if b[k] != v {
			t.Errorf("%s: (asid=%d vpn=%d) hit=%v in range path, %v in per-page path",
				name, k[0], k[1], b[k], v)
		}
	}
}

// TestInvalidateRangeMatchesPerPage pins that InvalidateRange leaves the TLB
// in exactly the state a per-page InvalidatePage sweep would — for both the
// narrow (per-set probe) and wide (full-scan) implementations.
func TestInvalidateRangeMatchesPerPage(t *testing.T) {
	cases := []struct {
		name         string
		first, limit uint64
	}{
		{"empty range", 120, 120},
		{"single page", 121, 122},
		{"narrow", 118, 124},              // < Entries pages → per-page probes
		{"wide", 100, 100 + 24*3},         // ≥ Entries pages → one full scan
		{"straddles unmapped", 90, 1_000}, // mostly absent VPNs
	}
	for _, tc := range cases {
		ranged, paged := New(small()), New(small())
		fillPattern(ranged)
		fillPattern(paged)
		ranged.InvalidateRange(1, tc.first, tc.limit)
		for vpn := tc.first; vpn < tc.limit; vpn++ {
			paged.InvalidatePage(1, vpn)
		}
		equalSnapshots(t, tc.name, snapshot(paged), snapshot(ranged))
	}
}

// TestInvalidateRangeSparesOtherASIDs pins ASID isolation on the wide-scan
// path, where a filter bug would wipe unrelated processes' translations.
func TestInvalidateRangeSparesOtherASIDs(t *testing.T) {
	tl := New(small())
	fillPattern(tl)
	tl.InvalidateRange(1, 0, 1<<40) // wide: everything ASID 1 has
	hits := 0
	for vpn := uint64(90); vpn < 190; vpn++ {
		if _, ok := tl.Lookup(1, vpn); ok {
			t.Fatalf("ASID 1 vpn %d survived a full-range shootdown", vpn)
		}
		if _, ok := tl.Lookup(2, vpn); ok {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("ASID 2 lost all entries to ASID 1's shootdown")
	}
}

// TestTwoLevelInvalidateRange pins that the range shootdown reaches both
// levels, including entries demoted to L2 by later inserts.
func TestTwoLevelInvalidateRange(t *testing.T) {
	tl := NewTwoLevel(TwoLevelConfig{
		L1: Config{Entries: 2, Ways: 2},
		L2: Config{Entries: 8, Ways: 2},
	})
	for i := uint64(0); i < 6; i++ { // overflow L1 so victims land in L2
		tl.Insert(1, 200+i, 0x5000+arch.PhysAddr(i))
	}
	tl.InvalidateRange(1, 200, 206)
	for i := uint64(0); i < 6; i++ {
		if _, ok := tl.Lookup(1, 200+i); ok {
			t.Errorf("vpn %d survived in some level after range shootdown", 200+i)
		}
	}
}
