// Package tlb models translation-lookaside buffers.
//
// Under virtualization the TLB caches complete guest-virtual to
// host-physical translations, so a TLB hit skips the entire nested page walk
// and a miss triggers the full 2D walk (paper §2.5). Entries are tagged with
// an address-space identifier (ASID) so colocated processes coexist without
// flushes, matching modern x86 PCID behaviour.
//
// The package provides a single set-associative level and a TwoLevel
// combination (L1 DTLB backed by a larger, slower L2 STLB) mirroring the
// structure of the Broadwell parts used in the paper's evaluation.
package tlb

import (
	"fmt"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/obs"
)

// Entry is a cached translation: virtual page number to physical frame
// address of the page base.
type Entry struct {
	ASID uint32
	VPN  uint64
	PA   arch.PhysAddr
}

// Config sizes one TLB level.
type Config struct {
	// Entries is the total entry count; must be a power-of-two multiple
	// of Ways.
	Entries int
	// Ways is the set associativity.
	Ways int
}

// TLB is one set-associative translation cache with LRU replacement.
type TLB struct {
	setMask uint64
	ways    int
	valid   []bool
	entries []Entry
	age     []uint64
	tick    uint64

	lookups uint64
	hits    uint64
}

// New builds a TLB level from cfg.
func New(cfg Config) *TLB {
	if cfg.Ways <= 0 || cfg.Entries <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("tlb: bad config %+v", cfg))
	}
	sets := uint64(cfg.Entries / cfg.Ways)
	if !arch.IsPowerOfTwo(sets) {
		panic(fmt.Sprintf("tlb: set count %d not a power of two", sets))
	}
	return &TLB{
		setMask: sets - 1,
		ways:    cfg.Ways,
		valid:   make([]bool, cfg.Entries),
		entries: make([]Entry, cfg.Entries),
		age:     make([]uint64, cfg.Entries),
	}
}

// Lookup probes for (asid, vpn) and refreshes LRU on hit.
func (t *TLB) Lookup(asid uint32, vpn uint64) (arch.PhysAddr, bool) {
	t.lookups++
	t.tick++
	base := int(vpn&t.setMask) * t.ways
	for w := 0; w < t.ways; w++ {
		i := base + w
		if t.valid[i] && t.entries[i].VPN == vpn && t.entries[i].ASID == asid {
			t.age[i] = t.tick
			t.hits++
			return t.entries[i].PA, true
		}
	}
	return arch.NoPhysAddr, false
}

// Insert fills (asid, vpn) → pa, evicting the LRU way of the set if full.
// The evicted entry is returned so a two-level arrangement can install
// victims in the next level.
func (t *TLB) Insert(asid uint32, vpn uint64, pa arch.PhysAddr) (victim Entry, evicted bool) {
	t.tick++
	base := int(vpn&t.setMask) * t.ways
	target := base
	for w := 0; w < t.ways; w++ {
		i := base + w
		if t.valid[i] && t.entries[i].VPN == vpn && t.entries[i].ASID == asid {
			// Refresh an existing entry in place.
			t.entries[i].PA = pa
			t.age[i] = t.tick
			return Entry{}, false
		}
		if !t.valid[i] {
			target = i
			break
		}
		if t.age[i] < t.age[target] {
			target = i
		}
	}
	if t.valid[target] {
		victim, evicted = t.entries[target], true
	}
	t.valid[target] = true
	t.entries[target] = Entry{ASID: asid, VPN: vpn, PA: pa}
	t.age[target] = t.tick
	return victim, evicted
}

// InvalidatePage drops the translation for (asid, vpn) if present.
func (t *TLB) InvalidatePage(asid uint32, vpn uint64) {
	base := int(vpn&t.setMask) * t.ways
	for w := 0; w < t.ways; w++ {
		i := base + w
		if t.valid[i] && t.entries[i].VPN == vpn && t.entries[i].ASID == asid {
			t.valid[i] = false
			return
		}
	}
}

// InvalidateRange drops every translation of asid with a VPN in
// [first, limit) — the batched shootdown behind large frees. Only validity
// bits are cleared; LRU ages and the tick counter are untouched, so the
// resulting state is identical to per-page InvalidatePage calls. For
// ranges wider than the TLB itself one scan over the entries replaces the
// per-page set probes.
func (t *TLB) InvalidateRange(asid uint32, first, limit uint64) {
	if limit-first >= uint64(len(t.entries)) {
		for i := range t.entries {
			if t.valid[i] && t.entries[i].ASID == asid && t.entries[i].VPN >= first && t.entries[i].VPN < limit {
				t.valid[i] = false
			}
		}
		return
	}
	for vpn := first; vpn < limit; vpn++ {
		t.InvalidatePage(asid, vpn)
	}
}

// InvalidateASID drops every translation belonging to asid.
func (t *TLB) InvalidateASID(asid uint32) {
	for i := range t.entries {
		if t.valid[i] && t.entries[i].ASID == asid {
			t.valid[i] = false
		}
	}
}

// Flush drops every translation.
func (t *TLB) Flush() {
	for i := range t.valid {
		t.valid[i] = false
	}
}

// Stats holds one level's counters (DESIGN.md §8).
type Stats struct {
	// Lookups counts probes; Hits counts the successful ones.
	Lookups uint64
	Hits    uint64
}

// Delta returns the counter-wise difference s - prev.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{Lookups: s.Lookups - prev.Lookups, Hits: s.Hits - prev.Hits}
}

// Snapshot returns the counters accumulated since creation.
func (t *TLB) Snapshot() Stats { return Stats{Lookups: t.lookups, Hits: t.hits} }

// TwoLevelConfig sizes a two-level TLB.
type TwoLevelConfig struct {
	L1 Config
	L2 Config
}

// DefaultConfig returns a Broadwell-like two-level TLB: 64-entry 4-way L1
// DTLB and a 1024-entry 8-way STLB.
func DefaultConfig() TwoLevelConfig {
	return TwoLevelConfig{
		L1: Config{Entries: 64, Ways: 4},
		L2: Config{Entries: 1024, Ways: 8},
	}
}

// TwoLevel is an L1 DTLB backed by an L2 STLB. L1 victims are installed in
// L2 (exclusive-ish victim behaviour); L2 hits are promoted back to L1.
type TwoLevel struct {
	l1, l2 *TLB

	lookups uint64
	l1Hits  uint64
	l2Hits  uint64
}

// NewTwoLevel builds the two-level arrangement.
func NewTwoLevel(cfg TwoLevelConfig) *TwoLevel {
	return &TwoLevel{l1: New(cfg.L1), l2: New(cfg.L2)}
}

// Lookup probes L1 then L2, promoting an L2 hit into L1.
func (t *TwoLevel) Lookup(asid uint32, vpn uint64) (arch.PhysAddr, bool) {
	t.lookups++
	if pa, ok := t.l1.Lookup(asid, vpn); ok {
		t.l1Hits++
		return pa, true
	}
	if pa, ok := t.l2.Lookup(asid, vpn); ok {
		t.l2Hits++
		t.promote(asid, vpn, pa)
		return pa, true
	}
	return arch.NoPhysAddr, false
}

// Insert installs a freshly walked translation into L1, pushing any L1
// victim down into L2.
func (t *TwoLevel) Insert(asid uint32, vpn uint64, pa arch.PhysAddr) {
	t.promote(asid, vpn, pa)
}

func (t *TwoLevel) promote(asid uint32, vpn uint64, pa arch.PhysAddr) {
	if victim, evicted := t.l1.Insert(asid, vpn, pa); evicted {
		t.l2.Insert(victim.ASID, victim.VPN, victim.PA)
	}
}

// InvalidatePage drops (asid, vpn) from both levels.
func (t *TwoLevel) InvalidatePage(asid uint32, vpn uint64) {
	t.l1.InvalidatePage(asid, vpn)
	t.l2.InvalidatePage(asid, vpn)
}

// InvalidateRange drops every translation of asid with a VPN in
// [first, limit) from both levels.
func (t *TwoLevel) InvalidateRange(asid uint32, first, limit uint64) {
	t.l1.InvalidateRange(asid, first, limit)
	t.l2.InvalidateRange(asid, first, limit)
}

// InvalidateASID drops all translations of asid from both levels.
func (t *TwoLevel) InvalidateASID(asid uint32) {
	t.l1.InvalidateASID(asid)
	t.l2.InvalidateASID(asid)
}

// Flush empties both levels.
func (t *TwoLevel) Flush() {
	t.l1.Flush()
	t.l2.Flush()
}

// TwoLevelStats holds the combined counters of a two-level TLB
// (DESIGN.md §8).
type TwoLevelStats struct {
	// Lookups counts top-level probes; L1Hits/L2Hits the level that served
	// each hit.
	Lookups uint64
	L1Hits  uint64
	L2Hits  uint64
}

// Misses returns the number of probes that missed both levels — each miss
// costs a full nested page walk.
func (s TwoLevelStats) Misses() uint64 { return s.Lookups - s.L1Hits - s.L2Hits }

// MissRatio returns Misses/Lookups, or 0 before any lookup.
func (s TwoLevelStats) MissRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Lookups)
}

// Delta returns the counter-wise difference s - prev.
func (s TwoLevelStats) Delta(prev TwoLevelStats) TwoLevelStats {
	return TwoLevelStats{
		Lookups: s.Lookups - prev.Lookups,
		L1Hits:  s.L1Hits - prev.L1Hits,
		L2Hits:  s.L2Hits - prev.L2Hits,
	}
}

// Snapshot returns the counters accumulated since creation.
func (t *TwoLevel) Snapshot() TwoLevelStats {
	return TwoLevelStats{Lookups: t.lookups, L1Hits: t.l1Hits, L2Hits: t.l2Hits}
}

// RegisterObs registers the two-level TLB's counters on r under prefix.
func (t *TwoLevel) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"lookups", func() uint64 { return t.lookups })
	r.Counter(prefix+"l1_hits", func() uint64 { return t.l1Hits })
	r.Counter(prefix+"l2_hits", func() uint64 { return t.l2Hits })
}

