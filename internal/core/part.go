// Package core implements PTEMagnet's Page Reservation Table (PaRT) — the
// paper's primary contribution (§4).
//
// A PaRT is a per-process four-level radix tree indexed by the virtual
// address of a page fault rounded down to a reservation group (32KB for the
// paper's eight-page groups). Each leaf is one reservation: a pointer to the
// base of a contiguous, naturally aligned group of physical pages taken
// eagerly from the buddy allocator, an occupancy mask recording which pages
// the application has actually mapped, and a lock. Interior nodes carry
// their own locks so concurrently faulting threads contend only on the
// paths they share (§4.2's fine-grained locking; a coarse single-lock mode
// exists for the ablation study).
//
// Life cycle of a reservation, exactly as §4.2-§4.3 prescribe:
//
//   - First fault to a fully-unmapped group: allocate the whole group from
//     the buddy allocator, map only the faulting page, keep the other pages
//     reserved (owned by the kernel, quickly reclaimable).
//   - Later faults within the group: claim the corresponding reserved page
//     without calling the buddy allocator.
//   - When the last page of a group is claimed, the entry is deleted — the
//     reservation has fully converted into ordinary mapped memory.
//   - free() of a reserved-group page returns that page to the reservation;
//     when a reservation's mask drops back to empty the entry is deleted
//     and every group page returns to the buddy allocator.
//   - Under memory pressure, a reclaim daemon walks the PaRT and releases
//     the unmapped pages of reservations until pressure subsides. Mapped
//     pages are untouched, so applications keep the page-walk benefit of
//     what was already allocated contiguously.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ptemagnet/internal/arch"
)

// Config parameterizes a PaRT.
type Config struct {
	// GroupPages is the reservation granularity in pages; a power of two
	// in [1, 64]. The paper's design point is 8: eight 8-byte leaf PTEs
	// fill one 64-byte cache block. Other values exist for the
	// granularity ablation.
	GroupPages int
	// CoarseLocking replaces the per-node locks with one table lock, the
	// scalability strawman §4.2 argues against.
	CoarseLocking bool
}

// DefaultConfig returns the paper's design point: 8-page (32KB) groups with
// fine-grained per-node locking.
func DefaultConfig() Config { return Config{GroupPages: arch.GroupPages} }

// radix geometry: keys are group numbers (VA >> groupShift), consumed in
// four 9-bit chunks, most significant first — the same shape as the
// hardware page table, as the paper specifies.
const (
	radixLevels   = 4
	radixBits     = 9
	radixFanout   = 1 << radixBits
	radixKeyBits  = radixLevels * radixBits
	radixKeyLimit = uint64(1) << radixKeyBits
)

// Reservation is one live PaRT leaf.
type Reservation struct {
	mu sync.Mutex
	// base is the physical address of the group's first page.
	base arch.PhysAddr
	// mask has bit i set when page i of the group is mapped by the
	// application.
	mask uint64
	// groupVA is the group-aligned virtual address this reservation backs.
	groupVA arch.VirtAddr
	// dead marks a reservation that has been deleted (fully claimed,
	// fully freed, or reclaimed) so that a racing claimant retries.
	dead bool
}

// Base returns the physical address of the group's first page.
func (r *Reservation) Base() arch.PhysAddr { return r.base }

// GroupVA returns the group-aligned virtual address the reservation backs.
func (r *Reservation) GroupVA() arch.VirtAddr { return r.groupVA }

// Mask returns the occupancy mask (bit i set = page i mapped).
func (r *Reservation) Mask() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mask
}

type radixNode struct {
	mu       sync.Mutex
	children [radixFanout]any // *radixNode or *Reservation
	live     int
}

// Stats captures PaRT activity counters.
type Stats struct {
	// Created counts reservations established.
	Created uint64
	// FullyMapped counts reservations deleted because every page was
	// claimed.
	FullyMapped uint64
	// FullyFreed counts reservations deleted because the application
	// freed every mapped page.
	FullyFreed uint64
	// Reclaimed counts reservations destroyed by the pressure daemon.
	Reclaimed uint64
	// Hits counts page faults served from an existing reservation — each
	// is a buddy-allocator call avoided (§6.4).
	Hits uint64
}

// Delta returns the counter-wise difference s - prev.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Created:     s.Created - prev.Created,
		FullyMapped: s.FullyMapped - prev.FullyMapped,
		FullyFreed:  s.FullyFreed - prev.FullyFreed,
		Reclaimed:   s.Reclaimed - prev.Reclaimed,
		Hits:        s.Hits - prev.Hits,
	}
}

// PaRT is the Page Reservation Table of one process.
type PaRT struct {
	cfg        Config
	groupShift uint
	root       *radixNode
	coarse     sync.Mutex

	live        atomic.Int64 // live reservations
	unusedPages atomic.Int64 // reserved-but-unmapped pages across live reservations

	statsMu sync.Mutex
	stats   Stats
}

// ConfigError reports an invalid configuration field: which field, the
// offending value, and the constraint it violates. Both the PaRT and the
// machine layer (vm.Config) return it from their Validate methods.
type ConfigError struct {
	// Field names the offending configuration field (e.g. "GroupPages").
	Field string
	// Value is the rejected value.
	Value any
	// Reason states the violated constraint.
	Reason string
}

// Error renders the violation.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("invalid config: %s = %v (%s)", e.Field, e.Value, e.Reason)
}

// Validate checks cfg and returns a *ConfigError describing the first
// violation, or nil. GroupPages must be set explicitly — use
// DefaultConfig for the paper's design point.
func (c Config) Validate() error {
	if c.GroupPages <= 0 || c.GroupPages > 64 || !arch.IsPowerOfTwo(uint64(c.GroupPages)) {
		return &ConfigError{Field: "GroupPages", Value: c.GroupPages,
			Reason: "must be a power of two in [1, 64]"}
	}
	return nil
}

// New creates an empty PaRT, rejecting invalid configurations with a
// *ConfigError.
func New(cfg Config) (*PaRT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	shift := uint(arch.PageShift)
	for p := cfg.GroupPages; p > 1; p >>= 1 {
		shift++
	}
	return &PaRT{cfg: cfg, groupShift: shift, root: &radixNode{}}, nil
}

// MustNew is New for configurations known to be valid; it panics on error.
func MustNew(cfg Config) *PaRT {
	p, err := New(cfg)
	if err != nil {
		panic(err.Error())
	}
	return p
}

// Config returns the table's configuration.
func (p *PaRT) Config() Config { return p.cfg }

// GroupBytes returns the reservation group span in bytes.
func (p *PaRT) GroupBytes() uint64 { return uint64(p.cfg.GroupPages) << arch.PageShift }

// GroupBase rounds va down to its reservation-group boundary under this
// table's granularity.
func (p *PaRT) GroupBase(va arch.VirtAddr) arch.VirtAddr {
	return va &^ arch.VirtAddr(p.GroupBytes()-1)
}

// GroupIndex returns the index of va's page within its group.
func (p *PaRT) GroupIndex(va arch.VirtAddr) int {
	return int((uint64(va) >> arch.PageShift) & uint64(p.cfg.GroupPages-1))
}

func (p *PaRT) key(va arch.VirtAddr) uint64 {
	k := uint64(va) >> p.groupShift
	if k >= radixKeyLimit {
		panic(fmt.Sprintf("core: virtual address %#x beyond PaRT key space", uint64(va)))
	}
	return k
}

func radixIndex(key uint64, level int) int {
	// level 4 (root) consumes the most significant chunk.
	shift := uint((level - 1) * radixBits)
	return int((key >> shift) & (radixFanout - 1))
}

// Live returns the number of live reservations.
func (p *PaRT) Live() int { return int(p.live.Load()) }

// UnusedPages returns the number of reserved-but-unmapped pages across all
// live reservations — the §6.2 memory-overhead gauge.
func (p *PaRT) UnusedPages() int { return int(p.unusedPages.Load()) }

// Snapshot returns a copy of the activity counters.
func (p *PaRT) Snapshot() Stats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	return p.stats
}

func (p *PaRT) bump(f func(*Stats)) {
	p.statsMu.Lock()
	f(&p.stats)
	p.statsMu.Unlock()
}

// Lookup finds the live reservation covering va, if any.
func (p *PaRT) Lookup(va arch.VirtAddr) (*Reservation, bool) {
	if p.cfg.CoarseLocking {
		p.coarse.Lock()
		defer p.coarse.Unlock()
	}
	return p.lookup(va)
}

// lookup is Lookup without the coarse-lock acquisition, for callers that
// already hold it.
func (p *PaRT) lookup(va arch.VirtAddr) (*Reservation, bool) {
	key := p.key(va)
	n := p.root
	for level := radixLevels; level >= 1; level-- {
		idx := radixIndex(key, level)
		n.mu.Lock()
		child := n.children[idx]
		n.mu.Unlock()
		if child == nil {
			return nil, false
		}
		if level == 1 {
			return child.(*Reservation), true
		}
		n = child.(*radixNode)
	}
	return nil, false
}

// FaultResult describes how HandleFault satisfied a fault.
type FaultResult uint8

const (
	// FaultNewReservation: a fresh group was allocated and the faulting
	// page claimed from it.
	FaultNewReservation FaultResult = iota
	// FaultReservationHit: the page came from an existing reservation —
	// no buddy-allocator call.
	FaultReservationHit
	// FaultNoMemory: the group allocation failed; the caller must fall
	// back to the default single-page path.
	FaultNoMemory
)

// String names the result.
func (r FaultResult) String() string {
	switch r {
	case FaultNewReservation:
		return "new-reservation"
	case FaultReservationHit:
		return "reservation-hit"
	case FaultNoMemory:
		return "no-memory"
	default:
		return fmt.Sprintf("FaultResult(%d)", uint8(r))
	}
}

// HandleFault implements the PTEMagnet page-fault path for va. alloc must
// allocate one naturally aligned contiguous group of GroupPages pages and
// return its base (it is invoked at most once, outside any reservation that
// already exists). The returned pa is the physical page for va's page.
//
// When the claim fills the reservation, the entry is deleted (§4.2: "Once
// all the reserved pages inside a reservation are mapped, their PaRT entry
// can be safely deleted").
func (p *PaRT) HandleFault(va arch.VirtAddr, alloc func() (arch.PhysAddr, bool)) (pa arch.PhysAddr, res FaultResult) {
	if p.cfg.CoarseLocking {
		p.coarse.Lock()
		defer p.coarse.Unlock()
	}
	idx := p.GroupIndex(va)
	for {
		r, existed := p.lookupOrInsert(va, alloc)
		if r == nil {
			return arch.NoPhysAddr, FaultNoMemory
		}
		r.mu.Lock()
		if r.dead {
			// Deleted between insert/lookup and claim; retry.
			r.mu.Unlock()
			continue
		}
		if r.mask&(1<<idx) != 0 {
			// The page is already claimed. This indicates a kernel bug
			// (a fault on a mapped page should be handled before PaRT);
			// surface it loudly.
			r.mu.Unlock()
			panic(fmt.Sprintf("core: double claim of page %d in group %#x", idx, uint64(r.groupVA)))
		}
		r.mask |= 1 << idx
		pa = r.base + arch.PhysAddr(idx<<arch.PageShift)
		full := r.mask == p.fullMask()
		if full {
			r.dead = true
		}
		r.mu.Unlock()
		p.unusedPages.Add(-1)
		if full {
			p.remove(r.groupVA)
			p.live.Add(-1)
			p.bump(func(s *Stats) { s.FullyMapped++ })
		}
		if existed {
			p.bump(func(s *Stats) { s.Hits++ })
			return pa, FaultReservationHit
		}
		return pa, FaultNewReservation
	}
}

func (p *PaRT) fullMask() uint64 {
	if p.cfg.GroupPages == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << p.cfg.GroupPages) - 1
}

// lookupOrInsert returns the reservation for va's group, creating it via
// alloc when absent. existed reports whether the reservation predated the
// call. A nil reservation means alloc failed.
func (p *PaRT) lookupOrInsert(va arch.VirtAddr, alloc func() (arch.PhysAddr, bool)) (r *Reservation, existed bool) {
	key := p.key(va)
	n := p.root
	for level := radixLevels; level > 1; level-- {
		idx := radixIndex(key, level)
		n.mu.Lock()
		child := n.children[idx]
		if child == nil {
			child = &radixNode{}
			n.children[idx] = child
			n.live++
		}
		n.mu.Unlock()
		n = child.(*radixNode)
	}
	idx := radixIndex(key, 1)
	n.mu.Lock()
	defer n.mu.Unlock()
	if child := n.children[idx]; child != nil {
		return child.(*Reservation), true
	}
	base, ok := alloc()
	if !ok {
		return nil, false
	}
	if uint64(base)%p.GroupBytes() != 0 {
		panic(fmt.Sprintf("core: reservation base %#x not aligned to %d-page group", uint64(base), p.cfg.GroupPages))
	}
	r = &Reservation{base: base, groupVA: p.GroupBase(va)}
	n.children[idx] = r
	n.live++
	p.live.Add(1)
	p.unusedPages.Add(int64(p.cfg.GroupPages))
	p.bump(func(s *Stats) { s.Created++ })
	return r, false
}

// remove unlinks the leaf for groupVA. Interior nodes are retained, like the
// kernel retaining page-table pages.
func (p *PaRT) remove(groupVA arch.VirtAddr) {
	key := p.key(groupVA)
	n := p.root
	for level := radixLevels; level > 1; level-- {
		idx := radixIndex(key, level)
		n.mu.Lock()
		child := n.children[idx]
		n.mu.Unlock()
		if child == nil {
			return
		}
		n = child.(*radixNode)
	}
	idx := radixIndex(key, 1)
	n.mu.Lock()
	if n.children[idx] != nil {
		n.children[idx] = nil
		n.live--
	}
	n.mu.Unlock()
}

// NotifyFree informs the PaRT that the application freed the mapped page at
// va, which was backed by the physical page pa. If va's group has a live
// reservation and pa is that group's page for va (a fault may have been
// served by the default allocator even under a live reservation — e.g.
// after a forked child claimed the slot, §4.4 — in which case the frame is
// foreign and must go back to the buddy allocator directly), the page
// returns to reserved state; when the mask drops to empty the reservation
// is deleted and every group page is released through release. handled
// reports whether the free was absorbed by a reservation — when false the
// caller frees the frame through the default kernel path (§4.3: frees of
// fully-mapped groups "[are] performed as in the default kernel, without
// involving PTEMagnet").
func (p *PaRT) NotifyFree(va arch.VirtAddr, pa arch.PhysAddr, release func(arch.PhysAddr)) (handled bool) {
	if p.cfg.CoarseLocking {
		p.coarse.Lock()
		defer p.coarse.Unlock()
	}
	r, ok := p.lookup(va)
	if !ok {
		return false
	}
	idx := p.GroupIndex(va)
	r.mu.Lock()
	if r.dead || r.mask&(1<<idx) == 0 || r.base+arch.PhysAddr(idx<<arch.PageShift) != pa.PageBase() {
		r.mu.Unlock()
		return false
	}
	r.mask &^= 1 << idx
	empty := r.mask == 0
	if empty {
		r.dead = true
	}
	base := r.base
	r.mu.Unlock()
	p.unusedPages.Add(1)
	if empty {
		p.remove(r.groupVA)
		p.live.Add(-1)
		p.unusedPages.Add(-int64(p.cfg.GroupPages))
		for i := 0; i < p.cfg.GroupPages; i++ {
			release(base + arch.PhysAddr(i<<arch.PageShift))
		}
		p.bump(func(s *Stats) { s.FullyFreed++ })
	}
	return true
}

// ReservedPageFor returns the physical address backing va's page inside a
// live reservation and whether that page is currently mapped. It exists for
// the fork path (§4.4): a child's fault first consults the parent's
// reservation map.
func (p *PaRT) ReservedPageFor(va arch.VirtAddr) (pa arch.PhysAddr, mapped bool, found bool) {
	r, ok := p.Lookup(va)
	if !ok {
		return arch.NoPhysAddr, false, false
	}
	idx := p.GroupIndex(va)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead {
		return arch.NoPhysAddr, false, false
	}
	return r.base + arch.PhysAddr(idx<<arch.PageShift), r.mask&(1<<idx) != 0, true
}

// ClaimFromParent claims the page for va in this (parent) table on behalf of
// a forked child (§4.4: "If the requested page is not allocated by a parent
// (or other children), a page from a parent's reservation is returned to
// the child"). It behaves like the claim half of HandleFault but never
// creates a reservation — children cannot create reservations in the
// parent's map.
func (p *PaRT) ClaimFromParent(va arch.VirtAddr) (pa arch.PhysAddr, ok bool) {
	if p.cfg.CoarseLocking {
		p.coarse.Lock()
		defer p.coarse.Unlock()
	}
	r, found := p.lookup(va)
	if !found {
		return arch.NoPhysAddr, false
	}
	idx := p.GroupIndex(va)
	r.mu.Lock()
	if r.dead || r.mask&(1<<idx) != 0 {
		r.mu.Unlock()
		return arch.NoPhysAddr, false
	}
	r.mask |= 1 << idx
	pa = r.base + arch.PhysAddr(idx<<arch.PageShift)
	full := r.mask == p.fullMask()
	if full {
		r.dead = true
	}
	r.mu.Unlock()
	p.unusedPages.Add(-1)
	if full {
		p.remove(r.groupVA)
		p.live.Add(-1)
		p.bump(func(s *Stats) { s.FullyMapped++ })
	}
	p.bump(func(s *Stats) { s.Hits++ })
	return pa, true
}

// ForEach visits every live reservation in unspecified order. The callback
// must not call back into the PaRT. Iteration stops early when fn returns
// false.
func (p *PaRT) ForEach(fn func(*Reservation) bool) {
	p.forEachNode(p.root, radixLevels, fn)
}

func (p *PaRT) forEachNode(n *radixNode, level int, fn func(*Reservation) bool) bool {
	// Snapshot children under the node lock, then recurse without it.
	n.mu.Lock()
	children := n.children
	n.mu.Unlock()
	for _, c := range children {
		if c == nil {
			continue
		}
		if level == 1 {
			if !fn(c.(*Reservation)) {
				return false
			}
			continue
		}
		if !p.forEachNode(c.(*radixNode), level-1, fn) {
			return false
		}
	}
	return true
}

// DissolveGroup destroys the live reservation covering va (if any),
// releasing its unmapped pages through release. Mapped pages stay with
// whoever maps them. The kernel uses this when a reservation page enters a
// state PTEMagnet does not track (swap, THP compaction, or a fork-shared
// frame being freed — §4.4 "Swap and THP").
func (p *PaRT) DissolveGroup(va arch.VirtAddr, release func(arch.PhysAddr)) bool {
	if p.cfg.CoarseLocking {
		p.coarse.Lock()
		defer p.coarse.Unlock()
	}
	r, ok := p.lookup(va)
	if !ok {
		return false
	}
	r.mu.Lock()
	if r.dead {
		r.mu.Unlock()
		return false
	}
	r.dead = true
	mask := r.mask
	base := r.base
	groupVA := r.groupVA
	r.mu.Unlock()
	freed := 0
	for i := 0; i < p.cfg.GroupPages; i++ {
		if mask&(1<<i) == 0 {
			release(base + arch.PhysAddr(i<<arch.PageShift))
			freed++
		}
	}
	p.remove(groupVA)
	p.live.Add(-1)
	p.unusedPages.Add(-int64(freed))
	p.bump(func(s *Stats) { s.Reclaimed++ })
	return true
}

// ReclaimInfo describes one reservation destroyed by Reclaim.
type ReclaimInfo struct {
	// GroupVA is the group's virtual base.
	GroupVA arch.VirtAddr
	// FreedPages is how many unmapped pages were returned to the buddy
	// allocator.
	FreedPages int
}

// Reclaim implements the §4.3 pressure daemon for this process: it walks the
// reservations and destroys them, releasing each *unmapped* page through
// release. Mapped pages stay with the application (it keeps benefitting
// from the contiguity already established). Reclaim stops when enough()
// returns true or the table is empty, and returns what it destroyed.
func (p *PaRT) Reclaim(release func(arch.PhysAddr), enough func() bool) []ReclaimInfo {
	if p.cfg.CoarseLocking {
		p.coarse.Lock()
		defer p.coarse.Unlock()
	}
	var out []ReclaimInfo
	// Collect first: destroying while iterating the radix tree is safe
	// with our snapshots but harder to reason about.
	var victims []*Reservation
	p.ForEach(func(r *Reservation) bool {
		victims = append(victims, r)
		return true
	})
	for _, r := range victims {
		if enough != nil && enough() {
			break
		}
		r.mu.Lock()
		if r.dead {
			r.mu.Unlock()
			continue
		}
		r.dead = true
		mask := r.mask
		base := r.base
		groupVA := r.groupVA
		r.mu.Unlock()

		freed := 0
		for i := 0; i < p.cfg.GroupPages; i++ {
			if mask&(1<<i) == 0 {
				release(base + arch.PhysAddr(i<<arch.PageShift))
				freed++
			}
		}
		p.remove(groupVA)
		p.live.Add(-1)
		p.unusedPages.Add(-int64(freed))
		p.bump(func(s *Stats) { s.Reclaimed++ })
		out = append(out, ReclaimInfo{GroupVA: groupVA, FreedPages: freed})
	}
	return out
}

// DestroyAll tears down every reservation (process exit), releasing all
// unmapped pages through release. Mapped pages are the caller's to free via
// its page-table records.
func (p *PaRT) DestroyAll(release func(arch.PhysAddr)) {
	p.Reclaim(release, nil)
}
