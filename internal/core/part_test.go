package core

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/physmem"
)

// testAlloc builds an alloc callback over a physmem backing.
func testAlloc(mem *physmem.Memory, groupPages int) func() (arch.PhysAddr, bool) {
	return func() (arch.PhysAddr, bool) {
		return mem.AllocGroup(groupPages, physmem.KindReserved, physmem.Own(0, 1))
	}
}

func newPart(t *testing.T) (*PaRT, *physmem.Memory) {
	t.Helper()
	return MustNew(DefaultConfig()), physmem.New(64 << 20)
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 65, 128} {
		cfg := Config{GroupPages: bad}
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(GroupPages=%d) = nil, want error", bad)
		}
		p, err := New(cfg)
		if err == nil || p != nil {
			t.Errorf("New(GroupPages=%d) = %v, %v; want nil, error", bad, p, err)
		}
		var cerr *ConfigError
		if !errors.As(err, &cerr) {
			t.Errorf("New(GroupPages=%d) error %v is not a *ConfigError", bad, err)
		} else if cerr.Field != "GroupPages" {
			t.Errorf("ConfigError.Field = %q, want GroupPages", cerr.Field)
		}
	}
	for _, good := range []int{1, 2, 4, 8, 16, 32, 64} {
		if _, err := New(Config{GroupPages: good}); err != nil {
			t.Errorf("New(GroupPages=%d) failed: %v", good, err)
		}
	}
}

func TestMustNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(GroupPages=3) did not panic")
		}
	}()
	MustNew(Config{GroupPages: 3})
}

func TestFirstFaultCreatesReservation(t *testing.T) {
	p, mem := newPart(t)
	va := arch.VirtAddr(0x7f0000003000) // page 3 of its group
	pa, res := p.HandleFault(va, testAlloc(mem, 8))
	if res != FaultNewReservation {
		t.Fatalf("result = %v", res)
	}
	if uint64(pa)%arch.PageSize != 0 {
		t.Errorf("pa %#x not page aligned", uint64(pa))
	}
	// The returned page must be the group-index-th page of an aligned group.
	if uint64(pa)%(8*arch.PageSize) != 3*arch.PageSize {
		t.Errorf("pa %#x is not page 3 of an aligned group", uint64(pa))
	}
	if p.Live() != 1 {
		t.Errorf("Live = %d", p.Live())
	}
	if p.UnusedPages() != 7 {
		t.Errorf("UnusedPages = %d, want 7", p.UnusedPages())
	}
	if got := mem.CountKind(physmem.KindReserved); got != 8 {
		t.Errorf("reserved frames = %d, want 8 (caller retags mapped ones)", got)
	}
}

func TestSubsequentFaultsHitReservation(t *testing.T) {
	p, mem := newPart(t)
	base := arch.VirtAddr(0x7f0000000000)
	firstPA, _ := p.HandleFault(base, testAlloc(mem, 8))
	calls := 0
	countingAlloc := func() (arch.PhysAddr, bool) {
		calls++
		return mem.AllocGroup(8, physmem.KindReserved, physmem.Own(0, 1))
	}
	for i := 1; i < 8; i++ {
		pa, res := p.HandleFault(base+arch.VirtAddr(i*arch.PageSize), countingAlloc)
		if res != FaultReservationHit {
			t.Fatalf("fault %d: result = %v", i, res)
		}
		if pa != firstPA+arch.PhysAddr(i*arch.PageSize) {
			t.Errorf("fault %d: pa = %#x, want contiguous %#x", i, pa, firstPA+arch.PhysAddr(i*arch.PageSize))
		}
	}
	if calls != 0 {
		t.Errorf("buddy called %d times for reservation hits", calls)
	}
	// Group fully mapped → entry deleted.
	if p.Live() != 0 {
		t.Errorf("Live = %d after filling group", p.Live())
	}
	if p.UnusedPages() != 0 {
		t.Errorf("UnusedPages = %d", p.UnusedPages())
	}
	s := p.Snapshot()
	if s.Created != 1 || s.FullyMapped != 1 || s.Hits != 7 {
		t.Errorf("stats = %+v", s)
	}
}

func TestContiguityGuarantee(t *testing.T) {
	// Even with an adversarial interleaving pattern, pages of one group
	// are physically contiguous and aligned — the paper's core guarantee.
	p, mem := newPart(t)
	groups := []arch.VirtAddr{0x1000000, 0x2000000, 0x3000000}
	pas := map[arch.VirtAddr]arch.PhysAddr{}
	// Interleave faults across groups.
	for i := 0; i < 8; i++ {
		for _, g := range groups {
			va := g + arch.VirtAddr(i*arch.PageSize)
			pa, res := p.HandleFault(va, testAlloc(mem, 8))
			if res == FaultNoMemory {
				t.Fatal("out of memory")
			}
			pas[va] = pa
		}
	}
	for _, g := range groups {
		base := pas[g]
		if uint64(base)%(8*arch.PageSize) != 0 {
			t.Errorf("group %#x base %#x misaligned", uint64(g), uint64(base))
		}
		for i := 1; i < 8; i++ {
			va := g + arch.VirtAddr(i*arch.PageSize)
			if pas[va] != base+arch.PhysAddr(i*arch.PageSize) {
				t.Errorf("group %#x page %d not contiguous", uint64(g), i)
			}
		}
	}
}

func TestHandleFaultNoMemory(t *testing.T) {
	p := MustNew(DefaultConfig())
	pa, res := p.HandleFault(0x1000, func() (arch.PhysAddr, bool) { return arch.NoPhysAddr, false })
	if res != FaultNoMemory || pa != arch.NoPhysAddr {
		t.Errorf("result = %#x,%v", pa, res)
	}
	if p.Live() != 0 {
		t.Errorf("Live = %d after failed alloc", p.Live())
	}
}

func TestMisalignedAllocPanics(t *testing.T) {
	p := MustNew(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("misaligned reservation base did not panic")
		}
	}()
	p.HandleFault(0x1000, func() (arch.PhysAddr, bool) { return arch.PhysAddr(arch.PageSize), true })
}

func TestNotifyFreeReturnsPageToReservation(t *testing.T) {
	p, mem := newPart(t)
	base := arch.VirtAddr(0x40000000)
	pa0, _ := p.HandleFault(base, testAlloc(mem, 8))
	p.HandleFault(base+arch.PageSize, testAlloc(mem, 8))

	released := []arch.PhysAddr{}
	handled := p.NotifyFree(base, pa0, func(pa arch.PhysAddr) { released = append(released, pa) })
	if !handled {
		t.Fatal("free of reserved-group page not handled")
	}
	if len(released) != 0 {
		t.Fatalf("partial free released %d frames", len(released))
	}
	if p.UnusedPages() != 7 {
		t.Errorf("UnusedPages = %d, want 7", p.UnusedPages())
	}
	// Refaulting the freed page claims the same physical page again.
	pa, res := p.HandleFault(base, testAlloc(mem, 8))
	if res != FaultReservationHit || pa != pa0 {
		t.Errorf("refault: pa=%#x res=%v, want %#x hit", pa, res, pa0)
	}
}

func TestNotifyFreeLastPageDeletesReservation(t *testing.T) {
	p, mem := newPart(t)
	base := arch.VirtAddr(0x40000000)
	paFirst, _ := p.HandleFault(base, testAlloc(mem, 8))
	var released []arch.PhysAddr
	if !p.NotifyFree(base, paFirst, func(pa arch.PhysAddr) { released = append(released, pa) }) {
		t.Fatal("not handled")
	}
	if len(released) != 8 {
		t.Fatalf("released %d frames, want whole group of 8", len(released))
	}
	if p.Live() != 0 || p.UnusedPages() != 0 {
		t.Errorf("Live=%d UnusedPages=%d", p.Live(), p.UnusedPages())
	}
	if p.Snapshot().FullyFreed != 1 {
		t.Errorf("FullyFreed = %d", p.Snapshot().FullyFreed)
	}
}

func TestNotifyFreeAfterFullMappingIsUnhandled(t *testing.T) {
	p, mem := newPart(t)
	base := arch.VirtAddr(0x40000000)
	for i := 0; i < 8; i++ {
		p.HandleFault(base+arch.VirtAddr(i*arch.PageSize), testAlloc(mem, 8))
	}
	// Entry deleted; frees go the default kernel path.
	if p.NotifyFree(base, 0x12345000, func(arch.PhysAddr) { t.Fatal("released") }) {
		t.Error("free of fully-mapped group handled by PaRT")
	}
}

func TestLookup(t *testing.T) {
	p, mem := newPart(t)
	base := arch.VirtAddr(0x40000000)
	if _, ok := p.Lookup(base); ok {
		t.Error("lookup hit on empty table")
	}
	p.HandleFault(base+5*arch.PageSize, testAlloc(mem, 8))
	r, ok := p.Lookup(base + 2*arch.PageSize) // different page, same group
	if !ok {
		t.Fatal("lookup missed live reservation")
	}
	if r.GroupVA() != base {
		t.Errorf("GroupVA = %#x", uint64(r.GroupVA()))
	}
	if r.Mask() != 1<<5 {
		t.Errorf("Mask = %#b", r.Mask())
	}
	// Neighbouring group is distinct.
	if _, ok := p.Lookup(base + arch.GroupBytes); ok {
		t.Error("lookup hit neighbouring group")
	}
}

func TestReservedPageFor(t *testing.T) {
	p, mem := newPart(t)
	base := arch.VirtAddr(0x40000000)
	pa0, _ := p.HandleFault(base, testAlloc(mem, 8))
	pa, mapped, found := p.ReservedPageFor(base)
	if !found || !mapped || pa != pa0 {
		t.Errorf("mapped page: pa=%#x mapped=%v found=%v", pa, mapped, found)
	}
	pa, mapped, found = p.ReservedPageFor(base + arch.PageSize)
	if !found || mapped {
		t.Errorf("reserved page: mapped=%v found=%v", mapped, found)
	}
	if pa != pa0+arch.PageSize {
		t.Errorf("reserved page pa = %#x", pa)
	}
	if _, _, found = p.ReservedPageFor(0x90000000); found {
		t.Error("found reservation where none exists")
	}
}

func TestClaimFromParent(t *testing.T) {
	p, mem := newPart(t)
	base := arch.VirtAddr(0x40000000)
	pa0, _ := p.HandleFault(base, testAlloc(mem, 8))
	// Child claims page 1 from the parent's reservation.
	pa, ok := p.ClaimFromParent(base + arch.PageSize)
	if !ok || pa != pa0+arch.PageSize {
		t.Fatalf("ClaimFromParent = %#x,%v", pa, ok)
	}
	// Claiming an already-mapped page fails (the child must COW/share it).
	if _, ok := p.ClaimFromParent(base); ok {
		t.Error("claimed already-mapped page")
	}
	// No reservation → no claim.
	if _, ok := p.ClaimFromParent(0x90000000); ok {
		t.Error("claimed from nonexistent reservation")
	}
}

func TestReclaimReleasesOnlyUnmappedPages(t *testing.T) {
	p, mem := newPart(t)
	baseA := arch.VirtAddr(0x40000000)
	baseB := arch.VirtAddr(0x50000000)
	p.HandleFault(baseA, testAlloc(mem, 8))               // 1 mapped, 7 reserved
	p.HandleFault(baseB, testAlloc(mem, 8))               // 1 mapped, 7 reserved
	p.HandleFault(baseB+arch.PageSize, testAlloc(mem, 8)) // 2 mapped, 6 reserved
	var released []arch.PhysAddr
	infos := p.Reclaim(func(pa arch.PhysAddr) { released = append(released, pa) }, nil)
	if len(infos) != 2 {
		t.Fatalf("reclaimed %d reservations, want 2", len(infos))
	}
	if len(released) != 13 { // 7 + 6
		t.Errorf("released %d pages, want 13", len(released))
	}
	if p.Live() != 0 || p.UnusedPages() != 0 {
		t.Errorf("Live=%d UnusedPages=%d after reclaim", p.Live(), p.UnusedPages())
	}
	if p.Snapshot().Reclaimed != 2 {
		t.Errorf("Reclaimed = %d", p.Snapshot().Reclaimed)
	}
}

func TestReclaimThresholdByGauge(t *testing.T) {
	p, mem := newPart(t)
	for i := 0; i < 10; i++ {
		p.HandleFault(arch.VirtAddr(0x40000000+i*0x100000), testAlloc(mem, 8))
	}
	// Stop once unused pages drop to 35 (5 reservations × 7 unused).
	p.Reclaim(func(arch.PhysAddr) {}, func() bool { return p.UnusedPages() <= 35 })
	if p.Live() != 5 {
		t.Errorf("Live = %d, want 5", p.Live())
	}
	if p.UnusedPages() != 35 {
		t.Errorf("UnusedPages = %d, want 35", p.UnusedPages())
	}
}

func TestFaultAfterReclaimCreatesFreshReservation(t *testing.T) {
	p, mem := newPart(t)
	base := arch.VirtAddr(0x40000000)
	p.HandleFault(base, testAlloc(mem, 8))
	p.Reclaim(func(pa arch.PhysAddr) { mem.FreeBlock(pa) }, nil)
	_, res := p.HandleFault(base+arch.PageSize, testAlloc(mem, 8))
	if res != FaultNewReservation {
		t.Errorf("post-reclaim fault result = %v, want new reservation", res)
	}
}

func TestGranularitySweepGroupSizes(t *testing.T) {
	for _, gp := range []int{1, 2, 4, 16, 32} {
		p := MustNew(Config{GroupPages: gp})
		mem := physmem.New(64 << 20)
		base := arch.VirtAddr(0x40000000)
		pa0, res := p.HandleFault(base, testAlloc(mem, gp))
		if res != FaultNewReservation {
			t.Fatalf("gp=%d: first fault result %v", gp, res)
		}
		if gp == 1 {
			// Single-page groups are immediately full; no live entry.
			if p.Live() != 0 {
				t.Errorf("gp=1: Live = %d", p.Live())
			}
			continue
		}
		for i := 1; i < gp; i++ {
			pa, res := p.HandleFault(base+arch.VirtAddr(i*arch.PageSize), testAlloc(mem, gp))
			if res != FaultReservationHit || pa != pa0+arch.PhysAddr(i*arch.PageSize) {
				t.Errorf("gp=%d page %d: pa=%#x res=%v", gp, i, pa, res)
			}
		}
		if p.Live() != 0 {
			t.Errorf("gp=%d: Live = %d after filling", gp, p.Live())
		}
	}
}

func TestForEachVisitsAll(t *testing.T) {
	p, mem := newPart(t)
	want := map[arch.VirtAddr]bool{}
	for i := 0; i < 20; i++ {
		va := arch.VirtAddr(0x40000000 + i*0x100000)
		p.HandleFault(va, testAlloc(mem, 8))
		want[va] = true
	}
	got := map[arch.VirtAddr]bool{}
	p.ForEach(func(r *Reservation) bool {
		got[r.GroupVA()] = true
		return true
	})
	if len(got) != len(want) {
		t.Errorf("visited %d, want %d", len(got), len(want))
	}
	for va := range want {
		if !got[va] {
			t.Errorf("missed %#x", uint64(va))
		}
	}
}

func TestConcurrentFaultsOneGroupPerThreadSafe(t *testing.T) {
	// Many goroutines fault concurrently into disjoint and shared groups;
	// invariants: each page claimed exactly once, all groups contiguous.
	for _, coarse := range []bool{false, true} {
		p := MustNew(Config{GroupPages: 8, CoarseLocking: coarse})
		var mu sync.Mutex
		mem := physmem.New(256 << 20)
		alloc := func() (arch.PhysAddr, bool) {
			mu.Lock()
			defer mu.Unlock()
			return mem.AllocGroup(8, physmem.KindReserved, physmem.Own(0, 1))
		}
		const groups = 32
		results := make([][]arch.PhysAddr, groups)
		for g := range results {
			results[g] = make([]arch.PhysAddr, 8)
		}
		var wg sync.WaitGroup
		for worker := 0; worker < 8; worker++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Each worker faults one page index across all groups, so
				// every group is touched by all workers concurrently.
				for g := 0; g < groups; g++ {
					va := arch.VirtAddr(0x40000000 + g*0x8000 + w*arch.PageSize)
					pa, res := p.HandleFault(va, alloc)
					if res == FaultNoMemory {
						t.Errorf("out of memory")
						return
					}
					results[g][w] = pa
				}
			}(worker)
		}
		wg.Wait()
		for g := 0; g < groups; g++ {
			base := results[g][0] - 0 // page 0 claimed by worker 0
			for w := 0; w < 8; w++ {
				if results[g][w] != base+arch.PhysAddr(w*arch.PageSize) {
					t.Errorf("coarse=%v group %d page %d: %#x not contiguous with %#x", coarse, g, w, results[g][w], base)
				}
			}
		}
		if p.Live() != 0 {
			t.Errorf("coarse=%v: %d live reservations after all groups filled", coarse, p.Live())
		}
	}
}

// Property: for random fault sequences, UnusedPages always equals
// sum over live reservations of (GroupPages - popcount(mask)).
func TestQuickUnusedPagesInvariant(t *testing.T) {
	f := func(pageIdxs []uint16) bool {
		p := MustNew(DefaultConfig())
		mem := physmem.New(128 << 20)
		seen := map[arch.VirtAddr]bool{}
		for _, raw := range pageIdxs {
			va := arch.VirtAddr(uint64(raw)) << arch.PageShift
			if seen[va] {
				continue
			}
			seen[va] = true
			if _, res := p.HandleFault(va, testAlloc(mem, 8)); res == FaultNoMemory {
				return true
			}
		}
		sum := 0
		p.ForEach(func(r *Reservation) bool {
			m := r.Mask()
			n := 0
			for i := 0; i < 8; i++ {
				if m&(1<<i) == 0 {
					n++
				}
			}
			sum += n
			return true
		})
		return sum == p.UnusedPages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHandleFaultNewReservation(b *testing.B) {
	p := MustNew(DefaultConfig())
	mem := physmem.New(1 << 30)
	alloc := testAlloc(mem, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := arch.VirtAddr(uint64(i%30000) * arch.GroupBytes)
		pa, res := p.HandleFault(va, alloc)
		if res == FaultNoMemory {
			b.Fatal("oom")
		}
		p.NotifyFree(va, pa, func(pa arch.PhysAddr) { mem.FreeBlock(pa) })
	}
}

func BenchmarkHandleFaultHit(b *testing.B) {
	p := MustNew(DefaultConfig())
	mem := physmem.New(1 << 24)
	alloc := testAlloc(mem, 8)
	base := arch.VirtAddr(0x40000000)
	p.HandleFault(base, alloc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := base + arch.PageSize
		pa, _ := p.HandleFault(va, alloc)
		p.NotifyFree(va, pa, func(arch.PhysAddr) {})
	}
}

func TestConcurrentFaultsFreesAndReclaim(t *testing.T) {
	// Faulting, freeing, and pressure-reclaiming goroutines hammer one
	// PaRT concurrently; the gauges must stay consistent and nothing may
	// be double-released (the backing physmem panics on double free).
	for _, coarse := range []bool{false, true} {
		p := MustNew(Config{GroupPages: 8, CoarseLocking: coarse})
		mem := physmem.New(256 << 20)
		var memMu sync.Mutex
		alloc := func() (arch.PhysAddr, bool) {
			memMu.Lock()
			defer memMu.Unlock()
			return mem.AllocGroup(8, physmem.KindReserved, physmem.Own(0, 1))
		}
		release := func(pa arch.PhysAddr) {
			memMu.Lock()
			defer memMu.Unlock()
			mem.FreeBlock(pa)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := arch.VirtAddr(uint64(w) << 36)
				// Track held pages like the kernel's page table does: a
				// page is only faulted when unmapped, only freed when
				// mapped.
				held := map[arch.VirtAddr]arch.PhysAddr{}
				for i := 0; i < 3000; i++ {
					va := base + arch.VirtAddr(uint64(i%512)*arch.PageSize)
					if pa, ok := held[va]; ok {
						if !p.NotifyFree(va, pa, release) {
							// Fully-mapped group or foreign frame: the
							// kernel frees it directly.
							release(pa)
						}
						delete(held, va)
						continue
					}
					pa, res := p.HandleFault(va, alloc)
					if res == FaultNoMemory {
						continue
					}
					held[va] = pa
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Reclaim(release, func() bool { return p.UnusedPages() < 64 })
			}
		}()
		wg.Wait()
		// Final gauge consistency.
		sum := 0
		p.ForEach(func(r *Reservation) bool {
			m := r.Mask()
			for i := 0; i < 8; i++ {
				if m&(1<<i) == 0 {
					sum++
				}
			}
			return true
		})
		if sum != p.UnusedPages() {
			t.Errorf("coarse=%v: gauge %d != recount %d", coarse, p.UnusedPages(), sum)
		}
	}
}

func TestDissolveGroup(t *testing.T) {
	p, mem := newPart(t)
	base := arch.VirtAddr(0x40000000)
	p.HandleFault(base, testAlloc(mem, 8))
	p.HandleFault(base+arch.PageSize, testAlloc(mem, 8))
	var released int
	if !p.DissolveGroup(base+5*arch.PageSize, func(pa arch.PhysAddr) { mem.FreeBlock(pa); released++ }) {
		t.Fatal("DissolveGroup missed live reservation")
	}
	if released != 6 {
		t.Errorf("released %d unmapped pages, want 6", released)
	}
	if p.Live() != 0 || p.UnusedPages() != 0 {
		t.Errorf("Live=%d UnusedPages=%d", p.Live(), p.UnusedPages())
	}
	if p.Snapshot().Reclaimed != 1 {
		t.Errorf("Reclaimed = %d", p.Snapshot().Reclaimed)
	}
	// Dissolving again (or a nonexistent group) is a no-op.
	if p.DissolveGroup(base, func(arch.PhysAddr) { t.Fatal("released") }) {
		t.Error("second dissolve succeeded")
	}
	if p.DissolveGroup(0x90000000, func(arch.PhysAddr) {}) {
		t.Error("dissolve of nonexistent group succeeded")
	}
}

func TestDestroyAll(t *testing.T) {
	p, mem := newPart(t)
	for i := 0; i < 5; i++ {
		p.HandleFault(arch.VirtAddr(0x40000000+i*0x100000), testAlloc(mem, 8))
	}
	released := 0
	p.DestroyAll(func(pa arch.PhysAddr) { mem.FreeBlock(pa); released++ })
	if released != 35 { // 5 groups × 7 unmapped
		t.Errorf("released %d, want 35", released)
	}
	if p.Live() != 0 {
		t.Errorf("Live = %d", p.Live())
	}
}

func TestReservationAccessorsAndConfig(t *testing.T) {
	p, mem := newPart(t)
	base := arch.VirtAddr(0x40000000)
	pa0, _ := p.HandleFault(base, testAlloc(mem, 8))
	r, _ := p.Lookup(base)
	if r.Base() != pa0.PageBase() {
		t.Errorf("Base = %#x, want %#x", r.Base(), pa0)
	}
	if p.Config().GroupPages != 8 {
		t.Errorf("Config = %+v", p.Config())
	}
	if p.GroupBytes() != 32<<10 {
		t.Errorf("GroupBytes = %d", p.GroupBytes())
	}
}

func TestFaultResultStrings(t *testing.T) {
	want := map[FaultResult]string{
		FaultNewReservation: "new-reservation",
		FaultReservationHit: "reservation-hit",
		FaultNoMemory:       "no-memory",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
	if FaultResult(99).String() == "" {
		t.Error("unknown result empty")
	}
}

func TestFullMask64(t *testing.T) {
	p := MustNew(Config{GroupPages: 64})
	mem := physmem.New(128 << 20)
	base := arch.VirtAddr(0x40000000)
	for i := 0; i < 64; i++ {
		_, res := p.HandleFault(base+arch.VirtAddr(i*arch.PageSize), testAlloc(mem, 64))
		if res == FaultNoMemory {
			t.Fatal("oom")
		}
	}
	if p.Live() != 0 {
		t.Errorf("64-page group not deleted when full: Live=%d", p.Live())
	}
}

func TestKeySpacePanic(t *testing.T) {
	p := MustNew(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("address beyond key space did not panic")
		}
	}()
	p.Lookup(arch.VirtAddr(1) << 52)
}

func TestCoarseLockingNotifyAndClaim(t *testing.T) {
	p := MustNew(Config{GroupPages: 8, CoarseLocking: true})
	mem := physmem.New(64 << 20)
	base := arch.VirtAddr(0x40000000)
	pa0, _ := p.HandleFault(base, testAlloc(mem, 8))
	if pa, ok := p.ClaimFromParent(base + arch.PageSize); !ok || pa != pa0+arch.PageSize {
		t.Errorf("coarse ClaimFromParent = %#x,%v", pa, ok)
	}
	if !p.NotifyFree(base, pa0, func(arch.PhysAddr) {}) {
		t.Error("coarse NotifyFree failed")
	}
	if !p.DissolveGroup(base, func(pa arch.PhysAddr) { mem.FreeBlock(pa) }) {
		t.Error("coarse DissolveGroup failed")
	}
}
