// Package faults is the deterministic fault-injection layer: a Config
// describes which fault classes to provoke and how often, and a Plan
// materializes that description for one retry attempt as a seed-derived,
// event-count-keyed schedule. Plans are injected at existing choke points
// — the buddy allocator's free-list scan, the host kernel's fault-time
// frame allocation, the dirty-log append, and the migration pre-copy loop
// — through small hook interfaces declared by the consuming packages, so
// the zero-plan hot path costs one nil check per site and stays
// byte-identical to a build without injection.
//
// Determinism argument (DESIGN.md §11): every firing decision is a pure
// function of (Config, attempt, site-local event count). The event counts
// — buddy allocations, host faults, dirty-log transitions, pre-copy
// rounds — advance only with simulated work, which the scheduler orders
// identically for any engine worker count, so the same plan injects the
// same faults at the same simulated instants in every run. The schedules
// themselves come from a rand.Rand seeded via engine.DeriveSeed, never
// from wall-clock or execution order.
//
// Recovery is keyed to the attempt index (engine.AttemptFrom): a Config
// with FailAttempts=k produces active plans for attempts 0..k-1 and empty
// plans from attempt k on, so a retried scenario replays on a genuinely
// clean machine — the foundation of the retry-then-succeed ≡
// never-faulted equivalence the chaos tests pin.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ptemagnet/internal/engine"
	"ptemagnet/internal/obs"
)

// Site names an injection choke point.
type Site uint8

const (
	// SiteBuddyAlloc fails a guest buddy allocation (transient: the
	// guest OS absorbs it through reclaim-and-retry or CA fallback).
	SiteBuddyAlloc Site = iota
	// SiteHostOOM fails a host-kernel frame allocation during fault
	// handling, surfacing as a *hostos.OOMError.
	SiteHostOOM
	// SiteDirtyLog drops a dirty-log entry and latches the overflow
	// flag, forcing the next drain onto the full-rescan path.
	SiteDirtyLog
	// SiteMigrateDestOOM fails a destination allocation at a chosen
	// pre-copy round, surfacing as migrate.ErrDestinationOOM.
	SiteMigrateDestOOM
	// SiteMigrateCancel aborts a migration at a chosen pre-copy round.
	SiteMigrateCancel

	numSites
)

// String names the site for error text and counter labels.
func (s Site) String() string {
	switch s {
	case SiteBuddyAlloc:
		return "buddy-alloc"
	case SiteHostOOM:
		return "host-oom"
	case SiteDirtyLog:
		return "dirty-log"
	case SiteMigrateDestOOM:
		return "migrate-dest-oom"
	case SiteMigrateCancel:
		return "migrate-cancel"
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// ErrInjected is the root of the injected-fault taxonomy: every error a
// Plan produces — directly or wrapped inside *hostos.OOMError or
// *migrate.MigrateError — satisfies errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faults: injected fault")

// Error is a typed injected fault. It matches ErrInjected via Is, so
// wrapping layers (OOMError, MigrateError) keep it reachable as long as
// they expose Unwrap.
type Error struct {
	// Site is the choke point that fired.
	Site Site
	// Seq is the site-local event count at which the fault fired
	// (allocation number, fault number, or pre-copy round).
	Seq uint64
	// Transient marks faults a retry with a later attempt index is
	// expected to clear.
	Transient bool
}

// Error renders the fault.
func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s fault (event %d)", e.Site, e.Seq)
}

// Is makes every injected fault errors.Is-reachable from ErrInjected.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// IsInjected reports whether err carries an injected fault anywhere in
// its chain.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// IsTransient reports whether err carries a transient injected fault —
// the classifier engine.RetryPolicy uses to decide whether another
// attempt can help.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Transient
}

// Config describes a fault campaign. The zero value injects nothing.
// Schedules derive from Seed alone, so two configs with equal fields
// produce identical plans.
type Config struct {
	// Seed drives schedule placement (via engine.DeriveSeed, per
	// attempt). Independent of the workload seed.
	Seed int64
	// FailAttempts is the number of retry attempts that see an active
	// plan; attempts at or beyond it get an empty plan and run clean.
	// Zero means 1 (fault the first attempt only).
	FailAttempts int

	// BuddyFails is the number of guest buddy allocations to fail,
	// spread over the first BuddyFailSpan allocations (0 span = 2048).
	BuddyFails    int
	BuddyFailSpan uint64

	// HostOOMs is the number of host fault-time frame allocations to
	// fail, spread over the first HostOOMSpan host faults (0 = 2048).
	HostOOMs    int
	HostOOMSpan uint64

	// DirtyLogOverflowEvery forces a dirty-log overflow on every Nth
	// logged clear→set transition (0 = never).
	DirtyLogOverflowEvery uint64

	// MigrateDestOOMRound injects a destination OOM at this 1-based
	// pre-copy round (0 = never); MigrateCancelRound aborts the
	// migration at this round (0 = never).
	MigrateDestOOMRound int
	MigrateCancelRound  int
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.BuddyFails > 0 || c.HostOOMs > 0 || c.DirtyLogOverflowEvery > 0 ||
		c.MigrateDestOOMRound > 0 || c.MigrateCancelRound > 0
}

// defaultSpan spreads count-scheduled faults when the config leaves the
// span unset.
const defaultSpan = 2048

// schedule fires at a sorted list of 1-based site-local event counts.
type schedule struct {
	at   []uint64
	seq  uint64
	next int
}

// tick advances the site-local event count and reports whether this
// event is scheduled to fault.
func (s *schedule) tick() bool {
	s.seq++
	if s.next < len(s.at) && s.seq == s.at[s.next] {
		s.next++
		return true
	}
	return false
}

// minGap is the minimum distance between two scheduled event counts.
// Recovery paths re-enter the same choke point within a few events of an
// injected failure (reclaim-then-retry is one extra allocation, the
// reservation fallback chain a handful), so adjacent scheduled faults
// would turn one transient injection into an unrecoverable failure. A
// gap of 8 keeps every in-run recovery path clear of the next fault.
const minGap = 8

// newSchedule picks n event counts in [1, span] from rng, each at least
// minGap apart (n is clamped to what the span can hold). Gap enforcement
// is by construction, not rejection: sample n distinct points in the
// span shrunk by the total gap slack, sort them, then push the i-th
// point right by i*(minGap-1) — always terminates, and the mapping is a
// bijection so placement stays uniform.
func newSchedule(rng *rand.Rand, n int, span uint64) schedule {
	if n <= 0 {
		return schedule{}
	}
	if span == 0 {
		span = defaultSpan
	}
	if maxN := int((span + minGap - 1) / minGap); n > maxN {
		n = maxN
	}
	reduced := span - uint64(n-1)*(minGap-1)
	picked := make(map[uint64]struct{}, n)
	at := make([]uint64, 0, n)
	for len(at) < n {
		v := uint64(rng.Int63n(int64(reduced))) + 1
		if _, dup := picked[v]; dup {
			continue
		}
		picked[v] = struct{}{}
		at = append(at, v)
	}
	sort.Slice(at, func(i, j int) bool { return at[i] < at[j] })
	for i := range at {
		at[i] += uint64(i) * (minGap - 1)
	}
	return schedule{at: at}
}

// Plan is one attempt's materialized fault schedule. A nil or inactive
// plan injects nothing; all hook methods are nil-receiver-safe so a
// typed-nil *Plan stored in a hook interface stays inert. Plans are not
// goroutine-safe — one plan serves one machine run, which is
// single-threaded by construction.
type Plan struct {
	cfg     Config
	attempt int
	active  bool

	buddy    schedule
	hostOOM  schedule
	dirtySeq uint64

	injected [numSites]uint64
	// absorbedHostOOMs counts injected host OOMs the host absorbed in-run
	// through its pressure reliever (balloon relief + retry) instead of
	// failing the attempt — the degradation outcome, distinct from
	// recovery by engine retry.
	absorbedHostOOMs uint64
}

// NewPlan materializes cfg for one retry attempt (0 = first run).
// Attempts at or beyond cfg.FailAttempts yield an inactive plan, so
// retried scenarios replay clean.
func NewPlan(cfg Config, attempt int) *Plan {
	p := &Plan{cfg: cfg, attempt: attempt}
	failAttempts := cfg.FailAttempts
	if failAttempts <= 0 {
		failAttempts = 1
	}
	if attempt >= failAttempts || !cfg.Enabled() {
		return p
	}
	p.active = true
	rng := rand.New(rand.NewSource(engine.DeriveSeed(cfg.Seed, fmt.Sprintf("faults/attempt/%d", attempt))))
	p.buddy = newSchedule(rng, cfg.BuddyFails, cfg.BuddyFailSpan)
	p.hostOOM = newSchedule(rng, cfg.HostOOMs, cfg.HostOOMSpan)
	return p
}

// Attempt returns the retry attempt the plan was materialized for.
func (p *Plan) Attempt() int {
	if p == nil {
		return 0
	}
	return p.attempt
}

// Active reports whether the plan can inject anything.
func (p *Plan) Active() bool { return p != nil && p.active }

// Injected returns the number of faults fired at the given site so far.
func (p *Plan) Injected(s Site) uint64 {
	if p == nil || s >= numSites {
		return 0
	}
	return p.injected[s]
}

// InjectedTotal returns the number of faults fired across all sites.
func (p *Plan) InjectedTotal() uint64 {
	if p == nil {
		return 0
	}
	var total uint64
	for _, n := range p.injected {
		total += n
	}
	return total
}

// FailAlloc implements the buddy allocator's fault hook
// (buddy.AllocHook): consulted once per AllocOrder call, firing on the
// scheduled allocation counts.
func (p *Plan) FailAlloc(order int) bool {
	if p == nil || !p.active {
		return false
	}
	if p.buddy.tick() {
		p.injected[SiteBuddyAlloc]++
		return true
	}
	return false
}

// InjectHostOOM implements the host kernel's fault hook
// (hostos.OOMInjector): consulted once per fault-time frame allocation,
// returning a transient injected error on the scheduled fault counts.
func (p *Plan) InjectHostOOM() error {
	if p == nil || !p.active {
		return nil
	}
	if p.hostOOM.tick() {
		p.injected[SiteHostOOM]++
		return &Error{Site: SiteHostOOM, Seq: p.hostOOM.seq, Transient: true}
	}
	return nil
}

// ForceDirtyLogOverflow implements the dirty-log fault hook
// (hostos.DirtyLogInjector): consulted once per logged clear→set
// transition, forcing an overflow every cfg.DirtyLogOverflowEvery
// transitions.
func (p *Plan) ForceDirtyLogOverflow() bool {
	if p == nil || !p.active || p.cfg.DirtyLogOverflowEvery == 0 {
		return false
	}
	p.dirtySeq++
	if p.dirtySeq%p.cfg.DirtyLogOverflowEvery == 0 {
		p.injected[SiteDirtyLog]++
		return true
	}
	return false
}

// DestOOM implements half of migrate's fault hook (migrate.FaultInjector):
// a non-nil return injects a destination allocation failure at the given
// 1-based pre-copy round.
func (p *Plan) DestOOM(round int) error {
	if p == nil || !p.active || p.cfg.MigrateDestOOMRound == 0 || round != p.cfg.MigrateDestOOMRound {
		return nil
	}
	p.injected[SiteMigrateDestOOM]++
	return &Error{Site: SiteMigrateDestOOM, Seq: uint64(round), Transient: true}
}

// CancelAtRound implements the other half of migrate.FaultInjector: a
// non-nil return aborts the migration at the given pre-copy round.
func (p *Plan) CancelAtRound(round int) error {
	if p == nil || !p.active || p.cfg.MigrateCancelRound == 0 || round != p.cfg.MigrateCancelRound {
		return nil
	}
	p.injected[SiteMigrateCancel]++
	return &Error{Site: SiteMigrateCancel, Seq: uint64(round), Transient: true}
}

// NoteAbsorbedHostOOM records that an injected host OOM was absorbed
// in-run by the host's pressure reliever. hostos discovers the method by
// type assertion, so the OOMInjector interface stays unchanged.
func (p *Plan) NoteAbsorbedHostOOM() {
	if p == nil {
		return
	}
	p.absorbedHostOOMs++
}

// AbsorbedHostOOMs returns the number of injected host OOMs absorbed by
// pressure relief.
func (p *Plan) AbsorbedHostOOMs() uint64 {
	if p == nil {
		return 0
	}
	return p.absorbedHostOOMs
}

// RegisterObs registers the plan's injection counters on r under prefix
// (conventionally "faults."). Registered only by fault-aware runs —
// zero-plan telemetry keeps its pre-injection schema.
func (p *Plan) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"active", func() uint64 {
		if p.Active() {
			return 1
		}
		return 0
	})
	r.Counter(prefix+"injected_total", p.InjectedTotal)
	r.Counter(prefix+"buddy_failures_injected", func() uint64 { return p.Injected(SiteBuddyAlloc) })
	r.Counter(prefix+"host_ooms_injected", func() uint64 { return p.Injected(SiteHostOOM) })
	r.Counter(prefix+"host_ooms_absorbed", p.AbsorbedHostOOMs)
	r.Counter(prefix+"dirtylog_overflows_forced", func() uint64 { return p.Injected(SiteDirtyLog) })
	r.Counter(prefix+"migrate_dest_ooms_injected", func() uint64 { return p.Injected(SiteMigrateDestOOM) })
	r.Counter(prefix+"migrate_cancels_injected", func() uint64 { return p.Injected(SiteMigrateCancel) })
}
