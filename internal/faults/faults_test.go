package faults

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func drainBuddy(p *Plan, n int) []int {
	var fired []int
	for i := 0; i < n; i++ {
		if p.FailAlloc(0) {
			fired = append(fired, i)
		}
	}
	return fired
}

// TestPlanDeterminism pins that equal (Config, attempt) pairs produce the
// identical firing sequence, and that distinct attempts differ.
func TestPlanDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, BuddyFails: 12, BuddyFailSpan: 512, FailAttempts: 2}
	a := drainBuddy(NewPlan(cfg, 0), 512)
	b := drainBuddy(NewPlan(cfg, 0), 512)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same config fired differently: %v vs %v", a, b)
	}
	if len(a) != 12 {
		t.Errorf("fired %d faults, want 12", len(a))
	}
	c := drainBuddy(NewPlan(cfg, 1), 512)
	if reflect.DeepEqual(a, c) {
		t.Error("attempts 0 and 1 produced the same schedule")
	}
}

// TestScheduleGap pins the recovery guarantee: no two scheduled faults at
// one site land within minGap events of each other, so an injected
// failure's in-run recovery (reclaim-retry, reservation fallback) cannot
// immediately hit another injected failure.
func TestScheduleGap(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := Config{Seed: seed, BuddyFails: 32, BuddyFailSpan: 512}
		p := NewPlan(cfg, 0)
		at := p.buddy.at
		if len(at) != 32 {
			t.Fatalf("seed %d: scheduled %d faults, want 32", seed, len(at))
		}
		for i := 1; i < len(at); i++ {
			if at[i]-at[i-1] < minGap {
				t.Errorf("seed %d: events %d and %d closer than %d", seed, at[i-1], at[i], minGap)
			}
		}
	}
}

// TestScheduleClampsToSpan pins that an over-dense request degrades to
// what the span can hold instead of spinning forever.
func TestScheduleClampsToSpan(t *testing.T) {
	p := NewPlan(Config{Seed: 1, BuddyFails: 10_000, BuddyFailSpan: 64}, 0)
	at := p.buddy.at
	if len(at) == 0 || len(at) > (64+minGap-1)/minGap {
		t.Fatalf("scheduled %d faults in a span of 64", len(at))
	}
	if last := at[len(at)-1]; last > 64 {
		t.Errorf("event %d beyond span 64", last)
	}
	for i := 1; i < len(at); i++ {
		if at[i]-at[i-1] < minGap {
			t.Errorf("events %d and %d closer than %d", at[i-1], at[i], minGap)
		}
	}
}

// TestAttemptsBeyondFailAttemptsRunClean pins the recovery keying: the
// plan for attempt FailAttempts (and beyond) is inactive, so a retried
// scenario replays on a clean machine.
func TestAttemptsBeyondFailAttemptsRunClean(t *testing.T) {
	cfg := Config{Seed: 3, BuddyFails: 4, HostOOMs: 2, DirtyLogOverflowEvery: 1,
		MigrateDestOOMRound: 1, MigrateCancelRound: 1, FailAttempts: 2}
	for _, attempt := range []int{2, 3, 10} {
		p := NewPlan(cfg, attempt)
		if p.Active() {
			t.Errorf("attempt %d: plan active", attempt)
		}
		for i := 0; i < 100; i++ {
			if p.FailAlloc(0) || p.InjectHostOOM() != nil || p.ForceDirtyLogOverflow() ||
				p.DestOOM(1) != nil || p.CancelAtRound(1) != nil {
				t.Fatalf("attempt %d: inactive plan injected", attempt)
			}
		}
		if p.InjectedTotal() != 0 {
			t.Errorf("attempt %d: InjectedTotal = %d", attempt, p.InjectedTotal())
		}
	}
	if !NewPlan(cfg, 1).Active() {
		t.Error("attempt 1 should still be active with FailAttempts=2")
	}
}

// TestNilPlanIsInert pins typed-nil hook safety: a nil *Plan stored in a
// hook interface injects nothing.
func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.FailAlloc(0) || p.InjectHostOOM() != nil || p.ForceDirtyLogOverflow() ||
		p.DestOOM(1) != nil || p.CancelAtRound(1) != nil {
		t.Error("nil plan injected")
	}
	if p.Active() || p.Attempt() != 0 || p.InjectedTotal() != 0 || p.Injected(SiteBuddyAlloc) != 0 {
		t.Error("nil plan accessors not zero")
	}
}

// TestErrorTaxonomy pins that every injected error — bare or wrapped —
// is errors.Is-reachable from ErrInjected and classified by IsTransient.
func TestErrorTaxonomy(t *testing.T) {
	cfg := Config{Seed: 5, HostOOMs: 1, HostOOMSpan: 1, MigrateDestOOMRound: 2, MigrateCancelRound: 3}
	p := NewPlan(cfg, 0)
	var errs []error
	if err := p.InjectHostOOM(); err != nil {
		errs = append(errs, err)
	}
	if err := p.DestOOM(2); err != nil {
		errs = append(errs, err)
	}
	if err := p.CancelAtRound(3); err != nil {
		errs = append(errs, err)
	}
	if len(errs) != 3 {
		t.Fatalf("injected %d errors, want 3", len(errs))
	}
	for _, err := range errs {
		wrapped := fmt.Errorf("outer: %w", err)
		if !errors.Is(wrapped, ErrInjected) || !IsInjected(wrapped) {
			t.Errorf("%v not reachable from ErrInjected", wrapped)
		}
		if !IsTransient(wrapped) {
			t.Errorf("%v not classified transient", wrapped)
		}
		var fe *Error
		if !errors.As(wrapped, &fe) {
			t.Errorf("%v not errors.As-matchable", wrapped)
		}
	}
	if IsTransient(errors.New("organic failure")) || IsInjected(errors.New("organic failure")) {
		t.Error("organic error classified as injected")
	}
}

// TestDirtyLogOverflowCadence pins the every-Nth firing rule.
func TestDirtyLogOverflowCadence(t *testing.T) {
	p := NewPlan(Config{Seed: 1, DirtyLogOverflowEvery: 3}, 0)
	var fired []int
	for i := 1; i <= 9; i++ {
		if p.ForceDirtyLogOverflow() {
			fired = append(fired, i)
		}
	}
	if !reflect.DeepEqual(fired, []int{3, 6, 9}) {
		t.Errorf("fired at %v, want [3 6 9]", fired)
	}
	if p.Injected(SiteDirtyLog) != 3 {
		t.Errorf("SiteDirtyLog count = %d, want 3", p.Injected(SiteDirtyLog))
	}
}
