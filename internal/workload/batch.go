package workload

// This file defines the batched access pipeline of the workload layer.
//
// The machine's hot loop used to pull accesses one at a time through the
// Program interface: one dynamic dispatch, one scheduler-bookkeeping pass
// and one set of counter read-modify-writes per simulated access. With the
// paper's evaluation needing millions of accesses per scenario, that
// per-item tax dominates wall-clock. StepBatch amortizes it: a program
// fills a caller-provided buffer with as many upcoming accesses as it can
// produce without changing observable behaviour, and the machine executes
// the whole batch with its per-access state hoisted out of the loop.
//
// Determinism contract (DESIGN.md §7). A batched run must be bit-identical
// to the legacy per-access run for every output the simulator reports. The
// machine executes accesses strictly in emitted order, so the only way a
// batch could diverge is by reordering side effects. Three rules prevent
// that:
//
//  1. Env calls only before the first access of a batch. Mmap/Free mutate
//     the guest kernel (buddy allocator, page tables, TLB shootdowns);
//     in the legacy loop such a call happens after every earlier access
//     has fully executed (including its page faults). A program must
//     therefore end a batch when its next step would call env, so the env
//     call lands at the start of the following batch — after the machine
//     has executed everything emitted before it, exactly as before.
//  2. A batch ends when InitDone flips during generation. The machine
//     snapshots a task's counters at the first access after which
//     InitDone() reports true (the §3.3 steady-state boundary). It checks
//     once per batch, so the access that flips the flag must be the last
//     one in its batch.
//  3. (n=0, done=false) is a stall, not a valid return. A program that
//     cannot emit at least one access must report done.
type BatchProgram interface {
	Program
	// StepBatch fills buf with the next accesses of the program's stream
	// and returns how many were produced. done=true means the program
	// finished; the n accesses before it are still valid (and executed).
	// len(buf) is always >= 1; the machine never passes an empty buffer.
	StepBatch(env Env, buf []Access) (n int, done bool)
}

// BatchAdapter lifts a legacy single-step Program into the BatchProgram
// interface, so third-party Program implementations keep working unchanged.
//
// The adapter always produces batches of exactly one access. It cannot do
// better: a black-box Step may call env at any point, and buffering even
// two accesses would execute the first one after an env mutation that the
// legacy loop ordered strictly before it — changing buddy-allocator state
// and, through physical placement, every downstream number. Size-one
// batches make the adapter provably equivalent to the legacy loop; native
// StepBatch implementations (all built-in programs have one) get the
// throughput win.
type BatchAdapter struct {
	P Program
}

// Name returns the wrapped program's name.
func (b BatchAdapter) Name() string { return b.P.Name() }

// FootprintBytes returns the wrapped program's declared footprint.
func (b BatchAdapter) FootprintBytes() uint64 { return b.P.FootprintBytes() }

// Setup forwards to the wrapped program.
func (b BatchAdapter) Setup(env Env) error { return b.P.Setup(env) }

// Step forwards to the wrapped program.
func (b BatchAdapter) Step(env Env) (Access, bool) { return b.P.Step(env) }

// InitDone forwards to the wrapped program.
func (b BatchAdapter) InitDone() bool { return b.P.InitDone() }

// StepBatch emits a single-access batch via the wrapped Step.
func (b BatchAdapter) StepBatch(env Env, buf []Access) (int, bool) {
	if len(buf) == 0 {
		return 0, false
	}
	acc, done := b.P.Step(env)
	if done {
		return 0, true
	}
	buf[0] = acc
	return 1, false
}

// AsBatch returns p itself when it already implements BatchProgram, and a
// BatchAdapter around it otherwise. The machine layer calls this once per
// task at AddTask time.
func AsBatch(p Program) BatchProgram {
	if bp, ok := p.(BatchProgram); ok {
		return bp
	}
	return BatchAdapter{P: p}
}
