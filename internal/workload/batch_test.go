package workload

import (
	"testing"

	"ptemagnet/internal/arch"
)

// allPrograms instantiates every built-in program with the given seed.
func allPrograms(seed int64) []Program {
	g := GraphConfig{DatasetBytes: 2 << 20, Accesses: 3000, Seed: seed}
	s := SpecConfig{FootprintBytes: 2 << 20, Accesses: 3000, Seed: seed}
	c := CorunnerConfig{FootprintBytes: 1 << 20, Seed: seed}
	return []Program{
		NewPagerank(g), NewCC(g), NewBFS(g), NewNibble(g),
		NewMCF(s), NewGCC(s), NewOmnetpp(s), NewXZ(s),
		NewObjdet(c), NewStressNG(c), NewChameleon(c), NewPyaes(c),
		NewJSONSerdes(c), NewRNNServing(c),
		NewAllocMicro(1 << 20), NewSparse(1 << 20),
	}
}

// streamEvent is one entry of a program's observable behaviour: either an
// emitted access or an env call. Comparing full event streams between the
// Step and StepBatch drivers proves the batch contract — env calls happen at
// the same position relative to the generated accesses.
type streamEvent struct {
	kind  string // "access", "mmap", "free", "initdone"
	acc   Access
	bytes uint64
}

// loggingEnv wraps fakeEnv and appends env calls to a shared event log.
type loggingEnv struct {
	inner *fakeEnv
	log   *[]streamEvent
}

func (e loggingEnv) Mmap(bytes uint64) (arch.VirtAddr, error) {
	*e.log = append(*e.log, streamEvent{kind: "mmap", bytes: bytes})
	return e.inner.Mmap(bytes)
}

func (e loggingEnv) Free(va arch.VirtAddr, bytes uint64) error {
	*e.log = append(*e.log, streamEvent{kind: "free", bytes: bytes})
	return e.inner.Free(va, bytes)
}

const streamCap = 200_000

// stepStream drives p one access at a time, recording accesses, env calls
// and the position at which InitDone flips. Co-runner programs never
// finish, so the stream is capped; finished reports whether p returned done
// before the cap.
func stepStream(t *testing.T, p Program) (log []streamEvent, finished bool) {
	t.Helper()
	env := loggingEnv{inner: newFakeEnv(), log: &log}
	if err := p.Setup(env); err != nil {
		t.Fatalf("%s: setup: %v", p.Name(), err)
	}
	init := p.InitDone()
	for len(log) < streamCap {
		acc, done := p.Step(env)
		if done {
			return log, true
		}
		log = append(log, streamEvent{kind: "access", acc: acc})
		if !init && p.InitDone() {
			init = true
			log = append(log, streamEvent{kind: "initdone"})
		}
	}
	return log, false
}

// batchStream drives p through StepBatch with the given buffer size,
// recording the same observable events as stepStream.
func batchStream(t *testing.T, p Program, bufSize int) (log []streamEvent, finished bool) {
	t.Helper()
	b := AsBatch(p)
	env := loggingEnv{inner: newFakeEnv(), log: &log}
	if err := b.Setup(env); err != nil {
		t.Fatalf("%s: setup: %v", p.Name(), err)
	}
	init := b.InitDone()
	buf := make([]Access, bufSize)
	for len(log) < streamCap {
		n, done := b.StepBatch(env, buf)
		for _, acc := range buf[:n] {
			log = append(log, streamEvent{kind: "access", acc: acc})
		}
		if !init && b.InitDone() {
			init = true
			log = append(log, streamEvent{kind: "initdone"})
		}
		if done {
			return log, true
		}
		if n == 0 {
			t.Fatalf("%s: empty batch without done", p.Name())
		}
	}
	return log, false
}

// TestStepBatchMatchesStep is the batch contract's identity proof at the
// workload layer: for every built-in program and several buffer sizes, the
// interleaved stream of accesses, env calls and the InitDone flip position
// is identical between per-access stepping and batched stepping.
func TestStepBatchMatchesStep(t *testing.T) {
	for i := range allPrograms(3) {
		want, wantFin := stepStream(t, allPrograms(3)[i])
		name := allPrograms(3)[i].Name()
		for _, bufSize := range []int{1, 3, 64, 256} {
			got, gotFin := batchStream(t, allPrograms(3)[i], bufSize)
			if wantFin != gotFin {
				t.Fatalf("%s buf=%d: finished=%v, want %v", name, bufSize, gotFin, wantFin)
			}
			if wantFin && len(got) != len(want) {
				t.Fatalf("%s buf=%d: %d events, want %d", name, bufSize, len(got), len(want))
			}
			// Capped streams may end at different batch boundaries; the
			// common prefix must still be identical.
			n := len(want)
			if len(got) < n {
				n = len(got)
			}
			for j := 0; j < n; j++ {
				if got[j] != want[j] {
					t.Fatalf("%s buf=%d: event %d = %+v, want %+v", name, bufSize, j, got[j], want[j])
				}
			}
		}
	}
}

// TestAllProgramsImplementBatch pins that every built-in program provides a
// native StepBatch (AsBatch must not have to fall back to the adapter).
func TestAllProgramsImplementBatch(t *testing.T) {
	for _, p := range allPrograms(1) {
		if _, ok := p.(BatchProgram); !ok {
			t.Errorf("%s does not implement BatchProgram natively", p.Name())
		}
	}
}

// TestAdapterEmitsSingleAccessBatches pins the adapter's safety property:
// an opaque Program may call env mid-stream, so the adapter must never
// buffer more than one access per batch.
func TestAdapterEmitsSingleAccessBatches(t *testing.T) {
	var inner Program = NewPagerank(GraphConfig{DatasetBytes: 1 << 20, Accesses: 100, Seed: 1})
	b := AsBatch(legacyOnly{inner})
	if _, ok := b.(BatchAdapter); !ok {
		t.Fatalf("AsBatch of a plain Program = %T, want BatchAdapter", b)
	}
	env := newFakeEnv()
	if err := b.Setup(env); err != nil {
		t.Fatal(err)
	}
	buf := make([]Access, 16)
	for i := 0; i < 1000; i++ {
		n, done := b.StepBatch(env, buf)
		if done {
			return
		}
		if n != 1 {
			t.Fatalf("adapter batch size = %d, want 1", n)
		}
	}
}

// legacyOnly hides a Program's StepBatch so AsBatch must use the adapter.
type legacyOnly struct{ p Program }

func (l legacyOnly) Name() string                { return l.p.Name() }
func (l legacyOnly) FootprintBytes() uint64      { return l.p.FootprintBytes() }
func (l legacyOnly) Setup(env Env) error         { return l.p.Setup(env) }
func (l legacyOnly) Step(env Env) (Access, bool) { return l.p.Step(env) }
func (l legacyOnly) InitDone() bool              { return l.p.InitDone() }

// benchDrain runs p to completion through StepBatch with the given buffer,
// returning the access count.
func benchDrain(b *testing.B, p BatchProgram, bufSize int) int {
	env := newFakeEnv()
	if err := p.Setup(env); err != nil {
		b.Fatal(err)
	}
	buf := make([]Access, bufSize)
	total := 0
	for {
		n, done := p.StepBatch(env, buf)
		total += n
		if done {
			return total
		}
		if n == 0 {
			b.Fatal("empty batch without done")
		}
	}
}

func benchGraph() GraphConfig {
	return GraphConfig{DatasetBytes: 4 << 20, Accesses: 100_000, Seed: 9}
}

// BenchmarkPipelineStepNative measures the native batched generator.
func BenchmarkPipelineStepNative(b *testing.B) {
	total := 0
	for i := 0; i < b.N; i++ {
		total += benchDrain(b, AsBatch(NewPagerank(benchGraph())), 256)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkPipelineStepAdapter measures the same stream through the
// one-access-per-batch legacy adapter.
func BenchmarkPipelineStepAdapter(b *testing.B) {
	total := 0
	for i := 0; i < b.N; i++ {
		total += benchDrain(b, AsBatch(legacyOnly{NewPagerank(benchGraph())}), 256)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "accesses/s")
}
