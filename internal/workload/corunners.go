package workload

import (
	"math/rand"

	"ptemagnet/internal/arch"
)

// CorunnerConfig sizes a co-runner.
type CorunnerConfig struct {
	// FootprintBytes is the live footprint.
	FootprintBytes uint64
	// Seed drives randomness.
	Seed int64
}

func (c *CorunnerConfig) setDefaults(footprint uint64) {
	if c.FootprintBytes == 0 {
		c.FootprintBytes = footprint
	}
}

// Co-runners run "forever": their Step never reports done. The machine
// layer stops them when the primary benchmarks finish (or at the §3.3 init
// boundary). They exist to stress the guest allocator with interleaved page
// faults; their own performance is not measured.

// objdet models the MLPerf SSD-MobileNet object-detection server — the
// co-runner with the highest page-fault rate in the paper's Table 3. Per
// inference it allocates a fresh activation arena, touches it page by page
// (faults!), reads the resident model weights, then frees the arena.
type objdet struct {
	cfg     CorunnerConfig
	rng     *rand.Rand
	weights region
	arena   region
	wInit   touchSpan
	ready   bool
	phase   touchSpan
	inArena bool
	reads   int
}

// NewObjdet builds the objdet stand-in.
func NewObjdet(cfg CorunnerConfig) Program {
	cfg.setDefaults(32 << 20)
	return &objdet{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (o *objdet) Name() string           { return "objdet" }
func (o *objdet) FootprintBytes() uint64 { return o.cfg.FootprintBytes }
func (o *objdet) InitDone() bool         { return o.ready }

func (o *objdet) Setup(env Env) error {
	var err error
	if o.weights, err = mmapRegion(env, o.cfg.FootprintBytes/2); err != nil {
		return err
	}
	o.wInit = touchSpan{base: o.weights.base, pages: o.weights.pageCount(), write: true}
	return nil
}

func (o *objdet) Step(env Env) (Access, bool) {
	if !o.ready {
		acc, done := o.wInit.step()
		if !done {
			return acc, false
		}
		o.ready = true
	}
	if o.inArena {
		acc, done := o.phase.step()
		if !done {
			return acc, false
		}
		// Inference complete: free the activations (physical churn) and
		// read some weights before the next round.
		if err := env.Free(o.arena.base, o.arena.bytes); err != nil {
			return Access{}, true
		}
		o.inArena = false
		o.reads = 64
	}
	if o.reads > 0 {
		o.reads--
		page := o.rng.Uint64() % o.weights.pageCount()
		return Access{VA: o.weights.pageVA(page)}, false
	}
	// Start the next inference: a fresh activation arena. Reuse the
	// region's virtual span if already mmapped (malloc reusing freed
	// arena), but its pages were freed so every touch faults.
	if o.arena.bytes == 0 {
		arena, err := mmapRegion(env, o.cfg.FootprintBytes/2)
		if err != nil {
			return Access{}, true
		}
		o.arena = arena
	}
	o.phase = touchSpan{base: o.arena.base, pages: o.arena.pageCount(), write: true}
	o.inArena = true
	return o.Step(env)
}

// nextNeedsEnv predicts whether the next Step calls env: at the end of an
// inference (the arena Free) or before the very first inference (the arena
// mmap).
func (o *objdet) nextNeedsEnv() bool {
	if o.inArena {
		return o.phase.next >= o.phase.pages
	}
	return o.reads == 0 && o.arena.bytes == 0
}

// StepBatch fills buf natively (see BatchProgram). Batches break before
// env-calling steps (rule 1) and at the InitDone flip (rule 2).
func (o *objdet) StepBatch(env Env, buf []Access) (int, bool) {
	if !o.ready {
		if n := o.wInit.fill(buf); n > 0 {
			return n, false
		}
		// Weights are touched: the next step flips InitDone and mmaps the
		// first arena — env at batch start, and the flip ends the batch.
		acc, done := o.Step(env)
		if done {
			return 0, true
		}
		buf[0] = acc
		return 1, false
	}
	n := 0
	for n < len(buf) {
		if n > 0 && o.nextNeedsEnv() {
			break
		}
		acc, done := o.Step(env)
		if done {
			return n, true
		}
		buf[n] = acc
		n++
	}
	return n, false
}

// stressng models `stress-ng` with N memory hogs that continuously allocate
// and free physical memory (the §3.3 fragmentation co-runner). Each worker
// cycles: touch every page of its slab (faulting it in), then free it.
// Workers are staggered so allocations from different workers — and from
// whatever else runs in the VM — interleave in the buddy allocator.
type stressng struct {
	cfg     CorunnerConfig
	workers int
	slabs   []region
	phase   []touchSpan
	active  int
	ready   bool
	setup   int
}

// NewStressNG builds the stress-ng stand-in with the paper's 12 workers.
func NewStressNG(cfg CorunnerConfig) Program {
	cfg.setDefaults(24 << 20)
	return &stressng{cfg: cfg, workers: 12}
}

func (s *stressng) Name() string           { return "stress-ng" }
func (s *stressng) FootprintBytes() uint64 { return s.cfg.FootprintBytes }
func (s *stressng) InitDone() bool         { return s.ready }

func (s *stressng) Setup(env Env) error {
	slabBytes := arch.AlignUp(s.cfg.FootprintBytes/uint64(s.workers), arch.PageSize)
	for i := 0; i < s.workers; i++ {
		r, err := mmapRegion(env, slabBytes)
		if err != nil {
			return err
		}
		s.slabs = append(s.slabs, r)
		// Stagger the workers across their slabs.
		s.phase = append(s.phase, touchSpan{
			base:  r.base,
			pages: r.pageCount(),
			next:  uint64(i) * r.pageCount() / uint64(s.workers),
			write: true,
		})
	}
	return nil
}

func (s *stressng) Step(env Env) (Access, bool) {
	s.ready = true
	// Round-robin across workers, one access each — maximal interleaving.
	w := s.active
	s.active = (s.active + 1) % s.workers
	acc, done := s.phase[w].step()
	if !done {
		return acc, false
	}
	// Worker finished its slab: free it all and start over.
	if err := env.Free(s.slabs[w].base, s.slabs[w].bytes); err != nil {
		return Access{}, true
	}
	s.phase[w] = touchSpan{base: s.slabs[w].base, pages: s.slabs[w].pageCount(), write: true}
	return s.phase[w].step()
}

// StepBatch fills buf natively (see BatchProgram). A batch breaks before
// any step whose round-robin worker has finished its slab (that step frees
// it — rule 1) and after the very first step (InitDone flips — rule 2).
func (s *stressng) StepBatch(env Env, buf []Access) (int, bool) {
	n := 0
	for n < len(buf) {
		if n > 0 && s.phase[s.active].next >= s.phase[s.active].pages {
			break
		}
		init := !s.ready
		acc, done := s.Step(env)
		if done {
			return n, true
		}
		buf[n] = acc
		n++
		if init {
			break
		}
	}
	return n, false
}

// smallFunction models the light serverless co-runners of Table 3
// (chameleon HTML rendering, pyaes encryption, json_serdes, rnn_serving):
// a small resident footprint with mostly-local accesses and occasional
// short-lived scratch allocations.
type smallFunction struct {
	name  string
	cfg   CorunnerConfig
	rng   *rand.Rand
	heap  region
	init  touchSpan
	ready bool
	step  uint64
	churn float64 // probability per step of a scratch alloc/free burst
	burst touchSpan
	inB   bool
	scr   region
}

func newSmallFunction(name string, footprint uint64, churn float64, cfg CorunnerConfig) Program {
	cfg.setDefaults(footprint)
	return &smallFunction{name: name, cfg: cfg, churn: churn,
		rng: rand.New(rand.NewSource(cfg.Seed))}
}

// NewChameleon builds the chameleon (HTML table rendering) stand-in.
func NewChameleon(cfg CorunnerConfig) Program {
	return newSmallFunction("chameleon", 4<<20, 0.002, cfg)
}

// NewPyaes builds the pyaes (AES block cipher) stand-in.
func NewPyaes(cfg CorunnerConfig) Program {
	return newSmallFunction("pyaes", 2<<20, 0.0005, cfg)
}

// NewJSONSerdes builds the JSON (de)serialization stand-in.
func NewJSONSerdes(cfg CorunnerConfig) Program {
	return newSmallFunction("json_serdes", 6<<20, 0.004, cfg)
}

// NewRNNServing builds the RNN name-generation stand-in.
func NewRNNServing(cfg CorunnerConfig) Program {
	return newSmallFunction("rnn_serving", 8<<20, 0.001, cfg)
}

func (f *smallFunction) Name() string           { return f.name }
func (f *smallFunction) FootprintBytes() uint64 { return f.cfg.FootprintBytes }
func (f *smallFunction) InitDone() bool         { return f.ready }

func (f *smallFunction) Setup(env Env) error {
	var err error
	if f.heap, err = mmapRegion(env, f.cfg.FootprintBytes); err != nil {
		return err
	}
	f.init = touchSpan{base: f.heap.base, pages: f.heap.pageCount(), write: true}
	return nil
}

func (f *smallFunction) Step(env Env) (Access, bool) {
	if !f.ready {
		acc, done := f.init.step()
		if !done {
			return acc, false
		}
		f.ready = true
	}
	if f.inB {
		acc, done := f.burst.step()
		if !done {
			return acc, false
		}
		if err := env.Free(f.scr.base, f.scr.bytes); err != nil {
			return Access{}, true
		}
		f.inB = false
	}
	f.step++
	if f.rng.Float64() < f.churn {
		// A request arrives: allocate scratch, touch it, free it.
		if f.scr.bytes == 0 {
			scr, err := mmapRegion(env, 256<<10)
			if err != nil {
				return Access{}, true
			}
			f.scr = scr
		}
		f.burst = touchSpan{base: f.scr.base, pages: f.scr.pageCount(), write: true}
		f.inB = true
		return f.burst.step()
	}
	// Mostly-local heap accesses.
	page := f.step / 8 % f.heap.pageCount()
	if f.rng.Float64() < 0.2 {
		page = f.rng.Uint64() % f.heap.pageCount()
	}
	return Access{VA: f.heap.pageVA(page) + arch.VirtAddr(f.rng.Intn(arch.WordsPerPage)*arch.WordBytes)}, false
}

// nextNeedsEnv predicts whether the next Step may call env: at a burst end
// (the scratch Free), or — while the scratch region has never been
// allocated — on any step, because the rng churn draw may trigger the
// first mmap and the draw cannot be peeked without consuming it.
func (f *smallFunction) nextNeedsEnv() bool {
	if f.inB {
		return f.burst.next >= f.burst.pages
	}
	return f.scr.bytes == 0
}

// StepBatch fills buf natively (see BatchProgram).
func (f *smallFunction) StepBatch(env Env, buf []Access) (int, bool) {
	if !f.ready {
		if n := f.init.fill(buf); n > 0 {
			return n, false
		}
		// The flip step may mmap the first scratch burst (env at batch
		// start) and ends the batch either way (rule 2).
		acc, done := f.Step(env)
		if done {
			return 0, true
		}
		buf[0] = acc
		return 1, false
	}
	n := 0
	for n < len(buf) {
		if n > 0 && f.nextNeedsEnv() {
			break
		}
		acc, done := f.Step(env)
		if done {
			return n, true
		}
		buf[n] = acc
		n++
	}
	return n, false
}

// ---------------------------------------------------------------------------
// Microbenchmarks
// ---------------------------------------------------------------------------

// allocMicro is the §6.4 allocation-latency microbenchmark: allocate one
// huge array and access each of its pages exactly once, so execution time
// is dominated by the physical-memory allocator.
type allocMicro struct {
	bytes uint64
	arena region
	scan  touchSpan
	begun bool
}

// NewAllocMicro builds the microbenchmark over the given array size (the
// paper uses 60GB on a 64GB VM; pass ~90% of guest memory).
func NewAllocMicro(bytes uint64) Program {
	return &allocMicro{bytes: bytes}
}

func (a *allocMicro) Name() string           { return "allocmicro" }
func (a *allocMicro) FootprintBytes() uint64 { return a.bytes }
func (a *allocMicro) InitDone() bool         { return a.begun && a.scan.next >= a.scan.pages }

func (a *allocMicro) Setup(env Env) error {
	arena, err := mmapRegion(env, a.bytes)
	if err != nil {
		return err
	}
	a.arena = arena
	a.scan = touchSpan{base: arena.base, pages: arena.pageCount(), write: true}
	a.begun = true
	return nil
}

func (a *allocMicro) Step(env Env) (Access, bool) { return a.scan.step() }

// StepBatch fills buf natively (see BatchProgram). InitDone flips on the
// final scan access, and fill stops exactly there, so the flip access ends
// its batch (rule 2) with no extra handling.
func (a *allocMicro) StepBatch(env Env, buf []Access) (int, bool) {
	n := a.scan.fill(buf)
	if n == 0 {
		return 0, true
	}
	return n, false
}

// sparse is the §6.2 adversary: it touches only the first page of every
// reservation group, so 7 of 8 reserved pages stay unused — the worst case
// for PTEMagnet's memory overhead.
type sparse struct {
	bytes uint64
	arena region
	next  uint64
	laps  int
}

// NewSparse builds the sparse adversary over the given virtual span.
func NewSparse(bytes uint64) Program {
	return &sparse{bytes: bytes}
}

func (s *sparse) Name() string           { return "sparse" }
func (s *sparse) FootprintBytes() uint64 { return s.bytes }
func (s *sparse) InitDone() bool         { return s.laps > 0 }

func (s *sparse) Setup(env Env) error {
	arena, err := mmapRegion(env, s.bytes)
	if err != nil {
		return err
	}
	s.arena = arena
	return nil
}

func (s *sparse) Step(env Env) (Access, bool) {
	groups := s.arena.bytes / arch.GroupBytes
	if groups == 0 {
		return Access{}, true
	}
	if s.next >= groups {
		s.next = 0
		s.laps++
		if s.laps >= 3 {
			return Access{}, true
		}
	}
	va := s.arena.base + arch.VirtAddr(s.next*arch.GroupBytes)
	s.next++
	return Access{VA: va, Write: true}, false
}

// StepBatch fills buf natively (see BatchProgram). The batch ends when the
// first lap completes, where InitDone flips (rule 2).
func (s *sparse) StepBatch(env Env, buf []Access) (int, bool) {
	n := 0
	for n < len(buf) {
		init := s.laps == 0
		acc, done := s.Step(env)
		if done {
			return n, true
		}
		buf[n] = acc
		n++
		if init && s.laps > 0 {
			break
		}
	}
	return n, false
}
