package workload

import (
	"testing"

	"ptemagnet/internal/arch"
)

// fakeEnv is a trivial Env giving out bump-allocated regions.
type fakeEnv struct {
	next  arch.VirtAddr
	mmaps int
	frees int
	freed uint64
	spans []struct {
		base  arch.VirtAddr
		bytes uint64
	}
}

func newFakeEnv() *fakeEnv { return &fakeEnv{next: 0x7f0000000000} }

func (e *fakeEnv) Mmap(bytes uint64) (arch.VirtAddr, error) {
	base := e.next
	span := arch.VirtAddr(arch.AlignUp(bytes, arch.GroupBytes)) + arch.GroupBytes
	e.next += span
	e.mmaps++
	e.spans = append(e.spans, struct {
		base  arch.VirtAddr
		bytes uint64
	}{base, bytes})
	return base, nil
}

func (e *fakeEnv) Free(va arch.VirtAddr, bytes uint64) error {
	e.frees++
	e.freed += bytes
	return nil
}

func (e *fakeEnv) contains(va arch.VirtAddr) bool {
	for _, s := range e.spans {
		if va >= s.base && va < s.base+arch.VirtAddr(s.bytes) {
			return true
		}
	}
	return false
}

// drive runs a program for up to n steps, validating every access lands in
// an allocated region, and returns the number of steps taken.
func drive(t *testing.T, p Program, n int) int {
	t.Helper()
	env := newFakeEnv()
	if err := p.Setup(env); err != nil {
		t.Fatalf("%s: setup: %v", p.Name(), err)
	}
	for i := 0; i < n; i++ {
		acc, done := p.Step(env)
		if done {
			return i
		}
		if !env.contains(acc.VA) {
			t.Fatalf("%s: step %d accessed %#x outside any region", p.Name(), i, uint64(acc.VA))
		}
	}
	return n
}

func benchmarks(seed int64) []Program {
	g := GraphConfig{DatasetBytes: 4 << 20, Accesses: 5000, Seed: seed}
	s := SpecConfig{FootprintBytes: 4 << 20, Accesses: 5000, Seed: seed}
	return []Program{
		NewPagerank(g), NewCC(g), NewBFS(g), NewNibble(g),
		NewMCF(s), NewGCC(s), NewOmnetpp(s), NewXZ(s),
	}
}

func TestBenchmarksProduceValidBoundedStreams(t *testing.T) {
	for _, p := range benchmarks(1) {
		steps := drive(t, p, 100_000)
		if steps >= 100_000 {
			t.Errorf("%s did not terminate in 100k steps", p.Name())
		}
		if steps < 5000 {
			t.Errorf("%s terminated after only %d steps", p.Name(), steps)
		}
		if !p.InitDone() {
			t.Errorf("%s never reported init done", p.Name())
		}
		if p.FootprintBytes() == 0 {
			t.Errorf("%s reports zero footprint", p.Name())
		}
	}
}

func TestBenchmarksAreDeterministic(t *testing.T) {
	for i := range benchmarks(7) {
		a := benchmarks(7)[i]
		b := benchmarks(7)[i]
		envA, envB := newFakeEnv(), newFakeEnv()
		if err := a.Setup(envA); err != nil {
			t.Fatal(err)
		}
		if err := b.Setup(envB); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 20_000; s++ {
			accA, doneA := a.Step(envA)
			accB, doneB := b.Step(envB)
			if accA != accB || doneA != doneB {
				t.Fatalf("%s diverges at step %d: %+v vs %+v", a.Name(), s, accA, accB)
			}
			if doneA {
				break
			}
		}
	}
}

func TestGraphInitTouchesWholeFootprint(t *testing.T) {
	cfg := GraphConfig{DatasetBytes: 2 << 20, Accesses: 100, Seed: 1}
	p := NewPagerank(cfg)
	env := newFakeEnv()
	if err := p.Setup(env); err != nil {
		t.Fatal(err)
	}
	pages := map[arch.VirtAddr]bool{}
	for !p.InitDone() {
		acc, done := p.Step(env)
		if done {
			t.Fatal("finished before init done")
		}
		pages[acc.VA.PageBase()] = true
	}
	// The four regions sum to 12/12+6/12... = total; count mmapped pages.
	var want uint64
	for _, s := range env.spans {
		want += arch.BytesToPages(s.bytes)
	}
	if uint64(len(pages)) < want {
		t.Errorf("init touched %d pages, regions hold %d", len(pages), want)
	}
}

func TestCorunnersRunForever(t *testing.T) {
	cfg := CorunnerConfig{FootprintBytes: 2 << 20, Seed: 3}
	progs := []Program{
		NewObjdet(cfg), NewStressNG(cfg), NewChameleon(cfg),
		NewPyaes(cfg), NewJSONSerdes(cfg), NewRNNServing(cfg),
	}
	for _, p := range progs {
		env := newFakeEnv()
		if err := p.Setup(env); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for i := 0; i < 50_000; i++ {
			acc, done := p.Step(env)
			if done {
				t.Fatalf("%s finished at step %d; co-runners must run forever", p.Name(), i)
			}
			if !env.contains(acc.VA) {
				t.Fatalf("%s accessed %#x outside regions", p.Name(), uint64(acc.VA))
			}
		}
	}
}

func TestObjdetChurnsMemory(t *testing.T) {
	p := NewObjdet(CorunnerConfig{FootprintBytes: 2 << 20, Seed: 1})
	env := newFakeEnv()
	if err := p.Setup(env); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30_000; i++ {
		if _, done := p.Step(env); done {
			t.Fatal("objdet finished")
		}
	}
	if env.frees < 2 {
		t.Errorf("objdet freed %d times in 30k steps; expected continuous arena churn", env.frees)
	}
}

func TestStressNGChurnsHard(t *testing.T) {
	p := NewStressNG(CorunnerConfig{FootprintBytes: 1 << 20, Seed: 1})
	env := newFakeEnv()
	if err := p.Setup(env); err != nil {
		t.Fatal(err)
	}
	if env.mmaps != 12 {
		t.Errorf("stress-ng created %d slabs, want 12 workers", env.mmaps)
	}
	for i := 0; i < 20_000; i++ {
		p.Step(env)
	}
	if env.frees < 12 {
		t.Errorf("stress-ng freed %d slabs in 20k steps", env.frees)
	}
}

func TestAllocMicroTouchesEveryPageOnce(t *testing.T) {
	p := NewAllocMicro(1 << 20)
	env := newFakeEnv()
	if err := p.Setup(env); err != nil {
		t.Fatal(err)
	}
	seen := map[arch.VirtAddr]int{}
	for {
		acc, done := p.Step(env)
		if done {
			break
		}
		seen[acc.VA.PageBase()]++
	}
	if len(seen) != 256 {
		t.Errorf("touched %d pages, want 256", len(seen))
	}
	for va, n := range seen {
		if n != 1 {
			t.Errorf("page %#x touched %d times", uint64(va), n)
		}
	}
	if !p.InitDone() {
		t.Error("allocmicro init not done at finish")
	}
}

func TestSparseTouchesEveryEighthPage(t *testing.T) {
	p := NewSparse(1 << 20) // 32 groups
	env := newFakeEnv()
	if err := p.Setup(env); err != nil {
		t.Fatal(err)
	}
	pages := map[arch.VirtAddr]bool{}
	for {
		acc, done := p.Step(env)
		if done {
			break
		}
		if acc.VA.GroupIndex() != 0 {
			t.Fatalf("sparse touched page %d of a group", acc.VA.GroupIndex())
		}
		pages[acc.VA.PageBase()] = true
	}
	if len(pages) != 32 {
		t.Errorf("sparse touched %d distinct pages, want 32 (one per group)", len(pages))
	}
}

func TestXZHasGroupLocality(t *testing.T) {
	// Consecutive accesses frequently land in the same or adjacent pages
	// (match copying) — the behaviour that earns xz the paper's best
	// speedup.
	p := NewXZ(SpecConfig{FootprintBytes: 4 << 20, Accesses: 20_000, Seed: 2})
	env := newFakeEnv()
	if err := p.Setup(env); err != nil {
		t.Fatal(err)
	}
	// Skip init.
	for !p.InitDone() {
		p.Step(env)
	}
	var prev arch.VirtAddr
	near, total := 0, 0
	for i := 0; i < 10_000; i++ {
		acc, done := p.Step(env)
		if done {
			break
		}
		if prev != 0 {
			d := int64(acc.VA.PageNumber()) - int64(prev.PageNumber())
			if d >= -1 && d <= 1 {
				near++
			}
			total++
		}
		prev = acc.VA
	}
	if near < total/3 {
		t.Errorf("xz: only %d/%d consecutive accesses are page-adjacent", near, total)
	}
}

func TestNamesAndFootprints(t *testing.T) {
	want := map[string]Program{
		"pagerank":    NewPagerank(GraphConfig{}),
		"cc":          NewCC(GraphConfig{}),
		"bfs":         NewBFS(GraphConfig{}),
		"nibble":      NewNibble(GraphConfig{}),
		"mcf":         NewMCF(SpecConfig{}),
		"gcc":         NewGCC(SpecConfig{}),
		"omnetpp":     NewOmnetpp(SpecConfig{}),
		"xz":          NewXZ(SpecConfig{}),
		"objdet":      NewObjdet(CorunnerConfig{}),
		"stress-ng":   NewStressNG(CorunnerConfig{}),
		"chameleon":   NewChameleon(CorunnerConfig{}),
		"pyaes":       NewPyaes(CorunnerConfig{}),
		"json_serdes": NewJSONSerdes(CorunnerConfig{}),
		"rnn_serving": NewRNNServing(CorunnerConfig{}),
		"allocmicro":  NewAllocMicro(1 << 20),
		"sparse":      NewSparse(1 << 20),
	}
	for name, p := range want {
		if p.Name() != name {
			t.Errorf("Name() = %q, want %q", p.Name(), name)
		}
		if p.FootprintBytes() == 0 {
			t.Errorf("%s: zero default footprint", name)
		}
		if p.InitDone() {
			t.Errorf("%s: init done before setup", name)
		}
	}
}

func TestDefaultConfigsApplied(t *testing.T) {
	// Zero-value configs pick up defaults (the paper-scale sizes).
	if NewPagerank(GraphConfig{}).FootprintBytes() != 48<<20 {
		t.Error("graph default footprint wrong")
	}
	if NewMCF(SpecConfig{}).FootprintBytes() != 40<<20 {
		t.Error("mcf default footprint wrong")
	}
	if NewObjdet(CorunnerConfig{}).FootprintBytes() != 32<<20 {
		t.Error("objdet default footprint wrong")
	}
}
