// Package workload provides synthetic memory-access programs standing in
// for the paper's benchmarks (GPOP graph kernels, SPEC'17) and co-runners
// (MLPerf objdet, stress-ng, serverless functions).
//
// The real benchmarks cannot run inside the simulator (no ISA), so each
// program reproduces the *memory behaviour* that determines PTEMagnet's
// effect: footprint size relative to TLB reach, spatial locality of the
// TLB-miss stream, page-fault (allocation) rate, and free/realloc churn.
// Sizes default to roughly 1/256 of the paper's setup, consistent with the
// simulator's scaled cache hierarchy (see DESIGN.md).
package workload

import (
	"fmt"
	"math/rand"

	"ptemagnet/internal/arch"
)

// Env is the system interface a program sees: eager virtual allocation and
// free, as provided by the guest kernel through the machine layer.
type Env interface {
	// Mmap eagerly allocates a virtual region and returns its base.
	Mmap(bytes uint64) (arch.VirtAddr, error)
	// Free releases the pages of [va, va+bytes) (physical memory only;
	// the region stays mapped).
	Free(va arch.VirtAddr, bytes uint64) error
}

// Access is one memory reference.
type Access struct {
	VA    arch.VirtAddr
	Write bool
}

// Program is a deterministic access-stream generator.
type Program interface {
	// Name identifies the program (matches the paper's benchmark names).
	Name() string
	// FootprintBytes is the declared memory need (the cgroup
	// memory.limit_in_bytes used by the §4.4 enable threshold).
	FootprintBytes() uint64
	// Setup allocates the program's regions. Called once before stepping.
	Setup(env Env) error
	// Step produces the next access. done=true means the program
	// finished; the access is ignored then. Programs may call env (alloc
	// churn) inside Step.
	Step(env Env) (acc Access, done bool)
	// InitDone reports whether the program has finished populating its
	// data structures (allocated all its physical memory). §3.3 stops
	// co-runners at this boundary and measures the steady phase.
	InitDone() bool
}

// touchSpan emits one access per page of [base, base+bytes) — the
// initialization scan that faults a region in.
type touchSpan struct {
	base  arch.VirtAddr
	pages uint64
	next  uint64
	write bool
}

func (t *touchSpan) step() (Access, bool) {
	if t.next >= t.pages {
		return Access{}, true
	}
	va := t.base + arch.VirtAddr(t.next<<arch.PageShift)
	t.next++
	return Access{VA: va, Write: t.write}, false
}

// fill emits up to len(buf) accesses of the span in one tight loop — the
// batched form of step. It returns how many were produced (0 when the span
// is exhausted).
func (t *touchSpan) fill(buf []Access) int {
	n := 0
	for n < len(buf) && t.next < t.pages {
		buf[n] = Access{VA: t.base + arch.VirtAddr(t.next<<arch.PageShift), Write: t.write}
		t.next++
		n++
	}
	return n
}

// region is a named allocated span.
type region struct {
	base  arch.VirtAddr
	bytes uint64
}

func (r region) pageCount() uint64 { return r.bytes >> arch.PageShift }

func (r region) pageVA(page uint64) arch.VirtAddr {
	return r.base + arch.VirtAddr(page<<arch.PageShift)
}

func mmapRegion(env Env, bytes uint64) (region, error) {
	bytes = arch.PagesToBytes(arch.BytesToPages(bytes))
	base, err := env.Mmap(bytes)
	if err != nil {
		return region{}, fmt.Errorf("workload: mmap %d bytes: %w", bytes, err)
	}
	return region{base: base, bytes: bytes}, nil
}

// ---------------------------------------------------------------------------
// Graph kernels (GPOP: pagerank, cc, bfs, nibble)
// ---------------------------------------------------------------------------

// GraphConfig sizes a graph kernel.
type GraphConfig struct {
	// DatasetBytes is the total footprint (offsets + edges + two vertex
	// arrays). The paper uses 16GB; the scaled default is 48MB.
	DatasetBytes uint64
	// Accesses bounds the access stream after initialization.
	Accesses uint64
	// Seed drives edge randomness.
	Seed int64
	// Locality is the probability that the next neighbour access falls
	// near the previous one (same region) instead of uniformly random —
	// graph kernels on partitioned layouts (nibble) have more.
	Locality float64
}

func (c *GraphConfig) setDefaults() {
	if c.DatasetBytes == 0 {
		c.DatasetBytes = 48 << 20
	}
	if c.Accesses == 0 {
		c.Accesses = 2_000_000
	}
}

// graphKernel is the shared engine behind the four GPOP benchmarks: a
// vertex-ordered scan (offsets + own rank, spatially local) interleaved
// with neighbour-rank reads that are spread over the vertex array
// (TLB-hostile), which is exactly the pattern that makes graph analytics
// page-walk bound.
type graphKernel struct {
	name string
	cfg  GraphConfig
	rng  *rand.Rand

	offsets region // vertex offsets, sequential
	edges   region // edge array, mostly sequential
	src     region // source ranks, random reads
	dst     region // destination ranks, sequential writes

	init      touchSpan
	initStage int
	step      uint64
	cursor    uint64 // sequential position in the vertex scan
	lastRand  uint64 // previous random page, for locality
}

func newGraphKernel(name string, cfg GraphConfig) *graphKernel {
	cfg.setDefaults()
	return &graphKernel{name: name, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (g *graphKernel) Name() string           { return g.name }
func (g *graphKernel) FootprintBytes() uint64 { return g.cfg.DatasetBytes }
func (g *graphKernel) InitDone() bool         { return g.initStage > 3 }

func (g *graphKernel) Setup(env Env) error {
	total := g.cfg.DatasetBytes
	var err error
	if g.offsets, err = mmapRegion(env, total/12); err != nil {
		return err
	}
	if g.edges, err = mmapRegion(env, total/2); err != nil {
		return err
	}
	if g.src, err = mmapRegion(env, total*5/24); err != nil {
		return err
	}
	if g.dst, err = mmapRegion(env, total*5/24); err != nil {
		return err
	}
	g.init = touchSpan{base: g.offsets.base, pages: g.offsets.pageCount(), write: true}
	return nil
}

func (g *graphKernel) Step(env Env) (Access, bool) {
	// Initialization: touch every page of every region (writes), the
	// allocation phase the paper's §3.3 experiment uses as its boundary.
	for g.initStage <= 3 {
		acc, done := g.init.step()
		if !done {
			return acc, false
		}
		g.advanceInit()
	}
	return g.steadyStep()
}

// advanceInit moves to the next initialization span (or, past stage 3, to
// the steady phase).
func (g *graphKernel) advanceInit() {
	g.initStage++
	switch g.initStage {
	case 1:
		g.init = touchSpan{base: g.edges.base, pages: g.edges.pageCount(), write: true}
	case 2:
		g.init = touchSpan{base: g.src.base, pages: g.src.pageCount(), write: true}
	case 3:
		g.init = touchSpan{base: g.dst.base, pages: g.dst.pageCount(), write: true}
	}
}

// StepBatch fills buf natively (see BatchProgram). Batches end at the
// InitDone flip — the access stream and rng consumption are identical to
// repeated Step calls.
func (g *graphKernel) StepBatch(env Env, buf []Access) (int, bool) {
	n := 0
	for g.initStage <= 3 {
		n += g.init.fill(buf[n:])
		if n == len(buf) {
			return n, false
		}
		g.advanceInit()
		if g.initStage > 3 {
			// The first steady access flips InitDone and ends the batch.
			acc, done := g.steadyStep()
			if done {
				return n, true
			}
			buf[n] = acc
			return n + 1, false
		}
	}
	for n < len(buf) {
		acc, done := g.steadyStep()
		if done {
			return n, true
		}
		buf[n] = acc
		n++
	}
	return n, false
}

func (g *graphKernel) steadyStep() (Access, bool) {
	if g.step >= g.cfg.Accesses {
		return Access{}, true
	}
	g.step++
	g.cursor++
	// Mix: 4-access inner loop per "edge": offsets read (sequential),
	// edge read (sequential), source-rank read (random — the TLB killer),
	// destination-rank write (sequential).
	switch g.step % 4 {
	case 0:
		page := (g.cursor / arch.WordsPerPage) % g.offsets.pageCount()
		return Access{VA: g.offsets.pageVA(page) + arch.VirtAddr(g.cursor%arch.WordsPerPage*arch.WordBytes)}, false
	case 1:
		page := (g.cursor / 8) % g.edges.pageCount()
		return Access{VA: g.edges.pageVA(page) + arch.VirtAddr(g.cursor%arch.WordsPerPage*arch.WordBytes)}, false
	case 2:
		var page uint64
		if g.rng.Float64() < g.cfg.Locality {
			// Neighbourhood locality: within ±4 pages of the last one.
			delta := uint64(g.rng.Intn(9))
			page = (g.lastRand + delta) % g.src.pageCount()
		} else {
			page = g.rng.Uint64() % g.src.pageCount()
		}
		g.lastRand = page
		return Access{VA: g.src.pageVA(page) + arch.VirtAddr(g.rng.Intn(arch.WordsPerPage)*arch.WordBytes)}, false
	default:
		page := (g.cursor / 16) % g.dst.pageCount()
		return Access{VA: g.dst.pageVA(page) + arch.VirtAddr(g.cursor%arch.WordsPerPage*arch.WordBytes), Write: true}, false
	}
}

// NewPagerank builds the pagerank stand-in (uniformly random neighbours).
func NewPagerank(cfg GraphConfig) Program {
	cfg.setDefaults()
	if cfg.Locality == 0 {
		cfg.Locality = 0.35
	}
	return newGraphKernel("pagerank", cfg)
}

// NewCC builds the connected-components stand-in (slightly more locality —
// label propagation revisits neighbourhoods).
func NewCC(cfg GraphConfig) Program {
	cfg.setDefaults()
	if cfg.Locality == 0 {
		cfg.Locality = 0.45
	}
	return newGraphKernel("cc", cfg)
}

// NewBFS builds the BFS stand-in (frontier expansion: moderate locality).
func NewBFS(cfg GraphConfig) Program {
	cfg.setDefaults()
	if cfg.Locality == 0 {
		cfg.Locality = 0.40
	}
	return newGraphKernel("bfs", cfg)
}

// NewNibble builds the GPOP nibble stand-in (partition-centric processing:
// the highest locality of the four).
func NewNibble(cfg GraphConfig) Program {
	cfg.setDefaults()
	if cfg.Locality == 0 {
		cfg.Locality = 0.60
	}
	return newGraphKernel("nibble", cfg)
}

// ---------------------------------------------------------------------------
// SPEC'17 stand-ins
// ---------------------------------------------------------------------------

// SpecConfig sizes a SPEC stand-in.
type SpecConfig struct {
	// FootprintBytes is the resident footprint.
	FootprintBytes uint64
	// Accesses bounds the stream.
	Accesses uint64
	// Seed drives randomness.
	Seed int64
}

func (c *SpecConfig) setDefaults(footprint uint64, accesses uint64) {
	if c.FootprintBytes == 0 {
		c.FootprintBytes = footprint
	}
	if c.Accesses == 0 {
		c.Accesses = accesses
	}
}

// mcf is a pointer chase over a permutation cycle: nearly every access is a
// TLB miss to a random page — the classic walk-bound SPEC benchmark.
type mcf struct {
	cfg   SpecConfig
	rng   *rand.Rand
	arena region
	init  touchSpan
	ready bool
	step  uint64
	pos   uint64
	burst int // short spatial bursts within a node's record
}

// NewMCF builds the mcf stand-in.
func NewMCF(cfg SpecConfig) Program {
	cfg.setDefaults(40<<20, 2_000_000)
	return &mcf{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (m *mcf) Name() string           { return "mcf" }
func (m *mcf) FootprintBytes() uint64 { return m.cfg.FootprintBytes }
func (m *mcf) InitDone() bool         { return m.ready }

func (m *mcf) Setup(env Env) error {
	var err error
	if m.arena, err = mmapRegion(env, m.cfg.FootprintBytes); err != nil {
		return err
	}
	m.init = touchSpan{base: m.arena.base, pages: m.arena.pageCount(), write: true}
	return nil
}

func (m *mcf) Step(env Env) (Access, bool) {
	if !m.ready {
		acc, done := m.init.step()
		if !done {
			return acc, false
		}
		m.ready = true
	}
	return m.steadyStep()
}

// StepBatch fills buf natively (see BatchProgram).
func (m *mcf) StepBatch(env Env, buf []Access) (int, bool) {
	if !m.ready {
		if n := m.init.fill(buf); n > 0 {
			return n, false
		}
		m.ready = true
		// The first steady access flips InitDone and ends the batch.
		acc, done := m.steadyStep()
		if done {
			return 0, true
		}
		buf[0] = acc
		return 1, false
	}
	n := 0
	for n < len(buf) {
		acc, done := m.steadyStep()
		if done {
			return n, true
		}
		buf[n] = acc
		n++
	}
	return n, false
}

func (m *mcf) steadyStep() (Access, bool) {
	if m.step >= m.cfg.Accesses {
		return Access{}, true
	}
	m.step++
	if m.burst > 0 {
		// A few field accesses within the current node's page.
		m.burst--
		return Access{VA: m.arena.pageVA(m.pos) + arch.VirtAddr(m.rng.Intn(arch.WordsPerPage)*arch.WordBytes), Write: m.burst == 0}, false
	}
	// Follow the "pointer": jump to a pseudo-random page derived from the
	// current one (a fixed permutation, so revisits do occur).
	m.pos = (m.pos*2654435761 + 12345) % m.arena.pageCount()
	m.burst = 2
	return Access{VA: m.arena.pageVA(m.pos)}, false
}

// mixProgram covers gcc and omnetpp: a hot sequential working set plus a
// fraction of random accesses over the full heap.
type mixProgram struct {
	name       string
	cfg        SpecConfig
	randomFrac float64
	rng        *rand.Rand
	arena      region
	init       touchSpan
	ready      bool
	step, seq  uint64
	hotPages   uint64
}

// NewGCC builds the gcc stand-in: modest footprint, mostly local accesses —
// one of the low-TLB-pressure benchmarks PTEMagnet must not slow down.
func NewGCC(cfg SpecConfig) Program {
	cfg.setDefaults(12<<20, 1_500_000)
	return &mixProgram{name: "gcc", cfg: cfg, randomFrac: 0.025,
		rng: rand.New(rand.NewSource(cfg.Seed))}
}

// NewOmnetpp builds the omnetpp stand-in: discrete-event simulation over a
// large object heap — scattered accesses, moderate TLB pressure.
func NewOmnetpp(cfg SpecConfig) Program {
	cfg.setDefaults(24<<20, 1_800_000)
	return &mixProgram{name: "omnetpp", cfg: cfg, randomFrac: 0.12,
		rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (p *mixProgram) Name() string           { return p.name }
func (p *mixProgram) FootprintBytes() uint64 { return p.cfg.FootprintBytes }
func (p *mixProgram) InitDone() bool         { return p.ready }

func (p *mixProgram) Setup(env Env) error {
	var err error
	if p.arena, err = mmapRegion(env, p.cfg.FootprintBytes); err != nil {
		return err
	}
	p.hotPages = p.arena.pageCount() / 16
	if p.hotPages == 0 {
		p.hotPages = 1
	}
	p.init = touchSpan{base: p.arena.base, pages: p.arena.pageCount(), write: true}
	return nil
}

func (p *mixProgram) Step(env Env) (Access, bool) {
	if !p.ready {
		acc, done := p.init.step()
		if !done {
			return acc, false
		}
		p.ready = true
	}
	return p.steadyStep()
}

// StepBatch fills buf natively (see BatchProgram).
func (p *mixProgram) StepBatch(env Env, buf []Access) (int, bool) {
	if !p.ready {
		if n := p.init.fill(buf); n > 0 {
			return n, false
		}
		p.ready = true
		// The first steady access flips InitDone and ends the batch.
		acc, done := p.steadyStep()
		if done {
			return 0, true
		}
		buf[0] = acc
		return 1, false
	}
	n := 0
	for n < len(buf) {
		acc, done := p.steadyStep()
		if done {
			return n, true
		}
		buf[n] = acc
		n++
	}
	return n, false
}

func (p *mixProgram) steadyStep() (Access, bool) {
	if p.step >= p.cfg.Accesses {
		return Access{}, true
	}
	p.step++
	if p.rng.Float64() < p.randomFrac {
		page := p.rng.Uint64() % p.arena.pageCount()
		return Access{VA: p.arena.pageVA(page) + arch.VirtAddr(p.rng.Intn(arch.WordsPerPage)*arch.WordBytes)}, false
	}
	p.seq++
	page := (p.seq / 64) % p.hotPages
	return Access{VA: p.arena.pageVA(page) + arch.VirtAddr(p.seq%arch.WordsPerPage*arch.WordBytes), Write: p.seq%4 == 0}, false
}

// xz models LZMA compression: a streaming input plus match copies that jump
// backwards into a large dictionary window and then read several nearby
// pages — dense group-level spatial locality over a big footprint, which is
// why xz benefits most from PTEMagnet in the paper (9%).
type xz struct {
	cfg    SpecConfig
	rng    *rand.Rand
	window region
	init   touchSpan
	ready  bool
	step   uint64
	inPos  uint64
	match  uint64 // current match position (page)
	run    int    // remaining accesses in the current match copy
}

// NewXZ builds the xz stand-in.
func NewXZ(cfg SpecConfig) Program {
	cfg.setDefaults(36<<20, 2_000_000)
	return &xz{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (x *xz) Name() string           { return "xz" }
func (x *xz) FootprintBytes() uint64 { return x.cfg.FootprintBytes }
func (x *xz) InitDone() bool         { return x.ready }

func (x *xz) Setup(env Env) error {
	var err error
	if x.window, err = mmapRegion(env, x.cfg.FootprintBytes); err != nil {
		return err
	}
	x.init = touchSpan{base: x.window.base, pages: x.window.pageCount(), write: true}
	return nil
}

func (x *xz) Step(env Env) (Access, bool) {
	if !x.ready {
		acc, done := x.init.step()
		if !done {
			return acc, false
		}
		x.ready = true
	}
	return x.steadyStep()
}

// StepBatch fills buf natively (see BatchProgram).
func (x *xz) StepBatch(env Env, buf []Access) (int, bool) {
	if !x.ready {
		if n := x.init.fill(buf); n > 0 {
			return n, false
		}
		x.ready = true
		// The first steady access flips InitDone and ends the batch.
		acc, done := x.steadyStep()
		if done {
			return 0, true
		}
		buf[0] = acc
		return 1, false
	}
	n := 0
	for n < len(buf) {
		acc, done := x.steadyStep()
		if done {
			return n, true
		}
		buf[n] = acc
		n++
	}
	return n, false
}

func (x *xz) steadyStep() (Access, bool) {
	if x.step >= x.cfg.Accesses {
		return Access{}, true
	}
	x.step++
	if x.run > 0 {
		// Continue copying the match: walk forward through adjacent
		// pages — successive TLB misses land in the same 8-page group.
		x.run--
		x.match = (x.match + 1) % x.window.pageCount()
		return Access{VA: x.window.pageVA(x.match)}, false
	}
	if x.step%3 == 0 {
		// New match: jump to a random dictionary position, then copy
		// across the next few pages.
		x.match = x.rng.Uint64() % x.window.pageCount()
		x.run = 4 + x.rng.Intn(8)
		return Access{VA: x.window.pageVA(x.match)}, false
	}
	// Streaming input (sequential writes).
	x.inPos++
	page := (x.inPos / 32) % x.window.pageCount()
	return Access{VA: x.window.pageVA(page) + arch.VirtAddr(x.inPos%arch.WordsPerPage*arch.WordBytes), Write: true}, false
}
