package vm

import (
	"reflect"
	"testing"

	"ptemagnet/internal/guestos"
	"ptemagnet/internal/workload"
)

// hostConfig2 builds a fast two-guest host for tests.
func hostConfig2(policies ...guestos.AllocPolicy) HostConfig {
	hc := smallConfig(guestos.PolicyDefault).Host()
	hc.Guests = hc.Guests[:0]
	for i, p := range policies {
		hc.Guests = append(hc.Guests, GuestConfig{
			MemBytes: 64 << 20,
			Policy:   p,
			Seed:     42 + int64(i),
		})
	}
	return hc
}

// TestHostConfigSingleGuestEquivalence is the pinned N=1 proof: building
// through HostConfig{Guests: [1]} and through the legacy Config must
// produce identical machines — same Report, same Snapshot, same telemetry
// names.
func TestHostConfigSingleGuestEquivalence(t *testing.T) {
	run := func(viaHost bool) (*Machine, Report) {
		cfg := smallConfig(guestos.PolicyPTEMagnet)
		var m *Machine
		var err error
		if viaHost {
			m, err = NewHost(cfg.Host())
		} else {
			m, err = New(cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.AddTask(workload.NewPagerank(smallGraph(1)), RolePrimary); err != nil {
			t.Fatal(err)
		}
		if _, err := m.AddTask(workload.NewPyaes(workload.CorunnerConfig{FootprintBytes: 2 << 20, Seed: 7}), RoleCorunner); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(RunOptions{SampleEvery: 512}); err != nil {
			t.Fatal(err)
		}
		return m, m.Observe()
	}
	mLegacy, repLegacy := run(false)
	mHost, repHost := run(true)
	if !reflect.DeepEqual(repLegacy, repHost) {
		t.Errorf("reports differ:\nlegacy: %+v\nhost:   %+v", repLegacy, repHost)
	}
	if !reflect.DeepEqual(mLegacy.Snapshot(), mHost.Snapshot()) {
		t.Errorf("snapshots differ")
	}
	namesL := mLegacy.Registry().Names()
	namesH := mHost.Registry().Names()
	if !reflect.DeepEqual(namesL, namesH) {
		t.Errorf("registry names differ: %v vs %v", namesL, namesH)
	}
	for _, name := range namesL {
		if len(name) >= 2 && name[0] == 'v' && name[1] == 'm' {
			t.Errorf("single-guest machine registered prefixed counter %q", name)
		}
	}
}

// runTwoGuests builds and runs a two-guest host with one primary and one
// co-runner per guest.
func runTwoGuests(t *testing.T) *Machine {
	t.Helper()
	m, err := NewHost(hostConfig2(guestos.PolicyDefault, guestos.PolicyPTEMagnet))
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range m.Guests() {
		if _, err := g.AddTask(workload.NewPagerank(smallGraph(int64(i+1))), RolePrimary); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddTask(workload.NewPyaes(workload.CorunnerConfig{FootprintBytes: 2 << 20, Seed: int64(20 + i)}), RoleCorunner); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTwoGuestsRun(t *testing.T) {
	m := runTwoGuests(t)
	rep := m.Observe()
	if len(rep.Tasks) != 2 {
		t.Fatalf("got %d primary reports, want 2", len(rep.Tasks))
	}
	if rep.Tasks[0].Guest != 0 || rep.Tasks[1].Guest != 1 {
		t.Errorf("task guest indices = %d,%d", rep.Tasks[0].Guest, rep.Tasks[1].Guest)
	}
	if len(rep.Guests) != 2 {
		t.Fatalf("got %d guest reports, want 2", len(rep.Guests))
	}
	for i, gr := range rep.Guests {
		if gr.Index != i || gr.VMID != i+1 || !gr.Alive {
			t.Errorf("guest report %d = {Index:%d VMID:%d Alive:%v}", i, gr.Index, gr.VMID, gr.Alive)
		}
		if gr.Stats.Accesses == 0 || gr.Stats.Walker.Walks == 0 {
			t.Errorf("guest %d did no observable work: %+v", i, gr.Stats)
		}
		if gr.HostUserFrames == 0 || gr.MappedGuestPages == 0 {
			t.Errorf("guest %d has no host frames attributed", i)
		}
		if gr.Frag.Groups == 0 {
			t.Errorf("guest %d has no fragmentation groups", i)
		}
	}
	// Machine totals are the sums of the per-guest slices.
	whole := m.Snapshot()
	var accSum, walkSum uint64
	for _, g := range m.Guests() {
		gs := g.Snapshot()
		accSum += gs.Accesses
		walkSum += gs.Walker.Walks
	}
	if whole.Accesses != accSum {
		t.Errorf("machine accesses %d != guest sum %d", whole.Accesses, accSum)
	}
	if whole.Walker.Walks != walkSum {
		t.Errorf("machine walks %d != guest sum %d", whole.Walker.Walks, walkSum)
	}
	if rep.HostFrag.Groups != rep.Guests[0].Frag.Groups+rep.Guests[1].Frag.Groups {
		t.Errorf("host frag groups %d != per-guest sum", rep.HostFrag.Groups)
	}
	// Per-guest registry prefixes, shared groups unprefixed.
	names := m.Registry().Names()
	var sawVM0, sawVM1, sawCache bool
	for _, n := range names {
		switch {
		case len(n) > 4 && n[:4] == "vm0.":
			sawVM0 = true
		case len(n) > 4 && n[:4] == "vm1.":
			sawVM1 = true
		case len(n) > 6 && n[:6] == "cache.":
			sawCache = true
		case n == "machine.accesses" || (len(n) > 11 && n[:11] == "buddy.host."):
		default:
			t.Errorf("unexpected unprefixed counter %q on multi-guest machine", n)
		}
	}
	if !sawVM0 || !sawVM1 || !sawCache {
		t.Errorf("missing counter groups: vm0=%v vm1=%v cache=%v", sawVM0, sawVM1, sawCache)
	}
}

// TestTwoGuestsDeterministic runs the same two-guest scenario twice and
// requires identical counters — the cross-VM round-robin is part of the
// determinism contract.
func TestTwoGuestsDeterministic(t *testing.T) {
	a := runTwoGuests(t).Observe()
	b := runTwoGuests(t).Observe()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical multi-guest runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestGuestChurn boots a guest mid-run, then destroys another, and checks
// teardown frees host frames while machine totals stay monotonic.
func TestGuestChurn(t *testing.T) {
	m, err := NewHost(hostConfig2(guestos.PolicyDefault, guestos.PolicyPTEMagnet))
	if err != nil {
		t.Fatal(err)
	}
	victim := m.Guests()[1]
	if _, err := m.Guests()[0].AddTask(workload.NewPagerank(smallGraph(1)), RolePrimary); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.AddTask(workload.NewPyaes(workload.CorunnerConfig{FootprintBytes: 4 << 20, Seed: 9}), RoleCorunner); err != nil {
		t.Fatal(err)
	}
	var freeAtKill, bootSeen uint64
	events := []RunEvent{
		{AtAccesses: 5_000, Do: func(m *Machine) error {
			g, err := m.AddGuest(GuestConfig{MemBytes: 32 << 20, Policy: guestos.PolicyPTEMagnet, Seed: 77})
			if err != nil {
				return err
			}
			bootSeen = uint64(g.Index())
			_, err = g.AddTask(workload.NewPyaes(workload.CorunnerConfig{FootprintBytes: 2 << 20, Seed: 10}), RoleCorunner)
			return err
		}},
		{AtAccesses: 20_000, Do: func(m *Machine) error {
			freeAtKill = m.Host().Memory().FreeFrames()
			m.DestroyGuest(m.Guests()[1])
			return nil
		}},
	}
	if err := m.Run(RunOptions{Events: events}); err != nil {
		t.Fatal(err)
	}
	if bootSeen != 2 {
		t.Errorf("booted guest index = %d, want 2", bootSeen)
	}
	if victim.Alive() {
		t.Error("victim guest alive after churn event")
	}
	if got := m.Host().Memory().FreeFrames(); got <= freeAtKill {
		t.Errorf("teardown freed nothing: %d free before, %d after run", freeAtKill, got)
	}
	rep := m.Observe()
	if len(rep.Guests) != 3 {
		t.Fatalf("got %d guest reports, want 3 (dead guest keeps its slot)", len(rep.Guests))
	}
	dead := rep.Guests[1]
	if dead.Alive || dead.MappedGuestPages != 0 || dead.HostUserFrames != 0 {
		t.Errorf("dead guest report = %+v", dead)
	}
	if dead.Stats.Accesses == 0 {
		t.Error("dead guest's frozen counters lost")
	}
	if !rep.Guests[2].Alive || rep.Guests[2].Stats.Accesses == 0 {
		t.Errorf("late-booted guest did not run: %+v", rep.Guests[2])
	}
	// The host's VM list only holds the live VMs; ids never reused.
	vms := m.Host().VMs()
	if len(vms) != 2 {
		t.Fatalf("host tracks %d VMs, want 2", len(vms))
	}
	if vms[0].ID() != 1 || vms[1].ID() != 3 {
		t.Errorf("live VM ids = %d,%d, want 1,3", vms[0].ID(), vms[1].ID())
	}
}

// TestGuestChurnDeterministic repeats the churn scenario and requires
// identical observations.
func TestGuestChurnDeterministic(t *testing.T) {
	run := func() Report {
		m, err := NewHost(hostConfig2(guestos.PolicyDefault, guestos.PolicyDefault))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Guests()[0].AddTask(workload.NewPagerank(smallGraph(3)), RolePrimary); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Guests()[1].AddTask(workload.NewPyaes(workload.CorunnerConfig{FootprintBytes: 4 << 20, Seed: 5}), RoleCorunner); err != nil {
			t.Fatal(err)
		}
		events := []RunEvent{{AtAccesses: 10_000, Do: func(m *Machine) error {
			m.DestroyGuest(m.Guests()[1])
			return nil
		}}}
		if err := m.Run(RunOptions{Events: events}); err != nil {
			t.Fatal(err)
		}
		return m.Observe()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("churn runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestAddTaskOnDeadGuestFails(t *testing.T) {
	m, err := NewHost(hostConfig2(guestos.PolicyDefault, guestos.PolicyDefault))
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guests()[1]
	m.DestroyGuest(g)
	if _, err := g.AddTask(workload.NewPyaes(workload.CorunnerConfig{FootprintBytes: 1 << 20}), RoleCorunner); err == nil {
		t.Error("AddTask on destroyed guest succeeded")
	}
}

func TestHostConfigValidation(t *testing.T) {
	base := hostConfig2(guestos.PolicyDefault)
	noGuests := base
	noGuests.Guests = nil
	if _, err := NewHost(noGuests); err == nil {
		t.Error("HostConfig without guests accepted")
	}
	tooBig := base
	tooBig.Guests = []GuestConfig{{MemBytes: tooBig.HostMemBytes * 2}}
	if _, err := NewHost(tooBig); err == nil {
		t.Error("guest larger than host accepted")
	}
	// Overcommit of the sum is allowed.
	over := base
	over.Guests = []GuestConfig{{MemBytes: over.HostMemBytes}, {MemBytes: over.HostMemBytes}}
	if _, err := NewHost(over); err != nil {
		t.Errorf("overcommitted guest sum rejected: %v", err)
	}
}
