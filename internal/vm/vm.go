// Package vm assembles the full simulated stack of the paper's evaluation
// platform (§5): a host machine with a cache hierarchy, one QEMU/KVM-style
// virtual machine, a guest kernel with a selectable allocator policy, and a
// set of colocated workloads pinned to vCPUs.
//
// The machine interleaves the workloads' memory accesses round-robin in
// small quanta — the asynchronous page-fault interleaving that fragments
// the guest buddy allocator under colocation (§2.4). Every access runs the
// hardware pipeline: main TLB, nested 2D page walk through the simulated
// caches, guest page faults into the kernel, host faults into the
// hypervisor. Cycle accounting splits into work, data-access, translation,
// and fault-handling components so the paper's per-metric deltas can be
// reported.
package vm

import (
	"context"
	"fmt"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/cache"
	"ptemagnet/internal/core"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/hostos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/nested"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/workload"
)

// CostModel prices the kernel-software events the cache simulator cannot
// time. Values are cycles. The defaults follow the shape of Linux fault
// costs: the trap + mapping overhead and the page-zeroing memset dominate;
// the allocator call itself is small — which is why the paper's §6.4
// microbenchmark sees PTEMagnet's fewer buddy calls as only a slight win.
type CostModel struct {
	// WorkCyclesPerAccess is the non-memory compute per access.
	WorkCyclesPerAccess uint64
	// TrapCycles is the base cost of any page fault (trap, VMA lookup,
	// return).
	TrapCycles uint64
	// ZeroPageCycles clears a freshly mapped anonymous page (per page,
	// identical in both policies).
	ZeroPageCycles uint64
	// BuddyPageCycles is one order-0 buddy allocator call.
	BuddyPageCycles uint64
	// BuddyGroupCycles is one order-3 (eight-page) buddy call plus PaRT
	// insertion.
	BuddyGroupCycles uint64
	// PaRTHitCycles is a PaRT lookup serving a fault from a reservation.
	PaRTHitCycles uint64
	// COWCopyCycles copies a page on a COW break.
	COWCopyCycles uint64
}

// DefaultCostModel returns the calibrated defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		WorkCyclesPerAccess: 7,
		TrapCycles:          1000,
		ZeroPageCycles:      1200,
		BuddyPageCycles:     120,
		BuddyGroupCycles:    180,
		PaRTHitCycles:       60,
		COWCopyCycles:       2400,
	}
}

// faultCost prices a resolved fault by kind.
func (c CostModel) faultCost(kind guestos.FaultKind) uint64 {
	switch kind {
	case guestos.FaultAlreadyMapped:
		return c.TrapCycles / 2
	case guestos.FaultDefault:
		return c.TrapCycles + c.BuddyPageCycles + c.ZeroPageCycles
	case guestos.FaultMagnetNew:
		return c.TrapCycles + c.BuddyGroupCycles + c.ZeroPageCycles
	case guestos.FaultMagnetHit:
		return c.TrapCycles + c.PaRTHitCycles + c.ZeroPageCycles
	case guestos.FaultParentClaim:
		return c.TrapCycles + c.PaRTHitCycles + c.ZeroPageCycles
	case guestos.FaultCOW:
		return c.TrapCycles + c.BuddyPageCycles + c.COWCopyCycles
	case guestos.FaultCAHit:
		// A targeted AllocAt costs about as much as a stock buddy call.
		return c.TrapCycles + c.BuddyPageCycles + c.ZeroPageCycles
	case guestos.FaultTHP:
		// One trap and one order-9 buddy call, but all 512 constituent
		// pages (one full PT node's worth) must be zeroed up front.
		return c.TrapCycles + c.BuddyGroupCycles + arch.PTEntriesPerNode*c.ZeroPageCycles
	default:
		return c.TrapCycles
	}
}

// Config describes the simulated platform.
type Config struct {
	// HostMemBytes / GuestMemBytes size the two physical memories
	// (default 512MB / 256MB — the paper's 128GB/64GB at 1/256 scale).
	HostMemBytes  uint64
	GuestMemBytes uint64
	// NumCPUs is the vCPU count; workloads are pinned round-robin.
	NumCPUs int
	// Cache overrides the hierarchy (zero value → cache.DefaultConfig).
	Cache cache.Config
	// Walker overrides translation machinery (zero → nested.DefaultConfig).
	Walker nested.Config
	// Policy selects the guest allocator; Magnet configures PTEMagnet.
	Policy guestos.AllocPolicy
	Magnet core.Config
	// EnableThresholdBytes gates PTEMagnet per process (§4.4).
	EnableThresholdBytes uint64
	// ReclaimWatermark forwards to the guest kernel (§4.3).
	ReclaimWatermark float64
	// Costs prices kernel events (zero → DefaultCostModel).
	Costs CostModel
	// Quantum is the number of accesses one task executes per scheduling
	// turn (small → aggressive fault interleaving). Zero → 8.
	Quantum int
	// PTLevels selects the page-table depth for both the guest and the
	// host dimension: 4 (default) or 5 (LA57 + 5-level EPT, §2.5).
	PTLevels int
	// Seed drives kernel randomness.
	Seed int64
}

// ConfigError is the typed validation failure returned by Config.Validate.
// It aliases the core package's type so errors.As matches failures from
// either layer (a bad Magnet sub-config surfaces as the same type).
type ConfigError = core.ConfigError

// Validate checks cfg for explicitly invalid values. The zero value of every
// optional field is a documented default (filled in by New) and always
// passes; Validate rejects only contradictions: unset memory sizes, a guest
// larger than its host, negative counts, unknown page-table depths,
// out-of-range watermarks, and an invalid Magnet configuration (when one is
// set at all).
func (c Config) Validate() error {
	if c.HostMemBytes == 0 {
		return &ConfigError{Field: "HostMemBytes", Value: c.HostMemBytes, Reason: "must be set"}
	}
	if c.GuestMemBytes == 0 {
		return &ConfigError{Field: "GuestMemBytes", Value: c.GuestMemBytes, Reason: "must be set"}
	}
	if c.GuestMemBytes > c.HostMemBytes {
		return &ConfigError{Field: "GuestMemBytes", Value: c.GuestMemBytes, Reason: "guest memory cannot exceed host memory"}
	}
	if c.NumCPUs < 0 {
		return &ConfigError{Field: "NumCPUs", Value: c.NumCPUs, Reason: "must be positive (zero selects the default)"}
	}
	if c.Quantum < 0 {
		return &ConfigError{Field: "Quantum", Value: c.Quantum, Reason: "must be positive (zero selects the default)"}
	}
	if c.PTLevels != 0 && c.PTLevels != 4 && c.PTLevels != 5 {
		return &ConfigError{Field: "PTLevels", Value: c.PTLevels, Reason: "must be 4 or 5 (zero selects the default)"}
	}
	if c.ReclaimWatermark < 0 || c.ReclaimWatermark > 1 {
		return &ConfigError{Field: "ReclaimWatermark", Value: c.ReclaimWatermark, Reason: "must be in [0, 1]"}
	}
	if c.Magnet.GroupPages != 0 {
		if err := c.Magnet.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// DefaultConfig returns the scaled-down mirror of the paper's Table 2
// platform.
func DefaultConfig() Config {
	return Config{
		HostMemBytes:  512 << 20,
		GuestMemBytes: 256 << 20,
		NumCPUs:       8,
		Policy:        guestos.PolicyDefault,
	}
}

// Role classifies tasks: primaries are measured; co-runners only generate
// allocator pressure and stop when the primaries finish.
type Role uint8

const (
	// RolePrimary marks a measured benchmark.
	RolePrimary Role = iota
	// RoleCorunner marks a background co-runner.
	RoleCorunner
)

// TaskSpec declares one workload to run.
type TaskSpec struct {
	Prog workload.Program
	Role Role
}

// Task is a scheduled workload bound to a guest process and vCPU.
type Task struct {
	spec  TaskSpec
	batch workload.BatchProgram
	proc  *guestos.Process
	cpu   int
	index int
	done  bool

	// Cycle accounting, split by component.
	Cycles            uint64
	WorkCycles        uint64
	DataCycles        uint64
	TranslationCycles uint64
	FaultCycles       uint64
	Accesses          uint64
	DataServed        [cache.NumLevels]uint64

	// initSnapshot captures the counters at the task's init boundary.
	initSnapshot taskCounters
	initSeen     bool
}

type taskCounters struct {
	cycles, work, data, translation, fault, accesses uint64
	dataServed                                       [cache.NumLevels]uint64
}

func (t *Task) counters() taskCounters {
	return taskCounters{
		cycles: t.Cycles, work: t.WorkCycles, data: t.DataCycles,
		translation: t.TranslationCycles, fault: t.FaultCycles,
		accesses: t.Accesses, dataServed: t.DataServed,
	}
}

// Name returns the underlying program name.
func (t *Task) Name() string { return t.spec.Prog.Name() }

// Process returns the guest process executing the task.
func (t *Task) Process() *guestos.Process { return t.proc }

// env adapts a guest process to the workload.Env interface, wiring TLB
// shootdowns into frees.
type env struct {
	m    *Machine
	proc *guestos.Process
}

func (e env) Mmap(bytes uint64) (arch.VirtAddr, error) { return e.proc.Mmap(bytes) }

func (e env) Free(va arch.VirtAddr, bytes uint64) error {
	if err := e.proc.Free(va, bytes); err != nil {
		return err
	}
	start := va.PageBase()
	end := arch.VirtAddr(arch.AlignUp(uint64(va)+bytes, arch.PageSize))
	e.m.walker.InvalidateRange(e.proc.ASID(), start, end)
	return nil
}

// AccessRecord is one executed memory access as delivered to a Tracer.
// Seq is the machine-global access sequence number (1-based), identical to
// the seq the legacy per-event stream carried.
type AccessRecord struct {
	Task              int
	VA                arch.VirtAddr
	Write             bool
	TLBHit            bool
	TranslationCycles uint64
	DataCycles        uint64
	Served            uint8
	Seq               uint64
}

// Tracer receives the machine's event stream (see internal/trace for a
// binary recorder). Methods are called synchronously on the simulation
// thread; implementations should be cheap.
//
// Accesses arrive in batches in execution order. Faults interleave in stream
// order: before a Fault with sequence number s is delivered, every access
// record with Seq < s has already been delivered (the machine flushes the
// pending batch first), so a per-event recorder fed through PerAccess sees
// the exact event order the legacy interface produced.
type Tracer interface {
	// AccessBatch reports executed accesses in order. The slice is reused
	// between calls; implementations must copy anything they retain.
	AccessBatch(recs []AccessRecord)
	// Fault reports one resolved guest page fault.
	Fault(task int, va arch.VirtAddr, kind uint8, seq uint64)
}

// AccessTracer is the legacy per-event tracing interface. Wrap one with
// PerAccess to install it on a Machine.
type AccessTracer interface {
	// Access reports one executed memory access.
	Access(task int, va arch.VirtAddr, write, tlbHit bool, translationCycles, dataCycles uint64, served uint8, seq uint64)
	// Fault reports one resolved guest page fault.
	Fault(task int, va arch.VirtAddr, kind uint8, seq uint64)
}

// PerAccess adapts a legacy per-event AccessTracer to the batched Tracer
// interface, fanning each batch out one call per access.
func PerAccess(t AccessTracer) Tracer { return perAccess{t: t} }

type perAccess struct{ t AccessTracer }

func (p perAccess) AccessBatch(recs []AccessRecord) {
	for _, r := range recs {
		p.t.Access(r.Task, r.VA, r.Write, r.TLBHit, r.TranslationCycles, r.DataCycles, r.Served, r.Seq)
	}
}

func (p perAccess) Fault(task int, va arch.VirtAddr, kind uint8, seq uint64) {
	p.t.Fault(task, va, kind, seq)
}

// Machine is the assembled platform.
type Machine struct {
	cfg    Config
	host   *hostos.Kernel
	hostVM *hostos.VM
	guest  *guestos.Kernel
	hier   *cache.Hierarchy
	walker *nested.Walker
	tasks  []*Task

	totalAccesses uint64
	unusedSeries  metrics.Series
	tracer        Tracer

	// Reused batch scratch: accesses filled by StepBatch and the trace
	// records accumulated while executing them. Sized once in New.
	accBuf []workload.Access
	recBuf []AccessRecord

	// Steady-window snapshot, taken when every primary reaches its init
	// boundary (the §3.3 measurement start).
	steadySnapTaken bool
	statsAtInit     Stats

	// registry is the named counter view, built lazily by Registry.
	registry *obs.Registry
}

// maxBatch caps the per-turn batch buffer: a quantum larger than this is
// executed as several back-to-back batches, bounding scratch memory while
// keeping the amortization win.
const maxBatch = 256

// New builds a machine. Zero-valued optional Config fields select their
// documented defaults; explicitly invalid values are rejected with a
// *ConfigError (see Config.Validate).
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	if cfg.NumCPUs == 0 {
		cfg.NumCPUs = 8
	}
	if cfg.Cache.NumCPUs == 0 {
		cfg.Cache = cache.DefaultConfig(cfg.NumCPUs)
	}
	if cfg.Walker.TLB.L1.Entries == 0 {
		cfg.Walker = nested.DefaultConfig()
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCostModel()
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 8
	}
	if cfg.PTLevels == 0 {
		cfg.PTLevels = 4
	}
	host := hostos.NewKernel(cfg.HostMemBytes)
	hostVM, err := host.CreateVMWithLevels(cfg.GuestMemBytes, cfg.PTLevels)
	if err != nil {
		return nil, err
	}
	guest := guestos.NewKernel(guestos.Config{
		MemBytes:             cfg.GuestMemBytes,
		Policy:               cfg.Policy,
		Magnet:               cfg.Magnet,
		EnableThresholdBytes: cfg.EnableThresholdBytes,
		ReclaimWatermark:     cfg.ReclaimWatermark,
		Seed:                 cfg.Seed,
		PTLevels:             cfg.PTLevels,
	})
	hier := cache.NewHierarchy(cfg.Cache)
	batchCap := cfg.Quantum
	if batchCap > maxBatch {
		batchCap = maxBatch
	}
	return &Machine{
		cfg:    cfg,
		host:   host,
		hostVM: hostVM,
		guest:  guest,
		hier:   hier,
		walker: nested.New(cfg.Walker, hier, hostVM),
		accBuf: make([]workload.Access, batchCap),
		recBuf: make([]AccessRecord, 0, batchCap),
	}, nil
}

// Guest exposes the guest kernel.
func (m *Machine) Guest() *guestos.Kernel { return m.guest }

// HostVM exposes the VM as the host sees it.
func (m *Machine) HostVM() *hostos.VM { return m.hostVM }

// Hierarchy exposes the cache hierarchy.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Walker exposes the nested walker.
func (m *Machine) Walker() *nested.Walker { return m.walker }

// UnusedSeries returns the sampled §6.2 gauge.
func (m *Machine) UnusedSeries() *metrics.Series { return &m.unusedSeries }

// SetTracer installs an event-stream recorder for subsequent Run calls
// (nil disables tracing).
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// AddTask spawns a guest process for prog and schedules it. Tasks are
// pinned to vCPUs round-robin in creation order, like the paper pinning
// application and co-runner threads to distinct cores.
func (m *Machine) AddTask(prog workload.Program, role Role) (*Task, error) {
	proc, err := m.guest.Spawn(prog.Name(), prog.FootprintBytes())
	if err != nil {
		return nil, err
	}
	t := &Task{
		spec:  TaskSpec{Prog: prog, Role: role},
		batch: workload.AsBatch(prog),
		proc:  proc,
		cpu:   len(m.tasks) % m.cfg.NumCPUs,
		index: len(m.tasks),
	}
	if err := prog.Setup(env{m: m, proc: proc}); err != nil {
		return nil, err
	}
	m.tasks = append(m.tasks, t)
	return t, nil
}

// Tasks returns all scheduled tasks.
func (m *Machine) Tasks() []*Task { return m.tasks }

// RunOptions control a Run.
type RunOptions struct {
	// StopCorunnersAtPrimaryInit kills co-runner tasks the moment every
	// primary finishes initialization — the §3.3 Table 1 methodology
	// (fragmentation is left behind; LLC contention is removed).
	StopCorunnersAtPrimaryInit bool
	// SampleEvery samples the unused-reserved-pages gauge (§6.2) every N
	// total accesses. Zero disables sampling.
	SampleEvery uint64
	// MaxAccesses aborts a runaway run (safety net). Zero → no limit.
	MaxAccesses uint64
}

// Run interleaves all tasks until every primary finishes. Co-runners are
// stopped at the end (or at the primary-init boundary per options). It
// returns an error only for simulation bugs (workload accessing unmapped
// regions, guest OOM).
func (m *Machine) Run(opts RunOptions) error {
	return m.RunContext(context.Background(), opts)
}

// RunContext is Run with cancellation: the scheduler polls ctx between
// rounds (one quantum of every task), so a canceled run stops within a
// handful of accesses and returns the context's error. This is the
// cancellation point for every workload inner loop — workloads only
// execute inside scheduler rounds.
func (m *Machine) RunContext(ctx context.Context, opts RunOptions) error {
	primariesLeft := 0
	for _, t := range m.tasks {
		if t.spec.Role == RolePrimary {
			primariesLeft++
		}
	}
	if primariesLeft == 0 {
		return fmt.Errorf("vm: no primary task")
	}
	corunnersActive := true
	var nextSample uint64
	for primariesLeft > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("vm: run canceled: %w", err)
		}
		progressed := false
		for _, t := range m.tasks {
			if t.done {
				continue
			}
			if t.spec.Role == RoleCorunner && !corunnersActive {
				continue
			}
			if err := m.runQuantum(t); err != nil {
				return err
			}
			if t.done && t.spec.Role == RolePrimary {
				primariesLeft--
			}
			progressed = true
		}
		if !progressed {
			return fmt.Errorf("vm: scheduler stalled with %d primaries left", primariesLeft)
		}
		if !m.steadySnapTaken && m.primariesInitDone() {
			m.steadySnapTaken = true
			m.statsAtInit = m.Snapshot()
			if opts.StopCorunnersAtPrimaryInit {
				corunnersActive = false
			}
		}
		if opts.SampleEvery > 0 && m.totalAccesses >= nextSample {
			m.unusedSeries.Record(m.totalAccesses, int64(m.guest.UnusedReservedPages()))
			nextSample = m.totalAccesses + opts.SampleEvery
		}
		if opts.MaxAccesses > 0 && m.totalAccesses >= opts.MaxAccesses {
			return fmt.Errorf("vm: exceeded access budget %d", opts.MaxAccesses)
		}
	}
	if opts.SampleEvery > 0 {
		// Always close the series with the final state, so short runs
		// still report their peak.
		m.unusedSeries.Record(m.totalAccesses, int64(m.guest.UnusedReservedPages()))
	}
	return nil
}

func (m *Machine) primariesInitDone() bool {
	for _, t := range m.tasks {
		if t.spec.Role == RolePrimary && !t.done && !t.spec.Prog.InitDone() {
			return false
		}
	}
	return true
}

// runQuantum executes up to one scheduling quantum of t, pulling accesses
// from the workload in batches (capped at the scratch-buffer size) and
// running each batch through the hardware pipeline.
func (m *Machine) runQuantum(t *Task) error {
	e := env{m: m, proc: t.proc}
	remaining := m.cfg.Quantum
	for remaining > 0 {
		limit := remaining
		if limit > len(m.accBuf) {
			limit = len(m.accBuf)
		}
		n, done := t.batch.StepBatch(e, m.accBuf[:limit])
		if n > 0 {
			if err := m.execBatch(t, m.accBuf[:n]); err != nil {
				return err
			}
			remaining -= n
		}
		// The batch contract ends a batch when InitDone flips, so checking
		// once per batch observes the same counter snapshot the per-access
		// loop did.
		t.markInitBoundary()
		if done {
			t.done = true
			return nil
		}
		if n == 0 {
			return fmt.Errorf("vm: task %s stalled: empty batch without finishing", t.Name())
		}
	}
	return nil
}

// execBatch runs one batch of accesses through the full pipeline: main TLB,
// nested 2D walk, cache hierarchy, guest fault handling. Cycle and cache
// counters accumulate in locals and are written back to the task once per
// batch — the amortization that makes the batched path faster than the old
// per-access loop while producing bit-identical results.
func (m *Machine) execBatch(t *Task, accs []workload.Access) error {
	var (
		costs  = &m.cfg.Costs
		walker = m.walker
		hier   = m.hier
		tracer = m.tracer
		asid   = t.proc.ASID()
		gpt    = t.proc.PageTable()
		cpu    = t.cpu
		seq    = m.totalAccesses
	)
	var executed, dataC, transC, faultC uint64
	var served [cache.NumLevels]uint64
	recs := m.recBuf[:0]
	var stepErr error

batchLoop:
	for _, acc := range accs {
		seq++
		executed++
		var accTranslation, accData uint64
		var accServed cache.Level
		var accTLBHit bool
		// Fast path: probe the main TLB without setting up a 2D walk. A hit
		// resolves the access immediately; a miss falls into the walk/fault
		// retry loop. TranslateFast followed by TranslateSlow performs
		// exactly the probes the monolithic Translate did, so every TLB and
		// walker counter advances identically.
		out, fastHit := walker.TranslateFast(asid, acc.VA, acc.Write)
		for attempt := 0; ; attempt++ {
			if !fastHit {
				if attempt == 0 {
					out = walker.TranslateSlow(cpu, asid, gpt, acc.VA, acc.Write)
				} else {
					out = walker.Translate(cpu, asid, gpt, acc.VA, acc.Write)
				}
			}
			transC += out.Cycles
			accTranslation += out.Cycles
			if out.Ok {
				lv, lat := hier.Access(cpu, out.HPA)
				dataC += lat
				served[lv]++
				accData = lat
				accServed = lv
				accTLBHit = out.TLBHit
				break
			}
			if !out.GuestFault {
				stepErr = fmt.Errorf("vm: translation of %#x failed without fault", uint64(acc.VA))
				break batchLoop
			}
			if attempt >= 3 {
				stepErr = fmt.Errorf("vm: fault loop at %#x (task %s)", uint64(acc.VA), t.Name())
				break batchLoop
			}
			kind, ferr := t.proc.HandlePageFault(acc.VA, acc.Write)
			if ferr != nil {
				stepErr = fmt.Errorf("vm: task %s: %w", t.Name(), ferr)
				break batchLoop
			}
			if tracer != nil {
				// Faults interleave with accesses in stream order: flush
				// the pending access records first.
				if len(recs) > 0 {
					tracer.AccessBatch(recs)
					recs = recs[:0]
				}
				tracer.Fault(t.index, acc.VA, uint8(kind), seq)
			}
			// COW remaps change the translation; drop any stale TLB entry.
			if kind == guestos.FaultCOW {
				walker.InvalidatePage(asid, acc.VA)
			}
			faultC += costs.faultCost(kind)
			fastHit = false
		}
		if tracer != nil {
			recs = append(recs, AccessRecord{
				Task: t.index, VA: acc.VA, Write: acc.Write, TLBHit: accTLBHit,
				TranslationCycles: accTranslation, DataCycles: accData,
				Served: uint8(accServed), Seq: seq,
			})
		}
	}
	if tracer != nil && len(recs) > 0 {
		tracer.AccessBatch(recs)
	}
	// Write-back: counters for every access the batch executed, including a
	// partially executed access on the error path (matching the per-access
	// loop, which updated counters before failing).
	work := executed * costs.WorkCyclesPerAccess
	m.totalAccesses += executed
	t.Accesses += executed
	t.WorkCycles += work
	t.DataCycles += dataC
	t.TranslationCycles += transC
	t.FaultCycles += faultC
	t.Cycles += work + dataC + transC + faultC
	for i, hits := range served {
		t.DataServed[i] += hits
	}
	return stepErr
}

func (t *Task) markInitBoundary() {
	if !t.initSeen && t.spec.Prog.InitDone() {
		t.initSeen = true
		t.initSnapshot = t.counters()
	}
}

// TaskReport is the measured slice of one primary task.
type TaskReport struct {
	Name string
	// Whole-run totals.
	Cycles, WorkCycles, DataCycles, TranslationCycles, FaultCycles uint64
	Accesses                                                       uint64
	DataServed                                                     [cache.NumLevels]uint64
	// Steady-state totals (from the init boundary to the end) — the §3.3
	// measurement window.
	SteadyCycles, SteadyTranslationCycles, SteadyDataCycles uint64
	SteadyAccesses                                          uint64
	SteadyDataServed                                        [cache.NumLevels]uint64
	// Frag is the host-PT fragmentation of the task's process at the end
	// of the run.
	Frag metrics.FragReport
}

// SteadyWalkStats returns the walker counters accumulated after the
// primary-init boundary (the whole run if the boundary was never reached).
//
// Deprecated: use Observe().Steady.Walker.
func (m *Machine) SteadyWalkStats() nested.Stats {
	return m.steadyStats().Walker
}

// SteadyCacheHits returns per-level cache hit counts after the primary-init
// boundary.
//
// Deprecated: use Observe().Steady.Cache.Hits.
func (m *Machine) SteadyCacheHits() [cache.NumLevels]uint64 {
	return m.steadyStats().Cache.Hits
}

// Report assembles the post-run measurements for every primary task.
func (m *Machine) Report() []TaskReport {
	var out []TaskReport
	for _, t := range m.tasks {
		if t.spec.Role != RolePrimary {
			continue
		}
		r := TaskReport{
			Name:              t.Name(),
			Cycles:            t.Cycles,
			WorkCycles:        t.WorkCycles,
			DataCycles:        t.DataCycles,
			TranslationCycles: t.TranslationCycles,
			FaultCycles:       t.FaultCycles,
			Accesses:          t.Accesses,
			DataServed:        t.DataServed,
			Frag:              metrics.HostPTFragmentation(t.proc.PageTable(), m.hostVM.PageTable()),
		}
		snap := t.initSnapshot
		if !t.initSeen {
			snap = t.counters() // never reached steady state
		}
		r.SteadyCycles = t.Cycles - snap.cycles
		r.SteadyTranslationCycles = t.TranslationCycles - snap.translation
		r.SteadyDataCycles = t.DataCycles - snap.data
		r.SteadyAccesses = t.Accesses - snap.accesses
		for i := range r.SteadyDataServed {
			r.SteadyDataServed[i] = t.DataServed[i] - snap.dataServed[i]
		}
		out = append(out, r)
	}
	return out
}
