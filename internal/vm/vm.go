// Package vm assembles the full simulated stack of the paper's evaluation
// platform (§5): a host machine with a cache hierarchy, one QEMU/KVM-style
// virtual machine, a guest kernel with a selectable allocator policy, and a
// set of colocated workloads pinned to vCPUs.
//
// The machine interleaves the workloads' memory accesses round-robin in
// small quanta — the asynchronous page-fault interleaving that fragments
// the guest buddy allocator under colocation (§2.4). Every access runs the
// hardware pipeline: main TLB, nested 2D page walk through the simulated
// caches, guest page faults into the kernel, host faults into the
// hypervisor. Cycle accounting splits into work, data-access, translation,
// and fault-handling components so the paper's per-metric deltas can be
// reported.
package vm

import (
	"context"
	"fmt"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/cache"
	"ptemagnet/internal/core"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/hostos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/nested"
	"ptemagnet/internal/workload"
)

// CostModel prices the kernel-software events the cache simulator cannot
// time. Values are cycles. The defaults follow the shape of Linux fault
// costs: the trap + mapping overhead and the page-zeroing memset dominate;
// the allocator call itself is small — which is why the paper's §6.4
// microbenchmark sees PTEMagnet's fewer buddy calls as only a slight win.
type CostModel struct {
	// WorkCyclesPerAccess is the non-memory compute per access.
	WorkCyclesPerAccess uint64
	// TrapCycles is the base cost of any page fault (trap, VMA lookup,
	// return).
	TrapCycles uint64
	// ZeroPageCycles clears a freshly mapped anonymous page (per page,
	// identical in both policies).
	ZeroPageCycles uint64
	// BuddyPageCycles is one order-0 buddy allocator call.
	BuddyPageCycles uint64
	// BuddyGroupCycles is one order-3 (eight-page) buddy call plus PaRT
	// insertion.
	BuddyGroupCycles uint64
	// PaRTHitCycles is a PaRT lookup serving a fault from a reservation.
	PaRTHitCycles uint64
	// COWCopyCycles copies a page on a COW break.
	COWCopyCycles uint64
}

// DefaultCostModel returns the calibrated defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		WorkCyclesPerAccess: 7,
		TrapCycles:          1000,
		ZeroPageCycles:      1200,
		BuddyPageCycles:     120,
		BuddyGroupCycles:    180,
		PaRTHitCycles:       60,
		COWCopyCycles:       2400,
	}
}

// faultCost prices a resolved fault by kind.
func (c CostModel) faultCost(kind guestos.FaultKind) uint64 {
	switch kind {
	case guestos.FaultAlreadyMapped:
		return c.TrapCycles / 2
	case guestos.FaultDefault:
		return c.TrapCycles + c.BuddyPageCycles + c.ZeroPageCycles
	case guestos.FaultMagnetNew:
		return c.TrapCycles + c.BuddyGroupCycles + c.ZeroPageCycles
	case guestos.FaultMagnetHit:
		return c.TrapCycles + c.PaRTHitCycles + c.ZeroPageCycles
	case guestos.FaultParentClaim:
		return c.TrapCycles + c.PaRTHitCycles + c.ZeroPageCycles
	case guestos.FaultCOW:
		return c.TrapCycles + c.BuddyPageCycles + c.COWCopyCycles
	case guestos.FaultCAHit:
		// A targeted AllocAt costs about as much as a stock buddy call.
		return c.TrapCycles + c.BuddyPageCycles + c.ZeroPageCycles
	case guestos.FaultTHP:
		// One trap and one order-9 buddy call, but all 512 constituent
		// pages (one full PT node's worth) must be zeroed up front.
		return c.TrapCycles + c.BuddyGroupCycles + arch.PTEntriesPerNode*c.ZeroPageCycles
	default:
		return c.TrapCycles
	}
}

// Config describes the simulated platform.
type Config struct {
	// HostMemBytes / GuestMemBytes size the two physical memories
	// (default 512MB / 256MB — the paper's 128GB/64GB at 1/256 scale).
	HostMemBytes  uint64
	GuestMemBytes uint64
	// NumCPUs is the vCPU count; workloads are pinned round-robin.
	NumCPUs int
	// Cache overrides the hierarchy (zero value → cache.DefaultConfig).
	Cache cache.Config
	// Walker overrides translation machinery (zero → nested.DefaultConfig).
	Walker nested.Config
	// Policy selects the guest allocator; Magnet configures PTEMagnet.
	Policy guestos.AllocPolicy
	Magnet core.Config
	// EnableThresholdBytes gates PTEMagnet per process (§4.4).
	EnableThresholdBytes uint64
	// ReclaimWatermark forwards to the guest kernel (§4.3).
	ReclaimWatermark float64
	// Costs prices kernel events (zero → DefaultCostModel).
	Costs CostModel
	// Quantum is the number of accesses one task executes per scheduling
	// turn (small → aggressive fault interleaving). Zero → 8.
	Quantum int
	// PTLevels selects the page-table depth for both the guest and the
	// host dimension: 4 (default) or 5 (LA57 + 5-level EPT, §2.5).
	PTLevels int
	// Seed drives kernel randomness.
	Seed int64
}

// DefaultConfig returns the scaled-down mirror of the paper's Table 2
// platform.
func DefaultConfig() Config {
	return Config{
		HostMemBytes:  512 << 20,
		GuestMemBytes: 256 << 20,
		NumCPUs:       8,
		Policy:        guestos.PolicyDefault,
	}
}

// Role classifies tasks: primaries are measured; co-runners only generate
// allocator pressure and stop when the primaries finish.
type Role uint8

const (
	// RolePrimary marks a measured benchmark.
	RolePrimary Role = iota
	// RoleCorunner marks a background co-runner.
	RoleCorunner
)

// TaskSpec declares one workload to run.
type TaskSpec struct {
	Prog workload.Program
	Role Role
}

// Task is a scheduled workload bound to a guest process and vCPU.
type Task struct {
	spec  TaskSpec
	proc  *guestos.Process
	cpu   int
	index int
	done  bool

	// Cycle accounting, split by component.
	Cycles            uint64
	WorkCycles        uint64
	DataCycles        uint64
	TranslationCycles uint64
	FaultCycles       uint64
	Accesses          uint64
	DataServed        [cache.NumLevels]uint64

	// initSnapshot captures the counters at the task's init boundary.
	initSnapshot taskCounters
	initSeen     bool
}

type taskCounters struct {
	cycles, work, data, translation, fault, accesses uint64
	dataServed                                       [cache.NumLevels]uint64
}

func (t *Task) counters() taskCounters {
	return taskCounters{
		cycles: t.Cycles, work: t.WorkCycles, data: t.DataCycles,
		translation: t.TranslationCycles, fault: t.FaultCycles,
		accesses: t.Accesses, dataServed: t.DataServed,
	}
}

// Name returns the underlying program name.
func (t *Task) Name() string { return t.spec.Prog.Name() }

// Process returns the guest process executing the task.
func (t *Task) Process() *guestos.Process { return t.proc }

// env adapts a guest process to the workload.Env interface, wiring TLB
// shootdowns into frees.
type env struct {
	m    *Machine
	proc *guestos.Process
}

func (e env) Mmap(bytes uint64) (arch.VirtAddr, error) { return e.proc.Mmap(bytes) }

func (e env) Free(va arch.VirtAddr, bytes uint64) error {
	if err := e.proc.Free(va, bytes); err != nil {
		return err
	}
	start := va.PageBase()
	end := arch.VirtAddr(arch.AlignUp(uint64(va)+bytes, arch.PageSize))
	for page := start; page < end; page += arch.PageSize {
		e.m.walker.InvalidatePage(e.proc.ASID(), page)
	}
	return nil
}

// Tracer receives the machine's event stream (see internal/trace for a
// binary recorder). Methods are called synchronously on the simulation
// thread; implementations should be cheap.
type Tracer interface {
	// Access reports one executed memory access.
	Access(task int, va arch.VirtAddr, write, tlbHit bool, translationCycles, dataCycles uint64, served uint8, seq uint64)
	// Fault reports one resolved guest page fault.
	Fault(task int, va arch.VirtAddr, kind uint8, seq uint64)
}

// Machine is the assembled platform.
type Machine struct {
	cfg    Config
	host   *hostos.Kernel
	hostVM *hostos.VM
	guest  *guestos.Kernel
	hier   *cache.Hierarchy
	walker *nested.Walker
	tasks  []*Task

	totalAccesses uint64
	unusedSeries  metrics.Series
	tracer        Tracer

	// Steady-window snapshots, taken when every primary reaches its init
	// boundary (the §3.3 measurement start).
	steadySnapTaken bool
	walkAtInit      nested.Stats
	hierAtInit      [cache.NumLevels]uint64
}

// New builds a machine.
func New(cfg Config) (*Machine, error) {
	if cfg.HostMemBytes == 0 || cfg.GuestMemBytes == 0 {
		return nil, fmt.Errorf("vm: memory sizes must be set")
	}
	if cfg.NumCPUs <= 0 {
		cfg.NumCPUs = 8
	}
	if cfg.Cache.NumCPUs == 0 {
		cfg.Cache = cache.DefaultConfig(cfg.NumCPUs)
	}
	if cfg.Walker.TLB.L1.Entries == 0 {
		cfg.Walker = nested.DefaultConfig()
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCostModel()
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 8
	}
	if cfg.PTLevels == 0 {
		cfg.PTLevels = 4
	}
	host := hostos.NewKernel(cfg.HostMemBytes)
	hostVM, err := host.CreateVMWithLevels(cfg.GuestMemBytes, cfg.PTLevels)
	if err != nil {
		return nil, err
	}
	guest := guestos.NewKernel(guestos.Config{
		MemBytes:             cfg.GuestMemBytes,
		Policy:               cfg.Policy,
		Magnet:               cfg.Magnet,
		EnableThresholdBytes: cfg.EnableThresholdBytes,
		ReclaimWatermark:     cfg.ReclaimWatermark,
		Seed:                 cfg.Seed,
		PTLevels:             cfg.PTLevels,
	})
	hier := cache.NewHierarchy(cfg.Cache)
	return &Machine{
		cfg:    cfg,
		host:   host,
		hostVM: hostVM,
		guest:  guest,
		hier:   hier,
		walker: nested.New(cfg.Walker, hier, hostVM),
	}, nil
}

// Guest exposes the guest kernel.
func (m *Machine) Guest() *guestos.Kernel { return m.guest }

// HostVM exposes the VM as the host sees it.
func (m *Machine) HostVM() *hostos.VM { return m.hostVM }

// Hierarchy exposes the cache hierarchy.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Walker exposes the nested walker.
func (m *Machine) Walker() *nested.Walker { return m.walker }

// UnusedSeries returns the sampled §6.2 gauge.
func (m *Machine) UnusedSeries() *metrics.Series { return &m.unusedSeries }

// SetTracer installs an event-stream recorder for subsequent Run calls
// (nil disables tracing).
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// AddTask spawns a guest process for prog and schedules it. Tasks are
// pinned to vCPUs round-robin in creation order, like the paper pinning
// application and co-runner threads to distinct cores.
func (m *Machine) AddTask(prog workload.Program, role Role) (*Task, error) {
	proc, err := m.guest.Spawn(prog.Name(), prog.FootprintBytes())
	if err != nil {
		return nil, err
	}
	t := &Task{
		spec:  TaskSpec{Prog: prog, Role: role},
		proc:  proc,
		cpu:   len(m.tasks) % m.cfg.NumCPUs,
		index: len(m.tasks),
	}
	if err := prog.Setup(env{m: m, proc: proc}); err != nil {
		return nil, err
	}
	m.tasks = append(m.tasks, t)
	return t, nil
}

// Tasks returns all scheduled tasks.
func (m *Machine) Tasks() []*Task { return m.tasks }

// RunOptions control a Run.
type RunOptions struct {
	// StopCorunnersAtPrimaryInit kills co-runner tasks the moment every
	// primary finishes initialization — the §3.3 Table 1 methodology
	// (fragmentation is left behind; LLC contention is removed).
	StopCorunnersAtPrimaryInit bool
	// SampleEvery samples the unused-reserved-pages gauge (§6.2) every N
	// total accesses. Zero disables sampling.
	SampleEvery uint64
	// MaxAccesses aborts a runaway run (safety net). Zero → no limit.
	MaxAccesses uint64
}

// Run interleaves all tasks until every primary finishes. Co-runners are
// stopped at the end (or at the primary-init boundary per options). It
// returns an error only for simulation bugs (workload accessing unmapped
// regions, guest OOM).
func (m *Machine) Run(opts RunOptions) error {
	return m.RunContext(context.Background(), opts)
}

// RunContext is Run with cancellation: the scheduler polls ctx between
// rounds (one quantum of every task), so a canceled run stops within a
// handful of accesses and returns the context's error. This is the
// cancellation point for every workload inner loop — workloads only
// execute inside scheduler rounds.
func (m *Machine) RunContext(ctx context.Context, opts RunOptions) error {
	primariesLeft := 0
	for _, t := range m.tasks {
		if t.spec.Role == RolePrimary {
			primariesLeft++
		}
	}
	if primariesLeft == 0 {
		return fmt.Errorf("vm: no primary task")
	}
	corunnersActive := true
	var nextSample uint64
	for primariesLeft > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("vm: run canceled: %w", err)
		}
		progressed := false
		for _, t := range m.tasks {
			if t.done {
				continue
			}
			if t.spec.Role == RoleCorunner && !corunnersActive {
				continue
			}
			for q := 0; q < m.cfg.Quantum; q++ {
				finished, err := m.step(t)
				if err != nil {
					return err
				}
				if finished {
					t.done = true
					if t.spec.Role == RolePrimary {
						primariesLeft--
					}
					break
				}
			}
			progressed = true
		}
		if !progressed {
			return fmt.Errorf("vm: scheduler stalled with %d primaries left", primariesLeft)
		}
		if !m.steadySnapTaken && m.primariesInitDone() {
			m.steadySnapTaken = true
			m.walkAtInit = m.walker.Snapshot()
			m.hierAtInit = m.hier.HitCounts()
			if opts.StopCorunnersAtPrimaryInit {
				corunnersActive = false
			}
		}
		if opts.SampleEvery > 0 && m.totalAccesses >= nextSample {
			m.unusedSeries.Record(m.totalAccesses, int64(m.guest.UnusedReservedPages()))
			nextSample = m.totalAccesses + opts.SampleEvery
		}
		if opts.MaxAccesses > 0 && m.totalAccesses > opts.MaxAccesses {
			return fmt.Errorf("vm: exceeded access budget %d", opts.MaxAccesses)
		}
	}
	if opts.SampleEvery > 0 {
		// Always close the series with the final state, so short runs
		// still report their peak.
		m.unusedSeries.Record(m.totalAccesses, int64(m.guest.UnusedReservedPages()))
	}
	return nil
}

func (m *Machine) primariesInitDone() bool {
	for _, t := range m.tasks {
		if t.spec.Role == RolePrimary && !t.done && !t.spec.Prog.InitDone() {
			return false
		}
	}
	return true
}

// step executes one access of t through the full pipeline.
func (m *Machine) step(t *Task) (finished bool, err error) {
	acc, done := t.spec.Prog.Step(env{m: m, proc: t.proc})
	if done {
		t.markInitBoundary()
		return true, nil
	}
	m.totalAccesses++
	t.Accesses++
	t.WorkCycles += m.cfg.Costs.WorkCyclesPerAccess
	t.Cycles += m.cfg.Costs.WorkCyclesPerAccess

	var accTranslation, accData uint64
	var accServed cache.Level
	var accTLBHit bool
	for attempt := 0; ; attempt++ {
		out := m.walker.Translate(t.cpu, t.proc.ASID(), t.proc.PageTable(), acc.VA, acc.Write)
		t.TranslationCycles += out.Cycles
		t.Cycles += out.Cycles
		accTranslation += out.Cycles
		if out.Ok {
			lv, lat := m.hier.Access(t.cpu, out.HPA)
			t.DataCycles += lat
			t.Cycles += lat
			t.DataServed[lv]++
			accData = lat
			accServed = lv
			accTLBHit = out.TLBHit
			break
		}
		if !out.GuestFault {
			return false, fmt.Errorf("vm: translation of %#x failed without fault", uint64(acc.VA))
		}
		if attempt >= 3 {
			return false, fmt.Errorf("vm: fault loop at %#x (task %s)", uint64(acc.VA), t.Name())
		}
		kind, ferr := t.proc.HandlePageFault(acc.VA, acc.Write)
		if ferr != nil {
			return false, fmt.Errorf("vm: task %s: %w", t.Name(), ferr)
		}
		if m.tracer != nil {
			m.tracer.Fault(t.index, acc.VA, uint8(kind), m.totalAccesses)
		}
		// COW remaps change the translation; drop any stale TLB entry.
		if kind == guestos.FaultCOW {
			m.walker.InvalidatePage(t.proc.ASID(), acc.VA)
		}
		cost := m.cfg.Costs.faultCost(kind)
		t.FaultCycles += cost
		t.Cycles += cost
	}
	if m.tracer != nil {
		m.tracer.Access(t.index, acc.VA, acc.Write, accTLBHit,
			accTranslation, accData, uint8(accServed), m.totalAccesses)
	}
	t.markInitBoundary()
	return false, nil
}

func (t *Task) markInitBoundary() {
	if !t.initSeen && t.spec.Prog.InitDone() {
		t.initSeen = true
		t.initSnapshot = t.counters()
	}
}

// TaskReport is the measured slice of one primary task.
type TaskReport struct {
	Name string
	// Whole-run totals.
	Cycles, WorkCycles, DataCycles, TranslationCycles, FaultCycles uint64
	Accesses                                                       uint64
	DataServed                                                     [cache.NumLevels]uint64
	// Steady-state totals (from the init boundary to the end) — the §3.3
	// measurement window.
	SteadyCycles, SteadyTranslationCycles, SteadyDataCycles uint64
	SteadyAccesses                                          uint64
	SteadyDataServed                                        [cache.NumLevels]uint64
	// Frag is the host-PT fragmentation of the task's process at the end
	// of the run.
	Frag metrics.FragReport
}

// SteadyWalkStats returns the walker counters accumulated after the
// primary-init boundary (the whole run if the boundary was never reached).
func (m *Machine) SteadyWalkStats() nested.Stats {
	if !m.steadySnapTaken {
		return m.walker.Snapshot()
	}
	return m.walker.Snapshot().Delta(m.walkAtInit)
}

// SteadyCacheHits returns per-level cache hit counts after the primary-init
// boundary.
func (m *Machine) SteadyCacheHits() [cache.NumLevels]uint64 {
	hits := m.hier.HitCounts()
	if m.steadySnapTaken {
		for i := range hits {
			hits[i] -= m.hierAtInit[i]
		}
	}
	return hits
}

// Report assembles the post-run measurements for every primary task.
func (m *Machine) Report() []TaskReport {
	var out []TaskReport
	for _, t := range m.tasks {
		if t.spec.Role != RolePrimary {
			continue
		}
		r := TaskReport{
			Name:              t.Name(),
			Cycles:            t.Cycles,
			WorkCycles:        t.WorkCycles,
			DataCycles:        t.DataCycles,
			TranslationCycles: t.TranslationCycles,
			FaultCycles:       t.FaultCycles,
			Accesses:          t.Accesses,
			DataServed:        t.DataServed,
			Frag:              metrics.HostPTFragmentation(t.proc.PageTable(), m.hostVM.PageTable()),
		}
		snap := t.initSnapshot
		if !t.initSeen {
			snap = t.counters() // never reached steady state
		}
		r.SteadyCycles = t.Cycles - snap.cycles
		r.SteadyTranslationCycles = t.TranslationCycles - snap.translation
		r.SteadyDataCycles = t.DataCycles - snap.data
		r.SteadyAccesses = t.Accesses - snap.accesses
		for i := range r.SteadyDataServed {
			r.SteadyDataServed[i] = t.DataServed[i] - snap.dataServed[i]
		}
		out = append(out, r)
	}
	return out
}
