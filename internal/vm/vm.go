// Package vm assembles the full simulated stack of the paper's evaluation
// platform (§5): a host machine with a cache hierarchy, one QEMU/KVM-style
// virtual machine, a guest kernel with a selectable allocator policy, and a
// set of colocated workloads pinned to vCPUs.
//
// The machine interleaves the workloads' memory accesses round-robin in
// small quanta — the asynchronous page-fault interleaving that fragments
// the guest buddy allocator under colocation (§2.4). Every access runs the
// hardware pipeline: main TLB, nested 2D page walk through the simulated
// caches, guest page faults into the kernel, host faults into the
// hypervisor. Cycle accounting splits into work, data-access, translation,
// and fault-handling components so the paper's per-metric deltas can be
// reported.
package vm

import (
	"context"
	"fmt"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/balloon"
	"ptemagnet/internal/cache"
	"ptemagnet/internal/core"
	"ptemagnet/internal/faults"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/hostos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/nested"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/workload"
)

// CostModel prices the kernel-software events the cache simulator cannot
// time. Values are cycles. The defaults follow the shape of Linux fault
// costs: the trap + mapping overhead and the page-zeroing memset dominate;
// the allocator call itself is small — which is why the paper's §6.4
// microbenchmark sees PTEMagnet's fewer buddy calls as only a slight win.
type CostModel struct {
	// WorkCyclesPerAccess is the non-memory compute per access.
	WorkCyclesPerAccess uint64
	// TrapCycles is the base cost of any page fault (trap, VMA lookup,
	// return).
	TrapCycles uint64
	// ZeroPageCycles clears a freshly mapped anonymous page (per page,
	// identical in both policies).
	ZeroPageCycles uint64
	// BuddyPageCycles is one order-0 buddy allocator call.
	BuddyPageCycles uint64
	// BuddyGroupCycles is one order-3 (eight-page) buddy call plus PaRT
	// insertion.
	BuddyGroupCycles uint64
	// PaRTHitCycles is a PaRT lookup serving a fault from a reservation.
	PaRTHitCycles uint64
	// COWCopyCycles copies a page on a COW break.
	COWCopyCycles uint64
}

// DefaultCostModel returns the calibrated defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		WorkCyclesPerAccess: 7,
		TrapCycles:          1000,
		ZeroPageCycles:      1200,
		BuddyPageCycles:     120,
		BuddyGroupCycles:    180,
		PaRTHitCycles:       60,
		COWCopyCycles:       2400,
	}
}

// faultCost prices a resolved fault by kind.
func (c CostModel) faultCost(kind guestos.FaultKind) uint64 {
	switch kind {
	case guestos.FaultAlreadyMapped:
		return c.TrapCycles / 2
	case guestos.FaultDefault:
		return c.TrapCycles + c.BuddyPageCycles + c.ZeroPageCycles
	case guestos.FaultMagnetNew:
		return c.TrapCycles + c.BuddyGroupCycles + c.ZeroPageCycles
	case guestos.FaultMagnetHit:
		return c.TrapCycles + c.PaRTHitCycles + c.ZeroPageCycles
	case guestos.FaultParentClaim:
		return c.TrapCycles + c.PaRTHitCycles + c.ZeroPageCycles
	case guestos.FaultCOW:
		return c.TrapCycles + c.BuddyPageCycles + c.COWCopyCycles
	case guestos.FaultCAHit:
		// A targeted AllocAt costs about as much as a stock buddy call.
		return c.TrapCycles + c.BuddyPageCycles + c.ZeroPageCycles
	case guestos.FaultTHP:
		// One trap and one order-9 buddy call, but all 512 constituent
		// pages (one full PT node's worth) must be zeroed up front.
		return c.TrapCycles + c.BuddyGroupCycles + arch.PTEntriesPerNode*c.ZeroPageCycles
	default:
		return c.TrapCycles
	}
}

// GuestConfig describes one tenant VM: its guest-physical memory size and
// the guest kernel's allocator policy. Everything hardware-shaped (caches,
// walker geometry, costs, vCPUs) lives in HostConfig — tenants share the
// host's hardware, they only differ in size and software policy.
type GuestConfig struct {
	// MemBytes sizes the guest-physical memory. Must not exceed the host's
	// memory; the *sum* across guests may (host frames are allocated
	// lazily, so overcommit is the normal cloud configuration).
	MemBytes uint64
	// Policy selects the guest allocator; Magnet configures PTEMagnet.
	Policy guestos.AllocPolicy
	Magnet core.Config
	// EnableThresholdBytes gates PTEMagnet per process (§4.4).
	EnableThresholdBytes uint64
	// ReclaimWatermark forwards to the guest kernel (§4.3).
	ReclaimWatermark float64
	// Seed drives this guest kernel's randomness.
	Seed int64
}

// HostConfig describes a multi-tenant simulated platform: the shared host
// hardware plus one GuestConfig per VM packed onto it.
type HostConfig struct {
	// HostMemBytes sizes host-physical memory.
	HostMemBytes uint64
	// NumCPUs is the vCPU count; tasks are pinned round-robin across it.
	NumCPUs int
	// Cache overrides the hierarchy (zero value → cache.DefaultConfig).
	Cache cache.Config
	// Walker overrides translation machinery (zero → nested.DefaultConfig).
	// Every guest gets its own walker (private TLBs and walk caches) built
	// from this one geometry, sharing the host's data caches.
	Walker nested.Config
	// Costs prices kernel events (zero → DefaultCostModel).
	Costs CostModel
	// Quantum is the number of accesses one task executes per scheduling
	// turn (small → aggressive fault interleaving). Zero → 8.
	Quantum int
	// PTLevels selects the page-table depth for both the guest and the
	// host dimension: 4 (default) or 5 (LA57 + 5-level EPT, §2.5).
	PTLevels int
	// Balloon arms the host's overcommit pressure controller. The zero
	// value leaves the machine balloon-free with the allocation hot path
	// untouched; set Enabled for hosts whose guests' combined memory may
	// exceed HostMemBytes.
	Balloon balloon.Config
	// Guests lists the VMs to boot, in VM-id order.
	Guests []GuestConfig
}

// Validate checks the host config and every guest config. Like
// Config.Validate, zero values of optional fields always pass.
func (c HostConfig) Validate() error {
	if c.HostMemBytes == 0 {
		return &ConfigError{Field: "HostMemBytes", Value: c.HostMemBytes, Reason: "must be set"}
	}
	if c.NumCPUs < 0 {
		return &ConfigError{Field: "NumCPUs", Value: c.NumCPUs, Reason: "must be positive (zero selects the default)"}
	}
	if c.Quantum < 0 {
		return &ConfigError{Field: "Quantum", Value: c.Quantum, Reason: "must be positive (zero selects the default)"}
	}
	if c.PTLevels != 0 && c.PTLevels != 4 && c.PTLevels != 5 {
		return &ConfigError{Field: "PTLevels", Value: c.PTLevels, Reason: "must be 4 or 5 (zero selects the default)"}
	}
	if len(c.Guests) == 0 {
		return &ConfigError{Field: "Guests", Value: len(c.Guests), Reason: "at least one guest is required"}
	}
	for i, g := range c.Guests {
		if err := g.validate(c.HostMemBytes, fmt.Sprintf("Guests[%d].", i)); err != nil {
			return err
		}
	}
	return nil
}

// validate checks one guest config against the host memory size.
func (g GuestConfig) validate(hostMemBytes uint64, prefix string) error {
	if g.MemBytes == 0 {
		return &ConfigError{Field: prefix + "MemBytes", Value: g.MemBytes, Reason: "must be set"}
	}
	if g.MemBytes > hostMemBytes {
		return &ConfigError{Field: prefix + "MemBytes", Value: g.MemBytes, Reason: "guest memory cannot exceed host memory"}
	}
	if g.ReclaimWatermark < 0 || g.ReclaimWatermark > 1 {
		return &ConfigError{Field: prefix + "ReclaimWatermark", Value: g.ReclaimWatermark, Reason: "must be in [0, 1]"}
	}
	if g.Magnet.GroupPages != 0 {
		if err := g.Magnet.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Config describes a single-VM simulated platform — the original shape of
// the package, kept as a thin adapter over HostConfig with exactly one
// guest. New multi-tenant code should use HostConfig directly.
type Config struct {
	// HostMemBytes / GuestMemBytes size the two physical memories
	// (default 512MB / 256MB — the paper's 128GB/64GB at 1/256 scale).
	HostMemBytes  uint64
	GuestMemBytes uint64
	// NumCPUs is the vCPU count; workloads are pinned round-robin.
	NumCPUs int
	// Cache overrides the hierarchy (zero value → cache.DefaultConfig).
	Cache cache.Config
	// Walker overrides translation machinery (zero → nested.DefaultConfig).
	Walker nested.Config
	// Policy selects the guest allocator; Magnet configures PTEMagnet.
	Policy guestos.AllocPolicy
	Magnet core.Config
	// EnableThresholdBytes gates PTEMagnet per process (§4.4).
	EnableThresholdBytes uint64
	// ReclaimWatermark forwards to the guest kernel (§4.3).
	ReclaimWatermark float64
	// Costs prices kernel events (zero → DefaultCostModel).
	Costs CostModel
	// Quantum is the number of accesses one task executes per scheduling
	// turn (small → aggressive fault interleaving). Zero → 8.
	Quantum int
	// PTLevels selects the page-table depth for both the guest and the
	// host dimension: 4 (default) or 5 (LA57 + 5-level EPT, §2.5).
	PTLevels int
	// Balloon arms the host's overcommit pressure controller (zero stays
	// balloon-free).
	Balloon balloon.Config
	// Seed drives kernel randomness.
	Seed int64
}

// ConfigError is the typed validation failure returned by Config.Validate.
// It aliases the core package's type so errors.As matches failures from
// either layer (a bad Magnet sub-config surfaces as the same type).
type ConfigError = core.ConfigError

// Validate checks cfg for explicitly invalid values. The zero value of every
// optional field is a documented default (filled in by New) and always
// passes; Validate rejects only contradictions: unset memory sizes, a guest
// larger than its host, negative counts, unknown page-table depths,
// out-of-range watermarks, and an invalid Magnet configuration (when one is
// set at all).
func (c Config) Validate() error {
	if c.HostMemBytes == 0 {
		return &ConfigError{Field: "HostMemBytes", Value: c.HostMemBytes, Reason: "must be set"}
	}
	if c.GuestMemBytes == 0 {
		return &ConfigError{Field: "GuestMemBytes", Value: c.GuestMemBytes, Reason: "must be set"}
	}
	if c.GuestMemBytes > c.HostMemBytes {
		return &ConfigError{Field: "GuestMemBytes", Value: c.GuestMemBytes, Reason: "guest memory cannot exceed host memory"}
	}
	if c.NumCPUs < 0 {
		return &ConfigError{Field: "NumCPUs", Value: c.NumCPUs, Reason: "must be positive (zero selects the default)"}
	}
	if c.Quantum < 0 {
		return &ConfigError{Field: "Quantum", Value: c.Quantum, Reason: "must be positive (zero selects the default)"}
	}
	if c.PTLevels != 0 && c.PTLevels != 4 && c.PTLevels != 5 {
		return &ConfigError{Field: "PTLevels", Value: c.PTLevels, Reason: "must be 4 or 5 (zero selects the default)"}
	}
	if c.ReclaimWatermark < 0 || c.ReclaimWatermark > 1 {
		return &ConfigError{Field: "ReclaimWatermark", Value: c.ReclaimWatermark, Reason: "must be in [0, 1]"}
	}
	if c.Magnet.GroupPages != 0 {
		if err := c.Magnet.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Host converts the legacy single-VM config into the equivalent
// one-guest HostConfig. New(c) and NewHost(c.Host()) build identical
// machines.
func (c Config) Host() HostConfig {
	return HostConfig{
		HostMemBytes: c.HostMemBytes,
		NumCPUs:      c.NumCPUs,
		Cache:        c.Cache,
		Walker:       c.Walker,
		Costs:        c.Costs,
		Quantum:      c.Quantum,
		PTLevels:     c.PTLevels,
		Balloon:      c.Balloon,
		Guests: []GuestConfig{{
			MemBytes:             c.GuestMemBytes,
			Policy:               c.Policy,
			Magnet:               c.Magnet,
			EnableThresholdBytes: c.EnableThresholdBytes,
			ReclaimWatermark:     c.ReclaimWatermark,
			Seed:                 c.Seed,
		}},
	}
}

// DefaultConfig returns the scaled-down mirror of the paper's Table 2
// platform.
func DefaultConfig() Config {
	return Config{
		HostMemBytes:  512 << 20,
		GuestMemBytes: 256 << 20,
		NumCPUs:       8,
		Policy:        guestos.PolicyDefault,
	}
}

// Role classifies tasks: primaries are measured; co-runners only generate
// allocator pressure and stop when the primaries finish.
type Role uint8

const (
	// RolePrimary marks a measured benchmark.
	RolePrimary Role = iota
	// RoleCorunner marks a background co-runner.
	RoleCorunner
)

// TaskSpec declares one workload to run.
type TaskSpec struct {
	Prog workload.Program
	Role Role
}

// Task is a scheduled workload bound to a guest process and vCPU.
type Task struct {
	spec  TaskSpec
	batch workload.BatchProgram
	guest *Guest
	proc  *guestos.Process
	cpu   int
	index int
	done  bool

	// Cycle accounting, split by component.
	Cycles            uint64
	WorkCycles        uint64
	DataCycles        uint64
	TranslationCycles uint64
	FaultCycles       uint64
	Accesses          uint64
	DataServed        [cache.NumLevels]uint64

	// initSnapshot captures the counters at the task's init boundary.
	initSnapshot taskCounters
	initSeen     bool
}

type taskCounters struct {
	cycles, work, data, translation, fault, accesses uint64
	dataServed                                       [cache.NumLevels]uint64
}

func (t *Task) counters() taskCounters {
	return taskCounters{
		cycles: t.Cycles, work: t.WorkCycles, data: t.DataCycles,
		translation: t.TranslationCycles, fault: t.FaultCycles,
		accesses: t.Accesses, dataServed: t.DataServed,
	}
}

// Name returns the underlying program name.
func (t *Task) Name() string { return t.spec.Prog.Name() }

// Role returns the task's scheduling role.
func (t *Task) Role() Role { return t.spec.Role }

// Done reports whether the task's program has finished.
func (t *Task) Done() bool { return t.done }

// Process returns the guest process executing the task.
func (t *Task) Process() *guestos.Process { return t.proc }

// GuestIndex returns the index of the guest the task runs in.
func (t *Task) GuestIndex() int { return t.guest.index }

// env adapts a guest process to the workload.Env interface, wiring TLB
// shootdowns (against the owning guest's private walker) into frees.
type env struct {
	g    *Guest
	proc *guestos.Process
}

func (e env) Mmap(bytes uint64) (arch.VirtAddr, error) { return e.proc.Mmap(bytes) }

func (e env) Free(va arch.VirtAddr, bytes uint64) error {
	if err := e.proc.Free(va, bytes); err != nil {
		return err
	}
	start := va.PageBase()
	end := arch.VirtAddr(arch.AlignUp(uint64(va)+bytes, arch.PageSize))
	e.g.walker.InvalidateRange(e.proc.ASID(), start, end)
	return nil
}

// AccessRecord is one executed memory access as delivered to a Tracer.
// Seq is the machine-global access sequence number (1-based), identical to
// the seq the legacy per-event stream carried.
type AccessRecord struct {
	Task              int
	VA                arch.VirtAddr
	Write             bool
	TLBHit            bool
	TranslationCycles uint64
	DataCycles        uint64
	Served            uint8
	Seq               uint64
}

// Tracer receives the machine's event stream (see internal/trace for a
// binary recorder). Methods are called synchronously on the simulation
// thread; implementations should be cheap.
//
// Accesses arrive in batches in execution order. Faults interleave in stream
// order: before a Fault with sequence number s is delivered, every access
// record with Seq < s has already been delivered (the machine flushes the
// pending batch first), so a per-event recorder fed through PerAccess sees
// the exact event order the legacy interface produced.
type Tracer interface {
	// AccessBatch reports executed accesses in order. The slice is reused
	// between calls; implementations must copy anything they retain.
	AccessBatch(recs []AccessRecord)
	// Fault reports one resolved guest page fault.
	Fault(task int, va arch.VirtAddr, kind uint8, seq uint64)
}

// AccessTracer is the legacy per-event tracing interface. Wrap one with
// PerAccess to install it on a Machine.
type AccessTracer interface {
	// Access reports one executed memory access.
	Access(task int, va arch.VirtAddr, write, tlbHit bool, translationCycles, dataCycles uint64, served uint8, seq uint64)
	// Fault reports one resolved guest page fault.
	Fault(task int, va arch.VirtAddr, kind uint8, seq uint64)
}

// PerAccess adapts a legacy per-event AccessTracer to the batched Tracer
// interface, fanning each batch out one call per access.
func PerAccess(t AccessTracer) Tracer { return perAccess{t: t} }

type perAccess struct{ t AccessTracer }

func (p perAccess) AccessBatch(recs []AccessRecord) {
	for _, r := range recs {
		p.t.Access(r.Task, r.VA, r.Write, r.TLBHit, r.TranslationCycles, r.DataCycles, r.Served, r.Seq)
	}
}

func (p perAccess) Fault(task int, va arch.VirtAddr, kind uint8, seq uint64) {
	p.t.Fault(task, va, kind, seq)
}

// Guest is one tenant VM's software stack on the shared host: the VM as
// the host sees it, the guest kernel with its allocator policy, the VM's
// private translation machinery (TLBs, nested TLB, walk caches), and the
// tasks pinned to its vCPUs. Guests share the host's physical memory,
// buddy allocator, data-cache hierarchy, and cost model through the
// enclosing Machine.
type Guest struct {
	m      *Machine
	index  int
	cfg    GuestConfig
	hostVM *hostos.VM
	kernel *guestos.Kernel
	walker *nested.Walker
	tasks  []*Task
	alive  bool

	// accesses counts this guest's executed accesses (the machine total is
	// the sum across guests).
	accesses uint64

	// migratedOut marks the frozen placeholder a migrated guest leaves in
	// its source machine's slot: the real Guest moved on (taking kernel,
	// walker, and tasks with it), and the placeholder reports the frozen
	// stats below instead of touching the departed components.
	migratedOut bool
	frozen      GuestStats
	frozenVMID  int
}

// Index returns the guest's position in creation order (0-based, stable
// across teardown — dead guests keep their slot).
func (g *Guest) Index() int { return g.index }

// Kernel exposes the guest kernel.
func (g *Guest) Kernel() *guestos.Kernel { return g.kernel }

// HostVM exposes the VM as the host sees it.
func (g *Guest) HostVM() *hostos.VM { return g.hostVM }

// Walker exposes the guest's private nested walker.
func (g *Guest) Walker() *nested.Walker { return g.walker }

// Tasks returns the guest's tasks in creation order.
func (g *Guest) Tasks() []*Task { return g.tasks }

// Alive reports whether the guest has not been destroyed.
func (g *Guest) Alive() bool { return g.alive }

// Accesses returns the guest's executed access count.
func (g *Guest) Accesses() uint64 { return g.accesses }

// Machine returns the machine currently hosting the guest, or nil while the
// guest is detached mid-migration.
func (g *Guest) Machine() *Machine { return g.m }

// Config returns the guest's configuration.
func (g *Guest) Config() GuestConfig { return g.cfg }

// Machine is the assembled platform: the shared host resources (host
// kernel + physical memory, data-cache hierarchy, cost model) and the N
// guest stacks multiplexed onto them by one global quantum scheduler.
type Machine struct {
	cfg    HostConfig
	host   *hostos.Kernel
	hier   *cache.Hierarchy
	guests []*Guest
	// tasks is the machine-global flat task list in creation order,
	// spanning every guest; Task.index is the position here.
	tasks []*Task

	totalAccesses uint64
	unusedSeries  metrics.Series
	tracer        Tracer

	// Reused batch scratch: accesses filled by StepBatch and the trace
	// records accumulated while executing them. Sized once in New.
	accBuf []workload.Access
	recBuf []AccessRecord

	// Steady-window snapshot, taken when every primary reaches its init
	// boundary (the §3.3 measurement start).
	steadySnapTaken bool
	statsAtInit     Stats

	// faultPlan, when non-nil, is the armed fault-injection plan; new
	// guests booted mid-run inherit its hooks.
	faultPlan *faults.Plan

	// balloon, when non-nil, is the armed overcommit pressure controller;
	// it doubles as the host kernel's PressureReliever.
	balloon *balloon.Controller

	// corunnersStopped latches StopCorunnersAtPrimaryInit across
	// pause/resume boundaries (RunOptions.StopAtAccesses): once co-runners
	// stop at the primary-init boundary they stay stopped for the machine's
	// lifetime, so a paused-and-resumed run schedules exactly the quanta an
	// uninterrupted run would.
	corunnersStopped bool

	// registry is the named counter view, built lazily by Registry.
	registry *obs.Registry
}

// maxBatch caps the per-turn batch buffer: a quantum larger than this is
// executed as several back-to-back batches, bounding scratch memory while
// keeping the amortization win.
const maxBatch = 256

// New builds a single-VM machine from the legacy config. It is exactly
// NewHost over cfg.Host() — one code path — but validates with the legacy
// field names.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	return newMachine(cfg.Host())
}

// NewHost builds a multi-tenant machine: the shared host plus one guest
// stack per entry in cfg.Guests. Zero-valued optional fields select their
// documented defaults; explicitly invalid values are rejected with a
// *ConfigError (see HostConfig.Validate).
func NewHost(cfg HostConfig) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	return newMachine(cfg)
}

// newMachine builds from an already validated HostConfig.
func newMachine(cfg HostConfig) (*Machine, error) {
	if cfg.NumCPUs == 0 {
		cfg.NumCPUs = 8
	}
	if cfg.Cache.NumCPUs == 0 {
		cfg.Cache = cache.DefaultConfig(cfg.NumCPUs)
	}
	if cfg.Walker.TLB.L1.Entries == 0 {
		cfg.Walker = nested.DefaultConfig()
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCostModel()
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 8
	}
	if cfg.PTLevels == 0 {
		cfg.PTLevels = 4
	}
	batchCap := cfg.Quantum
	if batchCap > maxBatch {
		batchCap = maxBatch
	}
	m := &Machine{
		cfg:    cfg,
		host:   hostos.NewKernel(cfg.HostMemBytes),
		hier:   cache.NewHierarchy(cfg.Cache),
		accBuf: make([]workload.Access, batchCap),
		recBuf: make([]AccessRecord, 0, batchCap),
	}
	if cfg.Balloon.Enabled {
		m.balloon = balloon.New(cfg.Balloon, m.host)
		m.host.SetPressureReliever(m.balloon)
	}
	for _, gc := range cfg.Guests {
		if _, err := m.addGuest(gc); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// addGuest boots one guest stack on the host (no validation).
func (m *Machine) addGuest(gc GuestConfig) (*Guest, error) {
	hostVM, err := m.host.CreateVMWithLevels(gc.MemBytes, m.cfg.PTLevels)
	if err != nil {
		return nil, err
	}
	kernel := guestos.NewKernel(guestos.Config{
		MemBytes:             gc.MemBytes,
		Policy:               gc.Policy,
		Magnet:               gc.Magnet,
		EnableThresholdBytes: gc.EnableThresholdBytes,
		ReclaimWatermark:     gc.ReclaimWatermark,
		Seed:                 gc.Seed,
		PTLevels:             m.cfg.PTLevels,
		VMID:                 hostVM.ID(),
	})
	g := &Guest{
		m:      m,
		index:  len(m.guests),
		cfg:    gc,
		hostVM: hostVM,
		kernel: kernel,
		walker: nested.New(m.cfg.Walker, m.hier, hostVM),
		alive:  true,
	}
	m.guests = append(m.guests, g)
	if m.balloon != nil {
		// The invalidation hook drops TLB entries for pages the guest's
		// balloon driver swaps out under host pressure.
		m.balloon.Attach(hostVM, kernel, g.walker.InvalidatePage, g.walker.InvalidateGPA)
	}
	return g, nil
}

// AddGuest boots a new guest mid-lifetime — the "VM boots" half of a
// churn scenario. The guest starts with no tasks; add them with
// Guest.AddTask. The config is validated against the host.
func (m *Machine) AddGuest(gc GuestConfig) (*Guest, error) {
	if err := gc.validate(m.cfg.HostMemBytes, "Guests[new]."); err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	g, err := m.addGuest(gc)
	if err != nil {
		return nil, err
	}
	if m.faultPlan != nil {
		g.kernel.Memory().SetAllocHook(m.faultPlan)
		g.hostVM.SetDirtyLogInjector(m.faultPlan)
	}
	return g, nil
}

// InstallFaultPlan arms a deterministic fault-injection plan on the
// machine's choke points: every guest's buddy allocator, the host
// kernel's fault-time frame allocation, and every guest VM's dirty log.
// Install before running; guests booted later (churn) inherit the hooks.
// A nil plan is a no-op, leaving every hook unset so the zero-plan hot
// path is unchanged. One plan serves one machine — sharing a plan across
// machines interleaves their schedules.
func (m *Machine) InstallFaultPlan(p *faults.Plan) {
	if p == nil {
		return
	}
	m.faultPlan = p
	m.host.SetOOMInjector(p)
	for _, g := range m.guests {
		if !g.alive || g.migratedOut {
			continue
		}
		g.kernel.Memory().SetAllocHook(p)
		g.hostVM.SetDirtyLogInjector(p)
	}
}

// FaultPlan returns the installed fault plan (nil when none is armed).
func (m *Machine) FaultPlan() *faults.Plan { return m.faultPlan }

// Balloon returns the armed overcommit pressure controller, or nil on a
// balloon-free machine.
func (m *Machine) Balloon() *balloon.Controller { return m.balloon }

// DestroyGuest tears a guest down mid-lifetime — the "VM dies" half of a
// churn scenario. Its tasks stop, its walker state is flushed (the cached
// gPA→hPA translations die with the host page table), and the host frees
// every host frame the VM held back to the shared buddy allocator. The
// guest keeps its slot in Guests() with frozen counters, so per-guest
// telemetry of a dead tenant remains reportable. Destroying a dead guest
// is a no-op.
func (m *Machine) DestroyGuest(g *Guest) {
	if g == nil || !g.alive || g.m != m {
		return
	}
	g.alive = false
	for _, t := range g.tasks {
		t.done = true
	}
	g.walker.InvalidateAll()
	if m.balloon != nil {
		m.balloon.Detach(g.hostVM)
	}
	m.host.DestroyVM(g.hostVM)
}

// Guests returns every guest ever booted, in creation order (including
// destroyed ones — check Alive).
func (m *Machine) Guests() []*Guest { return m.guests }

// Host exposes the host kernel.
func (m *Machine) Host() *hostos.Kernel { return m.host }

// Guest exposes the first guest's kernel — the whole machine's kernel in
// the single-VM configuration this accessor predates.
func (m *Machine) Guest() *guestos.Kernel { return m.guests[0].kernel }

// HostVM exposes the first guest's VM as the host sees it.
func (m *Machine) HostVM() *hostos.VM { return m.guests[0].hostVM }

// Hierarchy exposes the shared cache hierarchy.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Walker exposes the first guest's nested walker.
func (m *Machine) Walker() *nested.Walker { return m.guests[0].walker }

// UnusedSeries returns the sampled §6.2 gauge.
func (m *Machine) UnusedSeries() *metrics.Series { return &m.unusedSeries }

// SetTracer installs an event-stream recorder for subsequent Run calls
// (nil disables tracing).
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// AddTask schedules prog on the first guest (the only guest in a
// single-VM machine). Multi-tenant callers use Guest.AddTask.
func (m *Machine) AddTask(prog workload.Program, role Role) (*Task, error) {
	return m.guests[0].AddTask(prog, role)
}

// AddTask spawns a guest process for prog inside g and schedules it.
// Tasks are pinned to vCPUs round-robin — offset by the guest index, so
// colocated guests' first tasks land on different vCPUs — like the paper
// pinning application and co-runner threads to distinct cores.
func (g *Guest) AddTask(prog workload.Program, role Role) (*Task, error) {
	if !g.alive {
		return nil, fmt.Errorf("vm: guest %d is destroyed", g.index)
	}
	m := g.m
	proc, err := g.kernel.Spawn(prog.Name(), prog.FootprintBytes())
	if err != nil {
		return nil, err
	}
	t := &Task{
		spec:  TaskSpec{Prog: prog, Role: role},
		batch: workload.AsBatch(prog),
		guest: g,
		proc:  proc,
		cpu:   (g.index + len(g.tasks)) % m.cfg.NumCPUs,
		index: len(m.tasks),
	}
	if err := prog.Setup(env{g: g, proc: proc}); err != nil {
		return nil, err
	}
	g.tasks = append(g.tasks, t)
	m.tasks = append(m.tasks, t)
	return t, nil
}

// Tasks returns all scheduled tasks across every guest, in creation order.
func (m *Machine) Tasks() []*Task { return m.tasks }

// runConfig is the assembled form of the run options.
type runConfig struct {
	stopCorunnersAtPrimaryInit bool
	sampleEvery                uint64
	maxAccesses                uint64
	stopAtAccesses             uint64
	events                     []RunEvent
}

// RunOpt configures one machine run (RunWith) — the options vocabulary
// machine runs share with experiment runs (sim.RunOpt).
type RunOpt func(*runConfig)

// WithStopCorunnersAtInit kills co-runner tasks the moment every primary
// finishes initialization — the §3.3 Table 1 methodology (fragmentation
// is left behind; LLC contention is removed).
func WithStopCorunnersAtInit(stop bool) RunOpt {
	return func(c *runConfig) { c.stopCorunnersAtPrimaryInit = stop }
}

// WithSampleEvery samples the unused-reserved-pages gauge (§6.2) every n
// total accesses. Zero disables sampling.
func WithSampleEvery(n uint64) RunOpt {
	return func(c *runConfig) { c.sampleEvery = n }
}

// WithMaxAccesses aborts a runaway run (safety net). Zero → no limit.
func WithMaxAccesses(n uint64) RunOpt {
	return func(c *runConfig) { c.maxAccesses = n }
}

// WithStopAtAccesses pauses the run once the machine-global access count
// reaches n, checked between scheduler rounds like events. The run
// returns nil with primaries unfinished; a later run resumes from the
// exact scheduler state, and the combined execution is access-for-access
// identical to one uninterrupted run. The live migration engine
// interleaves pre-copy rounds with guest execution through this. Zero
// disables pausing.
func WithStopAtAccesses(n uint64) RunOpt {
	return func(c *runConfig) { c.stopAtAccesses = n }
}

// WithEvents appends mid-run actions that fire between scheduler rounds,
// in the given order, once each, when the machine-global access count
// reaches AtAccesses — the hook VM-churn scenarios use to boot and kill
// guests mid-run. Because events are keyed to the deterministic access
// count and run on the scheduler goroutine, a churn run is as
// reproducible as a static one.
func WithEvents(events ...RunEvent) RunOpt {
	return func(c *runConfig) { c.events = append(c.events, events...) }
}

// RunOptions control a Run.
//
// Deprecated: use RunWith with the RunOpt options (WithStopCorunnersAtInit,
// WithSampleEvery, WithMaxAccesses, WithStopAtAccesses, WithEvents).
type RunOptions struct {
	// StopCorunnersAtPrimaryInit kills co-runner tasks the moment every
	// primary finishes initialization — the §3.3 Table 1 methodology
	// (fragmentation is left behind; LLC contention is removed).
	StopCorunnersAtPrimaryInit bool
	// SampleEvery samples the unused-reserved-pages gauge (§6.2) every N
	// total accesses. Zero disables sampling.
	SampleEvery uint64
	// MaxAccesses aborts a runaway run (safety net). Zero → no limit.
	MaxAccesses uint64
	// StopAtAccesses pauses the run once the machine-global access count
	// reaches this value, checked between scheduler rounds like Events.
	// The run returns nil with primaries unfinished; a later Run call
	// resumes from the exact scheduler state, and the combined execution
	// is access-for-access identical to one uninterrupted run. The live
	// migration engine interleaves pre-copy rounds with guest execution
	// through this. Zero disables pausing.
	StopAtAccesses uint64
	// Events fire between scheduler rounds, in slice order, once each,
	// when the machine-global access count reaches AtAccesses — the hook
	// VM-churn scenarios use to boot and kill guests mid-run. Because
	// events are keyed to the deterministic access count and run on the
	// scheduler goroutine, a churn run is as reproducible as a static one.
	Events []RunEvent
}

// RunEvent is one scheduled mid-run action (see RunOptions.Events).
type RunEvent struct {
	// AtAccesses is the machine-global access count at or after which the
	// event fires (checked between rounds).
	AtAccesses uint64
	// Do runs on the scheduler goroutine; returning an error aborts the
	// run.
	Do func(*Machine) error
}

// RunWith interleaves all tasks until every primary finishes, configured
// by options. Co-runners are stopped at the end (or at the primary-init
// boundary per WithStopCorunnersAtInit). The scheduler polls ctx between
// rounds (one quantum of every task), so a canceled run stops within a
// handful of accesses and returns the context's error — this is the
// cancellation point for every workload inner loop. Other errors indicate
// simulation bugs (workload accessing unmapped regions, guest OOM) or
// injected faults.
func (m *Machine) RunWith(ctx context.Context, opts ...RunOpt) error {
	var cfg runConfig
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return m.runWith(ctx, cfg)
}

// Run interleaves all tasks until every primary finishes.
//
// Deprecated: use RunWith.
func (m *Machine) Run(opts RunOptions) error {
	return m.RunContext(context.Background(), opts)
}

// RunContext is Run with cancellation.
//
// Deprecated: use RunWith.
func (m *Machine) RunContext(ctx context.Context, opts RunOptions) error {
	return m.runWith(ctx, runConfig{
		stopCorunnersAtPrimaryInit: opts.StopCorunnersAtPrimaryInit,
		sampleEvery:                opts.SampleEvery,
		maxAccesses:                opts.MaxAccesses,
		stopAtAccesses:             opts.StopAtAccesses,
		events:                     opts.Events,
	})
}

// runWith is the scheduler loop behind RunWith and the deprecated
// RunOptions entry points.
func (m *Machine) runWith(ctx context.Context, opts runConfig) error {
	if countPrimaries(m.tasks) == 0 {
		return fmt.Errorf("vm: no primary task")
	}
	var nextSample uint64
	var nextBalloon uint64
	nextEvent := 0
	// The round loop walks guests in creation order and, inside each
	// guest, its tasks in creation order — a fixed interleaving fully
	// determined by the configuration, never by host goroutine timing.
	// Primaries-left is recomputed each round (rather than decremented)
	// because events may add or destroy whole guests between rounds.
	for len(m.pendingPrimaries()) > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("vm: run canceled: %w", err)
		}
		if opts.stopAtAccesses > 0 && m.totalAccesses >= opts.stopAtAccesses {
			return nil
		}
		for nextEvent < len(opts.events) && m.totalAccesses >= opts.events[nextEvent].AtAccesses {
			if err := opts.events[nextEvent].Do(m); err != nil {
				return fmt.Errorf("vm: run event %d: %w", nextEvent, err)
			}
			nextEvent++
		}
		progressed := false
		for _, g := range m.guests {
			if !g.alive {
				continue
			}
			for _, t := range g.tasks {
				if t.done {
					continue
				}
				if t.spec.Role == RoleCorunner && m.corunnersStopped {
					continue
				}
				if err := m.runQuantum(t); err != nil {
					return err
				}
				progressed = true
			}
		}
		if !progressed {
			return fmt.Errorf("vm: scheduler stalled with %d primaries left", len(m.pendingPrimaries()))
		}
		if !m.steadySnapTaken && m.primariesInitDone() {
			m.steadySnapTaken = true
			m.statsAtInit = m.Snapshot()
			if opts.stopCorunnersAtPrimaryInit {
				m.corunnersStopped = true
			}
		}
		if opts.sampleEvery > 0 && m.totalAccesses >= nextSample {
			m.unusedSeries.Record(m.totalAccesses, int64(m.unusedReservedPages()))
			nextSample = m.totalAccesses + opts.sampleEvery
		}
		if m.balloon != nil && m.totalAccesses >= nextBalloon {
			// Working-set sampling and the watermark check are keyed to
			// the machine-global access count, the same deterministic
			// clock as run events and gauge sampling.
			m.balloon.Sample()
			m.balloon.Check()
			nextBalloon = m.totalAccesses + m.balloon.Config().SampleEvery
		}
		if opts.maxAccesses > 0 && m.totalAccesses >= opts.maxAccesses {
			return fmt.Errorf("vm: exceeded access budget %d", opts.maxAccesses)
		}
	}
	if opts.sampleEvery > 0 {
		// Always close the series with the final state, so short runs
		// still report their peak.
		m.unusedSeries.Record(m.totalAccesses, int64(m.unusedReservedPages()))
	}
	return nil
}

// TotalAccesses returns the machine-global executed access count — the
// deterministic clock that run events, pauses, and migration rounds key on.
func (m *Machine) TotalAccesses() uint64 { return m.totalAccesses }

// PendingPrimaries returns how many primary tasks have not finished. A
// paused run (RunOptions.StopAtAccesses) left work behind iff this is
// nonzero.
func (m *Machine) PendingPrimaries() int { return len(m.pendingPrimaries()) }

// HostConfig returns the machine's resolved host configuration.
func (m *Machine) HostConfig() HostConfig { return m.cfg }

// pendingPrimaries returns the primary tasks that have not finished.
func (m *Machine) pendingPrimaries() []*Task {
	var out []*Task
	for _, t := range m.tasks {
		if t.spec.Role == RolePrimary && !t.done {
			out = append(out, t)
		}
	}
	return out
}

func countPrimaries(tasks []*Task) int {
	n := 0
	for _, t := range tasks {
		if t.spec.Role == RolePrimary {
			n++
		}
	}
	return n
}

// unusedReservedPages sums the §6.2 gauge across live guests.
func (m *Machine) unusedReservedPages() int64 {
	var n int64
	for _, g := range m.guests {
		if g.alive {
			n += int64(g.kernel.UnusedReservedPages())
		}
	}
	return n
}

func (m *Machine) primariesInitDone() bool {
	for _, t := range m.tasks {
		if t.spec.Role == RolePrimary && !t.done && !t.spec.Prog.InitDone() {
			return false
		}
	}
	return true
}

// runQuantum executes up to one scheduling quantum of t, pulling accesses
// from the workload in batches (capped at the scratch-buffer size) and
// running each batch through the hardware pipeline.
func (m *Machine) runQuantum(t *Task) error {
	e := env{g: t.guest, proc: t.proc}
	remaining := m.cfg.Quantum
	for remaining > 0 {
		limit := remaining
		if limit > len(m.accBuf) {
			limit = len(m.accBuf)
		}
		n, done := t.batch.StepBatch(e, m.accBuf[:limit])
		if n > 0 {
			if err := m.execBatch(t, m.accBuf[:n]); err != nil {
				return err
			}
			remaining -= n
		}
		// The batch contract ends a batch when InitDone flips, so checking
		// once per batch observes the same counter snapshot the per-access
		// loop did.
		t.markInitBoundary()
		if done {
			t.done = true
			return nil
		}
		if n == 0 {
			return fmt.Errorf("vm: task %s stalled: empty batch without finishing", t.Name())
		}
	}
	return nil
}

// execBatch runs one batch of accesses through the full pipeline: main TLB,
// nested 2D walk, cache hierarchy, guest fault handling. Cycle and cache
// counters accumulate in locals and are written back to the task once per
// batch — the amortization that makes the batched path faster than the old
// per-access loop while producing bit-identical results.
func (m *Machine) execBatch(t *Task, accs []workload.Access) error {
	var (
		costs  = &m.cfg.Costs
		walker = t.guest.walker
		hier   = m.hier
		tracer = m.tracer
		asid   = t.proc.ASID()
		gpt    = t.proc.PageTable()
		cpu    = t.cpu
		seq    = m.totalAccesses
		hostVM = t.guest.hostVM
		// dirtyLog is hoisted so the common (non-migrating) case pays one
		// branch per access, nothing more.
		dirtyLog = hostVM.DirtyLogging()
	)
	var executed, dataC, transC, faultC uint64
	var served [cache.NumLevels]uint64
	recs := m.recBuf[:0]
	var stepErr error

batchLoop:
	for _, acc := range accs {
		seq++
		executed++
		var accTranslation, accData uint64
		var accServed cache.Level
		var accTLBHit bool
		// Fast path: probe the main TLB without setting up a 2D walk. A hit
		// resolves the access immediately; a miss falls into the walk/fault
		// retry loop. TranslateFast followed by TranslateSlow performs
		// exactly the probes the monolithic Translate did, so every TLB and
		// walker counter advances identically.
		out, fastHit := walker.TranslateFast(asid, acc.VA, acc.Write)
		for attempt := 0; ; attempt++ {
			if !fastHit {
				if attempt == 0 {
					out = walker.TranslateSlow(cpu, asid, gpt, acc.VA, acc.Write)
				} else {
					out = walker.Translate(cpu, asid, gpt, acc.VA, acc.Write)
				}
			}
			transC += out.Cycles
			accTranslation += out.Cycles
			if out.Ok {
				lv, lat := hier.Access(cpu, out.HPA)
				dataC += lat
				served[lv]++
				accData = lat
				accServed = lv
				accTLBHit = out.TLBHit
				break
			}
			if !out.GuestFault {
				stepErr = fmt.Errorf("vm: translation of %#x failed without fault", uint64(acc.VA))
				break batchLoop
			}
			if attempt >= 3 {
				stepErr = fmt.Errorf("vm: fault loop at %#x (task %s)", uint64(acc.VA), t.Name())
				break batchLoop
			}
			kind, ferr := t.proc.HandlePageFault(acc.VA, acc.Write)
			if ferr != nil {
				stepErr = fmt.Errorf("vm: task %s: %w", t.Name(), ferr)
				break batchLoop
			}
			if tracer != nil {
				// Faults interleave with accesses in stream order: flush
				// the pending access records first.
				if len(recs) > 0 {
					tracer.AccessBatch(recs)
					recs = recs[:0]
				}
				tracer.Fault(t.index, acc.VA, uint8(kind), seq)
			}
			// COW remaps change the translation; drop any stale TLB entry.
			if kind == guestos.FaultCOW {
				walker.InvalidatePage(asid, acc.VA)
			}
			faultC += costs.faultCost(kind)
			fastHit = false
		}
		if dirtyLog && acc.Write {
			// PML-style write tracking: the page walker sets the EPT dirty
			// bit and logs the guest-physical page on a clear→set
			// transition. Free in cycles, like the hardware buffer write.
			if gpa, _, ok := gpt.Translate(acc.VA); ok {
				hostVM.MarkDirty(gpa)
			}
		}
		if tracer != nil {
			recs = append(recs, AccessRecord{
				Task: t.index, VA: acc.VA, Write: acc.Write, TLBHit: accTLBHit,
				TranslationCycles: accTranslation, DataCycles: accData,
				Served: uint8(accServed), Seq: seq,
			})
		}
	}
	if tracer != nil && len(recs) > 0 {
		tracer.AccessBatch(recs)
	}
	// Write-back: counters for every access the batch executed, including a
	// partially executed access on the error path (matching the per-access
	// loop, which updated counters before failing).
	work := executed * costs.WorkCyclesPerAccess
	m.totalAccesses += executed
	t.guest.accesses += executed
	t.Accesses += executed
	t.WorkCycles += work
	t.DataCycles += dataC
	t.TranslationCycles += transC
	t.FaultCycles += faultC
	t.Cycles += work + dataC + transC + faultC
	for i, hits := range served {
		t.DataServed[i] += hits
	}
	return stepErr
}

func (t *Task) markInitBoundary() {
	if !t.initSeen && t.spec.Prog.InitDone() {
		t.initSeen = true
		t.initSnapshot = t.counters()
	}
}

// TaskReport is the measured slice of one primary task.
type TaskReport struct {
	Name string
	// Guest is the index of the guest the task ran in (0 on a single-VM
	// machine).
	Guest int
	// Whole-run totals.
	Cycles, WorkCycles, DataCycles, TranslationCycles, FaultCycles uint64
	Accesses                                                       uint64
	DataServed                                                     [cache.NumLevels]uint64
	// Steady-state totals (from the init boundary to the end) — the §3.3
	// measurement window.
	SteadyCycles, SteadyTranslationCycles, SteadyDataCycles uint64
	SteadyAccesses                                          uint64
	SteadyDataServed                                        [cache.NumLevels]uint64
	// Frag is the host-PT fragmentation of the task's process at the end
	// of the run.
	Frag metrics.FragReport
}

// Report assembles the post-run measurements for every primary task.
func (m *Machine) Report() []TaskReport {
	var out []TaskReport
	for _, t := range m.tasks {
		if t.spec.Role != RolePrimary {
			continue
		}
		r := TaskReport{
			Name:              t.Name(),
			Guest:             t.guest.index,
			Cycles:            t.Cycles,
			WorkCycles:        t.WorkCycles,
			DataCycles:        t.DataCycles,
			TranslationCycles: t.TranslationCycles,
			FaultCycles:       t.FaultCycles,
			Accesses:          t.Accesses,
			DataServed:        t.DataServed,
		}
		if t.guest.alive {
			// A destroyed guest's host page table is gone; its tasks keep
			// their cycle totals but report zero-valued fragmentation.
			r.Frag = metrics.HostPTFragmentation(t.proc.PageTable(), t.guest.hostVM.PageTable())
		}
		snap := t.initSnapshot
		if !t.initSeen {
			snap = t.counters() // never reached steady state
		}
		r.SteadyCycles = t.Cycles - snap.cycles
		r.SteadyTranslationCycles = t.TranslationCycles - snap.translation
		r.SteadyDataCycles = t.DataCycles - snap.data
		r.SteadyAccesses = t.Accesses - snap.accesses
		for i := range r.SteadyDataServed {
			r.SteadyDataServed[i] = t.DataServed[i] - snap.dataServed[i]
		}
		out = append(out, r)
	}
	return out
}
