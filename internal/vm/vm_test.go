package vm

import (
	"testing"

	"ptemagnet/internal/arch"

	"ptemagnet/internal/cache"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/workload"
)

// smallConfig builds a fast machine for tests.
func smallConfig(policy guestos.AllocPolicy) Config {
	cfg := DefaultConfig()
	cfg.HostMemBytes = 128 << 20
	cfg.GuestMemBytes = 64 << 20
	cfg.NumCPUs = 4
	cfg.Policy = policy
	cfg.Seed = 42
	return cfg
}

func smallGraph(seed int64) workload.GraphConfig {
	return workload.GraphConfig{DatasetBytes: 8 << 20, Accesses: 60_000, Seed: seed}
}

func TestRunSoloBenchmark(t *testing.T) {
	m, err := New(smallConfig(guestos.PolicyDefault))
	if err != nil {
		t.Fatal(err)
	}
	task, err := m.AddTask(workload.NewPagerank(smallGraph(1)), RolePrimary)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if task.Accesses == 0 || task.Cycles == 0 {
		t.Fatal("task did no work")
	}
	// Cycle components must sum to the total.
	if task.WorkCycles+task.DataCycles+task.TranslationCycles+task.FaultCycles != task.Cycles {
		t.Errorf("cycle components %d+%d+%d+%d != total %d",
			task.WorkCycles, task.DataCycles, task.TranslationCycles, task.FaultCycles, task.Cycles)
	}
	reports := m.Report()
	if len(reports) != 1 || reports[0].Name != "pagerank" {
		t.Fatalf("reports = %+v", reports)
	}
	r := reports[0]
	if r.SteadyAccesses == 0 || r.SteadyAccesses >= r.Accesses {
		t.Errorf("steady accesses = %d of %d; init boundary not detected", r.SteadyAccesses, r.Accesses)
	}
	if r.Frag.Groups == 0 {
		t.Error("no fragmentation groups measured")
	}
	ws := m.Observe().Steady.Walker
	if ws.Lookups == 0 || ws.Walks == 0 {
		t.Errorf("steady walk stats empty: %+v", ws)
	}
}

func TestRunWithoutPrimaryFails(t *testing.T) {
	m, _ := New(smallConfig(guestos.PolicyDefault))
	if _, err := m.AddTask(workload.NewPyaes(workload.CorunnerConfig{FootprintBytes: 1 << 20}), RoleCorunner); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(RunOptions{}); err == nil {
		t.Fatal("run without primary succeeded")
	}
}

func TestCorunnersStopWhenPrimaryFinishes(t *testing.T) {
	m, _ := New(smallConfig(guestos.PolicyDefault))
	prim, _ := m.AddTask(workload.NewGCC(workload.SpecConfig{FootprintBytes: 4 << 20, Accesses: 20_000, Seed: 1}), RolePrimary)
	co, _ := m.AddTask(workload.NewPyaes(workload.CorunnerConfig{FootprintBytes: 1 << 20, Seed: 2}), RoleCorunner)
	if err := m.Run(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if !prim.done {
		t.Error("primary not done")
	}
	if co.Accesses == 0 {
		t.Error("co-runner never ran")
	}
}

func TestStopCorunnersAtPrimaryInit(t *testing.T) {
	// §3.3 methodology: the co-runner's access count must freeze at the
	// primary's init boundary.
	mk := func(stop bool) (uint64, uint64) {
		m, _ := New(smallConfig(guestos.PolicyDefault))
		p, _ := m.AddTask(workload.NewPagerank(smallGraph(3)), RolePrimary)
		co, _ := m.AddTask(workload.NewStressNG(workload.CorunnerConfig{FootprintBytes: 4 << 20, Seed: 4}), RoleCorunner)
		if err := m.Run(RunOptions{StopCorunnersAtPrimaryInit: stop}); err != nil {
			t.Fatal(err)
		}
		return p.Accesses, co.Accesses
	}
	_, coStopped := mk(true)
	_, coFull := mk(false)
	if coStopped >= coFull {
		t.Errorf("co-runner ran %d accesses with early stop vs %d without", coStopped, coFull)
	}
}

func TestMagnetEliminatesFragmentationUnderColocation(t *testing.T) {
	run := func(policy guestos.AllocPolicy) float64 {
		m, err := New(smallConfig(policy))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.AddTask(workload.NewPagerank(smallGraph(5)), RolePrimary); err != nil {
			t.Fatal(err)
		}
		if _, err := m.AddTask(workload.NewStressNG(workload.CorunnerConfig{FootprintBytes: 8 << 20, Seed: 6}), RoleCorunner); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(RunOptions{}); err != nil {
			t.Fatal(err)
		}
		return m.Report()[0].Frag.Mean
	}
	def := run(guestos.PolicyDefault)
	mag := run(guestos.PolicyPTEMagnet)
	if def < 3 {
		t.Errorf("default-policy fragmentation = %.2f; colocation effect too weak", def)
	}
	if mag > 1.2 {
		t.Errorf("PTEMagnet fragmentation = %.2f, want ~1", mag)
	}
	if mag >= def {
		t.Errorf("PTEMagnet (%.2f) did not reduce fragmentation vs default (%.2f)", mag, def)
	}
}

func TestMagnetImprovesColocatedPerformance(t *testing.T) {
	run := func(policy guestos.AllocPolicy) uint64 {
		m, err := New(smallConfig(policy))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.AddTask(workload.NewPagerank(smallGraph(7)), RolePrimary); err != nil {
			t.Fatal(err)
		}
		if _, err := m.AddTask(workload.NewObjdet(workload.CorunnerConfig{FootprintBytes: 8 << 20, Seed: 8}), RoleCorunner); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(RunOptions{}); err != nil {
			t.Fatal(err)
		}
		return m.Report()[0].SteadyCycles
	}
	def := run(guestos.PolicyDefault)
	mag := run(guestos.PolicyPTEMagnet)
	if mag >= def {
		t.Errorf("PTEMagnet steady cycles %d >= default %d; no speedup", mag, def)
	}
}

func TestUnusedGaugeSampling(t *testing.T) {
	cfg := smallConfig(guestos.PolicyPTEMagnet)
	m, _ := New(cfg)
	m.AddTask(workload.NewSparse(4<<20), RolePrimary)
	if err := m.Run(RunOptions{SampleEvery: 16}); err != nil {
		t.Fatal(err)
	}
	series := m.UnusedSeries()
	if len(series.Samples) == 0 {
		t.Fatal("no gauge samples recorded")
	}
	// The sparse adversary leaves 7 unused pages per touched group.
	groups := int64((4 << 20) / (32 << 10))
	if series.Max() != 7*groups {
		t.Errorf("max unused = %d, want %d", series.Max(), 7*groups)
	}
}

func TestMaxAccessesGuard(t *testing.T) {
	m, _ := New(smallConfig(guestos.PolicyDefault))
	m.AddTask(workload.NewPagerank(smallGraph(9)), RolePrimary)
	if err := m.Run(RunOptions{MaxAccesses: 100}); err == nil {
		t.Fatal("budget exceeded without error")
	}
}

func TestDataServedSumsToAccesses(t *testing.T) {
	m, _ := New(smallConfig(guestos.PolicyDefault))
	task, _ := m.AddTask(workload.NewXZ(workload.SpecConfig{FootprintBytes: 4 << 20, Accesses: 20_000, Seed: 1}), RolePrimary)
	if err := m.Run(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	var served uint64
	for _, c := range task.DataServed {
		served += c
	}
	if served != task.Accesses {
		t.Errorf("data served sum %d != accesses %d", served, task.Accesses)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with zero memories succeeded")
	}
}

func TestCostModelFaultCosts(t *testing.T) {
	c := DefaultCostModel()
	// The reservation hit must be cheaper than the default path — the
	// §6.4 property.
	if c.faultCost(guestos.FaultMagnetHit) >= c.faultCost(guestos.FaultDefault) {
		t.Error("PaRT hit not cheaper than default fault")
	}
	// The group allocation is costlier than a single-page allocation but
	// amortized over 8 pages it wins.
	newCost := c.faultCost(guestos.FaultMagnetNew)
	hitCost := c.faultCost(guestos.FaultMagnetHit)
	defCost := c.faultCost(guestos.FaultDefault)
	if newCost+7*hitCost >= 8*defCost {
		t.Error("amortized reservation path not cheaper than 8 default faults")
	}
	for k := guestos.FaultKind(0); k < guestos.NumFaultKinds; k++ {
		if c.faultCost(k) == 0 {
			t.Errorf("fault kind %v costs nothing", k)
		}
	}
}

func TestSteadyCacheHits(t *testing.T) {
	m, _ := New(smallConfig(guestos.PolicyDefault))
	m.AddTask(workload.NewGCC(workload.SpecConfig{FootprintBytes: 2 << 20, Accesses: 10_000, Seed: 3}), RolePrimary)
	if err := m.Run(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	full := m.Snapshot().Cache.Hits
	steady := m.Observe().Steady.Cache.Hits
	for lv := cache.Level(0); lv < cache.NumLevels; lv++ {
		if steady[lv] > full[lv] {
			t.Errorf("steady hits at %v exceed full-run hits", lv)
		}
	}
}

// recordingTracer counts tracer callbacks for machine-level verification.
type recordingTracer struct {
	accesses, faults int
	lastSeq          uint64
}

func (r *recordingTracer) Access(task int, va arch.VirtAddr, write, tlbHit bool, tc, dc uint64, served uint8, seq uint64) {
	r.accesses++
	r.lastSeq = seq
}

func (r *recordingTracer) Fault(task int, va arch.VirtAddr, kind uint8, seq uint64) {
	r.faults++
}

func TestTracerReceivesEveryAccess(t *testing.T) {
	m, _ := New(smallConfig(guestos.PolicyPTEMagnet))
	task, _ := m.AddTask(workload.NewGCC(workload.SpecConfig{FootprintBytes: 2 << 20, Accesses: 5000, Seed: 2}), RolePrimary)
	rec := &recordingTracer{}
	m.SetTracer(PerAccess(rec))
	if err := m.Run(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if uint64(rec.accesses) != task.Accesses {
		t.Errorf("tracer saw %d accesses, task did %d", rec.accesses, task.Accesses)
	}
	g := m.Guest().Snapshot()
	var faults uint64
	for _, c := range g.Faults {
		faults += c
	}
	if uint64(rec.faults) != faults {
		t.Errorf("tracer saw %d faults, kernel handled %d", rec.faults, faults)
	}
	if rec.lastSeq == 0 {
		t.Error("sequence numbers not flowing")
	}
}

func TestTHPThroughMachine(t *testing.T) {
	m, _ := New(smallConfig(guestos.PolicyTHP))
	task, _ := m.AddTask(workload.NewPagerank(smallGraph(4)), RolePrimary)
	if err := m.Run(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if task.Process().PageTable().LargeMappings() == 0 {
		t.Error("no huge pages mapped through the machine")
	}
	// Huge-page-backed memory is contiguous, so the fragmentation metric
	// (which only covers 4KB-mapped regions) sees few groups, and data
	// still flows.
	if task.Accesses == 0 {
		t.Error("no accesses")
	}
}

func TestCAPagingThroughMachine(t *testing.T) {
	m, _ := New(smallConfig(guestos.PolicyCAPaging))
	m.AddTask(workload.NewPagerank(smallGraph(4)), RolePrimary)
	if err := m.Run(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if m.Guest().Snapshot().Faults[guestos.FaultCAHit] == 0 {
		t.Error("CA paging never placed a page adjacently")
	}
}

func TestFiveLevelThroughMachine(t *testing.T) {
	cfg := smallConfig(guestos.PolicyPTEMagnet)
	cfg.PTLevels = 5
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	task, _ := m.AddTask(workload.NewGCC(workload.SpecConfig{FootprintBytes: 2 << 20, Accesses: 10_000, Seed: 6}), RolePrimary)
	if err := m.Run(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if task.Process().PageTable().Levels() != 5 {
		t.Error("guest table not 5-level")
	}
	if m.HostVM().PageTable().Levels() != 5 {
		t.Error("host table not 5-level")
	}
	if task.Accesses == 0 {
		t.Error("no accesses")
	}
}
