package vm

import (
	"errors"
	"reflect"
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/workload"
)

// legacyProgram hides a workload's StepBatch so AddTask must route it
// through the one-access-per-batch adapter — the pre-batching behaviour.
type legacyProgram struct{ p workload.Program }

func (l legacyProgram) Name() string                                  { return l.p.Name() }
func (l legacyProgram) FootprintBytes() uint64                        { return l.p.FootprintBytes() }
func (l legacyProgram) Setup(env workload.Env) error                  { return l.p.Setup(env) }
func (l legacyProgram) Step(env workload.Env) (workload.Access, bool) { return l.p.Step(env) }
func (l legacyProgram) InitDone() bool                                { return l.p.InitDone() }

// streamTracer records the full event stream for identity comparison.
type streamTracer struct {
	recs   []AccessRecord
	faults []AccessRecord // reuses the struct: Task/VA/Served(kind)/Seq
}

func (s *streamTracer) AccessBatch(recs []AccessRecord) {
	s.recs = append(s.recs, recs...)
}

func (s *streamTracer) Fault(task int, va arch.VirtAddr, kind uint8, seq uint64) {
	s.faults = append(s.faults, AccessRecord{Task: task, VA: va, Served: kind, Seq: seq})
}

// buildColocated assembles a machine with a primary and two co-runners,
// optionally forcing every program through the legacy adapter.
func buildColocated(t *testing.T, legacy bool) (*Machine, *streamTracer) {
	t.Helper()
	cfg := smallConfig(guestos.PolicyPTEMagnet)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	progs := []struct {
		p    workload.Program
		role Role
	}{
		{workload.NewPagerank(smallGraph(11)), RolePrimary},
		{workload.NewObjdet(workload.CorunnerConfig{FootprintBytes: 2 << 20, Seed: 12}), RoleCorunner},
		{workload.NewStressNG(workload.CorunnerConfig{FootprintBytes: 2 << 20, Seed: 13}), RoleCorunner},
	}
	for _, sp := range progs {
		p := sp.p
		if legacy {
			p = legacyProgram{p}
		}
		if _, err := m.AddTask(p, sp.role); err != nil {
			t.Fatal(err)
		}
	}
	tr := &streamTracer{}
	m.SetTracer(tr)
	return m, tr
}

// TestBatchedRunMatchesAdapterRun is the machine-level identity proof: the
// same colocated scenario run with native batched programs and with every
// program forced through the legacy one-access adapter must produce
// identical reports, walker stats, guest kernel state and event streams.
func TestBatchedRunMatchesAdapterRun(t *testing.T) {
	run := func(legacy bool) ([]TaskReport, any, any, *streamTracer) {
		m, tr := buildColocated(t, legacy)
		if err := m.Run(RunOptions{SampleEvery: 64}); err != nil {
			t.Fatal(err)
		}
		return m.Report(), m.Observe().Steady.Walker, m.Guest().Snapshot(), tr
	}
	repB, walkB, guestB, trB := run(false)
	repA, walkA, guestA, trA := run(true)
	if !reflect.DeepEqual(repB, repA) {
		t.Errorf("reports differ:\nbatched: %+v\nadapter: %+v", repB, repA)
	}
	if !reflect.DeepEqual(walkB, walkA) {
		t.Errorf("walker stats differ:\nbatched: %+v\nadapter: %+v", walkB, walkA)
	}
	if !reflect.DeepEqual(guestB, guestA) {
		t.Errorf("guest snapshots differ:\nbatched: %+v\nadapter: %+v", guestB, guestA)
	}
	if !reflect.DeepEqual(trB.recs, trA.recs) {
		t.Errorf("access streams differ: %d vs %d records", len(trB.recs), len(trA.recs))
	}
	if !reflect.DeepEqual(trB.faults, trA.faults) {
		t.Errorf("fault streams differ: %d vs %d records", len(trB.faults), len(trA.faults))
	}
	if len(trB.recs) == 0 || len(trB.faults) == 0 {
		t.Error("empty event stream; identity check vacuous")
	}
}

// TestMaxAccessesBoundary pins the budget semantics: the run errors as soon
// as the executed access count reaches the budget, not one quantum later.
func TestMaxAccessesBoundary(t *testing.T) {
	cfg := smallConfig(guestos.PolicyDefault)
	cfg.Quantum = 8
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddTask(workload.NewPagerank(smallGraph(9)), RolePrimary); err != nil {
		t.Fatal(err)
	}
	// One solo task executes exactly Quantum accesses per round; a budget of
	// exactly one round must already trip the guard.
	if err := m.Run(RunOptions{MaxAccesses: 8}); err == nil {
		t.Fatal("budget of one round not enforced")
	}
	if m.totalAccesses != 8 {
		t.Errorf("run stopped after %d accesses, want exactly 8", m.totalAccesses)
	}
}

func TestConfigValidate(t *testing.T) {
	base := smallConfig(guestos.PolicyDefault)
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"zero host mem", func(c *Config) { c.HostMemBytes = 0 }, "HostMemBytes"},
		{"zero guest mem", func(c *Config) { c.GuestMemBytes = 0 }, "GuestMemBytes"},
		{"guest exceeds host", func(c *Config) { c.GuestMemBytes = c.HostMemBytes * 2 }, "GuestMemBytes"},
		{"negative cpus", func(c *Config) { c.NumCPUs = -1 }, "NumCPUs"},
		{"negative quantum", func(c *Config) { c.Quantum = -4 }, "Quantum"},
		{"bad levels", func(c *Config) { c.PTLevels = 3 }, "PTLevels"},
		{"watermark too high", func(c *Config) { c.ReclaimWatermark = 1.5 }, "ReclaimWatermark"},
		{"bad magnet", func(c *Config) { c.Magnet.GroupPages = 3 }, "GroupPages"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate = nil, want error", tc.name)
			continue
		}
		var cerr *ConfigError
		if !errors.As(err, &cerr) {
			t.Errorf("%s: error %v is not a *ConfigError", tc.name, err)
		} else if cerr.Field != tc.field {
			t.Errorf("%s: Field = %q, want %q", tc.name, cerr.Field, tc.field)
		}
		if _, nerr := New(cfg); nerr == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
		}
	}
	// Zero values of optional fields are defaults, not errors.
	zero := Config{HostMemBytes: 128 << 20, GuestMemBytes: 64 << 20}
	if err := zero.Validate(); err != nil {
		t.Errorf("zero-value optional fields rejected: %v", err)
	}
	if _, err := New(zero); err != nil {
		t.Errorf("New with zero-value optional fields failed: %v", err)
	}
}

// benchMachine builds a large-quantum machine running pagerank solo, the
// configuration where batching amortization shows.
func benchMachine(b *testing.B, legacy bool) *Machine {
	b.Helper()
	cfg := Config{
		HostMemBytes:  256 << 20,
		GuestMemBytes: 128 << 20,
		NumCPUs:       4,
		Quantum:       256,
		Seed:          42,
	}
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var p workload.Program = workload.NewPagerank(workload.GraphConfig{
		DatasetBytes: 8 << 20, Accesses: 200_000, Seed: 7,
	})
	if legacy {
		p = legacyProgram{p}
	}
	if _, err := m.AddTask(p, RolePrimary); err != nil {
		b.Fatal(err)
	}
	return m
}

func benchLoop(b *testing.B, legacy bool) {
	var total uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := benchMachine(b, legacy)
		b.StartTimer()
		if err := m.Run(RunOptions{}); err != nil {
			b.Fatal(err)
		}
		total += m.totalAccesses
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkPipelineMachineLoopBatched measures the full machine loop with
// native batched programs.
func BenchmarkPipelineMachineLoopBatched(b *testing.B) { benchLoop(b, false) }

// BenchmarkPipelineMachineLoopAdapter measures the same run forced through
// the one-access-per-batch legacy adapter.
func BenchmarkPipelineMachineLoopAdapter(b *testing.B) { benchLoop(b, true) }
