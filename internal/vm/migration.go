// Guest hand-off between machines: the detach/attach halves of a live
// migration. The copy protocol (pre-copy rounds over the dirty-page log,
// stop-and-copy, downtime accounting) lives in internal/migrate; this file
// owns only the machine-side surgery, because it has to reach into the
// scheduler's task list and the guests' slots.
package vm

import (
	"fmt"

	"ptemagnet/internal/hostos"
)

// DetachGuest removes g from m so another machine can adopt it. The guest's
// tasks leave m's schedule, its walker drops every cached translation (the
// gVA→hPA and gPA→hPA entries die with the source host page table), and the
// source host VM is destroyed — every host frame and EPT node returns to
// the source buddy allocator in ascending order, completing the
// physical-memory half of the owner transfer. g keeps its slot in
// m.Guests() as a frozen placeholder (Alive false, counters fixed at
// departure), so the source machine's per-guest telemetry stays coherent.
//
// Callers normally use migrate.MigrateCtx rather than calling this
// directly: the guest-physical image must be copied to the destination
// before detach, while the source page table still describes it.
//
// Fails if m's counter registry was already built — the registry holds read
// closures over the guest's live components and its name set is frozen, so
// a machine that has started reporting cannot lose a tenant from the
// registry's view. Build registries after migration instead.
func (m *Machine) DetachGuest(g *Guest) error {
	if g == nil || g.m != m {
		return fmt.Errorf("vm: guest does not belong to this machine")
	}
	if !g.alive || g.migratedOut {
		return fmt.Errorf("vm: guest %d is not alive", g.index)
	}
	if m.registry != nil {
		return fmt.Errorf("vm: counter registry already built; a registered guest cannot detach")
	}
	m.guests[g.index] = &Guest{
		m:           m,
		index:       g.index,
		cfg:         g.cfg,
		accesses:    g.accesses,
		migratedOut: true,
		frozen:      g.Snapshot(),
		frozenVMID:  g.hostVM.ID(),
	}
	kept := make([]*Task, 0, len(m.tasks))
	for _, t := range m.tasks {
		if t.guest != g {
			t.index = len(kept)
			kept = append(kept, t)
		}
	}
	m.tasks = kept
	g.walker.InvalidateAll()
	if m.balloon != nil {
		m.balloon.Detach(g.hostVM)
	}
	m.host.DestroyVM(g.hostVM)
	g.m = nil
	g.hostVM = nil
	g.alive = false
	return nil
}

// AttachGuest adopts a detached guest onto m — the destination half of a
// live migration. hostVM must be a VM of m's host kernel whose page table
// already holds the migrated guest-physical image (the migration engine
// populates it page by page before the hand-off). The guest's walker is
// rebound to m's cache hierarchy and the new host VM, its tasks join m's
// schedule with vCPU pins recomputed by the same round-robin rule AddTask
// uses, and the guest resumes exactly where the source paused it. Fails if
// m's registry is already frozen, if hostVM is not a live VM of m's host,
// or if the guest is not actually detached.
func (m *Machine) AttachGuest(g *Guest, hostVM *hostos.VM) error {
	if g == nil || g.m != nil || g.migratedOut {
		return fmt.Errorf("vm: guest is not detached")
	}
	if m.registry != nil {
		return fmt.Errorf("vm: counter registry already built; an attached guest could not be registered")
	}
	owned := false
	for _, v := range m.host.VMs() {
		if v == hostVM {
			owned = true
			break
		}
	}
	if !owned || !hostVM.Alive() {
		return fmt.Errorf("vm: host VM does not belong to this machine's host")
	}
	g.m = m
	g.index = len(m.guests)
	g.hostVM = hostVM
	g.alive = true
	g.walker.Rebind(m.hier, hostVM)
	if m.balloon != nil {
		m.balloon.Attach(hostVM, g.kernel, g.walker.InvalidatePage, g.walker.InvalidateGPA)
	}
	for i, t := range g.tasks {
		t.cpu = (g.index + i) % m.cfg.NumCPUs
		t.index = len(m.tasks)
		m.tasks = append(m.tasks, t)
	}
	m.guests = append(m.guests, g)
	return nil
}
