package vm

import (
	"reflect"
	"testing"

	"ptemagnet/internal/guestos"
	"ptemagnet/internal/workload"
)

// buildPausable builds a small colocated machine (pagerank primary, pyaes
// co-runner) for the pause/resume equivalence proofs.
func buildPausable(t *testing.T) *Machine {
	t.Helper()
	m, err := New(smallConfig(guestos.PolicyPTEMagnet))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddTask(workload.NewPagerank(smallGraph(3)), RolePrimary); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddTask(workload.NewPyaes(workload.CorunnerConfig{FootprintBytes: 2 << 20, Seed: 7}), RoleCorunner); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStopAtAccessesPauseResume pins the pause/resume contract live
// migration depends on: a run chopped into many StopAtAccesses slices must
// execute access-for-access what one uninterrupted run executes — including
// the co-runner stop latch, which must not re-arm across a resume.
func TestStopAtAccessesPauseResume(t *testing.T) {
	opts := RunOptions{StopCorunnersAtPrimaryInit: true}

	whole := buildPausable(t)
	if err := whole.Run(opts); err != nil {
		t.Fatal(err)
	}

	sliced := buildPausable(t)
	for sliced.PendingPrimaries() > 0 {
		o := opts
		o.StopAtAccesses = sliced.TotalAccesses() + 1000
		if err := sliced.Run(o); err != nil {
			t.Fatal(err)
		}
	}

	if !reflect.DeepEqual(whole.Snapshot(), sliced.Snapshot()) {
		t.Errorf("sliced run diverged:\nwhole:  %+v\nsliced: %+v", whole.Snapshot(), sliced.Snapshot())
	}
	if !reflect.DeepEqual(whole.Observe(), sliced.Observe()) {
		t.Error("sliced run produced a different report")
	}
}

// TestStopAtAccessesAlreadyReached pins that resuming with an
// already-reached target runs nothing: the pause check fires before the
// first round, so a migration round that requests no progress gets none.
func TestStopAtAccessesAlreadyReached(t *testing.T) {
	m := buildPausable(t)
	if err := m.Run(RunOptions{StopAtAccesses: 500}); err != nil {
		t.Fatal(err)
	}
	at := m.TotalAccesses()
	if at == 0 {
		t.Fatal("paused run executed nothing")
	}
	if m.PendingPrimaries() == 0 {
		t.Fatal("tiny paused run already finished; shrink the slice")
	}
	if err := m.Run(RunOptions{StopAtAccesses: at}); err != nil {
		t.Fatal(err)
	}
	if got := m.TotalAccesses(); got != at {
		t.Errorf("resume with reached target advanced %d → %d accesses", at, got)
	}
}
