// Observability for the assembled machine (DESIGN.md §8): one aggregated
// Stats snapshot across every stat-bearing component, per-guest stats for
// the multi-tenant host, the Report returned to the facade, and the named
// counter registry behind run telemetry.
package vm

import (
	"fmt"

	"ptemagnet/internal/buddy"
	"ptemagnet/internal/cache"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/nested"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/physmem"
	"ptemagnet/internal/tlb"
)

// Stats aggregates every counter the machine owns: its own access total
// plus the per-component stats, each following the Snapshot/Delta
// contract. On a multi-tenant host the per-guest components (walker, TLB,
// guest kernel, guest buddy) are summed across guests; the shared
// components (data caches, host buddy) are read directly.
type Stats struct {
	// Accesses is the machine-wide executed access count.
	Accesses uint64
	// Walker holds the nested page-walker counters.
	Walker nested.Stats
	// Cache holds the data-cache hierarchy counters.
	Cache cache.Stats
	// TLB holds the main two-level TLB counters.
	TLB tlb.TwoLevelStats
	// Guest holds the guest kernel counters.
	Guest guestos.Stats
	// GuestBuddy and HostBuddy hold the two buddy allocators' counters.
	GuestBuddy buddy.Stats
	HostBuddy  buddy.Stats
}

// Delta returns the component-wise difference s - prev.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Accesses:   s.Accesses - prev.Accesses,
		Walker:     s.Walker.Delta(prev.Walker),
		Cache:      s.Cache.Delta(prev.Cache),
		TLB:        s.TLB.Delta(prev.TLB),
		Guest:      s.Guest.Delta(prev.Guest),
		GuestBuddy: s.GuestBuddy.Delta(prev.GuestBuddy),
		HostBuddy:  s.HostBuddy.Delta(prev.HostBuddy),
	}
}

// GuestStats is one guest's slice of the machine counters: its private
// translation machinery and kernel, without the shared host components.
type GuestStats struct {
	// Accesses is the guest's executed access count.
	Accesses uint64
	// Walker holds the guest's nested page-walker counters.
	Walker nested.Stats
	// TLB holds the guest's main two-level TLB counters.
	TLB tlb.TwoLevelStats
	// Guest holds the guest kernel counters.
	Guest guestos.Stats
	// GuestBuddy holds the guest-physical buddy allocator counters.
	GuestBuddy buddy.Stats
}

// Delta returns the component-wise difference s - prev.
func (s GuestStats) Delta(prev GuestStats) GuestStats {
	return GuestStats{
		Accesses:   s.Accesses - prev.Accesses,
		Walker:     s.Walker.Delta(prev.Walker),
		TLB:        s.TLB.Delta(prev.TLB),
		Guest:      s.Guest.Delta(prev.Guest),
		GuestBuddy: s.GuestBuddy.Delta(prev.GuestBuddy),
	}
}

// Snapshot reads the guest's counters at once. Destroyed guests return
// their frozen final values; so does the placeholder a migrated guest
// leaves behind (the live counters travelled with the guest).
func (g *Guest) Snapshot() GuestStats {
	if g.migratedOut {
		return g.frozen
	}
	return GuestStats{
		Accesses:   g.accesses,
		Walker:     g.walker.Snapshot(),
		TLB:        g.walker.TLB().Snapshot(),
		Guest:      g.kernel.Snapshot(),
		GuestBuddy: g.kernel.Memory().Buddy().Snapshot(),
	}
}

// sumCounters adds two counter snapshots of the same all-uint64 stats
// type using only the Snapshot/Delta contract: zero.Delta(b) negates b
// under two's-complement wraparound, so a.Delta(-b) is a+b, exact for
// every unsigned counter field.
func sumCounters[T interface{ Delta(T) T }](a, b T) T {
	var zero T
	return a.Delta(zero.Delta(b))
}

// Snapshot reads every component's counters at once, summing the
// per-guest components across all guests (including destroyed ones, whose
// counters are frozen — machine totals never go backwards).
func (m *Machine) Snapshot() Stats {
	s := Stats{
		Accesses:  m.totalAccesses,
		Cache:     m.hier.Snapshot(),
		HostBuddy: m.host.Memory().Buddy().Snapshot(),
	}
	for _, g := range m.guests {
		gs := g.Snapshot()
		s.Walker = sumCounters(s.Walker, gs.Walker)
		s.TLB = sumCounters(s.TLB, gs.TLB)
		s.Guest = sumCounters(s.Guest, gs.Guest)
		s.GuestBuddy = sumCounters(s.GuestBuddy, gs.GuestBuddy)
	}
	return s
}

// steadyStats returns the counters accumulated after the primary-init
// boundary (the whole run if the boundary was never reached).
func (m *Machine) steadyStats() Stats {
	whole := m.Snapshot()
	if !m.steadySnapTaken {
		return whole
	}
	return whole.Delta(m.statsAtInit)
}

// GuestReport is the post-run observation of one guest on the host.
type GuestReport struct {
	// Index is the guest's creation-order slot; VMID the host-assigned VM
	// id (monotonic, never reused).
	Index int
	VMID  int
	// Alive is false for guests destroyed mid-run.
	Alive bool
	// Migrated is true for the placeholder slot of a guest that was
	// live-migrated to another machine: its Stats are frozen at departure,
	// and the adopting machine reports the guest's live counters.
	Migrated bool
	// Stats is the guest's counter snapshot.
	Stats GuestStats
	// MappedGuestPages counts guest-physical pages with host backing;
	// HostUserFrames counts host frames attributed to this VM. Both are 0
	// for destroyed guests (their frames went back to the host buddy).
	MappedGuestPages uint64
	HostUserFrames   uint64
	// Frag aggregates host-PT fragmentation over every process of this
	// guest (zero-valued for destroyed guests).
	Frag metrics.FragReport
}

// Report is the aggregated observation of one machine after a run: the
// whole-run and steady-window counters plus the per-primary task reports
// (including host-PT fragmentation).
type Report struct {
	// Whole holds counters for the entire run; Steady for the §3.3
	// measurement window (after every primary's init boundary).
	Whole  Stats
	Steady Stats
	// Tasks holds one report per primary task, in task order.
	Tasks []TaskReport
	// Guests holds one report per guest in creation order (destroyed
	// guests included, with frozen counters).
	Guests []GuestReport
	// HostFrag aggregates host-PT fragmentation across every live guest —
	// the host-wide view of the §3.2 metric.
	HostFrag metrics.FragReport
}

// guestReport assembles one guest's post-run observation.
func (g *Guest) guestReport() GuestReport {
	vmid := g.frozenVMID
	if g.hostVM != nil {
		vmid = g.hostVM.ID()
	}
	r := GuestReport{
		Index:    g.index,
		VMID:     vmid,
		Alive:    g.alive,
		Migrated: g.migratedOut,
		Stats:    g.Snapshot(),
	}
	if g.alive {
		r.MappedGuestPages = g.hostVM.MappedGuestPages()
		r.HostUserFrames = g.m.host.Memory().CountOwnedVM(physmem.KindUser, g.hostVM.ID())
		for _, t := range g.tasks {
			r.Frag = metrics.Combine(r.Frag, metrics.HostPTFragmentation(t.proc.PageTable(), g.hostVM.PageTable()))
		}
	}
	return r
}

// Observe assembles the machine's aggregated report. It walks page tables
// to compute per-task fragmentation, so it is a post-run call, not a
// hot-path one.
func (m *Machine) Observe() Report {
	whole := m.Snapshot()
	steady := whole
	if m.steadySnapTaken {
		steady = whole.Delta(m.statsAtInit)
	}
	rep := Report{Whole: whole, Steady: steady, Tasks: m.Report()}
	for _, g := range m.guests {
		gr := g.guestReport()
		rep.Guests = append(rep.Guests, gr)
		if gr.Alive {
			rep.HostFrag = metrics.Combine(rep.HostFrag, gr.Frag)
		}
	}
	return rep
}

// Registry returns the machine's named counter registry, built on first
// use. Registration order is fixed by code order here — never reordered,
// only appended to — because it is the output order of every telemetry
// encoding. The registry holds read closures over the components' own
// counter fields: the hot loop keeps bumping plain struct fields, and
// counters are only read when a snapshot is taken.
//
// A single-guest machine registers the original flat names (walker.*,
// tlb.*, guest.*, buddy.guest.*), keeping historical telemetry byte-
// identical. With N>1 guests each guest's components get a vm<index>.
// prefix, followed by the shared cache.* and buddy.host.* groups. The
// name set is frozen at the first call — build the registry after any
// mid-run guest churn (destroyed guests stay registered; their counters
// freeze). Migrated-out placeholder slots are skipped entirely: their
// components left with the guest, and the adopting machine registers them.
// RegistryBuilt reports whether Registry has been called — i.e. the name
// set is frozen. Guests can only detach from or attach to machines whose
// registries are not yet built; the migration engine checks this up front
// so a migration never half-completes on a frozen machine.
func (m *Machine) RegistryBuilt() bool { return m.registry != nil }

func (m *Machine) Registry() *obs.Registry {
	if m.registry == nil {
		r := obs.NewRegistry()
		r.Counter("machine.accesses", func() uint64 { return m.totalAccesses })
		if len(m.guests) == 1 && !m.guests[0].migratedOut {
			g := m.guests[0]
			g.walker.RegisterObs(r, "walker.")
			g.walker.TLB().RegisterObs(r, "tlb.")
			m.hier.RegisterObs(r, "cache.")
			g.kernel.RegisterObs(r, "guest.")
			g.kernel.Memory().Buddy().RegisterObs(r, "buddy.guest.")
		} else {
			for _, g := range m.guests {
				if g.migratedOut {
					continue
				}
				p := fmt.Sprintf("vm%d.", g.index)
				g.walker.RegisterObs(r, p+"walker.")
				g.walker.TLB().RegisterObs(r, p+"tlb.")
				g.kernel.RegisterObs(r, p+"guest.")
				g.kernel.Memory().Buddy().RegisterObs(r, p+"buddy.guest.")
			}
			m.hier.RegisterObs(r, "cache.")
		}
		m.host.Memory().Buddy().RegisterObs(r, "buddy.host.")
		if m.balloon != nil {
			// Balloon counters exist only on balloon-armed machines, so
			// zero-pressure telemetry keeps its historical schema.
			m.balloon.RegisterObs(r, "balloon.")
			for _, g := range m.guests {
				if g.migratedOut {
					continue
				}
				g := g
				p := "guest."
				if len(m.guests) > 1 {
					p = fmt.Sprintf("vm%d.guest.", g.index)
				}
				r.Counter(p+"balloon_pages", g.kernel.BalloonPages)
				r.Counter(p+"balloon_target", g.kernel.BalloonTarget)
			}
		}
		m.registry = r
	}
	return m.registry
}
