// Observability for the assembled machine (DESIGN.md §8): one aggregated
// Stats snapshot across every stat-bearing component, the Report returned
// to the facade, and the named counter registry behind run telemetry.
package vm

import (
	"ptemagnet/internal/buddy"
	"ptemagnet/internal/cache"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/nested"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/tlb"
)

// Stats aggregates every counter the machine owns: its own access total
// plus the per-component stats, each following the Snapshot/Delta
// contract.
type Stats struct {
	// Accesses is the machine-wide executed access count.
	Accesses uint64
	// Walker holds the nested page-walker counters.
	Walker nested.Stats
	// Cache holds the data-cache hierarchy counters.
	Cache cache.Stats
	// TLB holds the main two-level TLB counters.
	TLB tlb.TwoLevelStats
	// Guest holds the guest kernel counters.
	Guest guestos.Stats
	// GuestBuddy and HostBuddy hold the two buddy allocators' counters.
	GuestBuddy buddy.Stats
	HostBuddy  buddy.Stats
}

// Delta returns the component-wise difference s - prev.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Accesses:   s.Accesses - prev.Accesses,
		Walker:     s.Walker.Delta(prev.Walker),
		Cache:      s.Cache.Delta(prev.Cache),
		TLB:        s.TLB.Delta(prev.TLB),
		Guest:      s.Guest.Delta(prev.Guest),
		GuestBuddy: s.GuestBuddy.Delta(prev.GuestBuddy),
		HostBuddy:  s.HostBuddy.Delta(prev.HostBuddy),
	}
}

// Snapshot reads every component's counters at once.
func (m *Machine) Snapshot() Stats {
	return Stats{
		Accesses:   m.totalAccesses,
		Walker:     m.walker.Snapshot(),
		Cache:      m.hier.Snapshot(),
		TLB:        m.walker.TLB().Snapshot(),
		Guest:      m.guest.Snapshot(),
		GuestBuddy: m.guest.Memory().Buddy().Snapshot(),
		HostBuddy:  m.host.Memory().Buddy().Snapshot(),
	}
}

// steadyStats returns the counters accumulated after the primary-init
// boundary (the whole run if the boundary was never reached).
func (m *Machine) steadyStats() Stats {
	whole := m.Snapshot()
	if !m.steadySnapTaken {
		return whole
	}
	return whole.Delta(m.statsAtInit)
}

// Report is the aggregated observation of one machine after a run: the
// whole-run and steady-window counters plus the per-primary task reports
// (including host-PT fragmentation).
type Report struct {
	// Whole holds counters for the entire run; Steady for the §3.3
	// measurement window (after every primary's init boundary).
	Whole  Stats
	Steady Stats
	// Tasks holds one report per primary task, in task order.
	Tasks []TaskReport
}

// Observe assembles the machine's aggregated report. It walks page tables
// to compute per-task fragmentation, so it is a post-run call, not a
// hot-path one.
func (m *Machine) Observe() Report {
	whole := m.Snapshot()
	steady := whole
	if m.steadySnapTaken {
		steady = whole.Delta(m.statsAtInit)
	}
	return Report{Whole: whole, Steady: steady, Tasks: m.Report()}
}

// Registry returns the machine's named counter registry, built on first
// use. Registration order is fixed by code order here — never reordered,
// only appended to — because it is the output order of every telemetry
// encoding. The registry holds read closures over the components' own
// counter fields: the hot loop keeps bumping plain struct fields, and
// counters are only read when a snapshot is taken.
func (m *Machine) Registry() *obs.Registry {
	if m.registry == nil {
		r := obs.NewRegistry()
		r.Counter("machine.accesses", func() uint64 { return m.totalAccesses })
		m.walker.RegisterObs(r, "walker.")
		m.walker.TLB().RegisterObs(r, "tlb.")
		m.hier.RegisterObs(r, "cache.")
		m.guest.RegisterObs(r, "guest.")
		m.guest.Memory().Buddy().RegisterObs(r, "buddy.guest.")
		m.host.Memory().Buddy().RegisterObs(r, "buddy.host.")
		m.registry = r
	}
	return m.registry
}
