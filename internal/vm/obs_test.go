package vm

import (
	"reflect"
	"testing"

	"ptemagnet/internal/guestos"
	"ptemagnet/internal/workload"
)

// runSmallMachine builds and runs a small colocated scenario, returning the
// machine for observation.
func runSmallMachine(t *testing.T, policy guestos.AllocPolicy) *Machine {
	t.Helper()
	m, err := New(smallConfig(policy))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddTask(workload.NewPagerank(smallGraph(7)), RolePrimary); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddTask(workload.NewPyaes(workload.CorunnerConfig{FootprintBytes: 2 << 20, Seed: 8}), RoleCorunner); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCountersMonotonicWithinRun pins the registry contract that counters
// only ever count up: every named counter reads zero on a fresh machine
// and is >= that floor after a run, and a second snapshot without further
// work is identical to the first.
func TestCountersMonotonicWithinRun(t *testing.T) {
	m, err := New(smallConfig(guestos.PolicyPTEMagnet))
	if err != nil {
		t.Fatal(err)
	}
	before := m.Registry().Snapshot()
	if before.Len() == 0 {
		t.Fatal("registry is empty")
	}
	if _, err := m.AddTask(workload.NewPagerank(smallGraph(7)), RolePrimary); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	after := m.Registry().Snapshot()
	if after.Len() != before.Len() {
		t.Fatalf("counter set changed mid-run: %d before, %d after", before.Len(), after.Len())
	}
	for i := 0; i < after.Len(); i++ {
		if after.Name(i) != before.Name(i) {
			t.Fatalf("counter %d renamed mid-run: %q -> %q", i, before.Name(i), after.Name(i))
		}
		if after.Value(i) < before.Value(i) {
			t.Errorf("counter %s went backwards: %d -> %d", after.Name(i), before.Value(i), after.Value(i))
		}
	}
	if v, ok := after.Get("machine.accesses"); !ok || v == 0 {
		t.Errorf("machine.accesses = %d, %v after a run", v, ok)
	}
	again := m.Registry().Snapshot()
	if !reflect.DeepEqual(after.Delta(again), after.Delta(after)) {
		t.Error("counters moved between two idle snapshots")
	}
}

// TestStatsDeltaRoundTrip pins the Snapshot/Delta algebra on the machine's
// aggregated Stats: delta against the zero value is the identity, delta
// against itself is zero, and whole == init + steady window.
func TestStatsDeltaRoundTrip(t *testing.T) {
	m := runSmallMachine(t, guestos.PolicyPTEMagnet)
	s := m.Snapshot()
	if s.Accesses == 0 || s.Walker.Lookups == 0 || s.Guest.BuddyCalls == 0 {
		t.Fatalf("snapshot did not observe the run: %+v", s)
	}
	if got := s.Delta(Stats{}); !reflect.DeepEqual(got, s) {
		t.Errorf("Delta(zero) != identity:\n%+v\n%+v", got, s)
	}
	if got := s.Delta(s); !reflect.DeepEqual(got, Stats{}) {
		t.Errorf("Delta(self) != zero: %+v", got)
	}
	rep := m.Observe()
	if !reflect.DeepEqual(rep.Whole, s) {
		t.Errorf("Observe().Whole != Snapshot():\n%+v\n%+v", rep.Whole, s)
	}
	// Steady is the window after the init boundary, so the remainder
	// (Whole - Steady) plus Steady must reconstruct Whole exactly.
	init := rep.Whole.Delta(rep.Steady)
	if init.Accesses+rep.Steady.Accesses != rep.Whole.Accesses {
		t.Errorf("init(%d) + steady(%d) != whole(%d) accesses",
			init.Accesses, rep.Steady.Accesses, rep.Whole.Accesses)
	}
	if init.Walker.Walks+rep.Steady.Walker.Walks != rep.Whole.Walker.Walks {
		t.Errorf("walker walks do not recombine: %d + %d != %d",
			init.Walker.Walks, rep.Steady.Walker.Walks, rep.Whole.Walker.Walks)
	}
}

// TestSteadySnapshotMatchesReport pins that the steady-window counters
// derived from Snapshot deltas equal the aggregated report's view.
func TestSteadySnapshotMatchesReport(t *testing.T) {
	m := runSmallMachine(t, guestos.PolicyDefault)
	rep := m.Observe()
	steady := m.steadyStats()
	if got := steady.Walker; !reflect.DeepEqual(got, rep.Steady.Walker) {
		t.Errorf("steady walker = %+v, want %+v", got, rep.Steady.Walker)
	}
	if got := steady.Cache.Hits; !reflect.DeepEqual(got, rep.Steady.Cache.Hits) {
		t.Errorf("steady cache hits = %v, want %v", got, rep.Steady.Cache.Hits)
	}
}

// TestRegistryAgreesWithSnapshot cross-checks the two observation paths:
// the named counters must read exactly the values the typed Stats carry.
func TestRegistryAgreesWithSnapshot(t *testing.T) {
	m := runSmallMachine(t, guestos.PolicyPTEMagnet)
	s := m.Snapshot()
	c := m.Registry().Snapshot()
	checks := []struct {
		name string
		want uint64
	}{
		{"machine.accesses", s.Accesses},
		{"walker.lookups", s.Walker.Lookups},
		{"walker.walks", s.Walker.Walks},
		{"tlb.lookups", s.TLB.Lookups},
		{"guest.buddy_calls", s.Guest.BuddyCalls},
		{"buddy.guest.splits", s.GuestBuddy.Splits},
		{"buddy.host.splits", s.HostBuddy.Splits},
	}
	for _, ck := range checks {
		got, ok := c.Get(ck.name)
		if !ok {
			t.Errorf("counter %s not registered", ck.name)
			continue
		}
		if got != ck.want {
			t.Errorf("counter %s = %d, want %d", ck.name, got, ck.want)
		}
	}
}
