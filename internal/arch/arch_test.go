package arch

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if PageSize != 4096 {
		t.Errorf("PageSize = %d, want 4096", PageSize)
	}
	if CacheBlockSize != 64 {
		t.Errorf("CacheBlockSize = %d, want 64", CacheBlockSize)
	}
	if GroupPages != 8 {
		t.Errorf("GroupPages = %d, want 8 (paper: 8 PTEs per cache block)", GroupPages)
	}
	if GroupBytes != 32*1024 {
		t.Errorf("GroupBytes = %d, want 32KB", GroupBytes)
	}
	if PTNodeBytes != PageSize {
		t.Errorf("PTNodeBytes = %d, want one page", PTNodeBytes)
	}
	if VABits != 48 {
		t.Errorf("VABits = %d, want 48", VABits)
	}
}

func TestVirtAddrHelpers(t *testing.T) {
	va := VirtAddr(0x12345678)
	if got := va.PageBase(); got != 0x12345000 {
		t.Errorf("PageBase = %#x, want 0x12345000", got)
	}
	if got := va.PageOffset(); got != 0x678 {
		t.Errorf("PageOffset = %#x, want 0x678", got)
	}
	if got := va.PageNumber(); got != 0x12345 {
		t.Errorf("PageNumber = %#x, want 0x12345", got)
	}
	if got := va.GroupBase(); got != 0x12340000 {
		t.Errorf("GroupBase = %#x, want 0x12340000", got)
	}
	if got := va.GroupIndex(); got != 5 {
		t.Errorf("GroupIndex = %d, want 5", got)
	}
}

func TestPTIndexDecomposition(t *testing.T) {
	// Construct an address with known per-level indices and check that
	// PTIndex recovers them.
	idx := [PTLevels + 1]int{0, 17, 301, 42, 511} // idx[level]
	var va uint64
	for level := 1; level <= PTLevels; level++ {
		va |= uint64(idx[level]) << (PageShift + (level-1)*PTIndexBits)
	}
	va |= 0xABC // page offset must not affect indices
	for level := 1; level <= PTLevels; level++ {
		if got := VirtAddr(va).PTIndex(level); got != idx[level] {
			t.Errorf("PTIndex(%d) = %d, want %d", level, got, idx[level])
		}
	}
}

func TestPTIndexRange(t *testing.T) {
	f := func(raw uint64) bool {
		va := VirtAddr(raw)
		for level := 1; level <= PTLevels; level++ {
			i := va.PTIndex(level)
			if i < 0 || i >= PTEntriesPerNode {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupBaseProperties(t *testing.T) {
	f := func(raw uint64) bool {
		va := VirtAddr(raw)
		gb := va.GroupBase()
		// Group base is group-aligned, at or below va, within one group.
		return uint64(gb)%GroupBytes == 0 &&
			gb <= va &&
			uint64(va)-uint64(gb) < GroupBytes &&
			// All pages of the group share the group base.
			(va.PageBase().GroupBase() == gb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupIndexCoversGroup(t *testing.T) {
	base := VirtAddr(0x7f0000000000)
	seen := map[int]bool{}
	for p := 0; p < GroupPages; p++ {
		va := base + VirtAddr(p*PageSize)
		if va.GroupBase() != base {
			t.Fatalf("page %d: GroupBase = %#x, want %#x", p, va.GroupBase(), base)
		}
		seen[va.GroupIndex()] = true
	}
	if len(seen) != GroupPages {
		t.Errorf("group indices cover %d distinct values, want %d", len(seen), GroupPages)
	}
}

func TestPhysAddrHelpers(t *testing.T) {
	pa := PhysAddr(0x2345678)
	if got := pa.FrameNumber(); got != 0x2345 {
		t.Errorf("FrameNumber = %#x, want 0x2345", got)
	}
	if got := pa.PageBase(); got != 0x2345000 {
		t.Errorf("PageBase = %#x, want 0x2345000", got)
	}
	if got := pa.CacheBlock(); got != 0x2345678>>6 {
		t.Errorf("CacheBlock = %#x, want %#x", got, 0x2345678>>6)
	}
	if got := FrameToPhys(0x2345); got != 0x2345000 {
		t.Errorf("FrameToPhys = %#x, want 0x2345000", got)
	}
}

func TestAdjacentPTEsShareCacheBlock(t *testing.T) {
	// Eight consecutive 8-byte PTEs starting at a block-aligned physical
	// address must land in one cache block; the ninth must not. This is
	// the packing property from Figure 3 of the paper.
	base := PhysAddr(0x1000)
	first := base.CacheBlock()
	for i := 0; i < PTEsPerBlock; i++ {
		pa := base + PhysAddr(i*PTEBytes)
		if pa.CacheBlock() != first {
			t.Errorf("PTE %d at %#x: block %d, want %d", i, pa, pa.CacheBlock(), first)
		}
	}
	ninth := base + PhysAddr(PTEsPerBlock*PTEBytes)
	if ninth.CacheBlock() == first {
		t.Errorf("PTE 8 unexpectedly shares the block")
	}
}

func TestAlignHelpers(t *testing.T) {
	cases := []struct {
		v, align, up, down uint64
	}{
		{0, 8, 0, 0},
		{1, 8, 8, 0},
		{8, 8, 8, 8},
		{9, 8, 16, 8},
		{4095, 4096, 4096, 0},
		{4096, 4096, 4096, 4096},
		{4097, 4096, 8192, 4096},
	}
	for _, c := range cases {
		if got := AlignUp(c.v, c.align); got != c.up {
			t.Errorf("AlignUp(%d,%d) = %d, want %d", c.v, c.align, got, c.up)
		}
		if got := AlignDown(c.v, c.align); got != c.down {
			t.Errorf("AlignDown(%d,%d) = %d, want %d", c.v, c.align, got, c.down)
		}
	}
}

func TestBytesToPages(t *testing.T) {
	cases := []struct{ bytes, pages uint64 }{
		{0, 0}, {1, 1}, {4095, 1}, {4096, 1}, {4097, 2}, {8192, 2},
	}
	for _, c := range cases {
		if got := BytesToPages(c.bytes); got != c.pages {
			t.Errorf("BytesToPages(%d) = %d, want %d", c.bytes, got, c.pages)
		}
	}
	if got := PagesToBytes(3); got != 3*4096 {
		t.Errorf("PagesToBytes(3) = %d", got)
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 8, 1 << 20, 1 << 62} {
		if !IsPowerOfTwo(v) {
			t.Errorf("IsPowerOfTwo(%d) = false", v)
		}
	}
	for _, v := range []uint64{0, 3, 6, 12, (1 << 20) + 1} {
		if IsPowerOfTwo(v) {
			t.Errorf("IsPowerOfTwo(%d) = true", v)
		}
	}
}
