// Package arch defines the address-space geometry shared by every layer of
// the simulator: page and cache-block sizes, virtual/physical address types,
// and the x86-64 four-level radix page-table layout (512 eight-byte entries
// per node, 9 bits of index per level).
//
// All other packages derive their constants from this one so that the whole
// simulation agrees on a single geometry. The values mirror Linux/x86-64
// with 4KB base pages, which is the configuration the PTEMagnet paper
// evaluates (large pages disabled, as is common in public clouds).
package arch

// Fundamental sizes. These are the x86-64 values; they are constants rather
// than configuration because PTEMagnet's central insight — eight 8-byte PTEs
// share one 64-byte cache block, so an eight-page (32KB) reservation aligns
// host PTEs to a single block — is tied to this exact geometry.
const (
	// PageShift is log2 of the base page size.
	PageShift = 12
	// PageSize is the base (small) page size in bytes: 4KB.
	PageSize = 1 << PageShift
	// PageMask masks the offset-within-page bits of an address.
	PageMask = PageSize - 1

	// CacheBlockShift is log2 of the CPU cache block size.
	CacheBlockShift = 6
	// CacheBlockSize is the CPU cache block size in bytes: 64B.
	CacheBlockSize = 1 << CacheBlockShift

	// PTEBytes is the size of one page-table entry.
	PTEBytes = 8
	// PTEsPerBlock is how many PTEs fit into one cache block. This is the
	// reservation group size used by PTEMagnet: 64B / 8B = 8 pages.
	PTEsPerBlock = CacheBlockSize / PTEBytes

	// GroupPages is the PTEMagnet reservation group size in pages. A group
	// of eight adjacent pages is exactly the span whose leaf PTEs occupy a
	// single cache block.
	GroupPages = PTEsPerBlock
	// GroupShift is log2 of the group span in bytes (32KB → 15).
	GroupShift = PageShift + 3
	// GroupBytes is the span of one reservation group in bytes: 32KB.
	GroupBytes = 1 << GroupShift
	// GroupMask masks the offset-within-group bits of an address.
	GroupMask = GroupBytes - 1

	// PTLevels is the number of radix-tree levels in a page table.
	// Level 4 is the root (PML4), level 1 the leaf (PT).
	PTLevels = 4
	// PTIndexBits is the number of index bits consumed per level.
	PTIndexBits = 9
	// PTEntriesPerNode is the fan-out of one page-table node.
	PTEntriesPerNode = 1 << PTIndexBits
	// PTNodeBytes is the size of one page-table node: exactly one page.
	PTNodeBytes = PTEntriesPerNode * PTEBytes

	// VABits is the number of meaningful virtual-address bits (x86-64
	// four-level paging translates 48 bits).
	VABits = PageShift + PTLevels*PTIndexBits

	// WordBytes is the machine word size the workloads stride by when
	// touching memory: 8 bytes, matching the PTE size.
	WordBytes = 8
	// WordsPerPage is how many 8-byte words fit in one base page (512).
	// Workload access generators use it to pick word-aligned offsets
	// within a page.
	WordsPerPage = PageSize / WordBytes
)

// VirtAddr is a virtual address. Guest code addresses guest-virtual space;
// the host kernel sees guest-physical addresses as host-virtual addresses in
// the VM process's address space.
type VirtAddr uint64

// PhysAddr is a physical address: guest-physical inside a VM, host-physical
// on the machine. Which one is meant is determined by the owning layer.
type PhysAddr uint64

// NoPhysAddr marks an unmapped or invalid physical address. Physical frame 0
// is never handed out by the allocators, so 0 is safe as a sentinel.
const NoPhysAddr PhysAddr = 0

// PageNumber returns the virtual page number of va.
func (va VirtAddr) PageNumber() uint64 { return uint64(va) >> PageShift }

// PageBase returns va rounded down to its page boundary.
func (va VirtAddr) PageBase() VirtAddr { return va &^ VirtAddr(PageMask) }

// PageOffset returns the offset of va within its page.
func (va VirtAddr) PageOffset() uint64 { return uint64(va) & PageMask }

// GroupBase returns va rounded down to its 32KB reservation-group boundary.
// This is the rounding PTEMagnet's page-fault handler applies before the
// PaRT lookup (paper §4.2).
func (va VirtAddr) GroupBase() VirtAddr { return va &^ VirtAddr(GroupMask) }

// GroupIndex returns the index of va's page within its reservation group,
// in [0, GroupPages).
func (va VirtAddr) GroupIndex() int {
	return int((uint64(va) >> PageShift) & (GroupPages - 1))
}

// PTIndex returns the radix-tree index consumed at the given page-table
// level (4 = root … 1 = leaf) when translating va.
func (va VirtAddr) PTIndex(level int) int {
	shift := PageShift + (level-1)*PTIndexBits
	return int((uint64(va) >> shift) & (PTEntriesPerNode - 1))
}

// FrameNumber returns the physical frame number of pa.
func (pa PhysAddr) FrameNumber() uint64 { return uint64(pa) >> PageShift }

// PageBase returns pa rounded down to its page boundary.
func (pa PhysAddr) PageBase() PhysAddr { return pa &^ PhysAddr(PageMask) }

// PageOffset returns the offset of pa within its page.
func (pa PhysAddr) PageOffset() uint64 { return uint64(pa) & PageMask }

// CacheBlock returns the cache-block number of pa. Two physical addresses
// with equal CacheBlock values contend for (and share) one cache block —
// the quantity PTEMagnet's fragmentation metric is defined over.
func (pa PhysAddr) CacheBlock() uint64 { return uint64(pa) >> CacheBlockShift }

// FrameToPhys converts a physical frame number to the address of its first
// byte.
func FrameToPhys(frame uint64) PhysAddr { return PhysAddr(frame << PageShift) }

// PagesToBytes converts a page count to bytes.
func PagesToBytes(pages uint64) uint64 { return pages << PageShift }

// BytesToPages converts a byte count to pages, rounding up.
func BytesToPages(bytes uint64) uint64 {
	return (bytes + PageSize - 1) >> PageShift
}

// AlignUp rounds v up to the next multiple of align, which must be a power
// of two.
func AlignUp(v, align uint64) uint64 { return (v + align - 1) &^ (align - 1) }

// AlignDown rounds v down to a multiple of align, which must be a power of
// two.
func AlignDown(v, align uint64) uint64 { return v &^ (align - 1) }

// IsPowerOfTwo reports whether v is a power of two. Zero is not.
func IsPowerOfTwo(v uint64) bool { return v != 0 && v&(v-1) == 0 }
