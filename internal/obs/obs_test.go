package obs

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

func testRegistry(a, b *uint64, hist *[4]uint64) *Registry {
	r := NewRegistry()
	r.Counter("alpha", func() uint64 { return *a })
	r.Counter("beta", func() uint64 { return *b })
	r.Histogram("hist", len(hist), func(i int) uint64 { return hist[i] })
	return r
}

func TestRegistryOrderAndSnapshot(t *testing.T) {
	var a, b uint64 = 3, 5
	hist := [4]uint64{1, 2, 3, 4}
	r := testRegistry(&a, &b, &hist)
	want := []string{"alpha", "beta", "hist[0]", "hist[1]", "hist[2]", "hist[3]"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	s := r.Snapshot()
	if s.Len() != len(want) {
		t.Fatalf("snapshot has %d counters, want %d", s.Len(), len(want))
	}
	if v, ok := s.Get("beta"); !ok || v != 5 {
		t.Fatalf("Get(beta) = %d, %v", v, ok)
	}
	if v, ok := s.Get("hist[2]"); !ok || v != 3 {
		t.Fatalf("Get(hist[2]) = %d, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) reported present")
	}
	// Snapshots are point-in-time: later bumps must not leak in.
	a = 100
	if v, _ := s.Get("alpha"); v != 3 {
		t.Fatalf("snapshot mutated after counter bump: alpha = %d", v)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", func() uint64 { return 0 })
	r.Counter("x", func() uint64 { return 0 })
}

func TestSnapshotDeltaRoundTrip(t *testing.T) {
	var a, b uint64 = 10, 20
	hist := [4]uint64{7, 0, 0, 9}
	r := testRegistry(&a, &b, &hist)
	prev := r.Snapshot()
	a, b, hist[3] = 15, 21, 12
	cur := r.Snapshot()

	// Identity: delta against the zero snapshot is the snapshot itself.
	if d := cur.Delta(Snapshot{}); !reflect.DeepEqual(d.vals, cur.vals) {
		t.Fatalf("Delta(zero) = %v, want %v", d.vals, cur.vals)
	}
	// Self-delta is all zeros.
	for i, v := range cur.Delta(cur).vals {
		if v != 0 {
			t.Fatalf("Delta(self)[%d] = %d, want 0", i, v)
		}
	}
	// prev + (cur - prev) == cur, counter-wise.
	d := cur.Delta(prev)
	for i := range cur.vals {
		if prev.vals[i]+d.vals[i] != cur.vals[i] {
			t.Fatalf("round trip failed at %s: %d + %d != %d",
				cur.Name(i), prev.vals[i], d.vals[i], cur.vals[i])
		}
	}
}

func TestSnapshotDeltaMismatchPanics(t *testing.T) {
	var a, b uint64
	hist := [4]uint64{}
	r1 := testRegistry(&a, &b, &hist)
	r2 := NewRegistry()
	r2.Counter("other", func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Delta did not panic")
		}
	}()
	r1.Snapshot().Delta(r2.Snapshot())
}

func TestSnapshotJSONOrdered(t *testing.T) {
	var a, b uint64 = 1, 2
	hist := [4]uint64{0, 0, 0, 4}
	r := testRegistry(&a, &b, &hist)
	got, err := r.Snapshot().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"alpha":1,"beta":2,"hist[0]":0,"hist[1]":0,"hist[2]":0,"hist[3]":4}`
	if string(got) != want {
		t.Fatalf("MarshalJSON = %s, want %s", got, want)
	}
}

func TestRunRecordJSON(t *testing.T) {
	var a, b uint64 = 1, 2
	hist := [4]uint64{}
	r := testRegistry(&a, &b, &hist)
	rec := RunRecord{
		Set: "table1", Scenario: "colocated", Fingerprint: "00aa", ElapsedMS: 42,
		Counters: r.Snapshot(),
	}
	got, err := rec.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"set":"table1","scenario":"colocated","fingerprint":"00aa","elapsed_ms":42,` +
		`"counters":{"alpha":1,"beta":2,"hist[0]":0,"hist[1]":0,"hist[2]":0,"hist[3]":0}}`
	if string(got) != want {
		t.Fatalf("MarshalJSON =\n%s\nwant\n%s", got, want)
	}
}

func TestCollectorSortsIndependentOfAddOrder(t *testing.T) {
	mk := func(set, sc, fp string) RunRecord {
		return RunRecord{Set: set, Scenario: sc, Fingerprint: fp}
	}
	recs := []RunRecord{
		mk("suite", "cc/r0/default", "bb"),
		mk("suite", "cc/r0/default", "aa"),
		mk("table1", "isolation", "cc"),
		mk("suite", "bfs/r0/default", "dd"),
	}
	var c1, c2 Collector
	for _, r := range recs {
		c1.Add(r)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		c2.Add(recs[i])
	}
	got1, got2 := c1.Records(), c2.Records()
	if !reflect.DeepEqual(got1, got2) {
		t.Fatalf("sorted records depend on add order:\n%v\n%v", got1, got2)
	}
	wantOrder := []string{"bfs/r0/default", "cc/r0/default", "cc/r0/default", "isolation"}
	for i, r := range got1 {
		if r.Scenario != wantOrder[i] {
			t.Fatalf("record %d is %q, want %q", i, r.Scenario, wantOrder[i])
		}
	}
	if got1[1].Fingerprint != "aa" || got1[2].Fingerprint != "bb" {
		t.Fatalf("fingerprint tiebreak not applied: %v", got1)
	}
}

func TestWriteJSONLAndCSV(t *testing.T) {
	var a, b uint64 = 9, 4
	hist := [4]uint64{}
	r := testRegistry(&a, &b, &hist)
	recs := []RunRecord{
		{Set: "s", Scenario: "x", Fingerprint: "f1", ElapsedMS: 1, Counters: r.Snapshot()},
		{Set: "s", Scenario: "y", Fingerprint: "f2", ElapsedMS: 2, Counters: r.Snapshot()},
	}
	var jl bytes.Buffer
	if err := WriteJSONL(&jl, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(jl.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL has %d lines, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], `{"set":"s","scenario":"x"`) {
		t.Fatalf("unexpected first line: %s", lines[0])
	}

	var cs bytes.Buffer
	if err := WriteCSV(&cs, recs); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimRight(cs.String(), "\n"), "\n")
	if len(rows) != 3 {
		t.Fatalf("CSV has %d rows, want 3", len(rows))
	}
	if rows[0] != "set,scenario,fingerprint,elapsed_ms,alpha,beta,hist[0],hist[1],hist[2],hist[3]" {
		t.Fatalf("unexpected CSV header: %s", rows[0])
	}
	if rows[1] != "s,x,f1,1,9,4,0,0,0,0" {
		t.Fatalf("unexpected CSV row: %s", rows[1])
	}
}

func TestFingerprintStable(t *testing.T) {
	a := Fingerprint("pagerank", "default")
	b := Fingerprint("pagerank", "default")
	if a != b {
		t.Fatalf("fingerprint not stable: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("fingerprint length %d, want 16", len(a))
	}
	if Fingerprint("pagerank", "default") == Fingerprint("pagerankdefault") {
		t.Fatal("fingerprint does not separate parts")
	}
}

func TestCollectorContext(t *testing.T) {
	if CollectorFrom(context.Background()) != nil {
		t.Fatal("empty context returned a collector")
	}
	c := &Collector{}
	ctx := WithCollector(context.Background(), c)
	if CollectorFrom(ctx) != c {
		t.Fatal("collector did not round-trip through context")
	}
}
