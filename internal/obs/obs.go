// Package obs is the simulator's observability layer (DESIGN.md §8).
//
// It provides a typed counter/histogram registry with a fixed registration
// order, an ordered Snapshot/Delta pair over the registered counters, and
// structured per-run telemetry (RunRecord) with deterministic JSON Lines
// and CSV encodings.
//
// The design keeps the hot path untouched: components bump plain uint64
// struct fields in their inner loops exactly as before, and the registry
// holds read closures over those fields. Reading a counter therefore
// happens only at snapshot boundaries (end of run, inspection tools), and
// registering counters allocates nothing on the access path. All ordering
// is fixed at registration time — no map iteration anywhere near output —
// so two runs of the same configuration produce byte-identical encodings.
package obs

import (
	"fmt"
	"strconv"
)

// Registry is an ordered collection of named uint64 counters. Counters are
// registered once, at machine construction time, and read through closures
// when a Snapshot is taken. Registration order is the output order
// everywhere (Snapshot iteration, JSON, CSV), so it must be deterministic:
// register counters in fixed code order, never from a map range.
//
// A Registry is not safe for concurrent registration; snapshots are safe
// as long as the underlying counters are not being written (the simulator
// guarantees this by snapshotting only between runs, never mid-quantum).
type Registry struct {
	names []string
	reads []func() uint64
	index map[string]int // registration-time duplicate check only
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// Counter registers a named counter backed by read. It panics on an empty
// name, a nil reader, or a duplicate name — all programming errors that
// must fail loudly at construction time.
func (r *Registry) Counter(name string, read func() uint64) {
	if name == "" {
		panic("obs: empty counter name")
	}
	if read == nil {
		panic(fmt.Sprintf("obs: nil reader for counter %q", name))
	}
	if _, dup := r.index[name]; dup {
		panic(fmt.Sprintf("obs: counter %q registered twice", name))
	}
	r.index[name] = len(r.names)
	r.names = append(r.names, name)
	r.reads = append(r.reads, read)
}

// Histogram registers buckets consecutive counters named name[0..buckets),
// each reading one bucket of a fixed-size histogram.
func (r *Registry) Histogram(name string, buckets int, read func(bucket int) uint64) {
	if read == nil {
		panic(fmt.Sprintf("obs: nil reader for histogram %q", name))
	}
	for i := 0; i < buckets; i++ {
		i := i
		r.Counter(name+"["+strconv.Itoa(i)+"]", func() uint64 { return read(i) })
	}
}

// Len returns the number of registered counters.
func (r *Registry) Len() int { return len(r.names) }

// Names returns the counter names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.names...)
}

// Snapshot reads every counter once, in registration order.
func (r *Registry) Snapshot() Snapshot {
	vals := make([]uint64, len(r.reads))
	for i, read := range r.reads {
		vals[i] = read()
	}
	return Snapshot{names: r.names, vals: vals}
}

// Snapshot is a point-in-time reading of a registry: parallel name/value
// slices in registration order. The zero Snapshot acts as "all zeros" for
// Delta, so s.Delta(Snapshot{}) == s.
type Snapshot struct {
	names []string // shared with the registry; never mutated
	vals  []uint64
}

// Len returns the number of counters in the snapshot.
func (s Snapshot) Len() int { return len(s.vals) }

// Name returns the i-th counter name.
func (s Snapshot) Name(i int) string { return s.names[i] }

// Value returns the i-th counter value.
func (s Snapshot) Value(i int) uint64 { return s.vals[i] }

// Get returns the value of the named counter by linear scan. It is a
// convenience for tests and tools; hot paths should never look counters up
// by name.
func (s Snapshot) Get(name string) (uint64, bool) {
	for i, n := range s.names {
		if n == name {
			return s.vals[i], true
		}
	}
	return 0, false
}

// Each calls fn for every counter in registration order.
func (s Snapshot) Each(fn func(name string, value uint64)) {
	for i, n := range s.names {
		fn(n, s.vals[i])
	}
}

// Delta returns the counter-wise difference s - prev. The zero Snapshot is
// accepted as prev and treated as all zeros; otherwise prev must come from
// the same registry (same names in the same order), and a mismatch panics.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	if prev.Len() == 0 && prev.names == nil {
		return Snapshot{names: s.names, vals: append([]uint64(nil), s.vals...)}
	}
	if len(prev.vals) != len(s.vals) {
		panic(fmt.Sprintf("obs: Delta over mismatched snapshots (%d vs %d counters)", len(s.vals), len(prev.vals)))
	}
	vals := make([]uint64, len(s.vals))
	for i := range s.vals {
		if s.names[i] != prev.names[i] {
			panic(fmt.Sprintf("obs: Delta over mismatched snapshots (%q vs %q at index %d)", s.names[i], prev.names[i], i))
		}
		vals[i] = s.vals[i] - prev.vals[i]
	}
	return Snapshot{names: s.names, vals: vals}
}

// MarshalJSON encodes the snapshot as a JSON object whose keys appear in
// registration order. Key order is part of the determinism contract: the
// same configuration must produce byte-identical output.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	return s.appendJSON(nil), nil
}

func (s Snapshot) appendJSON(b []byte) []byte {
	b = append(b, '{')
	for i, n := range s.names {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, n)
		b = append(b, ':')
		b = strconv.AppendUint(b, s.vals[i], 10)
	}
	return append(b, '}')
}
