package obs

import (
	"bufio"
	"context"
	"encoding/csv"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"sync"
)

// RunRecord is the telemetry emitted for one scenario execution: where it
// ran (set/scenario), what configuration it was (fingerprint), how long it
// took (the only nondeterministic field, measured through
// engine.StartTimer), and every counter the machine exposes.
type RunRecord struct {
	Set         string
	Scenario    string
	Fingerprint string
	ElapsedMS   int64
	Counters    Snapshot
}

// MarshalJSON encodes the record with a fixed key order:
// set, scenario, fingerprint, elapsed_ms, counters. Everything except
// elapsed_ms is deterministic for a given configuration.
func (r RunRecord) MarshalJSON() ([]byte, error) {
	return r.appendJSON(nil), nil
}

func (r RunRecord) appendJSON(b []byte) []byte {
	b = append(b, `{"set":`...)
	b = strconv.AppendQuote(b, r.Set)
	b = append(b, `,"scenario":`...)
	b = strconv.AppendQuote(b, r.Scenario)
	b = append(b, `,"fingerprint":`...)
	b = strconv.AppendQuote(b, r.Fingerprint)
	b = append(b, `,"elapsed_ms":`...)
	b = strconv.AppendInt(b, r.ElapsedMS, 10)
	b = append(b, `,"counters":`...)
	b = r.Counters.appendJSON(b)
	return append(b, '}')
}

// Collector accumulates RunRecords from concurrently running scenarios.
// Add is safe to call from engine workers; Records sorts, so the output
// order does not depend on completion order.
type Collector struct {
	mu   sync.Mutex
	recs []RunRecord
}

// Add appends one record.
func (c *Collector) Add(rec RunRecord) {
	c.mu.Lock()
	c.recs = append(c.recs, rec)
	c.mu.Unlock()
}

// Len returns the number of collected records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Records returns a copy of the collected records sorted by
// (Set, Scenario, Fingerprint). The fingerprint disambiguates sets that
// reuse scenario names with different configurations; records identical in
// all three keys are themselves identical modulo timing, so any residual
// tie order is invisible once elapsed_ms is excluded.
func (c *Collector) Records() []RunRecord {
	c.mu.Lock()
	out := append([]RunRecord(nil), c.recs...)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Set != out[j].Set {
			return out[i].Set < out[j].Set
		}
		if out[i].Scenario != out[j].Scenario {
			return out[i].Scenario < out[j].Scenario
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// WriteJSONL writes one JSON object per line in the given order.
func WriteJSONL(w io.Writer, recs []RunRecord) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, rec := range recs {
		buf = rec.appendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV writes the records as CSV: a header row of
// set,scenario,fingerprint,elapsed_ms followed by one column per counter,
// in registration order. All records must share one counter schema.
func WriteCSV(w io.Writer, recs []RunRecord) error {
	if len(recs) == 0 {
		return nil
	}
	cw := csv.NewWriter(w)
	first := recs[0].Counters
	header := make([]string, 0, 4+first.Len())
	header = append(header, "set", "scenario", "fingerprint", "elapsed_ms")
	for i := 0; i < first.Len(); i++ {
		header = append(header, first.Name(i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, rec := range recs {
		if rec.Counters.Len() != first.Len() {
			return fmt.Errorf("obs: record %s/%s has %d counters, header has %d",
				rec.Set, rec.Scenario, rec.Counters.Len(), first.Len())
		}
		row[0] = rec.Set
		row[1] = rec.Scenario
		row[2] = rec.Fingerprint
		row[3] = strconv.FormatInt(rec.ElapsedMS, 10)
		for i := 0; i < rec.Counters.Len(); i++ {
			if rec.Counters.Name(i) != first.Name(i) {
				return fmt.Errorf("obs: record %s/%s counter %d is %q, header has %q",
					rec.Set, rec.Scenario, i, rec.Counters.Name(i), first.Name(i))
			}
			row[4+i] = strconv.FormatUint(rec.Counters.Value(i), 10)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fingerprint hashes the given parts into a 16-hex-digit configuration
// identity (fnv-1a, matching engine.DeriveSeed's hash family).
func Fingerprint(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

type collectorKey struct{}

// WithCollector returns a context carrying c; sim.RunCtx emits a RunRecord
// to it for every scenario it executes.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, collectorKey{}, c)
}

// CollectorFrom returns the collector attached by WithCollector, or nil.
func CollectorFrom(ctx context.Context) *Collector {
	c, _ := ctx.Value(collectorKey{}).(*Collector)
	return c
}
