package pagetable

import (
	"testing"
	"testing/quick"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/physmem"
)

func newTable(t *testing.T) (*Table, *physmem.Memory) {
	t.Helper()
	mem := physmem.New(16 << 20) // 16MB
	tbl, err := New(mem, physmem.Own(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	return tbl, mem
}

func TestMapTranslate(t *testing.T) {
	tbl, _ := newTable(t)
	va := arch.VirtAddr(0x7f0012345000)
	pa := arch.PhysAddr(0x123000)
	if err := tbl.Map(va, pa, FlagWritable); err != nil {
		t.Fatal(err)
	}
	got, flags, ok := tbl.Translate(va + 0x678)
	if !ok {
		t.Fatal("translate missed")
	}
	if got != pa+0x678 {
		t.Errorf("Translate = %#x, want %#x", got, pa+0x678)
	}
	if flags != FlagWritable {
		t.Errorf("flags = %v", flags)
	}
	if tbl.MappedPages() != 1 {
		t.Errorf("MappedPages = %d", tbl.MappedPages())
	}
}

func TestTranslateUnmapped(t *testing.T) {
	tbl, _ := newTable(t)
	if _, _, ok := tbl.Translate(0x1000); ok {
		t.Error("translate hit on empty table")
	}
	tbl.Map(0x1000, 0x5000, 0)
	if _, _, ok := tbl.Translate(0x2000); ok {
		t.Error("translate hit on sibling page")
	}
}

func TestRemapReplaces(t *testing.T) {
	tbl, _ := newTable(t)
	tbl.Map(0x1000, 0x5000, FlagWritable)
	tbl.Map(0x1000, 0x9000, FlagCOW)
	pa, flags, ok := tbl.Translate(0x1000)
	if !ok || pa != 0x9000 || flags != FlagCOW {
		t.Errorf("after remap: pa=%#x flags=%v ok=%v", pa, flags, ok)
	}
	if tbl.MappedPages() != 1 {
		t.Errorf("MappedPages = %d after remap", tbl.MappedPages())
	}
}

func TestUnmap(t *testing.T) {
	tbl, _ := newTable(t)
	tbl.Map(0x1000, 0x5000, FlagWritable)
	pa, flags, ok := tbl.Unmap(0x1000)
	if !ok || pa != 0x5000 || flags != FlagWritable {
		t.Errorf("Unmap = %#x,%v,%v", pa, flags, ok)
	}
	if _, _, ok := tbl.Translate(0x1000); ok {
		t.Error("page still translates after unmap")
	}
	if _, _, ok := tbl.Unmap(0x1000); ok {
		t.Error("second unmap succeeded")
	}
	if tbl.MappedPages() != 0 {
		t.Errorf("MappedPages = %d", tbl.MappedPages())
	}
}

func TestSetFlags(t *testing.T) {
	tbl, _ := newTable(t)
	tbl.Map(0x1000, 0x5000, FlagWritable)
	if !tbl.SetFlags(0x1000, FlagCOW) {
		t.Fatal("SetFlags failed")
	}
	pa, flags, _ := tbl.Translate(0x1000)
	if pa != 0x5000 || flags != FlagCOW {
		t.Errorf("pa=%#x flags=%v", pa, flags)
	}
	if tbl.SetFlags(0x2000, 0) {
		t.Error("SetFlags on unmapped page succeeded")
	}
}

func TestNodeAllocationShape(t *testing.T) {
	tbl, mem := newTable(t)
	if tbl.NodeCount() != 1 {
		t.Fatalf("fresh table has %d nodes", tbl.NodeCount())
	}
	tbl.Map(0x1000, 0x5000, 0)
	// Root + 3 intermediate/leaf nodes.
	if tbl.NodeCount() != 4 {
		t.Errorf("one mapping created %d nodes, want 4", tbl.NodeCount())
	}
	// A second page in the same leaf node must not allocate.
	tbl.Map(0x2000, 0x6000, 0)
	if tbl.NodeCount() != 4 {
		t.Errorf("adjacent mapping created nodes: %d", tbl.NodeCount())
	}
	// A distant address allocates a fresh path.
	tbl.Map(0x7f0000000000, 0x7000, 0)
	if tbl.NodeCount() != 7 {
		t.Errorf("distant mapping: %d nodes, want 7", tbl.NodeCount())
	}
	if got := mem.CountKind(physmem.KindPageTable); got != uint64(tbl.NodeCount()) {
		t.Errorf("physmem tracks %d PT frames, table has %d nodes", got, tbl.NodeCount())
	}
}

func TestWalkFullTrace(t *testing.T) {
	tbl, _ := newTable(t)
	va := arch.VirtAddr(0x7f0012345000)
	tbl.Map(va, 0xABC000, 0)
	accesses, pa, found := tbl.WalkFull(va + 0x10)
	if !found {
		t.Fatal("walk did not find mapping")
	}
	if pa != 0xABC010 {
		t.Errorf("walk pa = %#x", pa)
	}
	if len(accesses) != arch.PTLevels {
		t.Fatalf("walk took %d accesses, want %d", len(accesses), arch.PTLevels)
	}
	for i, a := range accesses {
		wantLevel := arch.PTLevels - i
		if a.Level != wantLevel {
			t.Errorf("access %d level = %d, want %d", i, a.Level, wantLevel)
		}
	}
	// Root access must be inside the root node at the right index.
	wantRoot := tbl.Root() + arch.PhysAddr(va.PTIndex(4)*arch.PTEBytes)
	if accesses[0].EntryAddr != wantRoot {
		t.Errorf("root entry addr = %#x, want %#x", accesses[0].EntryAddr, wantRoot)
	}
}

func TestWalkStopsAtNonPresent(t *testing.T) {
	tbl, _ := newTable(t)
	accesses, _, found := tbl.WalkFull(0x1000)
	if found {
		t.Fatal("walk found mapping in empty table")
	}
	if len(accesses) != 1 {
		t.Errorf("walk of empty table took %d accesses, want 1 (root only)", len(accesses))
	}
}

func TestWalkFromPWCNode(t *testing.T) {
	tbl, _ := newTable(t)
	va := arch.VirtAddr(0x7f0012345000)
	tbl.Map(va, 0xABC000, 0)
	leafNode, ok := tbl.NodeAt(va, 1)
	if !ok {
		t.Fatal("NodeAt(1) failed")
	}
	accesses, pa, found := tbl.Walk(va, 1, leafNode)
	if !found || pa != 0xABC000 {
		t.Fatalf("PWC walk: pa=%#x found=%v", pa, found)
	}
	if len(accesses) != 1 {
		t.Errorf("PWC walk from leaf node took %d accesses, want 1", len(accesses))
	}
	if accesses[0].Level != 1 {
		t.Errorf("access level = %d", accesses[0].Level)
	}
}

func TestNodeAtLevels(t *testing.T) {
	tbl, _ := newTable(t)
	va := arch.VirtAddr(0x7f0012345000)
	tbl.Map(va, 0xABC000, 0)
	if pa, ok := tbl.NodeAt(va, 4); !ok || pa != tbl.Root() {
		t.Errorf("NodeAt(4) = %#x,%v", pa, ok)
	}
	for level := 3; level >= 1; level-- {
		if _, ok := tbl.NodeAt(va, level); !ok {
			t.Errorf("NodeAt(%d) missing", level)
		}
	}
	if _, ok := tbl.NodeAt(0x1000, 1); ok {
		t.Error("NodeAt(1) exists for unmapped region")
	}
}

func TestLeafEntryAddrPacking(t *testing.T) {
	// Leaf entries of 8 adjacent pages must occupy one cache block and be
	// consecutive — the Figure 3 property.
	tbl, _ := newTable(t)
	base := arch.VirtAddr(0x7f0000000000)
	for i := 0; i < 8; i++ {
		tbl.Map(base+arch.VirtAddr(i*arch.PageSize), arch.PhysAddr(0x100000+i*arch.PageSize), 0)
	}
	first, ok := tbl.LeafEntryAddr(base)
	if !ok {
		t.Fatal("LeafEntryAddr failed")
	}
	for i := 0; i < 8; i++ {
		ea, ok := tbl.LeafEntryAddr(base + arch.VirtAddr(i*arch.PageSize))
		if !ok {
			t.Fatalf("leaf entry %d missing", i)
		}
		if ea != first+arch.PhysAddr(i*arch.PTEBytes) {
			t.Errorf("leaf entry %d at %#x, want consecutive from %#x", i, ea, first)
		}
		if ea.CacheBlock() != first.CacheBlock() {
			t.Errorf("leaf entry %d in different cache block", i)
		}
	}
}

func TestForEachMappedOrdered(t *testing.T) {
	tbl, _ := newTable(t)
	vas := []arch.VirtAddr{0x7f0000001000, 0x1000, 0x7f0000000000, 0x5000}
	for i, va := range vas {
		tbl.Map(va, arch.PhysAddr(0x10000*(i+1)), 0)
	}
	var got []arch.VirtAddr
	tbl.ForEachMapped(func(va arch.VirtAddr, pa arch.PhysAddr, _ Flags) bool {
		got = append(got, va)
		return true
	})
	want := []arch.VirtAddr{0x1000, 0x5000, 0x7f0000000000, 0x7f0000001000}
	if len(got) != len(want) {
		t.Fatalf("visited %d pages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("visit %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestForEachMappedEarlyStop(t *testing.T) {
	tbl, _ := newTable(t)
	for i := 0; i < 10; i++ {
		tbl.Map(arch.VirtAddr(0x1000*(i+1)), arch.PhysAddr(0x100000), 0)
	}
	n := 0
	tbl.ForEachMapped(func(arch.VirtAddr, arch.PhysAddr, Flags) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("visited %d, want 3", n)
	}
}

func TestDestroyReleasesNodes(t *testing.T) {
	mem := physmem.New(16 << 20)
	tbl, err := New(mem, physmem.Own(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	tbl.Map(0x1000, 0x5000, 0)
	tbl.Map(0x7f0000000000, 0x6000, 0)
	if mem.CountKind(physmem.KindPageTable) == 0 {
		t.Fatal("no PT frames allocated")
	}
	tbl.Destroy()
	if got := mem.CountKind(physmem.KindPageTable); got != 0 {
		t.Errorf("%d PT frames remain after Destroy", got)
	}
}

func TestMapFailsWhenMemoryExhausted(t *testing.T) {
	mem := physmem.New(8 * arch.PageSize)
	tbl, err := New(mem, physmem.Own(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Consume everything.
	for {
		if _, ok := mem.AllocFrame(physmem.KindUser, physmem.Own(0, 1)); !ok {
			break
		}
	}
	if err := tbl.Map(0x7f0000000000, 0x1000, 0); err == nil {
		t.Error("Map succeeded with no memory for nodes")
	}
}

// Property: Map then Translate round-trips for arbitrary canonical VAs and
// page-aligned PAs.
func TestQuickMapTranslate(t *testing.T) {
	mem := physmem.New(64 << 20)
	tbl, err := New(mem, physmem.Own(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	mapped := map[uint64]arch.PhysAddr{}
	f := func(rawVA, rawPA uint64) bool {
		va := arch.VirtAddr(rawVA & ((1 << arch.VABits) - 1)).PageBase()
		pa := arch.PhysAddr(rawPA & 0xFFFFFF000)
		if err := tbl.Map(va, pa, 0); err != nil {
			return true // exhaustion is not a correctness failure here
		}
		mapped[uint64(va)] = pa
		got, _, ok := tbl.Translate(va)
		return ok && got == pa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// All earlier mappings still intact.
	for va, pa := range mapped {
		got, _, ok := tbl.Translate(arch.VirtAddr(va))
		if !ok || got != pa {
			t.Errorf("mapping %#x lost: got %#x,%v", va, got, ok)
		}
	}
}

func BenchmarkMap(b *testing.B) {
	mem := physmem.New(256 << 20)
	tbl, _ := New(mem, physmem.Own(0, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := arch.VirtAddr(uint64(i%1_000_000) << arch.PageShift)
		if err := tbl.Map(va, 0x100000, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalkFull(b *testing.B) {
	mem := physmem.New(64 << 20)
	tbl, _ := New(mem, physmem.Own(0, 1))
	for i := 0; i < 1024; i++ {
		tbl.Map(arch.VirtAddr(i)<<arch.PageShift, 0x100000, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.WalkFull(arch.VirtAddr(i%1024) << arch.PageShift)
	}
}

func TestFiveLevelTable(t *testing.T) {
	mem := physmem.New(16 << 20)
	tbl, err := NewWithLevels(mem, physmem.Own(0, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Levels() != 5 {
		t.Fatalf("Levels = %d", tbl.Levels())
	}
	// A 57-bit address exercises the fifth level.
	va := arch.VirtAddr(0x1AB_7f00_1234_5000)
	if err := tbl.Map(va, 0x123000, FlagWritable); err != nil {
		t.Fatal(err)
	}
	pa, _, ok := tbl.Translate(va + 0x42)
	if !ok || pa != 0x123042 {
		t.Fatalf("Translate = %#x,%v", pa, ok)
	}
	// Root + 4 lower nodes.
	if tbl.NodeCount() != 5 {
		t.Errorf("NodeCount = %d, want 5", tbl.NodeCount())
	}
	accesses, _, found := tbl.WalkFull(va)
	if !found || len(accesses) != 5 {
		t.Errorf("walk: found=%v accesses=%d, want 5", found, len(accesses))
	}
	if accesses[0].Level != 5 || accesses[4].Level != 1 {
		t.Errorf("levels %d..%d", accesses[0].Level, accesses[4].Level)
	}
	// Two VAs differing only in level-5 index are distinct.
	va2 := va + (1 << 48)
	tbl.Map(va2, 0x456000, 0)
	pa1, _, _ := tbl.Translate(va)
	pa2, _, _ := tbl.Translate(va2)
	if pa1 == pa2 {
		t.Error("level-5 index ignored")
	}
}

func TestNewWithLevelsValidation(t *testing.T) {
	mem := physmem.New(1 << 20)
	for _, bad := range []int{0, 1, 3, 6} {
		if _, err := NewWithLevels(mem, physmem.Own(0, 1), bad); err == nil {
			t.Errorf("depth %d accepted", bad)
		}
	}
}

func TestWalkBadStartLevelPanics(t *testing.T) {
	tbl, _ := newTable(t)
	defer func() {
		if recover() == nil {
			t.Error("bad start level did not panic")
		}
	}()
	tbl.Walk(0x1000, 9, tbl.Root())
}

func TestWalkUnknownNodePanics(t *testing.T) {
	tbl, _ := newTable(t)
	defer func() {
		if recover() == nil {
			t.Error("unknown node did not panic")
		}
	}()
	tbl.Walk(0x1000, 1, 0xDEAD000)
}

func TestSetFlagsOnLargeRegionFails(t *testing.T) {
	mem := physmem.New(64 << 20)
	tbl, _ := New(mem, physmem.Own(0, 1))
	tbl.MapLarge(0x200000, 0x800000, FlagWritable)
	// SetFlags targets 4KB leaves; a large region has none.
	if tbl.SetFlags(0x200000, FlagCOW) {
		t.Error("SetFlags succeeded on a large-mapped region")
	}
	// Unmap (4KB) on a large region also misses.
	if _, _, ok := tbl.Unmap(0x200000); ok {
		t.Error("4KB Unmap succeeded on a large-mapped region")
	}
}
