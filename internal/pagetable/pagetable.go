// Package pagetable implements x86-64-style four-level radix page tables
// whose nodes are real frames of a simulated physical memory.
//
// Because nodes occupy genuine frames, every page-table entry has a concrete
// physical address, and a page walk is a concrete sequence of physical
// reads — one entry per level. That is what lets the rest of the simulator
// reproduce the paper's central observation: guest PTEs of adjacent virtual
// pages share cache blocks, while host PTEs of those same pages scatter when
// guest-physical memory is fragmented (paper §2.6, §3.2).
//
// Entries are encoded in 8 bytes like real PTEs: a frame address plus flag
// bits in the low 12 bits (present, writable, copy-on-write).
package pagetable

import (
	"errors"
	"fmt"
	"sort"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/physmem"
)

// ErrNoMemory reports physical-memory exhaustion while allocating a
// page-table node. Map/MapLarge/Demote failures wrap it, so callers
// classify node-allocation OOM with errors.Is instead of string
// matching.
var ErrNoMemory = errors.New("pagetable: out of physical memory for node")

// Flags carries the per-mapping permission bits the simulation needs.
type Flags uint8

const (
	// FlagWritable marks a page writable; fork clears it on COW pages.
	FlagWritable Flags = 1 << iota
	// FlagCOW marks a page as copy-on-write: the first write must copy.
	FlagCOW
)

// pte encodes an entry: bits 12+ hold the target frame address, bit 0 is
// present, bits 1-2 hold Flags, bit 3 is the page-size bit (a level-2 entry
// that maps a 2MB page directly, like the x86 PS bit), and bit 4 is the
// dirty bit (set by MarkDirty on write accesses, like the x86/EPT D bit).
type pte uint64

const (
	ptePresent  pte = 1 << 0
	pteFlagBase     = 1
	pteLarge    pte = 1 << 3
	pteDirty    pte = 1 << 4
)

func makePTE(pa arch.PhysAddr, flags Flags) pte {
	return pte(pa.PageBase()) | ptePresent | pte(flags)<<pteFlagBase
}

func makeLargePTE(pa arch.PhysAddr, flags Flags) pte {
	return makePTE(pa, flags) | pteLarge
}

func (e pte) present() bool       { return e&ptePresent != 0 }
func (e pte) large() bool         { return e&pteLarge != 0 }
func (e pte) addr() arch.PhysAddr { return arch.PhysAddr(e).PageBase() }
func (e pte) flags() Flags        { return Flags(e>>pteFlagBase) & (FlagWritable | FlagCOW) }

// LargePageShift is log2 of the large (huge) page size mapped by a level-2
// entry: 2MB on x86-64.
const LargePageShift = arch.PageShift + arch.PTIndexBits

// LargePageBytes is the large page size (2MB).
const LargePageBytes = 1 << LargePageShift

// LargePageMask masks the offset within a large page.
const LargePageMask = LargePageBytes - 1

// node is the in-simulator representation of one page-table page.
type node struct {
	entries [arch.PTEntriesPerNode]pte
	live    int // number of present entries
}

// Access records one physical read a hardware page walker performs: the
// entry consulted at one level.
type Access struct {
	// Level is the radix level, 4 (root) down to 1 (leaf).
	Level int
	// EntryAddr is the physical address of the 8-byte entry read.
	EntryAddr arch.PhysAddr
}

// Table is one process's (or one VM's) page table.
type Table struct {
	mem    *physmem.Memory
	owner  physmem.Owner
	levels int
	root   arch.PhysAddr
	nodes  map[arch.PhysAddr]*node
	// mapped counts present leaf entries (a large mapping counts as 512
	// pages — its full 4KB-page equivalent).
	mapped uint64
	// largeMapped counts present large (2MB) mappings.
	largeMapped uint64
}

// New allocates a four-level page table with an empty root node in mem,
// with its node frames tagged as page-table memory owned by owner.
func New(mem *physmem.Memory, owner physmem.Owner) (*Table, error) {
	return NewWithLevels(mem, owner, arch.PTLevels)
}

// NewWithLevels allocates a page table with the given radix depth: 4
// (x86-64 four-level paging, 48-bit VAs) or 5 (LA57 five-level paging,
// 57-bit VAs — the migration the paper's §2.5 anticipates, which lengthens
// every dimension of a nested walk).
func NewWithLevels(mem *physmem.Memory, owner physmem.Owner, levels int) (*Table, error) {
	if levels != 4 && levels != 5 {
		return nil, fmt.Errorf("pagetable: unsupported depth %d (want 4 or 5)", levels)
	}
	t := &Table{mem: mem, owner: owner, levels: levels, nodes: make(map[arch.PhysAddr]*node)}
	root, err := t.allocNode()
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// Levels returns the radix depth (4 or 5).
func (t *Table) Levels() int { return t.levels }

// Root returns the physical address of the root (PML4) node.
func (t *Table) Root() arch.PhysAddr { return t.root }

// NodeCount returns the number of allocated page-table nodes (all levels).
func (t *Table) NodeCount() int { return len(t.nodes) }

// MappedPages returns the number of present leaf entries.
func (t *Table) MappedPages() uint64 { return t.mapped }

func (t *Table) allocNode() (arch.PhysAddr, error) {
	pa, ok := t.mem.AllocFrame(physmem.KindPageTable, t.owner)
	if !ok {
		return arch.NoPhysAddr, fmt.Errorf("%w (owner %v)", ErrNoMemory, t.owner)
	}
	t.nodes[pa] = &node{}
	return pa, nil
}

// Map installs va → pa with flags, creating intermediate nodes on demand.
// Mapping an already-mapped page replaces the entry in place (the dirty bit
// of the old entry does not survive the replacement, as on a real remap).
// Mapping a 4KB page inside a region covered by a large (2MB) mapping is an
// error; demote the large mapping first.
func (t *Table) Map(va arch.VirtAddr, pa arch.PhysAddr, flags Flags) error {
	n := t.nodes[t.root]
	cur := t.root
	for level := t.levels; level > 1; level-- {
		idx := va.PTIndex(level)
		e := n.entries[idx]
		if e.present() && e.large() {
			return fmt.Errorf("pagetable: %#x covered by a large mapping; demote first", uint64(va))
		}
		if !e.present() {
			child, err := t.allocNode()
			if err != nil {
				return err
			}
			n.entries[idx] = makePTE(child, 0)
			n.live++
			cur = child
		} else {
			cur = e.addr()
		}
		n = t.nodes[cur]
	}
	idx := va.PTIndex(1)
	if !n.entries[idx].present() {
		n.live++
		t.mapped++
	}
	n.entries[idx] = makePTE(pa, flags)
	return nil
}

// Unmap removes the leaf entry for va, returning the previously mapped
// address and flags. Intermediate nodes are retained (as Linux does for
// process lifetimes).
func (t *Table) Unmap(va arch.VirtAddr) (arch.PhysAddr, Flags, bool) {
	n, idx, ok := t.leaf(va)
	if !ok || !n.entries[idx].present() {
		return arch.NoPhysAddr, 0, false
	}
	e := n.entries[idx]
	n.entries[idx] = 0
	n.live--
	t.mapped--
	return e.addr(), e.flags(), true
}

// Translate performs a logical lookup of va, with no access trace. Large
// (2MB) mappings translate like hardware: base plus the 21-bit offset.
func (t *Table) Translate(va arch.VirtAddr) (arch.PhysAddr, Flags, bool) {
	if n, idx, ok := t.largeEntry(va); ok {
		e := n.entries[idx]
		return e.addr() + arch.PhysAddr(uint64(va)&LargePageMask), e.flags(), true
	}
	n, idx, ok := t.leaf(va)
	if !ok || !n.entries[idx].present() {
		return arch.NoPhysAddr, 0, false
	}
	e := n.entries[idx]
	return e.addr() + arch.PhysAddr(va.PageOffset()), e.flags(), true
}

// MapLarge installs a 2MB mapping at level 2: va and pa must be 2MB-aligned
// and the region must not already contain 4KB mappings.
func (t *Table) MapLarge(va arch.VirtAddr, pa arch.PhysAddr, flags Flags) error {
	if uint64(va)&LargePageMask != 0 || uint64(pa)&LargePageMask != 0 {
		return fmt.Errorf("pagetable: MapLarge of unaligned %#x → %#x", uint64(va), uint64(pa))
	}
	n := t.nodes[t.root]
	cur := t.root
	for level := t.levels; level > 2; level-- {
		idx := va.PTIndex(level)
		e := n.entries[idx]
		if !e.present() {
			child, err := t.allocNode()
			if err != nil {
				return err
			}
			n.entries[idx] = makePTE(child, 0)
			n.live++
			cur = child
		} else {
			cur = e.addr()
		}
		n = t.nodes[cur]
	}
	idx := va.PTIndex(2)
	if e := n.entries[idx]; e.present() {
		if e.large() {
			return fmt.Errorf("pagetable: %#x already has a large mapping", uint64(va))
		}
		leaf := t.nodes[e.addr()]
		if leaf.live > 0 {
			return fmt.Errorf("pagetable: %#x has 4KB mappings; cannot overlay a large page", uint64(va))
		}
		// An empty leaf node left behind by 4KB mappings that were all
		// unmapped since: reclaim it and install the large entry in its
		// place.
		delete(t.nodes, e.addr())
		t.mem.FreeBlock(e.addr())
		n.entries[idx] = 0
		n.live--
	}
	n.entries[idx] = makeLargePTE(pa, flags)
	n.live++
	t.mapped += arch.PTEntriesPerNode
	t.largeMapped++
	return nil
}

// HasMappingsInLargeRegion reports whether va's 2MB-aligned region contains
// any mapping — a large page or at least one 4KB page. THP promotion is
// only legal on fully empty regions.
func (t *Table) HasMappingsInLargeRegion(va arch.VirtAddr) bool {
	n := t.nodes[t.root]
	for level := t.levels; level > 2; level-- {
		e := n.entries[va.PTIndex(level)]
		if !e.present() {
			return false
		}
		if e.large() {
			return true
		}
		n = t.nodes[e.addr()]
	}
	e := n.entries[va.PTIndex(2)]
	if !e.present() {
		return false
	}
	if e.large() {
		return true
	}
	return t.nodes[e.addr()].live > 0
}

// ForEachLarge visits the 2MB-aligned virtual base of every live large
// mapping. Stops early when fn returns false.
func (t *Table) ForEachLarge(fn func(va arch.VirtAddr) bool) {
	t.forEachLargeNode(t.root, t.levels, 0, fn)
}

func (t *Table) forEachLargeNode(nodePA arch.PhysAddr, level int, prefix uint64, fn func(arch.VirtAddr) bool) bool {
	n := t.nodes[nodePA]
	shift := arch.PageShift + (level-1)*arch.PTIndexBits
	for idx, e := range n.entries {
		if !e.present() {
			continue
		}
		va := prefix | uint64(idx)<<shift
		if level == 2 {
			if e.large() && !fn(arch.VirtAddr(va)) {
				return false
			}
			continue
		}
		if !t.forEachLargeNode(e.addr(), level-1, va, fn) {
			return false
		}
	}
	return true
}

// IsLargeMapped reports whether va is covered by a 2MB mapping.
func (t *Table) IsLargeMapped(va arch.VirtAddr) bool {
	_, _, ok := t.largeEntry(va)
	return ok
}

// LargeMappings returns the number of live 2MB mappings.
func (t *Table) LargeMappings() uint64 { return t.largeMapped }

// UnmapLarge removes the 2MB mapping covering va, returning its base frame
// address and flags.
func (t *Table) UnmapLarge(va arch.VirtAddr) (arch.PhysAddr, Flags, bool) {
	n, idx, ok := t.largeEntry(va)
	if !ok {
		return arch.NoPhysAddr, 0, false
	}
	e := n.entries[idx]
	n.entries[idx] = 0
	n.live--
	t.mapped -= arch.PTEntriesPerNode
	t.largeMapped--
	return e.addr(), e.flags(), true
}

// Demote splits the 2MB mapping covering va into 512 4KB mappings over the
// same physical range — the THP-split operation Linux performs on partial
// frees, COW, and swapping. It allocates one leaf node.
func (t *Table) Demote(va arch.VirtAddr) error {
	n, idx, ok := t.largeEntry(va)
	if !ok {
		return fmt.Errorf("pagetable: no large mapping at %#x", uint64(va))
	}
	e := n.entries[idx]
	leafPA, err := t.allocNode()
	if err != nil {
		return err
	}
	leaf := t.nodes[leafPA]
	for i := 0; i < arch.PTEntriesPerNode; i++ {
		leaf.entries[i] = makePTE(e.addr()+arch.PhysAddr(i<<arch.PageShift), e.flags())
	}
	leaf.live = arch.PTEntriesPerNode
	n.entries[idx] = makePTE(leafPA, 0)
	t.largeMapped--
	return nil
}

// SetFlags rewrites the flags of an existing mapping. It reports whether the
// page was mapped.
func (t *Table) SetFlags(va arch.VirtAddr, flags Flags) bool {
	n, idx, ok := t.leaf(va)
	if !ok || !n.entries[idx].present() {
		return false
	}
	n.entries[idx] = makePTE(n.entries[idx].addr(), flags)
	return true
}

// MarkDirty sets the dirty bit on the leaf entry mapping va, as the page
// walker sets the x86/EPT D bit on a write access. It reports whether the
// bit transitioned from clear to set — the event a PML-style dirty log
// records; repeated writes to an already-dirty page report false and cost
// nothing. Unmapped addresses and 2MB mappings (which this simulator's host
// page tables never use) report false.
func (t *Table) MarkDirty(va arch.VirtAddr) bool {
	n, idx, ok := t.leaf(va)
	if !ok || !n.entries[idx].present() {
		return false
	}
	if n.entries[idx]&pteDirty != 0 {
		return false
	}
	n.entries[idx] |= pteDirty
	return true
}

// ClearDirty clears the dirty bit on the leaf entry mapping va, reporting
// whether the bit had been set. Draining a dirty log clears the bits it
// reports so the next write logs again.
func (t *Table) ClearDirty(va arch.VirtAddr) bool {
	n, idx, ok := t.leaf(va)
	if !ok || n.entries[idx]&pteDirty == 0 {
		return false
	}
	n.entries[idx] &^= pteDirty
	return true
}

// ForEachDirty visits the page-aligned virtual address of every leaf entry
// whose dirty bit is set, in ascending virtual-address order — the full-table
// rescan a hypervisor falls back to when its dirty log overflows. Iteration
// stops early if fn returns false.
func (t *Table) ForEachDirty(fn func(va arch.VirtAddr) bool) {
	t.walkDirtyNode(t.root, t.levels, 0, fn)
}

func (t *Table) walkDirtyNode(nodePA arch.PhysAddr, level int, prefix uint64, fn func(arch.VirtAddr) bool) bool {
	n := t.nodes[nodePA]
	shift := arch.PageShift + (level-1)*arch.PTIndexBits
	for idx, e := range n.entries {
		if !e.present() {
			continue
		}
		va := prefix | uint64(idx)<<shift
		if level == 1 {
			if e&pteDirty != 0 && !fn(arch.VirtAddr(va)) {
				return false
			}
			continue
		}
		if level == 2 && e.large() {
			// Large mappings never carry the dirty bit (MarkDirty refuses
			// them), so there is nothing to visit beneath this entry.
			continue
		}
		if !t.walkDirtyNode(e.addr(), level-1, va, fn) {
			return false
		}
	}
	return true
}

func (t *Table) leaf(va arch.VirtAddr) (*node, int, bool) {
	n := t.nodes[t.root]
	for level := t.levels; level > 1; level-- {
		e := n.entries[va.PTIndex(level)]
		if !e.present() || e.large() {
			return nil, 0, false
		}
		n = t.nodes[e.addr()]
	}
	return n, va.PTIndex(1), true
}

// largeEntry returns the level-2 node and index holding va's large mapping,
// if one exists.
func (t *Table) largeEntry(va arch.VirtAddr) (*node, int, bool) {
	n := t.nodes[t.root]
	for level := t.levels; level > 2; level-- {
		e := n.entries[va.PTIndex(level)]
		if !e.present() || e.large() {
			return nil, 0, false
		}
		n = t.nodes[e.addr()]
	}
	idx := va.PTIndex(2)
	if e := n.entries[idx]; e.present() && e.large() {
		return n, idx, true
	}
	return nil, 0, false
}

// Walk performs a hardware-style walk for va: it returns the physical
// address of the entry read at each level, from the root down, stopping at
// the first non-present entry. found reports whether a leaf translation was
// reached; pa is the translated physical address when found.
//
// startLevel allows a page-walk cache to skip upper levels: a walk beginning
// at level 2 reads only the level-2 and level-1 entries. nodePA must then be
// the node supplied by the PWC. Use WalkFull for an uncached walk.
func (t *Table) Walk(va arch.VirtAddr, startLevel int, nodePA arch.PhysAddr) (accesses []Access, pa arch.PhysAddr, found bool) {
	return t.WalkAppend(nil, va, startLevel, nodePA)
}

// WalkAppend is Walk appending to dst, letting hot callers reuse a buffer
// across walks instead of allocating one per TLB miss.
func (t *Table) WalkAppend(dst []Access, va arch.VirtAddr, startLevel int, nodePA arch.PhysAddr) (accesses []Access, pa arch.PhysAddr, found bool) {
	accesses = dst
	if startLevel < 1 || startLevel > t.levels {
		panic(fmt.Sprintf("pagetable: bad start level %d", startLevel))
	}
	n := t.nodes[nodePA]
	if n == nil {
		panic(fmt.Sprintf("pagetable: walk from unknown node %#x", uint64(nodePA)))
	}
	cur := nodePA
	for level := startLevel; level >= 1; level-- {
		idx := va.PTIndex(level)
		entryAddr := cur + arch.PhysAddr(idx*arch.PTEBytes)
		accesses = append(accesses, Access{Level: level, EntryAddr: entryAddr})
		e := n.entries[idx]
		if !e.present() {
			return accesses, arch.NoPhysAddr, false
		}
		if level == 2 && e.large() {
			// PS bit set: the walk terminates one level early with a 2MB
			// translation.
			return accesses, e.addr() + arch.PhysAddr(uint64(va)&LargePageMask), true
		}
		if level == 1 {
			return accesses, e.addr() + arch.PhysAddr(va.PageOffset()), true
		}
		cur = e.addr()
		n = t.nodes[cur]
	}
	return accesses, arch.NoPhysAddr, false
}

// WalkFull walks from the root (no page-walk-cache assistance).
func (t *Table) WalkFull(va arch.VirtAddr) ([]Access, arch.PhysAddr, bool) {
	return t.Walk(va, t.levels, t.root)
}

// NodeAt returns the physical address of the page-table node that a walk
// for va consults at the given level, and whether that node exists. A
// page-walk cache stores exactly this mapping (va prefix at level → node).
func (t *Table) NodeAt(va arch.VirtAddr, level int) (arch.PhysAddr, bool) {
	cur := t.root
	n := t.nodes[cur]
	for l := t.levels; l > level; l-- {
		e := n.entries[va.PTIndex(l)]
		if !e.present() || e.large() {
			return arch.NoPhysAddr, false
		}
		cur = e.addr()
		n = t.nodes[cur]
	}
	return cur, true
}

// LeafEntryAddr returns the physical address of the leaf (level-1) PTE that
// maps va, and whether the leaf node exists. The fragmentation metric is
// computed over these addresses: adjacent virtual pages whose leaf entries
// share a cache block enjoy the locality of Figure 3.
func (t *Table) LeafEntryAddr(va arch.VirtAddr) (arch.PhysAddr, bool) {
	nodePA, ok := t.NodeAt(va, 1)
	if !ok {
		return arch.NoPhysAddr, false
	}
	return nodePA + arch.PhysAddr(va.PTIndex(1)*arch.PTEBytes), true
}

// ForEachMapped invokes fn for every present leaf mapping in ascending
// virtual-address order. fn receives the page-aligned virtual address, the
// mapped frame address, and the flags. Iteration stops early if fn returns
// false.
func (t *Table) ForEachMapped(fn func(va arch.VirtAddr, pa arch.PhysAddr, flags Flags) bool) {
	t.walkNode(t.root, t.levels, 0, fn)
}

func (t *Table) walkNode(nodePA arch.PhysAddr, level int, prefix uint64, fn func(arch.VirtAddr, arch.PhysAddr, Flags) bool) bool {
	n := t.nodes[nodePA]
	shift := arch.PageShift + (level-1)*arch.PTIndexBits
	for idx, e := range n.entries {
		if !e.present() {
			continue
		}
		va := prefix | uint64(idx)<<shift
		if level == 1 {
			if !fn(arch.VirtAddr(va), e.addr(), e.flags()) {
				return false
			}
			continue
		}
		if level == 2 && e.large() {
			// A 2MB mapping is visited as its 512 constituent pages, so
			// callers (RSS accounting, fragmentation metric, teardown)
			// need no special case.
			for i := 0; i < arch.PTEntriesPerNode; i++ {
				pageVA := arch.VirtAddr(va | uint64(i)<<arch.PageShift)
				if !fn(pageVA, e.addr()+arch.PhysAddr(i<<arch.PageShift), e.flags()) {
					return false
				}
			}
			continue
		}
		if !t.walkNode(e.addr(), level-1, va, fn) {
			return false
		}
	}
	return true
}

// Destroy releases every node frame back to physical memory. The table must
// not be used afterwards. Mapped data frames are not freed — the owning
// kernel frees those according to its own bookkeeping.
func (t *Table) Destroy() {
	// Free in ascending frame order: the buddy allocator's free lists
	// remember insertion order, so freeing in map-iteration order would
	// make every later allocation depend on this map's randomized layout.
	pas := make([]arch.PhysAddr, 0, len(t.nodes))
	for pa := range t.nodes {
		pas = append(pas, pa)
	}
	sort.Slice(pas, func(i, j int) bool { return pas[i] < pas[j] })
	for _, pa := range pas {
		t.mem.FreeBlock(pa)
	}
	t.nodes = nil
	t.mapped = 0
}
