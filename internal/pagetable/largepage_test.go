package pagetable

import (
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/physmem"
)

func largeTable(t *testing.T) (*Table, *physmem.Memory) {
	t.Helper()
	mem := physmem.New(64 << 20)
	tbl, err := New(mem, physmem.Own(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	return tbl, mem
}

func TestMapLargeTranslate(t *testing.T) {
	tbl, _ := largeTable(t)
	va := arch.VirtAddr(0x7f0000000000)
	pa := arch.PhysAddr(0x800000) // 2MB aligned
	if err := tbl.MapLarge(va, pa, FlagWritable); err != nil {
		t.Fatal(err)
	}
	// Any offset within the 2MB region translates.
	got, flags, ok := tbl.Translate(va + 0x123456)
	if !ok || got != pa+0x123456 || flags != FlagWritable {
		t.Errorf("Translate = %#x,%v,%v", got, flags, ok)
	}
	if !tbl.IsLargeMapped(va + 0x100000) {
		t.Error("IsLargeMapped = false")
	}
	if tbl.LargeMappings() != 1 {
		t.Errorf("LargeMappings = %d", tbl.LargeMappings())
	}
	if tbl.MappedPages() != 512 {
		t.Errorf("MappedPages = %d, want 512 (4KB equivalent)", tbl.MappedPages())
	}
}

func TestMapLargeValidation(t *testing.T) {
	tbl, _ := largeTable(t)
	if err := tbl.MapLarge(0x1000, 0x800000, 0); err == nil {
		t.Error("unaligned va accepted")
	}
	if err := tbl.MapLarge(0x200000, 0x801000, 0); err == nil {
		t.Error("unaligned pa accepted")
	}
	// 4KB mappings in the region block a large overlay.
	tbl.Map(0x400000, 0x5000, 0)
	if err := tbl.MapLarge(0x400000, 0x800000, 0); err == nil {
		t.Error("large overlay over 4KB mappings accepted")
	}
	// Double large mapping rejected.
	if err := tbl.MapLarge(0x800000, 0x800000, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.MapLarge(0x800000, 0xA00000, 0); err == nil {
		t.Error("double large mapping accepted")
	}
	// 4KB map inside a large region rejected.
	if err := tbl.Map(0x800000+0x1000, 0x9000, 0); err == nil {
		t.Error("4KB map inside large region accepted")
	}
}

func TestWalkLargeStopsAtLevel2(t *testing.T) {
	tbl, _ := largeTable(t)
	va := arch.VirtAddr(0x7f0000000000)
	tbl.MapLarge(va, 0x800000, 0)
	accesses, pa, found := tbl.WalkFull(va + 0x2345)
	if !found || pa != 0x802345 {
		t.Fatalf("walk: pa=%#x found=%v", pa, found)
	}
	if len(accesses) != 3 {
		t.Errorf("large-page walk took %d accesses, want 3 (levels 4,3,2)", len(accesses))
	}
	if accesses[len(accesses)-1].Level != 2 {
		t.Errorf("last access level = %d", accesses[len(accesses)-1].Level)
	}
}

func TestNodeAtRefusesLargeRegions(t *testing.T) {
	tbl, _ := largeTable(t)
	va := arch.VirtAddr(0x7f0000000000)
	tbl.MapLarge(va, 0x800000, 0)
	if _, ok := tbl.NodeAt(va, 1); ok {
		t.Error("NodeAt(1) exists under a large mapping")
	}
	if _, ok := tbl.LeafEntryAddr(va); ok {
		t.Error("LeafEntryAddr exists under a large mapping")
	}
}

func TestUnmapLarge(t *testing.T) {
	tbl, _ := largeTable(t)
	va := arch.VirtAddr(0x200000)
	tbl.MapLarge(va, 0x800000, FlagWritable)
	pa, flags, ok := tbl.UnmapLarge(va + 0x1000)
	if !ok || pa != 0x800000 || flags != FlagWritable {
		t.Fatalf("UnmapLarge = %#x,%v,%v", pa, flags, ok)
	}
	if tbl.MappedPages() != 0 || tbl.LargeMappings() != 0 {
		t.Errorf("counts not reset: %d/%d", tbl.MappedPages(), tbl.LargeMappings())
	}
	if _, _, ok := tbl.Translate(va); ok {
		t.Error("still translates")
	}
	if _, _, ok := tbl.UnmapLarge(va); ok {
		t.Error("double unmap succeeded")
	}
}

func TestDemoteSplitsInto4KBMappings(t *testing.T) {
	tbl, _ := largeTable(t)
	va := arch.VirtAddr(0x200000)
	pa := arch.PhysAddr(0x800000)
	tbl.MapLarge(va, pa, FlagWritable)
	nodesBefore := tbl.NodeCount()
	if err := tbl.Demote(va + 0x5000); err != nil {
		t.Fatal(err)
	}
	if tbl.NodeCount() != nodesBefore+1 {
		t.Errorf("demote allocated %d nodes, want 1", tbl.NodeCount()-nodesBefore)
	}
	if tbl.IsLargeMapped(va) {
		t.Error("still large after demote")
	}
	if tbl.MappedPages() != 512 {
		t.Errorf("MappedPages = %d after demote", tbl.MappedPages())
	}
	// Every 4KB page translates to the same physical bytes as before.
	for i := 0; i < 512; i += 37 {
		got, flags, ok := tbl.Translate(va + arch.VirtAddr(i*arch.PageSize+7))
		want := pa + arch.PhysAddr(i*arch.PageSize+7)
		if !ok || got != want || flags != FlagWritable {
			t.Fatalf("page %d: %#x,%v,%v want %#x", i, got, flags, ok, want)
		}
	}
	// Individual pages can now be unmapped.
	if _, _, ok := tbl.Unmap(va + 3*arch.PageSize); !ok {
		t.Error("Unmap after demote failed")
	}
	if tbl.MappedPages() != 511 {
		t.Errorf("MappedPages = %d", tbl.MappedPages())
	}
	if err := tbl.Demote(va); err == nil {
		t.Error("double demote succeeded")
	}
}

func TestForEachMappedExpandsLargePages(t *testing.T) {
	tbl, _ := largeTable(t)
	tbl.MapLarge(0x200000, 0x800000, 0)
	tbl.Map(0x1000, 0x5000, 0)
	count := 0
	var largeSeen int
	tbl.ForEachMapped(func(va arch.VirtAddr, pa arch.PhysAddr, _ Flags) bool {
		count++
		if va >= 0x200000 && va < 0x400000 {
			largeSeen++
			wantPA := arch.PhysAddr(0x800000) + arch.PhysAddr(uint64(va)-0x200000)
			if pa != wantPA {
				t.Fatalf("va %#x → %#x, want %#x", uint64(va), pa, wantPA)
			}
		}
		return true
	})
	if count != 513 {
		t.Errorf("visited %d pages, want 513", count)
	}
	if largeSeen != 512 {
		t.Errorf("large pages visited %d, want 512", largeSeen)
	}
}

func TestLargePageWalkFromPWCGuarded(t *testing.T) {
	// A mixed table: 4KB pages in one 2MB region, a large page in another.
	tbl, _ := largeTable(t)
	tbl.Map(0x1000, 0x5000, 0)
	tbl.MapLarge(0x200000, 0x800000, 0)
	// Walk of the 4KB page still works from the PWC node.
	node, ok := tbl.NodeAt(0x1000, 1)
	if !ok {
		t.Fatal("NodeAt failed for 4KB region")
	}
	accesses, pa, found := tbl.Walk(0x1000, 1, node)
	if !found || pa != 0x5000 || len(accesses) != 1 {
		t.Errorf("PWC walk: %#x,%v,%d accesses", pa, found, len(accesses))
	}
}

func TestMapLargeReclaimsEmptyLeaf(t *testing.T) {
	tbl, mem := largeTable(t)
	va := arch.VirtAddr(0x200000)
	// Populate and then fully unmap 4KB pages in the region.
	for i := 0; i < 4; i++ {
		tbl.Map(va+arch.VirtAddr(i*arch.PageSize), arch.PhysAddr(0x5000+i*arch.PageSize), 0)
	}
	for i := 0; i < 4; i++ {
		tbl.Unmap(va + arch.VirtAddr(i*arch.PageSize))
	}
	nodes := tbl.NodeCount()
	ptFrames := mem.CountKind(physmem.KindPageTable)
	if err := tbl.MapLarge(va, 0x800000, 0); err != nil {
		t.Fatalf("MapLarge over empty leaf: %v", err)
	}
	if tbl.NodeCount() != nodes-1 {
		t.Errorf("empty leaf not reclaimed: %d nodes, was %d", tbl.NodeCount(), nodes)
	}
	if got := mem.CountKind(physmem.KindPageTable); got != ptFrames-1 {
		t.Errorf("leaf frame not freed: %d PT frames, was %d", got, ptFrames)
	}
	pa, _, ok := tbl.Translate(va + 0x1000)
	if !ok || pa != 0x801000 {
		t.Errorf("Translate = %#x,%v", pa, ok)
	}
}
