package pagetable

import (
	"testing"

	"ptemagnet/internal/arch"
)

func TestMarkDirtyTransitions(t *testing.T) {
	tbl, _ := newTable(t)
	va := arch.VirtAddr(0x40000000)
	if tbl.MarkDirty(va) {
		t.Error("MarkDirty on unmapped va reported a transition")
	}
	if err := tbl.Map(va, 0x5000, FlagWritable); err != nil {
		t.Fatal(err)
	}
	if !tbl.MarkDirty(va + 0x80) {
		t.Error("first MarkDirty did not report a transition")
	}
	if tbl.MarkDirty(va) {
		t.Error("second MarkDirty reported a transition")
	}
	// The dirty bit never leaks into the mapping's Flags.
	if _, flags, _ := tbl.Translate(va); flags != FlagWritable {
		t.Errorf("flags after MarkDirty = %v, want FlagWritable", flags)
	}
	if !tbl.ClearDirty(va) {
		t.Error("ClearDirty on dirty page reported clean")
	}
	if tbl.ClearDirty(va) {
		t.Error("ClearDirty on clean page reported dirty")
	}
	if !tbl.MarkDirty(va) {
		t.Error("MarkDirty after ClearDirty did not transition")
	}
}

func TestMarkDirtyRefusesLargeMappings(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.MapLarge(0, 0x200000, FlagWritable); err != nil {
		t.Fatal(err)
	}
	if tbl.MarkDirty(0x1000) {
		t.Error("MarkDirty inside a large mapping reported a transition")
	}
	var visited int
	tbl.ForEachDirty(func(arch.VirtAddr) bool { visited++; return true })
	if visited != 0 {
		t.Errorf("ForEachDirty visited %d pages under a large mapping", visited)
	}
}

func TestForEachDirtyAscending(t *testing.T) {
	tbl, _ := newTable(t)
	// Map and dirty pages in a deliberately descending, multi-node order.
	vas := []arch.VirtAddr{0x7f0000042000, 0x200000, 0x3000, 0x1000}
	for _, va := range vas {
		if err := tbl.Map(va, 0x8000, FlagWritable); err != nil {
			t.Fatal(err)
		}
		tbl.MarkDirty(va)
	}
	// One mapped-but-clean page must not be visited.
	if err := tbl.Map(0x2000, 0x9000, FlagWritable); err != nil {
		t.Fatal(err)
	}
	var got []arch.VirtAddr
	tbl.ForEachDirty(func(va arch.VirtAddr) bool {
		got = append(got, va)
		return true
	})
	want := []arch.VirtAddr{0x1000, 0x3000, 0x200000, 0x7f0000042000}
	if len(got) != len(want) {
		t.Fatalf("ForEachDirty visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEachDirty order %v, want ascending %v", got, want)
		}
	}
	// Early stop.
	var first []arch.VirtAddr
	tbl.ForEachDirty(func(va arch.VirtAddr) bool {
		first = append(first, va)
		return false
	})
	if len(first) != 1 || first[0] != want[0] {
		t.Errorf("early stop visited %v", first)
	}
}

func TestRemapClearsDirty(t *testing.T) {
	tbl, _ := newTable(t)
	va := arch.VirtAddr(0x6000)
	if err := tbl.Map(va, 0x5000, FlagWritable); err != nil {
		t.Fatal(err)
	}
	tbl.MarkDirty(va)
	// Replacing the mapping drops the dirty bit, as on a real remap.
	if err := tbl.Map(va, 0x7000, FlagWritable); err != nil {
		t.Fatal(err)
	}
	if !tbl.MarkDirty(va) {
		t.Error("dirty bit survived a remap")
	}
	// Unmapping removes the page from the dirty walk entirely.
	tbl.Unmap(va)
	var visited int
	tbl.ForEachDirty(func(arch.VirtAddr) bool { visited++; return true })
	if visited != 0 {
		t.Errorf("ForEachDirty visited %d pages after unmap", visited)
	}
}
