package buddy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSeedsFreeLists(t *testing.T) {
	a := New(1 << 12) // 4096 frames
	if a.NumFrames() != 1<<12 {
		t.Fatalf("NumFrames = %d", a.NumFrames())
	}
	// Frame 0 is reserved, so 4095 frames are free.
	if a.FreeFrames() != (1<<12)-1 {
		t.Fatalf("FreeFrames = %d, want %d", a.FreeFrames(), (1<<12)-1)
	}
	if a.UsedFrames() != 0 {
		t.Fatalf("UsedFrames = %d, want 0", a.UsedFrames())
	}
}

func TestAllocPageNeverReturnsFrameZero(t *testing.T) {
	a := New(64)
	for {
		f, ok := a.AllocPage()
		if !ok {
			break
		}
		if f == 0 {
			t.Fatal("allocator returned reserved frame 0")
		}
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a := New(1 << 10)
	before := a.FreeFrames()
	f, ok := a.AllocOrder(3)
	if !ok {
		t.Fatal("AllocOrder(3) failed")
	}
	if f%8 != 0 {
		t.Errorf("order-3 block at frame %d is not 8-aligned", f)
	}
	if a.FreeFrames() != before-8 {
		t.Errorf("FreeFrames = %d, want %d", a.FreeFrames(), before-8)
	}
	if got := a.BlockOrder(f); got != 3 {
		t.Errorf("BlockOrder = %d, want 3", got)
	}
	a.Free(f)
	if a.FreeFrames() != before {
		t.Errorf("after free, FreeFrames = %d, want %d", a.FreeFrames(), before)
	}
}

func TestBlockAlignment(t *testing.T) {
	a := New(1 << 12)
	for order := 0; order <= 6; order++ {
		f, ok := a.AllocOrder(order)
		if !ok {
			t.Fatalf("AllocOrder(%d) failed", order)
		}
		if f%(1<<order) != 0 {
			t.Errorf("order-%d block at frame %d is misaligned", order, f)
		}
	}
}

func TestExhaustionAndRecovery(t *testing.T) {
	a := New(128)
	var frames []uint64
	for {
		f, ok := a.AllocPage()
		if !ok {
			break
		}
		frames = append(frames, f)
	}
	if len(frames) != 127 {
		t.Fatalf("allocated %d single frames, want 127", len(frames))
	}
	if _, ok := a.AllocPage(); ok {
		t.Fatal("allocation succeeded on exhausted allocator")
	}
	if a.Snapshot().Failures == 0 {
		t.Error("failure not counted")
	}
	for _, f := range frames {
		a.Free(f)
	}
	if a.FreeFrames() != 127 {
		t.Fatalf("FreeFrames = %d after freeing all", a.FreeFrames())
	}
	// Coalescing must have restored large blocks: an order-6 alloc works.
	if _, ok := a.AllocOrder(6); !ok {
		t.Error("order-6 allocation failed after full free — coalescing broken")
	}
}

func TestCoalescingRestoresMaximalBlocks(t *testing.T) {
	n := uint64(1 << 10)
	a := New(n)
	want := a.FreeBlocksByOrder()
	var frames []uint64
	for i := 0; i < 300; i++ {
		f, ok := a.AllocPage()
		if !ok {
			t.Fatal("alloc failed")
		}
		frames = append(frames, f)
	}
	// Free in random order; coalescing must restore the exact initial
	// free-list shape.
	r := rand.New(rand.NewSource(42))
	r.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })
	for _, f := range frames {
		a.Free(f)
	}
	if got := a.FreeBlocksByOrder(); got != want {
		t.Errorf("free-list shape after churn = %v, want %v", got, want)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := New(64)
	f, _ := a.AllocPage()
	a.Free(f)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	a.Free(f)
}

func TestFreeOfNonHeadPanics(t *testing.T) {
	a := New(64)
	f, ok := a.AllocOrder(2)
	if !ok {
		t.Fatal("alloc failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("free of interior frame did not panic")
		}
	}()
	a.Free(f + 1)
}

func TestFreeFrameZeroPanics(t *testing.T) {
	a := New(64)
	defer func() {
		if recover() == nil {
			t.Error("free of frame 0 did not panic")
		}
	}()
	a.Free(0)
}

func TestInterleavedAllocationsAreInterleaved(t *testing.T) {
	// Two "processes" taking turns allocating single pages get physically
	// interleaved frames — the fragmentation behaviour the paper builds
	// on. Verify adjacency is broken: consecutive allocations by process
	// A are rarely physically adjacent when B allocates in between.
	a := New(1 << 12)
	var procA, procB []uint64
	for i := 0; i < 256; i++ {
		fa, ok := a.AllocPage()
		if !ok {
			t.Fatal("alloc failed")
		}
		fb, ok := a.AllocPage()
		if !ok {
			t.Fatal("alloc failed")
		}
		procA = append(procA, fa)
		procB = append(procB, fb)
	}
	adjacent := 0
	for i := 1; i < len(procA); i++ {
		if procA[i] == procA[i-1]+1 {
			adjacent++
		}
	}
	if adjacent > len(procA)/2 {
		t.Errorf("%d/%d of A's consecutive allocations are physically adjacent; interleaving not modelled", adjacent, len(procA)-1)
	}
	_ = procB
}

func TestSoloAllocationsAreMostlyContiguous(t *testing.T) {
	// A single process allocating page by page from a fresh allocator
	// walks split blocks upward, producing mostly-adjacent frames — the
	// favourable native case from §2.6.
	a := New(1 << 12)
	prev, _ := a.AllocPage()
	adjacent, total := 0, 0
	for i := 0; i < 512; i++ {
		f, ok := a.AllocPage()
		if !ok {
			t.Fatal("alloc failed")
		}
		if f == prev+1 {
			adjacent++
		}
		total++
		prev = f
	}
	if adjacent < total*3/4 {
		t.Errorf("only %d/%d consecutive solo allocations adjacent; split order wrong", adjacent, total)
	}
}

func TestStatsCounting(t *testing.T) {
	a := New(1 << 10)
	// The seeded free lists hold one small block per low order (frames
	// 1,2,4…), so the first order-0 alloc pops without splitting; the
	// second must split a larger block, and freeing both merges back.
	f0, _ := a.AllocOrder(0)
	f1, _ := a.AllocOrder(0)
	f3, _ := a.AllocOrder(3)
	a.Free(f1)
	a.Free(f0)
	a.Free(f3)
	s := a.Snapshot()
	if s.AllocCalls[0] != 2 || s.AllocCalls[3] != 1 {
		t.Errorf("AllocCalls = %v", s.AllocCalls)
	}
	if s.FreeCalls[0] != 2 || s.FreeCalls[3] != 1 {
		t.Errorf("FreeCalls = %v", s.FreeCalls)
	}
	if s.Splits == 0 {
		t.Error("no splits recorded")
	}
	if s.Merges == 0 {
		t.Error("no merges recorded")
	}
}

func TestLargestFreeOrder(t *testing.T) {
	a := New(1 << 12)
	if a.LargestFreeOrder() != MaxOrder {
		t.Errorf("LargestFreeOrder = %d, want %d", a.LargestFreeOrder(), MaxOrder)
	}
	// Exhaust everything.
	for {
		if _, ok := a.AllocPage(); !ok {
			break
		}
	}
	if a.LargestFreeOrder() != -1 {
		t.Errorf("LargestFreeOrder on empty = %d, want -1", a.LargestFreeOrder())
	}
}

func TestBadOrderPanics(t *testing.T) {
	a := New(64)
	defer func() {
		if recover() == nil {
			t.Error("AllocOrder(MaxOrder+1) did not panic")
		}
	}()
	a.AllocOrder(MaxOrder + 1)
}

// Property: any sequence of allocations and frees conserves frames and never
// hands out overlapping blocks.
func TestQuickNoOverlapAndConservation(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		const nframes = 1 << 9
		a := New(nframes)
		r := rand.New(rand.NewSource(seed))
		owned := map[uint64]int{} // frame -> order
		claimed := map[uint64]bool{}
		for _, op := range ops {
			if op%2 == 0 || len(owned) == 0 {
				order := int(op>>2) % 5
				frame, ok := a.AllocOrder(order)
				if !ok {
					continue
				}
				for i := uint64(0); i < 1<<order; i++ {
					if claimed[frame+i] {
						return false // overlap
					}
					claimed[frame+i] = true
				}
				owned[frame] = order
			} else {
				// Free a random owned block.
				ks := make([]uint64, 0, len(owned))
				for k := range owned {
					ks = append(ks, k)
				}
				k := ks[r.Intn(len(ks))]
				for i := uint64(0); i < 1<<owned[k]; i++ {
					delete(claimed, k+i)
				}
				a.Free(k)
				delete(owned, k)
			}
		}
		return a.FreeFrames()+uint64(len(claimed)) == nframes-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocFreePage(b *testing.B) {
	a := New(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, ok := a.AllocPage()
		if !ok {
			b.Fatal("exhausted")
		}
		a.Free(f)
	}
}

func BenchmarkAllocFreeOrder3(b *testing.B) {
	a := New(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, ok := a.AllocOrder(3)
		if !ok {
			b.Fatal("exhausted")
		}
		a.Free(f)
	}
}

func TestSplitAllowsIndividualFrees(t *testing.T) {
	a := New(1 << 10)
	before := a.FreeFrames()
	f, ok := a.AllocOrder(3)
	if !ok {
		t.Fatal("alloc failed")
	}
	a.Split(f)
	// Every frame is now its own order-0 block.
	for i := uint64(0); i < 8; i++ {
		if got := a.BlockOrder(f + i); got != 0 {
			t.Errorf("frame %d order = %d after split", i, got)
		}
	}
	// Free them out of order; coalescing must restore the full count.
	for _, off := range []uint64{3, 0, 7, 1, 5, 2, 6, 4} {
		a.Free(f + off)
	}
	if a.FreeFrames() != before {
		t.Errorf("FreeFrames = %d, want %d", a.FreeFrames(), before)
	}
	// The 8-page block must be allocatable again as order 3.
	if f2, ok := a.AllocOrder(3); !ok {
		t.Error("order-3 realloc failed after split-free cycle")
	} else {
		a.Free(f2)
	}
}

func TestSplitOfFreeBlockPanics(t *testing.T) {
	a := New(64)
	f, _ := a.AllocOrder(2)
	a.Free(f)
	defer func() {
		if recover() == nil {
			t.Error("split of free block did not panic")
		}
	}()
	a.Split(f)
}

func TestSplitOrderZeroIsNoop(t *testing.T) {
	a := New(64)
	f, _ := a.AllocPage()
	a.Split(f)
	a.Free(f) // must not panic
}

func TestAllocAt(t *testing.T) {
	a := New(1 << 10)
	before := a.FreeFrames()
	// Pick a frame interior to a large free block.
	if !a.AllocAt(700) {
		t.Fatal("AllocAt(700) failed on fresh allocator")
	}
	if a.FreeFrames() != before-1 {
		t.Errorf("FreeFrames = %d", a.FreeFrames())
	}
	if got := a.BlockOrder(700); got != 0 {
		t.Errorf("order = %d", got)
	}
	// The same frame is now taken.
	if a.AllocAt(700) {
		t.Error("AllocAt succeeded on allocated frame")
	}
	// Neighbours are still allocatable.
	if !a.AllocAt(699) || !a.AllocAt(701) {
		t.Error("AllocAt of neighbours failed")
	}
	a.Free(700)
	a.Free(699)
	a.Free(701)
	if a.FreeFrames() != before {
		t.Errorf("conservation violated: %d != %d", a.FreeFrames(), before)
	}
	// Coalescing must have restored a big block.
	if _, ok := a.AllocOrder(8); !ok {
		t.Error("order-8 alloc failed after AllocAt churn")
	}
}

func TestAllocAtInvalidFrames(t *testing.T) {
	a := New(64)
	if a.AllocAt(0) {
		t.Error("AllocAt(0) succeeded on reserved frame")
	}
	if a.AllocAt(64) {
		t.Error("AllocAt beyond range succeeded")
	}
	if a.AllocAt(1 << 40) {
		t.Error("AllocAt far beyond range succeeded")
	}
}

func TestAllocAtEveryFrameThenExhausted(t *testing.T) {
	a := New(128)
	for f := uint64(1); f < 128; f++ {
		if !a.AllocAt(f) {
			t.Fatalf("AllocAt(%d) failed", f)
		}
	}
	if a.FreeFrames() != 0 {
		t.Errorf("FreeFrames = %d", a.FreeFrames())
	}
	if _, ok := a.AllocPage(); ok {
		t.Error("allocation succeeded with all frames targeted")
	}
}

func TestAllocAtAfterRegularAllocations(t *testing.T) {
	a := New(1 << 10)
	f, _ := a.AllocOrder(4) // claims a 16-frame block
	// Frames inside the allocated block are not stealable.
	for i := uint64(0); i < 16; i++ {
		if a.AllocAt(f + i) {
			t.Fatalf("AllocAt stole frame %d of an allocated block", i)
		}
	}
	a.Free(f)
	if !a.AllocAt(f + 5) {
		t.Error("AllocAt failed after the block was freed")
	}
}

// TestFreeExtentsTracksCoalescing pins the coalescing measure the
// overcommit tooling reads: scattered single-page frees fragment the
// free lists into many extents, and freeing their neighbours merges the
// extents back.
func TestFreeExtentsTracksCoalescing(t *testing.T) {
	a := New(128)
	initial := a.FreeExtents()
	if initial == 0 {
		t.Fatal("fresh allocator reports zero free extents")
	}
	var frames []uint64
	for i := 0; i < 32; i++ {
		f, ok := a.AllocPage()
		if !ok {
			t.Fatal("allocation failed")
		}
		frames = append(frames, f)
	}
	// Free every other page: no two are buddies, so each free adds an
	// extent.
	for i := 0; i < len(frames); i += 2 {
		a.Free(frames[i])
	}
	scattered := a.FreeExtents()
	if scattered <= initial {
		t.Errorf("scattered frees left %d extents, want more than %d", scattered, initial)
	}
	// Freeing the partners coalesces pairs (and beyond) back together.
	for i := 1; i < len(frames); i += 2 {
		a.Free(frames[i])
	}
	if got := a.FreeExtents(); got != initial {
		t.Errorf("full free leaves %d extents, want the initial %d", got, initial)
	}
	var sum uint64
	for _, c := range a.FreeBlocksByOrder() {
		sum += c
	}
	if got := a.FreeExtents(); got != sum {
		t.Errorf("FreeExtents = %d, FreeBlocksByOrder sums to %d", got, sum)
	}
}
