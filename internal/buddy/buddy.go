// Package buddy implements a binary buddy page-frame allocator in the style
// of the Linux kernel's zone allocator.
//
// Frames are managed in blocks of 2^order pages, order 0 through MaxOrder.
// Free blocks of each order sit on a per-order free list; allocation splits
// the smallest sufficient block and freeing coalesces with the buddy block
// whenever the buddy is also free.
//
// Two properties matter for the PTEMagnet reproduction:
//
//   - Free lists are LIFO and allocation prefers the lowest adequate order.
//     This is what makes interleaved single-page requests from colocated
//     processes produce physically interleaved — fragmented — layouts, the
//     phenomenon §2.4 and §3 of the paper build on.
//   - Order-3 (eight-page, 32KB) allocations are natural and cheap, which is
//     what PTEMagnet's reservation path relies on.
//
// The allocator is not safe for concurrent use; the simulated kernels
// serialize calls the way a per-zone spinlock would.
package buddy

import (
	"fmt"

	"ptemagnet/internal/obs"
)

// MaxOrder is the largest supported block order. 2^11 pages = 8MB, matching
// Linux's default MAX_ORDER-1 = 10..11 range closely enough for simulation.
const MaxOrder = 11

// Stats aggregates allocator activity counters.
type Stats struct {
	// AllocCalls counts successful allocations, by requested order.
	AllocCalls [MaxOrder + 1]uint64
	// FreeCalls counts frees, by order.
	FreeCalls [MaxOrder + 1]uint64
	// Splits counts block splits performed to satisfy allocations.
	Splits uint64
	// Merges counts buddy coalescing events on free.
	Merges uint64
	// Failures counts allocations that failed for lack of memory.
	Failures uint64
}

// Delta returns the counter-wise difference s - prev.
func (s Stats) Delta(prev Stats) Stats {
	var d Stats
	for i := range s.AllocCalls {
		d.AllocCalls[i] = s.AllocCalls[i] - prev.AllocCalls[i]
		d.FreeCalls[i] = s.FreeCalls[i] - prev.FreeCalls[i]
	}
	d.Splits = s.Splits - prev.Splits
	d.Merges = s.Merges - prev.Merges
	d.Failures = s.Failures - prev.Failures
	return d
}

// Allocator is a binary buddy allocator over a contiguous range of physical
// frames [0, nframes).
type Allocator struct {
	nframes uint64
	// freeHead[o] is the frame number at the head of the order-o free
	// list, or noFrame.
	freeHead [MaxOrder + 1]uint64
	// next/prev link free blocks into doubly-linked lists, indexed by the
	// block's first frame.
	next []uint64
	prev []uint64
	// state holds per-frame metadata: for the first frame of a free block,
	// the block's order and a free bit; for allocated blocks, the order it
	// was allocated with (needed by Free).
	state []frameState
	free  uint64 // total free frames
	stats Stats
	hook  AllocHook
}

// AllocHook vetoes allocations for deterministic fault injection
// (faults.Plan implements it). FailAlloc is consulted once per
// AllocOrder call with the requested order; returning true makes the
// call fail as if no block of sufficient order were free, counted under
// the allocator's existing failures counter.
type AllocHook interface {
	FailAlloc(order int) bool
}

// SetAllocHook installs h (nil removes it). The zero-hook path is one
// nil check per allocation.
func (a *Allocator) SetAllocHook(h AllocHook) { a.hook = h }

type frameState struct {
	order  int8
	isFree bool
	isHead bool // first frame of a tracked (free or allocated) block
}

const noFrame = ^uint64(0)

// New creates an allocator managing nframes physical frames. Frame 0 is
// permanently reserved so that physical address 0 can serve as a null
// sentinel, mirroring real kernels keeping low memory out of the allocator.
func New(nframes uint64) *Allocator {
	if nframes < 2 {
		panic(fmt.Sprintf("buddy: need at least 2 frames, got %d", nframes))
	}
	a := &Allocator{
		nframes: nframes,
		next:    make([]uint64, nframes),
		prev:    make([]uint64, nframes),
		state:   make([]frameState, nframes),
	}
	for o := range a.freeHead {
		a.freeHead[o] = noFrame
	}
	// Seed the free lists with maximal aligned blocks covering
	// [1, nframes). Frame 0 stays reserved.
	frame := uint64(1)
	for frame < nframes {
		o := maxOrderAt(frame, nframes)
		a.pushFree(frame, o)
		a.free += uint64(1) << o
		frame += uint64(1) << o
	}
	return a
}

// maxOrderAt returns the largest order usable for a free block starting at
// frame without exceeding limit or violating buddy alignment.
func maxOrderAt(frame, limit uint64) int {
	o := MaxOrder
	for o > 0 {
		size := uint64(1) << o
		if frame%size == 0 && frame+size <= limit {
			break
		}
		o--
	}
	return o
}

// NumFrames returns the total number of managed frames, including the
// reserved frame 0.
func (a *Allocator) NumFrames() uint64 { return a.nframes }

// FreeFrames returns the number of currently free frames.
func (a *Allocator) FreeFrames() uint64 { return a.free }

// UsedFrames returns the number of allocated frames (excluding the reserved
// frame 0).
func (a *Allocator) UsedFrames() uint64 { return a.nframes - 1 - a.free }

// Snapshot returns a copy of the activity counters.
func (a *Allocator) Snapshot() Stats { return a.stats }

// RegisterObs registers the allocator's counters on r under prefix:
// per-order alloc/free histograms plus the split/merge/failure totals.
func (a *Allocator) RegisterObs(r *obs.Registry, prefix string) {
	r.Histogram(prefix+"alloc_calls", MaxOrder+1, func(o int) uint64 { return a.stats.AllocCalls[o] })
	r.Histogram(prefix+"free_calls", MaxOrder+1, func(o int) uint64 { return a.stats.FreeCalls[o] })
	r.Counter(prefix+"splits", func() uint64 { return a.stats.Splits })
	r.Counter(prefix+"merges", func() uint64 { return a.stats.Merges })
	r.Counter(prefix+"failures", func() uint64 { return a.stats.Failures })
}

// AllocOrder allocates a 2^order-page block and returns its first frame
// number. It returns ok=false if no block of sufficient order is free.
func (a *Allocator) AllocOrder(order int) (frame uint64, ok bool) {
	if order < 0 || order > MaxOrder {
		panic(fmt.Sprintf("buddy: bad order %d", order))
	}
	if a.hook != nil && a.hook.FailAlloc(order) {
		a.stats.Failures++
		return 0, false
	}
	o := order
	for o <= MaxOrder && a.freeHead[o] == noFrame {
		o++
	}
	if o > MaxOrder {
		a.stats.Failures++
		return 0, false
	}
	frame = a.popFree(o)
	// Split down to the requested order, returning the upper halves to
	// their free lists (lower half is retained — Linux does the same, so
	// consecutive small allocations walk a split block upward).
	for o > order {
		o--
		buddy := frame + (uint64(1) << o)
		a.pushFree(buddy, o)
		a.stats.Splits++
	}
	a.state[frame] = frameState{order: int8(order), isFree: false, isHead: true}
	a.free -= uint64(1) << order
	a.stats.AllocCalls[order]++
	return frame, true
}

// AllocPage allocates a single page frame (order 0).
func (a *Allocator) AllocPage() (uint64, bool) { return a.AllocOrder(0) }

// AllocAt allocates the specific frame if it is currently free, splitting
// whatever free block contains it. It returns false when the frame is in
// use (or reserved frame 0). Contiguity-aware allocators (the CA-paging
// baseline from the paper's related work) use this to place a page
// physically next to its virtual neighbour on a best-effort basis.
func (a *Allocator) AllocAt(frame uint64) bool {
	if frame == 0 || frame >= a.nframes {
		return false
	}
	// Find the free block containing frame: scan upward over buddy-aligned
	// candidate heads.
	head, order, ok := a.freeBlockContaining(frame)
	if !ok {
		return false
	}
	a.unlinkFree(head, order)
	// Split repeatedly, keeping the half that contains frame and
	// returning the other half to the free lists.
	for order > 0 {
		order--
		half := uint64(1) << order
		if frame < head+half {
			a.pushFree(head+half, order)
		} else {
			a.pushFree(head, order)
			head += half
		}
		a.stats.Splits++
	}
	a.state[frame] = frameState{order: 0, isFree: false, isHead: true}
	a.free--
	a.stats.AllocCalls[0]++
	return true
}

// freeBlockContaining locates the free block covering frame, if any.
func (a *Allocator) freeBlockContaining(frame uint64) (head uint64, order int, ok bool) {
	for o := 0; o <= MaxOrder; o++ {
		h := frame &^ ((uint64(1) << o) - 1)
		st := a.state[h]
		if st.isFree && st.isHead && int(st.order) == o {
			return h, o, true
		}
	}
	return 0, 0, false
}

// Free returns the block starting at frame to the allocator. The block must
// have been returned by AllocOrder and not freed since; order is validated
// against the allocation record.
func (a *Allocator) Free(frame uint64) {
	if frame == 0 || frame >= a.nframes {
		panic(fmt.Sprintf("buddy: free of invalid frame %d", frame))
	}
	st := a.state[frame]
	if !st.isHead || st.isFree {
		panic(fmt.Sprintf("buddy: free of frame %d which is not an allocated block head", frame))
	}
	order := int(st.order)
	a.free += uint64(1) << order
	a.stats.FreeCalls[order]++
	// Coalesce with the buddy while possible.
	for order < MaxOrder {
		buddy := frame ^ (uint64(1) << order)
		if buddy >= a.nframes {
			break
		}
		bst := a.state[buddy]
		if !bst.isFree || int(bst.order) != order {
			break
		}
		a.unlinkFree(buddy, order)
		if buddy < frame {
			a.state[frame] = frameState{}
			frame = buddy
		} else {
			a.state[buddy] = frameState{}
		}
		order++
		a.stats.Merges++
	}
	a.pushFree(frame, order)
}

// Split converts an allocated block of order > 0 into 2^order individually
// allocated order-0 blocks, so each page can be freed on its own. This
// mirrors Linux's split_page(), which PTEMagnet-style reservations rely on:
// the kernel takes a contiguous eight-page chunk but later frees (or maps)
// its pages one at a time. Coalescing on free reassembles larger blocks
// naturally.
func (a *Allocator) Split(frame uint64) {
	st := a.state[frame]
	if !st.isHead || st.isFree {
		panic(fmt.Sprintf("buddy: split of frame %d which is not an allocated block head", frame))
	}
	order := int(st.order)
	for i := uint64(0); i < uint64(1)<<order; i++ {
		a.state[frame+i] = frameState{order: 0, isFree: false, isHead: true}
	}
}

// BlockOrder reports the order the block starting at frame was allocated
// with. It panics if frame is not an allocated block head; use it only on
// frames previously returned by AllocOrder.
func (a *Allocator) BlockOrder(frame uint64) int {
	st := a.state[frame]
	if !st.isHead || st.isFree {
		panic(fmt.Sprintf("buddy: frame %d is not an allocated block head", frame))
	}
	return int(st.order)
}

// FreeBlocksByOrder returns, for each order, how many free blocks sit on
// that order's free list. Useful for fragmentation inspection.
func (a *Allocator) FreeBlocksByOrder() [MaxOrder + 1]uint64 {
	var counts [MaxOrder + 1]uint64
	for o := 0; o <= MaxOrder; o++ {
		for f := a.freeHead[o]; f != noFrame; f = a.next[f] {
			counts[o]++
		}
	}
	return counts
}

// FreeExtents returns how many maximal free blocks the allocator tracks
// across all orders. Together with FreeFrames it gives a coalescing
// measure: FreeFrames/FreeExtents is the mean free extent, which recovers
// toward larger powers of two as ballooned-out frames merge back into the
// free lists.
func (a *Allocator) FreeExtents() uint64 {
	var n uint64
	for _, c := range a.FreeBlocksByOrder() {
		n += c
	}
	return n
}

// LargestFreeOrder returns the largest order with a non-empty free list, or
// -1 if the allocator is exhausted.
func (a *Allocator) LargestFreeOrder() int {
	for o := MaxOrder; o >= 0; o-- {
		if a.freeHead[o] != noFrame {
			return o
		}
	}
	return -1
}

func (a *Allocator) pushFree(frame uint64, order int) {
	a.state[frame] = frameState{order: int8(order), isFree: true, isHead: true}
	head := a.freeHead[order]
	a.next[frame] = head
	a.prev[frame] = noFrame
	if head != noFrame {
		a.prev[head] = frame
	}
	a.freeHead[order] = frame
}

func (a *Allocator) popFree(order int) uint64 {
	frame := a.freeHead[order]
	a.unlinkFree(frame, order)
	return frame
}

func (a *Allocator) unlinkFree(frame uint64, order int) {
	n, p := a.next[frame], a.prev[frame]
	if p == noFrame {
		a.freeHead[order] = n
	} else {
		a.next[p] = n
	}
	if n != noFrame {
		a.prev[n] = p
	}
	a.state[frame] = frameState{}
}
