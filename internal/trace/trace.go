// Package trace records the simulator's per-access event stream in a
// compact binary format for offline analysis: every memory access with its
// translation outcome (TLB hit or walk, cycles, serving cache level) and
// every page fault with its resolution kind.
//
// Traces are what the paper's authors extract with perf sampling; here they
// are exact. A recorded trace answers questions the aggregate counters
// cannot — which virtual regions pay the walk penalty, how walk latency
// distributes over time, when fault storms happen — and, because the
// simulator is deterministic, a trace is a complete, replayable description
// of a run.
//
// Format: a 16-byte header (magic "PTMT", version, record count) followed
// by fixed-size 32-byte little-endian records. A million-access run records
// in ~32MB.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/vm"
)

// Kind discriminates event records.
type Kind uint8

const (
	// KindAccess is one memory access (with its translation outcome).
	KindAccess Kind = iota
	// KindFault is one guest page fault.
	KindFault
)

// Event is one trace record.
type Event struct {
	// Seq is the global access sequence number at the time of the event.
	Seq uint64
	// Task identifies the workload (index in machine task order).
	Task uint8
	// Kind discriminates the union below.
	Kind Kind
	// VA is the accessed (or faulting) virtual address.
	VA arch.VirtAddr
	// Write marks stores.
	Write bool
	// TLBHit marks translations served by the TLB (KindAccess).
	TLBHit bool
	// ServedLevel is the cache level serving the data access, as a
	// cache.Level value (KindAccess).
	ServedLevel uint8
	// TranslationCycles is the translation cost of this access
	// (KindAccess).
	TranslationCycles uint32
	// DataCycles is the data-access cost (KindAccess).
	DataCycles uint32
	// FaultKind is the guestos.FaultKind (KindFault).
	FaultKind uint8
}

const (
	magic      = "PTMT"
	version    = 1
	headerSize = 16
	recordSize = 32
)

// flag bits inside the record.
const (
	flagWrite  = 1 << 0
	flagTLBHit = 1 << 1
)

// Writer streams events to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count uint64
	// countAt remembers whether the sink is seekable so Close can patch
	// the header; if not, the count in the header stays zero and readers
	// fall back to reading until EOF.
	seeker io.WriteSeeker
	buf    [recordSize]byte
	err    error
}

// NewWriter starts a trace on w, writing the header immediately. If w is
// also an io.WriteSeeker, Close patches the record count into the header;
// otherwise readers derive the count from the stream length.
func NewWriter(w io.Writer) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	if s, ok := w.(io.WriteSeeker); ok {
		tw.seeker = s
	}
	var hdr [headerSize]byte
	copy(hdr[:4], magic)
	hdr[4] = version
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return tw, nil
}

// Write appends one event.
func (tw *Writer) Write(e Event) error {
	if tw.err != nil {
		return tw.err
	}
	b := tw.buf[:]
	binary.LittleEndian.PutUint64(b[0:], e.Seq)
	binary.LittleEndian.PutUint64(b[8:], uint64(e.VA))
	binary.LittleEndian.PutUint32(b[16:], e.TranslationCycles)
	binary.LittleEndian.PutUint32(b[20:], e.DataCycles)
	b[24] = e.Task
	b[25] = uint8(e.Kind)
	var flags uint8
	if e.Write {
		flags |= flagWrite
	}
	if e.TLBHit {
		flags |= flagTLBHit
	}
	b[26] = flags
	b[27] = e.ServedLevel
	b[28] = e.FaultKind
	b[29], b[30], b[31] = 0, 0, 0
	if _, err := tw.w.Write(b); err != nil {
		tw.err = err
		return err
	}
	tw.count++
	return nil
}

// Count returns the number of events written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Close flushes the stream and, when the sink is seekable, patches the
// record count into the header.
func (tw *Writer) Close() error {
	if tw.err != nil {
		return tw.err
	}
	if err := tw.w.Flush(); err != nil {
		return err
	}
	if tw.seeker != nil {
		if _, err := tw.seeker.Seek(8, io.SeekStart); err != nil {
			return err
		}
		var cnt [8]byte
		binary.LittleEndian.PutUint64(cnt[:], tw.count)
		if _, err := tw.seeker.Write(cnt[:]); err != nil {
			return err
		}
		if _, err := tw.seeker.Seek(0, io.SeekEnd); err != nil {
			return err
		}
	}
	return nil
}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed stream")

// Reader iterates a trace.
type Reader struct {
	r     *bufio.Reader
	count uint64 // from header; 0 = unknown, read to EOF
	read  uint64
	buf   [recordSize]byte
}

// NewReader validates the header and prepares iteration.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %w", ErrBadTrace, err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[:4])
	}
	if hdr[4] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, hdr[4])
	}
	return &Reader{r: br, count: binary.LittleEndian.Uint64(hdr[8:])}, nil
}

// Next returns the next event; io.EOF ends the stream.
func (tr *Reader) Next() (Event, error) {
	if tr.count > 0 && tr.read >= tr.count {
		return Event{}, io.EOF
	}
	if _, err := io.ReadFull(tr.r, tr.buf[:]); err != nil {
		if errors.Is(err, io.EOF) && tr.count == 0 {
			return Event{}, io.EOF
		}
		if errors.Is(err, io.EOF) {
			return Event{}, fmt.Errorf("%w: truncated at record %d of %d", ErrBadTrace, tr.read, tr.count)
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Event{}, fmt.Errorf("%w: torn record %d", ErrBadTrace, tr.read)
		}
		return Event{}, err
	}
	b := tr.buf[:]
	e := Event{
		Seq:               binary.LittleEndian.Uint64(b[0:]),
		VA:                arch.VirtAddr(binary.LittleEndian.Uint64(b[8:])),
		TranslationCycles: binary.LittleEndian.Uint32(b[16:]),
		DataCycles:        binary.LittleEndian.Uint32(b[20:]),
		Task:              b[24],
		Kind:              Kind(b[25]),
		Write:             b[26]&flagWrite != 0,
		TLBHit:            b[26]&flagTLBHit != 0,
		ServedLevel:       b[27],
		FaultKind:         b[28],
	}
	tr.read++
	return e, nil
}

// ForEach iterates the whole stream.
func (tr *Reader) ForEach(fn func(Event) error) error {
	for {
		e, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}

// Collector adapts a Writer to the vm.Tracer interface, so a Machine can
// record its run directly. Errors are sticky and surfaced by Close.
//
// Collector implements both the batched vm.Tracer interface (AccessBatch)
// and the legacy per-event vm.AccessTracer one (Access), writing identical
// record streams either way.
type Collector struct {
	w   *Writer
	err error
}

// NewCollector wraps a Writer.
func NewCollector(w *Writer) *Collector { return &Collector{w: w} }

// AccessBatch records a batch of memory accesses in order.
func (c *Collector) AccessBatch(recs []vm.AccessRecord) {
	for i := range recs {
		if c.err != nil {
			return
		}
		r := &recs[i]
		c.err = c.w.Write(Event{
			Seq: r.Seq, Task: uint8(r.Task), Kind: KindAccess, VA: r.VA,
			Write: r.Write, TLBHit: r.TLBHit, ServedLevel: r.Served,
			TranslationCycles: clamp32(r.TranslationCycles),
			DataCycles:        clamp32(r.DataCycles),
		})
	}
}

// Access records one memory access.
func (c *Collector) Access(task int, va arch.VirtAddr, write, tlbHit bool, translationCycles, dataCycles uint64, served uint8, seq uint64) {
	if c.err != nil {
		return
	}
	c.err = c.w.Write(Event{
		Seq: seq, Task: uint8(task), Kind: KindAccess, VA: va,
		Write: write, TLBHit: tlbHit, ServedLevel: served,
		TranslationCycles: clamp32(translationCycles),
		DataCycles:        clamp32(dataCycles),
	})
}

// Fault records one guest page fault.
func (c *Collector) Fault(task int, va arch.VirtAddr, kind uint8, seq uint64) {
	if c.err != nil {
		return
	}
	c.err = c.w.Write(Event{Seq: seq, Task: uint8(task), Kind: KindFault, VA: va, FaultKind: kind})
}

// Close finishes the underlying writer and reports any sticky error.
func (c *Collector) Close() error {
	if c.err != nil {
		return c.err
	}
	return c.w.Close()
}

func clamp32(v uint64) uint32 {
	if v > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(v)
}

// Summary aggregates a trace for human consumption.
type Summary struct {
	// Events, Accesses and Faults count records by kind.
	Events, Accesses, Faults uint64
	// Writes counts store accesses.
	Writes uint64
	// TLBHits counts TLB-served translations; the rest walked.
	TLBHits uint64
	// TranslationCycles and DataCycles total the per-access costs.
	TranslationCycles, DataCycles uint64
	// PerTask breaks accesses down by task index.
	PerTask map[uint8]uint64
	// FaultsByKind breaks faults down by guestos.FaultKind value.
	FaultsByKind map[uint8]uint64
	// HotPages lists the most-accessed virtual pages, descending.
	HotPages []PageCount
}

// PageCount is one page's access count.
type PageCount struct {
	Page  arch.VirtAddr
	Count uint64
}

// Summarize scans a trace and aggregates it. topN bounds HotPages.
func Summarize(r io.Reader, topN int) (Summary, error) {
	tr, err := NewReader(r)
	if err != nil {
		return Summary{}, err
	}
	s := Summary{PerTask: map[uint8]uint64{}, FaultsByKind: map[uint8]uint64{}}
	pages := map[arch.VirtAddr]uint64{}
	err = tr.ForEach(func(e Event) error {
		s.Events++
		switch e.Kind {
		case KindAccess:
			s.Accesses++
			s.PerTask[e.Task]++
			if e.Write {
				s.Writes++
			}
			if e.TLBHit {
				s.TLBHits++
			}
			s.TranslationCycles += uint64(e.TranslationCycles)
			s.DataCycles += uint64(e.DataCycles)
			pages[e.VA.PageBase()]++
		case KindFault:
			s.Faults++
			s.FaultsByKind[e.FaultKind]++
		default:
			return fmt.Errorf("%w: unknown kind %d", ErrBadTrace, e.Kind)
		}
		return nil
	})
	if err != nil {
		return Summary{}, err
	}
	for page, count := range pages {
		s.HotPages = append(s.HotPages, PageCount{Page: page, Count: count})
	}
	sort.Slice(s.HotPages, func(i, j int) bool {
		if s.HotPages[i].Count != s.HotPages[j].Count {
			return s.HotPages[i].Count > s.HotPages[j].Count
		}
		return s.HotPages[i].Page < s.HotPages[j].Page
	})
	if topN > 0 && len(s.HotPages) > topN {
		s.HotPages = s.HotPages[:topN]
	}
	return s, nil
}
