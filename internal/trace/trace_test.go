package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ptemagnet/internal/arch"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Seq: 1, Task: 0, Kind: KindAccess, VA: 0x7f0000001234, Write: true, TLBHit: false,
			ServedLevel: 3, TranslationCycles: 512, DataCycles: 220},
		{Seq: 1, Task: 0, Kind: KindFault, VA: 0x7f0000001000, FaultKind: 2},
		{Seq: 2, Task: 1, Kind: KindAccess, VA: 0x1000, TLBHit: true,
			ServedLevel: 0, TranslationCycles: 1, DataCycles: 4},
	}
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range events {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last record: %v, want EOF", err)
	}
}

func TestFileRoundTripWithHeaderCount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		w.Write(Event{Seq: uint64(i), Kind: KindAccess, VA: arch.VirtAddr(i) << arch.PageShift})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	r, err := NewReader(f2)
	if err != nil {
		t.Fatal(err)
	}
	if r.count != 100 {
		t.Errorf("header count = %d, want 100 (seekable sink patches header)", r.count)
	}
	n := 0
	if err := r.ForEach(func(Event) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("read %d records", n)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("short header: %v", err)
	}
	bad := append([]byte("XXXX"), make([]byte, 12)...)
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad magic: %v", err)
	}
	badVer := append([]byte(magic), make([]byte, 12)...)
	badVer[4] = 99
	if _, err := NewReader(bytes.NewReader(badVer)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad version: %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Kind: KindAccess})
	w.Write(Event{Kind: KindAccess})
	w.Close()
	// Chop the last record in half.
	data := buf.Bytes()[:buf.Len()-16]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("torn record: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	hot := arch.VirtAddr(0x40000000)
	for i := 0; i < 10; i++ {
		w.Write(Event{Kind: KindAccess, Task: 0, VA: hot + arch.VirtAddr(i%2)*7, // same page
			TLBHit: i%2 == 0, Write: i%3 == 0, TranslationCycles: 10, DataCycles: 20})
	}
	w.Write(Event{Kind: KindAccess, Task: 1, VA: 0x50000000, TranslationCycles: 100, DataCycles: 220})
	w.Write(Event{Kind: KindFault, Task: 0, VA: hot, FaultKind: 3})
	w.Write(Event{Kind: KindFault, Task: 0, VA: hot, FaultKind: 3})
	w.Close()

	s, err := Summarize(bytes.NewReader(buf.Bytes()), 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Events != 13 || s.Accesses != 11 || s.Faults != 2 {
		t.Errorf("events=%d accesses=%d faults=%d", s.Events, s.Accesses, s.Faults)
	}
	if s.TLBHits != 5 {
		t.Errorf("TLBHits = %d", s.TLBHits)
	}
	if s.Writes != 4 {
		t.Errorf("Writes = %d", s.Writes)
	}
	if s.TranslationCycles != 200 || s.DataCycles != 420 {
		t.Errorf("cycles = %d/%d", s.TranslationCycles, s.DataCycles)
	}
	if s.PerTask[0] != 10 || s.PerTask[1] != 1 {
		t.Errorf("PerTask = %v", s.PerTask)
	}
	if s.FaultsByKind[3] != 2 {
		t.Errorf("FaultsByKind = %v", s.FaultsByKind)
	}
	if len(s.HotPages) != 2 || s.HotPages[0].Page != hot.PageBase() || s.HotPages[0].Count != 10 {
		t.Errorf("HotPages = %+v", s.HotPages)
	}
}

func TestSummarizeTopN(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 50; i++ {
		w.Write(Event{Kind: KindAccess, VA: arch.VirtAddr(i) << arch.PageShift})
	}
	w.Close()
	s, err := Summarize(bytes.NewReader(buf.Bytes()), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.HotPages) != 7 {
		t.Errorf("HotPages = %d, want 7", len(s.HotPages))
	}
}

func TestCollector(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	c := NewCollector(w)
	c.Access(2, 0x1234, true, false, 1<<40, 99, 3, 7) // translation clamps to max uint32
	c.Fault(2, 0x1000, 4, 7)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	e1, _ := r.Next()
	if e1.TranslationCycles != 1<<32-1 {
		t.Errorf("clamp failed: %d", e1.TranslationCycles)
	}
	if e1.Task != 2 || !e1.Write || e1.DataCycles != 99 {
		t.Errorf("access = %+v", e1)
	}
	e2, _ := r.Next()
	if e2.Kind != KindFault || e2.FaultKind != 4 {
		t.Errorf("fault = %+v", e2)
	}
}

func TestRandomRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	var want []Event
	for i := 0; i < 2000; i++ {
		e := Event{
			Seq:               rng.Uint64(),
			Task:              uint8(rng.Intn(8)),
			Kind:              Kind(rng.Intn(2)),
			VA:                arch.VirtAddr(rng.Uint64()),
			Write:             rng.Intn(2) == 0,
			TLBHit:            rng.Intn(2) == 0,
			ServedLevel:       uint8(rng.Intn(4)),
			TranslationCycles: rng.Uint32(),
			DataCycles:        rng.Uint32(),
			FaultKind:         uint8(rng.Intn(7)),
		}
		want = append(want, e)
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	i := 0
	err := r.ForEach(func(got Event) error {
		if got != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
		i++
		return nil
	})
	if err != nil || i != len(want) {
		t.Fatalf("err=%v read=%d", err, i)
	}
}

func BenchmarkWrite(b *testing.B) {
	w, _ := NewWriter(io.Discard)
	e := Event{Seq: 1, Kind: KindAccess, VA: 0x7f0000001234, TranslationCycles: 512, DataCycles: 220}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Write(e)
	}
}

func TestReaderUnknownCountReadsToEOF(t *testing.T) {
	// A non-seekable sink leaves the header count zero; readers must
	// consume until EOF instead.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		w.Write(Event{Seq: uint64(i), Kind: KindAccess})
	}
	w.Close()
	// Zero the count field manually (bytes.Buffer is not a seeker, so it
	// already is zero — assert that).
	data := buf.Bytes()
	for i := 8; i < 16; i++ {
		if data[i] != 0 {
			t.Fatalf("header count unexpectedly patched on non-seekable sink")
		}
	}
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := r.ForEach(func(Event) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("read %d records, want 5", n)
	}
}

func TestSummarizeRejectsUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Kind: Kind(9)})
	w.Close()
	if _, err := Summarize(bytes.NewReader(buf.Bytes()), 1); !errors.Is(err, ErrBadTrace) {
		t.Errorf("unknown kind: %v", err)
	}
}
