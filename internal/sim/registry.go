// The experiment registry: one table describing every runnable experiment
// (name, display title, selector tags, paper notes) with a uniform
// context-first entry point. cmd/experiments dispatches through it instead
// of hard-coding one call site per experiment, and new experiments are
// added by appending one entry here. The typed RunXxxCtx functions remain
// the primary API for programmatic callers; the registry adapts them to a
// common signature for name-driven dispatch.
package sim

import (
	"context"
	"fmt"

	"ptemagnet/internal/engine"
	"ptemagnet/internal/faults"
	"ptemagnet/internal/obs"
)

// ExperimentResult is the reduced output of one experiment — every typed
// result satisfies it via its String rendering.
type ExperimentResult interface{ String() string }

// ExperimentInfo describes one registered experiment.
type ExperimentInfo struct {
	// Name is the canonical registry key (RunExperiment's argument).
	Name string
	// Title is the display heading, naming the paper table or figure.
	Title string
	// Notes are the paper's headline numbers, printed after a successful
	// run (already indented for the experiment listing format).
	Notes []string
	// Tags are additional selector aliases: a -exp value matches an
	// experiment when it equals its Name or one of its Tags. Aliases may
	// span experiments (e.g. "fig6" selects the objdet suite and the
	// low-pressure check, which print together as Figure 6).
	Tags []string
	// InAll marks experiments included in the "all" selector. The opt-in
	// sweeps (multitenant, migration, chaos, overcommit) are excluded so
	// the default output stays stable.
	InAll bool
}

// ExperimentOptions carries the optional knobs of RunExperimentOpts.
//
// Deprecated: use RunExperiment's functional options (WithEngine,
// WithVMCounts) instead.
type ExperimentOptions struct {
	// Engine runs the experiment's scenarios (nil = default settings).
	Engine *engine.Engine
	// VMCounts narrows the multitenant sweep (nil = the full sweep);
	// ignored by every other experiment.
	VMCounts []int
}

// DefaultSeed is the seed RunExperiment uses when WithSeed is absent —
// the same default cmd/experiments ships, so programmatic and CLI runs
// of an experiment agree by default.
const DefaultSeed int64 = 11

// runParams is the assembled form of RunExperiment's options.
type runParams struct {
	scale     Scale
	seed      int64
	eng       *engine.Engine
	vmCounts  []int
	faults    faults.Config
	retry     engine.RetryPolicy
	collector *obs.Collector
}

func defaultRunParams() runParams {
	return runParams{scale: DefaultScale(), seed: DefaultSeed}
}

// RunOpt configures RunExperiment — the same functional-options idiom as
// machine runs (vm.RunOpt), so experiment and machine configuration read
// alike.
type RunOpt func(*runParams)

// WithScale selects the sweep sizing (default DefaultScale()).
func WithScale(sc Scale) RunOpt {
	return func(p *runParams) { p.scale = sc }
}

// WithSeed sets the base simulation seed (default DefaultSeed).
func WithSeed(seed int64) RunOpt {
	return func(p *runParams) { p.seed = seed }
}

// WithEngine runs the experiment's scenarios through e (nil = default
// settings: a fresh engine with GOMAXPROCS workers).
func WithEngine(e *engine.Engine) RunOpt {
	return func(p *runParams) { p.eng = e }
}

// WithVMCounts narrows the multitenant sweep to the given VM counts
// (none = the full sweep); ignored by every other experiment.
func WithVMCounts(counts ...int) RunOpt {
	return func(p *runParams) { p.vmCounts = append(p.vmCounts, counts...) }
}

// WithFaultPlan sets the fault campaign for fault-aware experiments: the
// chaos sweep replaces its built-in escalation ladder with cfg (its
// migration scenarios keep their own schedules). Ignored by experiments
// that do not inject faults. A zero cfg is ignored.
func WithFaultPlan(cfg faults.Config) RunOpt {
	return func(p *runParams) { p.faults = cfg }
}

// WithRetry sets the per-scenario retry policy for fault-aware
// experiments (default for chaos: 3 attempts, faults.IsTransient).
// Ignored by experiments that do not retry.
func WithRetry(policy engine.RetryPolicy) RunOpt {
	return func(p *runParams) { p.retry = policy }
}

// WithCollector attaches c to the run context (obs.WithCollector), so
// every executed scenario emits a RunRecord into it.
func WithCollector(c *obs.Collector) RunOpt {
	return func(p *runParams) { p.collector = c }
}

// experiment binds an ExperimentInfo to its adapted entry point.
type experiment struct {
	info ExperimentInfo
	run  func(ctx context.Context, p runParams) (ExperimentResult, error)
}

// engineRun adapts the common RunXxxCtx shape to the registry signature.
func engineRun[T ExperimentResult](f func(context.Context, *engine.Engine, Scale, int64) (T, error)) func(context.Context, runParams) (ExperimentResult, error) {
	return func(ctx context.Context, p runParams) (ExperimentResult, error) {
		r, err := f(ctx, p.eng, p.scale, p.seed)
		return r, err
	}
}

// experiments lists every experiment in "all" execution order (the paper's
// table/figure order, then the ablations, then the opt-in sweeps). Order
// is part of the CLI's output contract — append, never reorder.
var experiments = []experiment{
	{
		info: ExperimentInfo{Name: "table1", Title: "Table 1 (§3.3)", InAll: true},
		run:  engineRun(RunTable1Ctx),
	},
	{
		info: ExperimentInfo{
			Name:  "objdet-suite",
			Title: "Figures 5 and 6 (§6.1, objdet co-runner)",
			Notes: []string{
				"  paper: fragmentation drops to ~1 for every benchmark (Fig 5);",
				"  improvement 4% geomean, 9% max on xz, never negative (Fig 6)",
			},
			Tags:  []string{"fig5", "fig6"},
			InAll: true,
		},
		run: engineRun(RunObjdetSuiteCtx),
	},
	{
		info: ExperimentInfo{
			Name:  "combination-suite",
			Title: "Figure 7 (§6.1, combination of co-runners)",
			Notes: []string{
				"  paper: 3% geomean, 5% max on mcf — about 1% below the objdet-only scenario",
			},
			Tags:  []string{"fig7"},
			InAll: true,
		},
		run: engineRun(RunCombinationSuiteCtx),
	},
	{
		info: ExperimentInfo{
			Name:  "lowpressure",
			Title: "Section 6.1: low-TLB-pressure applications",
			Tags:  []string{"fig6"},
			InAll: true,
		},
		run: engineRun(RunLowPressureCtx),
	},
	{
		info: ExperimentInfo{Name: "table4", Title: "Table 4 (§6.3)", InAll: true},
		run:  engineRun(RunTable4Ctx),
	},
	{
		info: ExperimentInfo{Name: "sec62", Title: "Section 6.2 (reservation waste)", InAll: true},
		run:  engineRun(RunSec62Ctx),
	},
	{
		info: ExperimentInfo{Name: "sec64", Title: "Section 6.4 (allocation latency)", InAll: true},
		run:  engineRun(RunSec64Ctx),
	},
	{
		info: ExperimentInfo{Name: "granularity", Title: "Ablation: reservation granularity", Tags: []string{"ablation"}, InAll: true},
		run:  engineRun(RunGranularityCtx),
	},
	{
		info: ExperimentInfo{Name: "locking", Title: "Ablation: PaRT locking", Tags: []string{"ablation"}, InAll: true},
		run: func(ctx context.Context, p runParams) (ExperimentResult, error) {
			// The locking ablation is a real-concurrency microbenchmark
			// with its own fixed sizing; scale and seed do not apply.
			return RunLockingAblation(64, 20000), nil
		},
	},
	{
		info: ExperimentInfo{Name: "reclaim", Title: "Ablation: reclaim watermark", Tags: []string{"ablation"}, InAll: true},
		run:  engineRun(RunReclaimSweepCtx),
	},
	{
		info: ExperimentInfo{Name: "fivelevel", Title: "Extension: five-level paging", Tags: []string{"ablation"}, InAll: true},
		run:  engineRun(RunFiveLevelComparisonCtx),
	},
	{
		info: ExperimentInfo{Name: "thp", Title: "Baseline: transparent huge pages vs PTEMagnet", Tags: []string{"ablation"}, InAll: true},
		run:  engineRun(RunTHPComparisonCtx),
	},
	{
		info: ExperimentInfo{Name: "capaging", Title: "Baseline: CA paging vs PTEMagnet", Tags: []string{"ablation"}, InAll: true},
		run:  engineRun(RunCAPagingComparisonCtx),
	},
	{
		info: ExperimentInfo{Name: "threshold", Title: "Ablation: enable threshold", Tags: []string{"ablation"}, InAll: true},
		run: func(ctx context.Context, p runParams) (ExperimentResult, error) {
			r, err := RunThresholdDemo(p.scale, p.seed)
			return r, err
		},
	},
	{
		info: ExperimentInfo{Name: "multitenant", Title: "Multi-tenant host (N VMs, shared host)"},
		run: func(ctx context.Context, p runParams) (ExperimentResult, error) {
			r, err := RunMultiTenantCtx(ctx, p.eng, p.scale, p.seed, p.vmCounts)
			return r, err
		},
	},
	{
		info: ExperimentInfo{Name: "migration", Title: "Live migration (dirty-page log, pre-copy)"},
		run: func(ctx context.Context, p runParams) (ExperimentResult, error) {
			r, err := RunMigrationCtx(ctx, p.eng, p.scale, p.seed)
			return r, err
		},
	},
	{
		info: ExperimentInfo{Name: "chaos", Title: "Chaos: fault injection & recovery (default vs PTEMagnet)"},
		run: func(ctx context.Context, p runParams) (ExperimentResult, error) {
			r, err := RunChaosCtx(ctx, p.eng, p.scale, p.seed, p.faults, p.retry)
			return r, err
		},
	},
	{
		info: ExperimentInfo{Name: "overcommit", Title: "Overcommit: watermark ballooning (default vs PTEMagnet, 1.25×–2×)"},
		run:  engineRun(RunOvercommitCtx),
	},
}

// Experiments lists every registered experiment in "all" execution order.
func Experiments() []ExperimentInfo {
	infos := make([]ExperimentInfo, len(experiments))
	for i, e := range experiments {
		infos[i] = e.info
	}
	return infos
}

// MatchExperiments resolves a selector to the experiments it runs, in
// execution order: "all" selects every InAll experiment; anything else
// selects by canonical name or tag. Unknown selectors are an error.
func MatchExperiments(sel string) ([]ExperimentInfo, error) {
	var infos []ExperimentInfo
	for _, e := range experiments {
		if matchExperiment(e.info, sel) {
			infos = append(infos, e.info)
		}
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("sim: unknown experiment %q", sel)
	}
	return infos, nil
}

func matchExperiment(info ExperimentInfo, sel string) bool {
	if sel == "all" {
		return info.InAll
	}
	if sel == info.Name {
		return true
	}
	for _, tag := range info.Tags {
		if sel == tag {
			return true
		}
	}
	return false
}

// RunExperiment runs one experiment by canonical name, configured by
// functional options (scale, seed, engine, fault plan, retry policy,
// collector); omitted options take the documented defaults. Even on error
// the returned result may be non-nil, carrying the partial output the
// engine completed before failing.
func RunExperiment(ctx context.Context, name string, opts ...RunOpt) (ExperimentResult, error) {
	p := defaultRunParams()
	for _, o := range opts {
		if o != nil {
			o(&p)
		}
	}
	if p.collector != nil {
		ctx = obs.WithCollector(ctx, p.collector)
	}
	for _, e := range experiments {
		if e.info.Name == name {
			return e.run(ctx, p)
		}
	}
	return nil, fmt.Errorf("sim: unknown experiment %q", name)
}

// RunExperimentOpts is the pre-options positional entry point.
//
// Deprecated: use RunExperiment with WithEngine, WithVMCounts, WithScale
// and WithSeed options.
func RunExperimentOpts(ctx context.Context, name string, opts ExperimentOptions, sc Scale, seed int64) (ExperimentResult, error) {
	return RunExperiment(ctx, name, WithEngine(opts.Engine), WithVMCounts(opts.VMCounts...), WithScale(sc), WithSeed(seed))
}
