package sim

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"ptemagnet/internal/engine"
	"ptemagnet/internal/faults"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/vm"
)

// collectChaosRecords runs the chaos sweep through an engine with the
// given worker count and returns the collected RunRecords, timing zeroed.
func collectChaosRecords(t *testing.T, workers int) []obs.RunRecord {
	t.Helper()
	c := &obs.Collector{}
	ctx := obs.WithCollector(context.Background(), c)
	set := ChaosSet(QuickScale(), testSeed, faults.Config{}, engine.RetryPolicy{})
	if _, err := engine.Execute(ctx, engine.New(workers), set); err != nil {
		t.Fatal(err)
	}
	recs := c.Records()
	for i := range recs {
		recs[i].ElapsedMS = 0
	}
	return recs
}

// TestChaosTelemetryDeterministicAcrossWorkerCounts extends the
// determinism contract to the fault-injected sweep: injections are keyed
// to simulated event counts, so the chaos RunRecord JSONL — faults.* and
// retry.* counters included — must be byte-identical for 1 and 4 workers.
func TestChaosTelemetryDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism check")
	}
	serial := collectChaosRecords(t, 1)
	parallel := collectChaosRecords(t, 4)

	var a, b bytes.Buffer
	if err := obs.WriteJSONL(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("chaos RunRecord JSONL differs between 1 and 4 workers:\n--- 1 worker ---\n%s--- 4 workers ---\n%s",
			a.String(), b.String())
	}

	// The chaos records must carry the faults.* and retry.* counter
	// groups, and a recovered scenario's winning record must show the
	// retry history (attempt 1 after one failed attempt).
	var sawFaulted, sawRetried bool
	for _, rec := range serial {
		if _, ok := rec.Counters.Get("faults.injected_total"); !ok {
			t.Fatalf("record %s/%s missing faults.injected_total", rec.Set, rec.Scenario)
		}
		attempt, ok := rec.Counters.Get("retry.attempt")
		if !ok {
			t.Fatalf("record %s/%s missing retry.attempt", rec.Set, rec.Scenario)
		}
		if n, _ := rec.Counters.Get("faults.injected_total"); n > 0 {
			sawFaulted = true
		}
		if attempt > 0 {
			if n, _ := rec.Counters.Get("retry.prior_failures"); n == 0 {
				t.Errorf("record %s/%s: attempt %d with no prior failures", rec.Set, rec.Scenario, attempt)
			}
			sawRetried = true
		}
	}
	if !sawFaulted || !sawRetried {
		t.Errorf("sweep exercised injection=%v retry=%v, want both", sawFaulted, sawRetried)
	}
}

// TestChaosRetryEquivalence pins the recovery contract at machine level:
// a retried attempt (attempt index at FailAttempts, so its plan is
// inactive) produces a machine byte-identical in every counter to one
// that never had a plan installed.
func TestChaosRetryEquivalence(t *testing.T) {
	s := Scenario{
		Benchmark: "pagerank",
		Corunners: []string{"stress-ng"},
		Policy:    guestos.PolicyPTEMagnet,
		Scale:     QuickScale(),
		Seed:      testSeed,
	}
	cfg := faults.Config{Seed: 9, HostOOMs: 1, HostOOMSpan: 64, FailAttempts: 1}

	run := func(plan *faults.Plan) obs.Snapshot {
		t.Helper()
		m, err := BuildMachine(s)
		if err != nil {
			t.Fatal(err)
		}
		m.InstallFaultPlan(plan)
		if err := m.RunWith(context.Background()); err != nil {
			t.Fatal(err)
		}
		return m.Registry().Snapshot()
	}

	clean := run(nil)
	retried := run(faults.NewPlan(cfg, 1))
	if !reflect.DeepEqual(clean, retried) {
		t.Errorf("retried-clean attempt diverges from never-faulted run:\nclean:   %+v\nretried: %+v", clean, retried)
	}
}

// TestChaosJobRetryFlow pins the chaos run closure end to end: attempt 0
// dies on the injected host OOM (classified transient, accumulator
// updated), attempt 1 runs clean and reproduces the never-faulted
// measurements.
func TestChaosJobRetryFlow(t *testing.T) {
	base := Scenario{
		Benchmark: "pagerank",
		Corunners: []string{"stress-ng"},
		Policy:    guestos.PolicyPTEMagnet,
		Scale:     QuickScale(),
		Seed:      testSeed,
	}
	j := chaosJob{name: "t", cfg: faults.Config{Seed: 9, HostOOMs: 1, HostOOMSpan: 64, FailAttempts: 1}, base: base}
	st := &chaosState{}

	_, err := runChaosJob(context.Background(), j, st)
	if err == nil {
		t.Fatal("attempt 0 survived an injected host OOM")
	}
	if !faults.IsTransient(err) {
		t.Fatalf("injected failure not classified transient: %v", err)
	}
	if st.failures != 1 || st.injected == 0 {
		t.Fatalf("accumulator = %+v after failed attempt", st)
	}

	got, err := runChaosJob(engine.WithAttempt(context.Background(), 1), j, st)
	if err != nil {
		t.Fatal(err)
	}
	jc := j
	jc.cfg = faults.Config{}
	want, err := runChaosJob(context.Background(), jc, &chaosState{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Frag != want.Frag || got.SteadyCycles != want.SteadyCycles {
		t.Errorf("retried run (frag %.3f, steady %d) != never-faulted run (frag %.3f, steady %d)",
			got.Frag, got.SteadyCycles, want.Frag, want.SteadyCycles)
	}
}

// TestChaosExhaustionYieldsPartialResults pins graceful degradation: with
// a fault campaign outlasting the retry budget, the sweep reports an
// error, but the result still carries every completed row plus failed
// rows with their full retry history.
func TestChaosExhaustionYieldsPartialResults(t *testing.T) {
	cfg := faults.Config{Seed: 4, HostOOMs: 1, HostOOMSpan: 64, FailAttempts: 10}
	r, err := RunExperiment(context.Background(), "chaos",
		WithScale(QuickScale()), WithSeed(testSeed),
		WithFaultPlan(cfg),
		WithRetry(engine.RetryPolicy{MaxAttempts: 2}))
	if err == nil {
		t.Fatal("exhausted sweep reported no error")
	}
	res, ok := r.(ChaosResult)
	if !ok {
		t.Fatalf("result type %T", r)
	}
	byName := map[string]ChaosRunResult{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	for _, name := range []string{"default/custom", "ptemagnet/custom"} {
		row, ok := byName[name]
		if !ok {
			t.Fatalf("row %q missing from partial results", name)
		}
		if !row.Failed || row.Attempts != 2 || row.Injected != 2 {
			t.Errorf("%s = %+v, want Failed with 2 attempts and 2 injections", name, row)
		}
	}
	for _, name := range []string{"default/clean", "ptemagnet/clean"} {
		row, ok := byName[name]
		if !ok || row.Failed || row.Injected != 0 {
			t.Errorf("%s = %+v (ok=%v), want a clean success", name, row, ok)
		}
	}
	if !strings.Contains(res.String(), "FAILED") {
		t.Error("rendered table does not mark the failed rows")
	}
}

// TestChaosForcedDirtyLogOverflowHitsRescan pins that the SiteDirtyLog
// injection reaches the migration's overflow-rescan path: a migration
// with forced overflows reports LogOverflows where the same migration
// without a plan reports none.
func TestChaosForcedDirtyLogOverflowHitsRescan(t *testing.T) {
	// An oversized dirty log keeps organic overflows out of the picture,
	// so every observed overflow is a forced one.
	mig := MigrationScenario{Policy: guestos.PolicyPTEMagnet, Scale: QuickScale(), Seed: testSeed, DirtyLogEntries: 1 << 20}
	j := chaosJob{
		name:      "dirtylog",
		cfg:       faults.Config{Seed: 2, DirtyLogOverflowEvery: 64, FailAttempts: 1},
		migration: true,
		mig:       mig,
	}
	forced, err := runChaosJob(context.Background(), j, &chaosState{})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Injected == 0 {
		t.Fatal("no dirty-log overflows were forced")
	}
	if forced.LogOverflows == 0 {
		t.Error("forced overflows did not reach the migration rescan path")
	}

	jc := j
	jc.cfg = faults.Config{}
	clean, err := runChaosJob(context.Background(), jc, &chaosState{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.LogOverflows >= forced.LogOverflows {
		t.Errorf("forced run overflowed %d times, clean run %d — forcing had no effect",
			forced.LogOverflows, clean.LogOverflows)
	}
}

// TestVMRunOptsMatchDeprecatedStruct pins satellite parity between the
// options vocabulary and the deprecated RunOptions struct: the same run
// expressed both ways lands on identical counters.
func TestVMRunOptsMatchDeprecatedStruct(t *testing.T) {
	s := Scenario{Benchmark: "gcc", Scale: QuickScale(), Seed: testSeed}
	m1, err := BuildMachine(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.RunWith(context.Background(), vm.WithSampleEvery(2048), vm.WithStopAtAccesses(50_000)); err != nil {
		t.Fatal(err)
	}
	m2, err := BuildMachine(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.RunContext(context.Background(), vm.RunOptions{SampleEvery: 2048, StopAtAccesses: 50_000}); err != nil {
		t.Fatal(err)
	}
	if a, b := m1.Registry().Snapshot(), m2.Registry().Snapshot(); !reflect.DeepEqual(a, b) {
		t.Errorf("options run diverges from struct run:\noptions: %+v\nstruct:  %+v", a, b)
	}
}
