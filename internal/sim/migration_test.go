package sim

import (
	"bytes"
	"context"
	"testing"

	"ptemagnet/internal/engine"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/obs"
)

// migrationTestScale keeps the three-scenario sweep fast: each scenario
// runs a source to its pause point, migrates, and finishes on a busy
// destination host.
func migrationTestScale() Scale {
	return Scale{
		HostMemBytes:      64 << 20,
		GuestMemBytes:     32 << 20,
		DatasetBytes:      4 << 20,
		Accesses:          30_000,
		CorunnerFootprint: 2 << 20,
		LLCBytes:          128 << 10,
		L2Bytes:           64 << 10,
	}
}

// TestMigrationSweep runs the full sweep once and pins its shape and the
// paper-level claims: fragmentation travels with the guest image (the
// default guest stays fragmented after migration, the PTEMagnet guest
// stays packed), and the undersized dirty log forces rescans without
// changing the outcome.
func TestMigrationSweep(t *testing.T) {
	res, err := RunMigrationCtx(context.Background(), nil, migrationTestScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != len(migrationJobNames) {
		t.Fatalf("sweep produced %d entries, want %d", len(res.Entries), len(migrationJobNames))
	}
	byName := map[string]MigrationRunResult{}
	for i, e := range res.Entries {
		if e.Name != migrationJobNames[i] {
			t.Errorf("entry %d is %q, want %q", i, e.Name, migrationJobNames[i])
		}
		if e.Migration.PagesInitial == 0 || e.Migration.PagesCopied < e.Migration.PagesInitial {
			t.Errorf("%s: implausible migration report %+v", e.Name, e.Migration)
		}
		if e.PostAccesses == 0 {
			t.Errorf("%s: guest executed nothing on the destination", e.Name)
		}
		byName[e.Name] = e
	}
	def, mag, pml := byName["default"], byName["ptemagnet"], byName["ptemagnet/pml32"]
	if def.Scenario.Policy != guestos.PolicyDefault || mag.Scenario.Policy != guestos.PolicyPTEMagnet {
		t.Fatal("sweep scenarios mislabelled")
	}
	// §3.2: fragmentation is a property of the gva→gpa mapping, so it
	// survives the move in both directions.
	if def.FragAfter.Mean < 2 {
		t.Errorf("default guest defragmented by migration: frag %.2f → %.2f",
			def.FragBefore.Mean, def.FragAfter.Mean)
	}
	if mag.FragAfter.Mean > 1.2 {
		t.Errorf("PTEMagnet packing lost in migration: frag %.2f → %.2f",
			mag.FragBefore.Mean, mag.FragAfter.Mean)
	}
	if def.FragAfter.Mean <= mag.FragAfter.Mean {
		t.Errorf("post-migration frag default %.2f <= ptemagnet %.2f",
			def.FragAfter.Mean, mag.FragAfter.Mean)
	}
	// The 32-entry log must overflow on a multi-MB dataset, and the
	// fallback rescans must not change what gets copied in the end.
	if pml.Migration.LogOverflows == 0 {
		t.Error("32-entry dirty log never overflowed")
	}
	if mag.Migration.LogOverflows != 0 {
		t.Errorf("full-size dirty log overflowed %d times", mag.Migration.LogOverflows)
	}
	if pml.FragAfter != mag.FragAfter {
		t.Errorf("dirty-log sizing changed the final image: frag %+v vs %+v",
			pml.FragAfter, mag.FragAfter)
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

// TestMigrationRecordsDeterministic extends the telemetry determinism
// contract to the migration sweep: identical JSONL for 1 and 4 workers
// once elapsed_ms is zeroed, with the migrate.* counter group present.
func TestMigrationRecordsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism check")
	}
	collect := func(workers int) []obs.RunRecord {
		c := &obs.Collector{}
		ctx := obs.WithCollector(context.Background(), c)
		if _, err := engine.Execute(ctx, engine.New(workers), MigrationSet(migrationTestScale(), testSeed)); err != nil {
			t.Fatal(err)
		}
		recs := c.Records()
		for i := range recs {
			recs[i].ElapsedMS = 0
		}
		return recs
	}
	serial := collect(1)
	parallel := collect(4)
	if len(serial) != len(migrationJobNames) {
		t.Fatalf("collected %d records, want %d", len(serial), len(migrationJobNames))
	}
	for _, rec := range serial {
		if v, ok := rec.Counters.Get("migrate.pages_copied"); !ok || v == 0 {
			t.Errorf("%s: migrate.pages_copied = %d, %v", rec.Scenario, v, ok)
		}
	}
	var a, b bytes.Buffer
	if err := obs.WriteJSONL(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("migration RunRecord JSONL differs between 1 and 4 workers:\n--- 1 worker ---\n%s--- 4 workers ---\n%s",
			a.String(), b.String())
	}
}
