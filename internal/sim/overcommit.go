// The overcommit sweep: a host whose tenants' combined guest memory
// exceeds host-physical memory (1.25×–2×), kept alive by the balloon
// controller. Even slots run a measured pagerank primary (default vs
// PTEMagnet per job); odd slots are objdet pressure guests whose
// inference arenas churn allocate-and-free — easy balloon fodder. The
// sweep demonstrates the robustness contract: every configuration must
// complete with zero surfaced OOMError, with the controller breaking
// PTEMagnet reservations and swapping cold pages to fit. Exhausted jobs
// degrade to failed rows alongside the completed ones, chaos-style.
package sim

import (
	"context"
	"fmt"
	"strings"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/balloon"
	"ptemagnet/internal/cache"
	"ptemagnet/internal/engine"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/vm"
)

// OvercommitScenario is one overcommitted-host configuration: how hard
// the host is oversubscribed and which allocator the primaries run.
type OvercommitScenario struct {
	// Policy is the primary guests' allocator; pressure guests always run
	// the default allocator.
	Policy guestos.AllocPolicy
	// RatioPct is the overcommit ratio in percent: combined guest memory
	// as a fraction of host memory (150 = guests declare 1.5× the host).
	RatioPct int
	// NumVMs is the tenant count (even slots primaries, odd pressure).
	NumVMs int
	// Scale sizes the workloads; guest and host memory are derived from
	// it per role (see overcommitTenants), not taken verbatim.
	Scale Scale
	Seed  int64
	// SampleEvery forwards to the §6.2 gauge (0 = a sensible default).
	SampleEvery uint64
}

// Fingerprint hashes the full configuration (telemetry identity).
func (s OvercommitScenario) Fingerprint() string {
	return obs.Fingerprint(fmt.Sprintf("%+v", s))
}

// Identity returns a human-readable label.
func (s OvercommitScenario) Identity() string {
	return fmt.Sprintf("oc%d/%s", s.RatioPct, policyLabel(s.Policy))
}

func policyLabel(p guestos.AllocPolicy) string {
	if p == guestos.PolicyPTEMagnet {
		return "ptemagnet"
	}
	return "default"
}

// overcommitTenant pairs a tenant spec with its role-derived guest size:
// primaries get 1.5× their dataset, pressure guests 1.5× their co-runner
// footprint, so the declared total tracks what the workloads actually
// touch rather than one uniform oversized figure.
type overcommitTenant struct {
	spec     TenantSpec
	memBytes uint64
}

// pageAlign rounds n up to a whole number of pages.
func pageAlign(n uint64) uint64 {
	return (n + arch.PageSize - 1) / arch.PageSize * arch.PageSize
}

// overcommitTenants builds the tenant list and per-role sizing.
func overcommitTenants(s OvercommitScenario) []overcommitTenant {
	tenants := make([]overcommitTenant, 0, s.NumVMs)
	for i := 0; i < s.NumVMs; i++ {
		if i%2 == 0 {
			tenants = append(tenants, overcommitTenant{
				spec:     TenantSpec{Policy: s.Policy, Primary: "pagerank"},
				memBytes: pageAlign(s.Scale.DatasetBytes * 3 / 2),
			})
		} else {
			tenants = append(tenants, overcommitTenant{
				spec:     TenantSpec{Policy: guestos.PolicyDefault, Corunners: []string{"objdet"}},
				memBytes: pageAlign(s.Scale.CorunnerFootprint * 3 / 2),
			})
		}
	}
	return tenants
}

// overcommitHostBytes derives the host size that puts the combined guest
// memory at RatioPct percent of it.
func overcommitHostBytes(tenants []overcommitTenant, ratioPct int) uint64 {
	var combined uint64
	for _, t := range tenants {
		combined += t.memBytes
	}
	return pageAlign(combined * 100 / uint64(ratioPct))
}

// BuildOvercommitMachine assembles the oversubscribed host — balloon
// controller armed — and every tenant's guest stack without running.
func BuildOvercommitMachine(s OvercommitScenario) (*vm.Machine, error) {
	if s.NumVMs < 2 {
		return nil, fmt.Errorf("sim: overcommit scenario needs at least two tenants")
	}
	if s.RatioPct < 100 {
		return nil, fmt.Errorf("sim: overcommit ratio %d%% is not overcommitted", s.RatioPct)
	}
	tenants := overcommitTenants(s)
	hc := vm.HostConfig{
		HostMemBytes: overcommitHostBytes(tenants, s.RatioPct),
		// Quantum 2 matches BuildMachine: aggressive fault interleaving.
		Quantum: 2,
		Balloon: balloon.Config{Enabled: true},
	}
	if s.Scale.LLCBytes != 0 || s.Scale.L2Bytes != 0 {
		cc := cache.DefaultConfig(8)
		if s.Scale.LLCBytes != 0 {
			cc.LLC.SizeBytes = s.Scale.LLCBytes
		}
		if s.Scale.L2Bytes != 0 {
			cc.L2.SizeBytes = s.Scale.L2Bytes
		}
		hc.Cache = cc
	}
	for i, t := range tenants {
		hc.Guests = append(hc.Guests, vm.GuestConfig{
			MemBytes: t.memBytes,
			Policy:   t.spec.Policy,
			Seed:     s.Seed + int64(i)*10,
		})
	}
	m, err := vm.NewHost(hc)
	if err != nil {
		return nil, err
	}
	for i, t := range tenants {
		if err := populateGuest(m.Guests()[i], t.spec, s.Scale, s.Seed+int64(i)*10); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// OvercommitRunResult is one overcommit job's outcome. A Failed row
// means the run surfaced an error (an OOMError ballooning could not
// absorb, typically) — the acceptance bar is that no row fails.
type OvercommitRunResult struct {
	Name     string
	RatioPct int
	Policy   string
	Failed   bool
	// HostMemBytes and CombinedGuestBytes document the oversubscription.
	HostMemBytes       uint64
	CombinedGuestBytes uint64
	// PrimarySteadyCycles sums SteadyCycles over the primaries;
	// PrimaryFragMean averages their host-PT fragmentation; HostFragMean
	// is the host-wide §3.2 rollup.
	PrimarySteadyCycles uint64
	PrimaryFragMean     float64
	HostFragMean        float64
	// Balloon is the controller's activity for the run.
	Balloon balloon.Stats
}

// OvercommitResult is the reduced sweep, in declared job order.
type OvercommitResult struct {
	NumVMs int
	Rows   []OvercommitRunResult
}

// RunOvercommitScenarioCtx executes one overcommit job, emitting one
// RunRecord (balloon.* counters included) when the context carries a
// collector — the same telemetry contract as RunMultiCtx.
func RunOvercommitScenarioCtx(ctx context.Context, s OvercommitScenario) (OvercommitRunResult, error) {
	stop := engine.StartTimer()
	m, err := BuildOvercommitMachine(s)
	if err != nil {
		return OvercommitRunResult{}, err
	}
	sampleEvery := s.SampleEvery
	if sampleEvery == 0 {
		sampleEvery = s.Scale.Accesses / 64
		if sampleEvery == 0 {
			sampleEvery = 1024
		}
	}
	if err := m.RunWith(ctx, vm.WithSampleEvery(sampleEvery)); err != nil {
		return OvercommitRunResult{}, err
	}
	report := m.Observe()
	res := OvercommitRunResult{
		Name:         s.Identity(),
		RatioPct:     s.RatioPct,
		Policy:       policyLabel(s.Policy),
		HostMemBytes: overcommitHostBytes(overcommitTenants(s), s.RatioPct),
		HostFragMean: report.HostFrag.Mean,
		Balloon:      m.Balloon().Snapshot(),
	}
	for _, t := range overcommitTenants(s) {
		res.CombinedGuestBytes += t.memBytes
	}
	for _, tr := range report.Tasks {
		res.PrimarySteadyCycles += tr.SteadyCycles
		res.PrimaryFragMean += tr.Frag.Mean
	}
	if len(report.Tasks) > 0 {
		res.PrimaryFragMean /= float64(len(report.Tasks))
	}
	if c := obs.CollectorFrom(ctx); c != nil {
		rec := obs.RunRecord{
			Set:         "adhoc",
			Scenario:    s.Identity(),
			Fingerprint: s.Fingerprint(),
			ElapsedMS:   stop().Milliseconds(),
			Counters:    m.Registry().Snapshot(),
		}
		if info, ok := engine.ScenarioInfoFrom(ctx); ok {
			rec.Set, rec.Scenario = info.Set, info.Scenario
		}
		c.Add(rec)
	}
	return res, nil
}

// OvercommitRatios are the oversubscription levels the set sweeps.
var OvercommitRatios = []int{125, 150, 200}

// overcommitNumVMs is the fixed packing: two pagerank primaries and two
// objdet pressure guests.
const overcommitNumVMs = 4

// OvercommitSet declares the sweep: {default, ptemagnet} × the ratio
// ladder. The reduce step degrades gracefully like the chaos sweep:
// failed jobs become failed rows, completed rows stand, and the errors
// ride alongside via Results.FailedErr.
func OvercommitSet(sc Scale, seed int64) engine.Set[OvercommitRunResult, OvercommitResult] {
	type ocJob struct {
		name string
		s    OvercommitScenario
	}
	var jobs []ocJob
	for _, ratio := range OvercommitRatios {
		for _, policy := range []guestos.AllocPolicy{guestos.PolicyDefault, guestos.PolicyPTEMagnet} {
			s := OvercommitScenario{
				Policy:   policy,
				RatioPct: ratio,
				NumVMs:   overcommitNumVMs,
				Scale:    sc,
				Seed:     engine.DeriveSeed(seed, "overcommit/"+fmt.Sprintf("oc%d/%s", ratio, policyLabel(policy))),
			}
			jobs = append(jobs, ocJob{name: s.Identity(), s: s})
		}
	}
	var scenarios []engine.Scenario[OvercommitRunResult]
	for _, j := range jobs {
		j := j
		scenarios = append(scenarios, engine.Scenario[OvercommitRunResult]{
			Name: j.name,
			Run: func(ctx context.Context) (OvercommitRunResult, error) {
				return RunOvercommitScenarioCtx(ctx, j.s)
			},
		})
	}
	return engine.Set[OvercommitRunResult, OvercommitResult]{
		Name:      "overcommit",
		Scenarios: scenarios,
		Reduce: func(res engine.Results[OvercommitRunResult]) (OvercommitResult, error) {
			out := OvercommitResult{NumVMs: overcommitNumVMs}
			for _, j := range jobs {
				if row, ok := res.Get(j.name); ok {
					out.Rows = append(out.Rows, row)
					continue
				}
				out.Rows = append(out.Rows, OvercommitRunResult{
					Name:     j.name,
					RatioPct: j.s.RatioPct,
					Policy:   policyLabel(j.s.Policy),
					Failed:   true,
				})
			}
			return out, res.FailedErr()
		},
	}
}

// RunOvercommitCtx runs the overcommit sweep through the given engine.
// Even on error the result carries every completed row.
func RunOvercommitCtx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (OvercommitResult, error) {
	return engine.Execute(ctx, e, OvercommitSet(sc, seed))
}

// row pairs for the def→mag comparison in String.
func (r OvercommitResult) rowFor(ratio int, policy string) (OvercommitRunResult, bool) {
	for _, row := range r.Rows {
		if row.RatioPct == ratio && row.Policy == policy {
			return row, true
		}
	}
	return OvercommitRunResult{}, false
}

// String renders the sweep as one table: per ratio, the default and
// PTEMagnet rows side by side, with the balloon activity that kept each
// run alive.
func (r OvercommitResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overcommit: %d VMs (pagerank primaries + objdet pressure guests), balloon controller armed\n", r.NumVMs)
	fmt.Fprintf(&b, "  %-6s  %-9s  %-9s  %-20s  %-20s  %-11s  %s\n",
		"ratio", "guest-mem", "host-mem", "host frag (def→mag)", "primary frag (d→m)", "improvement", "balloon unback/swap (def | mag)")
	for _, ratio := range OvercommitRatios {
		def, okD := r.rowFor(ratio, "default")
		mag, okM := r.rowFor(ratio, "ptemagnet")
		if !okD && !okM {
			continue
		}
		outcome := func(row OvercommitRunResult, ok bool) string {
			if !ok || row.Failed {
				return "FAILED"
			}
			return fmt.Sprintf("%d/%d", row.Balloon.UnbackedFrames, row.Balloon.SwappedPages)
		}
		frag := func(row OvercommitRunResult) string {
			if row.Failed {
				return "-"
			}
			return fmt.Sprintf("%.2f", row.HostFragMean)
		}
		pfrag := func(row OvercommitRunResult) string {
			if row.Failed {
				return "-"
			}
			return fmt.Sprintf("%.2f", row.PrimaryFragMean)
		}
		improvement := "-"
		if !def.Failed && !mag.Failed && okD && okM {
			improvement = fmt.Sprintf("%+6.1f%%", metrics.Speedup(def.PrimarySteadyCycles, mag.PrimarySteadyCycles))
		}
		// Sizing is policy-independent; failed rows carry zeros, so take
		// it from whichever row completed.
		combined, hostMem := def.CombinedGuestBytes, def.HostMemBytes
		if combined == 0 {
			combined, hostMem = mag.CombinedGuestBytes, mag.HostMemBytes
		}
		fmt.Fprintf(&b, "  %-6s  %-9s  %-9s  %8s → %-9s  %8s → %-9s  %-11s  %s | %s\n",
			fmt.Sprintf("%d%%", ratio), fmtMB(combined), fmtMB(hostMem),
			frag(def), frag(mag), pfrag(def), pfrag(mag), improvement,
			outcome(def, okD), outcome(mag, okM))
	}
	failed := 0
	for _, row := range r.Rows {
		if row.Failed {
			failed++
		}
	}
	if failed == 0 {
		fmt.Fprintf(&b, "  every configuration completed without a surfaced OOM\n")
	} else {
		fmt.Fprintf(&b, "  %d configuration(s) FAILED despite ballooning\n", failed)
	}
	return b.String()
}

// fmtMB renders a byte count as whole-or-tenth megabytes.
func fmtMB(n uint64) string {
	mb := float64(n) / (1 << 20)
	if mb == float64(uint64(mb)) {
		return fmt.Sprintf("%dMB", uint64(mb))
	}
	return fmt.Sprintf("%.1fMB", mb)
}
