package sim

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"ptemagnet/internal/engine"
	"ptemagnet/internal/obs"
)

// collectSuiteRecords runs a reduced suite through an engine with the given
// worker count and returns the collected RunRecords with timing zeroed.
func collectSuiteRecords(t *testing.T, workers int) []obs.RunRecord {
	t.Helper()
	c := &obs.Collector{}
	ctx := obs.WithCollector(context.Background(), c)
	set := SuiteSet([]string{"gcc", "xz"}, []string{"objdet"}, QuickScale(), testSeed, 2)
	if _, err := engine.Execute(ctx, engine.New(workers), set); err != nil {
		t.Fatal(err)
	}
	recs := c.Records()
	for i := range recs {
		recs[i].ElapsedMS = 0
	}
	return recs
}

// TestRunRecordsDeterministicAcrossWorkerCounts is the telemetry arm of
// the determinism contract: the JSONL emitted for a set must be
// byte-identical whether its scenarios run serially or through a 4-worker
// pool, once elapsed_ms (the one sanctioned nondeterministic field) is
// excluded.
func TestRunRecordsDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism check")
	}
	serial := collectSuiteRecords(t, 1)
	parallel := collectSuiteRecords(t, 4)

	var a, b bytes.Buffer
	if err := obs.WriteJSONL(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("RunRecord JSONL differs between 1 and 4 workers:\n--- 1 worker ---\n%s--- 4 workers ---\n%s",
			a.String(), b.String())
	}
	a.Reset()
	b.Reset()
	if err := obs.WriteCSV(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteCSV(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("RunRecord CSV differs between 1 and 4 workers")
	}
}

// TestRunCtxEmitsRunRecord pins the single-scenario telemetry path: a
// RunCtx call with a collector attached emits exactly one record carrying
// the scenario identity, its fingerprint, and a non-empty counter set.
func TestRunCtxEmitsRunRecord(t *testing.T) {
	s := Scenario{Benchmark: "gcc", Scale: QuickScale(), Seed: testSeed}
	c := &obs.Collector{}
	ctx := obs.WithCollector(context.Background(), c)
	if _, err := RunCtx(ctx, s); err != nil {
		t.Fatal(err)
	}
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("collected %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Set != "adhoc" || rec.Scenario != s.Identity() {
		t.Errorf("record identity = %s/%s, want adhoc/%s", rec.Set, rec.Scenario, s.Identity())
	}
	if rec.Fingerprint != s.Fingerprint() || len(rec.Fingerprint) != 16 {
		t.Errorf("record fingerprint = %q, want %q", rec.Fingerprint, s.Fingerprint())
	}
	if rec.Counters.Len() == 0 {
		t.Error("record carries no counters")
	}
	if v, ok := rec.Counters.Get("machine.accesses"); !ok || v == 0 {
		t.Errorf("machine.accesses = %d, %v", v, ok)
	}
}

// TestRunCtxUsesEngineScenarioInfo pins that a scenario running inside an
// engine set is recorded under the set's identity, not the adhoc fallback.
func TestRunCtxUsesEngineScenarioInfo(t *testing.T) {
	s := Scenario{Benchmark: "gcc", Scale: QuickScale(), Seed: testSeed}
	c := &obs.Collector{}
	ctx := obs.WithCollector(context.Background(), c)
	ctx = engine.WithScenarioInfo(ctx, engine.ScenarioInfo{Set: "myset", Scenario: "case-a"})
	if _, err := RunCtx(ctx, s); err != nil {
		t.Fatal(err)
	}
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("collected %d records, want 1", len(recs))
	}
	if recs[0].Set != "myset" || recs[0].Scenario != "case-a" {
		t.Errorf("record identity = %s/%s, want myset/case-a", recs[0].Set, recs[0].Scenario)
	}
}

// TestScenarioIdentityAndFingerprint pins the identity scheme RunRecords
// key on: bench[+corunners]/policy, and a fingerprint that moves with any
// configuration change but not with repetition.
func TestScenarioIdentityAndFingerprint(t *testing.T) {
	a := Scenario{Benchmark: "gcc", Corunners: []string{"objdet", "pyaes"}, Scale: QuickScale(), Seed: testSeed}
	if id := a.Identity(); !strings.HasPrefix(id, "gcc+objdet,pyaes/") {
		t.Errorf("Identity() = %q", id)
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint not stable")
	}
	b := a
	b.Seed++
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("fingerprint ignores the seed")
	}
}
