// Package sim is the experiment harness: it names the paper's benchmarks
// and co-runners, assembles scenarios (benchmark × co-runner set × allocator
// policy) on the simulated platform, and provides one function per table or
// figure of the paper's evaluation (§3.3, §6.1–§6.4) plus the ablations
// DESIGN.md calls out.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"ptemagnet/internal/cache"
	"ptemagnet/internal/core"
	"ptemagnet/internal/engine"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/nested"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/vm"
	"ptemagnet/internal/workload"
)

// Scale sets the experiment sizing. The paper runs 16GB datasets in a 64GB
// VM; the default scale reproduces the same ratios at 1/256.
type Scale struct {
	HostMemBytes      uint64
	GuestMemBytes     uint64
	DatasetBytes      uint64 // primary benchmark footprint
	Accesses          uint64 // primary steady-state access budget
	CorunnerFootprint uint64 // footprint of the big co-runners
	// LLCBytes and L2Bytes optionally shrink the caches so that a reduced
	// DatasetBytes keeps the paper's footprint-to-cache ratio (the effect
	// under study is hPTE footprint versus cache capacity: the paper's
	// 16GB dataset is 640x its 25MB LLC). Zero keeps the default level.
	LLCBytes uint64
	L2Bytes  uint64
}

// DefaultScale is used by cmd/experiments and the benchmark harness.
func DefaultScale() Scale {
	return Scale{
		HostMemBytes:      512 << 20,
		GuestMemBytes:     256 << 20,
		DatasetBytes:      48 << 20,
		Accesses:          1_500_000,
		CorunnerFootprint: 24 << 20,
		LLCBytes:          256 << 10,
	}
}

// QuickScale is a fast variant for tests: the dataset shrinks 4x relative
// to DefaultScale and the LLC shrinks with it, preserving the
// hPTE-footprint-to-LLC ratio the paper's effect depends on.
func QuickScale() Scale {
	return Scale{
		HostMemBytes:      128 << 20,
		GuestMemBytes:     64 << 20,
		DatasetBytes:      12 << 20,
		Accesses:          80_000,
		CorunnerFootprint: 6 << 20,
		LLCBytes:          128 << 10,
		L2Bytes:           64 << 10,
	}
}

// Benchmarks lists the paper's evaluated benchmarks in Figure 6/7 order.
var Benchmarks = []string{"cc", "bfs", "nibble", "pagerank", "gcc", "mcf", "omnetpp", "xz"}

// Corunners lists the paper's Table 3 co-runner set (the Figure 7
// combination).
var Corunners = []string{"objdet", "chameleon", "pyaes", "json_serdes", "rnn_serving", "gcc-co", "xz-co"}

// NewBenchmark constructs a primary benchmark by name.
func NewBenchmark(name string, sc Scale, seed int64) (workload.Program, error) {
	g := workload.GraphConfig{DatasetBytes: sc.DatasetBytes, Accesses: sc.Accesses, Seed: seed}
	s := func(frac float64, accFrac float64) workload.SpecConfig {
		return workload.SpecConfig{
			FootprintBytes: uint64(float64(sc.DatasetBytes) * frac),
			Accesses:       uint64(float64(sc.Accesses) * accFrac),
			Seed:           seed,
		}
	}
	switch name {
	case "pagerank":
		return workload.NewPagerank(g), nil
	case "cc":
		return workload.NewCC(g), nil
	case "bfs":
		return workload.NewBFS(g), nil
	case "nibble":
		return workload.NewNibble(g), nil
	case "mcf":
		return workload.NewMCF(s(0.85, 1)), nil
	case "gcc":
		return workload.NewGCC(s(0.25, 0.8)), nil
	case "omnetpp":
		return workload.NewOmnetpp(s(0.5, 0.9)), nil
	case "xz":
		return workload.NewXZ(s(0.75, 1)), nil
	case "allocmicro":
		// §6.4: the array fills most of guest memory (60GB of 64GB in the
		// paper); leave headroom for co-resident structures and PT nodes.
		return workload.NewAllocMicro(sc.GuestMemBytes * 3 / 5), nil
	case "sparse":
		// §6.2 adversary: a large sparse span, one page per 32KB group.
		return workload.NewSparse(sc.DatasetBytes), nil
	default:
		return nil, fmt.Errorf("sim: unknown benchmark %q", name)
	}
}

// NewCorunner constructs a co-runner by name. "gcc-co" and "xz-co" are the
// SPEC benchmarks run as effectively unbounded co-runners, as in Table 3.
func NewCorunner(name string, sc Scale, seed int64) (workload.Program, error) {
	c := workload.CorunnerConfig{Seed: seed}
	forever := uint64(math.MaxUint64 / 2)
	switch name {
	case "objdet":
		c.FootprintBytes = sc.CorunnerFootprint
		return workload.NewObjdet(c), nil
	case "stress-ng":
		c.FootprintBytes = sc.CorunnerFootprint
		return workload.NewStressNG(c), nil
	case "chameleon":
		return workload.NewChameleon(c), nil
	case "pyaes":
		return workload.NewPyaes(c), nil
	case "json_serdes":
		return workload.NewJSONSerdes(c), nil
	case "rnn_serving":
		return workload.NewRNNServing(c), nil
	case "gcc-co":
		return workload.NewGCC(workload.SpecConfig{FootprintBytes: sc.CorunnerFootprint / 2, Accesses: forever, Seed: seed}), nil
	case "xz-co":
		return workload.NewXZ(workload.SpecConfig{FootprintBytes: sc.CorunnerFootprint / 2, Accesses: forever, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("sim: unknown co-runner %q", name)
	}
}

// Scenario is one measured configuration.
type Scenario struct {
	// Benchmark is the primary workload name; Corunners the colocated set.
	Benchmark string
	Corunners []string
	// Policy selects the guest allocator.
	Policy guestos.AllocPolicy
	// Magnet optionally overrides the PaRT configuration (ablations).
	Magnet core.Config
	// EnableThresholdBytes and ReclaimWatermark forward to the kernel.
	EnableThresholdBytes uint64
	ReclaimWatermark     float64
	// StopCorunnersAtInit applies the §3.3 Table 1 methodology.
	StopCorunnersAtInit bool
	// Scale sizes everything; Seed drives all randomness.
	Scale Scale
	Seed  int64
	// SampleEvery enables the §6.2 gauge (0 = a sensible default).
	SampleEvery uint64
	// PTLevels selects the page-table depth (0/4 = four-level, 5 = LA57).
	PTLevels int
}

// Fingerprint hashes the full scenario configuration into the telemetry
// identity carried by every RunRecord. Two scenarios fingerprint equal iff
// their configurations (including seed and scale) are identical.
func (s Scenario) Fingerprint() string {
	return obs.Fingerprint(fmt.Sprintf("%+v", s))
}

// Identity returns a human-readable scenario label, used as the telemetry
// scenario name when RunCtx executes outside an engine set (no
// engine.ScenarioInfo on the context).
func (s Scenario) Identity() string {
	name := s.Benchmark
	if len(s.Corunners) > 0 {
		name += "+" + strings.Join(s.Corunners, ",")
	}
	return name + "/" + s.Policy.String()
}

// Result bundles everything measured in one run.
type Result struct {
	Scenario Scenario
	// Report is the machine's aggregated observation: whole-run and
	// steady-window counters for every component plus per-primary task
	// reports (DESIGN.md §8).
	Report vm.Report
	// Task is the primary benchmark's report.
	Task vm.TaskReport
	// Walk holds the steady-window walker counters.
	Walk nested.Stats
	// Guest is the guest kernel's activity.
	Guest guestos.Stats
	// UnusedMax/UnusedMean summarize the §6.2 gauge (pages).
	UnusedMax  int64
	UnusedMean float64
	// FootprintPages is the primary's resident set at the end.
	FootprintPages uint64
	// MagnetStats is the primary's PaRT activity (zero when disabled).
	MagnetStats core.Stats
	// LargeMappings is the primary's live 2MB mappings at the end (THP
	// policy only).
	LargeMappings uint64
}

// BuildMachine assembles the machine and tasks for a scenario without
// running it — for callers that need to attach a tracer or inspect state
// before Run.
func BuildMachine(s Scenario) (*vm.Machine, error) {
	return buildMachine(s, nil)
}

// buildMachine is BuildMachine with a final configuration hook: mod, when
// non-nil, edits the assembled vm.Config before the machine is built.
// Internal callers use it for knobs deliberately kept out of Scenario
// (whose %+v rendering is a frozen telemetry fingerprint).
func buildMachine(s Scenario, mod func(*vm.Config)) (*vm.Machine, error) {
	cfg := vm.DefaultConfig()
	cfg.HostMemBytes = s.Scale.HostMemBytes
	cfg.GuestMemBytes = s.Scale.GuestMemBytes
	cfg.Policy = s.Policy
	cfg.Magnet = s.Magnet
	cfg.EnableThresholdBytes = s.EnableThresholdBytes
	cfg.ReclaimWatermark = s.ReclaimWatermark
	cfg.Seed = s.Seed
	cfg.PTLevels = s.PTLevels
	// Quantum 2: aggressive fault interleaving, approximating truly
	// concurrent threads on separate cores (calibrated against Table 1).
	cfg.Quantum = 2
	if s.Scale.LLCBytes != 0 || s.Scale.L2Bytes != 0 {
		cc := cache.DefaultConfig(cfg.NumCPUs)
		if s.Scale.LLCBytes != 0 {
			cc.LLC.SizeBytes = s.Scale.LLCBytes
		}
		if s.Scale.L2Bytes != 0 {
			cc.L2.SizeBytes = s.Scale.L2Bytes
		}
		cfg.Cache = cc
	}
	if mod != nil {
		mod(&cfg)
	}
	m, err := vm.New(cfg)
	if err != nil {
		return nil, err
	}
	prog, err := NewBenchmark(s.Benchmark, s.Scale, s.Seed)
	if err != nil {
		return nil, err
	}
	if _, err := m.AddTask(prog, vm.RolePrimary); err != nil {
		return nil, err
	}
	for i, name := range s.Corunners {
		co, err := NewCorunner(name, s.Scale, s.Seed+int64(i)+100)
		if err != nil {
			return nil, err
		}
		if _, err := m.AddTask(co, vm.RoleCorunner); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// RunCtx executes one scenario under a cancellable context. Each call
// builds its own machine, so concurrent RunCtx calls (the engine's
// parallel runner) share no mutable state.
//
// When the context carries an obs.Collector (obs.WithCollector), RunCtx
// emits one RunRecord per run: the scenario identity (from the engine's
// ScenarioInfo when executing inside a set), the configuration
// fingerprint, the wall-clock time measured through engine.StartTimer,
// and the machine's full counter registry.
func RunCtx(ctx context.Context, s Scenario) (Result, error) {
	stop := engine.StartTimer()
	m, err := BuildMachine(s)
	if err != nil {
		return Result{}, err
	}
	task := m.Tasks()[0]
	sampleEvery := s.SampleEvery
	if sampleEvery == 0 {
		sampleEvery = s.Scale.Accesses / 64
		if sampleEvery == 0 {
			sampleEvery = 1024
		}
	}
	if err := m.RunWith(ctx,
		vm.WithStopCorunnersAtInit(s.StopCorunnersAtInit),
		vm.WithSampleEvery(sampleEvery)); err != nil {
		return Result{}, err
	}
	report := m.Observe()
	res := Result{
		Scenario:       s,
		Report:         report,
		Task:           report.Tasks[0],
		Walk:           report.Steady.Walker,
		Guest:          report.Whole.Guest,
		UnusedMax:      m.UnusedSeries().Max(),
		UnusedMean:     m.UnusedSeries().Mean(),
		FootprintPages: task.Process().RSS(),
	}
	if part := task.Process().Part(); part != nil {
		res.MagnetStats = part.Snapshot()
	}
	res.LargeMappings = task.Process().PageTable().LargeMappings()
	if c := obs.CollectorFrom(ctx); c != nil {
		rec := obs.RunRecord{
			Set:         "adhoc",
			Scenario:    s.Identity(),
			Fingerprint: s.Fingerprint(),
			ElapsedMS:   stop().Milliseconds(),
			Counters:    m.Registry().Snapshot(),
		}
		if info, ok := engine.ScenarioInfoFrom(ctx); ok {
			rec.Set, rec.Scenario = info.Set, info.Scenario
		}
		c.Add(rec)
	}
	return res, nil
}

// Speedup returns the percentage improvement of this result over base,
// using steady-state cycles (the paper's execution-time metric).
func (r Result) Speedup(base Result) float64 {
	return metrics.Speedup(base.Task.SteadyCycles, r.Task.SteadyCycles)
}

// RunPairCtx runs the same scenario under the default policy and under
// PTEMagnet, returning (default, magnet).
func RunPairCtx(ctx context.Context, s Scenario) (Result, Result, error) {
	s.Policy = guestos.PolicyDefault
	def, err := RunCtx(ctx, s)
	if err != nil {
		return Result{}, Result{}, fmt.Errorf("default run: %w", err)
	}
	s.Policy = guestos.PolicyPTEMagnet
	mag, err := RunCtx(ctx, s)
	if err != nil {
		return Result{}, Result{}, fmt.Errorf("ptemagnet run: %w", err)
	}
	return def, mag, nil
}

// sortedCopy returns a sorted copy (used for stable report output).
func sortedCopy(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}
