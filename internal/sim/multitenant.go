// Multi-tenant scenario set: N VMs packed onto one shared host — the
// public-cloud setting of the paper's §2/§3.1, where until now the harness
// simulated colocation only inside a single guest. Guests are a mix of
// primary VMs (running a measured benchmark) and co-runner VMs (running
// only allocator pressure), with per-VM allocator policy, plus a VM-churn
// scenario that boots and kills guests mid-run.
package sim

import (
	"context"
	"fmt"
	"strings"

	"ptemagnet/internal/cache"
	"ptemagnet/internal/engine"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/vm"
)

// TenantSpec declares one VM of a multi-tenant scenario.
type TenantSpec struct {
	// Policy selects this guest's allocator independently of its
	// neighbours — a tenant can adopt PTEMagnet unilaterally (§4).
	Policy guestos.AllocPolicy
	// Primary is the measured benchmark run in this guest, or "" for a
	// co-runner-only pressure guest.
	Primary string
	// Corunners are the background programs run inside this guest.
	Corunners []string
}

// MultiScenario is one multi-tenant configuration: the tenants, the
// shared-host sizing, and an optional churn schedule.
type MultiScenario struct {
	// Tenants lists the VMs in boot order.
	Tenants []TenantSpec
	// Churn enables the boot/kill schedule: at 1/4 of the access budget a
	// new co-runner guest boots; at 1/2 the last declared co-runner-only
	// guest is destroyed. Both points are access counts, so churn runs are
	// as deterministic as static ones.
	Churn bool
	// Scale sizes each guest (GuestMemBytes per VM) and the shared host;
	// Seed drives all randomness.
	Scale Scale
	Seed  int64
	// SampleEvery forwards to the §6.2 gauge (0 = a sensible default).
	SampleEvery uint64
}

// Fingerprint hashes the full configuration (telemetry identity).
func (s MultiScenario) Fingerprint() string {
	return obs.Fingerprint(fmt.Sprintf("%+v", s))
}

// Identity returns a human-readable label.
func (s MultiScenario) Identity() string {
	primaries := 0
	for _, t := range s.Tenants {
		if t.Primary != "" {
			primaries++
		}
	}
	name := fmt.Sprintf("vms%d(p%d)", len(s.Tenants), primaries)
	if s.Churn {
		name += "+churn"
	}
	return name
}

// MultiResult bundles everything measured in one multi-tenant run.
type MultiResult struct {
	Scenario MultiScenario
	// Report is the machine's aggregated observation, including the
	// per-guest reports and the host-wide fragmentation rollup.
	Report vm.Report
	// PrimarySteadyCycles sums SteadyCycles over every primary task —
	// the cross-VM execution-time metric.
	PrimarySteadyCycles uint64
	// PrimaryFragMean averages the per-primary host-PT fragmentation.
	PrimaryFragMean float64
}

// BuildMultiMachine assembles the shared host and every tenant's guest
// stack and tasks without running — for callers that need to inspect or
// trace before Run.
func BuildMultiMachine(s MultiScenario) (*vm.Machine, error) {
	if len(s.Tenants) == 0 {
		return nil, fmt.Errorf("sim: multi-tenant scenario needs at least one tenant")
	}
	hc := vm.HostConfig{
		HostMemBytes: s.Scale.HostMemBytes,
		// Quantum 2 matches BuildMachine: aggressive fault interleaving.
		Quantum: 2,
	}
	if s.Scale.LLCBytes != 0 || s.Scale.L2Bytes != 0 {
		cc := cache.DefaultConfig(8)
		if s.Scale.LLCBytes != 0 {
			cc.LLC.SizeBytes = s.Scale.LLCBytes
		}
		if s.Scale.L2Bytes != 0 {
			cc.L2.SizeBytes = s.Scale.L2Bytes
		}
		hc.Cache = cc
	}
	for i, t := range s.Tenants {
		hc.Guests = append(hc.Guests, vm.GuestConfig{
			MemBytes: s.Scale.GuestMemBytes,
			Policy:   t.Policy,
			// Distinct per-guest kernel seeds derived from the scenario
			// seed, mirroring the per-corunner seed ladder.
			Seed: s.Seed + int64(i)*10,
		})
	}
	m, err := vm.NewHost(hc)
	if err != nil {
		return nil, err
	}
	for i, t := range s.Tenants {
		if err := populateGuest(m.Guests()[i], t, s.Scale, s.Seed+int64(i)*10); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// populateGuest adds one tenant's tasks to its guest.
func populateGuest(g *vm.Guest, t TenantSpec, sc Scale, seed int64) error {
	if t.Primary != "" {
		prog, err := NewBenchmark(t.Primary, sc, seed)
		if err != nil {
			return err
		}
		if _, err := g.AddTask(prog, vm.RolePrimary); err != nil {
			return err
		}
	}
	for i, name := range t.Corunners {
		co, err := NewCorunner(name, sc, seed+int64(i)+100)
		if err != nil {
			return err
		}
		if _, err := g.AddTask(co, vm.RoleCorunner); err != nil {
			return err
		}
	}
	return nil
}

// churnEvents builds the deterministic boot/kill schedule: boot a
// default-policy pressure guest at a quarter of the access budget, kill
// the last declared co-runner-only guest at half.
func churnEvents(s MultiScenario) []vm.RunEvent {
	victim := -1
	for i, t := range s.Tenants {
		if t.Primary == "" {
			victim = i
		}
	}
	events := []vm.RunEvent{{
		AtAccesses: s.Scale.Accesses / 4,
		Do: func(m *vm.Machine) error {
			g, err := m.AddGuest(vm.GuestConfig{
				MemBytes: s.Scale.GuestMemBytes,
				Policy:   guestos.PolicyDefault,
				Seed:     s.Seed + 9000,
			})
			if err != nil {
				return err
			}
			return populateGuest(g, TenantSpec{Corunners: []string{"stress-ng"}}, s.Scale, s.Seed+9000)
		},
	}}
	if victim >= 0 {
		events = append(events, vm.RunEvent{
			AtAccesses: s.Scale.Accesses / 2,
			Do: func(m *vm.Machine) error {
				m.DestroyGuest(m.Guests()[victim])
				return nil
			},
		})
	}
	return events
}

// RunMultiCtx executes one multi-tenant scenario under a cancellable
// context, emitting one RunRecord (with per-guest vm<i>.* counters) when
// the context carries an obs.Collector — the same telemetry contract as
// RunCtx.
func RunMultiCtx(ctx context.Context, s MultiScenario) (MultiResult, error) {
	stop := engine.StartTimer()
	m, err := BuildMultiMachine(s)
	if err != nil {
		return MultiResult{}, err
	}
	sampleEvery := s.SampleEvery
	if sampleEvery == 0 {
		sampleEvery = s.Scale.Accesses / 64
		if sampleEvery == 0 {
			sampleEvery = 1024
		}
	}
	opts := []vm.RunOpt{vm.WithSampleEvery(sampleEvery)}
	if s.Churn {
		opts = append(opts, vm.WithEvents(churnEvents(s)...))
	}
	if err := m.RunWith(ctx, opts...); err != nil {
		return MultiResult{}, err
	}
	report := m.Observe()
	res := MultiResult{Scenario: s, Report: report}
	for _, tr := range report.Tasks {
		res.PrimarySteadyCycles += tr.SteadyCycles
		res.PrimaryFragMean += tr.Frag.Mean
	}
	if len(report.Tasks) > 0 {
		res.PrimaryFragMean /= float64(len(report.Tasks))
	}
	if c := obs.CollectorFrom(ctx); c != nil {
		rec := obs.RunRecord{
			Set:         "adhoc",
			Scenario:    s.Identity(),
			Fingerprint: s.Fingerprint(),
			ElapsedMS:   stop().Milliseconds(),
			Counters:    m.Registry().Snapshot(),
		}
		if info, ok := engine.ScenarioInfoFrom(ctx); ok {
			rec.Set, rec.Scenario = info.Set, info.Scenario
		}
		c.Add(rec)
	}
	return res, nil
}

// MultiTenantVMCounts are the VM packings the set sweeps, mirroring
// consolidation ratios on real cloud hosts.
var MultiTenantVMCounts = []int{2, 4, 8}

// multiTenants builds the tenant list for one packing: even slots are
// primary guests (pagerank), odd slots are co-runner-only pressure guests
// (stress-ng, the paper's fragmenter). With magnetOnPrimaries, primary
// guests run PTEMagnet while pressure guests stay on the default
// allocator — per-VM policy heterogeneity.
func multiTenants(numVMs int, magnetOnPrimaries bool) []TenantSpec {
	tenants := make([]TenantSpec, 0, numVMs)
	for i := 0; i < numVMs; i++ {
		t := TenantSpec{Policy: guestos.PolicyDefault}
		if i%2 == 0 {
			t.Primary = "pagerank"
			if magnetOnPrimaries {
				t.Policy = guestos.PolicyPTEMagnet
			}
		} else {
			t.Corunners = []string{"stress-ng"}
		}
		tenants = append(tenants, t)
	}
	return tenants
}

// MultiTenantEntry is one VM-count's default-vs-PTEMagnet comparison.
type MultiTenantEntry struct {
	NumVMs int
	// FragDefault/FragMagnet average host-PT fragmentation over the
	// primaries; SpeedupPct is the PTEMagnet improvement in summed
	// primary steady cycles.
	FragDefault float64
	FragMagnet  float64
	SpeedupPct  float64
	// HostFragDefault/HostFragMagnet are the host-wide §3.2 rollups.
	HostFragDefault float64
	HostFragMagnet  float64
}

// MultiTenantResult covers the VM-count sweep plus the churn run.
type MultiTenantResult struct {
	Entries []MultiTenantEntry
	// Churn is the churn scenario's result (PTEMagnet primaries).
	Churn MultiResult
}

func multiTenantJobName(numVMs int, magnet bool) string {
	policy := "default"
	if magnet {
		policy = "ptemagnet"
	}
	return fmt.Sprintf("vms%d/%s", numVMs, policy)
}

// MultiTenantSet declares the multi-tenant sweep: for each VM count, the
// same packing with default-only allocators and with PTEMagnet in the
// primary guests, plus one churn scenario. vmCounts nil selects
// MultiTenantVMCounts; a subset (e.g. from the -vms flag) narrows the
// sweep.
func MultiTenantSet(sc Scale, seed int64, vmCounts []int) engine.Set[MultiResult, MultiTenantResult] {
	if len(vmCounts) == 0 {
		vmCounts = MultiTenantVMCounts
	}
	vmCounts = append([]int(nil), vmCounts...)
	var jobs []engine.Scenario[MultiResult]
	job := func(name string, s MultiScenario) engine.Scenario[MultiResult] {
		return engine.Scenario[MultiResult]{Name: name, Run: func(ctx context.Context) (MultiResult, error) {
			return RunMultiCtx(ctx, s)
		}}
	}
	for _, n := range vmCounts {
		for _, magnet := range []bool{false, true} {
			jobs = append(jobs, job(multiTenantJobName(n, magnet), MultiScenario{
				Tenants: multiTenants(n, magnet),
				Scale:   sc,
				Seed:    seed,
			}))
		}
	}
	jobs = append(jobs, job("churn", MultiScenario{
		Tenants: multiTenants(3, true),
		Churn:   true,
		Scale:   sc,
		Seed:    seed,
	}))
	return engine.Set[MultiResult, MultiTenantResult]{
		Name:      "multitenant",
		Scenarios: jobs,
		Reduce: func(res engine.Results[MultiResult]) (MultiTenantResult, error) {
			if err := res.FailedErr(); err != nil {
				return MultiTenantResult{}, err
			}
			var out MultiTenantResult
			for _, n := range vmCounts {
				def, _ := res.Get(multiTenantJobName(n, false))
				mag, _ := res.Get(multiTenantJobName(n, true))
				out.Entries = append(out.Entries, MultiTenantEntry{
					NumVMs:          n,
					FragDefault:     def.PrimaryFragMean,
					FragMagnet:      mag.PrimaryFragMean,
					SpeedupPct:      metrics.Speedup(def.PrimarySteadyCycles, mag.PrimarySteadyCycles),
					HostFragDefault: def.Report.HostFrag.Mean,
					HostFragMagnet:  mag.Report.HostFrag.Mean,
				})
			}
			out.Churn, _ = res.Get("churn")
			return out, nil
		},
	}
}

// RunMultiTenantCtx runs the multi-tenant sweep through the given engine.
func RunMultiTenantCtx(ctx context.Context, e *engine.Engine, sc Scale, seed int64, vmCounts []int) (MultiTenantResult, error) {
	return engine.Execute(ctx, e, MultiTenantSet(sc, seed, vmCounts))
}

// String renders the sweep as one table plus the churn summary.
func (r MultiTenantResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-tenant host: N VMs sharing one host (primaries pagerank, pressure guests stress-ng)\n")
	fmt.Fprintf(&b, "  %-6s  %-24s  %-24s  %s\n", "VMs", "primary frag (def→mag)", "host frag (def→mag)", "improvement")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %-6d  %10.2f → %-11.2f  %10.2f → %-11.2f  %+6.1f%%\n",
			e.NumVMs, e.FragDefault, e.FragMagnet, e.HostFragDefault, e.HostFragMagnet, e.SpeedupPct)
	}
	ch := r.Churn
	alive := 0
	for _, g := range ch.Report.Guests {
		if g.Alive {
			alive++
		}
	}
	fmt.Fprintf(&b, "  churn: %d guests booted, %d alive at end, primary frag %.2f, host frag %.2f\n",
		len(ch.Report.Guests), alive, ch.PrimaryFragMean, ch.Report.HostFrag.Mean)
	return b.String()
}
