package sim

import (
	"context"
	"strings"
	"testing"

	"ptemagnet/internal/guestos"
)

const testSeed = 11

func TestRegistryCoversAllNames(t *testing.T) {
	sc := QuickScale()
	for _, b := range append(append([]string{}, Benchmarks...), "allocmicro", "sparse") {
		p, err := NewBenchmark(b, sc, 1)
		if err != nil {
			t.Errorf("benchmark %s: %v", b, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("benchmark %s has empty name", b)
		}
	}
	for _, c := range append(append([]string{}, Corunners...), "stress-ng") {
		if _, err := NewCorunner(c, sc, 1); err != nil {
			t.Errorf("corunner %s: %v", c, err)
		}
	}
	if _, err := NewBenchmark("nope", sc, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := NewCorunner("nope", sc, 1); err == nil {
		t.Error("unknown corunner accepted")
	}
}

func TestRunProducesCompleteResult(t *testing.T) {
	res, err := RunCtx(context.Background(), Scenario{
		Benchmark: "pagerank", Corunners: []string{"objdet"},
		Policy: guestos.PolicyPTEMagnet, Scale: QuickScale(), Seed: testSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Task.SteadyCycles == 0 {
		t.Error("no steady cycles")
	}
	if res.Walk.Walks == 0 {
		t.Error("no walks")
	}
	if res.FootprintPages == 0 {
		t.Error("no footprint")
	}
	if res.MagnetStats.Created == 0 {
		t.Error("PTEMagnet created no reservations")
	}
}

func TestRunPairPoliciesDiffer(t *testing.T) {
	def, mag, err := RunPairCtx(context.Background(), Scenario{
		Benchmark: "pagerank", Corunners: []string{"objdet"},
		Scale: QuickScale(), Seed: testSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if def.Scenario.Policy == mag.Scenario.Policy {
		t.Error("pair ran one policy twice")
	}
	if mag.Task.Frag.Mean >= def.Task.Frag.Mean {
		t.Errorf("magnet frag %.2f >= default %.2f", mag.Task.Frag.Mean, def.Task.Frag.Mean)
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	r, err := RunTable1Ctx(context.Background(), nil, QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Shape assertions per DESIGN.md: colocation raises execution time,
	// walk cycles, host-PT memory traffic and fragmentation; TLB misses
	// stay roughly flat.
	if r.Colocated.Task.SteadyCycles <= r.Isolation.Task.SteadyCycles {
		t.Error("colocation did not slow pagerank down")
	}
	if r.Colocated.Walk.WalkCycles <= r.Isolation.Walk.WalkCycles {
		t.Error("colocation did not inflate walk cycles")
	}
	if r.Colocated.Walk.MemServed(1) <= r.Isolation.Walk.MemServed(1) {
		t.Error("colocation did not inflate host-PT memory accesses")
	}
	if r.Colocated.Task.Frag.Mean <= r.Isolation.Task.Frag.Mean {
		t.Error("colocation did not raise fragmentation")
	}
	tlbDelta := float64(r.Colocated.Walk.TLBMisses()) - float64(r.Isolation.Walk.TLBMisses())
	if tlbDelta/float64(r.Isolation.Walk.TLBMisses()) > 0.05 {
		t.Errorf("TLB misses changed by more than 5%%: %v vs %v",
			r.Colocated.Walk.TLBMisses(), r.Isolation.Walk.TLBMisses())
	}
	if len(r.Rows) != 9 || !strings.Contains(r.String(), "Execution time") {
		t.Error("table rendering incomplete")
	}
}

func TestObjdetSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in full mode only")
	}
	// Two benchmarks are enough to validate the suite mechanics.
	r, err := runSuite([]string{"pagerank", "xz"}, []string{"objdet"}, QuickScale(), testSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 2 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	for _, e := range r.Entries {
		if e.FragMagnet > 1.5 {
			t.Errorf("%s: magnet frag %.2f", e.Benchmark, e.FragMagnet)
		}
		if e.FragMagnet >= e.FragDefault {
			t.Errorf("%s: frag not reduced", e.Benchmark)
		}
		if e.SpeedupPct < -1 {
			t.Errorf("%s slowed down by %.1f%% — paper guarantees no degradation", e.Benchmark, -e.SpeedupPct)
		}
	}
	if !strings.Contains(r.String(), "geomean") {
		t.Error("suite rendering incomplete")
	}
}

func TestTable4ShapeHolds(t *testing.T) {
	r, err := RunTable4Ctx(context.Background(), nil, QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Magnet.Task.Frag.Mean >= r.Default.Task.Frag.Mean {
		t.Error("PTEMagnet did not reduce fragmentation")
	}
	if r.Magnet.Task.SteadyCycles >= r.Default.Task.SteadyCycles {
		t.Error("PTEMagnet did not reduce execution time")
	}
	if r.Magnet.Walk.Cycles[1] >= r.Default.Walk.Cycles[1] {
		t.Error("PTEMagnet did not reduce host-PT cycles")
	}
	if len(r.Rows) != 6 {
		t.Errorf("rows = %d", len(r.Rows))
	}
}

func TestSec62Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in full mode only")
	}
	sc := QuickScale()
	// One real benchmark + the adversary suffices for mechanics.
	res, err := RunCtx(context.Background(), Scenario{
		Benchmark: "pagerank", Corunners: []string{"objdet"},
		Policy: guestos.PolicyPTEMagnet, Scale: sc, Seed: testSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := sec62Entry("pagerank", res)
	if e.MaxUnusedPct > 1.0 {
		t.Errorf("pagerank peak unused = %.2f%% of footprint; paper bound is ~0.2%%", e.MaxUnusedPct)
	}
	adv, err := RunCtx(context.Background(), Scenario{Benchmark: "sparse", Policy: guestos.PolicyPTEMagnet, Scale: sc, Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	a := sec62Entry("sparse", adv)
	if a.MaxUnusedPct < 500 {
		t.Errorf("adversary peak unused = %.0f%%, want ~700%%", a.MaxUnusedPct)
	}
}

func TestSec64Quick(t *testing.T) {
	r, err := RunSec64Ctx(context.Background(), nil, QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// PTEMagnet must not slow allocation down and must slash buddy calls.
	if float64(r.Magnet.Task.Cycles) > float64(r.Default.Task.Cycles)*1.005 {
		t.Errorf("PTEMagnet alloc micro slower: %d vs %d", r.Magnet.Task.Cycles, r.Default.Task.Cycles)
	}
	if r.BuddyCallsMagnet*4 > r.BuddyCallsDefault {
		t.Errorf("buddy calls: magnet %d vs default %d; expected ~8x fewer",
			r.BuddyCallsMagnet, r.BuddyCallsDefault)
	}
	if !strings.Contains(r.String(), "buddy calls") {
		t.Error("rendering incomplete")
	}
}

func TestGranularityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run in full mode only")
	}
	r, err := RunGranularityCtx(context.Background(), nil, QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 5 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	// Fragmentation must be non-increasing with group size up to 8.
	frag := map[int]float64{}
	for _, e := range r.Entries {
		frag[e.GroupPages] = e.Frag
	}
	if frag[8] > frag[2] {
		t.Errorf("frag at 8 pages (%.2f) worse than at 2 (%.2f)", frag[8], frag[2])
	}
	if frag[8] > 1.3 {
		t.Errorf("frag at the design point = %.2f, want ~1", frag[8])
	}
}

func TestLockingAblation(t *testing.T) {
	r := RunLockingAblation(4, 2000)
	if r.FineNsPerOp <= 0 || r.CoarseNsPerOp <= 0 {
		t.Fatalf("bad measurement: %+v", r)
	}
	if !strings.Contains(r.String(), "fine-grained") {
		t.Error("rendering incomplete")
	}
}

func TestReclaimSweepQuick(t *testing.T) {
	r, err := RunReclaimSweepCtx(context.Background(), nil, QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 4 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	// The tightest watermark must reclaim at least as much as the loosest.
	if r.Entries[0].ReclaimedReservations < r.Entries[3].ReclaimedReservations {
		t.Errorf("watermark 0.3 reclaimed %d < watermark 0.9 reclaimed %d",
			r.Entries[0].ReclaimedReservations, r.Entries[3].ReclaimedReservations)
	}
}

func TestThresholdDemo(t *testing.T) {
	r, err := RunThresholdDemo(QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WithPart) != 1 || r.WithPart[0] != "pagerank" {
		t.Errorf("WithPart = %v, want [pagerank]", r.WithPart)
	}
	if len(r.WithoutPart) != 4 {
		t.Errorf("WithoutPart = %v", r.WithoutPart)
	}
}

func TestCAPagingComparisonQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison run in full mode only")
	}
	r, err := RunCAPagingComparisonCtx(context.Background(), nil, QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 3 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	solo, combo := r.Entries[0], r.Entries[2]
	// Solo, CA paging keeps fragmentation low (close to PTEMagnet).
	if solo.FragCA > solo.FragDefault {
		t.Errorf("solo: CA frag %.2f worse than default %.2f", solo.FragCA, solo.FragDefault)
	}
	// Under the aggressive combination, CA paging's fragmentation rises
	// well above PTEMagnet's guaranteed ~1.
	if combo.FragCA < combo.FragMagnet+0.5 {
		t.Errorf("combination: CA frag %.2f did not degrade vs PTEMagnet %.2f", combo.FragCA, combo.FragMagnet)
	}
	if combo.FragMagnet > 1.2 {
		t.Errorf("PTEMagnet frag %.2f not insensitive to colocation", combo.FragMagnet)
	}
	if !strings.Contains(r.String(), "CA paging") {
		t.Error("rendering incomplete")
	}
}

func TestTHPComparisonQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison run in full mode only")
	}
	r, err := RunTHPComparisonCtx(context.Background(), nil, QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 4 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	solo := r.Entries[0]
	// Solo, with plenty of order-9 blocks, THP must cover most memory and
	// deliver a real speedup (shorter guest walks, packed hPTEs).
	if solo.THPCoverage < 0.7 {
		t.Errorf("solo THP coverage = %.0f%%", solo.THPCoverage*100)
	}
	if solo.SpeedupTHP <= 0 {
		t.Errorf("solo THP speedup = %.1f%%", solo.SpeedupTHP)
	}
	// PTEMagnet must stay positive at every level.
	for _, e := range r.Entries {
		if e.SpeedupMagnet <= -0.5 {
			t.Errorf("%s: PTEMagnet speedup %.1f%%", e.Colocation, e.SpeedupMagnet)
		}
	}
	// The sparse-touch row must show the §2.3 internal fragmentation:
	// THP commits far more memory than the default allocator.
	sparse := r.Entries[3]
	if sparse.RSSTHPPages < sparse.RSSDefaultPages*4 {
		t.Errorf("sparse-touch RSS %d vs default %d; internal fragmentation missing",
			sparse.RSSTHPPages, sparse.RSSDefaultPages)
	}
	if !strings.Contains(r.String(), "THP") {
		t.Error("rendering incomplete")
	}
}

func TestFiveLevelComparisonQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison run in full mode only")
	}
	r, err := RunFiveLevelComparisonCtx(context.Background(), nil, QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 2 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	four, five := r.Entries[0], r.Entries[1]
	if four.Levels != 4 || five.Levels != 5 {
		t.Fatalf("levels = %d,%d", four.Levels, five.Levels)
	}
	// Five-level paging lengthens walks for the default kernel.
	if five.WalkCyclesDefault <= four.WalkCyclesDefault {
		t.Errorf("5-level default walks %d not longer than 4-level %d",
			five.WalkCyclesDefault, four.WalkCyclesDefault)
	}
	// PTEMagnet keeps helping at depth 5.
	if five.SpeedupMagnet <= 0 {
		t.Errorf("5-level PTEMagnet speedup %.1f%%", five.SpeedupMagnet)
	}
	if !strings.Contains(r.String(), "five-level") {
		t.Error("rendering incomplete")
	}
}

func TestStringRenderings(t *testing.T) {
	// Exercise the report formatters over synthetic data.
	s := SuiteResult{
		Corunners:      []string{"objdet"},
		Entries:        []SuiteEntry{{Benchmark: "pagerank", FragDefault: 3.3, FragMagnet: 1.0, SpeedupPct: 4.8}},
		GeomeanSpeedup: 4.8,
	}
	if out := s.String(); !strings.Contains(out, "pagerank") || !strings.Contains(out, "geomean") {
		t.Errorf("SuiteResult.String: %q", out)
	}
	sec := Sec62Result{
		Entries:   []Sec62Entry{{Benchmark: "pagerank", MaxUnusedPages: 12, FootprintPages: 12288, MaxUnusedPct: 0.098}},
		Adversary: Sec62Entry{Benchmark: "sparse", MaxUnusedPages: 10752, FootprintPages: 1536, MaxUnusedPct: 700},
	}
	if out := sec.String(); !strings.Contains(out, "sparse") {
		t.Errorf("Sec62Result.String: %q", out)
	}
	thp := THPResult{Entries: []THPEntry{{Colocation: "solo", SpeedupTHP: 4.7, THPCoverage: 1}}}
	if out := thp.String(); !strings.Contains(out, "solo") {
		t.Errorf("THPResult.String: %q", out)
	}
	ca := CAPagingResult{Entries: []CAPagingEntry{{Colocation: "solo", FragDefault: 1.9, FragCA: 1.9, FragMagnet: 1}}}
	if out := ca.String(); !strings.Contains(out, "solo") {
		t.Errorf("CAPagingResult.String: %q", out)
	}
	fl := FiveLevelResult{Entries: []FiveLevelEntry{{Levels: 4}, {Levels: 5}}}
	if out := fl.String(); !strings.Contains(out, "five-level") {
		t.Errorf("FiveLevelResult.String: %q", out)
	}
}

func TestDefaultScaleSane(t *testing.T) {
	sc := DefaultScale()
	if sc.GuestMemBytes >= sc.HostMemBytes {
		t.Error("guest memory not smaller than host")
	}
	if sc.DatasetBytes >= sc.GuestMemBytes {
		t.Error("dataset does not fit guest memory")
	}
	if sc.LLCBytes == 0 {
		t.Error("default scale does not pin the LLC (calibration requires it)")
	}
	// The calibrated footprint-to-LLC ratio stays in the paper's regime
	// (16GB / 25MB ≈ 640x; anything > 64x keeps hPTEs memory-bound).
	if sc.DatasetBytes/sc.LLCBytes < 64 {
		t.Errorf("dataset/LLC ratio = %d, too small for the paper's regime", sc.DatasetBytes/sc.LLCBytes)
	}
}

func TestObjdetSuiteSingleRepeatSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in full mode only")
	}
	// Exercise the public suite entry points over a reduced benchmark
	// list is not possible (they are fixed); a one-benchmark runSuite
	// with repeats=2 covers the averaging path instead.
	r, err := runSuite([]string{"gcc"}, []string{"objdet"}, QuickScale(), testSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 1 || r.Entries[0].CyclesDefault == 0 {
		t.Fatalf("entries = %+v", r.Entries)
	}
}

func TestRunSec62SmokeSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in full mode only")
	}
	// RunSec62 over all 8 benchmarks is exercised by cmd/experiments; the
	// harness path is covered here via its components on two benchmarks
	// plus the adversary (see TestSec62Quick). This test pins the public
	// function end to end at quick scale with a stubbed benchmark list.
	saved := Benchmarks
	Benchmarks = []string{"gcc"}
	defer func() { Benchmarks = saved }()
	r, err := RunSec62Ctx(context.Background(), nil, QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 1 || r.Adversary.Benchmark != "sparse" {
		t.Fatalf("result = %+v", r)
	}
}

func TestLowPressureQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("study run in full mode only")
	}
	r, err := RunLowPressureCtx(context.Background(), nil, QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 3 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	for _, e := range r.Entries {
		// Low pressure by construction…
		if e.TLBMissPct > 25 {
			t.Errorf("%s: TLB miss rate %.1f%% is not low pressure", e.Benchmark, e.TLBMissPct)
		}
		// …and PTEMagnet never hurts (±1.5% noise band at quick scale).
		if e.SpeedupPct < -1.5 {
			t.Errorf("%s slowed down %.2f%%", e.Benchmark, e.SpeedupPct)
		}
	}
	if !strings.Contains(r.String(), "low-TLB-pressure") {
		t.Error("rendering incomplete")
	}
}
