package sim

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/core"
	"ptemagnet/internal/engine"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/physmem"
)

// ---------------------------------------------------------------------------
// §6.2 — incidence of non-allocated pages within reservations
// ---------------------------------------------------------------------------

// Sec62Entry is one benchmark's reservation-waste measurement.
type Sec62Entry struct {
	Benchmark string
	// MaxUnusedPages is the peak reserved-but-unmapped page count.
	MaxUnusedPages int64
	// FootprintPages is the benchmark's resident set.
	FootprintPages uint64
	// MaxUnusedPct is the peak as a percentage of the footprint — the
	// paper reports this never exceeds 0.2% for real benchmarks and can
	// reach 700% for an adversary.
	MaxUnusedPct float64
}

// Sec62Result covers the benchmark suite plus the sparse adversary.
type Sec62Result struct {
	Entries   []Sec62Entry
	Adversary Sec62Entry
}

// Sec62Set declares the §6.2 study: every benchmark under PTEMagnet
// (colocated with objdet, as in §6.1) with the unused-reservation gauge
// sampled throughout, plus the every-eighth-page adversary. Benchmarks
// whose run failed are dropped from the entries; their errors surface
// through the returned error.
func Sec62Set(sc Scale, seed int64) engine.Set[Result, Sec62Result] {
	benchmarks := append([]string(nil), Benchmarks...)
	var jobs []engine.Scenario[Result]
	for _, b := range benchmarks {
		jobs = append(jobs, scenarioJob(b, Scenario{
			Benchmark: b, Corunners: []string{"objdet"},
			Policy: guestos.PolicyPTEMagnet, Scale: sc, Seed: seed,
		}))
	}
	jobs = append(jobs, scenarioJob("sparse", Scenario{
		Benchmark: "sparse", Policy: guestos.PolicyPTEMagnet,
		Scale: sc, Seed: seed,
	}))
	return engine.Set[Result, Sec62Result]{
		Name:      "sec62",
		Scenarios: jobs,
		Reduce: func(res engine.Results[Result]) (Sec62Result, error) {
			var out Sec62Result
			for _, b := range benchmarks {
				if r, ok := res.Get(b); ok {
					out.Entries = append(out.Entries, sec62Entry(b, r))
				}
			}
			if adv, ok := res.Get("sparse"); ok {
				out.Adversary = sec62Entry("sparse", adv)
			}
			return out, res.FailedErr()
		},
	}
}

// RunSec62Ctx reproduces the §6.2 study through the given engine.
func RunSec62Ctx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (Sec62Result, error) {
	return engine.Execute(ctx, e, Sec62Set(sc, seed))
}

func sec62Entry(name string, res Result) Sec62Entry {
	e := Sec62Entry{
		Benchmark:      name,
		MaxUnusedPages: res.UnusedMax,
		FootprintPages: res.FootprintPages,
	}
	if res.FootprintPages > 0 {
		e.MaxUnusedPct = float64(res.UnusedMax) / float64(res.FootprintPages) * 100
	}
	return e
}

// String renders the study.
func (r Sec62Result) String() string {
	var b strings.Builder
	b.WriteString("Section 6.2: non-allocated pages within reservations (paper: <0.2% of footprint)\n")
	fmt.Fprintf(&b, "  %-10s  %14s  %15s  %s\n", "benchmark", "peak unused", "footprint", "peak % of footprint")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %-10s  %8d pages  %9d pages  %.3f%%\n",
			e.Benchmark, e.MaxUnusedPages, e.FootprintPages, e.MaxUnusedPct)
	}
	fmt.Fprintf(&b, "  %-10s  %8d pages  %9d pages  %.0f%%  (paper: adversary can reach 700%%)\n",
		r.Adversary.Benchmark, r.Adversary.MaxUnusedPages, r.Adversary.FootprintPages, r.Adversary.MaxUnusedPct)
	return b.String()
}

// ---------------------------------------------------------------------------
// §6.4 — memory-allocation latency microbenchmark
// ---------------------------------------------------------------------------

// Sec64Result compares the allocation microbenchmark under both policies.
type Sec64Result struct {
	Default Result
	Magnet  Result
	// ImprovementPct is PTEMagnet's end-to-end gain (paper: ~0.5%).
	ImprovementPct float64
	// BuddyCallsDefault/Magnet show the mechanism: PTEMagnet replaces 7
	// of 8 buddy calls with PaRT hits.
	BuddyCallsDefault uint64
	BuddyCallsMagnet  uint64
	// FaultCyclesDefault/Magnet isolate the allocation path cost.
	FaultCyclesDefault uint64
	FaultCyclesMagnet  uint64
}

// Sec64Set declares the §6.4 microbenchmark pair: touch every page of a
// huge array once, so execution is dominated by the fault/allocation path.
func Sec64Set(sc Scale, seed int64) engine.Set[Result, Sec64Result] {
	return engine.Set[Result, Sec64Result]{
		Name: "sec64",
		Scenarios: pairJobs("allocmicro", Scenario{
			Benchmark: "allocmicro", Scale: sc, Seed: seed,
		}),
		Reduce: func(res engine.Results[Result]) (Sec64Result, error) {
			if err := res.FailedErr(); err != nil {
				return Sec64Result{}, err
			}
			def, _ := res.Get("allocmicro/default")
			mag, _ := res.Get("allocmicro/ptemagnet")
			return Sec64Result{
				Default: def,
				Magnet:  mag,
				// Whole-run cycles: the entire microbenchmark is the
				// measurement (there is no steady phase after the
				// allocation scan).
				ImprovementPct:     metrics.Speedup(def.Task.Cycles, mag.Task.Cycles),
				BuddyCallsDefault:  def.Guest.BuddyCalls,
				BuddyCallsMagnet:   mag.Guest.BuddyCalls,
				FaultCyclesDefault: def.Task.FaultCycles,
				FaultCyclesMagnet:  mag.Task.FaultCycles,
			}, nil
		},
	}
}

// RunSec64Ctx reproduces the §6.4 microbenchmark through the given engine.
func RunSec64Ctx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (Sec64Result, error) {
	return engine.Execute(ctx, e, Sec64Set(sc, seed))
}

// Speedup uses whole-run cycles here: the entire microbenchmark is the
// measurement (there is no steady phase).
func (r Sec64Result) String() string {
	var b strings.Builder
	b.WriteString("Section 6.4: allocation-latency microbenchmark (paper: PTEMagnet 0.5% faster)\n")
	fmt.Fprintf(&b, "  execution cycles   default %12d   ptemagnet %12d   improvement %+.2f%%\n",
		r.Default.Task.Cycles, r.Magnet.Task.Cycles,
		(float64(r.Default.Task.Cycles)/float64(r.Magnet.Task.Cycles)-1)*100)
	fmt.Fprintf(&b, "  buddy calls        default %12d   ptemagnet %12d   (paper: 7 of 8 calls replaced by PaRT hits)\n",
		r.BuddyCallsDefault, r.BuddyCallsMagnet)
	fmt.Fprintf(&b, "  fault-path cycles  default %12d   ptemagnet %12d\n",
		r.FaultCyclesDefault, r.FaultCyclesMagnet)
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablations (design choices of §4)
// ---------------------------------------------------------------------------

// GranularityEntry is one reservation-size design point.
type GranularityEntry struct {
	GroupPages int
	Frag       float64
	SpeedupPct float64
}

// GranularityResult sweeps the reservation granularity. The paper fixes 8
// pages because eight 8-byte PTEs fill one 64-byte cache block; the sweep
// shows why: fragmentation keeps dropping until 8 and is flat beyond.
type GranularityResult struct {
	Baseline Result // default policy
	Entries  []GranularityEntry
}

// granularitySweep is the swept group sizes; 8 is the paper's design point.
var granularitySweep = []int{2, 4, 8, 16, 32}

// GranularitySet declares the granularity sweep over pagerank + objdet:
// the default-policy baseline plus one PTEMagnet run per group size.
func GranularitySet(sc Scale, seed int64) engine.Set[Result, GranularityResult] {
	base := Scenario{
		Benchmark: "pagerank", Corunners: []string{"objdet"},
		Policy: guestos.PolicyDefault, Scale: sc, Seed: seed,
	}
	jobs := []engine.Scenario[Result]{scenarioJob("default", base)}
	for _, gp := range granularitySweep {
		s := base
		s.Policy = guestos.PolicyPTEMagnet
		s.Magnet = core.Config{GroupPages: gp}
		jobs = append(jobs, scenarioJob(fmt.Sprintf("group%d", gp), s))
	}
	return engine.Set[Result, GranularityResult]{
		Name:      "granularity",
		Scenarios: jobs,
		Reduce: func(res engine.Results[Result]) (GranularityResult, error) {
			def, ok := res.Get("default")
			if !ok {
				// Without the baseline no design point is comparable.
				return GranularityResult{}, res.FailedErr()
			}
			out := GranularityResult{Baseline: def}
			for _, gp := range granularitySweep {
				r, ok := res.Get(fmt.Sprintf("group%d", gp))
				if !ok {
					continue
				}
				out.Entries = append(out.Entries, GranularityEntry{
					GroupPages: gp,
					Frag:       r.Task.Frag.Mean,
					SpeedupPct: r.Speedup(def),
				})
			}
			return out, res.FailedErr()
		},
	}
}

// RunGranularityCtx runs the sweep through the given engine.
func RunGranularityCtx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (GranularityResult, error) {
	return engine.Execute(ctx, e, GranularitySet(sc, seed))
}

// String renders the sweep.
func (r GranularityResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: reservation granularity (paper design point: 8 pages = 1 cache block of PTEs)\n")
	fmt.Fprintf(&b, "  %-12s  %12s  %s\n", "group pages", "frag", "improvement")
	fmt.Fprintf(&b, "  %-12s  %12.2f  %s\n", "default", r.Baseline.Task.Frag.Mean, "baseline")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %-12d  %12.2f  %+6.1f%%\n", e.GroupPages, e.Frag, e.SpeedupPct)
	}
	return b.String()
}

// LockingResult measures PaRT fault throughput under concurrency for the
// fine-grained per-node locking §4.2 mandates versus a single coarse lock.
type LockingResult struct {
	Goroutines    int
	FaultsEach    int
	FineNsPerOp   float64
	CoarseNsPerOp float64
}

// RunLockingAblation hammers two PaRTs with concurrent faults to disjoint
// groups (the multi-threaded-allocation scenario of §4.2) and compares
// wall-clock throughput. This is real concurrency, not simulated time —
// it spawns its own goroutines and therefore bypasses the scenario
// engine (nesting it inside a worker pool would skew the measurement).
// The clock itself is still read through engine.StartTimer, the one
// timing hook the noclock contract permits below cmd/.
func RunLockingAblation(goroutines, faultsEach int) LockingResult {
	measure := func(coarse bool) float64 {
		part := core.MustNew(core.Config{GroupPages: arch.GroupPages, CoarseLocking: coarse})
		mem := physmem.New(1 << 30)
		var memMu sync.Mutex
		alloc := func() (arch.PhysAddr, bool) {
			memMu.Lock()
			defer memMu.Unlock()
			return mem.AllocGroup(arch.GroupPages, physmem.KindReserved, physmem.Own(0, 1))
		}
		elapsed := engine.StartTimer()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			//ptmlint:allow(goscope) wall-clock locking ablation: measures real lock contention, reports timing only, touches no simulation counters
			go func(g int) {
				defer wg.Done()
				base := arch.VirtAddr(uint64(g) << 32)
				for i := 0; i < faultsEach; i++ {
					va := base + arch.VirtAddr(uint64(i)*arch.PageSize)
					if _, res := part.HandleFault(va, alloc); res == core.FaultNoMemory {
						return
					}
				}
			}(g)
		}
		wg.Wait()
		return float64(elapsed().Nanoseconds()) / float64(goroutines*faultsEach)
	}
	return LockingResult{
		Goroutines:    goroutines,
		FaultsEach:    faultsEach,
		FineNsPerOp:   measure(false),
		CoarseNsPerOp: measure(true),
	}
}

// String renders the comparison.
func (r LockingResult) String() string {
	return fmt.Sprintf(
		"Ablation: PaRT locking (%d goroutines × %d faults)\n  fine-grained: %.0f ns/fault   coarse: %.0f ns/fault   (fine-grained per-node locks are the §4.2 design)\n",
		r.Goroutines, r.FaultsEach, r.FineNsPerOp, r.CoarseNsPerOp)
}

// ReclaimEntry is one watermark design point.
type ReclaimEntry struct {
	Watermark             float64
	ReclaimRuns           uint64
	ReclaimedReservations uint64
	PeakUnusedPages       int64
}

// ReclaimResult sweeps the §4.3 reclaim watermark with the sparse adversary
// on a small memory, showing the trade-off: lower watermarks reclaim more
// aggressively and bound reservation waste tighter.
type ReclaimResult struct {
	Entries []ReclaimEntry
}

// reclaimWatermarks is the swept §4.3 watermark design points.
var reclaimWatermarks = []float64{0.3, 0.5, 0.7, 0.9}

// ReclaimSweepSet declares the reclaim-watermark sweep.
func ReclaimSweepSet(sc Scale, seed int64) engine.Set[Result, ReclaimResult] {
	var jobs []engine.Scenario[Result]
	for _, wm := range reclaimWatermarks {
		jobs = append(jobs, scenarioJob(fmt.Sprintf("watermark%.1f", wm), Scenario{
			Benchmark: "sparse", Policy: guestos.PolicyPTEMagnet,
			ReclaimWatermark: wm,
			Scale: Scale{
				HostMemBytes:  sc.HostMemBytes,
				GuestMemBytes: sc.DatasetBytes * 2, // tight memory: pressure is real
				DatasetBytes:  sc.DatasetBytes,
				Accesses:      sc.Accesses,
			},
			Seed: seed,
		}))
	}
	return engine.Set[Result, ReclaimResult]{
		Name:      "reclaim",
		Scenarios: jobs,
		Reduce: func(res engine.Results[Result]) (ReclaimResult, error) {
			var out ReclaimResult
			for _, wm := range reclaimWatermarks {
				r, ok := res.Get(fmt.Sprintf("watermark%.1f", wm))
				if !ok {
					continue
				}
				out.Entries = append(out.Entries, ReclaimEntry{
					Watermark:             wm,
					ReclaimRuns:           r.Guest.ReclaimRuns,
					ReclaimedReservations: r.Guest.ReclaimedReservations,
					PeakUnusedPages:       r.UnusedMax,
				})
			}
			return out, res.FailedErr()
		},
	}
}

// RunReclaimSweepCtx runs the sweep through the given engine.
func RunReclaimSweepCtx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (ReclaimResult, error) {
	return engine.Execute(ctx, e, ReclaimSweepSet(sc, seed))
}

// String renders the sweep.
func (r ReclaimResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: reclaim watermark (§4.3) under the sparse adversary, tight memory\n")
	fmt.Fprintf(&b, "  %-10s  %12s  %22s  %s\n", "watermark", "daemon runs", "reclaimed reservations", "peak unused pages")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %-10.1f  %12d  %22d  %d\n",
			e.Watermark, e.ReclaimRuns, e.ReclaimedReservations, e.PeakUnusedPages)
	}
	return b.String()
}

// ThresholdResult demonstrates the §4.4 enable mechanism: with a threshold
// set, only big-memory processes get PaRTs.
type ThresholdResult struct {
	ThresholdBytes uint64
	// WithPart / WithoutPart list process names by whether PTEMagnet
	// applied to them.
	WithPart    []string
	WithoutPart []string
}

// RunThresholdDemo runs pagerank with the small co-runners under a
// threshold chosen to include only the benchmark. It only builds a
// machine (no simulation run), so it does not go through the engine.
func RunThresholdDemo(sc Scale, seed int64) (ThresholdResult, error) {
	// The small co-runners declare footprints of at most 8MB; any
	// threshold above that and at most the benchmark's footprint
	// separates them (§4.4: limits derived from memory.limit_in_bytes).
	threshold := uint64(9 << 20)
	if threshold > sc.DatasetBytes {
		threshold = sc.DatasetBytes
	}
	cfg := Scenario{
		Benchmark: "pagerank",
		Corunners: []string{"chameleon", "pyaes", "json_serdes", "rnn_serving"},
		Policy:    guestos.PolicyPTEMagnet, EnableThresholdBytes: threshold,
		Scale: sc, Seed: seed,
	}
	m, err := BuildMachine(cfg)
	if err != nil {
		return ThresholdResult{}, err
	}
	out := ThresholdResult{ThresholdBytes: threshold}
	for _, task := range m.Tasks() {
		if task.Process().Part() != nil {
			out.WithPart = append(out.WithPart, task.Name())
		} else {
			out.WithoutPart = append(out.WithoutPart, task.Name())
		}
	}
	return out, nil
}

// String renders the demo.
func (r ThresholdResult) String() string {
	return fmt.Sprintf(
		"Ablation: §4.4 enable threshold (%d MB)\n  PTEMagnet enabled:  %s\n  PTEMagnet disabled: %s\n",
		r.ThresholdBytes>>20,
		strings.Join(sortedCopy(r.WithPart), ", "),
		strings.Join(sortedCopy(r.WithoutPart), ", "))
}

// ---------------------------------------------------------------------------
// Baseline comparison: contiguity-aware paging (related work, §7)
// ---------------------------------------------------------------------------

// colocationLevels are the rising-pressure co-runner sets shared by the
// CA-paging and THP baseline comparisons.
func colocationLevels() []struct {
	name      string
	corunners []string
} {
	return []struct {
		name      string
		corunners []string
	}{
		{"solo", nil},
		{"objdet", []string{"objdet"}},
		{"combination", append([]string(nil), Corunners...)},
	}
}

// CAPagingEntry compares allocators at one colocation level.
type CAPagingEntry struct {
	// Colocation names the co-runner set.
	Colocation string
	// FragCA / FragMagnet are host-PT fragmentation under each allocator
	// (default-policy fragmentation is FragDefault).
	FragDefault float64
	FragCA      float64
	FragMagnet  float64
	// SpeedupCA / SpeedupMagnet are improvements over the default policy.
	SpeedupCA     float64
	SpeedupMagnet float64
}

// CAPagingResult contrasts best-effort contiguity (CA paging) with eager
// reservation (PTEMagnet) as colocation pressure rises — the paper's §7
// argument: "improvements of CA paging can be significantly reduced under
// aggressive colocation ... PTEMagnet guarantees contiguity by eager
// reservation and it is insensitive to colocation".
type CAPagingResult struct {
	Entries []CAPagingEntry
}

// CAPagingSet declares pagerank at three colocation levels under the
// default allocator, CA paging, and PTEMagnet (nine scenarios). A level
// with any failed run is dropped from the entries.
func CAPagingSet(sc Scale, seed int64) engine.Set[Result, CAPagingResult] {
	levels := colocationLevels()
	var jobs []engine.Scenario[Result]
	for _, lv := range levels {
		base := Scenario{
			Benchmark: "pagerank", Corunners: lv.corunners,
			Scale: sc, Seed: seed,
		}
		for _, p := range []guestos.AllocPolicy{
			guestos.PolicyDefault, guestos.PolicyCAPaging, guestos.PolicyPTEMagnet,
		} {
			s := base
			s.Policy = p
			jobs = append(jobs, scenarioJob(fmt.Sprintf("%s/%v", lv.name, p), s))
		}
	}
	return engine.Set[Result, CAPagingResult]{
		Name:      "capaging",
		Scenarios: jobs,
		Reduce: func(res engine.Results[Result]) (CAPagingResult, error) {
			var out CAPagingResult
			for _, lv := range levels {
				def, okD := res.Get(fmt.Sprintf("%s/%v", lv.name, guestos.PolicyDefault))
				ca, okC := res.Get(fmt.Sprintf("%s/%v", lv.name, guestos.PolicyCAPaging))
				mag, okM := res.Get(fmt.Sprintf("%s/%v", lv.name, guestos.PolicyPTEMagnet))
				if !okD || !okC || !okM {
					continue
				}
				out.Entries = append(out.Entries, CAPagingEntry{
					Colocation:    lv.name,
					FragDefault:   def.Task.Frag.Mean,
					FragCA:        ca.Task.Frag.Mean,
					FragMagnet:    mag.Task.Frag.Mean,
					SpeedupCA:     ca.Speedup(def),
					SpeedupMagnet: mag.Speedup(def),
				})
			}
			return out, res.FailedErr()
		},
	}
}

// RunCAPagingComparisonCtx runs the comparison through the given engine.
func RunCAPagingComparisonCtx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (CAPagingResult, error) {
	return engine.Execute(ctx, e, CAPagingSet(sc, seed))
}

// String renders the comparison.
func (r CAPagingResult) String() string {
	var b strings.Builder
	b.WriteString("Baseline: CA paging (best effort) vs PTEMagnet (eager reservation), pagerank\n")
	fmt.Fprintf(&b, "  %-12s  %10s  %10s  %10s  %12s  %s\n",
		"colocation", "frag def", "frag CA", "frag PTEM", "CA speedup", "PTEM speedup")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %-12s  %10.2f  %10.2f  %10.2f  %+11.1f%%  %+.1f%%\n",
			e.Colocation, e.FragDefault, e.FragCA, e.FragMagnet, e.SpeedupCA, e.SpeedupMagnet)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Baseline comparison: transparent huge pages (§2.3)
// ---------------------------------------------------------------------------

// THPEntry compares THP and PTEMagnet at one colocation level.
type THPEntry struct {
	// Colocation names the co-runner set.
	Colocation string
	// SpeedupTHP / SpeedupMagnet are improvements over the default
	// 4KB-page policy.
	SpeedupTHP    float64
	SpeedupMagnet float64
	// THPCoverage is the fraction of the benchmark's resident set backed
	// by 2MB pages at the end of the run; fragmentation pushes it down.
	THPCoverage float64
	// THPFallbacks and THPSplits count the §2.3 failure modes.
	THPFallbacks uint64
	THPSplits    uint64
	// RSSTHPPages / RSSDefaultPages expose THP's internal fragmentation:
	// committed pages under each policy.
	RSSTHPPages     uint64
	RSSDefaultPages uint64
}

// THPResult contrasts transparent huge pages with PTEMagnet. The paper's
// §2.3 position: THP is a "big hammer" — large wins when whole 2MB blocks
// are available, but order-9 allocations fail under fragmentation, memory
// is over-committed, and production clouds often disable it. PTEMagnet's
// fine-grained reservations deliver a smaller but unconditional win.
type THPResult struct {
	Entries []THPEntry
}

func thpEntry(name string, def, thp Result) THPEntry {
	e := THPEntry{
		Colocation:      name,
		SpeedupTHP:      thp.Speedup(def),
		THPFallbacks:    thp.Guest.THPFallbacks,
		THPSplits:       thp.Guest.THPSplits,
		RSSTHPPages:     thp.FootprintPages,
		RSSDefaultPages: def.FootprintPages,
	}
	if thp.FootprintPages > 0 {
		e.THPCoverage = float64(thp.LargeMappings*arch.PTEntriesPerNode) / float64(thp.FootprintPages)
	}
	return e
}

// THPSet declares pagerank at rising colocation pressure under the
// default allocator, THP, and PTEMagnet, plus the sparse-touch pair that
// exposes THP's internal fragmentation (§2.3's first cost).
func THPSet(sc Scale, seed int64) engine.Set[Result, THPResult] {
	levels := colocationLevels()
	var jobs []engine.Scenario[Result]
	for _, lv := range levels {
		base := Scenario{
			Benchmark: "pagerank", Corunners: lv.corunners,
			Scale: sc, Seed: seed,
		}
		for _, p := range []guestos.AllocPolicy{
			guestos.PolicyDefault, guestos.PolicyTHP, guestos.PolicyPTEMagnet,
		} {
			s := base
			s.Policy = p
			jobs = append(jobs, scenarioJob(fmt.Sprintf("%s/%v", lv.name, p), s))
		}
	}
	// Internal fragmentation: the sparse-touch workload commits one page
	// per 32KB; THP commits the whole 2MB region per touch.
	sparseBase := Scenario{Benchmark: "sparse", Scale: sc, Seed: seed}
	for _, p := range []guestos.AllocPolicy{guestos.PolicyDefault, guestos.PolicyTHP} {
		s := sparseBase
		s.Policy = p
		jobs = append(jobs, scenarioJob(fmt.Sprintf("sparse-touch/%v", p), s))
	}
	return engine.Set[Result, THPResult]{
		Name:      "thp",
		Scenarios: jobs,
		Reduce: func(res engine.Results[Result]) (THPResult, error) {
			var out THPResult
			for _, lv := range levels {
				def, okD := res.Get(fmt.Sprintf("%s/%v", lv.name, guestos.PolicyDefault))
				thp, okT := res.Get(fmt.Sprintf("%s/%v", lv.name, guestos.PolicyTHP))
				mag, okM := res.Get(fmt.Sprintf("%s/%v", lv.name, guestos.PolicyPTEMagnet))
				if !okD || !okT || !okM {
					continue
				}
				e := thpEntry(lv.name, def, thp)
				e.SpeedupMagnet = mag.Speedup(def)
				out.Entries = append(out.Entries, e)
			}
			sd, okD := res.Get(fmt.Sprintf("sparse-touch/%v", guestos.PolicyDefault))
			st, okT := res.Get(fmt.Sprintf("sparse-touch/%v", guestos.PolicyTHP))
			if okD && okT {
				out.Entries = append(out.Entries, thpEntry("sparse-touch", sd, st))
			}
			return out, res.FailedErr()
		},
	}
}

// RunTHPComparisonCtx runs the comparison through the given engine.
func RunTHPComparisonCtx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (THPResult, error) {
	return engine.Execute(ctx, e, THPSet(sc, seed))
}

// String renders the comparison.
func (r THPResult) String() string {
	var b strings.Builder
	b.WriteString("Baseline: transparent huge pages (§2.3) vs PTEMagnet, pagerank\n")
	fmt.Fprintf(&b, "  %-12s  %11s  %13s  %12s  %10s  %s\n",
		"colocation", "THP speedup", "PTEM speedup", "THP coverage", "fallbacks", "RSS thp/default")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %-12s  %+10.1f%%  %+12.1f%%  %11.0f%%  %10d  %d/%d pages\n",
			e.Colocation, e.SpeedupTHP, e.SpeedupMagnet, e.THPCoverage*100,
			e.THPFallbacks, e.RSSTHPPages, e.RSSDefaultPages)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Extension: five-level paging (§2.5's anticipated migration)
// ---------------------------------------------------------------------------

// FiveLevelEntry compares one page-table depth.
type FiveLevelEntry struct {
	Levels int
	// WalkCyclesDefault / WalkCyclesMagnet are steady-phase walk cycles.
	WalkCyclesDefault uint64
	WalkCyclesMagnet  uint64
	// SpeedupMagnet is PTEMagnet's improvement over default at this depth.
	SpeedupMagnet float64
}

// FiveLevelResult contrasts 4-level and 5-level paging. The paper (§2.5)
// notes Linux's "planned migration to five-level PTs": a 2D walk grows from
// up to 24 accesses to up to 35, so page walks get longer and the latency
// PTEMagnet removes grows with them.
type FiveLevelResult struct {
	Entries []FiveLevelEntry
}

// FiveLevelSet declares pagerank + objdet at both page-table depths under
// both policies (four scenarios).
func FiveLevelSet(sc Scale, seed int64) engine.Set[Result, FiveLevelResult] {
	depths := []int{4, 5}
	var jobs []engine.Scenario[Result]
	for _, levels := range depths {
		jobs = append(jobs, pairJobs(fmt.Sprintf("%d-level", levels), Scenario{
			Benchmark: "pagerank", Corunners: []string{"objdet"},
			Scale: sc, Seed: seed, PTLevels: levels,
		})...)
	}
	return engine.Set[Result, FiveLevelResult]{
		Name:      "fivelevel",
		Scenarios: jobs,
		Reduce: func(res engine.Results[Result]) (FiveLevelResult, error) {
			var out FiveLevelResult
			for _, levels := range depths {
				def, okD := res.Get(fmt.Sprintf("%d-level/default", levels))
				mag, okM := res.Get(fmt.Sprintf("%d-level/ptemagnet", levels))
				if !okD || !okM {
					continue
				}
				out.Entries = append(out.Entries, FiveLevelEntry{
					Levels:            levels,
					WalkCyclesDefault: def.Walk.WalkCycles,
					WalkCyclesMagnet:  mag.Walk.WalkCycles,
					SpeedupMagnet:     mag.Speedup(def),
				})
			}
			return out, res.FailedErr()
		},
	}
}

// RunFiveLevelComparisonCtx runs the comparison through the given engine.
func RunFiveLevelComparisonCtx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (FiveLevelResult, error) {
	return engine.Execute(ctx, e, FiveLevelSet(sc, seed))
}

// String renders the comparison.
func (r FiveLevelResult) String() string {
	var b strings.Builder
	b.WriteString("Extension: four- vs five-level paging (§2.5), pagerank + objdet\n")
	fmt.Fprintf(&b, "  %-8s  %20s  %20s  %s\n", "levels", "walk cycles default", "walk cycles ptemagnet", "PTEM speedup")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %-8d  %20d  %20d  %+.1f%%\n",
			e.Levels, e.WalkCyclesDefault, e.WalkCyclesMagnet, e.SpeedupMagnet)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// §6.1 — overhead-freedom on low-TLB-pressure applications
// ---------------------------------------------------------------------------

// LowPressureEntry is one small-footprint benchmark's comparison.
type LowPressureEntry struct {
	Benchmark  string
	SpeedupPct float64
	// TLBMissPct is the steady-phase TLB miss rate under the default
	// policy (low by construction).
	TLBMissPct float64
}

// LowPressureResult verifies the §6.1 claim that applications with
// infrequent TLB misses see 0-1% improvement and are never slowed down —
// the property that makes PTEMagnet safe to deploy unconditionally.
type LowPressureResult struct {
	Entries []LowPressureEntry
}

// lowPressureBenchmarks are the small-footprint variants under study.
var lowPressureBenchmarks = []string{"gcc", "omnetpp", "xz"}

// LowPressureSet declares small-footprint variants (working sets within
// TLB reach) of three benchmarks: the colocated default/PTEMagnet pair
// plus a solo default run per benchmark (the walker counters in a
// colocated run mix in the co-runner's misses, so the benchmark's own
// TLB pressure is measured from the solo run).
func LowPressureSet(sc Scale, seed int64) engine.Set[Result, LowPressureResult] {
	small := sc
	// Footprints near the STLB reach (1024 entries × 4KB = 4MB): almost
	// every access is a TLB hit, so there is nothing for PTEMagnet to
	// accelerate — and nothing it may slow down.
	small.DatasetBytes = 3 << 20
	var jobs []engine.Scenario[Result]
	for _, b := range lowPressureBenchmarks {
		jobs = append(jobs, pairJobs(b, Scenario{
			Benchmark: b, Corunners: []string{"objdet"},
			Scale: small, Seed: seed,
		})...)
		jobs = append(jobs, scenarioJob(b+"/solo", Scenario{
			Benchmark: b, Policy: guestos.PolicyDefault, Scale: small, Seed: seed,
		}))
	}
	return engine.Set[Result, LowPressureResult]{
		Name:      "lowpressure",
		Scenarios: jobs,
		Reduce: func(res engine.Results[Result]) (LowPressureResult, error) {
			var out LowPressureResult
			for _, b := range lowPressureBenchmarks {
				def, okD := res.Get(b + "/default")
				mag, okM := res.Get(b + "/ptemagnet")
				solo, okS := res.Get(b + "/solo")
				if !okD || !okM || !okS {
					continue
				}
				missPct := 0.0
				if solo.Walk.Lookups > 0 {
					missPct = 100 * float64(solo.Walk.TLBMisses()) / float64(solo.Walk.Lookups)
				}
				out.Entries = append(out.Entries, LowPressureEntry{
					Benchmark:  b,
					SpeedupPct: mag.Speedup(def),
					TLBMissPct: missPct,
				})
			}
			return out, res.FailedErr()
		},
	}
}

// RunLowPressureCtx runs the study through the given engine.
func RunLowPressureCtx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (LowPressureResult, error) {
	return engine.Execute(ctx, e, LowPressureSet(sc, seed))
}

// String renders the study.
func (r LowPressureResult) String() string {
	var b strings.Builder
	b.WriteString("Section 6.1: low-TLB-pressure applications (paper: 0-1% improvement, never negative)\n")
	fmt.Fprintf(&b, "  %-10s  %14s  %s\n", "benchmark", "TLB miss rate", "PTEMagnet improvement")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %-10s  %13.2f%%  %+.2f%%\n", e.Benchmark, e.TLBMissPct, e.SpeedupPct)
	}
	return b.String()
}
