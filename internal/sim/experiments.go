package sim

import (
	"context"
	"fmt"
	"strings"

	"ptemagnet/internal/engine"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/nested"
)

// scenarioJob adapts one sim scenario to an engine scenario: the closure
// captures the fully specified Scenario (including its seed) at set
// declaration time, so the result depends only on the declaration, never
// on execution order.
func scenarioJob(name string, s Scenario) engine.Scenario[Result] {
	return engine.Scenario[Result]{Name: name, Run: func(ctx context.Context) (Result, error) {
		return RunCtx(ctx, s)
	}}
}

// pairJobs declares the default-vs-PTEMagnet pair of s under
// "<prefix>/default" and "<prefix>/ptemagnet".
func pairJobs(prefix string, s Scenario) []engine.Scenario[Result] {
	def := s
	def.Policy = guestos.PolicyDefault
	mag := s
	mag.Policy = guestos.PolicyPTEMagnet
	return []engine.Scenario[Result]{
		scenarioJob(prefix+"/default", def),
		scenarioJob(prefix+"/ptemagnet", mag),
	}
}

// MetricRow is one line of a paper-versus-measured comparison table.
type MetricRow struct {
	Metric   string
	Paper    string
	Measured string
}

func formatRows(title string, rows []MetricRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := 0
	for _, r := range rows {
		if len(r.Metric) > w {
			w = len(r.Metric)
		}
	}
	fmt.Fprintf(&b, "  %-*s  %-12s  %s\n", w, "metric", "paper", "measured")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-*s  %-12s  %s\n", w, r.Metric, r.Paper, r.Measured)
	}
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%+.0f%%", v) }

func change(base, now uint64) string {
	return pct(metrics.PercentChange(float64(base), float64(now)))
}

// ---------------------------------------------------------------------------
// Table 1 — fragmentation effects (§3.3)
// ---------------------------------------------------------------------------

// Table1Result compares pagerank colocated with stress-ng against standalone
// execution, both on the default kernel, with the co-runner stopped at the
// init boundary (the paper's §3.3 methodology).
type Table1Result struct {
	Isolation Result
	Colocated Result
	Rows      []MetricRow
}

// Table1Set declares the Table 1 scenario set: isolation and colocation
// runs reduced into the paper-versus-measured rows.
func Table1Set(sc Scale, seed int64) engine.Set[Result, Table1Result] {
	return engine.Set[Result, Table1Result]{
		Name: "table1",
		Scenarios: []engine.Scenario[Result]{
			scenarioJob("isolation", Scenario{
				Benchmark: "pagerank", Policy: guestos.PolicyDefault,
				Scale: sc, Seed: seed,
			}),
			scenarioJob("colocated", Scenario{
				Benchmark: "pagerank", Corunners: []string{"stress-ng"},
				Policy: guestos.PolicyDefault, StopCorunnersAtInit: true,
				Scale: sc, Seed: seed,
			}),
		},
		Reduce: func(res engine.Results[Result]) (Table1Result, error) {
			if err := res.FailedErr(); err != nil {
				return Table1Result{}, err
			}
			iso, _ := res.Get("isolation")
			col, _ := res.Get("colocated")
			r := Table1Result{Isolation: iso, Colocated: col}
			r.Rows = []MetricRow{
				{"Execution time", "+11%", change(iso.Task.SteadyCycles, col.Task.SteadyCycles)},
				{"Cache misses (data)", "<1%", change(dataMemServed(iso), dataMemServed(col))},
				{"TLB misses", "<1%", change(iso.Walk.TLBMisses(), col.Walk.TLBMisses())},
				{"Page walk cycles", "+61%", change(iso.Walk.WalkCycles, col.Walk.WalkCycles)},
				{"Cycles traversing host PT", "+117%", change(iso.Walk.Cycles[nested.DimHost], col.Walk.Cycles[nested.DimHost])},
				{"Guest PT accesses served by memory", "+3%", change(iso.Walk.MemServed(nested.DimGuest), col.Walk.MemServed(nested.DimGuest))},
				{"Host PT accesses served by memory", "+283%", change(iso.Walk.MemServed(nested.DimHost), col.Walk.MemServed(nested.DimHost))},
				{"Host PT fragmentation", "+242% (2.8→6.8)", fmt.Sprintf("%s (%.1f→%.1f)",
					pct(metrics.PercentChange(iso.Task.Frag.Mean, col.Task.Frag.Mean)),
					iso.Task.Frag.Mean, col.Task.Frag.Mean)},
				{"Fully scattered 8-page regions", "63%", fmt.Sprintf("%.0f%%", col.Task.Frag.FullyScattered*100)},
			}
			return r, nil
		},
	}
}

// RunTable1Ctx reproduces Table 1 through the given engine.
func RunTable1Ctx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (Table1Result, error) {
	return engine.Execute(ctx, e, Table1Set(sc, seed))
}

func dataMemServed(r Result) uint64 {
	return r.Task.SteadyDataServed[len(r.Task.SteadyDataServed)-1]
}

// String renders the comparison.
func (r Table1Result) String() string {
	return formatRows("Table 1: pagerank + stress-ng vs standalone (default kernel)", r.Rows)
}

// ---------------------------------------------------------------------------
// Figures 5, 6, 7 — per-benchmark suites (§6.1)
// ---------------------------------------------------------------------------

// SuiteEntry is one benchmark's default-vs-PTEMagnet comparison.
type SuiteEntry struct {
	Benchmark   string
	FragDefault float64
	FragMagnet  float64
	// SpeedupPct is PTEMagnet's performance improvement over default.
	SpeedupPct    float64
	CyclesDefault uint64
	CyclesMagnet  uint64
}

// SuiteResult covers all benchmarks under one co-runner set.
type SuiteResult struct {
	Corunners      []string
	Entries        []SuiteEntry
	GeomeanSpeedup float64
}

// SuiteRepeats is how many seeds each (benchmark, policy) pair is averaged
// over in the figure suites, standing in for the paper's 40-run averaging
// (the simulator is deterministic per seed, so seeds replace jitter).
const SuiteRepeats = 3

func suiteJobName(bench string, repeat int, policy guestos.AllocPolicy) string {
	return fmt.Sprintf("%s/r%d/%v", bench, repeat, policy)
}

// SuiteSet declares a figure suite: every benchmark under both policies
// with the given co-runners (running throughout, as in §6.1), repeats
// seeds per pair, reduced into per-benchmark averages and the geomean.
// The seed of repeat r is seed + r*1000, the harness's historical
// formula. A benchmark whose runs failed is dropped from the entries and
// surfaces through the returned error; the surviving entries are still
// reduced (graceful degradation per scenario).
func SuiteSet(benchmarks, corunners []string, sc Scale, seed int64, repeats int) engine.Set[Result, SuiteResult] {
	if repeats < 1 {
		repeats = 1
	}
	// Snapshot the lists: sets must be immutable after declaration.
	benchmarks = append([]string(nil), benchmarks...)
	corunners = append([]string(nil), corunners...)
	var jobs []engine.Scenario[Result]
	for _, b := range benchmarks {
		for r := 0; r < repeats; r++ {
			s := Scenario{
				Benchmark: b, Corunners: corunners, Scale: sc,
				Seed: seed + int64(r)*1000,
			}
			def := s
			def.Policy = guestos.PolicyDefault
			mag := s
			mag.Policy = guestos.PolicyPTEMagnet
			jobs = append(jobs,
				scenarioJob(suiteJobName(b, r, guestos.PolicyDefault), def),
				scenarioJob(suiteJobName(b, r, guestos.PolicyPTEMagnet), mag))
		}
	}
	return engine.Set[Result, SuiteResult]{
		Name:      "suite",
		Scenarios: jobs,
		Reduce: func(res engine.Results[Result]) (SuiteResult, error) {
			out := SuiteResult{Corunners: corunners}
			var ratios []float64
			for _, b := range benchmarks {
				var defCycles, magCycles uint64
				var defFrag, magFrag float64
				complete := true
				for r := 0; r < repeats; r++ {
					def, okd := res.Get(suiteJobName(b, r, guestos.PolicyDefault))
					mag, okm := res.Get(suiteJobName(b, r, guestos.PolicyPTEMagnet))
					if !okd || !okm {
						complete = false
						break
					}
					defCycles += def.Task.SteadyCycles
					magCycles += mag.Task.SteadyCycles
					defFrag += def.Task.Frag.Mean
					magFrag += mag.Task.Frag.Mean
				}
				if !complete {
					continue
				}
				out.Entries = append(out.Entries, SuiteEntry{
					Benchmark:     b,
					FragDefault:   defFrag / float64(repeats),
					FragMagnet:    magFrag / float64(repeats),
					SpeedupPct:    metrics.Speedup(defCycles, magCycles),
					CyclesDefault: defCycles / uint64(repeats),
					CyclesMagnet:  magCycles / uint64(repeats),
				})
				ratios = append(ratios, float64(defCycles)/float64(magCycles))
			}
			if len(ratios) > 0 {
				out.GeomeanSpeedup = (metrics.Geomean(ratios) - 1) * 100
			}
			return out, res.FailedErr()
		},
	}
}

// runSuite executes a suite set on the default engine (tests and the
// compatibility wrappers below).
func runSuite(benchmarks []string, corunners []string, sc Scale, seed int64, repeats int) (SuiteResult, error) {
	return engine.Execute(context.Background(), nil, SuiteSet(benchmarks, corunners, sc, seed, repeats))
}

// ObjdetSuiteSet declares the Figures 5/6 suite: every benchmark
// colocated with objdet, averaged over SuiteRepeats seeds.
func ObjdetSuiteSet(sc Scale, seed int64) engine.Set[Result, SuiteResult] {
	return SuiteSet(Benchmarks, []string{"objdet"}, sc, seed, SuiteRepeats)
}

// CombinationSuiteSet declares the Figure 7 suite: every benchmark
// colocated with the full Table 3 co-runner combination.
func CombinationSuiteSet(sc Scale, seed int64) engine.Set[Result, SuiteResult] {
	return SuiteSet(Benchmarks, Corunners, sc, seed, SuiteRepeats)
}

// RunObjdetSuiteCtx reproduces Figures 5 and 6 through the given engine.
func RunObjdetSuiteCtx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (SuiteResult, error) {
	return engine.Execute(ctx, e, ObjdetSuiteSet(sc, seed))
}

// RunCombinationSuiteCtx reproduces Figure 7 through the given engine.
func RunCombinationSuiteCtx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (SuiteResult, error) {
	return engine.Execute(ctx, e, CombinationSuiteSet(sc, seed))
}

// String renders the suite as the two paper charts: fragmentation (Fig 5)
// and performance improvement (Fig 6/7).
func (s SuiteResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Co-runners: %s\n", strings.Join(sortedCopy(s.Corunners), ", "))
	fmt.Fprintf(&b, "  %-10s  %18s  %17s  %s\n", "benchmark", "frag default", "frag ptemagnet", "improvement")
	for _, e := range s.Entries {
		fmt.Fprintf(&b, "  %-10s  %18.2f  %17.2f  %+6.1f%%\n",
			e.Benchmark, e.FragDefault, e.FragMagnet, e.SpeedupPct)
	}
	fmt.Fprintf(&b, "  %-10s  %18s  %17s  %+6.1f%%\n", "geomean", "", "", s.GeomeanSpeedup)
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 4 — PTEMagnet hardware metrics (§6.3)
// ---------------------------------------------------------------------------

// Table4Result compares pagerank + objdet under PTEMagnet against the
// default kernel (co-runner running throughout).
type Table4Result struct {
	Default Result
	Magnet  Result
	Rows    []MetricRow
}

// Table4Set declares the Table 4 pair.
func Table4Set(sc Scale, seed int64) engine.Set[Result, Table4Result] {
	return engine.Set[Result, Table4Result]{
		Name: "table4",
		Scenarios: pairJobs("pagerank+objdet", Scenario{
			Benchmark: "pagerank", Corunners: []string{"objdet"},
			Scale: sc, Seed: seed,
		}),
		Reduce: func(res engine.Results[Result]) (Table4Result, error) {
			if err := res.FailedErr(); err != nil {
				return Table4Result{}, err
			}
			def, _ := res.Get("pagerank+objdet/default")
			mag, _ := res.Get("pagerank+objdet/ptemagnet")
			r := Table4Result{Default: def, Magnet: mag}
			r.Rows = []MetricRow{
				{"Host PT fragmentation", "-66% (3.4→1.2)", fmt.Sprintf("%s (%.1f→%.1f)",
					pct(metrics.PercentChange(def.Task.Frag.Mean, mag.Task.Frag.Mean)),
					def.Task.Frag.Mean, mag.Task.Frag.Mean)},
				{"Execution time", "-7%", change(def.Task.SteadyCycles, mag.Task.SteadyCycles)},
				{"Page walk cycles", "-17%", change(def.Walk.WalkCycles, mag.Walk.WalkCycles)},
				{"Cycles traversing host PT", "-26%", change(def.Walk.Cycles[nested.DimHost], mag.Walk.Cycles[nested.DimHost])},
				{"Guest PT accesses served by memory", "-1%", change(def.Walk.MemServed(nested.DimGuest), mag.Walk.MemServed(nested.DimGuest))},
				{"Host PT accesses served by memory", "-13%", change(def.Walk.MemServed(nested.DimHost), mag.Walk.MemServed(nested.DimHost))},
			}
			return r, nil
		},
	}
}

// RunTable4Ctx reproduces Table 4 through the given engine.
func RunTable4Ctx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (Table4Result, error) {
	return engine.Execute(ctx, e, Table4Set(sc, seed))
}

// String renders the comparison.
func (r Table4Result) String() string {
	return formatRows("Table 4: pagerank + objdet, PTEMagnet vs default kernel", r.Rows)
}
