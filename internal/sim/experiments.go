package sim

import (
	"fmt"
	"strings"

	"ptemagnet/internal/guestos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/nested"
)

// MetricRow is one line of a paper-versus-measured comparison table.
type MetricRow struct {
	Metric   string
	Paper    string
	Measured string
}

func formatRows(title string, rows []MetricRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := 0
	for _, r := range rows {
		if len(r.Metric) > w {
			w = len(r.Metric)
		}
	}
	fmt.Fprintf(&b, "  %-*s  %-12s  %s\n", w, "metric", "paper", "measured")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-*s  %-12s  %s\n", w, r.Metric, r.Paper, r.Measured)
	}
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%+.0f%%", v) }

func change(base, now uint64) string {
	return pct(metrics.PercentChange(float64(base), float64(now)))
}

// ---------------------------------------------------------------------------
// Table 1 — fragmentation effects (§3.3)
// ---------------------------------------------------------------------------

// Table1Result compares pagerank colocated with stress-ng against standalone
// execution, both on the default kernel, with the co-runner stopped at the
// init boundary (the paper's §3.3 methodology).
type Table1Result struct {
	Isolation Result
	Colocated Result
	Rows      []MetricRow
}

// RunTable1 reproduces Table 1.
func RunTable1(sc Scale, seed int64) (Table1Result, error) {
	iso, err := Run(Scenario{
		Benchmark: "pagerank", Policy: guestos.PolicyDefault,
		Scale: sc, Seed: seed,
	})
	if err != nil {
		return Table1Result{}, err
	}
	col, err := Run(Scenario{
		Benchmark: "pagerank", Corunners: []string{"stress-ng"},
		Policy: guestos.PolicyDefault, StopCorunnersAtInit: true,
		Scale: sc, Seed: seed,
	})
	if err != nil {
		return Table1Result{}, err
	}
	r := Table1Result{Isolation: iso, Colocated: col}
	r.Rows = []MetricRow{
		{"Execution time", "+11%", change(iso.Task.SteadyCycles, col.Task.SteadyCycles)},
		{"Cache misses (data)", "<1%", change(dataMemServed(iso), dataMemServed(col))},
		{"TLB misses", "<1%", change(iso.Walk.TLBMisses(), col.Walk.TLBMisses())},
		{"Page walk cycles", "+61%", change(iso.Walk.WalkCycles, col.Walk.WalkCycles)},
		{"Cycles traversing host PT", "+117%", change(iso.Walk.Cycles[nested.DimHost], col.Walk.Cycles[nested.DimHost])},
		{"Guest PT accesses served by memory", "+3%", change(iso.Walk.MemServed(nested.DimGuest), col.Walk.MemServed(nested.DimGuest))},
		{"Host PT accesses served by memory", "+283%", change(iso.Walk.MemServed(nested.DimHost), col.Walk.MemServed(nested.DimHost))},
		{"Host PT fragmentation", "+242% (2.8→6.8)", fmt.Sprintf("%s (%.1f→%.1f)",
			pct(metrics.PercentChange(iso.Task.Frag.Mean, col.Task.Frag.Mean)),
			iso.Task.Frag.Mean, col.Task.Frag.Mean)},
		{"Fully scattered 8-page regions", "63%", fmt.Sprintf("%.0f%%", col.Task.Frag.FullyScattered*100)},
	}
	return r, nil
}

func dataMemServed(r Result) uint64 {
	return r.Task.SteadyDataServed[len(r.Task.SteadyDataServed)-1]
}

// String renders the comparison.
func (r Table1Result) String() string {
	return formatRows("Table 1: pagerank + stress-ng vs standalone (default kernel)", r.Rows)
}

// ---------------------------------------------------------------------------
// Figures 5, 6, 7 — per-benchmark suites (§6.1)
// ---------------------------------------------------------------------------

// SuiteEntry is one benchmark's default-vs-PTEMagnet comparison.
type SuiteEntry struct {
	Benchmark   string
	FragDefault float64
	FragMagnet  float64
	// SpeedupPct is PTEMagnet's performance improvement over default.
	SpeedupPct    float64
	CyclesDefault uint64
	CyclesMagnet  uint64
}

// SuiteResult covers all benchmarks under one co-runner set.
type SuiteResult struct {
	Corunners      []string
	Entries        []SuiteEntry
	GeomeanSpeedup float64
}

// SuiteRepeats is how many seeds each (benchmark, policy) pair is averaged
// over in the figure suites, standing in for the paper's 40-run averaging
// (the simulator is deterministic per seed, so seeds replace jitter).
const SuiteRepeats = 3

// runSuite runs every benchmark under both policies with the given
// co-runners (running throughout, as in §6.1), averaging cycles and
// fragmentation over `repeats` seeds.
func runSuite(benchmarks []string, corunners []string, sc Scale, seed int64, repeats int) (SuiteResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	res := SuiteResult{Corunners: corunners}
	var ratios []float64
	for _, b := range benchmarks {
		var defCycles, magCycles uint64
		var defFrag, magFrag float64
		for r := 0; r < repeats; r++ {
			def, mag, err := RunPair(Scenario{
				Benchmark: b, Corunners: corunners, Scale: sc,
				Seed: seed + int64(r)*1000,
			})
			if err != nil {
				return SuiteResult{}, fmt.Errorf("%s: %w", b, err)
			}
			defCycles += def.Task.SteadyCycles
			magCycles += mag.Task.SteadyCycles
			defFrag += def.Task.Frag.Mean
			magFrag += mag.Task.Frag.Mean
		}
		e := SuiteEntry{
			Benchmark:     b,
			FragDefault:   defFrag / float64(repeats),
			FragMagnet:    magFrag / float64(repeats),
			SpeedupPct:    metrics.Speedup(defCycles, magCycles),
			CyclesDefault: defCycles / uint64(repeats),
			CyclesMagnet:  magCycles / uint64(repeats),
		}
		res.Entries = append(res.Entries, e)
		ratios = append(ratios, float64(defCycles)/float64(magCycles))
	}
	res.GeomeanSpeedup = (metrics.Geomean(ratios) - 1) * 100
	return res, nil
}

// RunObjdetSuite reproduces Figures 5 and 6: every benchmark colocated with
// objdet, default vs PTEMagnet, averaged over SuiteRepeats seeds.
func RunObjdetSuite(sc Scale, seed int64) (SuiteResult, error) {
	return runSuite(Benchmarks, []string{"objdet"}, sc, seed, SuiteRepeats)
}

// RunCombinationSuite reproduces Figure 7: every benchmark colocated with
// the full Table 3 co-runner combination, averaged over SuiteRepeats seeds.
func RunCombinationSuite(sc Scale, seed int64) (SuiteResult, error) {
	return runSuite(Benchmarks, Corunners, sc, seed, SuiteRepeats)
}

// String renders the suite as the two paper charts: fragmentation (Fig 5)
// and performance improvement (Fig 6/7).
func (s SuiteResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Co-runners: %s\n", strings.Join(sortedCopy(s.Corunners), ", "))
	fmt.Fprintf(&b, "  %-10s  %18s  %17s  %s\n", "benchmark", "frag default", "frag ptemagnet", "improvement")
	for _, e := range s.Entries {
		fmt.Fprintf(&b, "  %-10s  %18.2f  %17.2f  %+6.1f%%\n",
			e.Benchmark, e.FragDefault, e.FragMagnet, e.SpeedupPct)
	}
	fmt.Fprintf(&b, "  %-10s  %18s  %17s  %+6.1f%%\n", "geomean", "", "", s.GeomeanSpeedup)
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 4 — PTEMagnet hardware metrics (§6.3)
// ---------------------------------------------------------------------------

// Table4Result compares pagerank + objdet under PTEMagnet against the
// default kernel (co-runner running throughout).
type Table4Result struct {
	Default Result
	Magnet  Result
	Rows    []MetricRow
}

// RunTable4 reproduces Table 4.
func RunTable4(sc Scale, seed int64) (Table4Result, error) {
	def, mag, err := RunPair(Scenario{
		Benchmark: "pagerank", Corunners: []string{"objdet"},
		Scale: sc, Seed: seed,
	})
	if err != nil {
		return Table4Result{}, err
	}
	r := Table4Result{Default: def, Magnet: mag}
	r.Rows = []MetricRow{
		{"Host PT fragmentation", "-66% (3.4→1.2)", fmt.Sprintf("%s (%.1f→%.1f)",
			pct(metrics.PercentChange(def.Task.Frag.Mean, mag.Task.Frag.Mean)),
			def.Task.Frag.Mean, mag.Task.Frag.Mean)},
		{"Execution time", "-7%", change(def.Task.SteadyCycles, mag.Task.SteadyCycles)},
		{"Page walk cycles", "-17%", change(def.Walk.WalkCycles, mag.Walk.WalkCycles)},
		{"Cycles traversing host PT", "-26%", change(def.Walk.Cycles[nested.DimHost], mag.Walk.Cycles[nested.DimHost])},
		{"Guest PT accesses served by memory", "-1%", change(def.Walk.MemServed(nested.DimGuest), mag.Walk.MemServed(nested.DimGuest))},
		{"Host PT accesses served by memory", "-13%", change(def.Walk.MemServed(nested.DimHost), mag.Walk.MemServed(nested.DimHost))},
	}
	return r, nil
}

// String renders the comparison.
func (r Table4Result) String() string {
	return formatRows("Table 4: pagerank + objdet, PTEMagnet vs default kernel", r.Rows)
}
