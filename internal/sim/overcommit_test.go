package sim

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"ptemagnet/internal/engine"
	"ptemagnet/internal/obs"
)

// collectOvercommit runs the overcommit sweep through an engine with the
// given worker count, returning the reduced result and the collected
// RunRecords with timing zeroed.
func collectOvercommit(t *testing.T, workers int) (OvercommitResult, []obs.RunRecord) {
	t.Helper()
	c := &obs.Collector{}
	ctx := obs.WithCollector(context.Background(), c)
	res, err := engine.Execute(ctx, engine.New(workers), OvercommitSet(QuickScale(), testSeed))
	if err != nil {
		t.Fatal(err)
	}
	recs := c.Records()
	for i := range recs {
		recs[i].ElapsedMS = 0
	}
	return res, recs
}

// TestOvercommitTelemetryDeterministicAcrossWorkerCounts extends the
// determinism contract to the overcommitted host: balloon decisions are
// keyed to event counts, so both the rendered table and the RunRecord
// JSONL — balloon.* counters included — must be byte-identical for 1 and
// 4 workers.
func TestOvercommitTelemetryDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism check")
	}
	serialRes, serial := collectOvercommit(t, 1)
	parallelRes, parallel := collectOvercommit(t, 4)

	if serialRes.String() != parallelRes.String() {
		t.Errorf("rendered sweep differs between 1 and 4 workers:\n--- 1 worker ---\n%s--- 4 workers ---\n%s",
			serialRes.String(), parallelRes.String())
	}
	var a, b bytes.Buffer
	if err := obs.WriteJSONL(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("overcommit RunRecord JSONL differs between 1 and 4 workers:\n--- 1 worker ---\n%s--- 4 workers ---\n%s",
			a.String(), b.String())
	}

	// Every record must carry the balloon counter group, and the sweep as
	// a whole must show real balloon work (the higher ratios cannot fit
	// without it).
	var unbacked uint64
	for _, rec := range serial {
		n, ok := rec.Counters.Get("balloon.unbacked_frames")
		if !ok {
			t.Fatalf("record %s/%s missing balloon.unbacked_frames", rec.Set, rec.Scenario)
		}
		unbacked += n
	}
	if unbacked == 0 {
		t.Error("no record shows any unbacked frame — the sweep never ballooned")
	}
}

// TestOvercommitCompletesWithoutOOM pins the acceptance bar: every
// configuration up to 2× completes with zero surfaced OOMError, the
// balloon doing real work at the higher ratios, and PTEMagnet's host
// fragmentation no worse than the default allocator's under the same
// pressure.
func TestOvercommitCompletesWithoutOOM(t *testing.T) {
	res, err := RunOvercommitCtx(context.Background(), nil, QuickScale(), testSeed)
	if err != nil {
		t.Fatalf("overcommitted sweep surfaced an error: %v", err)
	}
	if len(res.Rows) != 2*len(OvercommitRatios) {
		t.Fatalf("%d rows, want %d", len(res.Rows), 2*len(OvercommitRatios))
	}
	for _, row := range res.Rows {
		if row.Failed {
			t.Errorf("row %s failed", row.Name)
		}
		if row.CombinedGuestBytes <= row.HostMemBytes {
			t.Errorf("row %s not actually overcommitted: %d guest bytes on a %d host",
				row.Name, row.CombinedGuestBytes, row.HostMemBytes)
		}
	}
	for _, ratio := range OvercommitRatios {
		def, okD := res.rowFor(ratio, "default")
		mag, okM := res.rowFor(ratio, "ptemagnet")
		if !okD || !okM {
			t.Fatalf("ratio %d%% missing a policy row", ratio)
		}
		if ratio >= 150 && (def.Balloon.UnbackedFrames == 0 || mag.Balloon.UnbackedFrames == 0) {
			t.Errorf("ratio %d%% survived without unbacking (def %d, mag %d) — not under pressure",
				ratio, def.Balloon.UnbackedFrames, mag.Balloon.UnbackedFrames)
		}
		if mag.HostFragMean > def.HostFragMean {
			t.Errorf("ratio %d%%: PTEMagnet host frag %.3f worse than default %.3f",
				ratio, mag.HostFragMean, def.HostFragMean)
		}
	}
	if !strings.Contains(res.String(), "every configuration completed") {
		t.Error("rendered table does not state the zero-OOM outcome")
	}
}

// TestOvercommitExhaustionYieldsPartialResults pins graceful degradation
// in the reduce step: a job that dies (here: scripted to fail, standing
// in for ballooning genuinely running dry) becomes a Failed row alongside
// the completed ones, the error rides along, and the table marks it.
func TestOvercommitExhaustionYieldsPartialResults(t *testing.T) {
	set := OvercommitSet(QuickScale(), testSeed)
	doomed := set.Scenarios[len(set.Scenarios)-1].Name
	scripted := errors.New("balloon relief exhausted")
	set.Scenarios[len(set.Scenarios)-1].Run = func(context.Context) (OvercommitRunResult, error) {
		return OvercommitRunResult{}, scripted
	}
	res, err := engine.Execute(context.Background(), engine.New(1), set)
	if !errors.Is(err, scripted) {
		t.Fatalf("err = %v, want the scripted failure", err)
	}
	if len(res.Rows) != 2*len(OvercommitRatios) {
		t.Fatalf("%d rows, want %d including the failed one", len(res.Rows), 2*len(OvercommitRatios))
	}
	var failed, completed int
	for _, row := range res.Rows {
		if row.Failed {
			failed++
			if row.Name != doomed {
				t.Errorf("unexpected failed row %s", row.Name)
			}
			continue
		}
		completed++
	}
	if failed != 1 || completed != 2*len(OvercommitRatios)-1 {
		t.Errorf("failed=%d completed=%d, want 1 and %d", failed, completed, 2*len(OvercommitRatios)-1)
	}
	if out := res.String(); !strings.Contains(out, "FAILED") {
		t.Errorf("rendered table does not mark the failed row:\n%s", out)
	}
}

// TestBuildOvercommitMachineValidation pins the constructor's input
// checks.
func TestBuildOvercommitMachineValidation(t *testing.T) {
	if _, err := BuildOvercommitMachine(OvercommitScenario{RatioPct: 150, NumVMs: 1, Scale: QuickScale()}); err == nil {
		t.Error("single-tenant scenario accepted")
	}
	if _, err := BuildOvercommitMachine(OvercommitScenario{RatioPct: 90, NumVMs: 4, Scale: QuickScale()}); err == nil {
		t.Error("undercommitted ratio accepted")
	}
}
