package sim

import (
	"context"
	"reflect"
	"testing"

	"ptemagnet/internal/engine"
)

// TestObjdetSuiteDeterministicAcrossWorkerCounts is the engine's
// determinism regression test: the objdet suite (the Figures 5/6
// measurement) must reduce to byte-identical output whether its scenarios
// run serially or through a 4-worker pool. Scenario seeds are fixed at
// set-declaration time and results are keyed by name, so worker count and
// completion order must not leak into any metric.
func TestObjdetSuiteDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism check")
	}
	serial, err := RunObjdetSuiteCtx(context.Background(), engine.New(1), QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunObjdetSuiteCtx(context.Background(), engine.New(4), QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("objdet suite differs between 1 and 4 workers:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if s, p := serial.String(), parallel.String(); s != p {
		t.Errorf("rendered suite output not byte-identical:\n--- 1 worker ---\n%s--- 4 workers ---\n%s", s, p)
	}
}

// TestSuiteDeterministicAcrossRepeatedRuns runs the same reduced set
// twice with different worker counts and asserts equality — catching
// any hidden shared state between runs as well as order sensitivity.
func TestSuiteDeterministicAcrossRepeatedRuns(t *testing.T) {
	set := func() engine.Set[Result, SuiteResult] {
		return SuiteSet([]string{"gcc", "xz"}, []string{"objdet"}, QuickScale(), testSeed, 2)
	}
	first, err := engine.Execute(context.Background(), engine.New(2), set())
	if err != nil {
		t.Fatal(err)
	}
	second, err := engine.Execute(context.Background(), engine.New(3), set())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("repeated runs differ:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if f, s := first.String(), second.String(); f != s {
		t.Errorf("rendered output not byte-identical:\n--- first ---\n%s--- second ---\n%s", f, s)
	}
}

// TestTable1DeterministicParallel pins the same contract on a set whose
// reduce reads specific named results rather than aggregating.
func TestTable1DeterministicParallel(t *testing.T) {
	a, err := RunTable1Ctx(context.Background(), engine.New(1), QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTable1Ctx(context.Background(), engine.New(4), QuickScale(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Table 1 differs between 1 and 4 workers")
	}
}
