package sim

import (
	"context"
	"strings"
	"testing"
)

// TestExperimentRegistryShape pins the registry's contract: unique names,
// stable "all" membership (the opt-in sweeps stay out), and alias
// resolution, including the fig6 alias that spans two experiments.
func TestExperimentRegistryShape(t *testing.T) {
	infos := Experiments()
	if len(infos) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, info := range infos {
		if info.Name == "" || info.Title == "" {
			t.Errorf("experiment %+v missing name or title", info)
		}
		if seen[info.Name] {
			t.Errorf("duplicate experiment name %q", info.Name)
		}
		seen[info.Name] = true
	}
	for _, optIn := range []string{"multitenant", "migration", "chaos", "overcommit"} {
		if !seen[optIn] {
			t.Errorf("experiment %q not registered", optIn)
		}
	}

	all, err := MatchExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range all {
		if info.Name == "multitenant" || info.Name == "migration" || info.Name == "chaos" || info.Name == "overcommit" {
			t.Errorf("opt-in experiment %q selected by \"all\"", info.Name)
		}
		if !info.InAll {
			t.Errorf("%q selected by \"all\" without InAll", info.Name)
		}
	}
	if len(all) != len(infos)-4 {
		t.Errorf("\"all\" selected %d of %d experiments, want all but the four opt-ins", len(all), len(infos))
	}

	fig6, err := MatchExperiments("fig6")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig6) != 2 || fig6[0].Name != "objdet-suite" || fig6[1].Name != "lowpressure" {
		t.Errorf("fig6 resolved to %+v, want objdet-suite then lowpressure", fig6)
	}
	fig5, err := MatchExperiments("fig5")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig5) != 1 || fig5[0].Name != "objdet-suite" {
		t.Errorf("fig5 resolved to %+v, want objdet-suite only", fig5)
	}

	if _, err := MatchExperiments("no-such-experiment"); err == nil {
		t.Error("unknown selector matched")
	}
}

// TestRunExperimentDispatch runs the fastest registry entry end to end and
// pins the unknown-name error path.
func TestRunExperimentDispatch(t *testing.T) {
	r, err := RunExperiment(context.Background(), "locking", WithScale(QuickScale()), WithSeed(testSeed))
	if err != nil {
		t.Fatal(err)
	}
	if r == nil || !strings.Contains(r.String(), "ns/fault") {
		t.Errorf("locking ablation rendered %q", r)
	}
	if _, err := RunExperiment(context.Background(), "no-such-experiment", WithScale(QuickScale()), WithSeed(testSeed)); err == nil {
		t.Error("unknown experiment ran")
	}
}
