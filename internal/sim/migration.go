// Live-migration scenario set: a colocated guest (pagerank + stress-ng) is
// paused at a quarter of its access budget and pre-copy-migrated onto a
// busy destination host, then run to completion there. The sweep contrasts
// the default allocator with PTEMagnet and demonstrates the central
// consequence of §3.2: host-PT fragmentation is a property of the
// gva→gpa mapping, so it travels with the guest image — migration neither
// cures a fragmented default guest nor costs PTEMagnet its packing.
package sim

import (
	"context"
	"fmt"
	"strings"

	"ptemagnet/internal/cache"
	"ptemagnet/internal/engine"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/metrics"
	"ptemagnet/internal/migrate"
	"ptemagnet/internal/nested"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/vm"
)

// MigrationScenario is one live-migration configuration: the source
// guest's allocator policy, the dirty-log sizing, and the shared scale.
type MigrationScenario struct {
	// Policy selects the migrated guest's allocator.
	Policy guestos.AllocPolicy
	// DirtyLogEntries sizes the source's PML-style dirty-log buffer
	// (0 = hostos.DefaultDirtyLogEntries). Undersizing it forces
	// overflow→full-rescan rounds.
	DirtyLogEntries int
	// Scale sizes both hosts and the guest; Seed drives all randomness.
	Scale Scale
	Seed  int64
}

// Fingerprint hashes the full configuration (telemetry identity).
func (s MigrationScenario) Fingerprint() string {
	return obs.Fingerprint(fmt.Sprintf("%+v", s))
}

// Identity returns a human-readable label.
func (s MigrationScenario) Identity() string {
	name := "migrate/" + s.Policy.String()
	if s.DirtyLogEntries != 0 {
		name += fmt.Sprintf("/pml%d", s.DirtyLogEntries)
	}
	return name
}

// MigrationRunResult bundles everything measured in one migration run.
type MigrationRunResult struct {
	// Name is the sweep job name ("" when run outside MigrationSet).
	Name     string
	Scenario MigrationScenario
	// Migration is the copy-protocol report: rounds, page traffic,
	// downtime in access-units.
	Migration migrate.Report
	// FragBefore and FragAfter are the guest's host-PT fragmentation
	// (§3.2, combined over its processes) at the pause point on the source
	// and after completion on the destination.
	FragBefore metrics.FragReport
	FragAfter  metrics.FragReport
	// PostWalk holds the walker counters the guest accumulated on the
	// destination (cold TLBs and walk caches at adoption), and
	// PostAccesses the guest accesses they amortize over.
	PostWalk     nested.Stats
	PostAccesses uint64
	// Report is the destination machine's post-run observation; the
	// migrated guest is its last GuestReport.
	Report vm.Report
}

// PostWalkCyclesPerAccess is the post-migration translation cost.
func (r MigrationRunResult) PostWalkCyclesPerAccess() float64 {
	if r.PostAccesses == 0 {
		return 0
	}
	return float64(r.PostWalk.WalkCycles) / float64(r.PostAccesses)
}

// migrationSource assembles the source machine: the paper's colocation
// (pagerank primary, stress-ng fragmenter) inside one guest.
func migrationSource(s MigrationScenario) (*vm.Machine, error) {
	return BuildMachine(Scenario{
		Benchmark: "pagerank",
		Corunners: []string{"stress-ng"},
		Policy:    s.Policy,
		Scale:     s.Scale,
		Seed:      s.Seed,
	})
}

// migrationDestination assembles the destination host: same sizing and
// quantum as the source so the adopted guest's tasks interleave under the
// same schedule, plus one default-policy pressure tenant that keeps the
// host busy while the migrated guest finishes.
func migrationDestination(s MigrationScenario) (*vm.Machine, error) {
	hc := vm.HostConfig{
		HostMemBytes: s.Scale.HostMemBytes,
		// Quantum 2 matches BuildMachine: aggressive fault interleaving.
		Quantum: 2,
	}
	if s.Scale.LLCBytes != 0 || s.Scale.L2Bytes != 0 {
		cc := cache.DefaultConfig(8)
		if s.Scale.LLCBytes != 0 {
			cc.LLC.SizeBytes = s.Scale.LLCBytes
		}
		if s.Scale.L2Bytes != 0 {
			cc.L2.SizeBytes = s.Scale.L2Bytes
		}
		hc.Cache = cc
	}
	hc.Guests = []vm.GuestConfig{{
		MemBytes: s.Scale.GuestMemBytes,
		Policy:   guestos.PolicyDefault,
		// A seed far outside the source's per-corunner ladder.
		Seed: s.Seed + 500,
	}}
	m, err := vm.NewHost(hc)
	if err != nil {
		return nil, err
	}
	pressure := TenantSpec{Corunners: []string{"stress-ng"}}
	if err := populateGuest(m.Guests()[0], pressure, s.Scale, s.Seed+500); err != nil {
		return nil, err
	}
	return m, nil
}

// guestFrag combines host-PT fragmentation over every process of a guest.
func guestFrag(g *vm.Guest) metrics.FragReport {
	var frag metrics.FragReport
	hpt := g.HostVM().PageTable()
	for _, p := range g.Kernel().Processes() {
		frag = metrics.Combine(frag, metrics.HostPTFragmentation(p.PageTable(), hpt))
	}
	return frag
}

// RunMigrationScenarioCtx executes one migration scenario: run the source
// to a quarter of its access budget, pre-copy-migrate the guest onto a
// busy destination host, finish the run there, and measure what the move
// cost (copy rounds, downtime) and what it preserved (fragmentation).
// When the context carries an obs.Collector it emits one RunRecord with
// the destination machine's counters plus the migrate.* counter group —
// the same telemetry contract as RunCtx.
func RunMigrationScenarioCtx(ctx context.Context, s MigrationScenario) (MigrationRunResult, error) {
	stop := engine.StartTimer()
	src, err := migrationSource(s)
	if err != nil {
		return MigrationRunResult{}, err
	}
	dst, err := migrationDestination(s)
	if err != nil {
		return MigrationRunResult{}, err
	}
	pauseAt := s.Scale.Accesses / 4
	if err := src.RunWith(ctx, vm.WithStopAtAccesses(pauseAt)); err != nil {
		return MigrationRunResult{}, err
	}
	if src.PendingPrimaries() == 0 {
		return MigrationRunResult{}, fmt.Errorf("sim: source finished before the migration point (accesses %d)", pauseAt)
	}
	g := src.Guests()[0]
	res := MigrationRunResult{Scenario: s, FragBefore: guestFrag(g)}
	rep, err := migrate.MigrateCtx(ctx, g, dst, migrate.Options{
		RoundAccesses:   s.Scale.Accesses / 16,
		DirtyLogEntries: s.DirtyLogEntries,
	})
	if err != nil {
		return MigrationRunResult{}, err
	}
	res.Migration = rep
	adopted := g.Snapshot()
	if err := dst.RunWith(ctx); err != nil {
		return MigrationRunResult{}, err
	}
	final := g.Snapshot()
	res.PostWalk = final.Walker.Delta(adopted.Walker)
	res.PostAccesses = final.Accesses - adopted.Accesses
	res.FragAfter = guestFrag(g)
	res.Report = dst.Observe()
	if c := obs.CollectorFrom(ctx); c != nil {
		reg := dst.Registry()
		res.Migration.RegisterObs(reg, "migrate.")
		rec := obs.RunRecord{
			Set:         "adhoc",
			Scenario:    s.Identity(),
			Fingerprint: s.Fingerprint(),
			ElapsedMS:   stop().Milliseconds(),
			Counters:    reg.Snapshot(),
		}
		if info, ok := engine.ScenarioInfoFrom(ctx); ok {
			rec.Set, rec.Scenario = info.Set, info.Scenario
		}
		c.Add(rec)
	}
	return res, nil
}

// migrationJobNames is the sweep's declared job order: the default
// allocator, PTEMagnet, and PTEMagnet with a deliberately undersized
// 32-entry dirty log to exercise the overflow→full-rescan path.
var migrationJobNames = []string{"default", "ptemagnet", "ptemagnet/pml32"}

func migrationJobScenario(name string, sc Scale, seed int64) MigrationScenario {
	s := MigrationScenario{Policy: guestos.PolicyDefault, Scale: sc, Seed: seed}
	switch name {
	case "ptemagnet":
		s.Policy = guestos.PolicyPTEMagnet
	case "ptemagnet/pml32":
		s.Policy = guestos.PolicyPTEMagnet
		s.DirtyLogEntries = 32
	}
	return s
}

// MigrationResult covers the migration sweep, in declared job order.
type MigrationResult struct {
	Entries []MigrationRunResult
}

// MigrationSet declares the migration sweep as an engine set.
func MigrationSet(sc Scale, seed int64) engine.Set[MigrationRunResult, MigrationResult] {
	var jobs []engine.Scenario[MigrationRunResult]
	for _, name := range migrationJobNames {
		s := migrationJobScenario(name, sc, seed)
		jobs = append(jobs, engine.Scenario[MigrationRunResult]{Name: name, Run: func(ctx context.Context) (MigrationRunResult, error) {
			return RunMigrationScenarioCtx(ctx, s)
		}})
	}
	return engine.Set[MigrationRunResult, MigrationResult]{
		Name:      "migration",
		Scenarios: jobs,
		Reduce: func(res engine.Results[MigrationRunResult]) (MigrationResult, error) {
			if err := res.FailedErr(); err != nil {
				return MigrationResult{}, err
			}
			var out MigrationResult
			for _, name := range migrationJobNames {
				r, _ := res.Get(name)
				r.Name = name
				out.Entries = append(out.Entries, r)
			}
			return out, nil
		},
	}
}

// RunMigrationCtx runs the migration sweep through the given engine.
func RunMigrationCtx(ctx context.Context, e *engine.Engine, sc Scale, seed int64) (MigrationResult, error) {
	return engine.Execute(ctx, e, MigrationSet(sc, seed))
}

// String renders the sweep as one table.
func (r MigrationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live migration: pagerank+stress-ng guest moved to a busy host at 1/4 of its budget\n")
	fmt.Fprintf(&b, "  %-16s  %6s  %7s  %7s  %8s  %8s  %4s  %-13s  %s\n",
		"policy", "rounds", "copied", "redirt", "stopcopy", "downtime", "ovf", "frag pre→post", "post-walk cyc/acc")
	for _, e := range r.Entries {
		m := e.Migration
		fmt.Fprintf(&b, "  %-16s  %6d  %7d  %7d  %8d  %8d  %4d  %5.2f → %-5.2f  %.2f\n",
			e.Name, m.Rounds, m.PagesCopied, m.PagesRedirtied, m.StopCopyPages,
			m.DowntimeAccesses, m.LogOverflows,
			e.FragBefore.Mean, e.FragAfter.Mean, e.PostWalkCyclesPerAccess())
	}
	return b.String()
}
