// The chaos sweep: default vs PTEMagnet under escalating deterministic
// fault rates, plus mid-migration fault-and-retry scenarios. Each job
// runs a colocated guest (the migration pairing: pagerank primary,
// stress-ng fragmenter) with a faults.Plan armed on the machine's choke
// points, through the engine's RetryPolicy, so the sweep demonstrates the
// recovery contract end to end: transient buddy failures are absorbed
// in-run by the guest's reclaim/fallback paths, an injected host OOM
// kills the attempt and the retry replays clean, and a mid-migration
// destination OOM (or cancel) aborts cleanly, leaves the source running,
// and succeeds on the next attempt. Exhausted scenarios degrade
// gracefully: the table reports them as failed rows alongside the
// completed ones, with the sweep error carried next to the partial
// result.
package sim

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ptemagnet/internal/balloon"
	"ptemagnet/internal/engine"
	"ptemagnet/internal/faults"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/migrate"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/vm"
)

// DefaultChaosRetry is the retry policy the chaos sweep applies when
// WithRetry is absent: up to three attempts per scenario, retrying only
// transient injected faults.
func DefaultChaosRetry() engine.RetryPolicy {
	return engine.RetryPolicy{MaxAttempts: 3, Retryable: faults.IsTransient}
}

// chaosJob is one sweep scenario: a workload run (base) or a migration
// (mig), with the fault campaign to arm.
type chaosJob struct {
	name      string
	cfg       faults.Config
	base      Scenario
	migration bool
	mig       MigrationScenario
	// balloon arms the host's pressure controller, giving the host-oom
	// chaos site a third outcome besides retry and fail: the injected OOM
	// is absorbed in-run by the balloon-then-retry path (degradation).
	balloon bool
}

// fingerprint hashes the job's full configuration (telemetry identity).
func (j chaosJob) fingerprint() string {
	if j.migration {
		return obs.Fingerprint(fmt.Sprintf("%+v|%+v", j.mig, j.cfg))
	}
	return obs.Fingerprint(fmt.Sprintf("%+v|%+v", j.base, j.cfg))
}

// chaosState accumulates what failed attempts of one scenario left
// behind. Attempts of one scenario run sequentially on one worker, so no
// locking is needed, and the totals are deterministic.
type chaosState struct {
	// failures counts attempts that errored before one succeeded.
	failures int
	// injected counts faults injected by those failed attempts.
	injected uint64
}

// ChaosRunResult is one chaos scenario's outcome (the final attempt's
// measurements plus the retry history filled in by the reduce step).
type ChaosRunResult struct {
	Name string
	// Attempts is the total attempts used (1 = succeeded first try); for
	// a failed row it is the attempts exhausted.
	Attempts int
	// Injected counts faults injected across every attempt, failed ones
	// included.
	Injected uint64
	// Recovered marks scenarios that failed at least once and then
	// succeeded; Failed marks scenarios that exhausted every attempt.
	Recovered bool
	Failed    bool
	// Absorbed counts injected host OOMs the balloon-armed host absorbed
	// in-run instead of failing the attempt — the "degraded" outcome.
	Absorbed uint64
	// Frag is the host-PT fragmentation at the end of the winning run
	// (the primary task's for workload jobs, the migrated guest's for
	// migration jobs).
	Frag float64
	// SteadyCycles is the primary's steady-state cycle total (workload
	// jobs only).
	SteadyCycles uint64
	// Rounds, LogOverflows and Downtime are the migration report's
	// headline counters (migration jobs only).
	Migration    bool
	Rounds       int
	LogOverflows uint64
	Downtime     uint64
}

// ChaosResult is the reduced chaos sweep, in declared job order.
type ChaosResult struct {
	Rows []ChaosRunResult
}

// String renders the sweep as one table.
func (r ChaosResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos: pagerank+stress-ng under injected faults (retry: transient faults only)\n")
	fmt.Fprintf(&b, "  %-20s  %8s  %8s  %-9s  %6s  %12s  %s\n",
		"scenario", "attempts", "injected", "outcome", "frag", "steady-cyc", "migration (rounds/ovf/downtime)")
	for _, row := range r.Rows {
		outcome := "ok"
		if row.Absorbed > 0 {
			outcome = "degraded"
		}
		if row.Recovered {
			outcome = "recovered"
		}
		if row.Failed {
			outcome = "FAILED"
		}
		mig := "-"
		if row.Migration && !row.Failed {
			mig = fmt.Sprintf("%d/%d/%d", row.Rounds, row.LogOverflows, row.Downtime)
		}
		frag := "-"
		steady := "-"
		if !row.Failed {
			frag = fmt.Sprintf("%.2f", row.Frag)
			if !row.Migration {
				steady = fmt.Sprintf("%d", row.SteadyCycles)
			}
		}
		fmt.Fprintf(&b, "  %-20s  %8d  %8d  %-9s  %6s  %12s  %s\n",
			row.Name, row.Attempts, row.Injected, outcome, frag, steady, mig)
	}
	return b.String()
}

// chaosFaultLevels is the built-in escalation ladder for the workload
// jobs. "clean" is the zero-fault control; "mild" injects transient
// buddy-allocation failures the guest absorbs in-run; "heavy" adds an
// injected host OOM that kills the first attempt, forcing a retry.
func chaosFaultLevels(seed int64, override faults.Config) []struct {
	name string
	cfg  faults.Config
} {
	type level = struct {
		name string
		cfg  faults.Config
	}
	if override.Enabled() {
		// WithFaultPlan replaces the ladder: one control plus the
		// caller's campaign, both policies.
		return []level{{name: "clean"}, {name: "custom", cfg: override}}
	}
	mk := func(name string, cfg faults.Config) level {
		cfg.Seed = engine.DeriveSeed(seed, "chaos/faults/"+name)
		return level{name: name, cfg: cfg}
	}
	return []level{
		{name: "clean"},
		mk("mild", faults.Config{BuddyFails: 6, BuddyFailSpan: 1024}),
		mk("heavy", faults.Config{BuddyFails: 24, BuddyFailSpan: 1024, HostOOMs: 1, HostOOMSpan: 128}),
	}
}

// chaosJobs declares the sweep: {default, ptemagnet} × the fault ladder,
// then the migration fault scenarios.
func chaosJobs(sc Scale, seed int64, override faults.Config) []chaosJob {
	var jobs []chaosJob
	policies := []struct {
		name   string
		policy guestos.AllocPolicy
	}{
		{"default", guestos.PolicyDefault},
		{"ptemagnet", guestos.PolicyPTEMagnet},
	}
	for _, p := range policies {
		for _, lvl := range chaosFaultLevels(seed, override) {
			name := p.name + "/" + lvl.name
			jobs = append(jobs, chaosJob{
				name: name,
				cfg:  lvl.cfg,
				base: Scenario{
					Benchmark: "pagerank",
					Corunners: []string{"stress-ng"},
					Policy:    p.policy,
					Scale:     sc,
					Seed:      engine.DeriveSeed(seed, "chaos/"+name),
				},
			})
		}
	}
	// Balloon-armed host OOM: the same injected host OOM as "heavy", but
	// with the pressure controller armed the allocation takes the
	// balloon-then-retry path and the attempt completes — outcome
	// "degraded" rather than recovery-by-retry.
	for _, p := range policies {
		name := p.name + "/oom-absorb"
		cfg := faults.Config{HostOOMs: 1, HostOOMSpan: 128}
		cfg.Seed = engine.DeriveSeed(seed, "chaos/faults/"+name)
		jobs = append(jobs, chaosJob{
			name:    name,
			cfg:     cfg,
			balloon: true,
			base: Scenario{
				Benchmark: "pagerank",
				Corunners: []string{"stress-ng"},
				Policy:    p.policy,
				Scale:     sc,
				Seed:      engine.DeriveSeed(seed, "chaos/"+name),
			},
		})
	}
	// Mid-migration faults: a destination OOM at round 1 with the dirty
	// log forced to overflow (exercising the PR 8 rescan path on the
	// retry too), and a cancel at round 1. Both fail the first attempt
	// and migrate cleanly on the second.
	migJobs := []struct {
		name string
		cfg  faults.Config
	}{
		{"migrate/oom-retry", faults.Config{MigrateDestOOMRound: 1, DirtyLogOverflowEvery: 64}},
		{"migrate/cancel-retry", faults.Config{MigrateCancelRound: 1}},
	}
	for _, mj := range migJobs {
		cfg := mj.cfg
		cfg.Seed = engine.DeriveSeed(seed, "chaos/faults/"+mj.name)
		jobs = append(jobs, chaosJob{
			name:      mj.name,
			cfg:       cfg,
			migration: true,
			mig: MigrationScenario{
				Policy: guestos.PolicyPTEMagnet,
				Scale:  sc,
				Seed:   engine.DeriveSeed(seed, "chaos/"+mj.name),
			},
		})
	}
	return jobs
}

// emitChaosRecord appends the faults.* and retry.* counter groups to the
// run's registry and emits one RunRecord. Only chaos runs register these
// groups, so zero-plan telemetry keeps its pre-injection schema.
func emitChaosRecord(ctx context.Context, stop func() time.Duration, j chaosJob, plan *faults.Plan, st *chaosState, reg *obs.Registry) {
	c := obs.CollectorFrom(ctx)
	if c == nil {
		return
	}
	plan.RegisterObs(reg, "faults.")
	attempt := uint64(plan.Attempt())
	failures := uint64(st.failures)
	priorInjected := st.injected
	reg.Counter("retry.attempt", func() uint64 { return attempt })
	reg.Counter("retry.prior_failures", func() uint64 { return failures })
	reg.Counter("retry.prior_injected", func() uint64 { return priorInjected })
	rec := obs.RunRecord{
		Set:         "adhoc",
		Scenario:    j.name,
		Fingerprint: j.fingerprint(),
		ElapsedMS:   stop().Milliseconds(),
		Counters:    reg.Snapshot(),
	}
	if info, ok := engine.ScenarioInfoFrom(ctx); ok {
		rec.Set, rec.Scenario = info.Set, info.Scenario
	}
	c.Add(rec)
}

// runChaosJob executes one attempt of a chaos job: materialize the
// attempt's plan, arm it, run, and record what was injected. Failures —
// including injected host OOMs surfacing as walker panics — are folded
// into st before returning, so the retry history survives the attempt.
func runChaosJob(ctx context.Context, j chaosJob, st *chaosState) (res ChaosRunResult, err error) {
	stop := engine.StartTimer()
	plan := faults.NewPlan(j.cfg, engine.AttemptFrom(ctx))
	defer func() {
		if p := recover(); p != nil {
			if perr, ok := p.(error); ok {
				err = fmt.Errorf("chaos run failed: %w", perr)
			} else {
				err = fmt.Errorf("chaos run panicked: %v", p)
			}
		}
		if err != nil {
			st.failures++
			st.injected += plan.InjectedTotal()
		}
	}()
	if j.migration {
		return runChaosMigration(ctx, stop, j, plan, st)
	}
	var mod func(*vm.Config)
	if j.balloon {
		mod = func(cfg *vm.Config) { cfg.Balloon = balloon.Config{Enabled: true} }
	}
	m, err := buildMachine(j.base, mod)
	if err != nil {
		return ChaosRunResult{}, err
	}
	m.InstallFaultPlan(plan)
	sampleEvery := j.base.Scale.Accesses / 64
	if sampleEvery == 0 {
		sampleEvery = 1024
	}
	if err := m.RunWith(ctx, vm.WithSampleEvery(sampleEvery)); err != nil {
		return ChaosRunResult{}, err
	}
	report := m.Observe()
	res = ChaosRunResult{
		Name:         j.name,
		Injected:     plan.InjectedTotal(),
		Absorbed:     plan.AbsorbedHostOOMs(),
		Frag:         report.Tasks[0].Frag.Mean,
		SteadyCycles: report.Tasks[0].SteadyCycles,
	}
	emitChaosRecord(ctx, stop, j, plan, st, m.Registry())
	return res, nil
}

// runChaosMigration is the migration arm of runChaosJob: pause the
// source at a quarter of its budget, migrate with the plan armed (source
// dirty log + migrate round hooks), and finish on the destination.
func runChaosMigration(ctx context.Context, stop func() time.Duration, j chaosJob, plan *faults.Plan, st *chaosState) (ChaosRunResult, error) {
	src, err := migrationSource(j.mig)
	if err != nil {
		return ChaosRunResult{}, err
	}
	dst, err := migrationDestination(j.mig)
	if err != nil {
		return ChaosRunResult{}, err
	}
	src.InstallFaultPlan(plan)
	pauseAt := j.mig.Scale.Accesses / 4
	if err := src.RunWith(ctx, vm.WithStopAtAccesses(pauseAt)); err != nil {
		return ChaosRunResult{}, err
	}
	if src.PendingPrimaries() == 0 {
		return ChaosRunResult{}, fmt.Errorf("sim: source finished before the migration point (accesses %d)", pauseAt)
	}
	g := src.Guests()[0]
	rep, err := migrate.MigrateCtx(ctx, g, dst, migrate.Options{
		RoundAccesses:   j.mig.Scale.Accesses / 16,
		DirtyLogEntries: j.mig.DirtyLogEntries,
		Faults:          plan,
	})
	if err != nil {
		return ChaosRunResult{}, err
	}
	if err := dst.RunWith(ctx); err != nil {
		return ChaosRunResult{}, err
	}
	res := ChaosRunResult{
		Name:         j.name,
		Migration:    true,
		Injected:     plan.InjectedTotal(),
		Frag:         guestFrag(g).Mean,
		Rounds:       rep.Rounds,
		LogOverflows: rep.LogOverflows,
		Downtime:     rep.DowntimeAccesses,
	}
	if obs.CollectorFrom(ctx) != nil {
		reg := dst.Registry()
		rep.RegisterObs(reg, "migrate.")
	}
	emitChaosRecord(ctx, stop, j, plan, st, dst.Registry())
	return res, nil
}

// ChaosSet declares the chaos sweep as an engine set with its retry
// policy. The reduce step degrades gracefully: exhausted scenarios
// become failed rows with their retry history, the completed rows stand,
// and the scenario errors ride alongside via Results.FailedErr.
func ChaosSet(sc Scale, seed int64, override faults.Config, retry engine.RetryPolicy) engine.Set[ChaosRunResult, ChaosResult] {
	jobs := chaosJobs(sc, seed, override)
	if retry.MaxAttempts == 0 && retry.Retryable == nil {
		retry = DefaultChaosRetry()
	} else if retry.Retryable == nil {
		retry.Retryable = faults.IsTransient
	}
	states := make(map[string]*chaosState, len(jobs))
	var scenarios []engine.Scenario[ChaosRunResult]
	for _, j := range jobs {
		j := j
		st := &chaosState{}
		states[j.name] = st
		scenarios = append(scenarios, engine.Scenario[ChaosRunResult]{
			Name: j.name,
			Run: func(ctx context.Context) (ChaosRunResult, error) {
				return runChaosJob(ctx, j, st)
			},
		})
	}
	return engine.Set[ChaosRunResult, ChaosResult]{
		Name:      "chaos",
		Scenarios: scenarios,
		Retry:     retry,
		Reduce: func(res engine.Results[ChaosRunResult]) (ChaosResult, error) {
			var out ChaosResult
			for _, j := range jobs {
				st := states[j.name]
				if row, ok := res.Get(j.name); ok {
					row.Attempts = st.failures + 1
					row.Injected += st.injected
					row.Recovered = st.failures > 0
					out.Rows = append(out.Rows, row)
					continue
				}
				out.Rows = append(out.Rows, ChaosRunResult{
					Name:      j.name,
					Migration: j.migration,
					Attempts:  st.failures,
					Injected:  st.injected,
					Failed:    true,
				})
			}
			return out, res.FailedErr()
		},
	}
}

// RunChaosCtx runs the chaos sweep through the given engine. Even on
// error the result carries every completed row (partial results).
func RunChaosCtx(ctx context.Context, e *engine.Engine, sc Scale, seed int64, override faults.Config, retry engine.RetryPolicy) (ChaosResult, error) {
	return engine.Execute(ctx, e, ChaosSet(sc, seed, override, retry))
}
