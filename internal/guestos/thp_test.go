package guestos

import (
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/physmem"
)

func thpKernel(t *testing.T) *Kernel {
	t.Helper()
	return NewKernel(Config{MemBytes: 64 << 20, Policy: PolicyTHP, Seed: 1})
}

func TestTHPPromotesEmptyRegion(t *testing.T) {
	k := thpKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 4<<20)
	// mmap bases are only 32KB-aligned; fault somewhere 2MB-coverable.
	target := arch.VirtAddr(arch.AlignUp(uint64(va), pagetable.LargePageBytes))
	kind, err := p.HandlePageFault(target+0x1234, false)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FaultTHP {
		t.Fatalf("kind = %v, want thp", kind)
	}
	if p.RSS() != 512 {
		t.Errorf("RSS = %d, want 512 (whole huge page committed)", p.RSS())
	}
	if !p.PageTable().IsLargeMapped(target) {
		t.Error("region not large-mapped")
	}
	// The next access in the same region is already mapped.
	kind, _ = p.HandlePageFault(target+1<<20, false)
	if kind != FaultAlreadyMapped {
		t.Errorf("second fault kind = %v", kind)
	}
	// The huge page is physically contiguous and 2MB-aligned.
	pa0, _ := p.Translate(target)
	if uint64(pa0)%pagetable.LargePageBytes != 0 {
		t.Errorf("huge page at %#x not 2MB aligned", pa0)
	}
	paMid, _ := p.Translate(target + 1<<20)
	if paMid != pa0+1<<20 {
		t.Errorf("huge page not contiguous")
	}
}

func TestTHPFallsBackWhenRegionNotCovered(t *testing.T) {
	k := thpKernel(t)
	p := mustSpawn(t, k, "a")
	// A VMA smaller than 2MB can never promote.
	va := mustMmap(t, p, 64<<10)
	kind, err := p.HandlePageFault(va, false)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FaultDefault {
		t.Errorf("kind = %v, want default fallback", kind)
	}
	if k.Snapshot().THPFallbacks == 0 {
		t.Error("fallback not counted")
	}
}

func TestTHPFallsBackUnderFragmentation(t *testing.T) {
	// Exhaust large blocks with single-page churn so no order-9 block
	// remains, then fault a THP-eligible region.
	k := thpKernel(t)
	hog := mustSpawn(t, k, "hog")
	hogVA := mustMmap(t, hog, 48<<20)
	// Touch pages sparsely so free memory remains but contiguity is gone:
	// take one page out of every 256 (1MB stride).
	for off := uint64(0); off < 48<<20; off += 1 << 20 {
		if _, err := hog.HandlePageFault(hogVA+arch.VirtAddr(off), false); err != nil {
			t.Fatal(err)
		}
	}
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 4<<20)
	target := arch.VirtAddr(arch.AlignUp(uint64(va), pagetable.LargePageBytes))
	kind, err := p.HandlePageFault(target, false)
	if err != nil {
		t.Fatal(err)
	}
	if kind == FaultTHP {
		// The hog's stride may still leave an order-9 block; verify via
		// the buddy state rather than fail spuriously.
		if k.Memory().Buddy().LargestFreeOrder() < 9 {
			t.Error("THP promoted without an order-9 block")
		}
	} else if kind != FaultDefault {
		t.Errorf("kind = %v", kind)
	}
}

func TestTHPSplitOnPartialFree(t *testing.T) {
	k := thpKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 4<<20)
	target := arch.VirtAddr(arch.AlignUp(uint64(va), pagetable.LargePageBytes))
	p.HandlePageFault(target, false)
	used := k.Memory().UsedFrames()
	// Free one 4KB page in the middle: the huge page must split and only
	// that page's frame return to the allocator.
	if err := p.Free(target+5*arch.PageSize, arch.PageSize); err != nil {
		t.Fatal(err)
	}
	if k.Snapshot().THPSplits != 1 {
		t.Errorf("THPSplits = %d", k.Snapshot().THPSplits)
	}
	if p.PageTable().IsLargeMapped(target) {
		t.Error("region still large-mapped after partial free")
	}
	// One frame freed, one PT node allocated by the demotion: net 0.
	if got := k.Memory().UsedFrames(); got != used {
		t.Errorf("used frames %d → %d, want unchanged (one freed, one node added)", used, got)
	}
	if p.RSS() != 511 {
		t.Errorf("RSS = %d, want 511", p.RSS())
	}
	// Remaining pages still translate to the original physical bytes.
	pa6, ok := p.Translate(target + 6*arch.PageSize)
	if !ok {
		t.Fatal("page 6 unmapped after split")
	}
	pa7, _ := p.Translate(target + 7*arch.PageSize)
	if pa7 != pa6+arch.PageSize {
		t.Error("split broke contiguity")
	}
}

func TestTHPSwapOutSplits(t *testing.T) {
	k := thpKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 4<<20)
	target := arch.VirtAddr(arch.AlignUp(uint64(va), pagetable.LargePageBytes))
	p.HandlePageFault(target, false)
	if !p.SwapOut(target + 17*arch.PageSize) {
		t.Fatal("SwapOut failed")
	}
	if k.Snapshot().THPSplits != 1 {
		t.Errorf("THPSplits = %d", k.Snapshot().THPSplits)
	}
	if _, ok := p.Translate(target + 17*arch.PageSize); ok {
		t.Error("swapped page still mapped")
	}
	if p.RSS() != 511 {
		t.Errorf("RSS = %d", p.RSS())
	}
}

func TestTHPForkSplitsAndShares(t *testing.T) {
	k := thpKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 4<<20)
	target := arch.VirtAddr(arch.AlignUp(uint64(va), pagetable.LargePageBytes))
	p.HandlePageFault(target, false)
	child, err := p.Fork("child")
	if err != nil {
		t.Fatal(err)
	}
	if k.Snapshot().THPSplits != 1 {
		t.Errorf("THPSplits = %d after fork", k.Snapshot().THPSplits)
	}
	// All 512 pages shared COW.
	if child.RSS() != 512 {
		t.Errorf("child RSS = %d", child.RSS())
	}
	pPA, _ := p.Translate(target)
	cPA, _ := child.Translate(target)
	if pPA != cPA {
		t.Error("fork did not share pages")
	}
	// Child COW write copies one page only.
	kind, err := child.HandlePageFault(target, true)
	if err != nil || kind != FaultCOW {
		t.Fatalf("COW: %v %v", kind, err)
	}
	child.Exit()
	p.Exit()
	if k.Memory().UsedFrames() != 0 {
		t.Errorf("%d frames leak", k.Memory().UsedFrames())
	}
}

func TestTHPExitReleasesHugePages(t *testing.T) {
	k := thpKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 8<<20)
	for off := uint64(0); off < 8<<20; off += pagetable.LargePageBytes {
		p.HandlePageFault(va+arch.VirtAddr(off), false)
	}
	if k.Memory().CountKind(physmem.KindUser) < 512 {
		t.Fatal("no huge pages mapped")
	}
	p.Exit()
	if k.Memory().UsedFrames() != 0 {
		t.Errorf("%d frames leak after exit", k.Memory().UsedFrames())
	}
}

func TestTHPInternalFragmentation(t *testing.T) {
	// The §2.3 cost: touching one byte commits 2MB. Compare RSS against
	// the default policy for a sparse toucher.
	touch := func(policy AllocPolicy) uint64 {
		k := NewKernel(Config{MemBytes: 64 << 20, Policy: policy, Seed: 1})
		p := mustSpawn(t, k, "a")
		va := mustMmap(t, p, 16<<20)
		for off := uint64(0); off < 16<<20; off += pagetable.LargePageBytes {
			if _, err := p.HandlePageFault(va+arch.VirtAddr(off)+0x1000, false); err != nil {
				t.Fatal(err)
			}
		}
		return p.RSS()
	}
	def := touch(PolicyDefault)
	thp := touch(PolicyTHP)
	if thp < def*256 {
		t.Errorf("THP RSS %d vs default %d; internal fragmentation not modelled", thp, def)
	}
}
