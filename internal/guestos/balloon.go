// Balloon driver: the guest half of host memory overcommit.
//
// The host sets a per-guest balloon target (in pages); the driver brings
// the number of guest frames it holds to that target. Inflation takes
// frames out of the guest's own buddy allocator — tagged
// physmem.KindBalloon so inspection tools can label them — making them
// unusable by guest processes, which tells the host their backing frames
// can be dropped. Frames come from three sources, tried in order of
// increasing pain, mirroring how a real guest kernel reacts to balloon
// pressure:
//
//  1. free frames straight from the buddy allocator;
//  2. the §4.3 reclaim daemon, run past its watermark gate, breaking
//     PTEMagnet reservations to liberate reserved-but-unmapped pages;
//  3. swapping out mapped pages, chosen by a deterministic FIFO-like
//     cursor over processes in spawn order and ascending virtual
//     address (§4.4: swapping a reserved page dissolves its group).
//
// Deflation pops frames from the tail of the inflation order back into
// the buddy allocator; because the buddy free lists are LIFO, an
// inflate-then-deflate cycle restores them exactly, so post-pressure
// allocation behaviour is identical counter-for-counter to a kernel
// that never ballooned.
package guestos

import (
	"ptemagnet/internal/arch"
	"ptemagnet/internal/physmem"
)

// SwapRecord identifies one guest page the balloon driver swapped out:
// the owning address space and the virtual page. The embedding layer
// uses it to invalidate stale TLB entries for the evicted translation.
type SwapRecord struct {
	ASID uint32
	VA   arch.VirtAddr
}

// BalloonDelta reports the page movements one SetBalloonTarget call
// performed, each slice in event order. Inflated frames are candidates
// for the host to unback; swapped-out pages need TLB invalidation.
type BalloonDelta struct {
	// Inflated lists guest-physical frames newly added to the balloon.
	Inflated []arch.PhysAddr
	// Deflated lists guest-physical frames returned to the guest buddy.
	Deflated []arch.PhysAddr
	// SwappedOut lists pages evicted to satisfy inflation.
	SwappedOut []SwapRecord
}

// BalloonTarget returns the current host-requested balloon size in pages.
func (k *Kernel) BalloonTarget() uint64 { return k.balloonTarget }

// BalloonPages returns the number of guest frames the balloon holds.
func (k *Kernel) BalloonPages() uint64 { return uint64(len(k.balloonPages)) }

// SetBalloonTarget sets the balloon size to target pages and moves the
// balloon toward it immediately: inflating (free frames, then reservation
// reclaim, then swap-out — see the package comment) or deflating.
// Inflation is best-effort; the returned delta says how far it got. The
// reclaim daemon's pressure check runs after every target update, not
// only on the allocation path: inflation raises used memory past the
// watermark without a single page fault, and the daemon must still fire.
func (k *Kernel) SetBalloonTarget(target uint64) BalloonDelta {
	k.balloonTarget = target
	var delta BalloonDelta
	for uint64(len(k.balloonPages)) < target {
		pa, ok := k.inflateOnePage(&delta)
		if !ok {
			break
		}
		k.balloonPages = append(k.balloonPages, pa)
		delta.Inflated = append(delta.Inflated, pa)
	}
	for uint64(len(k.balloonPages)) > target {
		pa := k.balloonPages[len(k.balloonPages)-1]
		k.balloonPages = k.balloonPages[:len(k.balloonPages)-1]
		k.mem.FreeBlock(pa)
		delta.Deflated = append(delta.Deflated, pa)
	}
	k.checkPressure()
	return delta
}

// balloonReserveFrames is the emergency floor the balloon never eats
// into: page-table node allocations have no reclaim or deflate fallback,
// so a handful of free frames must survive any inflation (enough for a
// full root-to-leaf node chain with slack).
const balloonReserveFrames = 8

// balloonAlloc takes one frame for the balloon, refusing to dip into the
// emergency reserve.
func (k *Kernel) balloonAlloc() (arch.PhysAddr, bool) {
	if k.mem.FreeFrames() <= balloonReserveFrames {
		return arch.NoPhysAddr, false
	}
	return k.mem.AllocFrame(physmem.KindBalloon, k.own(0))
}

// inflateOnePage produces one frame for the balloon, escalating from
// free frames through reservation reclaim to swap-out. Swap records are
// appended to delta as they happen.
func (k *Kernel) inflateOnePage(delta *BalloonDelta) (arch.PhysAddr, bool) {
	pa, ok := k.balloonAlloc()
	if ok {
		return pa, true
	}
	// The daemon run ignores the watermark gate: the goal is a free
	// frame, however little memory is nominally used.
	k.reclaimUntil(func() bool { return k.mem.FreeFrames() > balloonReserveFrames })
	if pa, ok = k.balloonAlloc(); ok {
		return pa, true
	}
	for {
		rec, swapped := k.swapOutColdPage()
		if !swapped {
			return arch.NoPhysAddr, false
		}
		delta.SwappedOut = append(delta.SwappedOut, rec)
		// A swap of a COW-shared frame frees nothing (the sharer keeps
		// it); keep evicting until a frame materialises or nothing is
		// left to evict.
		if pa, ok = k.balloonAlloc(); ok {
			return pa, true
		}
	}
}

// deflateOnOOM is the physmem empty-pool handler (the virtio-balloon
// "deflate on OOM" feature): when any single-frame allocation finds the
// guest pool exhausted, balloon frames are released — newest first, the
// same LIFO order as ordinary deflation — until the free pool clears the
// emergency reserve or the balloon is empty. The target is clamped to
// what the balloon still holds so the next host-side target update does
// not immediately re-inflate what OOM just released. It reports whether
// anything was freed (i.e. whether a retry is worthwhile).
func (k *Kernel) deflateOnOOM(physmem.FrameKind) bool {
	freed := false
	for len(k.balloonPages) > 0 && k.mem.FreeFrames() <= balloonReserveFrames {
		tail := k.balloonPages[len(k.balloonPages)-1]
		k.balloonPages = k.balloonPages[:len(k.balloonPages)-1]
		k.mem.FreeBlock(tail)
		freed = true
	}
	if freed {
		k.balloonTarget = uint64(len(k.balloonPages))
	}
	return freed
}

// swapOutColdPage evicts the next page under the balloon driver's FIFO
// cursor: processes in spawn order, ascending virtual addresses, each
// mapped page visited at most once per call. It reports the evicted
// page, or ok=false when no process has an evictable page left.
func (k *Kernel) swapOutColdPage() (SwapRecord, bool) {
	live := k.Processes()
	if len(live) == 0 {
		return SwapRecord{}, false
	}
	if k.swapProc >= len(live) {
		k.swapProc, k.swapVA = 0, 0
	}
	// One extra iteration wraps around to re-scan the cursor process's
	// pages below the cursor address.
	for n := 0; n <= len(live); n++ {
		idx := (k.swapProc + n) % len(live)
		p := live[idx]
		start := arch.VirtAddr(0)
		if n == 0 {
			start = k.swapVA
		}
		end := arch.VirtAddr(^uint64(0))
		if n == len(live) {
			end = k.swapVA
		}
		for {
			va, found := p.nextMappedPage(start)
			if !found || va >= end {
				break
			}
			k.swapProc, k.swapVA = idx, va+arch.PageSize
			if p.SwapOut(va) {
				return SwapRecord{ASID: p.asid, VA: va}, true
			}
			start = va + arch.PageSize
		}
	}
	return SwapRecord{}, false
}

// nextMappedPage returns the lowest mapped page at or above start, in
// VMA order (VMAs are sorted by construction: the mmap bump pointer only
// grows).
func (p *Process) nextMappedPage(start arch.VirtAddr) (arch.VirtAddr, bool) {
	for _, region := range p.vmas {
		if region.end <= start {
			continue
		}
		va := region.start
		if start > va {
			va = start.PageBase()
		}
		for ; va < region.end; va += arch.PageSize {
			if _, _, ok := p.pt.Translate(va); ok {
				return va, true
			}
		}
	}
	return 0, false
}
