package guestos

import (
	"errors"
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/physmem"
)

func defaultKernel(t *testing.T) *Kernel {
	t.Helper()
	return NewKernel(Config{MemBytes: 64 << 20, Policy: PolicyDefault, Seed: 1})
}

func magnetKernel(t *testing.T) *Kernel {
	t.Helper()
	return NewKernel(Config{MemBytes: 64 << 20, Policy: PolicyPTEMagnet, Seed: 1})
}

func mustSpawn(t *testing.T, k *Kernel, name string) *Process {
	t.Helper()
	p, err := k.Spawn(name, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustMmap(t *testing.T, p *Process, bytes uint64) arch.VirtAddr {
	t.Helper()
	va, err := p.Mmap(bytes)
	if err != nil {
		t.Fatal(err)
	}
	return va
}

func TestMmapIsEager(t *testing.T) {
	k := defaultKernel(t)
	p := mustSpawn(t, k, "a")
	used := k.Memory().UsedFrames()
	va := mustMmap(t, p, 1<<20)
	if k.Memory().UsedFrames() != used {
		t.Error("mmap allocated physical memory eagerly")
	}
	if uint64(va)%arch.GroupBytes != 0 {
		t.Errorf("mmap base %#x not group aligned", uint64(va))
	}
	if p.RSS() != 0 {
		t.Errorf("RSS = %d before any fault", p.RSS())
	}
}

func TestFaultOutsideVMA(t *testing.T) {
	k := defaultKernel(t)
	p := mustSpawn(t, k, "a")
	if _, err := p.HandlePageFault(0x1234, false); !errors.Is(err, ErrNoVMA) {
		t.Errorf("err = %v, want ErrNoVMA", err)
	}
}

func TestDefaultFaultAllocatesOnePage(t *testing.T) {
	k := defaultKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 1<<20)
	kind, err := p.HandlePageFault(va, false)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FaultDefault {
		t.Errorf("kind = %v", kind)
	}
	if p.RSS() != 1 {
		t.Errorf("RSS = %d", p.RSS())
	}
	pa, ok := p.Translate(va)
	if !ok {
		t.Fatal("page not mapped after fault")
	}
	if k.Memory().Kind(pa) != physmem.KindUser {
		t.Errorf("frame kind = %v", k.Memory().Kind(pa))
	}
	// Second fault on the same page is a no-op.
	kind, err = p.HandlePageFault(va+100, false)
	if err != nil || kind != FaultAlreadyMapped {
		t.Errorf("refault: kind=%v err=%v", kind, err)
	}
}

func TestMagnetFaultReservesGroup(t *testing.T) {
	k := magnetKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 1<<20)
	kind, err := p.HandlePageFault(va, false)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FaultMagnetNew {
		t.Fatalf("kind = %v", kind)
	}
	if got := k.Memory().CountKind(physmem.KindReserved); got != 7 {
		t.Errorf("reserved frames = %d, want 7", got)
	}
	if got := k.Memory().CountOwned(physmem.KindUser, physmem.Own(0, p.PID())); got != 1 {
		t.Errorf("user frames = %d, want 1", got)
	}
	// Remaining group pages are reservation hits, physically contiguous.
	base, _ := p.Translate(va)
	for i := 1; i < 8; i++ {
		kind, err := p.HandlePageFault(va+arch.VirtAddr(i*arch.PageSize), false)
		if err != nil {
			t.Fatal(err)
		}
		if kind != FaultMagnetHit {
			t.Errorf("page %d: kind = %v", i, kind)
		}
		pa, _ := p.Translate(va + arch.VirtAddr(i*arch.PageSize))
		if pa != base+arch.PhysAddr(i*arch.PageSize) {
			t.Errorf("page %d at %#x, want contiguous from %#x", i, pa, base)
		}
	}
	if k.Memory().CountKind(physmem.KindReserved) != 0 {
		t.Error("reserved frames remain after filling group")
	}
	s := k.Snapshot()
	if s.Faults[FaultMagnetNew] != 1 || s.Faults[FaultMagnetHit] != 7 {
		t.Errorf("fault stats = %v", s.Faults)
	}
	if s.BuddyCalls != 1 {
		t.Errorf("BuddyCalls = %d, want 1 (one group alloc for 8 faults)", s.BuddyCalls)
	}
}

func TestMagnetGuaranteesContiguityUnderInterleaving(t *testing.T) {
	// Two colocated processes fault alternately — the scenario that
	// fragments the default allocator. With PTEMagnet each process's
	// groups stay physically contiguous.
	k := magnetKernel(t)
	a := mustSpawn(t, k, "a")
	b := mustSpawn(t, k, "b")
	vaA := mustMmap(t, a, 1<<20)
	vaB := mustMmap(t, b, 1<<20)
	for i := 0; i < 64; i++ {
		if _, err := a.HandlePageFault(vaA+arch.VirtAddr(i*arch.PageSize), false); err != nil {
			t.Fatal(err)
		}
		if _, err := b.HandlePageFault(vaB+arch.VirtAddr(i*arch.PageSize), false); err != nil {
			t.Fatal(err)
		}
	}
	for _, pr := range []struct {
		p  *Process
		va arch.VirtAddr
	}{{a, vaA}, {b, vaB}} {
		for g := 0; g < 8; g++ {
			base, _ := pr.p.Translate(pr.va + arch.VirtAddr(g*arch.GroupBytes))
			if uint64(base)%arch.GroupBytes != 0 {
				t.Errorf("%s group %d base %#x misaligned", pr.p.Name(), g, uint64(base))
			}
			for i := 1; i < 8; i++ {
				pa, _ := pr.p.Translate(pr.va + arch.VirtAddr(g*arch.GroupBytes+i*arch.PageSize))
				if pa != base+arch.PhysAddr(i*arch.PageSize) {
					t.Errorf("%s group %d page %d not contiguous", pr.p.Name(), g, i)
				}
			}
		}
	}
}

func TestDefaultFragmentsUnderInterleaving(t *testing.T) {
	// Sanity-check the phenomenon the paper fixes: with the default
	// policy and interleaved faults, groups are NOT contiguous.
	k := defaultKernel(t)
	a := mustSpawn(t, k, "a")
	b := mustSpawn(t, k, "b")
	vaA := mustMmap(t, a, 1<<20)
	vaB := mustMmap(t, b, 1<<20)
	for i := 0; i < 64; i++ {
		a.HandlePageFault(vaA+arch.VirtAddr(i*arch.PageSize), false)
		b.HandlePageFault(vaB+arch.VirtAddr(i*arch.PageSize), false)
	}
	contiguousGroups := 0
	for g := 0; g < 8; g++ {
		base, _ := a.Translate(vaA + arch.VirtAddr(g*arch.GroupBytes))
		contiguous := true
		for i := 1; i < 8; i++ {
			pa, _ := a.Translate(vaA + arch.VirtAddr(g*arch.GroupBytes+i*arch.PageSize))
			if pa != base+arch.PhysAddr(i*arch.PageSize) {
				contiguous = false
			}
		}
		if contiguous {
			contiguousGroups++
		}
	}
	if contiguousGroups > 2 {
		t.Errorf("%d/8 groups contiguous under interleaved default allocation; fragmentation not reproduced", contiguousGroups)
	}
}

func TestEnableThreshold(t *testing.T) {
	k := NewKernel(Config{
		MemBytes:             64 << 20,
		Policy:               PolicyPTEMagnet,
		EnableThresholdBytes: 16 << 20,
		Seed:                 1,
	})
	big, _ := k.Spawn("big", 32<<20)
	small, _ := k.Spawn("small", 1<<20)
	if big.Part() == nil {
		t.Error("big process did not get PTEMagnet")
	}
	if small.Part() != nil {
		t.Error("small process got PTEMagnet below threshold")
	}
	va := mustMmap(t, small, 1<<20)
	kind, err := small.HandlePageFault(va, false)
	if err != nil || kind != FaultDefault {
		t.Errorf("small process fault: kind=%v err=%v", kind, err)
	}
}

func TestFreeReturnsPageToReservation(t *testing.T) {
	k := magnetKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 1<<20)
	p.HandlePageFault(va, false)
	p.HandlePageFault(va+arch.PageSize, false)
	pa0, _ := p.Translate(va)
	if err := p.Free(va, arch.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Translate(va); ok {
		t.Error("page still mapped after free")
	}
	if k.Memory().Kind(pa0) != physmem.KindReserved {
		t.Errorf("freed frame kind = %v, want reserved", k.Memory().Kind(pa0))
	}
	// Refault gets the same frame back.
	kind, _ := p.HandlePageFault(va, false)
	if kind != FaultMagnetHit {
		t.Errorf("refault kind = %v", kind)
	}
	pa, _ := p.Translate(va)
	if pa != pa0 {
		t.Errorf("refault pa = %#x, want %#x", pa, pa0)
	}
}

func TestFreeLastPageDissolvesReservation(t *testing.T) {
	k := magnetKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 1<<20)
	p.HandlePageFault(va, false)
	used := k.Memory().UsedFrames()
	if err := p.Free(va, arch.PageSize); err != nil {
		t.Fatal(err)
	}
	// The whole 8-page group returns to the buddy allocator.
	if got := used - k.Memory().UsedFrames(); got != 8 {
		t.Errorf("free released %d frames, want 8", got)
	}
	if p.Part().Live() != 0 {
		t.Errorf("live reservations = %d", p.Part().Live())
	}
}

func TestFreeOfFullyMappedGroupUsesDefaultPath(t *testing.T) {
	k := magnetKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 1<<20)
	for i := 0; i < 8; i++ {
		p.HandlePageFault(va+arch.VirtAddr(i*arch.PageSize), false)
	}
	used := k.Memory().UsedFrames()
	p.Free(va, arch.PageSize)
	if got := used - k.Memory().UsedFrames(); got != 1 {
		t.Errorf("free of one page released %d frames", got)
	}
}

func TestMunmap(t *testing.T) {
	k := magnetKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 1<<20)
	for i := 0; i < 32; i++ {
		p.HandlePageFault(va+arch.VirtAddr(i*arch.PageSize), false)
	}
	if err := p.Munmap(va); err != nil {
		t.Fatal(err)
	}
	if k.Memory().UsedFrames() != uint64(p.PageTable().NodeCount()) {
		t.Errorf("frames remain after munmap: used=%d ptnodes=%d",
			k.Memory().UsedFrames(), p.PageTable().NodeCount())
	}
	if _, err := p.HandlePageFault(va, false); !errors.Is(err, ErrNoVMA) {
		t.Errorf("fault after munmap: %v", err)
	}
	if err := p.Munmap(va); !errors.Is(err, ErrBadRange) {
		t.Errorf("double munmap: %v", err)
	}
}

func TestReclaimDaemonUnderPressure(t *testing.T) {
	// Small memory, low watermark: reservations must be reclaimed instead
	// of the kernel running out.
	k := NewKernel(Config{
		MemBytes:         4 << 20, // 1024 frames
		Policy:           PolicyPTEMagnet,
		ReclaimWatermark: 0.5,
		Seed:             7,
	})
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 3<<20)
	// Touch one page per group: worst-case 7 unused pages per group.
	pages := (3 << 20) / arch.GroupBytes
	for i := 0; i < pages; i++ {
		if _, err := p.HandlePageFault(va+arch.VirtAddr(i*arch.GroupBytes), false); err != nil {
			t.Fatalf("fault %d: %v", i, err)
		}
	}
	s := k.Snapshot()
	if s.ReclaimedReservations == 0 {
		t.Error("no reservations reclaimed under pressure")
	}
	if k.UnusedReservedPages() > int(0.6*float64(k.Memory().NumFrames())) {
		t.Errorf("unused reserved pages = %d, pressure not relieved", k.UnusedReservedPages())
	}
}

func TestOOMFallbackToDefaultPath(t *testing.T) {
	// Exhaust memory so group allocation fails but single pages fit.
	k := NewKernel(Config{
		MemBytes:         1 << 20, // 256 frames
		Policy:           PolicyPTEMagnet,
		ReclaimWatermark: 2.0, // never reclaim: forces the fallback
		Seed:             1,
	})
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 2<<20)
	var err error
	i := 0
	for ; i < 512; i++ {
		if _, err = p.HandlePageFault(va+arch.VirtAddr(i*arch.PageSize), false); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected eventual OOM, got %v after %d pages", err, i)
	}
	if k.Snapshot().OOMFallbacks == 0 {
		t.Error("no fallbacks to the default path before OOM")
	}
	// Most of memory must have been usable (fallback worked): at least
	// 200 of 255 frames.
	if i < 200 {
		t.Errorf("only %d pages mapped before OOM", i)
	}
}

func TestForkCOWSharing(t *testing.T) {
	k := magnetKernel(t)
	p := mustSpawn(t, k, "parent")
	va := mustMmap(t, p, 1<<20)
	for i := 0; i < 8; i++ {
		p.HandlePageFault(va+arch.VirtAddr(i*arch.PageSize), false)
	}
	userFrames := k.Memory().CountKind(physmem.KindUser)
	child, err := p.Fork("child")
	if err != nil {
		t.Fatal(err)
	}
	// Fork allocates page-table nodes for the child but no user frames.
	if k.Memory().CountKind(physmem.KindUser) != userFrames {
		t.Error("fork allocated user frames")
	}
	if child.RSS() != p.RSS() {
		t.Errorf("child RSS = %d, parent %d", child.RSS(), p.RSS())
	}
	// Shared pages translate to the same frames.
	pPA, _ := p.Translate(va)
	cPA, _ := child.Translate(va)
	if pPA != cPA {
		t.Errorf("parent %#x child %#x not shared", pPA, cPA)
	}
	// A read fault is a no-op; a write fault copies.
	kind, err := child.HandlePageFault(va, true)
	if err != nil || kind != FaultCOW {
		t.Fatalf("COW fault: kind=%v err=%v", kind, err)
	}
	cPA2, _ := child.Translate(va)
	if cPA2 == pPA {
		t.Error("write did not copy the frame")
	}
	// Parent writing now finds itself the only sharer: no copy.
	p.HandlePageFault(va, true)
	pPA2, _ := p.Translate(va)
	if pPA2 != pPA {
		t.Error("parent copied a frame it solely owns")
	}
}

func TestForkChildClaimsFromParentReservation(t *testing.T) {
	k := magnetKernel(t)
	p := mustSpawn(t, k, "parent")
	va := mustMmap(t, p, 1<<20)
	// Parent maps pages 0-2 of a group; 3-7 stay reserved.
	for i := 0; i < 3; i++ {
		p.HandlePageFault(va+arch.VirtAddr(i*arch.PageSize), false)
	}
	base, _ := p.Translate(va)
	child, err := p.Fork("child")
	if err != nil {
		t.Fatal(err)
	}
	// Child faults page 3 → claimed from the parent's reservation, so it
	// is physically contiguous with the parent's pages.
	kind, err := child.HandlePageFault(va+3*arch.PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FaultParentClaim {
		t.Fatalf("kind = %v", kind)
	}
	cPA, _ := child.Translate(va + 3*arch.PageSize)
	if cPA != base+3*arch.PageSize {
		t.Errorf("child page at %#x, want %#x", cPA, base+3*arch.PageSize)
	}
	// Parent faulting the same page must NOT get the child's frame.
	kind, err = p.HandlePageFault(va+3*arch.PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if kind == FaultMagnetHit || kind == FaultParentClaim {
		t.Errorf("parent fault kind = %v; frame collision with child", kind)
	}
	pPA, _ := p.Translate(va + 3*arch.PageSize)
	if pPA == cPA {
		t.Error("parent and child share a non-COW frame")
	}
}

func TestFreeSharedFrameDissolvesReservation(t *testing.T) {
	k := magnetKernel(t)
	p := mustSpawn(t, k, "parent")
	va := mustMmap(t, p, 1<<20)
	p.HandlePageFault(va, false) // group live, page 0 mapped
	child, err := p.Fork("child")
	if err != nil {
		t.Fatal(err)
	}
	// Parent frees the shared page: the reservation must dissolve and the
	// frame must survive for the child.
	cPA, _ := child.Translate(va)
	if err := p.Free(va, arch.PageSize); err != nil {
		t.Fatal(err)
	}
	if p.Part().Live() != 0 {
		t.Error("reservation survived freeing of a shared page")
	}
	if k.Memory().Kind(cPA) != physmem.KindUser {
		t.Errorf("child's frame kind = %v after parent free", k.Memory().Kind(cPA))
	}
	// Child still reads its page; freeing from the child now releases it.
	if _, err := child.HandlePageFault(va, false); err != nil {
		t.Fatal(err)
	}
	used := k.Memory().UsedFrames()
	child.Free(va, arch.PageSize)
	if k.Memory().UsedFrames() != used-1 {
		t.Error("child's free did not release the frame")
	}
}

func TestExitReleasesEverything(t *testing.T) {
	k := magnetKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 1<<20)
	for i := 0; i < 20; i++ {
		p.HandlePageFault(va+arch.VirtAddr(i*arch.PageSize), false)
	}
	p.Exit()
	if k.Memory().UsedFrames() != 0 {
		t.Errorf("%d frames leak after exit", k.Memory().UsedFrames())
	}
	if len(k.Processes()) != 0 {
		t.Error("dead process still listed")
	}
	p.Exit() // idempotent
}

func TestExitWithForkKeepsSharedFrames(t *testing.T) {
	k := defaultKernel(t)
	p := mustSpawn(t, k, "parent")
	va := mustMmap(t, p, 1<<20)
	for i := 0; i < 4; i++ {
		p.HandlePageFault(va+arch.VirtAddr(i*arch.PageSize), false)
	}
	child, _ := p.Fork("child")
	ptNodes := uint64(p.PageTable().NodeCount())
	p.Exit()
	_ = ptNodes
	// Child's pages must still be there.
	for i := 0; i < 4; i++ {
		if _, ok := child.Translate(va + arch.VirtAddr(i*arch.PageSize)); !ok {
			t.Errorf("child lost page %d after parent exit", i)
		}
	}
	child.Exit()
	if k.Memory().UsedFrames() != 0 {
		t.Errorf("%d frames leak after both exits", k.Memory().UsedFrames())
	}
}

func TestSparseAdversaryReservationWaste(t *testing.T) {
	// §6.2's adversarial pattern: touch only every 8th page. Unused
	// reserved pages reach 7× the footprint.
	k := magnetKernel(t)
	p := mustSpawn(t, k, "sparse")
	va := mustMmap(t, p, 8<<20)
	groups := (8 << 20) / arch.GroupBytes
	for i := 0; i < groups; i++ {
		p.HandlePageFault(va+arch.VirtAddr(i*arch.GroupBytes), false)
	}
	if got, want := k.UnusedReservedPages(), 7*groups; got != want {
		t.Errorf("unused reserved pages = %d, want %d", got, want)
	}
}

func TestPolicyAndFaultKindStrings(t *testing.T) {
	if PolicyDefault.String() != "default" || PolicyPTEMagnet.String() != "ptemagnet" {
		t.Error("policy strings wrong")
	}
	for k := FaultKind(0); k < NumFaultKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
}

func TestMmapValidation(t *testing.T) {
	k := defaultKernel(t)
	p := mustSpawn(t, k, "a")
	if _, err := p.Mmap(0); !errors.Is(err, ErrBadRange) {
		t.Errorf("Mmap(0): %v", err)
	}
	if err := p.Free(0x1000, 0); !errors.Is(err, ErrBadRange) {
		t.Errorf("Free(len 0): %v", err)
	}
}

func caKernel(t *testing.T) *Kernel {
	t.Helper()
	return NewKernel(Config{MemBytes: 64 << 20, Policy: PolicyCAPaging, Seed: 1})
}

func TestCAPagingSoloRestoresContiguity(t *testing.T) {
	k := caKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 1<<20)
	// Fault pages in a scattered order; CA paging should still place
	// virtual neighbours adjacently when frames are free.
	// The very first faults interleave with page-table-node allocations,
	// so CA placement may miss; once the PT path exists, sequential
	// faults must ride adjacent frames.
	kind0, err := p.HandlePageFault(va, false)
	if err != nil || kind0 != FaultDefault {
		t.Fatalf("first fault: %v %v", kind0, err)
	}
	hits := 0
	for i := 1; i < 32; i++ {
		kind, err := p.HandlePageFault(va+arch.VirtAddr(i*arch.PageSize), false)
		if err != nil {
			t.Fatal(err)
		}
		if kind == FaultCAHit {
			hits++
			prev, _ := p.Translate(va + arch.VirtAddr((i-1)*arch.PageSize))
			cur, _ := p.Translate(va + arch.VirtAddr(i*arch.PageSize))
			if cur != prev+arch.PageSize {
				t.Fatalf("page %d claims ca-hit but is not adjacent: %#x after %#x", i, cur, prev)
			}
		}
	}
	if hits < 28 {
		t.Errorf("only %d/31 sequential solo faults were CA hits", hits)
	}
	// Backwards adjacency: evict a page whose successor stays mapped;
	// the refault must reclaim the frame below the successor's.
	paNext, _ := p.Translate(va + 5*arch.PageSize)
	// Evict pages 3 and 4 so the refault of page 4 has no mapped
	// predecessor — only the backward rule (next page's frame minus one)
	// can serve it.
	if !p.SwapOut(va+4*arch.PageSize) || !p.SwapOut(va+3*arch.PageSize) {
		t.Fatal("SwapOut failed")
	}
	kind2, err := p.HandlePageFault(va+4*arch.PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if kind2 != FaultCAHit {
		t.Errorf("backward fill kind = %v", kind2)
	}
	paRefault, _ := p.Translate(va + 4*arch.PageSize)
	if paRefault != paNext-arch.PageSize {
		t.Errorf("backward fill not adjacent: %#x vs %#x", paRefault, paNext)
	}
}

func TestCAPagingDegradesUnderColocation(t *testing.T) {
	// Two processes alternate faults: the adjacent frame is usually gone
	// by the time the neighbour faults — the paper's argument for eager
	// reservation over best effort.
	k := caKernel(t)
	a := mustSpawn(t, k, "a")
	b := mustSpawn(t, k, "b")
	vaA := mustMmap(t, a, 1<<20)
	vaB := mustMmap(t, b, 1<<20)
	hits, total := 0, 0
	for i := 0; i < 128; i++ {
		kindA, err := a.HandlePageFault(vaA+arch.VirtAddr(i*arch.PageSize), false)
		if err != nil {
			t.Fatal(err)
		}
		// The co-runner faults on 2 of every 3 iterations — enough
		// interference to steal most adjacent frames, with enough gaps
		// that CA paging occasionally still wins.
		if i%3 != 0 {
			if _, err := b.HandlePageFault(vaB+arch.VirtAddr(i*arch.PageSize), false); err != nil {
				t.Fatal(err)
			}
		}
		if i > 0 {
			total++
			if kindA == FaultCAHit {
				hits++
			}
		}
	}
	if hits > total*3/4 {
		t.Errorf("CA paging hit %d/%d under colocation; baseline unrealistically strong", hits, total)
	}
	if hits == 0 {
		t.Error("CA paging never hit at all")
	}
	// Contrast: PTEMagnet under the identical interference keeps every
	// group fully contiguous (verified in
	// TestMagnetGuaranteesContiguityUnderInterleaving); CA paging cannot.
	broken := 0
	for g := 0; g < 16; g++ {
		base, _ := a.Translate(vaA + arch.VirtAddr(g*arch.GroupBytes))
		for i := 1; i < 8; i++ {
			pa, _ := a.Translate(vaA + arch.VirtAddr(g*arch.GroupBytes+i*arch.PageSize))
			if pa != base+arch.PhysAddr(i*arch.PageSize) {
				broken++
				break
			}
		}
	}
	if broken == 0 {
		t.Error("CA paging kept every group contiguous under colocation; interference not modelled")
	}
}

func TestSwapOutDissolvesReservation(t *testing.T) {
	k := magnetKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 1<<20)
	p.HandlePageFault(va, false)
	p.HandlePageFault(va+arch.PageSize, false)
	if p.Part().Live() != 1 {
		t.Fatal("no live reservation")
	}
	used := k.Memory().UsedFrames()
	if !p.SwapOut(va) {
		t.Fatal("SwapOut failed")
	}
	if p.Part().Live() != 0 {
		t.Error("reservation survived SwapOut (§4.4 requires dissolution)")
	}
	// Evicted frame + 6 reserved frames released; page 1 stays mapped.
	if got := used - k.Memory().UsedFrames(); got != 7 {
		t.Errorf("SwapOut released %d frames, want 7", got)
	}
	if _, ok := p.Translate(va); ok {
		t.Error("page still mapped after SwapOut")
	}
	if _, ok := p.Translate(va + arch.PageSize); !ok {
		t.Error("sibling page lost its mapping")
	}
	// Refault goes the default path (group is partially mapped).
	kind, err := p.HandlePageFault(va, false)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FaultDefault {
		t.Errorf("refault kind = %v, want default", kind)
	}
	if !p.SwapOut(va) {
		t.Error("second SwapOut failed")
	}
	if p.SwapOut(va) {
		t.Error("SwapOut of unmapped page succeeded")
	}
}

func TestSwapOutDefaultPolicy(t *testing.T) {
	k := defaultKernel(t)
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 1<<20)
	p.HandlePageFault(va, false)
	used := k.Memory().UsedFrames()
	if !p.SwapOut(va) {
		t.Fatal("SwapOut failed")
	}
	if used-k.Memory().UsedFrames() != 1 {
		t.Error("default-policy SwapOut should release exactly one frame")
	}
}
