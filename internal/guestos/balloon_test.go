package guestos

import (
	"reflect"
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/physmem"
)

func TestBalloonInflateFromFreeFrames(t *testing.T) {
	k := defaultKernel(t)
	delta := k.SetBalloonTarget(10)
	if got := len(delta.Inflated); got != 10 {
		t.Fatalf("inflated %d pages, want 10", got)
	}
	if len(delta.SwappedOut) != 0 || len(delta.Deflated) != 0 {
		t.Errorf("free-frame inflation swapped %d / deflated %d pages, want none",
			len(delta.SwappedOut), len(delta.Deflated))
	}
	if k.BalloonPages() != 10 || k.BalloonTarget() != 10 {
		t.Errorf("balloon holds %d pages toward target %d, want 10/10", k.BalloonPages(), k.BalloonTarget())
	}
	if got := k.Memory().CountKind(physmem.KindBalloon); got != 10 {
		t.Errorf("%d frames tagged KindBalloon, want 10", got)
	}
}

// TestBalloonInflationBreaksReservations pins escalation source 2: when
// free frames run out, inflation runs the reclaim daemon past its
// watermark gate and feeds on liberated PTEMagnet reservations.
func TestBalloonInflationBreaksReservations(t *testing.T) {
	k := NewKernel(Config{MemBytes: 4 << 20, Policy: PolicyPTEMagnet, Seed: 1})
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 3<<20)
	groups := (3 << 20) / arch.GroupBytes
	for i := 0; i < groups; i++ {
		if _, err := p.HandlePageFault(va+arch.VirtAddr(i*arch.GroupBytes), false); err != nil {
			t.Fatalf("fault %d: %v", i, err)
		}
	}
	freeBefore := k.Memory().FreeFrames()
	target := freeBefore + 100 // cannot be met from free frames alone
	delta := k.SetBalloonTarget(target)
	s := k.Snapshot()
	if s.ReclaimedReservations == 0 || s.ReclaimedPages == 0 {
		t.Errorf("inflation past free frames reclaimed %d reservations / %d pages, want both nonzero",
			s.ReclaimedReservations, s.ReclaimedPages)
	}
	if uint64(len(delta.Inflated)) <= freeBefore-balloonReserveFrames {
		t.Errorf("inflated only %d pages with %d free before — reclaim contributed nothing",
			len(delta.Inflated), freeBefore)
	}
	if len(delta.SwappedOut) != 0 {
		t.Errorf("swapped %d pages while reservations were still reclaimable", len(delta.SwappedOut))
	}
}

// TestBalloonSwapOutLastResort pins escalation source 3 and its
// determinism: with nothing free and nothing reserved, inflation evicts
// mapped pages under the FIFO cursor, and two identical kernels evict the
// identical sequence.
func TestBalloonSwapOutLastResort(t *testing.T) {
	build := func() (*Kernel, *Process, arch.VirtAddr) {
		k := NewKernel(Config{MemBytes: 1 << 20, Policy: PolicyDefault, Seed: 1})
		p := mustSpawn(t, k, "a")
		va := mustMmap(t, p, 600<<10)
		for off := uint64(0); off < 600<<10; off += arch.PageSize {
			if _, err := p.HandlePageFault(va+arch.VirtAddr(off), true); err != nil {
				t.Fatalf("fault at %#x: %v", off, err)
			}
		}
		return k, p, va
	}
	k1, _, _ := build()
	target := k1.Memory().FreeFrames() + 40
	d1 := k1.SetBalloonTarget(target)
	if len(d1.SwappedOut) == 0 {
		t.Fatal("inflation past free+reclaimable frames swapped nothing out")
	}
	k2, _, _ := build()
	d2 := k2.SetBalloonTarget(target)
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("identical kernels produced different balloon deltas:\n%+v\n%+v", d1, d2)
	}
	// Swapped pages must really be gone: their translations are dropped.
	if got := k1.Memory().CountKind(physmem.KindBalloon); got != k1.BalloonPages() {
		t.Errorf("kind tags (%d) disagree with balloon bookkeeping (%d)", got, k1.BalloonPages())
	}
}

// TestBalloonDeflateRestoresAllocator pins the satellite contract: after
// an inflate-then-deflate cycle, the kernel's allocation behaviour is
// identical counter-for-counter to a kernel that never ballooned — same
// buddy free lists, same physical placements, same stat deltas.
func TestBalloonDeflateRestoresAllocator(t *testing.T) {
	build := func() (*Kernel, *Process, arch.VirtAddr) {
		k := NewKernel(Config{MemBytes: 16 << 20, Policy: PolicyPTEMagnet, Seed: 1})
		p := mustSpawn(t, k, "a")
		va := mustMmap(t, p, 4<<20)
		for off := uint64(0); off < 1<<20; off += arch.PageSize {
			if _, err := p.HandlePageFault(va+arch.VirtAddr(off), false); err != nil {
				t.Fatalf("fault at %#x: %v", off, err)
			}
		}
		return k, p, va
	}
	cycled, pc, vaC := build()
	pristine, pp, vaP := build()
	if d := cycled.SetBalloonTarget(200); len(d.Inflated) != 200 {
		t.Fatalf("inflated %d pages, want 200", len(d.Inflated))
	}
	if d := cycled.SetBalloonTarget(0); len(d.Deflated) != 200 {
		t.Fatalf("deflated %d pages, want 200", len(d.Deflated))
	}

	if a, b := cycled.Memory().Buddy().FreeBlocksByOrder(), pristine.Memory().Buddy().FreeBlocksByOrder(); a != b {
		t.Errorf("free lists after deflate differ from never-ballooned kernel:\n%v\n%v", a, b)
	}
	if a, b := cycled.Memory().FreeFrames(), pristine.Memory().FreeFrames(); a != b {
		t.Errorf("free frames %d after deflate, pristine kernel has %d", a, b)
	}

	// Identical post-cycle workload lands on identical physical frames
	// with identical counters.
	s1, s2 := cycled.Snapshot(), pristine.Snapshot()
	for off := uint64(1 << 20); off < 2<<20; off += arch.PageSize {
		if _, err := pc.HandlePageFault(vaC+arch.VirtAddr(off), false); err != nil {
			t.Fatal(err)
		}
		if _, err := pp.HandlePageFault(vaP+arch.VirtAddr(off), false); err != nil {
			t.Fatal(err)
		}
		paC, _, okC := pc.pt.Translate(vaC + arch.VirtAddr(off))
		paP, _, okP := pp.pt.Translate(vaP + arch.VirtAddr(off))
		if !okC || !okP || paC != paP {
			t.Fatalf("post-cycle fault at +%#x landed on %#x, pristine kernel on %#x", off, uint64(paC), uint64(paP))
		}
	}
	d1, d2 := cycled.Snapshot().Delta(s1), pristine.Snapshot().Delta(s2)
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("post-cycle stat deltas diverge:\ncycled:   %+v\npristine: %+v", d1, d2)
	}
}

// TestBalloonTargetUpdateFiresReclaim pins that the §4.3 daemon runs on
// balloon-target updates, not only on the allocation path: inflation
// raises used memory past the watermark without a single page fault, and
// the daemon must still fire.
func TestBalloonTargetUpdateFiresReclaim(t *testing.T) {
	k := NewKernel(Config{MemBytes: 4 << 20, Policy: PolicyPTEMagnet, ReclaimWatermark: 0.5, Seed: 1})
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 1<<20)
	groups := (1 << 20) / arch.GroupBytes
	for i := 0; i < groups; i++ {
		if _, err := p.HandlePageFault(va+arch.VirtAddr(i*arch.GroupBytes), false); err != nil {
			t.Fatal(err)
		}
	}
	boundary := k.Memory().NumFrames() / 2
	if used := k.Memory().UsedFrames(); used >= boundary {
		t.Fatalf("setup already past watermark: %d/%d used", used, boundary)
	}
	before := k.Snapshot()
	k.SetBalloonTarget(boundary - k.Memory().UsedFrames() + 20)
	after := k.Snapshot()
	if after.ReclaimRuns == before.ReclaimRuns {
		t.Error("inflation crossed the watermark but the reclaim daemon never ran")
	}
	if after.ReclaimedReservations == before.ReclaimedReservations {
		t.Error("daemon ran without destroying any reservation despite reclaimable groups")
	}
}

// TestBalloonWatermarkBoundary pins the boundary convention: used memory
// at exactly the watermark counts as pressure (>=), one frame below does
// not.
func TestBalloonWatermarkBoundary(t *testing.T) {
	build := func(padTo uint64) *Kernel {
		k := NewKernel(Config{MemBytes: 4 << 20, Policy: PolicyPTEMagnet, ReclaimWatermark: 0.5, Seed: 1})
		p := mustSpawn(t, k, "a")
		va := mustMmap(t, p, 1<<20)
		if _, err := p.HandlePageFault(va, false); err != nil {
			t.Fatal(err)
		}
		for k.Memory().UsedFrames() < padTo {
			if _, ok := k.Memory().AllocFrame(physmem.KindUser, k.own(0)); !ok {
				t.Fatal("pad allocation failed")
			}
		}
		return k
	}

	boundary := NewKernel(Config{MemBytes: 4 << 20}).Memory().NumFrames() / 2

	at := build(boundary)
	before := at.Snapshot()
	at.SetBalloonTarget(at.BalloonPages()) // pure pressure check, no movement
	if after := at.Snapshot(); after.ReclaimRuns == before.ReclaimRuns || after.ReclaimedReservations == 0 {
		t.Errorf("used == watermark did not trigger reclaim (runs %d→%d)", before.ReclaimRuns, after.ReclaimRuns)
	}

	below := build(boundary - 1)
	before = below.Snapshot()
	below.SetBalloonTarget(below.BalloonPages())
	if after := below.Snapshot(); after.ReclaimRuns != before.ReclaimRuns {
		t.Errorf("used == watermark-1 triggered reclaim (runs %d→%d)", before.ReclaimRuns, after.ReclaimRuns)
	}
}

// TestDeflateOnOOMRescuesAllocation pins the virtio-balloon deflate-on-
// OOM feature: an exhausted guest pool releases balloon frames instead of
// failing the allocation, and the target is clamped so the freed frames
// are not immediately re-swallowed.
func TestDeflateOnOOMRescuesAllocation(t *testing.T) {
	k := NewKernel(Config{MemBytes: 1 << 20, Policy: PolicyDefault, Seed: 1})
	if d := k.SetBalloonTarget(200); len(d.Inflated) != 200 {
		t.Fatalf("inflated %d pages, want 200", len(d.Inflated))
	}
	p := mustSpawn(t, k, "a")
	va := mustMmap(t, p, 400<<10)
	for off := uint64(0); off < 400<<10; off += arch.PageSize {
		if _, err := p.HandlePageFault(va+arch.VirtAddr(off), false); err != nil {
			t.Fatalf("fault at %#x died despite a full balloon: %v", off, err)
		}
	}
	if k.BalloonPages() >= 200 {
		t.Errorf("balloon still holds %d pages after OOM pressure, want deflation", k.BalloonPages())
	}
	if k.BalloonTarget() != k.BalloonPages() {
		t.Errorf("target %d not clamped to held pages %d after deflate-on-OOM", k.BalloonTarget(), k.BalloonPages())
	}
}
