// Package guestos simulates the guest Linux kernel's virtual-memory
// subsystem: processes with per-process page tables, eager virtual address
// allocation (mmap), lazy physical allocation on page faults, fork with
// copy-on-write, and free/munmap paths.
//
// Two page-fault allocation policies are provided, the comparison at the
// heart of the paper:
//
//   - PolicyDefault — the stock Linux path: one page from the buddy
//     allocator per fault. Under colocation, interleaved faults from
//     different processes fragment guest-physical memory (§2.4).
//   - PolicyPTEMagnet — the paper's reservation path: the first fault to a
//     32KB group takes the whole aligned eight-page group from the buddy
//     allocator and maps one page; later faults in the group are served
//     from the reservation, guaranteeing guest-physical contiguity (§4.2).
//
// The kernel also implements the §4.3 reclamation daemon (watermark-
// triggered, destroys reservations of a randomly chosen process until
// pressure subsides) and the §4.4 cgroup-style enable threshold and fork
// semantics.
package guestos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/core"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/physmem"
)

// AllocPolicy selects the page-fault allocation path.
type AllocPolicy uint8

const (
	// PolicyDefault is the stock Linux buddy page-at-a-time allocator.
	PolicyDefault AllocPolicy = iota
	// PolicyPTEMagnet is the paper's reservation-based allocator.
	PolicyPTEMagnet
	// PolicyCAPaging is the contiguity-aware-paging baseline from the
	// paper's related work (Alverti et al., ISCA'20): a best-effort
	// allocator that tries to place each faulting page physically
	// adjacent to its virtual neighbour, with no reservation. It restores
	// contiguity when memory is quiet but — the paper's argument against
	// it — degrades under aggressive colocation, because co-runners grab
	// the adjacent frames first.
	PolicyCAPaging
	// PolicyTHP is a transparent-huge-pages baseline (§2.3): the first
	// fault to an empty, fully-VMA-covered 2MB region allocates and maps
	// a whole 2MB page. It shortens guest walks (three levels) and packs
	// host PTEs, but carries the §2.3 costs the paper enumerates:
	// internal fragmentation (512 pages committed per fault), order-9
	// allocation failures under memory fragmentation (falling back to
	// scattered 4KB pages), and splits (demotions) on partial free, COW,
	// and swap.
	PolicyTHP
)

// String names the policy.
func (p AllocPolicy) String() string {
	switch p {
	case PolicyDefault:
		return "default"
	case PolicyPTEMagnet:
		return "ptemagnet"
	case PolicyCAPaging:
		return "capaging"
	case PolicyTHP:
		return "thp"
	default:
		return fmt.Sprintf("AllocPolicy(%d)", uint8(p))
	}
}

// Config parameterizes the guest kernel.
type Config struct {
	// MemBytes is the guest-physical memory size.
	MemBytes uint64
	// Policy selects the fault-time allocator.
	Policy AllocPolicy
	// Magnet configures the PaRT when Policy is PolicyPTEMagnet.
	Magnet core.Config
	// EnableThresholdBytes gates PTEMagnet per process (§4.4): processes
	// whose declared memory limit is below the threshold use the default
	// allocator. Zero enables PTEMagnet for every process.
	EnableThresholdBytes uint64
	// ReclaimWatermark is the used-memory fraction above which the
	// reclaim daemon destroys reservations (§4.3). Zero means 0.95.
	ReclaimWatermark float64
	// Seed drives the daemon's random victim selection.
	Seed int64
	// PTLevels selects the guest page-table depth: 4 (default) or 5
	// (LA57 five-level paging, the §2.5 migration).
	PTLevels int
	// VMID is the host-side id of the VM this kernel runs in. It only
	// tags frame ownership — (VM, process) attribution on a multi-tenant
	// host — and never changes allocation behaviour. Zero is fine for a
	// standalone kernel.
	VMID int
}

// FaultKind classifies how a page fault was satisfied, for cost accounting.
type FaultKind uint8

const (
	// FaultAlreadyMapped: spurious fault; the page was mapped (e.g. by a
	// sibling thread). No work done.
	FaultAlreadyMapped FaultKind = iota
	// FaultDefault: one page allocated from the buddy allocator.
	FaultDefault
	// FaultMagnetNew: a fresh reservation group was allocated from the
	// buddy allocator and the faulting page mapped from it.
	FaultMagnetNew
	// FaultMagnetHit: the page came from an existing reservation — no
	// buddy-allocator call (the fast path §6.4 measures).
	FaultMagnetHit
	// FaultParentClaim: a forked child claimed the page from its parent's
	// reservation (§4.4).
	FaultParentClaim
	// FaultCOW: a write to a copy-on-write page copied the frame.
	FaultCOW
	// FaultCAHit: the CA-paging baseline placed the page physically
	// adjacent to its virtual neighbour.
	FaultCAHit
	// FaultTHP: a whole 2MB huge page was allocated and mapped.
	FaultTHP
	// NumFaultKinds is the number of fault kinds.
	NumFaultKinds
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultAlreadyMapped:
		return "already-mapped"
	case FaultDefault:
		return "default"
	case FaultMagnetNew:
		return "magnet-new"
	case FaultMagnetHit:
		return "magnet-hit"
	case FaultParentClaim:
		return "parent-claim"
	case FaultCOW:
		return "cow"
	case FaultCAHit:
		return "ca-hit"
	case FaultTHP:
		return "thp"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// Stats aggregates kernel activity.
type Stats struct {
	// Faults counts page faults by kind.
	Faults [NumFaultKinds]uint64
	// BuddyCalls counts calls into the buddy allocator from the fault
	// path (each is the slow path the reservation mechanism avoids).
	BuddyCalls uint64
	// ReclaimRuns counts daemon invocations; ReclaimedReservations the
	// reservations it destroyed.
	ReclaimRuns           uint64
	ReclaimedReservations uint64
	ReclaimedPages        uint64
	// OOMFallbacks counts PTEMagnet faults that fell back to the default
	// path because a whole group could not be allocated.
	OOMFallbacks uint64
	// THPFallbacks counts THP faults that fell back to 4KB pages (region
	// not promotable or no order-9 block free); THPSplits counts huge
	// pages demoted by partial free, COW, or swap.
	THPFallbacks uint64
	THPSplits    uint64
}

// Delta returns the counter-wise difference s - prev.
func (s Stats) Delta(prev Stats) Stats {
	var d Stats
	for i := range s.Faults {
		d.Faults[i] = s.Faults[i] - prev.Faults[i]
	}
	d.BuddyCalls = s.BuddyCalls - prev.BuddyCalls
	d.ReclaimRuns = s.ReclaimRuns - prev.ReclaimRuns
	d.ReclaimedReservations = s.ReclaimedReservations - prev.ReclaimedReservations
	d.ReclaimedPages = s.ReclaimedPages - prev.ReclaimedPages
	d.OOMFallbacks = s.OOMFallbacks - prev.OOMFallbacks
	d.THPFallbacks = s.THPFallbacks - prev.THPFallbacks
	d.THPSplits = s.THPSplits - prev.THPSplits
	return d
}

// Errors returned by the kernel.
var (
	// ErrNoVMA reports an access outside any mapped virtual region — the
	// simulated equivalent of SIGSEGV.
	ErrNoVMA = errors.New("guestos: access outside any VMA")
	// ErrOutOfMemory reports guest-physical exhaustion even after reclaim.
	ErrOutOfMemory = errors.New("guestos: out of guest-physical memory")
	// ErrBadRange reports a malformed mmap/free range.
	ErrBadRange = errors.New("guestos: bad address range")
)

// vma is one eagerly allocated virtual region.
type vma struct {
	start, end arch.VirtAddr // [start, end)
}

// Process is one guest process (one colocated application).
type Process struct {
	kernel *Kernel
	pid    int
	asid   uint32
	name   string
	pt     *pagetable.Table
	part   *core.PaRT // nil when the default policy applies to this process
	parent *Process
	vmas   []vma
	// nextMmap is the bump pointer for new VMAs.
	nextMmap arch.VirtAddr
	// memLimit is the cgroup-style declared limit used by the §4.4
	// enable threshold.
	memLimit uint64
	rss      uint64 // mapped user pages
	alive    bool
}

// Kernel is the guest OS kernel.
type Kernel struct {
	cfg  Config
	mem  *physmem.Memory
	rng  *rand.Rand
	next int // next pid
	// procs holds live processes in spawn order.
	procs []*Process
	// shared refcounts frames shared by fork COW; frames absent count 1.
	shared map[arch.PhysAddr]int
	stats  Stats
	// balloonTarget is the host-requested balloon size in pages;
	// balloonPages holds the guest frames currently in the balloon, in
	// inflation order (deflation pops from the tail, so inflate-then-
	// deflate restores the buddy free lists exactly).
	balloonTarget uint64
	balloonPages  []arch.PhysAddr
	// swapProc/swapVA form the balloon driver's eviction cursor: the next
	// (process index, virtual address) its last-resort swap scan resumes
	// from. Advancing monotonically approximates FIFO eviction and keeps
	// repeated scans cheap.
	swapProc int
	swapVA   arch.VirtAddr
}

// mmapBase is where process heaps begin, mirroring the x86-64 mmap region.
const mmapBase arch.VirtAddr = 0x7f00_0000_0000

// NewKernel boots a guest kernel with the given configuration.
func NewKernel(cfg Config) *Kernel {
	if cfg.ReclaimWatermark == 0 {
		cfg.ReclaimWatermark = 0.95
	}
	if cfg.Magnet.GroupPages == 0 {
		cfg.Magnet = core.DefaultConfig()
	}
	if cfg.PTLevels == 0 {
		cfg.PTLevels = 4
	}
	k := &Kernel{
		cfg:    cfg,
		mem:    physmem.New(cfg.MemBytes),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		next:   1,
		shared: make(map[arch.PhysAddr]int),
	}
	// Deflate-on-OOM backstop: any single-frame allocation that finds the
	// pool empty — page-table nodes included — may release balloon frames
	// before failing for good.
	k.mem.SetEmptyHook(k.deflateOnOOM)
	return k
}

// Memory exposes guest-physical memory for inspection.
func (k *Kernel) Memory() *physmem.Memory { return k.mem }

// own tags a frame owner as (this kernel's VM, pid).
func (k *Kernel) own(pid int) physmem.Owner { return physmem.Own(k.cfg.VMID, pid) }

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Snapshot returns a copy of the activity counters.
func (k *Kernel) Snapshot() Stats { return k.stats }

// RegisterObs registers the kernel's counters on r under prefix: one fault
// counter per kind plus the buddy/reclaim/fallback totals.
func (k *Kernel) RegisterObs(r *obs.Registry, prefix string) {
	for kind := FaultKind(0); kind < NumFaultKinds; kind++ {
		kind := kind
		r.Counter(prefix+"faults."+kind.String(), func() uint64 { return k.stats.Faults[kind] })
	}
	r.Counter(prefix+"buddy_calls", func() uint64 { return k.stats.BuddyCalls })
	r.Counter(prefix+"reclaim_runs", func() uint64 { return k.stats.ReclaimRuns })
	r.Counter(prefix+"reclaimed_reservations", func() uint64 { return k.stats.ReclaimedReservations })
	r.Counter(prefix+"reclaimed_pages", func() uint64 { return k.stats.ReclaimedPages })
	r.Counter(prefix+"oom_fallbacks", func() uint64 { return k.stats.OOMFallbacks })
	r.Counter(prefix+"thp_fallbacks", func() uint64 { return k.stats.THPFallbacks })
	r.Counter(prefix+"thp_splits", func() uint64 { return k.stats.THPSplits })
}

// Processes returns the live processes in spawn order.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		if p.alive {
			out = append(out, p)
		}
	}
	return out
}

// Spawn creates a process. memLimit is the declared (cgroup) memory limit
// used by the PTEMagnet enable threshold; pass the expected footprint.
func (k *Kernel) Spawn(name string, memLimit uint64) (*Process, error) {
	pid := k.next
	k.next++
	pt, err := pagetable.NewWithLevels(k.mem, k.own(pid), k.cfg.PTLevels)
	if err != nil {
		return nil, err
	}
	p := &Process{
		kernel:   k,
		pid:      pid,
		asid:     uint32(pid),
		name:     name,
		pt:       pt,
		nextMmap: mmapBase,
		memLimit: memLimit,
		alive:    true,
	}
	if k.magnetEnabledFor(p) {
		part, err := core.New(k.cfg.Magnet)
		if err != nil {
			return nil, fmt.Errorf("guestos: spawn %q: %w", name, err)
		}
		p.part = part
	}
	k.procs = append(k.procs, p)
	return p, nil
}

func (k *Kernel) magnetEnabledFor(p *Process) bool {
	if k.cfg.Policy != PolicyPTEMagnet {
		return false
	}
	return k.cfg.EnableThresholdBytes == 0 || p.memLimit >= k.cfg.EnableThresholdBytes
}

// PID returns the process id.
func (p *Process) PID() int { return p.pid }

// ASID returns the address-space id used for TLB tagging.
func (p *Process) ASID() uint32 { return p.asid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// PageTable exposes the process page table (the guest PT).
func (p *Process) PageTable() *pagetable.Table { return p.pt }

// Part returns the process's PaRT, or nil when PTEMagnet does not apply.
func (p *Process) Part() *core.PaRT { return p.part }

// RSS returns the number of mapped user pages.
func (p *Process) RSS() uint64 { return p.rss }

// Mmap eagerly allocates a virtual region of the given size (rounded up to
// whole pages) and returns its base. Physical memory is not allocated —
// that happens page by page on fault (§2.2).
func (p *Process) Mmap(bytes uint64) (arch.VirtAddr, error) {
	if bytes == 0 {
		return 0, ErrBadRange
	}
	span := arch.PagesToBytes(arch.BytesToPages(bytes))
	// Keep regions group-aligned with a guard gap so reservations of
	// different VMAs never interleave within one group. Under THP, large
	// requests are 2MB-aligned, as Linux's thp_get_unmapped_area does, so
	// whole regions are promotable.
	align := uint64(arch.GroupBytes)
	if p.kernel.cfg.Policy == PolicyTHP && span >= pagetable.LargePageBytes {
		align = pagetable.LargePageBytes
	}
	start := arch.VirtAddr(arch.AlignUp(uint64(p.nextMmap), align))
	end := start + arch.VirtAddr(span)
	if uint64(end) >= uint64(1)<<arch.VABits {
		return 0, ErrBadRange
	}
	p.vmas = append(p.vmas, vma{start: start, end: end})
	p.nextMmap = end + arch.VirtAddr(arch.GroupBytes) // guard gap
	return start, nil
}

// findVMA returns the VMA containing va.
func (p *Process) findVMA(va arch.VirtAddr) (vma, bool) {
	i := sort.Search(len(p.vmas), func(i int) bool { return p.vmas[i].end > va })
	if i < len(p.vmas) && p.vmas[i].start <= va {
		return p.vmas[i], true
	}
	return vma{}, false
}

// Translate performs a logical guest translation without fault handling.
func (p *Process) Translate(va arch.VirtAddr) (arch.PhysAddr, bool) {
	pa, _, ok := p.pt.Translate(va)
	return pa, ok
}

// HandlePageFault resolves a fault at va. write reports whether the access
// is a store (relevant for COW). It returns the fault kind for cost
// accounting.
func (p *Process) HandlePageFault(va arch.VirtAddr, write bool) (FaultKind, error) {
	if !p.alive {
		return 0, fmt.Errorf("guestos: fault in dead process %d", p.pid)
	}
	if _, ok := p.findVMA(va); !ok {
		return 0, fmt.Errorf("%w: pid %d va %#x", ErrNoVMA, p.pid, uint64(va))
	}
	page := va.PageBase()
	if pa, flags, ok := p.pt.Translate(page); ok {
		if write && flags&pagetable.FlagCOW != 0 {
			return p.copyOnWrite(page, pa.PageBase())
		}
		return FaultAlreadyMapped, nil
	}
	return p.allocatePage(page)
}

// Touch faults va in (read access) if needed. Convenience for tests and
// workload preparation.
func (p *Process) Touch(va arch.VirtAddr) (FaultKind, error) {
	return p.HandlePageFault(va, false)
}

func (p *Process) allocatePage(page arch.VirtAddr) (FaultKind, error) {
	k := p.kernel

	// §4.4 fork path: consult the parent's reservation map first.
	if p.parent != nil && p.parent.alive && p.parent.part != nil {
		if pa, ok := p.parent.part.ClaimFromParent(page); ok {
			k.mem.SetKind(pa, physmem.KindUser, k.own(p.pid))
			if err := p.pt.Map(page, pa, pagetable.FlagWritable); err != nil {
				return 0, err
			}
			p.rss++
			k.stats.Faults[FaultParentClaim]++
			return FaultParentClaim, nil
		}
	}

	if p.part != nil {
		if kind, ok, err := p.magnetFault(page); ok || err != nil {
			return kind, err
		}
		// Fall through to the default path (partial group, OOM, …).
		k.stats.OOMFallbacks++
	}

	if k.cfg.Policy == PolicyTHP {
		if kind, ok, err := p.thpFault(page); ok || err != nil {
			return kind, err
		}
		k.stats.THPFallbacks++
	}

	if k.cfg.Policy == PolicyCAPaging {
		if pa, ok := p.caPlacement(page); ok {
			if err := p.pt.Map(page, pa, pagetable.FlagWritable); err != nil {
				return 0, err
			}
			p.rss++
			k.stats.Faults[FaultCAHit]++
			k.checkPressure()
			return FaultCAHit, nil
		}
	}

	pa, ok := k.allocUserFrame(p.pid)
	if !ok {
		return 0, ErrOutOfMemory
	}
	if err := p.pt.Map(page, pa, pagetable.FlagWritable); err != nil {
		return 0, err
	}
	p.rss++
	k.stats.Faults[FaultDefault]++
	return FaultDefault, nil
}

// magnetFault attempts the PTEMagnet path. ok=false means the caller should
// use the default path instead.
func (p *Process) magnetFault(page arch.VirtAddr) (FaultKind, bool, error) {
	k := p.kernel
	part := p.part

	// A reservation is only created for a group with no prior mappings;
	// if the group was partially populated through another path (reclaim
	// destroyed its reservation, fork, …) the default allocator serves
	// the fault. A live reservation always takes precedence — unless a
	// forked child already claimed this very page from it (§4.4), in
	// which case the frame belongs to the child and the parent takes the
	// default path.
	if _, exists := part.Lookup(page); !exists {
		if p.groupPartiallyMapped(page) {
			return 0, false, nil
		}
	} else if _, mapped, found := part.ReservedPageFor(page); found && mapped {
		return 0, false, nil
	}

	pa, res := part.HandleFault(page, func() (arch.PhysAddr, bool) {
		k.stats.BuddyCalls++
		base, ok := k.mem.AllocGroup(part.Config().GroupPages, physmem.KindReserved, k.own(p.pid))
		if !ok {
			// Try to relieve pressure once, then retry.
			k.runReclaim()
			base, ok = k.mem.AllocGroup(part.Config().GroupPages, physmem.KindReserved, k.own(p.pid))
		}
		return base, ok
	})
	if res == core.FaultNoMemory {
		return 0, false, nil
	}
	k.mem.SetKind(pa, physmem.KindUser, k.own(p.pid))
	if err := p.pt.Map(page, pa, pagetable.FlagWritable); err != nil {
		return 0, true, err
	}
	p.rss++
	k.checkPressure()
	if res == core.FaultReservationHit {
		k.stats.Faults[FaultMagnetHit]++
		return FaultMagnetHit, true, nil
	}
	k.stats.Faults[FaultMagnetNew]++
	return FaultMagnetNew, true, nil
}

// caPlacement implements CA paging's best-effort step: take the frame
// physically adjacent to the mapping of a virtual neighbour, if that frame
// happens to be free right now. No reservation protects it, so under
// colocation the frame has usually been taken by someone else.
func (p *Process) caPlacement(page arch.VirtAddr) (arch.PhysAddr, bool) {
	k := p.kernel
	if prev, _, ok := p.pt.Translate(page - arch.PageSize); ok {
		want := prev.PageBase() + arch.PageSize
		if k.mem.AllocFrameAt(want, physmem.KindUser, k.own(p.pid)) {
			return want, true
		}
	}
	if next, _, ok := p.pt.Translate(page + arch.PageSize); ok {
		base := next.PageBase()
		if base >= arch.PageSize {
			want := base - arch.PageSize
			if k.mem.AllocFrameAt(want, physmem.KindUser, k.own(p.pid)) {
				return want, true
			}
		}
	}
	return arch.NoPhysAddr, false
}

// thpFault attempts to promote the fault into a 2MB mapping: the region
// must be empty, fully covered by one VMA, and an aligned 512-frame block
// must be available. ok=false means the caller should take the 4KB path.
func (p *Process) thpFault(page arch.VirtAddr) (FaultKind, bool, error) {
	k := p.kernel
	base := page &^ arch.VirtAddr(pagetable.LargePageMask)
	region, found := p.findVMA(base)
	if !found || region.end < base+pagetable.LargePageBytes {
		return 0, false, nil
	}
	if p.pt.HasMappingsInLargeRegion(base) {
		return 0, false, nil
	}
	const hugePages = pagetable.LargePageBytes / arch.PageSize
	k.stats.BuddyCalls++
	pa, ok := k.mem.AllocGroup(hugePages, physmem.KindUser, k.own(p.pid))
	if !ok {
		return 0, false, nil
	}
	if err := p.pt.MapLarge(base, pa, pagetable.FlagWritable); err != nil {
		return 0, true, err
	}
	p.rss += hugePages
	k.stats.Faults[FaultTHP]++
	k.checkPressure()
	return FaultTHP, true, nil
}

// demoteIfLarge splits the huge page covering va (if any) into 4KB
// mappings so per-page operations (free, COW, swap) can proceed — Linux's
// THP split. It reports whether a split happened.
func (p *Process) demoteIfLarge(va arch.VirtAddr) (bool, error) {
	if !p.pt.IsLargeMapped(va) {
		return false, nil
	}
	if err := p.pt.Demote(va); err != nil {
		return false, err
	}
	p.kernel.stats.THPSplits++
	return true, nil
}

// groupPartiallyMapped reports whether any page of page's reservation group
// is already mapped in this process.
func (p *Process) groupPartiallyMapped(page arch.VirtAddr) bool {
	part := p.part
	base := part.GroupBase(page)
	for i := 0; i < part.Config().GroupPages; i++ {
		if _, _, ok := p.pt.Translate(base + arch.VirtAddr(i<<arch.PageShift)); ok {
			return true
		}
	}
	return false
}

// allocUserFrame takes one page from the buddy allocator, reclaiming under
// pressure if the first attempt fails. Deflate-on-OOM is not spelled out
// here: the physmem empty-pool hook (deflateOnOOM) already fires inside
// AllocFrame, so a host-inflated balloon can never starve the guest's own
// allocations while it still holds frames it could give back.
func (k *Kernel) allocUserFrame(pid int) (arch.PhysAddr, bool) {
	k.stats.BuddyCalls++
	pa, ok := k.mem.AllocFrame(physmem.KindUser, k.own(pid))
	if !ok {
		k.runReclaim()
		pa, ok = k.mem.AllocFrame(physmem.KindUser, k.own(pid))
	}
	if ok {
		k.checkPressure()
	}
	return pa, ok
}

func (p *Process) copyOnWrite(page arch.VirtAddr, oldPA arch.PhysAddr) (FaultKind, error) {
	k := p.kernel
	refs := k.frameRefs(oldPA)
	if refs == 1 {
		// Last sharer: just make it writable again.
		p.pt.SetFlags(page, pagetable.FlagWritable)
		k.stats.Faults[FaultCOW]++
		return FaultCOW, nil
	}
	newPA, ok := k.allocUserFrame(p.pid)
	if !ok {
		return 0, ErrOutOfMemory
	}
	k.putFrame(oldPA)
	if err := p.pt.Map(page, newPA, pagetable.FlagWritable); err != nil {
		return 0, err
	}
	k.stats.Faults[FaultCOW]++
	return FaultCOW, nil
}

// frameRefs returns the share count of a frame (1 when unshared).
func (k *Kernel) frameRefs(pa arch.PhysAddr) int {
	if n, ok := k.shared[pa.PageBase()]; ok {
		return n
	}
	return 1
}

// getFrame increments a frame's share count.
func (k *Kernel) getFrame(pa arch.PhysAddr) {
	pa = pa.PageBase()
	if n, ok := k.shared[pa]; ok {
		k.shared[pa] = n + 1
	} else {
		k.shared[pa] = 2
	}
}

// putFrame decrements a frame's share count, freeing it at zero. It returns
// true when the frame was actually freed.
func (k *Kernel) putFrame(pa arch.PhysAddr) bool {
	pa = pa.PageBase()
	if n, ok := k.shared[pa]; ok {
		if n > 2 {
			k.shared[pa] = n - 1
		} else {
			delete(k.shared, pa)
		}
		return false
	}
	k.mem.FreeBlock(pa)
	return true
}

// Free releases the pages overlapping [va, va+bytes), as the application
// calling free() on a malloc'd region. Mapped pages are unmapped; pages
// belonging to live reservations return to reserved state, and a
// reservation whose last mapped page is freed dissolves entirely (§4.3).
// The VMA itself stays (like MADV_DONTNEED); use Munmap to drop it.
func (p *Process) Free(va arch.VirtAddr, bytes uint64) error {
	if bytes == 0 {
		return ErrBadRange
	}
	start := va.PageBase()
	end := arch.VirtAddr(arch.AlignUp(uint64(va)+bytes, arch.PageSize))
	for page := start; page < end; page += arch.PageSize {
		p.freePage(page)
	}
	return nil
}

func (p *Process) freePage(page arch.VirtAddr) {
	k := p.kernel
	if _, err := p.demoteIfLarge(page); err != nil {
		// Demotion needs one page-table node; if even that fails the
		// kernel is out of memory and the free cannot be honoured at
		// page granularity. Leave the huge page mapped.
		return
	}
	pa, _, ok := p.pt.Unmap(page)
	if !ok {
		return
	}
	p.rss--
	if p.part != nil && k.frameRefs(pa) > 1 {
		// The frame is COW-shared with a forked relative, so it cannot
		// return to the reservation (the sharer keeps using it). Dissolve
		// the group — the same escape hatch §4.4 prescribes for swap and
		// THP — and drop this process's reference.
		p.part.DissolveGroup(page, func(groupPA arch.PhysAddr) { k.mem.FreeBlock(groupPA) })
		k.putFrame(pa)
		return
	}
	if p.part != nil {
		handled := p.part.NotifyFree(page, pa, func(groupPA arch.PhysAddr) {
			// Whole group dissolves: every page returns to the buddy
			// allocator, whatever state it was in.
			k.mem.FreeBlock(groupPA)
		})
		if handled {
			// If the group is still alive the freed frame goes back to
			// reserved state under kernel ownership.
			if _, live := p.part.Lookup(page); live {
				k.mem.SetKind(pa, physmem.KindReserved, k.own(p.pid))
			}
			return
		}
	}
	k.putFrame(pa)
}

// SwapOut evicts the page at va, as the kernel choosing it for swapping or
// THP compaction. Per §4.4 ("Swap and THP"), choosing a page that belongs
// to a live reservation triggers reclamation of that whole reservation —
// its unmapped pages return to the buddy allocator and the PaRT entry
// disappears — before the page itself is evicted. It reports whether a
// page was actually evicted.
func (p *Process) SwapOut(va arch.VirtAddr) bool {
	k := p.kernel
	page := va.PageBase()
	if _, err := p.demoteIfLarge(page); err != nil {
		return false
	}
	pa, _, ok := p.pt.Unmap(page)
	if !ok {
		return false
	}
	p.rss--
	if p.part != nil {
		p.part.DissolveGroup(page, func(groupPA arch.PhysAddr) { k.mem.FreeBlock(groupPA) })
	}
	k.putFrame(pa)
	return true
}

// Munmap removes the VMA starting exactly at va (as returned by Mmap),
// freeing all its pages.
func (p *Process) Munmap(va arch.VirtAddr) error {
	for i, region := range p.vmas {
		if region.start == va {
			if err := p.Free(region.start, uint64(region.end-region.start)); err != nil {
				return err
			}
			p.vmas = append(p.vmas[:i], p.vmas[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: no VMA at %#x", ErrBadRange, uint64(va))
}

// Fork creates a copy-on-write child (§4.4). Mapped pages are shared
// read-only with COW; the parent's reservations are not copied — the child
// consults them on fault and claims unmapped pages from them, but cannot
// create reservations in the parent's map.
func (p *Process) Fork(name string) (*Process, error) {
	k := p.kernel
	child, err := k.Spawn(name, p.memLimit)
	if err != nil {
		return nil, err
	}
	child.parent = p
	child.vmas = append([]vma(nil), p.vmas...)
	child.nextMmap = p.nextMmap
	// Huge pages are split before COW sharing, as Linux THP does on fork
	// write-protection.
	var largeVAs []arch.VirtAddr
	p.pt.ForEachLarge(func(va arch.VirtAddr) bool {
		largeVAs = append(largeVAs, va)
		return true
	})
	for _, va := range largeVAs {
		if _, err := p.demoteIfLarge(va); err != nil {
			return nil, err
		}
	}
	var mapErr error
	p.pt.ForEachMapped(func(va arch.VirtAddr, pa arch.PhysAddr, flags pagetable.Flags) bool {
		cowFlags := (flags &^ pagetable.FlagWritable) | pagetable.FlagCOW
		p.pt.SetFlags(va, cowFlags)
		if err := child.pt.Map(va, pa, cowFlags); err != nil {
			mapErr = err
			return false
		}
		k.getFrame(pa)
		child.rss++
		return true
	})
	if mapErr != nil {
		return nil, mapErr
	}
	return child, nil
}

// Exit tears the process down: reservations dissolve, mapped frames are
// released (modulo sharing), and the page table is destroyed.
func (p *Process) Exit() {
	if !p.alive {
		return
	}
	k := p.kernel
	if p.part != nil {
		p.part.DestroyAll(func(pa arch.PhysAddr) { k.mem.FreeBlock(pa) })
	}
	p.pt.ForEachMapped(func(va arch.VirtAddr, pa arch.PhysAddr, _ pagetable.Flags) bool {
		k.putFrame(pa)
		return true
	})
	p.pt.Destroy()
	p.rss = 0
	p.alive = false
}

// checkPressure triggers the reclaim daemon when used memory exceeds the
// watermark (§4.3). Used memory at exactly the watermark counts as
// pressure (>=), so a kernel sitting on the boundary still reclaims.
func (k *Kernel) checkPressure() {
	if !k.belowWatermark() {
		k.runReclaim()
	}
}

// belowWatermark reports whether used memory is strictly below the §4.3
// reclaim watermark.
func (k *Kernel) belowWatermark() bool {
	return float64(k.mem.UsedFrames()) < k.cfg.ReclaimWatermark*float64(k.mem.NumFrames())
}

// runReclaim implements the daemon: pick a random process with live
// reservations and destroy reservations until memory drops below the
// watermark (or nothing remains to reclaim).
func (k *Kernel) runReclaim() { k.reclaimUntil(k.belowWatermark) }

// reclaimUntil is the daemon loop with a caller-chosen goal: destroy
// reservations of randomly chosen victim processes until done reports
// success or nothing reclaimable remains. The balloon driver reuses it
// with a frees-available goal that ignores the watermark.
func (k *Kernel) reclaimUntil(done func() bool) {
	k.stats.ReclaimRuns++
	for !done() {
		victims := k.procsWithReservations()
		if len(victims) == 0 {
			return
		}
		v := victims[k.rng.Intn(len(victims))]
		infos := v.part.Reclaim(func(pa arch.PhysAddr) { k.mem.FreeBlock(pa) }, done)
		if len(infos) == 0 {
			return
		}
		for _, info := range infos {
			k.stats.ReclaimedReservations++
			k.stats.ReclaimedPages += uint64(info.FreedPages)
		}
	}
}

func (k *Kernel) procsWithReservations() []*Process {
	var out []*Process
	for _, p := range k.procs {
		if p.alive && p.part != nil && p.part.Live() > 0 {
			out = append(out, p)
		}
	}
	return out
}

// UnusedReservedPages sums reserved-but-unmapped pages over all processes —
// the system-wide §6.2 gauge.
func (k *Kernel) UnusedReservedPages() int {
	n := 0
	for _, p := range k.procs {
		if p.alive && p.part != nil {
			n += p.part.UnusedPages()
		}
	}
	return n
}
