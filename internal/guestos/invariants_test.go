package guestos

import (
	"math/rand"
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/physmem"
)

// TestRandomOpsInvariants drives the kernel with random operation sequences
// (spawn, mmap, fault, free, fork, COW write, swap-out, exit) under every
// policy and checks global invariants after each step:
//
//   - frame conservation: used frames == PT nodes + user frames + reserved
//     frames (nothing leaks, nothing is double-freed);
//   - no two processes map the same frame unless it is COW-shared;
//   - PaRT gauges match physmem's reserved-frame count.
func TestRandomOpsInvariants(t *testing.T) {
	for _, policy := range []AllocPolicy{PolicyDefault, PolicyPTEMagnet, PolicyCAPaging, PolicyTHP} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			k := NewKernel(Config{MemBytes: 32 << 20, Policy: policy, ReclaimWatermark: 0.8, Seed: 3})

			type procState struct {
				p    *Process
				vmas []arch.VirtAddr
			}
			var procs []*procState
			spawn := func() {
				p, err := k.Spawn("p", 16<<20)
				if err != nil {
					t.Fatal(err)
				}
				procs = append(procs, &procState{p: p})
			}
			spawn()
			spawn()

			for step := 0; step < 4000; step++ {
				ps := procs[rng.Intn(len(procs))]
				switch op := rng.Intn(100); {
				case op < 5: // mmap
					if len(ps.vmas) < 6 {
						va, err := ps.p.Mmap(uint64(1+rng.Intn(64)) * arch.PageSize)
						if err != nil {
							t.Fatal(err)
						}
						ps.vmas = append(ps.vmas, va)
					}
				case op < 70: // fault
					if len(ps.vmas) > 0 {
						va := ps.vmas[rng.Intn(len(ps.vmas))] + arch.VirtAddr(rng.Intn(64))*arch.PageSize
						write := rng.Intn(2) == 0
						if _, err := ps.p.HandlePageFault(va, write); err != nil && err != ErrOutOfMemory {
							if _, vmaErr := ps.p.findVMA(va); vmaErr {
								t.Fatalf("fault: %v", err)
							}
						}
					}
				case op < 85: // free a random small range
					if len(ps.vmas) > 0 {
						va := ps.vmas[rng.Intn(len(ps.vmas))] + arch.VirtAddr(rng.Intn(64))*arch.PageSize
						if err := ps.p.Free(va, uint64(1+rng.Intn(8))*arch.PageSize); err != nil {
							t.Fatalf("free: %v", err)
						}
					}
				case op < 90: // swap out
					if len(ps.vmas) > 0 {
						va := ps.vmas[rng.Intn(len(ps.vmas))] + arch.VirtAddr(rng.Intn(64))*arch.PageSize
						ps.p.SwapOut(va)
					}
				case op < 94: // fork
					if len(procs) < 6 {
						child, err := ps.p.Fork("c")
						if err != nil && err != ErrOutOfMemory {
							t.Fatalf("fork: %v", err)
						}
						if err == nil {
							procs = append(procs, &procState{p: child, vmas: append([]arch.VirtAddr(nil), ps.vmas...)})
						}
					}
				case op < 96: // exit (keep at least one process)
					if len(procs) > 1 {
						idx := rng.Intn(len(procs))
						procs[idx].p.Exit()
						procs = append(procs[:idx], procs[idx+1:]...)
					}
				default: // spawn
					if len(procs) < 6 {
						spawn()
					}
				}
				if step%500 == 0 {
					checkInvariants(t, k, step)
				}
			}
			checkInvariants(t, k, 4000)

			// Everything must be reclaimable: exit all, expect zero usage.
			for _, ps := range procs {
				ps.p.Exit()
			}
			if used := k.Memory().UsedFrames(); used != 0 {
				t.Errorf("%d frames leak after all exits", used)
			}
		})
	}
}

func checkInvariants(t *testing.T, k *Kernel, step int) {
	t.Helper()
	mem := k.Memory()
	user := mem.CountKind(physmem.KindUser)
	pt := mem.CountKind(physmem.KindPageTable)
	reserved := mem.CountKind(physmem.KindReserved)
	if got := user + pt + reserved; got != mem.UsedFrames() {
		t.Fatalf("step %d: kind counts %d (user %d + pt %d + reserved %d) != used %d",
			step, got, user, pt, reserved, mem.UsedFrames())
	}
	// PaRT unused-page gauges must equal the reserved-frame count.
	if gauge := k.UnusedReservedPages(); uint64(gauge) != reserved {
		t.Fatalf("step %d: PaRT gauge %d != reserved frames %d", step, gauge, reserved)
	}
	// No frame is mapped by two processes unless COW-shared.
	owners := map[arch.PhysAddr][]*Process{}
	for _, p := range k.Processes() {
		p.PageTable().ForEachMapped(func(va arch.VirtAddr, pa arch.PhysAddr, flags pagetable.Flags) bool {
			owners[pa.PageBase()] = append(owners[pa.PageBase()], p)
			return true
		})
	}
	for pa, ps := range owners {
		if len(ps) > 1 && k.frameRefs(pa) < len(ps) {
			t.Fatalf("step %d: frame %#x mapped by %d processes with refcount %d",
				step, uint64(pa), len(ps), k.frameRefs(pa))
		}
	}
	// RSS must match each process's actual mapped page count.
	for _, p := range k.Processes() {
		var mapped uint64
		p.PageTable().ForEachMapped(func(arch.VirtAddr, arch.PhysAddr, pagetable.Flags) bool {
			mapped++
			return true
		})
		if mapped != p.RSS() {
			t.Fatalf("step %d: pid %d RSS %d != mapped %d", step, p.PID(), p.RSS(), mapped)
		}
	}
}
