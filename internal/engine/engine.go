// Package engine is the scenario-execution layer of the experiment
// harness: a Set names a group of independent scenarios plus a reduce
// step, and Execute runs the set through a bounded worker pool.
//
// The determinism contract: scenario results are keyed by scenario name
// and handed to the reduce step in declaration order, and every scenario
// carries its own seed (derived at set-declaration time, never from
// execution order), so the reduced output is bit-identical regardless of
// worker count or completion order. A set that reduces identically under
// Workers=1 and Workers=N is the invariant the determinism regression
// tests pin.
//
// Failure is per-scenario: one failing scenario does not abort its
// siblings. The reduce step sees every error alongside the successful
// results and decides what partial output is still meaningful
// (Results.FailedErr joins the failures in declaration order).
package engine

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"
)

// Scenario is one named, independent unit of work. Run receives the
// execution context and must honour cancellation; it must not share
// mutable state with sibling scenarios (each simulation run builds its
// own machine).
type Scenario[R any] struct {
	// Name keys the scenario's result; unique within a set.
	Name string
	// Run produces the scenario's result.
	Run func(ctx context.Context) (R, error)
}

// Set is a named group of scenarios plus the deterministic reduce step
// that folds their results into one output.
type Set[R, O any] struct {
	// Name labels the set in progress events.
	Name string
	// Scenarios are executed concurrently; declaration order is the
	// order the reduce step observes.
	Scenarios []Scenario[R]
	// Reduce folds the keyed results into the set's output. It runs
	// exactly once, after every scenario has finished (or failed), on
	// the caller's goroutine. A nil Reduce yields the zero output and
	// Results.FailedErr.
	Reduce func(Results[R]) (O, error)
	// Retry re-runs failing scenarios per its policy. The zero value
	// retries nothing.
	Retry RetryPolicy
}

// RetryPolicy controls per-scenario retries within a set. Retries are
// deterministic by construction: the attempt index travels in the
// context (WithAttempt/AttemptFrom), so a scenario that derives its
// state from (seed, attempt) replays identically for any worker count,
// and backoff is simulated — a retried scenario re-derives its schedule
// for the next attempt instead of sleeping wall-clock time.
type RetryPolicy struct {
	// MaxAttempts bounds the total attempts per scenario; 0 and 1 both
	// mean a single attempt (no retry).
	MaxAttempts int
	// Retryable classifies a failed attempt's error; only errors it
	// accepts are retried (e.g. faults.IsTransient). A nil classifier
	// retries nothing.
	Retryable func(error) bool
}

// allows reports whether a failed attempt (0-based index) may retry.
func (p RetryPolicy) allows(attempt int, err error) bool {
	return attempt+1 < p.MaxAttempts && p.Retryable != nil && p.Retryable(err)
}

// Results holds the per-scenario outcomes of one executed set, keyed by
// scenario name.
type Results[R any] struct {
	order  []string
	byName map[string]R
	errs   map[string]error
}

// Names returns the scenario names in declaration order.
func (r Results[R]) Names() []string { return r.order }

// Len returns the number of scenarios executed.
func (r Results[R]) Len() int { return len(r.order) }

// Get returns the named scenario's result; ok is false if the scenario
// failed or does not exist.
func (r Results[R]) Get(name string) (res R, ok bool) {
	res, ok = r.byName[name]
	return res, ok
}

// Err returns the named scenario's error (nil if it succeeded).
func (r Results[R]) Err(name string) error { return r.errs[name] }

// FailedErr joins every scenario failure in declaration order, or
// returns nil if all scenarios succeeded.
func (r Results[R]) FailedErr() error {
	var errs []error
	for _, name := range r.order {
		if err := r.errs[name]; err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
	}
	return errors.Join(errs...)
}

// Event reports one completed (or failed) scenario to the progress
// callback.
type Event struct {
	// Set and Scenario name what finished.
	Set, Scenario string
	// Done of Total scenarios have completed, this one included.
	Done, Total int
	// Elapsed is this scenario's own wall-clock time.
	Elapsed time.Duration
	// Err is the scenario's failure, if any.
	Err error
}

// Heartbeat is a periodic progress report for a set still in flight,
// delivered between scenario completions so long-running sweeps stay
// observable.
type Heartbeat struct {
	// Set names the executing set.
	Set string
	// Done of Total scenarios have completed so far.
	Done, Total int
	// Elapsed is the wall-clock time since Execute started on this set.
	Elapsed time.Duration
}

// Stats counts the engine's lifetime activity (DESIGN.md §8).
type Stats struct {
	// Sets counts Execute calls; Scenarios completed scenario runs;
	// Failures the scenarios that returned an error (or were skipped).
	Sets      uint64
	Scenarios uint64
	Failures  uint64
	// Retries counts extra attempts granted by a set's RetryPolicy
	// (a scenario that succeeds on its third attempt adds two).
	Retries uint64
}

// Delta returns the counter-wise difference s - prev.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Sets:      s.Sets - prev.Sets,
		Scenarios: s.Scenarios - prev.Scenarios,
		Failures:  s.Failures - prev.Failures,
		Retries:   s.Retries - prev.Retries,
	}
}

// Engine executes scenario sets through a worker pool.
type Engine struct {
	// Workers bounds concurrent scenarios. Zero or negative means
	// GOMAXPROCS.
	Workers int
	// OnEvent, if set, receives one Event per finished scenario.
	// Calls are serialized; the callback must not block for long.
	OnEvent func(Event)
	// HeartbeatEvery enables periodic progress heartbeats while a set is
	// executing: OnHeartbeat fires roughly every HeartbeatEvery until the
	// set completes. Zero disables heartbeats. Heartbeats are pure
	// progress reporting — they never influence results.
	HeartbeatEvery time.Duration
	// OnHeartbeat receives the periodic reports. Calls are serialized
	// with OnEvent; the callback must not block for long.
	OnHeartbeat func(Heartbeat)

	statsMu sync.Mutex
	stats   Stats
}

// New returns an engine with the given worker count (<= 0 → GOMAXPROCS).
func New(workers int) *Engine { return &Engine{Workers: workers} }

// Snapshot returns the engine's lifetime counters.
func (e *Engine) Snapshot() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

func (e *Engine) bump(f func(*Stats)) {
	e.statsMu.Lock()
	f(&e.stats)
	e.statsMu.Unlock()
}

func (e *Engine) workerCount(jobs int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Execute runs every scenario of the set through e's worker pool and
// reduces the results. A nil engine uses default settings. Scenarios
// that fail (or are skipped because ctx was canceled) surface through
// Results to the reduce step; Execute itself errors only on a malformed
// set (duplicate or empty scenario names).
func Execute[R, O any](ctx context.Context, e *Engine, set Set[R, O]) (O, error) {
	var zero O
	if e == nil {
		e = New(0)
	}
	n := len(set.Scenarios)
	seen := make(map[string]struct{}, n)
	for _, s := range set.Scenarios {
		if s.Name == "" {
			return zero, fmt.Errorf("engine: set %q has a scenario with an empty name", set.Name)
		}
		if _, dup := seen[s.Name]; dup {
			return zero, fmt.Errorf("engine: set %q declares scenario %q twice", set.Name, s.Name)
		}
		seen[s.Name] = struct{}{}
	}

	e.bump(func(s *Stats) { s.Sets++ })

	results := make([]R, n)
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes the done counter and OnEvent/OnHeartbeat calls
	done := 0

	finish := func(i int, elapsed time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if e.OnEvent != nil {
			e.OnEvent(Event{
				Set: set.Name, Scenario: set.Scenarios[i].Name,
				Done: done, Total: n, Elapsed: elapsed, Err: errs[i],
			})
		}
	}

	// Heartbeats are progress-only: they run on their own goroutine, read
	// the done counter under mu, and stop when the set completes. They
	// never touch results, so enabling them cannot perturb determinism.
	var hbStop chan struct{}
	var hbWG sync.WaitGroup
	if e.HeartbeatEvery > 0 && e.OnHeartbeat != nil {
		hbStop = make(chan struct{})
		setElapsed := StartTimer()
		ticker := time.NewTicker(e.HeartbeatEvery)
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			defer ticker.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-ticker.C:
					mu.Lock()
					e.OnHeartbeat(Heartbeat{Set: set.Name, Done: done, Total: n, Elapsed: setElapsed()})
					mu.Unlock()
				}
			}
		}()
	}

	for w := e.workerCount(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				stop := StartTimer()
				info := ScenarioInfo{Set: set.Name, Scenario: set.Scenarios[i].Name}
				// Retries replay the scenario with the next attempt
				// index in the context; scenarios keyed on it (fault
				// plans) see a fresh schedule, so recovery is a pure
				// function of (seed, attempt) — never of worker count.
				for attempt := 0; ; attempt++ {
					sctx := WithScenarioInfo(WithAttempt(ctx, attempt), info)
					errs[i] = runScenario(sctx, set.Scenarios[i], &results[i])
					if errs[i] == nil || !set.Retry.allows(attempt, errs[i]) {
						break
					}
					e.bump(func(s *Stats) { s.Retries++ })
				}
				e.bump(func(s *Stats) {
					s.Scenarios++
					if errs[i] != nil {
						s.Failures++
					}
				})
				finish(i, stop())
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if hbStop != nil {
		close(hbStop)
		hbWG.Wait()
	}

	res := Results[R]{
		order:  make([]string, n),
		byName: make(map[string]R, n),
		errs:   make(map[string]error, n),
	}
	for i, s := range set.Scenarios {
		res.order[i] = s.Name
		if errs[i] != nil {
			res.errs[s.Name] = errs[i]
			continue
		}
		res.byName[s.Name] = results[i]
	}
	if set.Reduce == nil {
		return zero, res.FailedErr()
	}
	return set.Reduce(res)
}

// runScenario runs one scenario, converting cancellation into a skip and
// a panic into an error so one bad scenario cannot take down the pool.
func runScenario[R any](ctx context.Context, s Scenario[R], out *R) (err error) {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("skipped: %w", cerr)
	}
	defer func() {
		if p := recover(); p != nil {
			// Error-valued panics (e.g. the nested walker surfacing a
			// host fault) wrap with %w so the typed chain — including
			// injected-fault markers — survives for retry classifiers.
			if perr, ok := p.(error); ok {
				err = fmt.Errorf("scenario panicked: %w", perr)
			} else {
				err = fmt.Errorf("scenario panicked: %v", p)
			}
		}
	}()
	*out, err = s.Run(ctx)
	return err
}

// StartTimer is the engine's wall-clock hook: it returns a stop function
// reporting the elapsed time since the StartTimer call. All wall-clock
// measurement below cmd/ flows through this hook — the engine stamps
// scenario Events with it, and ablations that measure real throughput
// (e.g. the PaRT locking ablation) use it instead of calling time.Now
// directly. Keeping every clock read behind one named hook is what lets
// ptmlint's noclock analyzer prove the simulation core reads no
// host-machine state (DESIGN.md §6).
func StartTimer() func() time.Duration {
	t0 := time.Now()
	return func() time.Duration { return time.Since(t0) }
}

// ScenarioInfo names the currently executing scenario; Execute attaches
// it to the context handed to each Scenario.Run so lower layers
// (sim.RunCtx's telemetry) can label their output without the scenario
// closure threading names through by hand.
type ScenarioInfo struct {
	Set, Scenario string
}

type scenarioInfoKey struct{}

// WithScenarioInfo returns a context carrying info.
func WithScenarioInfo(ctx context.Context, info ScenarioInfo) context.Context {
	return context.WithValue(ctx, scenarioInfoKey{}, info)
}

// ScenarioInfoFrom returns the scenario identity attached by Execute.
func ScenarioInfoFrom(ctx context.Context) (ScenarioInfo, bool) {
	info, ok := ctx.Value(scenarioInfoKey{}).(ScenarioInfo)
	return info, ok
}

type attemptKey struct{}

// WithAttempt returns a context carrying the retry attempt index
// (0 = first attempt). Execute attaches it before each attempt.
func WithAttempt(ctx context.Context, attempt int) context.Context {
	return context.WithValue(ctx, attemptKey{}, attempt)
}

// AttemptFrom returns the retry attempt index attached by Execute
// (0 when absent, i.e. outside a retrying set).
func AttemptFrom(ctx context.Context) int {
	attempt, _ := ctx.Value(attemptKey{}).(int)
	return attempt
}

// DeriveSeed maps a base seed and a scenario name to a per-scenario seed
// that depends only on the two inputs — never on worker count or
// completion order. New scenario sets should derive their seeds through
// this function; the pre-engine experiment sets keep their historical
// arithmetic seed formulas so EXPERIMENTS.md numbers stay reproducible.
func DeriveSeed(base int64, name string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(name))
	return int64(h.Sum64())
}
