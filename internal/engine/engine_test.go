package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// intSet builds a set of n scenarios named s0..s(n-1), each returning its
// own index, reduced to the slice of results in declaration order.
func intSet(n int) Set[int, []int] {
	var scenarios []Scenario[int]
	for i := 0; i < n; i++ {
		i := i
		scenarios = append(scenarios, Scenario[int]{
			Name: fmt.Sprintf("s%d", i),
			Run:  func(context.Context) (int, error) { return i, nil },
		})
	}
	return Set[int, []int]{
		Name:      "ints",
		Scenarios: scenarios,
		Reduce: func(res Results[int]) ([]int, error) {
			var out []int
			for _, name := range res.Names() {
				if v, ok := res.Get(name); ok {
					out = append(out, v)
				}
			}
			return out, res.FailedErr()
		},
	}
}

func TestExecuteReducesInDeclarationOrder(t *testing.T) {
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Execute(context.Background(), New(workers), intSet(8))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: got %v, want %v", workers, got, want)
		}
	}
}

func TestExecuteNilEngine(t *testing.T) {
	got, err := Execute(context.Background(), nil, intSet(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("got %v", got)
	}
}

func TestFailureIsPerScenario(t *testing.T) {
	boom := errors.New("boom")
	set := intSet(4)
	set.Scenarios[1].Run = func(context.Context) (int, error) { return 0, boom }
	set.Scenarios[2].Run = func(context.Context) (int, error) { panic("kaput") }

	got, err := Execute(context.Background(), New(4), set)
	if !reflect.DeepEqual(got, []int{0, 3}) {
		t.Errorf("partial results: got %v, want [0 3]", got)
	}
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("joined error should wrap the scenario error, got %v", err)
	}
	// Failures join in declaration order: s1 before s2.
	msg := err.Error()
	if i, j := strings.Index(msg, "s1:"), strings.Index(msg, "s2:"); i < 0 || j < 0 || i > j {
		t.Errorf("errors not in declaration order: %q", msg)
	}
	if !strings.Contains(msg, "panicked") {
		t.Errorf("panic not converted to error: %q", msg)
	}
}

func TestCanceledContextSkipsScenarios(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Execute(ctx, New(2), intSet(4))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled in joined error, got %v", err)
	}
}

func TestMalformedSets(t *testing.T) {
	dup := intSet(2)
	dup.Scenarios[1].Name = dup.Scenarios[0].Name
	if _, err := Execute(context.Background(), nil, dup); err == nil {
		t.Error("duplicate names not rejected")
	}
	anon := intSet(2)
	anon.Scenarios[0].Name = ""
	if _, err := Execute(context.Background(), nil, anon); err == nil {
		t.Error("empty name not rejected")
	}
}

func TestNilReduceYieldsZeroAndFailedErr(t *testing.T) {
	set := intSet(2)
	set.Reduce = nil
	got, err := Execute(context.Background(), nil, set)
	if got != nil || err != nil {
		t.Errorf("got (%v, %v), want (nil, nil)", got, err)
	}
	set = intSet(2)
	set.Reduce = nil
	set.Scenarios[0].Run = func(context.Context) (int, error) { return 0, errors.New("x") }
	if _, err := Execute(context.Background(), nil, set); err == nil {
		t.Error("nil reduce should still surface FailedErr")
	}
}

func TestOnEventReportsEveryScenario(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	e := New(4)
	e.OnEvent = func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, ev)
	}
	if _, err := Execute(context.Background(), e, intSet(6)); err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != 6 || ev.Set != "ints" {
			t.Errorf("event %d malformed: %+v", i, ev)
		}
	}
}

func TestResultsAccessors(t *testing.T) {
	set := intSet(3)
	boom := errors.New("boom")
	set.Scenarios[2].Run = func(context.Context) (int, error) { return 0, boom }
	set.Reduce = func(res Results[int]) ([]int, error) {
		if res.Len() != 3 {
			t.Errorf("Len = %d", res.Len())
		}
		if v, ok := res.Get("s1"); !ok || v != 1 {
			t.Errorf("Get(s1) = %v, %v", v, ok)
		}
		if _, ok := res.Get("s2"); ok {
			t.Error("failed scenario should not Get")
		}
		if !errors.Is(res.Err("s2"), boom) {
			t.Errorf("Err(s2) = %v", res.Err("s2"))
		}
		if res.Err("s0") != nil {
			t.Errorf("Err(s0) = %v", res.Err("s0"))
		}
		return nil, nil
	}
	if _, err := Execute(context.Background(), nil, set); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(11, "pagerank/r0")
	if a != DeriveSeed(11, "pagerank/r0") {
		t.Error("DeriveSeed not stable")
	}
	if a == DeriveSeed(11, "pagerank/r1") || a == DeriveSeed(12, "pagerank/r0") {
		t.Error("DeriveSeed collisions on adjacent inputs")
	}
}

func TestWorkerCount(t *testing.T) {
	for _, tc := range []struct{ workers, jobs, want int }{
		{4, 8, 4}, {8, 4, 4}, {1, 0, 1}, {3, 3, 3},
	} {
		if got := New(tc.workers).workerCount(tc.jobs); got != tc.want {
			t.Errorf("workerCount(jobs=%d, workers=%d) = %d, want %d", tc.jobs, tc.workers, got, tc.want)
		}
	}
	// Zero or negative workers fall back to GOMAXPROCS: at least one.
	if got := New(0).workerCount(64); got < 1 {
		t.Errorf("default workerCount = %d", got)
	}
}

// retrySet builds a one-scenario set whose run fails with err until the
// attempt index reaches succeedAt, recording every attempt it sees.
func retrySet(err error, succeedAt int, attempts *[]int) Set[int, []int] {
	return Set[int, []int]{
		Name: "retry",
		Scenarios: []Scenario[int]{{
			Name: "s0",
			Run: func(ctx context.Context) (int, error) {
				a := AttemptFrom(ctx)
				*attempts = append(*attempts, a)
				if a < succeedAt {
					return 0, err
				}
				return 42, nil
			},
		}},
		Reduce: func(res Results[int]) ([]int, error) {
			var out []int
			for _, name := range res.Names() {
				if v, ok := res.Get(name); ok {
					out = append(out, v)
				}
			}
			return out, res.FailedErr()
		},
	}
}

var errTransientTest = errors.New("transient test failure")

func TestRetryThenSucceed(t *testing.T) {
	var attempts []int
	set := retrySet(errTransientTest, 2, &attempts)
	set.Retry = RetryPolicy{MaxAttempts: 3, Retryable: func(err error) bool { return errors.Is(err, errTransientTest) }}
	e := New(1)
	got, err := Execute(context.Background(), e, set)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{42}) {
		t.Errorf("got %v, want [42]", got)
	}
	if !reflect.DeepEqual(attempts, []int{0, 1, 2}) {
		t.Errorf("attempts %v, want [0 1 2]", attempts)
	}
	if s := e.Snapshot(); s.Retries != 2 {
		t.Errorf("Stats.Retries = %d, want 2", s.Retries)
	}
}

func TestRetryExhaustionKeepsFailure(t *testing.T) {
	var attempts []int
	set := retrySet(errTransientTest, 99, &attempts)
	set.Retry = RetryPolicy{MaxAttempts: 2, Retryable: func(err error) bool { return errors.Is(err, errTransientTest) }}
	got, err := Execute(context.Background(), New(1), set)
	if err == nil || !errors.Is(err, errTransientTest) {
		t.Fatalf("err = %v, want the transient failure", err)
	}
	if len(got) != 0 {
		t.Errorf("got %v, want no results", got)
	}
	if !reflect.DeepEqual(attempts, []int{0, 1}) {
		t.Errorf("attempts %v, want [0 1]", attempts)
	}
}

func TestNonRetryableErrorFailsImmediately(t *testing.T) {
	var attempts []int
	set := retrySet(errTransientTest, 99, &attempts)
	set.Retry = RetryPolicy{MaxAttempts: 5, Retryable: func(err error) bool { return false }}
	if _, err := Execute(context.Background(), New(1), set); err == nil {
		t.Fatal("want failure")
	}
	if !reflect.DeepEqual(attempts, []int{0}) {
		t.Errorf("attempts %v, want [0]", attempts)
	}
}

func TestZeroRetryPolicyRunsOnce(t *testing.T) {
	var attempts []int
	if _, err := Execute(context.Background(), New(1), retrySet(errTransientTest, 99, &attempts)); err == nil {
		t.Fatal("want failure")
	}
	if !reflect.DeepEqual(attempts, []int{0}) {
		t.Errorf("attempts %v, want [0]", attempts)
	}
}

func TestAttemptFromDefaultsToZero(t *testing.T) {
	if a := AttemptFrom(context.Background()); a != 0 {
		t.Errorf("AttemptFrom = %d, want 0", a)
	}
}

// TestErrorPanicIsWrapped pins that a panic carrying an error value stays
// errors.Is/As-reachable through the engine's recovery, so retry
// classifiers can see injected faults that surface as walker panics.
func TestErrorPanicIsWrapped(t *testing.T) {
	set := Set[int, []int]{
		Name: "panics",
		Scenarios: []Scenario[int]{{
			Name: "s0",
			Run:  func(context.Context) (int, error) { panic(fmt.Errorf("boom: %w", errTransientTest)) },
		}},
		Reduce: func(res Results[int]) ([]int, error) { return nil, res.FailedErr() },
	}
	_, err := Execute(context.Background(), New(1), set)
	if !errors.Is(err, errTransientTest) {
		t.Errorf("panic error not reachable: %v", err)
	}
}

// TestRetryClearsErrorPanic pins the chaos recovery contract end to end at
// the engine layer: an error-valued panic on attempt 0 is retried when the
// policy classifies it, and attempt 1 succeeds.
func TestRetryClearsErrorPanic(t *testing.T) {
	set := Set[int, []int]{
		Name: "panics",
		Scenarios: []Scenario[int]{{
			Name: "s0",
			Run: func(ctx context.Context) (int, error) {
				if AttemptFrom(ctx) == 0 {
					panic(fmt.Errorf("boom: %w", errTransientTest))
				}
				return 7, nil
			},
		}},
		Retry: RetryPolicy{MaxAttempts: 2, Retryable: func(err error) bool { return errors.Is(err, errTransientTest) }},
		Reduce: func(res Results[int]) ([]int, error) {
			v, _ := res.Get("s0")
			return []int{v}, res.FailedErr()
		},
	}
	got, err := Execute(context.Background(), New(1), set)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{7}) {
		t.Errorf("got %v, want [7]", got)
	}
}
