package physmem

import (
	"testing"

	"ptemagnet/internal/arch"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []uint64{0, 100, arch.PageSize + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
}

func TestSizeAccounting(t *testing.T) {
	m := New(1 << 20) // 1MB = 256 frames
	if m.Size() != 1<<20 {
		t.Errorf("Size = %d", m.Size())
	}
	if m.NumFrames() != 256 {
		t.Errorf("NumFrames = %d", m.NumFrames())
	}
	if m.FreeFrames() != 255 { // frame 0 reserved
		t.Errorf("FreeFrames = %d", m.FreeFrames())
	}
}

func TestAllocTagging(t *testing.T) {
	m := New(1 << 20)
	pa, ok := m.AllocFrame(KindUser, Own(0, 7))
	if !ok {
		t.Fatal("alloc failed")
	}
	if m.Kind(pa) != KindUser {
		t.Errorf("Kind = %v, want user", m.Kind(pa))
	}
	if m.Owner(pa) != Own(0, 7) {
		t.Errorf("Owner = %d, want 7", m.Owner(pa))
	}
	if m.UsedFrames() != 1 {
		t.Errorf("UsedFrames = %d", m.UsedFrames())
	}
	m.FreeBlock(pa)
	if m.Kind(pa) != KindFree {
		t.Errorf("Kind after free = %v", m.Kind(pa))
	}
	if m.Owner(pa) != NoOwner {
		t.Errorf("Owner after free = %d", m.Owner(pa))
	}
}

func TestAllocOrderTagsWholeBlock(t *testing.T) {
	m := New(1 << 20)
	pa, ok := m.AllocOrder(3, KindReserved, Own(0, 3))
	if !ok {
		t.Fatal("alloc failed")
	}
	if uint64(pa)%(8*arch.PageSize) != 0 {
		t.Errorf("order-3 block at %#x not 32KB-aligned", uint64(pa))
	}
	for i := 0; i < 8; i++ {
		p := pa + arch.PhysAddr(i*arch.PageSize)
		if m.Kind(p) != KindReserved || m.Owner(p) != Own(0, 3) {
			t.Errorf("frame %d of block: kind=%v owner=%d", i, m.Kind(p), m.Owner(p))
		}
	}
	m.FreeBlock(pa)
	for i := 0; i < 8; i++ {
		p := pa + arch.PhysAddr(i*arch.PageSize)
		if m.Kind(p) != KindFree {
			t.Errorf("frame %d not free after FreeBlock", i)
		}
	}
}

func TestSetKindRetagsOneFrame(t *testing.T) {
	m := New(1 << 20)
	pa, _ := m.AllocOrder(3, KindReserved, Own(0, 3))
	second := pa + arch.PageSize
	m.SetKind(second, KindUser, Own(0, 3))
	if m.Kind(pa) != KindReserved {
		t.Error("first frame retagged unexpectedly")
	}
	if m.Kind(second) != KindUser {
		t.Error("second frame not retagged")
	}
}

func TestCounting(t *testing.T) {
	m := New(1 << 20)
	var user, pt []arch.PhysAddr
	for i := 0; i < 5; i++ {
		pa, _ := m.AllocFrame(KindUser, Own(0, 1))
		user = append(user, pa)
	}
	for i := 0; i < 3; i++ {
		pa, _ := m.AllocFrame(KindPageTable, Own(0, 2))
		pt = append(pt, pa)
	}
	if got := m.CountKind(KindUser); got != 5 {
		t.Errorf("CountKind(user) = %d", got)
	}
	if got := m.CountKind(KindPageTable); got != 3 {
		t.Errorf("CountKind(pagetable) = %d", got)
	}
	if got := m.CountOwned(KindUser, Own(0, 1)); got != 5 {
		t.Errorf("CountOwned(user,1) = %d", got)
	}
	if got := m.CountOwned(KindUser, Own(0, 2)); got != 0 {
		t.Errorf("CountOwned(user,2) = %d", got)
	}
	_ = user
	_ = pt
}

func TestFrameZeroIsKernel(t *testing.T) {
	m := New(1 << 20)
	if m.Kind(0) != KindKernel {
		t.Errorf("frame 0 kind = %v, want kernel", m.Kind(0))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(1 << 20)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Kind did not panic")
		}
	}()
	m.Kind(arch.PhysAddr(1 << 21))
}

func TestExhaustion(t *testing.T) {
	m := New(16 * arch.PageSize)
	n := 0
	for {
		if _, ok := m.AllocFrame(KindUser, Own(0, 1)); !ok {
			break
		}
		n++
	}
	if n != 15 {
		t.Errorf("allocated %d frames from 16-frame memory, want 15", n)
	}
	if _, ok := m.AllocOrder(3, KindUser, Own(0, 1)); ok {
		t.Error("order-3 alloc succeeded on exhausted memory")
	}
}

func TestKindString(t *testing.T) {
	names := map[FrameKind]string{
		KindFree: "free", KindUser: "user", KindPageTable: "pagetable",
		KindReserved: "reserved", KindKernel: "kernel",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if FrameKind(99).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

func TestAllocGroup(t *testing.T) {
	m := New(1 << 20)
	pa, ok := m.AllocGroup(8, KindReserved, Own(0, 4))
	if !ok {
		t.Fatal("AllocGroup failed")
	}
	if uint64(pa)%(8*arch.PageSize) != 0 {
		t.Errorf("group at %#x not naturally aligned", uint64(pa))
	}
	// Frames are individually freeable.
	free0 := m.FreeFrames()
	m.FreeBlock(pa + 3*arch.PageSize)
	if m.FreeFrames() != free0+1 {
		t.Errorf("individual free released %d frames", m.FreeFrames()-free0)
	}
	for i := 0; i < 8; i++ {
		if i == 3 {
			continue
		}
		m.FreeBlock(pa + arch.PhysAddr(i*arch.PageSize))
	}
	if m.UsedFrames() != 0 {
		t.Errorf("UsedFrames = %d after freeing group", m.UsedFrames())
	}
}

func TestAllocGroupValidation(t *testing.T) {
	m := New(1 << 20)
	for _, bad := range []int{0, -8, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AllocGroup(%d) did not panic", bad)
				}
			}()
			m.AllocGroup(bad, KindReserved, Own(0, 1))
		}()
	}
}

func TestAllocFrameAt(t *testing.T) {
	m := New(1 << 20)
	target := arch.PhysAddr(100 * arch.PageSize)
	if !m.AllocFrameAt(target, KindUser, Own(0, 5)) {
		t.Fatal("AllocFrameAt failed on free frame")
	}
	if m.Kind(target) != KindUser || m.Owner(target) != Own(0, 5) {
		t.Errorf("kind=%v owner=%d", m.Kind(target), m.Owner(target))
	}
	if m.AllocFrameAt(target, KindUser, Own(0, 6)) {
		t.Error("AllocFrameAt succeeded on taken frame")
	}
	if m.AllocFrameAt(arch.PhysAddr(2<<20), KindUser, Own(0, 5)) {
		t.Error("AllocFrameAt succeeded beyond memory")
	}
	m.FreeBlock(target)
	if m.Kind(target) != KindFree {
		t.Error("not freed")
	}
}
