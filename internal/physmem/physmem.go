// Package physmem models the physical memory of one machine (the host) or
// one virtual machine (guest-physical memory).
//
// It wraps a buddy allocator with per-frame bookkeeping: what kind of data
// occupies each frame (user pages, page-table nodes, PTEMagnet reservations)
// and which process owns it. The bookkeeping exists for two reasons: the
// simulated kernels use it to validate their own behaviour (a page-table
// walker must only ever touch page-table frames), and the metrics layer uses
// it to attribute cache traffic to guest-PT versus host-PT structures —
// the attribution at the heart of the paper's Tables 1 and 4.
package physmem

import (
	"fmt"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/buddy"
)

// FrameKind classifies the contents of a physical frame.
type FrameKind uint8

const (
	// KindFree marks an unallocated frame.
	KindFree FrameKind = iota
	// KindUser marks a frame holding application data.
	KindUser
	// KindPageTable marks a frame holding a page-table node of this
	// memory's own kernel (guest PT nodes in guest-physical memory, host
	// PT nodes in host-physical memory).
	KindPageTable
	// KindReserved marks a frame inside a PTEMagnet reservation that has
	// been taken from the buddy allocator but not yet mapped to the
	// application. The kernel still owns it and can reclaim it quickly
	// (paper §4.2).
	KindReserved
	// KindKernel marks miscellaneous kernel-owned memory.
	KindKernel
	// KindBalloon marks a frame held by the guest's balloon driver: taken
	// from the guest buddy on host request so the host can drop its
	// backing. The frame is unusable by the guest until the balloon
	// deflates. Only meaningful in guest-physical memory.
	KindBalloon
)

// String returns a short human-readable name for the kind.
func (k FrameKind) String() string {
	switch k {
	case KindFree:
		return "free"
	case KindUser:
		return "user"
	case KindPageTable:
		return "pagetable"
	case KindReserved:
		return "reserved"
	case KindKernel:
		return "kernel"
	case KindBalloon:
		return "balloon"
	default:
		return fmt.Sprintf("FrameKind(%d)", uint8(k))
	}
}

// Owner attributes a frame to a (VM, process) pair. On host-physical
// memory the VM field is the owning virtual machine's id and Proc is
// unused (-1); on guest-physical memory VM is the enclosing VM's id and
// Proc the guest process id. The two-dimensional attribution is what lets
// a multi-tenant host report per-VM frame counts and host-PT
// fragmentation both per VM and host-wide.
type Owner struct {
	VM   int32
	Proc int32
}

// Own returns the owner tag for process proc inside VM vm.
func Own(vm, proc int) Owner { return Owner{VM: int32(vm), Proc: int32(proc)} }

// VMOwner returns the owner tag for frames the host allocates on behalf of
// VM vm as a whole (no specific guest process).
func VMOwner(vm int) Owner { return Owner{VM: int32(vm), Proc: -1} }

// NoOwner is the owner recorded for kernel-owned and free frames.
var NoOwner = Owner{VM: -1, Proc: -1}

// Memory is the physical memory of one machine, managed by a buddy
// allocator with per-frame kind/owner bookkeeping.
type Memory struct {
	alloc *buddy.Allocator
	kind  []FrameKind
	owner []Owner
	hook  buddy.AllocHook
	empty func(kind FrameKind) bool
}

// New creates a memory of the given size in bytes, which must be a positive
// multiple of the page size.
func New(bytes uint64) *Memory {
	if bytes == 0 || bytes%arch.PageSize != 0 {
		panic(fmt.Sprintf("physmem: size %d is not a positive page multiple", bytes))
	}
	nframes := bytes >> arch.PageShift
	m := &Memory{
		alloc: buddy.New(nframes),
		kind:  make([]FrameKind, nframes),
		owner: make([]Owner, nframes),
	}
	for i := range m.owner {
		m.owner[i] = NoOwner
	}
	// Frame 0 is permanently kernel-reserved (the buddy never hands it
	// out); record it as such.
	m.kind[0] = KindKernel
	return m
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return m.alloc.NumFrames() << arch.PageShift }

// NumFrames returns the number of page frames.
func (m *Memory) NumFrames() uint64 { return m.alloc.NumFrames() }

// FreeFrames returns the number of free page frames.
func (m *Memory) FreeFrames() uint64 { return m.alloc.FreeFrames() }

// UsedFrames returns the number of allocated page frames.
func (m *Memory) UsedFrames() uint64 { return m.alloc.UsedFrames() }

// Buddy exposes the underlying allocator for read-only inspection (free-list
// shape, stats). Callers must not allocate or free through it directly.
func (m *Memory) Buddy() *buddy.Allocator { return m.alloc }

// SetAllocHook installs a fault-injection hook (nil removes it). The
// hook is consulted for data allocations only — KindUser and
// KindReserved, the kinds with a recovery path above them
// (reclaim-retry, reservation fallback) — never for page-table or kernel
// frames, whose allocation failure has no graceful handler and would
// turn a transient injected fault into a fatal one.
func (m *Memory) SetAllocHook(h buddy.AllocHook) { m.hook = h }

// SetEmptyHook installs a last-resort handler consulted when a
// single-frame allocation finds the pool exhausted (nil removes it). The
// handler frees memory if it can — the guest kernel deflates its balloon
// here, mirroring the virtio-balloon OOM notifier — and reports whether a
// retry is worthwhile. It covers every single-frame kind except
// KindBalloon: balloon inflation must never trigger the deflation that
// feeds it. Unlike the fault hook it also covers page-table and kernel
// frames, which is the point — those allocations have no other fallback.
func (m *Memory) SetEmptyHook(f func(kind FrameKind) bool) { m.empty = f }

// vetoed consults the fault hook for one allocation.
func (m *Memory) vetoed(kind FrameKind, order int) bool {
	if m.hook == nil || (kind != KindUser && kind != KindReserved) {
		return false
	}
	return m.hook.FailAlloc(order)
}

// AllocFrame allocates one frame of the given kind for the given owner and
// returns its physical address. ok is false when memory is exhausted.
func (m *Memory) AllocFrame(kind FrameKind, owner Owner) (arch.PhysAddr, bool) {
	if m.vetoed(kind, 0) {
		return arch.NoPhysAddr, false
	}
	frame, ok := m.alloc.AllocPage()
	if !ok && kind != KindBalloon && m.empty != nil && m.empty(kind) {
		frame, ok = m.alloc.AllocPage()
	}
	if !ok {
		return arch.NoPhysAddr, false
	}
	m.tag(frame, 1, kind, owner)
	return arch.FrameToPhys(frame), true
}

// AllocOrder allocates a 2^order-frame contiguous, naturally aligned block
// of the given kind and owner, returning the address of its first frame.
// PTEMagnet's reservation path uses order 3 (eight pages).
func (m *Memory) AllocOrder(order int, kind FrameKind, owner Owner) (arch.PhysAddr, bool) {
	if m.vetoed(kind, order) {
		return arch.NoPhysAddr, false
	}
	frame, ok := m.alloc.AllocOrder(order)
	if !ok {
		return arch.NoPhysAddr, false
	}
	m.tag(frame, uint64(1)<<order, kind, owner)
	return arch.FrameToPhys(frame), true
}

// AllocFrameAt allocates the specific frame containing pa if it is free,
// tagging it with kind and owner. It reports whether the frame was
// available. Best-effort contiguity allocators use it to extend a previous
// allocation physically.
func (m *Memory) AllocFrameAt(pa arch.PhysAddr, kind FrameKind, owner Owner) bool {
	frame := pa.FrameNumber()
	if frame >= m.alloc.NumFrames() {
		return false
	}
	if !m.alloc.AllocAt(frame) {
		return false
	}
	m.tag(frame, 1, kind, owner)
	return true
}

// AllocGroup allocates a naturally aligned contiguous group of `pages`
// frames (a power of two) and immediately splits it so each frame can be
// freed individually — the allocation pattern of a PTEMagnet reservation.
// It returns the address of the first frame.
func (m *Memory) AllocGroup(pages int, kind FrameKind, owner Owner) (arch.PhysAddr, bool) {
	if pages <= 0 || !arch.IsPowerOfTwo(uint64(pages)) {
		panic(fmt.Sprintf("physmem: group of %d pages is not a power of two", pages))
	}
	order := 0
	for 1<<order < pages {
		order++
	}
	if m.vetoed(kind, order) {
		return arch.NoPhysAddr, false
	}
	frame, ok := m.alloc.AllocOrder(order)
	if !ok {
		return arch.NoPhysAddr, false
	}
	if order > 0 {
		m.alloc.Split(frame)
	}
	m.tag(frame, uint64(pages), kind, owner)
	return arch.FrameToPhys(frame), true
}

// FreeBlock returns the block starting at pa (previously returned by
// AllocFrame or AllocOrder) to the allocator.
func (m *Memory) FreeBlock(pa arch.PhysAddr) {
	frame := pa.FrameNumber()
	order := m.alloc.BlockOrder(frame)
	m.alloc.Free(frame)
	m.tag(frame, uint64(1)<<order, KindFree, NoOwner)
}

// Kind returns the kind of the frame containing pa.
func (m *Memory) Kind(pa arch.PhysAddr) FrameKind {
	return m.kind[m.checkFrame(pa)]
}

// Owner returns the owner of the frame containing pa, or NoOwner.
func (m *Memory) Owner(pa arch.PhysAddr) Owner {
	return m.owner[m.checkFrame(pa)]
}

// SetKind retags the single frame containing pa. The kernels use it when a
// reserved frame is finally mapped to the application (reserved → user) and
// when reservations are torn down.
func (m *Memory) SetKind(pa arch.PhysAddr, kind FrameKind, owner Owner) {
	f := m.checkFrame(pa)
	m.kind[f] = kind
	m.owner[f] = owner
}

// CountKind returns how many frames currently carry the given kind.
func (m *Memory) CountKind(kind FrameKind) uint64 {
	var n uint64
	for _, k := range m.kind {
		if k == kind {
			n++
		}
	}
	return n
}

// CountOwned returns how many frames of the given kind belong to owner.
func (m *Memory) CountOwned(kind FrameKind, owner Owner) uint64 {
	var n uint64
	for i, k := range m.kind {
		if k == kind && m.owner[i] == owner {
			n++
		}
	}
	return n
}

// CountOwnedVM returns how many frames of the given kind belong to any
// owner inside VM vm — the per-VM host-frame attribution the multi-tenant
// report uses.
func (m *Memory) CountOwnedVM(kind FrameKind, vm int) uint64 {
	var n uint64
	for i, k := range m.kind {
		if k == kind && m.owner[i].VM == int32(vm) {
			n++
		}
	}
	return n
}

func (m *Memory) tag(frame, count uint64, kind FrameKind, owner Owner) {
	for i := uint64(0); i < count; i++ {
		m.kind[frame+i] = kind
		m.owner[frame+i] = owner
	}
}

func (m *Memory) checkFrame(pa arch.PhysAddr) uint64 {
	f := pa.FrameNumber()
	if f >= m.alloc.NumFrames() {
		panic(fmt.Sprintf("physmem: address %#x beyond memory of %d frames", uint64(pa), m.alloc.NumFrames()))
	}
	return f
}
