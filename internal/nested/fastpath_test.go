package nested

import (
	"reflect"
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/pagetable"
)

// mapThrough maps va→gpa in the guest table and warms every structure by
// translating it once.
func mapThrough(t testing.TB, r *rig, va arch.VirtAddr, gpa arch.PhysAddr, flags pagetable.Flags) {
	t.Helper()
	if err := r.gpt.Map(va, gpa, flags); err != nil {
		t.Fatal(err)
	}
	if out := r.w.Translate(0, 1, r.gpt, va, false); !out.Ok {
		t.Fatalf("warm translate of %#x failed", uint64(va))
	}
}

// TestTranslateFastThenSlowMatchesTranslate pins the counter contract the
// batched machine loop relies on: for any address, TranslateFast followed
// (on miss) by TranslateSlow advances every walker and TLB counter exactly
// as the monolithic Translate does, and returns the same outcome.
func TestTranslateFastThenSlowMatchesTranslate(t *testing.T) {
	mkRig := func() *rig {
		r := newRig(t, tinyTLBConfig())
		for i := 0; i < 8; i++ {
			mapThrough(t, r, arch.VirtAddr(0x400000+i*arch.PageSize),
				arch.PhysAddr(0x100000+i*arch.PageSize), pagetable.FlagWritable)
		}
		return r
	}
	// Probe a mix of hot (just-walked), cold (mapped, TLB-evicted) and
	// unmapped addresses on both rigs.
	probes := []struct {
		va    arch.VirtAddr
		write bool
	}{
		{0x400000 + 7*arch.PageSize, false}, // hottest
		{0x400000, false},                   // evicted by the tiny TLB
		{0x400000 + 3*arch.PageSize, true},
		{0x900000, false}, // unmapped → guest fault
		{0x400000 + 7*arch.PageSize, true},
	}
	mono, split := mkRig(), mkRig()
	for i, p := range probes {
		wantOut := mono.w.Translate(0, 1, mono.gpt, p.va, p.write)
		gotOut, hit := split.w.TranslateFast(1, p.va, p.write)
		if !hit {
			gotOut = split.w.TranslateSlow(0, 1, split.gpt, p.va, p.write)
		}
		if wantOut != gotOut {
			t.Errorf("probe %d (%#x): outcome %+v, want %+v", i, uint64(p.va), gotOut, wantOut)
		}
		if !reflect.DeepEqual(mono.w.Snapshot(), split.w.Snapshot()) {
			t.Fatalf("probe %d (%#x): walker stats diverge:\nmono:  %+v\nsplit: %+v",
				i, uint64(p.va), mono.w.Snapshot(), split.w.Snapshot())
		}
	}
}

// BenchmarkPipelineWalkerFastPath measures a main-TLB hit through the
// dedicated fast path — the common case of the batched machine loop.
func BenchmarkPipelineWalkerFastPath(b *testing.B) {
	r := newRig(b, DefaultConfig())
	va := arch.VirtAddr(0x400000)
	mapThrough(b, r, va, 0x100000, pagetable.FlagWritable)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.w.TranslateFast(1, va, false); !ok {
			b.Fatal("fast path missed on a warm TLB")
		}
	}
}

// BenchmarkPipelineWalkerFullTranslate measures the same hit through the
// monolithic entry point, for comparison with the fast path.
func BenchmarkPipelineWalkerFullTranslate(b *testing.B) {
	r := newRig(b, DefaultConfig())
	va := arch.VirtAddr(0x400000)
	mapThrough(b, r, va, 0x100000, pagetable.FlagWritable)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := r.w.Translate(0, 1, r.gpt, va, false); !out.Ok {
			b.Fatal("translate failed on a warm TLB")
		}
	}
}
