package nested

import (
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/cache"
	"ptemagnet/internal/hostos"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/physmem"
	"ptemagnet/internal/tlb"
)

// rig bundles a hand-built guest address space over a real host VM.
type rig struct {
	guestMem *physmem.Memory
	gpt      *pagetable.Table
	vm       *hostos.VM
	hier     *cache.Hierarchy
	w        *Walker
}

func newRig(t testing.TB, cfg Config) *rig {
	t.Helper()
	host := hostos.NewKernel(256 << 20)
	vm, err := host.CreateVM(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	guestMem := physmem.New(64 << 20)
	gpt, err := pagetable.New(guestMem, physmem.Own(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	hier := cache.NewHierarchy(cache.DefaultConfig(1))
	return &rig{guestMem: guestMem, gpt: gpt, vm: vm, hier: hier, w: New(cfg, hier, vm)}
}

// tinyTLBConfig forces main-TLB misses by shrinking the TLB to 4 entries.
func tinyTLBConfig() Config {
	cfg := DefaultConfig()
	cfg.TLB = tlb.TwoLevelConfig{
		L1: tlb.Config{Entries: 2, Ways: 2},
		L2: tlb.Config{Entries: 2, Ways: 2},
	}
	return cfg
}

// mapGuest maps va→gpa in the guest table, allocating the guest frame
// explicitly at gpa (the test controls contiguity).
func (r *rig) mapGuest(t *testing.T, va arch.VirtAddr, gpa arch.PhysAddr, flags pagetable.Flags) {
	t.Helper()
	if err := r.gpt.Map(va, gpa, flags); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateUnmappedIsGuestFault(t *testing.T) {
	r := newRig(t, DefaultConfig())
	out := r.w.Translate(0, 1, r.gpt, 0x1000, false)
	if out.Ok || !out.GuestFault {
		t.Fatalf("outcome = %+v, want guest fault", out)
	}
	if r.w.Snapshot().GuestFaults != 1 {
		t.Error("guest fault not counted")
	}
}

func TestTranslateThenTLBHit(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := arch.VirtAddr(0x7f0000000000)
	r.mapGuest(t, va, 0x100000, pagetable.FlagWritable)
	out := r.w.Translate(0, 1, r.gpt, va+0x123, false)
	if !out.Ok || out.TLBHit {
		t.Fatalf("first translate: %+v", out)
	}
	hpa, ok := r.vm.Translate(0x100000)
	if !ok {
		t.Fatal("host did not map the data page")
	}
	if out.HPA != hpa+0x123 {
		t.Errorf("HPA = %#x, want %#x", out.HPA, hpa+0x123)
	}
	out2 := r.w.Translate(0, 1, r.gpt, va+0x456, false)
	if !out2.Ok || !out2.TLBHit {
		t.Fatalf("second translate: %+v", out2)
	}
	if out2.HPA != hpa+0x456 {
		t.Errorf("TLB-hit HPA = %#x, want %#x", out2.HPA, hpa+0x456)
	}
	if out2.Cycles != DefaultConfig().TLBHitCycles {
		t.Errorf("TLB-hit cycles = %d", out2.Cycles)
	}
}

func TestHostFaultsAreTransparent(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := arch.VirtAddr(0x7f0000000000)
	r.mapGuest(t, va, 0x100000, pagetable.FlagWritable)
	out := r.w.Translate(0, 1, r.gpt, va, false)
	if !out.Ok {
		t.Fatalf("translate failed: %+v", out)
	}
	s := r.w.Snapshot()
	// The data page and every touched guest PT node page need host
	// backing: at least 2 host faults (data + leaf PT node …).
	if s.HostFaults < 2 {
		t.Errorf("HostFaults = %d, want >= 2", s.HostFaults)
	}
	if r.vm.Faults() != s.HostFaults {
		t.Errorf("walker counted %d host faults, VM %d", s.HostFaults, r.vm.Faults())
	}
	// Re-translating a neighbouring page causes no further host faults
	// for PT nodes (already mapped).
	r.mapGuest(t, va+arch.PageSize, 0x101000, pagetable.FlagWritable)
	before := r.w.Snapshot().HostFaults
	r.w.Translate(0, 1, r.gpt, va+arch.PageSize, false)
	if got := r.w.Snapshot().HostFaults - before; got != 1 { // data page only
		t.Errorf("second translate took %d host faults, want 1", got)
	}
}

func TestWriteToReadOnlyFaults(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := arch.VirtAddr(0x7f0000000000)
	r.mapGuest(t, va, 0x100000, pagetable.FlagCOW) // not writable
	if out := r.w.Translate(0, 1, r.gpt, va, false); !out.Ok {
		t.Fatalf("read translate failed: %+v", out)
	}
	out := r.w.Translate(0, 1, r.gpt, va, true)
	if out.Ok || !out.GuestFault {
		t.Fatalf("write to RO page: %+v, want guest fault", out)
	}
	// After the kernel "handles COW" (remap writable), writes succeed.
	r.mapGuest(t, va, 0x200000, pagetable.FlagWritable)
	r.w.InvalidatePage(1, va)
	if out := r.w.Translate(0, 1, r.gpt, va, true); !out.Ok {
		t.Fatalf("write after COW resolve: %+v", out)
	}
}

func TestWriteHittingReadOnlyTLBEntryFaults(t *testing.T) {
	// A read first installs a read-only TLB entry; a subsequent write
	// must not silently succeed through the TLB.
	r := newRig(t, DefaultConfig())
	va := arch.VirtAddr(0x7f0000000000)
	r.mapGuest(t, va, 0x100000, pagetable.FlagCOW)
	r.w.Translate(0, 1, r.gpt, va, false) // installs RO entry
	out := r.w.Translate(0, 1, r.gpt, va, true)
	if out.Ok || !out.GuestFault {
		t.Fatalf("write via RO TLB entry: %+v", out)
	}
}

func TestASIDIsolationInWalker(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := arch.VirtAddr(0x7f0000000000)
	r.mapGuest(t, va, 0x100000, pagetable.FlagWritable)
	r.w.Translate(0, 1, r.gpt, va, false)
	// A different ASID with a different (empty) table must not hit the
	// first process's TLB entry.
	gpt2, err := pagetable.New(r.guestMem, physmem.Own(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	out := r.w.Translate(0, 2, gpt2, va, false)
	if out.Ok {
		t.Fatal("ASID 2 translated through ASID 1's TLB entry")
	}
}

func TestInvalidateASID(t *testing.T) {
	r := newRig(t, DefaultConfig())
	va := arch.VirtAddr(0x7f0000000000)
	r.mapGuest(t, va, 0x100000, pagetable.FlagWritable)
	r.w.Translate(0, 1, r.gpt, va, false)
	r.w.InvalidateASID(1)
	out := r.w.Translate(0, 1, r.gpt, va, false)
	if out.TLBHit {
		t.Error("TLB entry survived InvalidateASID")
	}
}

func TestWalkAccessAttribution(t *testing.T) {
	r := newRig(t, tinyTLBConfig())
	va := arch.VirtAddr(0x7f0000000000)
	r.mapGuest(t, va, 0x100000, pagetable.FlagWritable)
	out := r.w.Translate(0, 1, r.gpt, va, false)
	if !out.Ok {
		t.Fatalf("translate: %+v", out)
	}
	s := r.w.Snapshot()
	// Cold walk: 4 guest PT accesses; host accesses for each guest node
	// page + the data page (PWCs cold too).
	if s.Accesses[DimGuest] != 4 {
		t.Errorf("guest PT accesses = %d, want 4", s.Accesses[DimGuest])
	}
	if s.Accesses[DimHost] == 0 {
		t.Error("no host PT accesses recorded")
	}
	if s.WalkCycles == 0 || out.Cycles == 0 {
		t.Error("no cycles charged")
	}
	var guestServedTotal uint64
	for _, c := range s.Served[DimGuest] {
		guestServedTotal += c
	}
	if guestServedTotal != s.Accesses[DimGuest] {
		t.Errorf("guest served sum %d != accesses %d", guestServedTotal, s.Accesses[DimGuest])
	}
}

func TestPWCsShortenWarmWalks(t *testing.T) {
	r := newRig(t, tinyTLBConfig())
	base := arch.VirtAddr(0x7f0000000000)
	for i := 0; i < 16; i++ {
		r.mapGuest(t, base+arch.VirtAddr(i*arch.PageSize), arch.PhysAddr(0x100000+i*arch.PageSize), pagetable.FlagWritable)
	}
	// Warm up PWCs with the first page.
	r.w.Translate(0, 1, r.gpt, base, false)
	before := r.w.Snapshot()
	// The TLB has 4 entries; translating 16 pages round-robin misses
	// plenty. Warm walks should take ~1 guest access each (leaf only).
	for round := 0; round < 2; round++ {
		for i := 0; i < 16; i++ {
			r.w.Translate(0, 1, r.gpt, base+arch.VirtAddr(i*arch.PageSize), false)
		}
	}
	after := r.w.Snapshot()
	walks := after.Walks - before.Walks
	guestAccesses := after.Accesses[DimGuest] - before.Accesses[DimGuest]
	if walks == 0 {
		t.Fatal("no walks with tiny TLB")
	}
	perWalk := float64(guestAccesses) / float64(walks)
	if perWalk > 1.5 {
		t.Errorf("warm walks average %.2f guest accesses, want ~1 (PWC broken)", perWalk)
	}
	if after.PWCHits[DimGuest] == before.PWCHits[DimGuest] {
		t.Error("guest PWC never hit")
	}
}

func TestContiguityReducesHostPTEFootprint(t *testing.T) {
	// The paper's central mechanism, end to end: translate a spatially
	// local access stream over 64 guest pages whose gPAs are either
	// contiguous (PTEMagnet layout) or scattered (fragmented default
	// layout), and compare the number of distinct host-leaf-PTE cache
	// blocks touched. Contiguous must touch 8x fewer.
	run := func(scatter bool) int {
		host := hostos.NewKernel(256 << 20)
		vm, _ := host.CreateVM(64 << 20)
		guestMem := physmem.New(64 << 20)
		gpt, _ := pagetable.New(guestMem, physmem.Own(0, 1))
		hier := cache.NewHierarchy(cache.DefaultConfig(1))
		w := New(tinyTLBConfig(), hier, vm)
		base := arch.VirtAddr(0x7f0000000000)
		for i := 0; i < 64; i++ {
			gpa := arch.PhysAddr(0x400000 + i*arch.PageSize)
			if scatter {
				// 16 pages apart: every page in a different hPTE block.
				gpa = arch.PhysAddr(0x400000 + i*16*arch.PageSize)
			}
			if err := gpt.Map(base+arch.VirtAddr(i*arch.PageSize), gpa, pagetable.FlagWritable); err != nil {
				t.Fatal(err)
			}
		}
		for round := 0; round < 3; round++ {
			for i := 0; i < 64; i++ {
				out := w.Translate(0, 1, gpt, base+arch.VirtAddr(i*arch.PageSize), false)
				if !out.Ok {
					t.Fatalf("translate failed: %+v", out)
				}
			}
		}
		// Count distinct host leaf PTE cache blocks.
		blocks := map[uint64]bool{}
		for i := 0; i < 64; i++ {
			gpa, _, _ := gpt.Translate(base + arch.VirtAddr(i*arch.PageSize))
			ea, ok := vm.PageTable().LeafEntryAddr(arch.VirtAddr(gpa))
			if !ok {
				t.Fatal("host leaf entry missing")
			}
			blocks[ea.CacheBlock()] = true
		}
		return len(blocks)
	}
	contig := run(false)
	scattered := run(true)
	if contig != 8 {
		t.Errorf("contiguous layout: %d hPTE blocks, want 8", contig)
	}
	if scattered != 64 {
		t.Errorf("scattered layout: %d hPTE blocks, want 64", scattered)
	}
}

func TestStatsMemServed(t *testing.T) {
	var s Stats
	s.Served[DimHost][cache.LevelMemory] = 42
	if s.MemServed(DimHost) != 42 {
		t.Error("MemServed wrong")
	}
}

func BenchmarkTranslateTLBHit(b *testing.B) {
	host := hostos.NewKernel(256 << 20)
	vm, _ := host.CreateVM(64 << 20)
	guestMem := physmem.New(64 << 20)
	gpt, _ := pagetable.New(guestMem, physmem.Own(0, 1))
	hier := cache.NewHierarchy(cache.DefaultConfig(1))
	w := New(DefaultConfig(), hier, vm)
	gpt.Map(0x1000, 0x100000, pagetable.FlagWritable)
	w.Translate(0, 1, gpt, 0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Translate(0, 1, gpt, 0x1000, false)
	}
}

func BenchmarkTranslateWalk(b *testing.B) {
	host := hostos.NewKernel(512 << 20)
	vm, _ := host.CreateVM(256 << 20)
	guestMem := physmem.New(256 << 20)
	gpt, _ := pagetable.New(guestMem, physmem.Own(0, 1))
	hier := cache.NewHierarchy(cache.DefaultConfig(1))
	cfg := DefaultConfig()
	cfg.TLB = tlb.TwoLevelConfig{L1: tlb.Config{Entries: 2, Ways: 2}, L2: tlb.Config{Entries: 2, Ways: 2}}
	w := New(cfg, hier, vm)
	const pages = 4096
	for i := 0; i < pages; i++ {
		gpt.Map(arch.VirtAddr(i)<<arch.PageShift, arch.PhysAddr(0x400000+i*arch.PageSize), pagetable.FlagWritable)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Translate(0, 1, gpt, arch.VirtAddr(i%pages)<<arch.PageShift, false)
	}
}

func TestWalkHistogram(t *testing.T) {
	r := newRig(t, tinyTLBConfig())
	base := arch.VirtAddr(0x7f0000000000)
	for i := 0; i < 32; i++ {
		r.mapGuest(t, base+arch.VirtAddr(i*arch.PageSize), arch.PhysAddr(0x100000+i*arch.PageSize), pagetable.FlagWritable)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 32; i++ {
			r.w.Translate(0, 1, r.gpt, base+arch.VirtAddr(i*arch.PageSize), false)
		}
	}
	s := r.w.Snapshot()
	var total uint64
	for _, c := range s.WalkHist {
		total += c
	}
	if total != s.Walks {
		t.Errorf("histogram holds %d walks, stats say %d", total, s.Walks)
	}
	p50 := s.WalkLatencyPercentile(0.5)
	p99 := s.WalkLatencyPercentile(0.99)
	if p50 == 0 || p99 < p50 {
		t.Errorf("percentiles p50=%d p99=%d", p50, p99)
	}
}

func TestWalkLatencyPercentileEmpty(t *testing.T) {
	var s Stats
	if s.WalkLatencyPercentile(0.5) != 0 {
		t.Error("empty stats percentile != 0")
	}
}

func TestStatsDeltaIncludesHistogram(t *testing.T) {
	r := newRig(t, tinyTLBConfig())
	base := arch.VirtAddr(0x7f0000000000)
	r.mapGuest(t, base, 0x100000, pagetable.FlagWritable)
	r.w.Translate(0, 1, r.gpt, base, false)
	snap := r.w.Snapshot()
	r.w.Translate(0, 1, r.gpt, base, false) // TLB hit, no walk
	d := r.w.Snapshot().Delta(snap)
	var total uint64
	for _, c := range d.WalkHist {
		total += c
	}
	if total != d.Walks {
		t.Errorf("delta histogram %d != delta walks %d", total, d.Walks)
	}
}
