// Package nested implements the two-dimensional (nested) page walk of a
// virtualized x86 CPU (paper §2.5).
//
// On a TLB miss, the walker traverses the guest page table; every guest PT
// node it reads lives at a guest-physical address that must itself be
// translated through the host page table, and the final guest-physical data
// address needs one more host walk — up to 4×5 + 4 = 24 memory accesses.
// Every one of those accesses goes through the simulated cache hierarchy,
// and the walker attributes each to the guest-PT or host-PT dimension. The
// per-dimension "served by main memory" counts and cycle totals are exactly
// the quantities in the paper's Tables 1 and 4.
//
// Three translation caches accelerate the walk, mirroring real hardware:
//
//   - the main two-level TLB holds complete gVA→hPA translations (a hit
//     skips everything);
//   - a nested TLB holds gPA→hPA page translations, so host walks for the
//     hot, few guest-PT-node pages are usually skipped, while host walks
//     for cold data pages are not — reproducing the paper's observation
//     that guest PT accesses are cache-friendly while host PT accesses go
//     to memory;
//   - per-dimension page-walk caches (PWCs) map address prefixes to leaf
//     PT nodes, so warm walks touch mostly leaf PTEs, whose cache behaviour
//     is what PTEMagnet manipulates.
package nested

import (
	"fmt"
	"strings"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/cache"
	"ptemagnet/internal/hostos"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/tlb"
)

// Config sizes the walker's translation structures.
type Config struct {
	// TLB sizes the main two-level gVA→hPA TLB.
	TLB tlb.TwoLevelConfig
	// NTLB sizes the nested gPA→hPA TLB.
	NTLB tlb.Config
	// GuestPWC and HostPWC size the page-walk caches (prefix → leaf PT
	// node).
	GuestPWC tlb.Config
	HostPWC  tlb.Config
	// TLBHitCycles is charged for a main-TLB hit (address translation
	// fully pipelined ≈ 1 cycle).
	TLBHitCycles uint64
	// HostFaultCycles is charged per host page fault (VM exit + hypervisor
	// allocation). Host faults are rare after warm-up.
	HostFaultCycles uint64
}

// DefaultConfig returns Broadwell-like sizes.
func DefaultConfig() Config {
	return Config{
		TLB:             tlb.DefaultConfig(),
		NTLB:            tlb.Config{Entries: 128, Ways: 8},
		GuestPWC:        tlb.Config{Entries: 32, Ways: 4},
		HostPWC:         tlb.Config{Entries: 32, Ways: 4},
		TLBHitCycles:    1,
		HostFaultCycles: 2200,
	}
}

// Dimension distinguishes the two page tables of a nested walk.
type Dimension uint8

const (
	// DimGuest is the guest page table.
	DimGuest Dimension = iota
	// DimHost is the host page table.
	DimHost
	// NumDimensions is the number of walk dimensions.
	NumDimensions
)

// String names the dimension.
func (d Dimension) String() string {
	switch d {
	case DimGuest:
		return "guest"
	case DimHost:
		return "host"
	default:
		return fmt.Sprintf("Dimension(%d)", uint8(d))
	}
}

// Stats aggregates walker activity. All cycle figures are translation-only
// (data-access cycles are charged by the caller).
type Stats struct {
	// Lookups and TLBHits describe main-TLB behaviour; every lookup that
	// is not a hit triggered a nested walk.
	Lookups uint64
	TLBHits uint64
	// Walks counts completed nested walks (a walk interrupted by a guest
	// fault and retried counts once per attempt).
	Walks uint64
	// GuestFaults counts walks aborted for guest page-fault handling.
	GuestFaults uint64
	// HostFaults counts host faults taken inside walks.
	HostFaults uint64
	// Accesses counts PT-entry reads per dimension.
	Accesses [NumDimensions]uint64
	// Served counts PT-entry reads per dimension per serving cache level.
	Served [NumDimensions][cache.NumLevels]uint64
	// Cycles accumulates PT-entry access latency per dimension.
	Cycles [NumDimensions]uint64
	// WalkCycles accumulates total translation cycles of nested walks
	// (both dimensions plus fault overhead).
	WalkCycles uint64
	// NTLBHits counts nested-TLB hits; PWCHits per-dimension PWC hits.
	NTLBHits uint64
	PWCHits  [NumDimensions]uint64
	// WalkHist buckets completed walks by latency: bucket i counts walks
	// whose translation cost was in [2^i, 2^(i+1)) cycles. The shift from
	// low to high buckets under fragmentation is the per-walk view of the
	// aggregate cycle blow-up.
	WalkHist [16]uint64
}

// histBucket maps a walk latency to its WalkHist bucket.
func histBucket(cycles uint64) int {
	b := 0
	for cycles > 1 && b < len(Stats{}.WalkHist)-1 {
		cycles >>= 1
		b++
	}
	return b
}

// WalkLatencyPercentile returns the smallest bucket upper bound (in cycles)
// such that at least frac of recorded walks fall at or below it. Returns 0
// when no walks were recorded.
func (s *Stats) WalkLatencyPercentile(frac float64) uint64 {
	var total uint64
	for _, c := range s.WalkHist {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := uint64(frac * float64(total))
	if want == 0 {
		want = 1
	}
	var seen uint64
	for i, c := range s.WalkHist {
		seen += c
		if seen >= want {
			return uint64(1) << (i + 1)
		}
	}
	return uint64(1) << len(s.WalkHist)
}

// MemServed returns the number of PT accesses in dimension d served by main
// memory — the paper's "page table accesses served by main memory" metric.
func (s *Stats) MemServed(d Dimension) uint64 { return s.Served[d][cache.LevelMemory] }

// Delta returns the field-wise difference s - prev, for windowed
// measurement (e.g. the §3.3 steady phase after the init boundary).
func (s Stats) Delta(prev Stats) Stats {
	d := s
	d.Lookups -= prev.Lookups
	d.TLBHits -= prev.TLBHits
	d.Walks -= prev.Walks
	d.GuestFaults -= prev.GuestFaults
	d.HostFaults -= prev.HostFaults
	d.WalkCycles -= prev.WalkCycles
	d.NTLBHits -= prev.NTLBHits
	for i := range d.WalkHist {
		d.WalkHist[i] -= prev.WalkHist[i]
	}
	for dim := range d.Accesses {
		d.Accesses[dim] -= prev.Accesses[dim]
		d.Cycles[dim] -= prev.Cycles[dim]
		d.PWCHits[dim] -= prev.PWCHits[dim]
		for lv := range d.Served[dim] {
			d.Served[dim][lv] -= prev.Served[dim][lv]
		}
	}
	return d
}

// TLBMisses returns Lookups - TLBHits.
func (s *Stats) TLBMisses() uint64 { return s.Lookups - s.TLBHits }

// Outcome describes one Translate call.
type Outcome struct {
	// HPA is the translated host-physical address (valid when Ok).
	HPA arch.PhysAddr
	// Ok reports a completed translation. When false, GuestFault
	// indicates the guest page table lacked a present, sufficiently
	// permissive mapping and the caller must run the guest fault handler
	// and retry.
	Ok         bool
	GuestFault bool
	// TLBHit reports the fast path.
	TLBHit bool
	// Cycles is the translation latency charged for this access.
	Cycles uint64
}

// Walker performs nested translations for one VM.
type Walker struct {
	cfg    Config
	caches *cache.Hierarchy
	vm     *hostos.VM
	tlb    *tlb.TwoLevel
	ntlb   *tlb.TLB
	gpwc   *tlb.TLB
	hpwc   *tlb.TLB
	stats  Stats
	// walkBuf is reused across walks to avoid per-walk allocations.
	walkBuf []pagetable.Access
}

// writableBit marks writable translations inside TLB payload addresses.
// Frame addresses are page aligned, so bit 0 is free.
const writableBit arch.PhysAddr = 1

// New builds a walker for the given VM on the given cache hierarchy.
func New(cfg Config, caches *cache.Hierarchy, vm *hostos.VM) *Walker {
	return &Walker{
		cfg:    cfg,
		caches: caches,
		vm:     vm,
		tlb:    tlb.NewTwoLevel(cfg.TLB),
		ntlb:   tlb.New(cfg.NTLB),
		gpwc:   tlb.New(cfg.GuestPWC),
		hpwc:   tlb.New(cfg.HostPWC),
	}
}

// Snapshot returns a copy of the walker counters.
func (w *Walker) Snapshot() Stats { return w.stats }

// RegisterObs registers the walker's counters on r under prefix: the
// top-level lookup/walk/fault totals, per-dimension PT-access breakdowns
// (by serving cache level), and the walk-latency histogram.
func (w *Walker) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"lookups", func() uint64 { return w.stats.Lookups })
	r.Counter(prefix+"tlb_hits", func() uint64 { return w.stats.TLBHits })
	r.Counter(prefix+"walks", func() uint64 { return w.stats.Walks })
	r.Counter(prefix+"guest_faults", func() uint64 { return w.stats.GuestFaults })
	r.Counter(prefix+"host_faults", func() uint64 { return w.stats.HostFaults })
	r.Counter(prefix+"walk_cycles", func() uint64 { return w.stats.WalkCycles })
	r.Counter(prefix+"ntlb_hits", func() uint64 { return w.stats.NTLBHits })
	for d := Dimension(0); d < NumDimensions; d++ {
		d := d
		dp := prefix + d.String() + "."
		r.Counter(dp+"accesses", func() uint64 { return w.stats.Accesses[d] })
		r.Counter(dp+"cycles", func() uint64 { return w.stats.Cycles[d] })
		r.Counter(dp+"pwc_hits", func() uint64 { return w.stats.PWCHits[d] })
		for lv := cache.Level(0); lv < cache.NumLevels; lv++ {
			lv := lv
			r.Counter(dp+"served."+strings.ToLower(lv.String()), func() uint64 {
				return w.stats.Served[d][lv]
			})
		}
	}
	r.Histogram(prefix+"walk_hist", len(Stats{}.WalkHist), func(b int) uint64 {
		return w.stats.WalkHist[b]
	})
}

// TLB exposes the main TLB (for miss-ratio reporting).
func (w *Walker) TLB() *tlb.TwoLevel { return w.tlb }

// pwcKey derives the PWC tag: the address prefix that selects a leaf PT
// node (everything above the leaf index — 2MB regions).
func pwcKey(a uint64) uint64 { return a >> (arch.PageShift + arch.PTIndexBits) }

// Translate resolves the guest-virtual address va of the process with the
// given ASID and guest page table, on behalf of cpu. write marks stores so
// read-only (COW) mappings fault.
func (w *Walker) Translate(cpu int, asid uint32, gpt *pagetable.Table, va arch.VirtAddr, write bool) Outcome {
	if out, ok := w.TranslateFast(asid, va, write); ok {
		return out
	}
	return w.walk(cpu, asid, gpt, va, write)
}

// TranslateFast is the main-TLB fast path: it probes the TLB and, on a hit
// with sufficient permissions, returns the completed Outcome without
// touching any of the 2D-walk machinery (guest page table, PWCs, nested
// TLB, caches). ok=false means the caller must take TranslateSlow — either
// a plain miss, or a write to a cached read-only translation (the stale
// entry is dropped so the walk reaches the guest fault path).
//
// TranslateFast followed by TranslateSlow performs exactly the probe and
// counter updates of Translate; the machine's batched loop relies on that
// equivalence.
func (w *Walker) TranslateFast(asid uint32, va arch.VirtAddr, write bool) (Outcome, bool) {
	w.stats.Lookups++
	vpn := va.PageNumber()
	if payload, ok := w.tlb.Lookup(asid, vpn); ok {
		if !write || payload&writableBit != 0 {
			w.stats.TLBHits++
			return Outcome{
				HPA:    (payload &^ writableBit) + arch.PhysAddr(va.PageOffset()),
				Ok:     true,
				TLBHit: true,
				Cycles: w.cfg.TLBHitCycles,
			}, true
		}
		// Write to a read-only translation: force the fault path.
		w.tlb.InvalidatePage(asid, vpn)
	}
	return Outcome{}, false
}

// TranslateSlow performs the full 2D walk after a failed TranslateFast.
// Callers must have tried TranslateFast first — the pair preserves the
// stats contract of Translate (every walk is preceded by one counted
// lookup).
func (w *Walker) TranslateSlow(cpu int, asid uint32, gpt *pagetable.Table, va arch.VirtAddr, write bool) Outcome {
	return w.walk(cpu, asid, gpt, va, write)
}

// walk performs the full 2D walk.
func (w *Walker) walk(cpu int, asid uint32, gpt *pagetable.Table, va arch.VirtAddr, write bool) Outcome {
	w.stats.Walks++
	var cycles uint64

	// Guest dimension: find the leaf PT node, via the guest PWC when
	// possible.
	startLevel := gpt.Levels()
	startNode := gpt.Root()
	if nodeGPA, ok := w.gpwc.Lookup(asid, pwcKey(uint64(va))); ok {
		startLevel = 1
		startNode = nodeGPA
		w.stats.PWCHits[DimGuest]++
	}
	w.walkBuf = w.walkBuf[:0]
	accesses, gpa, found := gpt.WalkAppend(w.walkBuf, va, startLevel, startNode)
	w.walkBuf = accesses
	for _, a := range accesses {
		// Each guest PT entry lives at a guest-physical address that the
		// hardware must translate through the host dimension before the
		// read can be issued.
		entryHPA, c := w.translateGPA(cpu, a.EntryAddr)
		cycles += c
		lv, lat := w.caches.Access(cpu, entryHPA)
		w.stats.Accesses[DimGuest]++
		w.stats.Served[DimGuest][lv]++
		w.stats.Cycles[DimGuest] += lat
		cycles += lat
	}
	if !found {
		w.stats.GuestFaults++
		w.stats.WalkCycles += cycles
		w.stats.WalkHist[histBucket(cycles)]++
		return Outcome{GuestFault: true, Cycles: cycles}
	}
	// Permission check on the leaf.
	_, flags, _ := gpt.Translate(va)
	if write && flags&pagetable.FlagWritable == 0 {
		w.stats.GuestFaults++
		w.stats.WalkCycles += cycles
		return Outcome{GuestFault: true, Cycles: cycles}
	}
	if startLevel != 1 {
		if nodeGPA, ok := gpt.NodeAt(va, 1); ok {
			w.gpwc.Insert(asid, pwcKey(uint64(va)), nodeGPA)
		}
	}

	// Host dimension for the data page.
	hpaPage, c := w.translateGPA(cpu, gpa.PageBase())
	cycles += c
	hpa := hpaPage + arch.PhysAddr(gpa.PageOffset())

	payload := hpaPage
	if flags&pagetable.FlagWritable != 0 {
		payload |= writableBit
	}
	w.tlb.Insert(asid, va.PageNumber(), payload)
	w.stats.WalkCycles += cycles
	w.stats.WalkHist[histBucket(cycles)]++
	return Outcome{HPA: hpa, Ok: true, Cycles: cycles}
}

// translateGPA resolves a guest-physical address to host-physical, charging
// all host PT accesses to the host dimension. Host faults are handled
// transparently (hypervisor allocates on first touch).
func (w *Walker) translateGPA(cpu int, gpa arch.PhysAddr) (arch.PhysAddr, uint64) {
	gfn := gpa.FrameNumber()
	if hpaPage, ok := w.ntlb.Lookup(0, gfn); ok {
		w.stats.NTLBHits++
		return hpaPage + arch.PhysAddr(uint64(gpa)&arch.PageMask), 0
	}
	var cycles uint64
	hpt := w.vm.PageTable()
	hva := arch.VirtAddr(gpa)
	for attempt := 0; ; attempt++ {
		startLevel := hpt.Levels()
		startNode := hpt.Root()
		if nodeHPA, ok := w.hpwc.Lookup(0, pwcKey(uint64(hva))); ok {
			startLevel = 1
			startNode = nodeHPA
			w.stats.PWCHits[DimHost]++
		}
		accesses, hpa, found := hpt.Walk(hva, startLevel, startNode)
		for _, a := range accesses {
			lv, lat := w.caches.Access(cpu, a.EntryAddr)
			w.stats.Accesses[DimHost]++
			w.stats.Served[DimHost][lv]++
			w.stats.Cycles[DimHost] += lat
			cycles += lat
		}
		if found {
			if startLevel != 1 {
				if nodeHPA, ok := hpt.NodeAt(hva, 1); ok {
					w.hpwc.Insert(0, pwcKey(uint64(hva)), nodeHPA)
				}
			}
			hpaPage := hpa.PageBase()
			w.ntlb.Insert(0, gfn, hpaPage)
			return hpa, cycles
		}
		if attempt > 0 {
			// The hypervisor failed to map the page; host memory is
			// exhausted. This is a machine-level condition the simulator
			// treats as fatal.
			panic("nested: host fault loop — host memory exhausted")
		}
		if err := w.vm.HandleFault(gpa); err != nil {
			// Panic with the error value, not its string: the engine's
			// recover re-wraps error panics with %w, so the typed chain
			// (hostos.OOMError, injected-fault markers) stays reachable
			// for errors.Is classification above the walker.
			panic(fmt.Errorf("nested: host fault failed: %w", err))
		}
		w.stats.HostFaults++
		cycles += w.cfg.HostFaultCycles
	}
}

// InvalidatePage drops the translation for (asid, page of va) from the main
// TLB. The guest kernel's unmap/COW paths call this, mirroring INVLPG.
func (w *Walker) InvalidatePage(asid uint32, va arch.VirtAddr) {
	w.tlb.InvalidatePage(asid, va.PageNumber())
}

// InvalidateGPA drops the nested-TLB translation for gpa's frame. The
// balloon controller calls this when it unbacks a ballooned guest page:
// the host frame returns to the buddy allocator, so a cached gPA→hPA
// entry would resolve to memory the guest no longer owns.
func (w *Walker) InvalidateGPA(gpa arch.PhysAddr) {
	w.ntlb.InvalidatePage(0, gpa.FrameNumber())
}

// InvalidateRange drops the translations for every page of [start, end)
// from the main TLB — the shootdown behind a ranged free. end must be
// page-aligned. State-identical to per-page InvalidatePage calls.
func (w *Walker) InvalidateRange(asid uint32, start, end arch.VirtAddr) {
	if end <= start {
		return
	}
	w.tlb.InvalidateRange(asid, start.PageNumber(), end.PageNumber())
}

// InvalidateASID drops all of a process's translations (process exit).
func (w *Walker) InvalidateASID(asid uint32) {
	w.tlb.InvalidateASID(asid)
	w.gpwc.InvalidateASID(asid)
}

// InvalidateAll drops every cached translation and walk-cache entry: main
// TLB, nested TLB, and both paging-structure caches. VM teardown uses it —
// once the host page table is gone, any cached gPA→hPA mapping is stale.
// Counters are untouched; the dead VM's totals stay reportable.
func (w *Walker) InvalidateAll() {
	w.tlb.Flush()
	w.ntlb.Flush()
	w.gpwc.Flush()
	w.hpwc.Flush()
}

// Rebind repoints the walker at a new host VM and cache hierarchy — the
// destination half of a live migration, where the guest keeps its vCPU
// package (this walker, with its cumulative counters) but every cached
// translation dies: gVA→hPA and gPA→hPA entries refer to the source host's
// frames, and the destination re-allocated all of them. Equivalent to
// InvalidateAll plus the pointer swap; counters are untouched, so the
// guest's walk totals span its whole life across both hosts.
func (w *Walker) Rebind(caches *cache.Hierarchy, vm *hostos.VM) {
	w.InvalidateAll()
	w.caches = caches
	w.vm = vm
}
