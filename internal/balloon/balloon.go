// Package balloon is the host's memory-overcommit pressure controller:
// the piece that lets a host whose tenants' combined guest memory
// exceeds host-physical memory keep running instead of dying on the
// first OOMError.
//
// The controller watches host free frames against a low/high watermark
// pair. Below the low watermark it picks victim guests — coldest
// estimated working set first, VM id as tiebreak — and raises their
// balloon targets; each guest's balloon driver (guestos) then surrenders
// frames, breaking PTEMagnet reservations via the §4.3 reclaim daemon
// and swapping cold pages as a last resort. Every guest frame the
// balloon swallows lets the host unback its guest-physical page, and the
// freed host frames coalesce back into the host buddy allocator. When
// free frames recover above the high watermark the controller deflates
// every balloon, returning the hoarded frames to the guests.
//
// Working sets are estimated from the PML-style dirty logs built for
// live migration (PR 8): each sample drains every tenant's log and uses
// the dirtied-page count of the window as that tenant's heat.
//
// Everything is event-count keyed: sampling and watermark checks run
// from the machine loop at access-count boundaries, and relief runs
// synchronously inside host fault handling. No wall clock, no
// randomness — two runs of the same machine make identical decisions.
package balloon

import (
	"fmt"
	"sort"
	"strings"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/hostos"
	"ptemagnet/internal/obs"
)

// Config parameterizes the controller. The zero value is disabled; a
// HostConfig embeds it so a zero-valued host stays balloon-free with the
// hot path untouched.
type Config struct {
	// Enabled arms the controller.
	Enabled bool
	// LowFreeFrac is the low watermark: when host free frames fall below
	// this fraction of total frames, the controller inflates balloons.
	// Zero means 1/16.
	LowFreeFrac float64
	// HighFreeFrac is the high watermark: relief inflates until free
	// frames reach it, and the controller deflates every balloon once
	// free frames exceed it. Zero means 1/8. Must exceed LowFreeFrac.
	HighFreeFrac float64
	// SampleEvery is the machine-access cadence of working-set sampling
	// and watermark checks. Zero means 2048.
	SampleEvery uint64
	// ChunkPages is the balloon-target increment per victim per relief
	// round, and the slack added above an allocation's immediate need so
	// back-to-back faults don't each pay for a relief cycle. Zero means
	// 64.
	ChunkPages uint64
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.LowFreeFrac == 0 {
		c.LowFreeFrac = 1.0 / 16
	}
	if c.HighFreeFrac == 0 {
		c.HighFreeFrac = 1.0 / 8
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 2048
	}
	if c.ChunkPages == 0 {
		c.ChunkPages = 64
	}
	return c
}

// Stats aggregates controller activity.
type Stats struct {
	// Samples counts working-set sampling rounds.
	Samples uint64
	// WatermarkHits counts checks that found free frames below the low
	// watermark.
	WatermarkHits uint64
	// Reliefs counts RelieveFor calls from the host allocation path;
	// ReliefFailures the subset that could not meet the request.
	Reliefs        uint64
	ReliefFailures uint64
	// Inflations counts balloon-target raise rounds; Deflations counts
	// full deflates.
	Inflations uint64
	Deflations uint64
	// InflatedPages counts guest frames swallowed by balloons;
	// DeflatedPages counts frames returned.
	InflatedPages uint64
	DeflatedPages uint64
	// UnbackedFrames counts host frames actually freed by unbacking
	// ballooned pages (inflated pages that never had host backing free
	// nothing).
	UnbackedFrames uint64
	// SwappedPages counts guest pages the balloon drivers swapped out to
	// satisfy inflation.
	SwappedPages uint64
}

// Delta returns the counter-wise difference s - prev.
func (s Stats) Delta(prev Stats) Stats {
	var d Stats
	d.Samples = s.Samples - prev.Samples
	d.WatermarkHits = s.WatermarkHits - prev.WatermarkHits
	d.Reliefs = s.Reliefs - prev.Reliefs
	d.ReliefFailures = s.ReliefFailures - prev.ReliefFailures
	d.Inflations = s.Inflations - prev.Inflations
	d.Deflations = s.Deflations - prev.Deflations
	d.InflatedPages = s.InflatedPages - prev.InflatedPages
	d.DeflatedPages = s.DeflatedPages - prev.DeflatedPages
	d.UnbackedFrames = s.UnbackedFrames - prev.UnbackedFrames
	d.SwappedPages = s.SwappedPages - prev.SwappedPages
	return d
}

// tenant is the controller's view of one guest: the host-side VM, the
// guest kernel whose balloon driver it drives, a TLB-invalidation hook
// for swapped-out pages, and the last working-set estimate.
type tenant struct {
	vm            *hostos.VM
	kernel        *guestos.Kernel
	invalidate    func(asid uint32, va arch.VirtAddr)
	invalidateGPA func(gpa arch.PhysAddr)
	ws            uint64
}

// Controller is the host pressure controller. It implements
// hostos.PressureReliever.
type Controller struct {
	cfg     Config
	host    *hostos.Kernel
	tenants []*tenant
	stats   Stats
}

// New creates a controller over the given host kernel with defaults
// applied to cfg.
func New(cfg Config, host *hostos.Kernel) *Controller {
	return &Controller{cfg: cfg.withDefaults(), host: host}
}

// Config returns the controller configuration with defaults applied.
func (c *Controller) Config() Config { return c.cfg }

// Snapshot returns a copy of the activity counters.
func (c *Controller) Snapshot() Stats { return c.stats }

// RegisterObs registers the controller's counters on r under prefix.
func (c *Controller) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"samples", func() uint64 { return c.stats.Samples })
	r.Counter(prefix+"watermark_hits", func() uint64 { return c.stats.WatermarkHits })
	r.Counter(prefix+"reliefs", func() uint64 { return c.stats.Reliefs })
	r.Counter(prefix+"relief_failures", func() uint64 { return c.stats.ReliefFailures })
	r.Counter(prefix+"inflations", func() uint64 { return c.stats.Inflations })
	r.Counter(prefix+"deflations", func() uint64 { return c.stats.Deflations })
	r.Counter(prefix+"inflated_pages", func() uint64 { return c.stats.InflatedPages })
	r.Counter(prefix+"deflated_pages", func() uint64 { return c.stats.DeflatedPages })
	r.Counter(prefix+"unbacked_frames", func() uint64 { return c.stats.UnbackedFrames })
	r.Counter(prefix+"swapped_pages", func() uint64 { return c.stats.SwappedPages })
}

// Attach registers a guest with the controller and enables the VM's
// dirty logging so working-set samples have something to drain.
// invalidate, when non-nil, is called for every page the guest's balloon
// driver swaps out, so the embedding layer can drop stale TLB entries;
// invalidateGPA likewise for every guest-physical frame the controller
// unbacks (nested-TLB entries for unbacked frames are stale).
func (c *Controller) Attach(vm *hostos.VM, kernel *guestos.Kernel, invalidate func(asid uint32, va arch.VirtAddr), invalidateGPA func(gpa arch.PhysAddr)) {
	vm.EnableDirtyLogging(0)
	c.tenants = append(c.tenants, &tenant{vm: vm, kernel: kernel, invalidate: invalidate, invalidateGPA: invalidateGPA})
}

// Detach removes the guest attached as vm. Its balloon is left as-is
// (the VM is usually about to be destroyed).
func (c *Controller) Detach(vm *hostos.VM) {
	for i, t := range c.tenants {
		if t.vm == vm {
			c.tenants = append(c.tenants[:i], c.tenants[i+1:]...)
			return
		}
	}
}

// Tenants returns the number of attached guests.
func (c *Controller) Tenants() int { return len(c.tenants) }

// Sample drains every tenant's dirty log and records the dirtied-page
// count of the window as that tenant's working-set estimate.
func (c *Controller) Sample() {
	c.stats.Samples++
	for _, t := range c.tenants {
		if !t.vm.Alive() {
			continue
		}
		pages, _ := t.vm.DrainDirtyLog()
		t.ws = uint64(len(pages))
	}
}

// Check runs the watermark policy once: below the low watermark it
// inflates balloons until free frames reach the high watermark; above
// the high watermark it deflates every balloon. Call it at deterministic
// event-count boundaries.
func (c *Controller) Check() {
	mem := c.host.Memory()
	total := float64(mem.NumFrames())
	free := mem.FreeFrames()
	low := uint64(c.cfg.LowFreeFrac * total)
	high := uint64(c.cfg.HighFreeFrac * total)
	if free < low {
		c.stats.WatermarkHits++
		c.relieve(high, -1)
		return
	}
	if free > high {
		c.deflateAll()
	}
}

// RelieveFor implements hostos.PressureReliever: called when an
// allocation of need frames on behalf of VM vmID found the host buddy
// empty. It balloons the coldest victims until need plus a chunk of
// slack is free, and reports a summary for OOM diagnostics.
func (c *Controller) RelieveFor(vmID int, need uint64) (string, bool) {
	c.stats.Reliefs++
	mem := c.host.Memory()
	if mem.FreeFrames() >= need {
		return fmt.Sprintf("%d free, no relief needed", mem.FreeFrames()), true
	}
	summary := c.relieve(need+c.cfg.ChunkPages, vmID)
	ok := mem.FreeFrames() >= need
	if !ok {
		c.stats.ReliefFailures++
	}
	return summary, ok
}

// relieve balloons victims until the host has at least goalFree free
// frames or every victim is dry. Victims are visited coldest working set
// first, VM id as tiebreak, with the requesting VM (if any) last — its
// own pages are the ones we least want to steal. The returned summary
// lists the victims tried and pages reclaimed.
func (c *Controller) relieve(goalFree uint64, requester int) string {
	mem := c.host.Memory()
	victims := make([]*tenant, 0, len(c.tenants))
	for _, t := range c.tenants {
		if t.vm.Alive() {
			victims = append(victims, t)
		}
	}
	sort.SliceStable(victims, func(i, j int) bool {
		ri, rj := victims[i].vm.ID() == requester, victims[j].vm.ID() == requester
		if ri != rj {
			return rj // requester sorts last
		}
		if victims[i].ws != victims[j].ws {
			return victims[i].ws < victims[j].ws
		}
		return victims[i].vm.ID() < victims[j].vm.ID()
	})
	var sb strings.Builder
	var freedTotal uint64
	for _, t := range victims {
		if mem.FreeFrames() >= goalFree {
			break
		}
		freed := c.inflateVictim(t, goalFree)
		freedTotal += freed
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "vm%d(ws=%d,freed=%d)", t.vm.ID(), t.ws, freed)
	}
	if sb.Len() == 0 {
		return "no victims available"
	}
	fmt.Fprintf(&sb, "; %d page(s) reclaimed", freedTotal)
	return sb.String()
}

// inflateVictim raises t's balloon target in chunks, unbacking every
// frame the guest surrenders, until the host reaches goalFree free
// frames or the guest cannot inflate further. It returns the number of
// host frames freed.
func (c *Controller) inflateVictim(t *tenant, goalFree uint64) uint64 {
	mem := c.host.Memory()
	var freed uint64
	for mem.FreeFrames() < goalFree {
		c.stats.Inflations++
		delta := t.kernel.SetBalloonTarget(t.kernel.BalloonPages() + c.cfg.ChunkPages)
		for _, rec := range delta.SwappedOut {
			c.stats.SwappedPages++
			if t.invalidate != nil {
				t.invalidate(rec.ASID, rec.VA)
			}
		}
		for _, gpa := range delta.Inflated {
			c.stats.InflatedPages++
			if t.vm.Unback(gpa) {
				c.stats.UnbackedFrames++
				freed++
				if t.invalidateGPA != nil {
					t.invalidateGPA(gpa)
				}
			}
		}
		if len(delta.Inflated) == 0 {
			// Guest dry: pin the target back to what the balloon actually
			// holds so later rounds don't chase an unreachable target.
			t.kernel.SetBalloonTarget(t.kernel.BalloonPages())
			break
		}
	}
	return freed
}

// deflateAll returns every balloon's frames to its guest. Host backing
// for the released pages is re-established lazily on next access, so
// deflation itself allocates nothing.
func (c *Controller) deflateAll() {
	deflated := false
	for _, t := range c.tenants {
		if !t.vm.Alive() || t.kernel.BalloonPages() == 0 {
			continue
		}
		delta := t.kernel.SetBalloonTarget(0)
		c.stats.DeflatedPages += uint64(len(delta.Deflated))
		deflated = true
	}
	if deflated {
		c.stats.Deflations++
	}
}
