package balloon_test

import (
	"strings"
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/balloon"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/hostos"
	"ptemagnet/internal/physmem"
)

// rig is one host with a controller and n attached guests, each with a
// populated address space.
type rig struct {
	host    *hostos.Kernel
	ctl     *balloon.Controller
	vms     []*hostos.VM
	kernels []*guestos.Kernel
}

// newRig builds the rig: each guest spawns one process, maps touchBytes
// and faults every page, and (when back is true) the host backs the
// guest's whole physical range so unbacking has frames to free.
func newRig(t *testing.T, hostBytes, guestBytes, touchBytes uint64, n int, back bool) *rig {
	t.Helper()
	host := hostos.NewKernel(hostBytes)
	r := &rig{host: host, ctl: balloon.New(balloon.Config{Enabled: true}, host)}
	host.SetPressureReliever(r.ctl)
	for i := 0; i < n; i++ {
		vm, err := host.CreateVM(guestBytes)
		if err != nil {
			t.Fatal(err)
		}
		gk := guestos.NewKernel(guestos.Config{MemBytes: guestBytes, Policy: guestos.PolicyDefault, Seed: 1, VMID: vm.ID()})
		p, err := gk.Spawn("w", guestBytes)
		if err != nil {
			t.Fatal(err)
		}
		if touchBytes > 0 {
			va, err := p.Mmap(touchBytes)
			if err != nil {
				t.Fatal(err)
			}
			for off := uint64(0); off < touchBytes; off += arch.PageSize {
				if _, err := p.HandlePageFault(va+arch.VirtAddr(off), true); err != nil {
					t.Fatal(err)
				}
			}
		}
		if back {
			for gpa := uint64(0); gpa < guestBytes; gpa += arch.PageSize {
				if err := vm.HandleFault(arch.PhysAddr(gpa)); err != nil {
					t.Fatal(err)
				}
			}
		}
		r.ctl.Attach(vm, gk, nil, nil)
		r.vms = append(r.vms, vm)
		r.kernels = append(r.kernels, gk)
	}
	return r
}

// drainHost allocates host frames until at most keepFree remain, returning
// the frames so the caller can put them back.
func drainHost(t *testing.T, host *hostos.Kernel, keepFree uint64) []arch.PhysAddr {
	t.Helper()
	var held []arch.PhysAddr
	for host.Memory().FreeFrames() > keepFree {
		pa, ok := host.Memory().AllocFrame(physmem.KindUser, physmem.Own(0, 0))
		if !ok {
			t.Fatal("host drain allocation failed")
		}
		held = append(held, pa)
	}
	return held
}

func TestConfigDefaults(t *testing.T) {
	host := hostos.NewKernel(1 << 20)
	cfg := balloon.New(balloon.Config{Enabled: true}, host).Config()
	if cfg.LowFreeFrac != 1.0/16 || cfg.HighFreeFrac != 1.0/8 {
		t.Errorf("watermark defaults %v/%v, want 1/16 and 1/8", cfg.LowFreeFrac, cfg.HighFreeFrac)
	}
	if cfg.SampleEvery != 2048 || cfg.ChunkPages != 64 {
		t.Errorf("cadence defaults %d/%d, want 2048 and 64", cfg.SampleEvery, cfg.ChunkPages)
	}
}

// TestRelieveForFreesHostFrames drives the full relief path: an exhausted
// host balloons its tenant, the guest surrenders free frames, and
// unbacking returns real host frames.
func TestRelieveForFreesHostFrames(t *testing.T) {
	r := newRig(t, 8<<20, 2<<20, 1<<20, 1, true)
	drainHost(t, r.host, 16)
	const need = 64
	summary, ok := r.ctl.RelieveFor(-1, need)
	if !ok {
		t.Fatalf("relief failed: %s", summary)
	}
	if free := r.host.Memory().FreeFrames(); free < need {
		t.Errorf("relief reported ok with only %d free frames, need %d", free, need)
	}
	if !strings.Contains(summary, "reclaimed") || !strings.Contains(summary, "vm1(") {
		t.Errorf("summary %q names no victim", summary)
	}
	s := r.ctl.Snapshot()
	if s.Reliefs != 1 || s.InflatedPages == 0 || s.UnbackedFrames == 0 {
		t.Errorf("stats after relief = %+v, want 1 relief with inflated and unbacked pages", s)
	}
	if r.kernels[0].BalloonPages() == 0 {
		t.Error("guest balloon empty after relief")
	}
}

// TestVictimOrderIsDeterministic pins the victim policy on equal working
// sets: ascending VM id, requester last. With nothing backed, no victim
// can actually free frames, so relieve visits them all and the summary
// records the full order.
func TestVictimOrderIsDeterministic(t *testing.T) {
	r := newRig(t, 4<<20, 64<<10, 0, 2, false)
	drainHost(t, r.host, 4)
	summary, ok := r.ctl.RelieveFor(r.vms[0].ID(), 1<<10)
	if ok {
		t.Fatal("relief with nothing to unback reported success")
	}
	if i, j := strings.Index(summary, "vm2("), strings.Index(summary, "vm1("); i < 0 || j < 0 || i > j {
		t.Errorf("requester not visited last: %q", summary)
	}
	if s := r.ctl.Snapshot(); s.ReliefFailures != 1 {
		t.Errorf("ReliefFailures = %d, want 1", s.ReliefFailures)
	}
}

// TestVictimOrderColdestFirst pins the working-set half of the policy:
// the tenant with the smaller dirty-page sample is ballooned first.
func TestVictimOrderColdestFirst(t *testing.T) {
	r := newRig(t, 16<<20, 2<<20, 256<<10, 2, true)
	// vm1 runs hot (many dirtied pages this window), vm2 cold.
	for gpa := uint64(0); gpa < 100*arch.PageSize; gpa += arch.PageSize {
		r.vms[0].MarkDirty(arch.PhysAddr(gpa))
	}
	r.vms[1].MarkDirty(0)
	r.ctl.Sample()
	drainHost(t, r.host, 4)
	summary, ok := r.ctl.RelieveFor(-1, 32)
	if !ok {
		t.Fatalf("relief failed: %s", summary)
	}
	if !strings.HasPrefix(summary, "vm2(") {
		t.Errorf("coldest tenant not ballooned first: %q", summary)
	}
}

// TestCheckWatermarks drives the periodic policy end to end: below the
// low watermark Check inflates, and once free frames recover past the
// high watermark Check deflates every balloon.
func TestCheckWatermarks(t *testing.T) {
	r := newRig(t, 8<<20, 2<<20, 1<<20, 1, true)
	total := r.host.Memory().NumFrames()
	held := drainHost(t, r.host, total/32) // below the 1/16 low watermark

	r.ctl.Check()
	s := r.ctl.Snapshot()
	if s.WatermarkHits != 1 || s.InflatedPages == 0 {
		t.Fatalf("low-watermark check = %+v, want a hit with inflation", s)
	}
	if r.kernels[0].BalloonPages() == 0 {
		t.Fatal("guest balloon empty after low-watermark check")
	}
	if free := r.host.Memory().FreeFrames(); free < total/8 {
		t.Errorf("inflation stopped at %d free frames, high watermark is %d", free, total/8)
	}

	for _, pa := range held {
		r.host.Memory().FreeBlock(pa)
	}
	r.ctl.Check()
	s = r.ctl.Snapshot()
	if s.Deflations != 1 || s.DeflatedPages == 0 {
		t.Fatalf("high-watermark check = %+v, want one full deflation", s)
	}
	if pages := r.kernels[0].BalloonPages(); pages != 0 {
		t.Errorf("balloon still holds %d pages after deflation", pages)
	}
}

// TestRelieveForNoVictims pins the degenerate summary: a controller with
// no tenants reports the failure in prose rather than panicking.
func TestRelieveForNoVictims(t *testing.T) {
	host := hostos.NewKernel(1 << 20)
	ctl := balloon.New(balloon.Config{Enabled: true}, host)
	drainHost(t, host, 0)
	summary, ok := ctl.RelieveFor(-1, 8)
	if ok || summary != "no victims available" {
		t.Errorf("RelieveFor = (%q, %v), want (\"no victims available\", false)", summary, ok)
	}
}
