package hostos

import (
	"errors"
	"testing"

	"ptemagnet/internal/arch"
)

func TestCreateVMValidation(t *testing.T) {
	k := NewKernel(16 << 20)
	if _, err := k.CreateVM(0); err == nil {
		t.Error("CreateVM(0) succeeded")
	}
	if _, err := k.CreateVM(100); err == nil {
		t.Error("CreateVM(non-page-multiple) succeeded")
	}
	if _, err := k.CreateVM(8 << 20); err != nil {
		t.Errorf("CreateVM failed: %v", err)
	}
}

func TestFaultMapsGuestPage(t *testing.T) {
	k := NewKernel(16 << 20)
	vm, _ := k.CreateVM(8 << 20)
	gpa := arch.PhysAddr(0x123000)
	if _, ok := vm.Translate(gpa); ok {
		t.Fatal("unmapped gpa translates")
	}
	if err := vm.HandleFault(gpa + 0x10); err != nil {
		t.Fatal(err)
	}
	hpa, ok := vm.Translate(gpa + 0x10)
	if !ok {
		t.Fatal("gpa not mapped after fault")
	}
	if off := uint64(hpa) & arch.PageMask; off != 0x10 {
		t.Errorf("offset not preserved: %#x", uint64(hpa))
	}
	if vm.Faults() != 1 || vm.MappedGuestPages() != 1 {
		t.Errorf("faults=%d mapped=%d", vm.Faults(), vm.MappedGuestPages())
	}
	// Repeat fault is a no-op.
	vm.HandleFault(gpa)
	if vm.Faults() != 1 {
		t.Errorf("spurious fault counted")
	}
}

func TestFaultBeyondVMMemory(t *testing.T) {
	k := NewKernel(16 << 20)
	vm, _ := k.CreateVM(1 << 20)
	if err := vm.HandleFault(arch.PhysAddr(2 << 20)); err == nil {
		t.Error("fault beyond guest memory succeeded")
	}
}

func TestHostOOM(t *testing.T) {
	k := NewKernel(16 * arch.PageSize)
	vm, _ := k.CreateVM(1 << 20)
	var err error
	for i := 0; i < 64; i++ {
		if err = vm.HandleFault(arch.PhysAddr(i * arch.PageSize)); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestScatteredGPAsScatterHostPTEs(t *testing.T) {
	// The §3.1 carry-over: contiguous guest-physical pages get adjacent
	// host leaf PTEs; scattered ones do not.
	k := NewKernel(64 << 20)
	vm, _ := k.CreateVM(32 << 20)
	// Contiguous gPAs → one cache block of host leaf PTEs.
	blocks := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		gpa := arch.PhysAddr(0x100000 + i*arch.PageSize)
		vm.HandleFault(gpa)
		ea, ok := vm.PageTable().LeafEntryAddr(arch.VirtAddr(gpa))
		if !ok {
			t.Fatal("leaf entry missing")
		}
		blocks[ea.CacheBlock()] = true
	}
	if len(blocks) != 1 {
		t.Errorf("contiguous gPAs occupy %d hPTE blocks, want 1", len(blocks))
	}
	// Scattered gPAs (64KB apart) → 8 distinct blocks.
	blocks = map[uint64]bool{}
	for i := 0; i < 8; i++ {
		gpa := arch.PhysAddr(0x1000000 + i*0x10000)
		vm.HandleFault(gpa)
		ea, _ := vm.PageTable().LeafEntryAddr(arch.VirtAddr(gpa))
		blocks[ea.CacheBlock()] = true
	}
	if len(blocks) != 8 {
		t.Errorf("scattered gPAs occupy %d hPTE blocks, want 8", len(blocks))
	}
}

func TestCreateVMWithLevels(t *testing.T) {
	k := NewKernel(32 << 20)
	vm5, err := k.CreateVMWithLevels(8<<20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if vm5.PageTable().Levels() != 5 {
		t.Errorf("Levels = %d", vm5.PageTable().Levels())
	}
	if _, err := k.CreateVMWithLevels(8<<20, 3); err == nil {
		t.Error("depth 3 accepted")
	}
	if err := vm5.HandleFault(0x1000); err != nil {
		t.Fatal(err)
	}
	if _, ok := vm5.Translate(0x1000); !ok {
		t.Error("5-level host translate failed")
	}
}

func TestVMAccessors(t *testing.T) {
	k := NewKernel(32 << 20)
	vm, _ := k.CreateVM(8 << 20)
	if vm.ID() != 1 {
		t.Errorf("ID = %d", vm.ID())
	}
	if vm.GuestMemBytes() != 8<<20 {
		t.Errorf("GuestMemBytes = %d", vm.GuestMemBytes())
	}
	if k.Memory() == nil {
		t.Error("Memory nil")
	}
}
