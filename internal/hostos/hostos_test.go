package hostos

import (
	"errors"
	"strings"
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/physmem"
)

func TestCreateVMValidation(t *testing.T) {
	k := NewKernel(16 << 20)
	if _, err := k.CreateVM(0); err == nil {
		t.Error("CreateVM(0) succeeded")
	}
	if _, err := k.CreateVM(100); err == nil {
		t.Error("CreateVM(non-page-multiple) succeeded")
	}
	if _, err := k.CreateVM(8 << 20); err != nil {
		t.Errorf("CreateVM failed: %v", err)
	}
}

func TestFaultMapsGuestPage(t *testing.T) {
	k := NewKernel(16 << 20)
	vm, _ := k.CreateVM(8 << 20)
	gpa := arch.PhysAddr(0x123000)
	if _, ok := vm.Translate(gpa); ok {
		t.Fatal("unmapped gpa translates")
	}
	if err := vm.HandleFault(gpa + 0x10); err != nil {
		t.Fatal(err)
	}
	hpa, ok := vm.Translate(gpa + 0x10)
	if !ok {
		t.Fatal("gpa not mapped after fault")
	}
	if off := uint64(hpa) & arch.PageMask; off != 0x10 {
		t.Errorf("offset not preserved: %#x", uint64(hpa))
	}
	if vm.Faults() != 1 || vm.MappedGuestPages() != 1 {
		t.Errorf("faults=%d mapped=%d", vm.Faults(), vm.MappedGuestPages())
	}
	// Repeat fault is a no-op.
	vm.HandleFault(gpa)
	if vm.Faults() != 1 {
		t.Errorf("spurious fault counted")
	}
}

func TestFaultBeyondVMMemory(t *testing.T) {
	k := NewKernel(16 << 20)
	vm, _ := k.CreateVM(1 << 20)
	if err := vm.HandleFault(arch.PhysAddr(2 << 20)); err == nil {
		t.Error("fault beyond guest memory succeeded")
	}
}

func TestHostOOM(t *testing.T) {
	k := NewKernel(16 * arch.PageSize)
	vm, _ := k.CreateVM(1 << 20)
	var err error
	for i := 0; i < 64; i++ {
		if err = vm.HandleFault(arch.PhysAddr(i * arch.PageSize)); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestScatteredGPAsScatterHostPTEs(t *testing.T) {
	// The §3.1 carry-over: contiguous guest-physical pages get adjacent
	// host leaf PTEs; scattered ones do not.
	k := NewKernel(64 << 20)
	vm, _ := k.CreateVM(32 << 20)
	// Contiguous gPAs → one cache block of host leaf PTEs.
	blocks := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		gpa := arch.PhysAddr(0x100000 + i*arch.PageSize)
		vm.HandleFault(gpa)
		ea, ok := vm.PageTable().LeafEntryAddr(arch.VirtAddr(gpa))
		if !ok {
			t.Fatal("leaf entry missing")
		}
		blocks[ea.CacheBlock()] = true
	}
	if len(blocks) != 1 {
		t.Errorf("contiguous gPAs occupy %d hPTE blocks, want 1", len(blocks))
	}
	// Scattered gPAs (64KB apart) → 8 distinct blocks.
	blocks = map[uint64]bool{}
	for i := 0; i < 8; i++ {
		gpa := arch.PhysAddr(0x1000000 + i*0x10000)
		vm.HandleFault(gpa)
		ea, _ := vm.PageTable().LeafEntryAddr(arch.VirtAddr(gpa))
		blocks[ea.CacheBlock()] = true
	}
	if len(blocks) != 8 {
		t.Errorf("scattered gPAs occupy %d hPTE blocks, want 8", len(blocks))
	}
}

func TestCreateVMWithLevels(t *testing.T) {
	k := NewKernel(32 << 20)
	vm5, err := k.CreateVMWithLevels(8<<20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if vm5.PageTable().Levels() != 5 {
		t.Errorf("Levels = %d", vm5.PageTable().Levels())
	}
	if _, err := k.CreateVMWithLevels(8<<20, 3); err == nil {
		t.Error("depth 3 accepted")
	}
	if err := vm5.HandleFault(0x1000); err != nil {
		t.Fatal(err)
	}
	if _, ok := vm5.Translate(0x1000); !ok {
		t.Error("5-level host translate failed")
	}
}

func TestVMAccessors(t *testing.T) {
	k := NewKernel(32 << 20)
	vm, _ := k.CreateVM(8 << 20)
	if vm.ID() != 1 {
		t.Errorf("ID = %d", vm.ID())
	}
	if vm.GuestMemBytes() != 8<<20 {
		t.Errorf("GuestMemBytes = %d", vm.GuestMemBytes())
	}
	if k.Memory() == nil {
		t.Error("Memory nil")
	}
}

func TestMultiVMIDAssignment(t *testing.T) {
	k := NewKernel(64 << 20)
	a, _ := k.CreateVM(8 << 20)
	b, _ := k.CreateVM(8 << 20)
	c, _ := k.CreateVM(8 << 20)
	if a.ID() != 1 || b.ID() != 2 || c.ID() != 3 {
		t.Errorf("ids = %d,%d,%d, want 1,2,3", a.ID(), b.ID(), c.ID())
	}
	if got := len(k.VMs()); got != 3 {
		t.Errorf("VMs() has %d entries, want 3", got)
	}
	// Ids are monotonic: destroying b must not let a later VM reuse 2.
	k.DestroyVM(b)
	d, _ := k.CreateVM(8 << 20)
	if d.ID() != 4 {
		t.Errorf("id after teardown = %d, want 4 (no reuse)", d.ID())
	}
	if got := len(k.VMs()); got != 3 {
		t.Errorf("VMs() has %d entries after teardown+boot, want 3", got)
	}
}

func TestPerVMFaultCounters(t *testing.T) {
	k := NewKernel(64 << 20)
	a, _ := k.CreateVM(8 << 20)
	b, _ := k.CreateVM(8 << 20)
	for i := 0; i < 5; i++ {
		if err := a.HandleFault(arch.PhysAddr(i * arch.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := b.HandleFault(arch.PhysAddr(i * arch.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Faults() != 5 || b.Faults() != 3 {
		t.Errorf("faults = %d,%d, want 5,3", a.Faults(), b.Faults())
	}
	// Frame ownership is attributed per VM.
	mem := k.Memory()
	if got := mem.CountOwnedVM(physmem.KindUser, a.ID()); got != 5 {
		t.Errorf("vm %d owns %d user frames, want 5", a.ID(), got)
	}
	if got := mem.CountOwnedVM(physmem.KindUser, b.ID()); got != 3 {
		t.Errorf("vm %d owns %d user frames, want 3", b.ID(), got)
	}
}

func TestTwoVMHostExhaustion(t *testing.T) {
	// Two VMs competing for a tiny host: the second faulting VM must hit a
	// typed OOM naming itself, while errors.Is compatibility holds.
	k := NewKernel(24 * arch.PageSize)
	a, _ := k.CreateVM(1 << 20)
	b, _ := k.CreateVM(1 << 20)
	var err error
	for i := 0; err == nil && i < 64; i++ {
		err = a.HandleFault(arch.PhysAddr(i * arch.PageSize))
		if err == nil {
			err = b.HandleFault(arch.PhysAddr(i * arch.PageSize))
		}
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory compatibility", err)
	}
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want *OOMError", err)
	}
	if oom.VM != a.ID() && oom.VM != b.ID() {
		t.Errorf("OOMError.VM = %d, want one of %d/%d", oom.VM, a.ID(), b.ID())
	}
	if oom.NeedPages != 1 {
		t.Errorf("OOMError.NeedPages = %d, want 1", oom.NeedPages)
	}
}

func TestDestroyVMReturnsFrames(t *testing.T) {
	k := NewKernel(64 << 20)
	free0 := k.Memory().FreeFrames()
	vm, _ := k.CreateVM(8 << 20)
	for i := 0; i < 32; i++ {
		if err := vm.HandleFault(arch.PhysAddr(i * arch.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if k.Memory().FreeFrames() >= free0 {
		t.Fatal("faulting allocated nothing")
	}
	k.DestroyVM(vm)
	if vm.Alive() {
		t.Error("VM alive after DestroyVM")
	}
	if got := k.Memory().FreeFrames(); got != free0 {
		t.Errorf("free frames after teardown = %d, want %d (all frames returned)", got, free0)
	}
	if got := k.Memory().CountOwnedVM(physmem.KindUser, vm.ID()); got != 0 {
		t.Errorf("vm still owns %d user frames after teardown", got)
	}
	// Coalescing: a max-order block must be allocatable again.
	if _, ok := k.Memory().AllocOrder(3, physmem.KindUser, physmem.VMOwner(99)); !ok {
		t.Error("order-3 allocation failed after teardown (no coalescing)")
	}
	// Double-destroy is a no-op.
	k.DestroyVM(vm)
}

// faultPages faults in n distinct guest-physical pages starting at page 0.
func faultPages(t *testing.T, vm *VM, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := vm.HandleFault(arch.PhysAddr(uint64(i) << arch.PageShift)); err != nil {
			t.Fatalf("fault page %d: %v", i, err)
		}
	}
}

func TestDirtyLogTransitionsOnly(t *testing.T) {
	k := NewKernel(16 << 20)
	vm, _ := k.CreateVM(8 << 20)
	faultPages(t, vm, 4)
	// Writes before logging is enabled are invisible.
	vm.MarkDirty(arch.PhysAddr(0))
	vm.EnableDirtyLogging(0)
	if !vm.DirtyLogging() {
		t.Fatal("DirtyLogging false after enable")
	}
	// Only the clear→set transition logs; repeated writes do not.
	vm.MarkDirty(arch.PhysAddr(2 << arch.PageShift))
	vm.MarkDirty(arch.PhysAddr(2<<arch.PageShift + 0x40))
	vm.MarkDirty(arch.PhysAddr(0))
	// Writes to pages without host backing are ignored.
	vm.MarkDirty(arch.PhysAddr(100 << arch.PageShift))
	pages, rescan := vm.DrainDirtyLog()
	if rescan {
		t.Error("unexpected rescan")
	}
	want := []arch.PhysAddr{2 << arch.PageShift, 0}
	if len(pages) != len(want) || pages[0] != want[0] || pages[1] != want[1] {
		t.Errorf("drain = %#v, want %#v (first-write order)", pages, want)
	}
	if vm.DirtyLogged() != 2 {
		t.Errorf("DirtyLogged = %d, want 2", vm.DirtyLogged())
	}
	// Drain cleared the bits: the next write logs again.
	vm.MarkDirty(arch.PhysAddr(0))
	pages, _ = vm.DrainDirtyLog()
	if len(pages) != 1 || pages[0] != 0 {
		t.Errorf("re-dirty after drain = %#v, want [0]", pages)
	}
}

func TestDirtyLogOverflowRescans(t *testing.T) {
	k := NewKernel(16 << 20)
	vm, _ := k.CreateVM(8 << 20)
	faultPages(t, vm, 8)
	vm.EnableDirtyLogging(4)
	// Dirty 6 pages in descending order: the buffer holds the first 4, the
	// rest only set EPT dirty bits.
	for i := 5; i >= 0; i-- {
		vm.MarkDirty(arch.PhysAddr(uint64(i) << arch.PageShift))
	}
	pages, rescan := vm.DrainDirtyLog()
	if !rescan {
		t.Fatal("overflowed log drained without rescan")
	}
	if vm.DirtyLogOverflows() != 1 {
		t.Errorf("DirtyLogOverflows = %d, want 1", vm.DirtyLogOverflows())
	}
	// The rescan reports every dirty page in ascending guest-physical
	// order, including the ones the buffer dropped.
	if len(pages) != 6 {
		t.Fatalf("rescan found %d pages, want 6", len(pages))
	}
	for i, gpa := range pages {
		if gpa != arch.PhysAddr(uint64(i)<<arch.PageShift) {
			t.Errorf("pages[%d] = %#x, want %#x", i, uint64(gpa), uint64(i)<<arch.PageShift)
		}
	}
	if vm.DirtyLogged() != 6 {
		t.Errorf("DirtyLogged = %d, want 6", vm.DirtyLogged())
	}
	// The overflow latch reset: a small batch drains from the buffer again.
	vm.MarkDirty(arch.PhysAddr(7 << arch.PageShift))
	pages, rescan = vm.DrainDirtyLog()
	if rescan || len(pages) != 1 {
		t.Errorf("post-overflow drain = %#v rescan=%v, want 1 page from buffer", pages, rescan)
	}
}

func TestDisableDirtyLoggingClearsBits(t *testing.T) {
	k := NewKernel(16 << 20)
	vm, _ := k.CreateVM(8 << 20)
	faultPages(t, vm, 2)
	vm.EnableDirtyLogging(0)
	vm.MarkDirty(arch.PhysAddr(0))
	vm.DisableDirtyLogging()
	if vm.DirtyLogging() {
		t.Fatal("DirtyLogging true after disable")
	}
	// Stale bits must not leak into a new tracking session.
	vm.EnableDirtyLogging(0)
	if pages, _ := vm.DrainDirtyLog(); len(pages) != 0 {
		t.Errorf("fresh session drained stale pages: %#v", pages)
	}
}

func TestMapMigratedPage(t *testing.T) {
	k := NewKernel(16 << 20)
	vm, _ := k.CreateVM(8 << 20)
	gpa := arch.PhysAddr(5 << arch.PageShift)
	if err := vm.MapMigratedPage(gpa + 0x20); err != nil {
		t.Fatal(err)
	}
	if !vm.Mapped(gpa) {
		t.Fatal("page unmapped after MapMigratedPage")
	}
	if vm.Faults() != 0 {
		t.Errorf("migration copy counted as %d EPT violations", vm.Faults())
	}
	// Re-copying a shipped page keeps the existing mapping.
	hpa0, _ := vm.Translate(gpa)
	if err := vm.MapMigratedPage(gpa); err != nil {
		t.Fatal(err)
	}
	if hpa, _ := vm.Translate(gpa); hpa != hpa0 {
		t.Errorf("re-copy remapped the page: %#x → %#x", uint64(hpa0), uint64(hpa))
	}
	if err := vm.MapMigratedPage(arch.PhysAddr(16 << 20)); err == nil {
		t.Error("MapMigratedPage beyond guest memory succeeded")
	}
	// OOM surfaces the typed error.
	small := NewKernel(8 * arch.PageSize)
	sv, err := small.CreateVM(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	var oomAt arch.PhysAddr
	for i := uint64(0); i < 8; i++ {
		if err := sv.MapMigratedPage(arch.PhysAddr(i << arch.PageShift)); err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("OOM not errors.Is(ErrOutOfMemory): %v", err)
			}
			oomAt = arch.PhysAddr(i << arch.PageShift)
			break
		}
	}
	if oomAt == 0 {
		t.Error("tiny host never ran out of frames")
	}
}

// TestOOMErrorWrapsCause pins the error-chain contract: an OOMError
// carrying a cause exposes it through Unwrap, so errors.Is reaches both
// the OOMError sentinel behaviour and the wrapped cause.
func TestOOMErrorWrapsCause(t *testing.T) {
	cause := errors.New("injected cause")
	err := &OOMError{VM: 3, NeedPages: 1, Err: cause}
	if !errors.Is(err, cause) {
		t.Error("cause not reachable through Unwrap")
	}
	if !strings.Contains(err.Error(), "injected cause") {
		t.Errorf("cause missing from message %q", err.Error())
	}
	var oom *OOMError
	if !errors.As(error(err), &oom) || oom.VM != 3 {
		t.Error("errors.As lost the OOMError")
	}

	organic := &OOMError{VM: 1, NeedPages: 2}
	if organic.Unwrap() != nil {
		t.Error("organic OOMError unwraps non-nil")
	}
	if errors.Is(organic, cause) {
		t.Error("organic OOMError matched an unrelated cause")
	}
}
