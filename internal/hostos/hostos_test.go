package hostos

import (
	"errors"
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/physmem"
)

func TestCreateVMValidation(t *testing.T) {
	k := NewKernel(16 << 20)
	if _, err := k.CreateVM(0); err == nil {
		t.Error("CreateVM(0) succeeded")
	}
	if _, err := k.CreateVM(100); err == nil {
		t.Error("CreateVM(non-page-multiple) succeeded")
	}
	if _, err := k.CreateVM(8 << 20); err != nil {
		t.Errorf("CreateVM failed: %v", err)
	}
}

func TestFaultMapsGuestPage(t *testing.T) {
	k := NewKernel(16 << 20)
	vm, _ := k.CreateVM(8 << 20)
	gpa := arch.PhysAddr(0x123000)
	if _, ok := vm.Translate(gpa); ok {
		t.Fatal("unmapped gpa translates")
	}
	if err := vm.HandleFault(gpa + 0x10); err != nil {
		t.Fatal(err)
	}
	hpa, ok := vm.Translate(gpa + 0x10)
	if !ok {
		t.Fatal("gpa not mapped after fault")
	}
	if off := uint64(hpa) & arch.PageMask; off != 0x10 {
		t.Errorf("offset not preserved: %#x", uint64(hpa))
	}
	if vm.Faults() != 1 || vm.MappedGuestPages() != 1 {
		t.Errorf("faults=%d mapped=%d", vm.Faults(), vm.MappedGuestPages())
	}
	// Repeat fault is a no-op.
	vm.HandleFault(gpa)
	if vm.Faults() != 1 {
		t.Errorf("spurious fault counted")
	}
}

func TestFaultBeyondVMMemory(t *testing.T) {
	k := NewKernel(16 << 20)
	vm, _ := k.CreateVM(1 << 20)
	if err := vm.HandleFault(arch.PhysAddr(2 << 20)); err == nil {
		t.Error("fault beyond guest memory succeeded")
	}
}

func TestHostOOM(t *testing.T) {
	k := NewKernel(16 * arch.PageSize)
	vm, _ := k.CreateVM(1 << 20)
	var err error
	for i := 0; i < 64; i++ {
		if err = vm.HandleFault(arch.PhysAddr(i * arch.PageSize)); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestScatteredGPAsScatterHostPTEs(t *testing.T) {
	// The §3.1 carry-over: contiguous guest-physical pages get adjacent
	// host leaf PTEs; scattered ones do not.
	k := NewKernel(64 << 20)
	vm, _ := k.CreateVM(32 << 20)
	// Contiguous gPAs → one cache block of host leaf PTEs.
	blocks := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		gpa := arch.PhysAddr(0x100000 + i*arch.PageSize)
		vm.HandleFault(gpa)
		ea, ok := vm.PageTable().LeafEntryAddr(arch.VirtAddr(gpa))
		if !ok {
			t.Fatal("leaf entry missing")
		}
		blocks[ea.CacheBlock()] = true
	}
	if len(blocks) != 1 {
		t.Errorf("contiguous gPAs occupy %d hPTE blocks, want 1", len(blocks))
	}
	// Scattered gPAs (64KB apart) → 8 distinct blocks.
	blocks = map[uint64]bool{}
	for i := 0; i < 8; i++ {
		gpa := arch.PhysAddr(0x1000000 + i*0x10000)
		vm.HandleFault(gpa)
		ea, _ := vm.PageTable().LeafEntryAddr(arch.VirtAddr(gpa))
		blocks[ea.CacheBlock()] = true
	}
	if len(blocks) != 8 {
		t.Errorf("scattered gPAs occupy %d hPTE blocks, want 8", len(blocks))
	}
}

func TestCreateVMWithLevels(t *testing.T) {
	k := NewKernel(32 << 20)
	vm5, err := k.CreateVMWithLevels(8<<20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if vm5.PageTable().Levels() != 5 {
		t.Errorf("Levels = %d", vm5.PageTable().Levels())
	}
	if _, err := k.CreateVMWithLevels(8<<20, 3); err == nil {
		t.Error("depth 3 accepted")
	}
	if err := vm5.HandleFault(0x1000); err != nil {
		t.Fatal(err)
	}
	if _, ok := vm5.Translate(0x1000); !ok {
		t.Error("5-level host translate failed")
	}
}

func TestVMAccessors(t *testing.T) {
	k := NewKernel(32 << 20)
	vm, _ := k.CreateVM(8 << 20)
	if vm.ID() != 1 {
		t.Errorf("ID = %d", vm.ID())
	}
	if vm.GuestMemBytes() != 8<<20 {
		t.Errorf("GuestMemBytes = %d", vm.GuestMemBytes())
	}
	if k.Memory() == nil {
		t.Error("Memory nil")
	}
}

func TestMultiVMIDAssignment(t *testing.T) {
	k := NewKernel(64 << 20)
	a, _ := k.CreateVM(8 << 20)
	b, _ := k.CreateVM(8 << 20)
	c, _ := k.CreateVM(8 << 20)
	if a.ID() != 1 || b.ID() != 2 || c.ID() != 3 {
		t.Errorf("ids = %d,%d,%d, want 1,2,3", a.ID(), b.ID(), c.ID())
	}
	if got := len(k.VMs()); got != 3 {
		t.Errorf("VMs() has %d entries, want 3", got)
	}
	// Ids are monotonic: destroying b must not let a later VM reuse 2.
	k.DestroyVM(b)
	d, _ := k.CreateVM(8 << 20)
	if d.ID() != 4 {
		t.Errorf("id after teardown = %d, want 4 (no reuse)", d.ID())
	}
	if got := len(k.VMs()); got != 3 {
		t.Errorf("VMs() has %d entries after teardown+boot, want 3", got)
	}
}

func TestPerVMFaultCounters(t *testing.T) {
	k := NewKernel(64 << 20)
	a, _ := k.CreateVM(8 << 20)
	b, _ := k.CreateVM(8 << 20)
	for i := 0; i < 5; i++ {
		if err := a.HandleFault(arch.PhysAddr(i * arch.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := b.HandleFault(arch.PhysAddr(i * arch.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Faults() != 5 || b.Faults() != 3 {
		t.Errorf("faults = %d,%d, want 5,3", a.Faults(), b.Faults())
	}
	// Frame ownership is attributed per VM.
	mem := k.Memory()
	if got := mem.CountOwnedVM(physmem.KindUser, a.ID()); got != 5 {
		t.Errorf("vm %d owns %d user frames, want 5", a.ID(), got)
	}
	if got := mem.CountOwnedVM(physmem.KindUser, b.ID()); got != 3 {
		t.Errorf("vm %d owns %d user frames, want 3", b.ID(), got)
	}
}

func TestTwoVMHostExhaustion(t *testing.T) {
	// Two VMs competing for a tiny host: the second faulting VM must hit a
	// typed OOM naming itself, while errors.Is compatibility holds.
	k := NewKernel(24 * arch.PageSize)
	a, _ := k.CreateVM(1 << 20)
	b, _ := k.CreateVM(1 << 20)
	var err error
	for i := 0; err == nil && i < 64; i++ {
		err = a.HandleFault(arch.PhysAddr(i * arch.PageSize))
		if err == nil {
			err = b.HandleFault(arch.PhysAddr(i * arch.PageSize))
		}
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory compatibility", err)
	}
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want *OOMError", err)
	}
	if oom.VM != a.ID() && oom.VM != b.ID() {
		t.Errorf("OOMError.VM = %d, want one of %d/%d", oom.VM, a.ID(), b.ID())
	}
	if oom.NeedPages != 1 {
		t.Errorf("OOMError.NeedPages = %d, want 1", oom.NeedPages)
	}
}

func TestDestroyVMReturnsFrames(t *testing.T) {
	k := NewKernel(64 << 20)
	free0 := k.Memory().FreeFrames()
	vm, _ := k.CreateVM(8 << 20)
	for i := 0; i < 32; i++ {
		if err := vm.HandleFault(arch.PhysAddr(i * arch.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if k.Memory().FreeFrames() >= free0 {
		t.Fatal("faulting allocated nothing")
	}
	k.DestroyVM(vm)
	if vm.Alive() {
		t.Error("VM alive after DestroyVM")
	}
	if got := k.Memory().FreeFrames(); got != free0 {
		t.Errorf("free frames after teardown = %d, want %d (all frames returned)", got, free0)
	}
	if got := k.Memory().CountOwnedVM(physmem.KindUser, vm.ID()); got != 0 {
		t.Errorf("vm still owns %d user frames after teardown", got)
	}
	// Coalescing: a max-order block must be allocatable again.
	if _, ok := k.Memory().AllocOrder(3, physmem.KindUser, physmem.VMOwner(99)); !ok {
		t.Error("order-3 allocation failed after teardown (no coalescing)")
	}
	// Double-destroy is a no-op.
	k.DestroyVM(vm)
}
