package hostos

import (
	"errors"
	"strings"
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/physmem"
)

// fakeReliever scripts a PressureReliever: on each call it frees the next
// batch of held frames (if any) and reports the scripted summary.
type fakeReliever struct {
	mem     *physmem.Memory
	held    []arch.PhysAddr
	perCall int
	summary string
	calls   int
}

func (f *fakeReliever) RelieveFor(vm int, need uint64) (string, bool) {
	f.calls++
	n := f.perCall
	if n > len(f.held) {
		n = len(f.held)
	}
	for _, pa := range f.held[:n] {
		f.mem.FreeBlock(pa)
	}
	f.held = f.held[n:]
	return f.summary, f.mem.FreeFrames() >= need
}

// exhaust empties the host pool, returning the frames taken.
func exhaust(t *testing.T, k *Kernel) []arch.PhysAddr {
	t.Helper()
	var held []arch.PhysAddr
	for {
		pa, ok := k.mem.AllocFrame(physmem.KindUser, physmem.Own(0, 0))
		if !ok {
			return held
		}
		held = append(held, pa)
	}
}

// TestReliefRetriesAllocationOnce pins the bounded reclaim-then-retry
// contract: a fault that finds the pool empty asks the reliever once,
// retries once, and succeeds when relief freed enough.
func TestReliefRetriesAllocationOnce(t *testing.T) {
	k := NewKernel(4 << 20)
	vm, err := k.CreateVM(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// Map one page first so the PT chain exists before exhaustion.
	if err := vm.HandleFault(0); err != nil {
		t.Fatal(err)
	}
	held := exhaust(t, k)
	r := &fakeReliever{mem: k.mem, held: held, perCall: 8, summary: "scripted"}
	k.SetPressureReliever(r)
	if err := vm.HandleFault(arch.PhysAddr(arch.PageSize)); err != nil {
		t.Fatalf("fault died despite a working reliever: %v", err)
	}
	if r.calls != 1 {
		t.Errorf("reliever called %d times, want exactly 1", r.calls)
	}
	if !vm.Mapped(arch.PhysAddr(arch.PageSize)) {
		t.Error("retried fault left the page unmapped")
	}
}

// TestOOMErrorCarriesBalloonSummary pins the satellite: when relief runs
// but cannot free enough, the surfaced OOMError embeds the attempt
// summary in its message.
func TestOOMErrorCarriesBalloonSummary(t *testing.T) {
	k := NewKernel(4 << 20)
	vm, err := k.CreateVM(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.HandleFault(0); err != nil {
		t.Fatal(err)
	}
	exhaust(t, k)
	r := &fakeReliever{mem: k.mem, summary: "vm9(ws=3,freed=0); 0 page(s) reclaimed"}
	k.SetPressureReliever(r)
	err = vm.HandleFault(arch.PhysAddr(arch.PageSize))
	if err == nil {
		t.Fatal("fault survived an exhausted host with a dry reliever")
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("err %T is not *OOMError", err)
	}
	if oom.Balloon != r.summary {
		t.Errorf("OOMError.Balloon = %q, want the relief summary", oom.Balloon)
	}
	if msg := err.Error(); !strings.Contains(msg, "[balloon: vm9(ws=3,freed=0)") {
		t.Errorf("message %q does not embed the balloon summary", msg)
	}
	if r.calls != 1 {
		t.Errorf("reliever called %d times, want exactly 1 (no unbounded retry)", r.calls)
	}
}

// TestOOMErrorWithoutRelieverOmitsBalloon pins the message shape on
// balloon-free hosts: no reliever, no "[balloon: ...]" suffix.
func TestOOMErrorWithoutRelieverOmitsBalloon(t *testing.T) {
	k := NewKernel(4 << 20)
	vm, err := k.CreateVM(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.HandleFault(0); err != nil {
		t.Fatal(err)
	}
	exhaust(t, k)
	err = vm.HandleFault(arch.PhysAddr(arch.PageSize))
	if err == nil {
		t.Fatal("fault survived an exhausted host")
	}
	if msg := err.Error(); strings.Contains(msg, "balloon") {
		t.Errorf("balloon-free OOM message %q mentions the balloon", msg)
	}
}

// TestNodeExhaustionTakesReliefPath pins the second relief site: when the
// frame allocation succeeds but the page-table node allocation does not,
// the same relieve-then-retry path runs before OOMError surfaces.
func TestNodeExhaustionTakesReliefPath(t *testing.T) {
	k := NewKernel(8 << 20)
	vm, err := k.CreateVM(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.HandleFault(0); err != nil {
		t.Fatal(err)
	}
	held := exhaust(t, k)
	// Give back exactly one frame: the data frame allocates, the fresh PT
	// chain for a distant gpa cannot.
	k.mem.FreeBlock(held[0])
	r := &fakeReliever{mem: k.mem, held: held[1:], perCall: 8, summary: "nodes"}
	k.SetPressureReliever(r)
	// 2MB-aligned distance forces a new leaf table.
	far := arch.PhysAddr(1 << 21)
	if err := vm.HandleFault(far); err != nil {
		t.Fatalf("node-starved fault died despite a working reliever: %v", err)
	}
	if r.calls == 0 {
		t.Error("reliever never consulted for node exhaustion")
	}
	if !vm.Mapped(far) {
		t.Error("retried mapping left the page unmapped")
	}
}
