// Package hostos simulates the host (hypervisor) kernel's memory
// management, the KVM arrangement the paper describes in §3.1: a virtual
// machine is just a process, and the VM's guest-physical address space is
// one contiguous virtual region of that process. Host-physical frames are
// allocated lazily, page by page, on the first access to each guest-physical
// page — which is why fragmentation in guest-physical memory carries over
// into the host page table: the host PT is indexed by guest-physical
// addresses, so scattered guest-physical pages occupy scattered host PTEs
// regardless of where the host places the backing frames.
package hostos

import (
	"errors"
	"fmt"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/physmem"
)

// ErrOutOfMemory reports host-physical exhaustion. Allocation paths return
// the richer *OOMError, which matches this sentinel under errors.Is.
var ErrOutOfMemory = errors.New("hostos: out of host-physical memory")

// OOMError reports which VM exhausted host-physical memory and how many
// pages its allocation needed. It matches ErrOutOfMemory under errors.Is,
// so existing sentinel checks keep working.
type OOMError struct {
	// VM is the id of the VM whose fault could not be served.
	VM int
	// NeedPages is the size of the failed allocation in pages.
	NeedPages uint64
	// Err is the underlying cause when the exhaustion was not organic: an
	// injected fault (faults.ErrInjected) or a page-table node allocation
	// failure (pagetable.ErrNoMemory). Nil for a plain out-of-frames OOM.
	Err error
	// Balloon summarises the pressure-relief attempt that preceded this
	// error (victims tried, pages reclaimed), so an exhausted-host failure
	// is diagnosable from its message alone. Empty when no reliever was
	// installed.
	Balloon string
}

// Error describes the exhaustion.
func (e *OOMError) Error() string {
	msg := fmt.Sprintf("hostos: out of host-physical memory (vm %d needed %d page(s))", e.VM, e.NeedPages)
	if e.Balloon != "" {
		msg += fmt.Sprintf(" [balloon: %s]", e.Balloon)
	}
	if e.Err != nil {
		msg += fmt.Sprintf(": %v", e.Err)
	}
	return msg
}

// Is reports sentinel equivalence with ErrOutOfMemory.
func (e *OOMError) Is(target error) bool { return target == ErrOutOfMemory }

// Unwrap exposes the cause, keeping wrapped markers (e.g.
// faults.ErrInjected) errors.Is-reachable through the OOM layer.
func (e *OOMError) Unwrap() error { return e.Err }

// OOMInjector injects host-level allocation failures for deterministic
// fault testing (faults.Plan implements it). InjectHostOOM is consulted
// once per fault-time frame allocation; a non-nil return fails the
// allocation with that cause wrapped in an *OOMError.
type OOMInjector interface {
	InjectHostOOM() error
}

// DirtyLogInjector forces dirty-log overflows for deterministic fault
// testing (faults.Plan implements it). ForceDirtyLogOverflow is consulted
// once per logged clear→set transition; returning true drops the entry
// and latches the overflow flag, as if the buffer had filled.
type DirtyLogInjector interface {
	ForceDirtyLogOverflow() bool
}

// PressureReliever frees host frames under allocation pressure
// (balloon.Controller implements it). RelieveFor is called when an
// allocation on behalf of VM vm cannot find need free frames; it returns
// a human-readable summary of the attempt (victims tried, pages
// reclaimed) and whether at least need frames are now free. The failed
// allocation is retried exactly once after a relief attempt, so OOMError
// surfaces only when ballooning genuinely cannot satisfy the request.
type PressureReliever interface {
	RelieveFor(vm int, need uint64) (summary string, ok bool)
}

// oomAbsorber is the optional faults.Plan extension hostos discovers by
// type assertion: when an injected host OOM is absorbed in-run by the
// pressure reliever instead of failing the attempt, the plan is told so
// its counters can distinguish degradation from recovery-by-retry.
type oomAbsorber interface {
	NoteAbsorbedHostOOM()
}

// Kernel is the host kernel, owner of host-physical memory.
type Kernel struct {
	mem *physmem.Memory
	vms []*VM
	// nextID is monotonic across VM teardown, so ids never repeat within
	// one host's lifetime (frame attribution of a destroyed VM can never
	// be confused with a later tenant's).
	nextID int
	// oomInject, when non-nil, is consulted before each fault-time frame
	// allocation (fault injection; nil on the production path).
	oomInject OOMInjector
	// reliever, when non-nil, turns allocation-time OOM into a bounded
	// balloon-then-retry path (nil on the zero-pressure path).
	reliever PressureReliever
}

// SetOOMInjector installs h (nil removes it); every subsequent
// HandleFault consults it before allocating.
func (k *Kernel) SetOOMInjector(h OOMInjector) { k.oomInject = h }

// SetPressureReliever installs r (nil removes it); every subsequent
// failed frame allocation attempts relief through it once before
// surfacing OOMError.
func (k *Kernel) SetPressureReliever(r PressureReliever) { k.reliever = r }

// NewKernel boots a host kernel managing memBytes of host-physical memory.
func NewKernel(memBytes uint64) *Kernel {
	return &Kernel{mem: physmem.New(memBytes)}
}

// Memory exposes host-physical memory for inspection.
func (k *Kernel) Memory() *physmem.Memory { return k.mem }

// VMs returns the live VMs in creation order.
func (k *Kernel) VMs() []*VM { return k.vms }

// VM is one virtual machine: a host process whose virtual address space is
// the guest-physical address space.
type VM struct {
	kernel *Kernel
	id     int
	// pt is the host page table: guest-physical → host-physical.
	pt            *pagetable.Table
	guestMemBytes uint64
	faults        uint64
	alive         bool
	// dlog, when non-nil, is the PML-style dirty-page log live migration
	// uses to track writes between pre-copy rounds.
	dlog *dirtyLog
	// dlogInject, when non-nil, can force dirty-log overflows (fault
	// injection; nil on the production path).
	dlogInject DirtyLogInjector
}

// SetDirtyLogInjector installs h (nil removes it); every subsequent
// logged dirty transition consults it.
func (vm *VM) SetDirtyLogInjector(h DirtyLogInjector) { vm.dlogInject = h }

// CreateVM registers a VM with the given guest-physical memory size. The
// guest-physical space [0, guestMemBytes) is the VM process's eagerly
// created virtual region; host frames arrive on demand.
func (k *Kernel) CreateVM(guestMemBytes uint64) (*VM, error) {
	return k.CreateVMWithLevels(guestMemBytes, 4)
}

// CreateVMWithLevels is CreateVM with a selectable host page-table depth
// (4-level EPT, or the 5-level EPT that accompanies LA57).
func (k *Kernel) CreateVMWithLevels(guestMemBytes uint64, levels int) (*VM, error) {
	if guestMemBytes == 0 || guestMemBytes%arch.PageSize != 0 {
		return nil, fmt.Errorf("hostos: bad guest memory size %d", guestMemBytes)
	}
	id := k.nextID + 1
	pt, err := pagetable.NewWithLevels(k.mem, physmem.VMOwner(id), levels)
	if err != nil {
		return nil, err
	}
	k.nextID = id
	vm := &VM{kernel: k, id: id, pt: pt, guestMemBytes: guestMemBytes, alive: true}
	k.vms = append(k.vms, vm)
	return vm, nil
}

// DestroyVM tears the VM down: every mapped host frame and every host
// page-table node goes back to the host buddy allocator, and the VM leaves
// the kernel's VM list. Destroying an already-destroyed VM is a no-op.
// Frame returns happen in ascending guest-physical order followed by the
// page-table nodes in ascending frame order, so teardown is deterministic
// and buddy coalescing sees the same sequence on every run.
func (k *Kernel) DestroyVM(vm *VM) {
	if !vm.alive || vm.kernel != k {
		return
	}
	vm.alive = false
	vm.pt.ForEachMapped(func(_ arch.VirtAddr, hpa arch.PhysAddr, _ pagetable.Flags) bool {
		k.mem.FreeBlock(hpa)
		return true
	})
	vm.pt.Destroy()
	for i, v := range k.vms {
		if v == vm {
			k.vms = append(k.vms[:i], k.vms[i+1:]...)
			break
		}
	}
}

// ID returns the VM's host process id.
func (vm *VM) ID() int { return vm.id }

// Alive reports whether the VM has not been destroyed.
func (vm *VM) Alive() bool { return vm.alive }

// PageTable exposes the host page table of this VM.
func (vm *VM) PageTable() *pagetable.Table { return vm.pt }

// GuestMemBytes returns the guest-physical memory size.
func (vm *VM) GuestMemBytes() uint64 { return vm.guestMemBytes }

// Faults returns the number of host page faults (EPT violations) taken.
func (vm *VM) Faults() uint64 { return vm.faults }

// Translate maps a guest-physical address to host-physical, if mapped.
func (vm *VM) Translate(gpa arch.PhysAddr) (arch.PhysAddr, bool) {
	hpa, _, ok := vm.pt.Translate(arch.VirtAddr(gpa))
	return hpa, ok
}

// HandleFault resolves a host page fault for gpa: allocates one
// host-physical frame through the default buddy path and maps it. It is the
// hypervisor-side analogue of the guest's default allocator — the host runs
// stock allocation; PTEMagnet changes only the guest (§4).
func (vm *VM) HandleFault(gpa arch.PhysAddr) error {
	if uint64(gpa) >= vm.guestMemBytes {
		return fmt.Errorf("hostos: guest-physical address %#x beyond VM memory %d", uint64(gpa), vm.guestMemBytes)
	}
	page := arch.VirtAddr(gpa).PageBase()
	if _, _, ok := vm.pt.Translate(page); ok {
		return nil
	}
	k := vm.kernel
	if k.oomInject != nil {
		if cause := k.oomInject.InjectHostOOM(); cause != nil {
			if k.reliever == nil {
				return &OOMError{VM: vm.id, NeedPages: 1, Err: cause}
			}
			// With a reliever armed, an injected allocation failure takes
			// the same balloon-then-retry path as an organic one: relieve,
			// then fall through to the (single) re-attempted allocation.
			summary, ok := k.reliever.RelieveFor(vm.id, 1)
			if !ok {
				return &OOMError{VM: vm.id, NeedPages: 1, Err: cause, Balloon: summary}
			}
			if a, can := k.oomInject.(oomAbsorber); can {
				a.NoteAbsorbedHostOOM()
			}
		}
	}
	return vm.backPage(page, true)
}

// backPage allocates one host frame and maps it at page, taking the
// reliever's balloon-then-retry path when either the frame or a
// page-table node allocation fails. isFault selects whether the mapping
// counts as an EPT violation.
func (vm *VM) backPage(page arch.VirtAddr, isFault bool) error {
	k := vm.kernel
	var summary string
	hpa, ok := k.mem.AllocFrame(physmem.KindUser, physmem.VMOwner(vm.id))
	if !ok && k.reliever != nil {
		summary, _ = k.reliever.RelieveFor(vm.id, 1)
		hpa, ok = k.mem.AllocFrame(physmem.KindUser, physmem.VMOwner(vm.id))
	}
	if !ok {
		return &OOMError{VM: vm.id, NeedPages: 1, Balloon: summary}
	}
	if isFault {
		vm.faults++
	}
	err := vm.pt.Map(page, hpa, pagetable.FlagWritable)
	if err != nil && errors.Is(err, pagetable.ErrNoMemory) && k.reliever != nil {
		// Node-allocation exhaustion gets one relief-and-retry too; Map
		// leaves a consistent tree on ErrNoMemory, so re-walking it only
		// allocates the nodes still missing.
		var relieved bool
		summary, relieved = k.reliever.RelieveFor(vm.id, 1)
		if relieved {
			err = vm.pt.Map(page, hpa, pagetable.FlagWritable)
		}
	}
	if err != nil {
		// Node-allocation exhaustion is host OOM too: wrap it so callers
		// see one taxonomy root instead of a bare pagetable error.
		if errors.Is(err, pagetable.ErrNoMemory) {
			return &OOMError{VM: vm.id, NeedPages: 1, Err: err, Balloon: summary}
		}
		return err
	}
	return nil
}

// MappedGuestPages returns the number of guest-physical pages with host
// backing.
func (vm *VM) MappedGuestPages() uint64 { return vm.pt.MappedPages() }

// Mapped reports whether the guest-physical page containing gpa has host
// backing.
func (vm *VM) Mapped(gpa arch.PhysAddr) bool {
	_, _, ok := vm.pt.Translate(arch.VirtAddr(gpa).PageBase())
	return ok
}

// DefaultDirtyLogEntries is the dirty-log capacity when EnableDirtyLogging
// is given zero: one page-table node's worth of entries, matching the
// 512-entry in-memory buffer of Intel Page Modification Logging.
const DefaultDirtyLogEntries = arch.PTEntriesPerNode

// dirtyLog is the PML-style write-tracking state of one VM: a bounded
// buffer of guest-physical page addresses whose EPT dirty bit transitioned
// clear→set since the last drain. When the buffer fills, further
// transitions still set dirty bits but are no longer buffered; the next
// drain falls back to a full EPT rescan — exactly PML's overflow VM-exit
// semantics, priced at a table walk instead of a buffer read.
type dirtyLog struct {
	capacity int
	entries  []arch.PhysAddr
	// overflowed latches "buffer filled since last drain".
	overflowed bool
	// logged counts clear→set transitions observed (buffered or not).
	logged uint64
	// overflows counts drains that required a full rescan.
	overflows uint64
}

// EnableDirtyLogging starts write tracking over the VM's host page table
// (EPT). capacity bounds the log buffer; zero selects
// DefaultDirtyLogEntries. Any dirty bits left over from a previous tracking
// session are cleared so the log starts from a clean slate. Enabling while
// already enabled resets the log.
func (vm *VM) EnableDirtyLogging(capacity int) {
	if capacity <= 0 {
		capacity = DefaultDirtyLogEntries
	}
	vm.clearAllDirty()
	vm.dlog = &dirtyLog{capacity: capacity}
}

// DisableDirtyLogging stops write tracking and discards the log. Dirty bits
// already set in the page table are cleared.
func (vm *VM) DisableDirtyLogging() {
	vm.dlog = nil
	vm.clearAllDirty()
}

func (vm *VM) clearAllDirty() {
	var dirty []arch.PhysAddr
	vm.pt.ForEachDirty(func(va arch.VirtAddr) bool {
		dirty = append(dirty, arch.PhysAddr(va))
		return true
	})
	for _, gpa := range dirty {
		vm.pt.ClearDirty(arch.VirtAddr(gpa))
	}
}

// DirtyLogging reports whether write tracking is enabled. The machine's
// execution loop checks this before paying for MarkDirty on every write.
func (vm *VM) DirtyLogging() bool { return vm.dlog != nil }

// DirtyLogged returns the number of clear→set dirty transitions observed
// since logging was enabled (including transitions dropped on overflow).
func (vm *VM) DirtyLogged() uint64 {
	if vm.dlog == nil {
		return 0
	}
	return vm.dlog.logged
}

// DirtyLogOverflows returns the number of drains that fell back to a full
// EPT rescan because the buffer had overflowed.
func (vm *VM) DirtyLogOverflows() uint64 {
	if vm.dlog == nil {
		return 0
	}
	return vm.dlog.overflows
}

// MarkDirty records a write to the guest-physical page containing gpa: the
// EPT leaf entry's dirty bit is set, and on a clear→set transition the page
// is appended to the dirty log (or, if the buffer is full, the overflow
// latch is set). A no-op unless dirty logging is enabled and the page has
// host backing. Like hardware PML, this costs the guest nothing — the page
// walker writes the log entry on its own.
func (vm *VM) MarkDirty(gpa arch.PhysAddr) {
	d := vm.dlog
	if d == nil {
		return
	}
	if !vm.pt.MarkDirty(arch.VirtAddr(gpa).PageBase()) {
		return
	}
	d.logged++
	if vm.dlogInject != nil && vm.dlogInject.ForceDirtyLogOverflow() {
		d.overflowed = true
		return
	}
	if len(d.entries) < d.capacity {
		d.entries = append(d.entries, gpa.PageBase())
		return
	}
	d.overflowed = true
}

// DrainDirtyLog returns the guest-physical pages dirtied since the last
// drain and resets the log. If the buffer overflowed, the pages come from a
// full EPT rescan in ascending guest-physical order and rescan is true;
// otherwise they come from the buffer in first-write order. Either order is
// deterministic. All reported pages have their dirty bits cleared, so the
// next write to any of them logs again.
func (vm *VM) DrainDirtyLog() (pages []arch.PhysAddr, rescan bool) {
	d := vm.dlog
	if d == nil {
		return nil, false
	}
	if d.overflowed {
		vm.pt.ForEachDirty(func(va arch.VirtAddr) bool {
			pages = append(pages, arch.PhysAddr(va))
			return true
		})
		rescan = true
		d.overflows++
	} else {
		pages = append(pages, d.entries...)
	}
	for _, gpa := range pages {
		vm.pt.ClearDirty(arch.VirtAddr(gpa))
	}
	d.entries = d.entries[:0]
	d.overflowed = false
	return pages, rescan
}

// MapMigratedPage gives the guest-physical page containing gpa host backing
// during a live-migration copy: one frame is allocated through the stock
// buddy path — the destination host re-allocates the image frame by frame,
// and whether the guest's PTEs stay contiguous afterwards depends only on
// the guest-physical layout the guest brings with it (§2: the host PT is
// indexed by guest-physical addresses). Unlike HandleFault it does not
// count as an EPT violation. Copying onto an already-backed page (a
// re-dirtied page shipped again) rewrites contents, not the mapping, so it
// is a mapping no-op here.
func (vm *VM) MapMigratedPage(gpa arch.PhysAddr) error {
	if uint64(gpa) >= vm.guestMemBytes {
		return fmt.Errorf("hostos: migrated guest-physical address %#x beyond VM memory %d", uint64(gpa), vm.guestMemBytes)
	}
	page := arch.VirtAddr(gpa).PageBase()
	if _, _, ok := vm.pt.Translate(page); ok {
		return nil
	}
	return vm.backPage(page, false)
}

// Unback drops the host backing of the guest-physical page containing
// gpa: the EPT mapping is removed and the host frame returns to the host
// buddy allocator, where it can coalesce with its buddies. It reports
// whether a frame was actually freed (false when the page never had host
// backing). The balloon controller calls it for every guest-ballooned
// page; the next guest access to the page re-faults and re-allocates
// lazily, exactly like first touch.
func (vm *VM) Unback(gpa arch.PhysAddr) bool {
	page := arch.VirtAddr(gpa).PageBase()
	hpa, _, ok := vm.pt.Unmap(page)
	if !ok {
		return false
	}
	vm.kernel.mem.FreeBlock(hpa)
	return true
}
