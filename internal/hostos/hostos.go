// Package hostos simulates the host (hypervisor) kernel's memory
// management, the KVM arrangement the paper describes in §3.1: a virtual
// machine is just a process, and the VM's guest-physical address space is
// one contiguous virtual region of that process. Host-physical frames are
// allocated lazily, page by page, on the first access to each guest-physical
// page — which is why fragmentation in guest-physical memory carries over
// into the host page table: the host PT is indexed by guest-physical
// addresses, so scattered guest-physical pages occupy scattered host PTEs
// regardless of where the host places the backing frames.
package hostos

import (
	"errors"
	"fmt"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/physmem"
)

// ErrOutOfMemory reports host-physical exhaustion. Allocation paths return
// the richer *OOMError, which matches this sentinel under errors.Is.
var ErrOutOfMemory = errors.New("hostos: out of host-physical memory")

// OOMError reports which VM exhausted host-physical memory and how many
// pages its allocation needed. It matches ErrOutOfMemory under errors.Is,
// so existing sentinel checks keep working.
type OOMError struct {
	// VM is the id of the VM whose fault could not be served.
	VM int
	// NeedPages is the size of the failed allocation in pages.
	NeedPages uint64
}

// Error describes the exhaustion.
func (e *OOMError) Error() string {
	return fmt.Sprintf("hostos: out of host-physical memory (vm %d needed %d page(s))", e.VM, e.NeedPages)
}

// Is reports sentinel equivalence with ErrOutOfMemory.
func (e *OOMError) Is(target error) bool { return target == ErrOutOfMemory }

// Kernel is the host kernel, owner of host-physical memory.
type Kernel struct {
	mem *physmem.Memory
	vms []*VM
	// nextID is monotonic across VM teardown, so ids never repeat within
	// one host's lifetime (frame attribution of a destroyed VM can never
	// be confused with a later tenant's).
	nextID int
}

// NewKernel boots a host kernel managing memBytes of host-physical memory.
func NewKernel(memBytes uint64) *Kernel {
	return &Kernel{mem: physmem.New(memBytes)}
}

// Memory exposes host-physical memory for inspection.
func (k *Kernel) Memory() *physmem.Memory { return k.mem }

// VMs returns the live VMs in creation order.
func (k *Kernel) VMs() []*VM { return k.vms }

// VM is one virtual machine: a host process whose virtual address space is
// the guest-physical address space.
type VM struct {
	kernel *Kernel
	id     int
	// pt is the host page table: guest-physical → host-physical.
	pt            *pagetable.Table
	guestMemBytes uint64
	faults        uint64
	alive         bool
}

// CreateVM registers a VM with the given guest-physical memory size. The
// guest-physical space [0, guestMemBytes) is the VM process's eagerly
// created virtual region; host frames arrive on demand.
func (k *Kernel) CreateVM(guestMemBytes uint64) (*VM, error) {
	return k.CreateVMWithLevels(guestMemBytes, 4)
}

// CreateVMWithLevels is CreateVM with a selectable host page-table depth
// (4-level EPT, or the 5-level EPT that accompanies LA57).
func (k *Kernel) CreateVMWithLevels(guestMemBytes uint64, levels int) (*VM, error) {
	if guestMemBytes == 0 || guestMemBytes%arch.PageSize != 0 {
		return nil, fmt.Errorf("hostos: bad guest memory size %d", guestMemBytes)
	}
	id := k.nextID + 1
	pt, err := pagetable.NewWithLevels(k.mem, physmem.VMOwner(id), levels)
	if err != nil {
		return nil, err
	}
	k.nextID = id
	vm := &VM{kernel: k, id: id, pt: pt, guestMemBytes: guestMemBytes, alive: true}
	k.vms = append(k.vms, vm)
	return vm, nil
}

// DestroyVM tears the VM down: every mapped host frame and every host
// page-table node goes back to the host buddy allocator, and the VM leaves
// the kernel's VM list. Destroying an already-destroyed VM is a no-op.
// Frame returns happen in ascending guest-physical order followed by the
// page-table nodes in ascending frame order, so teardown is deterministic
// and buddy coalescing sees the same sequence on every run.
func (k *Kernel) DestroyVM(vm *VM) {
	if !vm.alive || vm.kernel != k {
		return
	}
	vm.alive = false
	vm.pt.ForEachMapped(func(_ arch.VirtAddr, hpa arch.PhysAddr, _ pagetable.Flags) bool {
		k.mem.FreeBlock(hpa)
		return true
	})
	vm.pt.Destroy()
	for i, v := range k.vms {
		if v == vm {
			k.vms = append(k.vms[:i], k.vms[i+1:]...)
			break
		}
	}
}

// ID returns the VM's host process id.
func (vm *VM) ID() int { return vm.id }

// Alive reports whether the VM has not been destroyed.
func (vm *VM) Alive() bool { return vm.alive }

// PageTable exposes the host page table of this VM.
func (vm *VM) PageTable() *pagetable.Table { return vm.pt }

// GuestMemBytes returns the guest-physical memory size.
func (vm *VM) GuestMemBytes() uint64 { return vm.guestMemBytes }

// Faults returns the number of host page faults (EPT violations) taken.
func (vm *VM) Faults() uint64 { return vm.faults }

// Translate maps a guest-physical address to host-physical, if mapped.
func (vm *VM) Translate(gpa arch.PhysAddr) (arch.PhysAddr, bool) {
	hpa, _, ok := vm.pt.Translate(arch.VirtAddr(gpa))
	return hpa, ok
}

// HandleFault resolves a host page fault for gpa: allocates one
// host-physical frame through the default buddy path and maps it. It is the
// hypervisor-side analogue of the guest's default allocator — the host runs
// stock allocation; PTEMagnet changes only the guest (§4).
func (vm *VM) HandleFault(gpa arch.PhysAddr) error {
	if uint64(gpa) >= vm.guestMemBytes {
		return fmt.Errorf("hostos: guest-physical address %#x beyond VM memory %d", uint64(gpa), vm.guestMemBytes)
	}
	page := arch.VirtAddr(gpa).PageBase()
	if _, _, ok := vm.pt.Translate(page); ok {
		return nil
	}
	hpa, ok := vm.kernel.mem.AllocFrame(physmem.KindUser, physmem.VMOwner(vm.id))
	if !ok {
		return &OOMError{VM: vm.id, NeedPages: 1}
	}
	vm.faults++
	return vm.pt.Map(page, hpa, pagetable.FlagWritable)
}

// MappedGuestPages returns the number of guest-physical pages with host
// backing.
func (vm *VM) MappedGuestPages() uint64 { return vm.pt.MappedPages() }
