// Package cache models a CPU cache hierarchy at cache-block granularity.
//
// The model tracks tags only (no data): for the PTEMagnet reproduction the
// question is always *which level of the hierarchy serves an access*, in
// particular whether host page-table entries are served by the caches or by
// main memory (paper §3.3, Tables 1 and 4). Blocks are 64 bytes, sets are
// LRU, and the hierarchy is the classic private-L1/private-L2/shared-LLC
// arrangement of the Xeon the paper evaluates on, scaled down alongside the
// workload footprints.
package cache

import (
	"fmt"
	"strings"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/obs"
)

// Level identifies where in the memory hierarchy an access was served.
type Level uint8

const (
	// LevelL1 is the private first-level data cache.
	LevelL1 Level = iota
	// LevelL2 is the private second-level cache.
	LevelL2
	// LevelLLC is the shared last-level cache.
	LevelLLC
	// LevelMemory is main memory (a miss in every cache).
	LevelMemory
	// NumLevels is the number of distinct serving levels.
	NumLevels
)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelMemory:
		return "memory"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// LevelConfig describes one cache level.
type LevelConfig struct {
	// SizeBytes is the total capacity. Must be a power-of-two multiple of
	// Ways*CacheBlockSize.
	SizeBytes uint64
	// Ways is the set associativity.
	Ways int
	// Latency is the access latency in cycles when this level serves the
	// access (load-to-use, inclusive of lookups above it).
	Latency uint64
	// HashedIndex selects hashed set indexing (Intel "complex
	// addressing", used by the LLC on the paper's Broadwell parts). It
	// decorrelates set placement from physical page layout, so physical
	// (de)fragmentation changes a block's *footprint*, not its conflict
	// pattern — without it, page-coloring artifacts dwarf the effects
	// under study.
	HashedIndex bool
}

// Config describes a full hierarchy.
type Config struct {
	L1, L2, LLC LevelConfig
	// MemLatency is charged when all levels miss.
	MemLatency uint64
	// NumCPUs is the number of cores, each with private L1 and L2.
	NumCPUs int
}

// DefaultConfig returns a hierarchy shaped like the paper's Broadwell Xeon
// (32KB L1D, 256KB L2, large shared LLC) with the LLC scaled down in
// proportion to the simulator's scaled workload footprints.
func DefaultConfig(numCPUs int) Config {
	return Config{
		L1:         LevelConfig{SizeBytes: 32 << 10, Ways: 8, Latency: 4},
		L2:         LevelConfig{SizeBytes: 256 << 10, Ways: 8, Latency: 12, HashedIndex: true},
		LLC:        LevelConfig{SizeBytes: 2 << 20, Ways: 16, Latency: 42, HashedIndex: true},
		MemLatency: 220,
		NumCPUs:    numCPUs,
	}
}

// bank is one set-associative tag array.
type bank struct {
	setMask uint64
	hashed  bool
	ways    int
	// tags[set*ways+way]; tagValid uses tag==invalidTag sentinel.
	tags []uint64
	// age[set*ways+way] holds a per-set LRU stamp; larger = more recent.
	age  []uint64
	tick uint64
}

const invalidTag = ^uint64(0)

// set maps a block number to its set index. Hashed banks fold higher
// address bits into the index (a simple XOR-fold model of Intel complex
// addressing); plain banks use the low bits directly, as an L1 does.
func (b *bank) set(block uint64) uint64 {
	if b.hashed {
		block ^= block>>10 ^ block>>20 ^ block>>30
		block *= 0x9E3779B97F4A7C15 // Fibonacci hashing spreads the fold
		block >>= 17
	}
	return block & b.setMask
}

func newBank(cfg LevelConfig) *bank {
	if cfg.Ways <= 0 {
		panic("cache: non-positive associativity")
	}
	blocks := cfg.SizeBytes / arch.CacheBlockSize
	if blocks == 0 || blocks%uint64(cfg.Ways) != 0 {
		panic(fmt.Sprintf("cache: size %d not divisible into %d ways of blocks", cfg.SizeBytes, cfg.Ways))
	}
	sets := blocks / uint64(cfg.Ways)
	if !arch.IsPowerOfTwo(sets) {
		panic(fmt.Sprintf("cache: set count %d is not a power of two", sets))
	}
	b := &bank{
		setMask: sets - 1,
		hashed:  cfg.HashedIndex,
		ways:    cfg.Ways,
		tags:    make([]uint64, blocks),
		age:     make([]uint64, blocks),
	}
	for i := range b.tags {
		b.tags[i] = invalidTag
	}
	return b
}

// lookup probes for block and refreshes LRU on hit.
func (b *bank) lookup(block uint64) bool {
	set := b.set(block)
	base := int(set) * b.ways
	b.tick++
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == block {
			b.age[base+w] = b.tick
			return true
		}
	}
	return false
}

// insert fills block, evicting the LRU way if needed. It returns the evicted
// block and whether an eviction happened.
func (b *bank) insert(block uint64) (evicted uint64, wasEvicted bool) {
	set := b.set(block)
	base := int(set) * b.ways
	b.tick++
	victim := base
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.tags[i] == invalidTag {
			b.tags[i] = block
			b.age[i] = b.tick
			return 0, false
		}
		if b.age[i] < b.age[victim] {
			victim = i
		}
	}
	ev := b.tags[victim]
	b.tags[victim] = block
	b.age[victim] = b.tick
	return ev, true
}

// invalidate drops block if present.
func (b *bank) invalidate(block uint64) {
	set := b.set(block)
	base := int(set) * b.ways
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == block {
			b.tags[base+w] = invalidTag
			return
		}
	}
}

// contains probes without touching LRU state.
func (b *bank) contains(block uint64) bool {
	set := b.set(block)
	base := int(set) * b.ways
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == block {
			return true
		}
	}
	return false
}

// Hierarchy is a multi-core cache hierarchy: private L1/L2 per CPU and one
// shared LLC.
type Hierarchy struct {
	cfg Config
	l1  []*bank
	l2  []*bank
	llc *bank

	// hits[level] counts accesses served at that level, across all CPUs.
	hits [NumLevels]uint64
}

// NewHierarchy builds the hierarchy described by cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	if cfg.NumCPUs <= 0 {
		panic("cache: need at least one CPU")
	}
	h := &Hierarchy{cfg: cfg, llc: newBank(cfg.LLC)}
	for i := 0; i < cfg.NumCPUs; i++ {
		h.l1 = append(h.l1, newBank(cfg.L1))
		h.l2 = append(h.l2, newBank(cfg.L2))
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Access performs a load of the cache block containing pa on behalf of cpu.
// It returns the level that served the access and the latency charged.
// Misses fill every level on the way back (inclusive fill).
func (h *Hierarchy) Access(cpu int, pa arch.PhysAddr) (Level, uint64) {
	block := pa.CacheBlock()
	switch {
	case h.l1[cpu].lookup(block):
		h.hits[LevelL1]++
		return LevelL1, h.cfg.L1.Latency
	case h.l2[cpu].lookup(block):
		h.l1[cpu].insert(block)
		h.hits[LevelL2]++
		return LevelL2, h.cfg.L2.Latency
	case h.llc.lookup(block):
		h.l2[cpu].insert(block)
		h.l1[cpu].insert(block)
		h.hits[LevelLLC]++
		return LevelLLC, h.cfg.LLC.Latency
	default:
		h.llc.insert(block)
		h.l2[cpu].insert(block)
		h.l1[cpu].insert(block)
		h.hits[LevelMemory]++
		return LevelMemory, h.cfg.MemLatency
	}
}

// Contains reports whether the block containing pa is present at any level
// for the given CPU, without perturbing replacement state. Intended for
// tests and offline analysis.
func (h *Hierarchy) Contains(cpu int, pa arch.PhysAddr) bool {
	block := pa.CacheBlock()
	return h.l1[cpu].contains(block) || h.l2[cpu].contains(block) || h.llc.contains(block)
}

// Invalidate drops the block containing pa from every cache. The simulated
// kernels use it when remapping pages so stale PTE blocks don't linger.
func (h *Hierarchy) Invalidate(pa arch.PhysAddr) {
	block := pa.CacheBlock()
	for i := range h.l1 {
		h.l1[i].invalidate(block)
		h.l2[i].invalidate(block)
	}
	h.llc.invalidate(block)
}

// Stats holds the hierarchy's counters (DESIGN.md §8).
type Stats struct {
	// Hits[level] counts accesses served at that level, across all CPUs.
	Hits [NumLevels]uint64
}

// Total returns the total number of accesses performed.
func (s Stats) Total() uint64 {
	var n uint64
	for _, c := range s.Hits {
		n += c
	}
	return n
}

// MissRatio returns the fraction of accesses served by main memory.
func (s Stats) MissRatio() float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	return float64(s.Hits[LevelMemory]) / float64(total)
}

// Delta returns the counter-wise difference s - prev.
func (s Stats) Delta(prev Stats) Stats {
	var d Stats
	for i := range s.Hits {
		d.Hits[i] = s.Hits[i] - prev.Hits[i]
	}
	return d
}

// Snapshot returns the counters accumulated since creation.
func (h *Hierarchy) Snapshot() Stats { return Stats{Hits: h.hits} }

// RegisterObs registers the hierarchy's counters on r under prefix, one
// per serving level.
func (h *Hierarchy) RegisterObs(r *obs.Registry, prefix string) {
	for lv := Level(0); lv < NumLevels; lv++ {
		lv := lv
		r.Counter(prefix+"served."+strings.ToLower(lv.String()), func() uint64 {
			return h.hits[lv]
		})
	}
}

