package cache

import (
	"testing"

	"ptemagnet/internal/arch"
)

func tinyConfig() Config {
	return Config{
		L1:         LevelConfig{SizeBytes: 1 << 10, Ways: 2, Latency: 4},  // 8 sets
		L2:         LevelConfig{SizeBytes: 4 << 10, Ways: 4, Latency: 12}, // 16 sets
		LLC:        LevelConfig{SizeBytes: 16 << 10, Ways: 4, Latency: 42},
		MemLatency: 220,
		NumCPUs:    2,
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	lv, lat := h.Access(0, 0x1000)
	if lv != LevelMemory || lat != 220 {
		t.Fatalf("cold access served by %v at %d cycles", lv, lat)
	}
	lv, lat = h.Access(0, 0x1000)
	if lv != LevelL1 || lat != 4 {
		t.Fatalf("second access served by %v at %d cycles, want L1/4", lv, lat)
	}
	// Same block, different offset.
	lv, _ = h.Access(0, 0x103F)
	if lv != LevelL1 {
		t.Fatalf("same-block access served by %v, want L1", lv)
	}
	// Next block misses.
	lv, _ = h.Access(0, 0x1040)
	if lv != LevelMemory {
		t.Fatalf("next-block access served by %v, want memory", lv)
	}
}

func TestSharedLLCPrivateL1(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	h.Access(0, 0x2000) // CPU 0 fills all levels
	lv, _ := h.Access(1, 0x2000)
	if lv != LevelLLC {
		t.Fatalf("cross-CPU access served by %v, want LLC (shared)", lv)
	}
	// And now CPU 1 has it in L1 too.
	lv, _ = h.Access(1, 0x2000)
	if lv != LevelL1 {
		t.Fatalf("repeat cross-CPU access served by %v, want L1", lv)
	}
}

func TestLRUEvictionInL1(t *testing.T) {
	cfg := tinyConfig()
	h := NewHierarchy(cfg)
	// L1: 8 sets × 2 ways. Three blocks mapping to the same set: set =
	// block & 7, so blocks 0, 8, 16 (addresses 0, 8*64, 16*64) collide.
	a := arch.PhysAddr(0 * 64)
	b := arch.PhysAddr(8 * 64)
	c := arch.PhysAddr(16 * 64)
	h.Access(0, a)
	h.Access(0, b)
	h.Access(0, a) // refresh a; b becomes LRU
	h.Access(0, c) // evicts b from L1
	if lv, _ := h.Access(0, a); lv != LevelL1 {
		t.Errorf("a served by %v, want L1", lv)
	}
	if lv, _ := h.Access(0, b); lv == LevelL1 {
		t.Errorf("b unexpectedly still in L1")
	}
}

func TestL2BackstopsL1(t *testing.T) {
	cfg := tinyConfig()
	h := NewHierarchy(cfg)
	a := arch.PhysAddr(0)
	b := arch.PhysAddr(8 * 64)
	c := arch.PhysAddr(16 * 64)
	h.Access(0, a)
	h.Access(0, b)
	h.Access(0, c) // a evicted from L1 (LRU), still in L2
	if lv, _ := h.Access(0, a); lv != LevelL2 {
		t.Errorf("evicted-from-L1 block served by %v, want L2", lv)
	}
}

func TestInvalidate(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	h.Access(0, 0x3000)
	h.Access(1, 0x3000)
	h.Invalidate(0x3000)
	if h.Contains(0, 0x3000) || h.Contains(1, 0x3000) {
		t.Error("block still cached after Invalidate")
	}
	if lv, _ := h.Access(0, 0x3000); lv != LevelMemory {
		t.Errorf("access after invalidate served by %v, want memory", lv)
	}
}

func TestHitCounts(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	h.Access(0, 0x100) // memory
	h.Access(0, 0x100) // L1
	h.Access(1, 0x100) // LLC
	s := h.Snapshot()
	if s.Hits[LevelMemory] != 1 || s.Hits[LevelL1] != 1 || s.Hits[LevelLLC] != 1 {
		t.Errorf("counts = %v", s.Hits)
	}
	if s.Total() != 3 {
		t.Errorf("Total = %d", s.Total())
	}
	if r := s.MissRatio(); r < 0.33 || r > 0.34 {
		t.Errorf("MissRatio = %f", r)
	}
}

func TestMissRatioEmptyHierarchy(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	if h.Snapshot().MissRatio() != 0 {
		t.Error("MissRatio on untouched hierarchy should be 0")
	}
}

func TestWorkingSetFitsInLLC(t *testing.T) {
	cfg := tinyConfig()
	h := NewHierarchy(cfg)
	// Touch a working set that exceeds L1+L2 but fits the 16KB LLC, twice.
	// Second pass must be served entirely above memory.
	blocks := int(cfg.LLC.SizeBytes / arch.CacheBlockSize / 2)
	for pass := 0; pass < 2; pass++ {
		memBefore := h.Snapshot().Hits[LevelMemory]
		for i := 0; i < blocks; i++ {
			h.Access(0, arch.PhysAddr(i*arch.CacheBlockSize))
		}
		memAfter := h.Snapshot().Hits[LevelMemory]
		if pass == 1 && memAfter != memBefore {
			t.Errorf("second pass over LLC-resident set took %d memory accesses", memAfter-memBefore)
		}
	}
}

func TestWorkingSetExceedsLLCThrashes(t *testing.T) {
	cfg := tinyConfig()
	h := NewHierarchy(cfg)
	// A streaming working set 4x the LLC: second pass still misses mostly.
	blocks := int(cfg.LLC.SizeBytes / arch.CacheBlockSize * 4)
	for i := 0; i < blocks; i++ {
		h.Access(0, arch.PhysAddr(i*arch.CacheBlockSize))
	}
	memBefore := h.Snapshot().Hits[LevelMemory]
	for i := 0; i < blocks; i++ {
		h.Access(0, arch.PhysAddr(i*arch.CacheBlockSize))
	}
	misses := h.Snapshot().Hits[LevelMemory] - memBefore
	if misses < uint64(blocks)*9/10 {
		t.Errorf("second pass over 4x-LLC set took only %d/%d memory accesses", misses, blocks)
	}
}

func TestBadConfigsPanic(t *testing.T) {
	cases := []Config{
		{L1: LevelConfig{SizeBytes: 1 << 10, Ways: 0, Latency: 1}, L2: tinyConfig().L2, LLC: tinyConfig().LLC, MemLatency: 1, NumCPUs: 1},
		{L1: LevelConfig{SizeBytes: 100, Ways: 2, Latency: 1}, L2: tinyConfig().L2, LLC: tinyConfig().LLC, MemLatency: 1, NumCPUs: 1},
		{L1: tinyConfig().L1, L2: tinyConfig().L2, LLC: tinyConfig().LLC, MemLatency: 1, NumCPUs: 0},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			NewHierarchy(cfg)
		}()
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig(4)
	h := NewHierarchy(cfg)
	if lv, _ := h.Access(3, 0x1234); lv != LevelMemory {
		t.Errorf("cold access on default config served by %v", lv)
	}
	if cfg.L1.Latency >= cfg.L2.Latency || cfg.L2.Latency >= cfg.LLC.Latency || cfg.LLC.Latency >= cfg.MemLatency {
		t.Error("latencies not monotonically increasing")
	}
}

func TestLevelString(t *testing.T) {
	want := map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelLLC: "LLC", LevelMemory: "memory"}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("%d.String() = %q", l, l.String())
		}
	}
}

func BenchmarkAccessHit(b *testing.B) {
	h := NewHierarchy(DefaultConfig(1))
	h.Access(0, 0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, 0x1000)
	}
}

func BenchmarkAccessStream(b *testing.B) {
	h := NewHierarchy(DefaultConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, arch.PhysAddr(uint64(i)*arch.CacheBlockSize))
	}
}

func TestHashedIndexingDecorrelatesLayout(t *testing.T) {
	// The property the hashed LLC exists for: a strided physical layout
	// (every 8th block, as page-coloring produces) must spread over many
	// sets instead of hammering a few.
	cfg := LevelConfig{SizeBytes: 64 << 10, Ways: 4, Latency: 1, HashedIndex: true}
	b := newBank(cfg) // 256 sets
	sets := map[uint64]int{}
	for i := 0; i < 1024; i++ {
		sets[b.set(uint64(i*256))]++ // stride hits set 0 repeatedly un-hashed
	}
	if len(sets) < 128 {
		t.Errorf("strided blocks cover only %d/256 sets with hashing", len(sets))
	}
	// Plain indexing collapses the same stride onto one set.
	plain := newBank(LevelConfig{SizeBytes: 64 << 10, Ways: 4, Latency: 1})
	plainSets := map[uint64]int{}
	for i := 0; i < 1024; i++ {
		plainSets[plain.set(uint64(i*256))]++
	}
	if len(plainSets) != 1 {
		t.Errorf("plain indexing covers %d sets for a 256-block stride, want 1", len(plainSets))
	}
}

func TestHashedIndexIsDeterministicAndInRange(t *testing.T) {
	b := newBank(LevelConfig{SizeBytes: 32 << 10, Ways: 8, Latency: 1, HashedIndex: true})
	for i := 0; i < 10_000; i++ {
		s1 := b.set(uint64(i) * 977)
		s2 := b.set(uint64(i) * 977)
		if s1 != s2 {
			t.Fatal("hashed set not deterministic")
		}
		if s1 > b.setMask {
			t.Fatalf("set %d out of range", s1)
		}
	}
}
