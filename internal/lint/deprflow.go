package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Deprflow makes PR 5's "grep-clean" rule permanent: no internal non-test
// code may use an identifier whose doc comment carries a "Deprecated:"
// paragraph. Deprecated wrappers exist only as a compatibility surface for
// the public facade and the examples, so those two places are exempt —
// everything under internal/ and cmd/ must use the replacement API the
// deprecation notice names.
//
// A use inside the body of a declaration that is itself deprecated is
// allowed (one compatibility wrapper may delegate to another); the
// declaration itself is, of course, not a "use".
var Deprflow = &Analyzer{
	Name: "deprflow",
	Doc:  "flag internal (internal/, cmd/) uses of Deprecated: identifiers",
	Run:  runDeprflow,
}

// deprflowExempt reports whether a package may still call deprecated
// identifiers: the module-root facade and the examples are the public
// compatibility surface the wrappers exist for.
func deprflowExempt(relDir string) bool {
	return relDir == "." || relDir == "examples" || strings.HasPrefix(relDir, "examples/")
}

func runDeprflow(p *Pass) {
	if deprflowExempt(p.Pkg.RelDir) {
		return
	}
	deprecated := p.Module.deprecatedObjects()
	if len(deprecated) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			// Uses inside a deprecated declaration's own body are wrapper
			// delegation, not adoption.
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok && deprecated[obj] != "" {
					continue
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.Pkg.Info.Uses[id]
				if obj == nil {
					return true
				}
				note, isDep := deprecated[obj]
				if !isDep {
					return true
				}
				p.Reportf(id.Pos(), "use of deprecated %s: %s", obj.Name(), note)
				return true
			})
		}
	}
}

// deprecatedObjects collects (once per module, memoized) every object in
// the module whose doc comment carries a "Deprecated:" paragraph, mapped
// to the first line of that notice.
func (m *Module) deprecatedObjects() map[types.Object]string {
	if m.deprecated != nil {
		return m.deprecated
	}
	m.deprecated = make(map[types.Object]string)
	record := func(info *types.Info, id *ast.Ident, doc *ast.CommentGroup) {
		note := deprecationNote(doc)
		if note == "" {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			m.deprecated[obj] = note
		}
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					record(pkg.Info, d.Name, d.Doc)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							doc := s.Doc
							if doc == nil {
								doc = d.Doc
							}
							record(pkg.Info, s.Name, doc)
						case *ast.ValueSpec:
							doc := s.Doc
							if doc == nil {
								doc = d.Doc
							}
							for _, name := range s.Names {
								record(pkg.Info, name, doc)
							}
						}
					}
				}
			}
		}
	}
	return m.deprecated
}

// deprecationNote returns the first line of a doc comment's "Deprecated:"
// paragraph, or "" if the comment carries none. Following the godoc
// convention, the paragraph must start at the beginning of a line.
func deprecationNote(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "Deprecated:") {
			return text
		}
	}
	return ""
}
