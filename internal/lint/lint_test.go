package lint

import (
	"fmt"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts the backquoted regexps of a `// want` comment.
var wantRE = regexp.MustCompile("`([^`]+)`")

// loadFixture loads one testdata mini-module.
func loadFixture(t *testing.T, name string) *Module {
	t.Helper()
	mod, err := Load(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return mod
}

// checkFixture runs one analyzer over a fixture and matches the findings
// against the fixture's `// want` comments: every want must be matched by
// a finding on its line, and every finding must be demanded by a want.
func checkFixture(t *testing.T, fixture string, a *Analyzer) {
	t.Helper()
	mod := loadFixture(t, fixture)
	findings := Run(mod, []*Analyzer{a})

	type lineKey struct {
		file string
		line int
	}
	wants := map[lineKey][]string{}
	for _, pkg := range mod.Pkgs {
		for i, f := range pkg.Files {
			rel, err := filepath.Rel(mod.Root, pkg.Filenames[i])
			if err != nil {
				t.Fatal(err)
			}
			rel = filepath.ToSlash(rel)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					k := lineKey{rel, mod.Fset.Position(c.Pos()).Line}
					for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
						wants[k] = append(wants[k], m[1])
					}
				}
			}
		}
	}

	got := map[lineKey][]Finding{}
	for _, f := range findings {
		got[lineKey{f.File, f.Line}] = append(got[lineKey{f.File, f.Line}], f)
	}

	for k, patterns := range wants {
		fs := got[k]
		if len(fs) != len(patterns) {
			t.Errorf("%s:%d: want %d finding(s), got %d: %v", k.file, k.line, len(patterns), len(fs), fs)
			continue
		}
		for _, pattern := range patterns {
			re, err := regexp.Compile(pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", k.file, k.line, pattern, err)
			}
			matched := false
			for _, f := range fs {
				if re.MatchString(fmt.Sprintf("[%s] %s", f.Check, f.Message)) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no finding matches %q; got %v", k.file, k.line, pattern, fs)
			}
		}
	}
	for k, fs := range got {
		if _, demanded := wants[k]; !demanded {
			for _, f := range fs {
				t.Errorf("unexpected finding: %s", f)
			}
		}
	}
}

func TestDetrangeFixture(t *testing.T)  { checkFixture(t, "detrange", Detrange) }
func TestNoclockFixture(t *testing.T)   { checkFixture(t, "noclock", Noclock) }
func TestSeedflowFixture(t *testing.T)  { checkFixture(t, "seedflow", Seedflow) }
func TestArchconstFixture(t *testing.T) { checkFixture(t, "archconst", Archconst) }
func TestStatshapeFixture(t *testing.T) { checkFixture(t, "statshape", Statshape) }
func TestDeprflowFixture(t *testing.T)  { checkFixture(t, "deprflow", Deprflow) }
func TestObscoverFixture(t *testing.T)  { checkFixture(t, "obscover", Obscover) }
func TestErrwrapFixture(t *testing.T)   { checkFixture(t, "errwrap", Errwrap) }
func TestGoscopeFixture(t *testing.T)   { checkFixture(t, "goscope", Goscope) }

// TestDirectiveAudit pins the allow-directive audit: a suppression that
// matches a finding survives silently, a stale one and one naming an
// unknown check are reported, and nothing else fires.
func TestDirectiveAudit(t *testing.T) {
	mod := loadFixture(t, "directives")
	findings := Run(mod, Analyzers)
	var stale, unknown int
	for _, f := range findings {
		switch {
		case f.Check != "ptmlint":
			t.Errorf("unexpected non-audit finding: %s", f)
		case strings.Contains(f.Message, "stale suppression: allow(detrange)"):
			stale++
		case strings.Contains(f.Message, "allow(nosuchcheck) names a check no analyzer ships"):
			unknown++
		default:
			t.Errorf("unexpected audit finding: %s", f)
		}
	}
	if stale != 1 || unknown != 1 {
		t.Errorf("stale=%d unknown=%d, want 1 and 1; findings: %v", stale, unknown, findings)
	}
}

// TestStaleJudgedOnlyForActiveChecks pins that narrowing the run to a
// subset of analyzers does not misreport the other checks' suppressions:
// the live allow(detrange) in the fixture is only auditable when
// detrange actually ran.
func TestStaleJudgedOnlyForActiveChecks(t *testing.T) {
	mod := loadFixture(t, "directives")
	for _, f := range Run(mod, []*Analyzer{Noclock}) {
		if strings.Contains(f.Message, "stale suppression") {
			t.Errorf("stale reported for a check that did not run: %s", f)
		}
	}
}

// TestRepoLintsClean is the contract this PR establishes: the repository
// as shipped carries zero findings under every analyzer.
func TestRepoLintsClean(t *testing.T) {
	mod, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings := Run(mod, Analyzers)
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
}

// TestRunDeterministic pins that the linter itself is deterministic:
// two runs over the same module report byte-identical findings in the
// same order.
func TestRunDeterministic(t *testing.T) {
	mod := loadFixture(t, "archconst")
	a := Run(mod, Analyzers)
	b := Run(mod, Analyzers)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two Run calls disagreed:\n%v\n%v", a, b)
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text       string
		check      string
		wantBad    bool
		wantReason string
	}{
		{"//ptmlint:allow(detrange) commutative fold", "detrange", false, "commutative fold"},
		{"//ptmlint:allow(noclock) human-facing progress", "noclock", false, "human-facing progress"},
		{"//ptmlint:allow(detrange)", "detrange", true, ""}, // reason is mandatory
		{"//ptmlint:allow(detrange", "", true, ""},          // unclosed paren
		{"//ptmlint:deny(detrange) nope", "", true, ""},     // unknown verb
	}
	for _, c := range cases {
		d := parseDirective(c.text)
		if (d.bad != "") != c.wantBad {
			t.Errorf("parseDirective(%q): bad = %q, want bad: %v", c.text, d.bad, c.wantBad)
		}
		if !c.wantBad && (d.check != c.check || d.reason != c.wantReason) {
			t.Errorf("parseDirective(%q) = %+v, want check %q reason %q", c.text, d, c.check, c.wantReason)
		}
	}
}

// TestMalformedDirectiveReported pins that a reason-less allow does not
// suppress its finding and is itself reported under the ptmlint check.
func TestMalformedDirectiveReported(t *testing.T) {
	directives := []allowDirective{{file: "a.go", line: 9, check: "detrange", bad: "no reason"}}
	f := Finding{File: "a.go", Line: 10, Check: "detrange", Message: "x"}
	if allowed(directives, make([]bool, 1), f) {
		t.Error("malformed directive must not suppress findings")
	}
	ok := []allowDirective{{file: "a.go", line: 9, check: "detrange", reason: "fine"}}
	used := make([]bool, 1)
	if !allowed(ok, used, f) {
		t.Error("well-formed directive on the previous line must suppress")
	}
	if !used[0] {
		t.Error("suppressing directive must be marked used")
	}
	if allowed(ok, make([]bool, 1), Finding{File: "a.go", Line: 12, Check: "detrange"}) {
		t.Error("directive must not suppress findings two lines away")
	}
	if allowed(ok, make([]bool, 1), Finding{File: "a.go", Line: 10, Check: "noclock"}) {
		t.Error("directive must not suppress a different check")
	}
}
