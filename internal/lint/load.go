package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is one parsed and type-checked Go module, ready for analysis.
type Module struct {
	// Path is the module path declared in go.mod.
	Path string
	// Root is the absolute directory containing go.mod.
	Root string
	// Fset positions every parsed file.
	Fset *token.FileSet
	// Pkgs holds every package of the module, sorted by RelDir so that
	// analysis (and therefore ptmlint's own output) is deterministic.
	Pkgs []*Package
	// Graph is the module-wide static call graph (the facts layer the
	// interprocedural analyzers query), built once after type checking.
	Graph *CallGraph

	// Memoized module-wide facts, computed on first query.
	clockChains map[*types.Func][]TaintStep // noclock: reaches time.Now/Since
	randChains  map[*types.Func][]TaintStep // seedflow: reaches global math/rand
	deprecated  map[types.Object]string     // deprflow: Deprecated: objects
}

// Package is one type-checked package of the module. Only non-test files
// are loaded: the determinism contract ptmlint enforces is about simulation
// code, and tests are free to iterate maps or read the clock.
type Package struct {
	// RelDir is the package directory relative to the module root,
	// slash-separated ("." for the root package).
	RelDir string
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Name is the package name.
	Name string
	// Filenames are the absolute paths of the parsed files, aligned with
	// Files.
	Filenames []string
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and identifier facts.
	Info *types.Info

	imports []string // module-internal import paths
}

// Load parses and type-checks every package of the module rooted at dir
// (the directory containing go.mod). Test files, testdata trees, vendor
// trees, and dot/underscore directories are skipped. Type checking uses
// only the standard library: module-internal imports are served from the
// packages checked earlier in dependency order, and standard-library
// imports are compiled from GOROOT source.
func Load(dir string) (*Module, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving %s: %w", dir, err)
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Root: root, Fset: token.NewFileSet()}
	if err := m.parseTree(); err != nil {
		return nil, err
	}
	if err := m.typeCheck(); err != nil {
		return nil, err
	}
	m.buildGraph()
	return m, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// parseTree walks the module tree and parses every package's non-test
// files.
func (m *Module) parseTree() error {
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pkg, err := m.parseDir(path)
		if err != nil {
			return err
		}
		if pkg != nil {
			m.Pkgs = append(m.Pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].RelDir < m.Pkgs[j].RelDir })
	return nil
}

// parseDir parses the non-test Go files of one directory, returning nil if
// the directory holds no Go package.
func (m *Module) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	pkg := &Package{RelDir: rel, ImportPath: m.Path}
	if rel != "." {
		pkg.ImportPath = m.Path + "/" + rel
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Filenames = append(pkg.Filenames, filepath.Join(dir, name))
		pkg.Files = append(pkg.Files, file)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	pkg.Name = pkg.Files[0].Name.Name
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
				pkg.imports = append(pkg.imports, path)
			}
		}
	}
	return pkg, nil
}

// typeCheck checks every package in dependency order so that each
// module-internal import is already available when its importer is
// checked.
func (m *Module) typeCheck() error {
	byPath := make(map[string]*Package, len(m.Pkgs))
	for _, p := range m.Pkgs {
		byPath[p.ImportPath] = p
	}
	imp := &hybridImporter{
		modPath:  m.Path,
		internal: make(map[string]*types.Package, len(m.Pkgs)),
		std:      importer.ForCompiler(m.Fset, "source", nil),
	}

	// Depth-first postorder over internal imports = dependency order.
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int, len(m.Pkgs))
	var check func(p *Package) error
	check = func(p *Package) error {
		switch state[p.ImportPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.ImportPath)
		}
		state[p.ImportPath] = visiting
		for _, dep := range p.imports {
			if dp := byPath[dep]; dp != nil {
				if err := check(dp); err != nil {
					return err
				}
			}
		}
		if err := m.checkPackage(p, imp); err != nil {
			return err
		}
		imp.internal[p.ImportPath] = p.Types
		state[p.ImportPath] = done
		return nil
	}
	for _, p := range m.Pkgs {
		if err := check(p); err != nil {
			return err
		}
	}
	return nil
}

// checkPackage type-checks one package, collecting every checker error.
func (m *Module) checkPackage(p *Package, imp types.Importer) error {
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(p.ImportPath, m.Fset, p.Files, p.Info)
	if len(errs) > 0 {
		return fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, errors.Join(errs...))
	}
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	p.Types = tpkg
	return nil
}

// hybridImporter serves module-internal packages from the already-checked
// set and everything else from standard-library source. It keeps ptmlint
// free of network and toolchain dependencies beyond GOROOT itself.
type hybridImporter struct {
	modPath  string
	internal map[string]*types.Package
	std      types.Importer
}

func (im *hybridImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg := im.internal[path]; pkg != nil {
		return pkg, nil
	}
	if path == im.modPath || strings.HasPrefix(path, im.modPath+"/") {
		return nil, fmt.Errorf("module package %s not loaded (import cycle?)", path)
	}
	return im.std.Import(path)
}
