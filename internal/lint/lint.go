// Package lint is ptmlint: a static-analysis pass over the whole module
// that enforces the simulator's determinism and address-hygiene contracts
// at compile time (DESIGN.md §6). It is built only on the standard
// library's go/ast, go/parser, go/token, and go/types.
//
// Loading type-checks every package in dependency order and then builds a
// module-wide static call graph (CallGraph) — the facts layer the
// interprocedural analyzers query. Nine analyzers ship today:
//
//   - detrange: range over a map in non-test code is flagged unless the
//     loop is the collect-keys-then-sort idiom or carries an annotation.
//     Map iteration order is randomized per run, so any map-order-
//     dependent computation breaks the engine's bit-identical-reduce
//     contract (DESIGN.md §5).
//   - noclock: any call whose static call chain reaches time.Now or
//     time.Since outside the engine's timing hook and cmd/ is flagged —
//     direct reads and reads laundered through module helpers alike.
//     Wall-clock reads inside simulation code leak host-machine state
//     into results.
//   - seedflow: global math/rand top-level functions are flagged — at the
//     call site and at every simulation-code call chain that reaches one
//     through a module helper — as is rand.NewSource with a seed that is
//     not a constant, a config field, or an engine.DeriveSeed result.
//     Every random stream must be replayable from the scenario seed
//     alone.
//   - archconst: raw shift/mask/scale literals of the address geometry
//     (9, 12, 21, 511, 512, 0xFFF, 4096) outside internal/arch are
//     flagged, pointing at the named constant to use instead.
//   - statshape: every method named Snapshot must be func() T with T a
//     named value type carrying Delta(T) T, and every method named Delta
//     must be func (T) Delta(T) T on a value receiver — the uniform
//     stats shape the observability layer builds on (DESIGN.md §8).
//   - deprflow: internal non-test code (internal/, cmd/) must not use an
//     identifier whose doc comment carries a "Deprecated:" paragraph;
//     only the facade and examples/ may keep calling the compatibility
//     wrappers.
//   - obscover: for every type with both a Snapshot() method and a
//     RegisterObs(*Registry, ...) method, each uint64 counter leaf the
//     snapshot exposes must be read by some registration closure, so no
//     counter silently goes dark in run telemetry.
//   - errwrap: fmt.Errorf with an error operand must wrap it with %w;
//     errors must be matched with errors.Is/errors.As, never by ==/!=
//     against a sentinel, switch-over-error, type assertion, or type
//     switch.
//   - goscope: goroutine spawns and channel sends are confined to
//     internal/engine (the deterministic worker pool) and cmd/; anywhere
//     else they are flagged.
//
// A finding can be waived in place with a written justification:
//
//	//ptmlint:allow(detrange) commutative integer sum, order-insensitive
//
// on the flagged line or the line directly above it. The reason text is
// mandatory; a bare allow is itself reported, as is an allow naming a
// check no analyzer ships and a stale allow that suppresses nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	// File is the offending file, relative to the module root.
	File string `json:"file"`
	// Line and Col locate the violation (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Check names the analyzer that fired.
	Check string `json:"check"`
	// Message explains the violation and the fix.
	Message string `json:"message"`
}

// String renders the finding in the canonical "file:line: [check] message"
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
}

// Analyzer is one named check over a package.
type Analyzer struct {
	// Name is the check tag ([detrange], ...) and the driver flag name.
	Name string
	// Doc is a one-line description for the driver's usage text.
	Doc string
	// Run inspects pass.Pkg and reports violations through the pass.
	Run func(*Pass)
}

// Analyzers lists every check ptmlint ships, in reporting order.
var Analyzers = []*Analyzer{
	Detrange, Noclock, Seedflow, Archconst, Statshape,
	Deprflow, Obscover, Errwrap, Goscope,
}

// Pass hands one package to one analyzer.
type Pass struct {
	// Module is the whole loaded module (for cross-package context).
	Module *Module
	// Pkg is the package under analysis.
	Pkg *Package

	check    string
	findings *[]Finding
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	file, err := filepath.Rel(p.Module.Root, position.Filename)
	if err != nil {
		file = position.Filename
	}
	*p.findings = append(*p.findings, Finding{
		File:    filepath.ToSlash(file),
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// PkgNameOf resolves a selector's receiver to the imported package it
// names, or nil when the receiver is not a bare package identifier.
func (p *Pass) PkgNameOf(sel *ast.SelectorExpr) *types.Package {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// allowDirective is one parsed //ptmlint:allow(check) reason comment.
type allowDirective struct {
	file   string // relative to module root
	line   int
	check  string
	reason string
	bad    string // non-empty if the directive is malformed
}

const directivePrefix = "//ptmlint:"

// parseDirectives scans every comment of the module for ptmlint
// directives, keyed nowhere — returned sorted by file and line so the
// linter's own behaviour is deterministic.
func parseDirectives(m *Module) []allowDirective {
	var out []allowDirective
	for _, pkg := range m.Pkgs {
		for i, f := range pkg.Files {
			rel, err := filepath.Rel(m.Root, pkg.Filenames[i])
			if err != nil {
				rel = pkg.Filenames[i]
			}
			rel = filepath.ToSlash(rel)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					d := parseDirective(c.Text)
					d.file = rel
					d.line = m.Fset.Position(c.Pos()).Line
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// parseDirective parses the text of one //ptmlint:... comment.
func parseDirective(text string) allowDirective {
	rest := strings.TrimPrefix(text, directivePrefix)
	if !strings.HasPrefix(rest, "allow(") {
		return allowDirective{bad: fmt.Sprintf("unknown ptmlint directive %q (only ptmlint:allow(check) reason is recognized)", text)}
	}
	rest = strings.TrimPrefix(rest, "allow(")
	check, reason, ok := strings.Cut(rest, ")")
	if !ok || check == "" {
		return allowDirective{bad: fmt.Sprintf("malformed directive %q: want //ptmlint:allow(check) reason", text)}
	}
	reason = strings.TrimSpace(reason)
	if reason == "" {
		return allowDirective{check: check, bad: fmt.Sprintf("allow(%s) directive has no reason: a written justification is mandatory", check)}
	}
	return allowDirective{check: check, reason: reason}
}

// Run executes the given analyzers over every package of m and returns
// the surviving findings sorted by file, line, and column. Findings
// covered by a well-formed //ptmlint:allow directive on the same line or
// the line above are suppressed. The directives themselves are audited
// under the "ptmlint" check: malformed ones, ones naming a check no
// analyzer ships, and stale ones — a well-formed allow for an active
// check that suppressed nothing this run. Staleness is only judged for
// checks among the analyzers actually run, so narrowing the run with
// driver flags never misreports the other checks' suppressions.
func Run(m *Module, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, pkg := range m.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{Module: m, Pkg: pkg, check: a.Name, findings: &raw}
			a.Run(pass)
		}
	}

	directives := parseDirectives(m)
	used := make([]bool, len(directives))
	var out []Finding
	for _, f := range raw {
		if allowed(directives, used, f) {
			continue
		}
		out = append(out, f)
	}

	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	shipped := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		shipped[a.Name] = true
	}
	for i, d := range directives {
		switch {
		case d.bad != "":
			out = append(out, Finding{File: d.file, Line: d.line, Col: 1, Check: "ptmlint", Message: d.bad})
		case !shipped[d.check]:
			out = append(out, Finding{File: d.file, Line: d.line, Col: 1, Check: "ptmlint",
				Message: fmt.Sprintf("allow(%s) names a check no analyzer ships; remove the directive or fix the check name", d.check)})
		case active[d.check] && !used[i]:
			out = append(out, Finding{File: d.file, Line: d.line, Col: 1, Check: "ptmlint",
				Message: fmt.Sprintf("stale suppression: allow(%s) matches no finding on this or the next line; the violation is gone, so remove the directive", d.check)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return out
}

// allowed reports whether a well-formed allow directive covers f,
// marking every covering directive as used (for stale-suppression
// auditing).
func allowed(directives []allowDirective, used []bool, f Finding) bool {
	hit := false
	for i, d := range directives {
		if d.bad != "" || d.check != f.Check || d.file != f.File {
			continue
		}
		if d.line == f.Line || d.line == f.Line-1 {
			used[i] = true
			hit = true
		}
	}
	return hit
}
