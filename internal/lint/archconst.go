package lint

import (
	"go/ast"
	"go/token"
	"strconv"
)

// Archconst flags raw literals of the x86-64 address geometry — shift
// amounts 9/12/21, masks 511/0xFFF, and scale factors 512/4096 — used in
// arithmetic outside internal/arch, which is the one package allowed to
// spell the geometry out. Everywhere else the named constants keep the
// whole simulation on a single geometry definition; a literal 12 that
// drifts from arch.PageShift is exactly the silent-skew bug class
// translation simulators are prone to.
//
// The heuristic is positional, so byte-size expressions like `512 << 20`
// (512MB) are not flagged: only shift *amounts*, mask operands of &/&^,
// and 512/4096 factors of *, /, and % count as address arithmetic.
var Archconst = &Analyzer{
	Name: "archconst",
	Doc:  "flag raw page-geometry literals outside internal/arch",
	Run:  runArchconst,
}

// Suggested replacements, keyed by literal value per operator class.
var (
	archShiftConsts = map[uint64]string{
		9:  "arch.PTIndexBits",
		12: "arch.PageShift",
		21: "pagetable.LargePageShift (arch.PageShift + arch.PTIndexBits)",
	}
	archMaskConsts = map[uint64]string{
		511:  "arch.PTEntriesPerNode - 1",
		4095: "arch.PageMask",
	}
	archScaleConsts = map[uint64]string{
		512:  "arch.PTEntriesPerNode (or arch.WordsPerPage for 8-byte-word offsets)",
		4096: "arch.PageSize",
	}
)

func runArchconst(p *Pass) {
	if p.Pkg.RelDir == "internal/arch" {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch bin.Op {
			case token.SHL, token.SHR:
				if v, ok := intLit(bin.Y); ok {
					if name, hit := archShiftConsts[v]; hit {
						p.Reportf(bin.Y.Pos(),
							"raw shift amount %d in address arithmetic: use %s", v, name)
					}
				}
			case token.AND, token.AND_NOT:
				reportLit(p, bin.X, archMaskConsts, "raw mask")
				reportLit(p, bin.Y, archMaskConsts, "raw mask")
			case token.MUL:
				reportLit(p, bin.X, archScaleConsts, "raw scale factor")
				reportLit(p, bin.Y, archScaleConsts, "raw scale factor")
			case token.QUO, token.REM:
				reportLit(p, bin.Y, archScaleConsts, "raw scale factor")
			}
			return true
		})
	}
}

// reportLit flags e if it is an integer literal present in consts.
func reportLit(p *Pass, e ast.Expr, consts map[uint64]string, kind string) {
	v, ok := intLit(e)
	if !ok {
		return
	}
	name, hit := consts[v]
	if !hit {
		return
	}
	p.Reportf(e.Pos(), "%s %s in address arithmetic: use %s", kind, litText(e), name)
}

// intLit returns the value of an integer literal expression, looking
// through parentheses.
func intLit(e ast.Expr) (uint64, bool) {
	for {
		paren, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = paren.X
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	v, err := strconv.ParseUint(lit.Value, 0, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// litText renders the literal as written in the source (0xFFF stays hex).
func litText(e ast.Expr) string {
	for {
		paren, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = paren.X
	}
	return e.(*ast.BasicLit).Value
}
