package lint

import (
	"go/ast"
	"strings"
)

// Goscope confines concurrency to the one place the determinism argument
// covers: the engine's worker pool (DESIGN.md §5), whose fixed reduce
// order is what makes parallel runs bit-identical to serial ones. A
// goroutine spawned or a channel fed anywhere else in simulation code has
// no such guarantee — scheduling order would leak straight into results.
//
// Flagged outside internal/engine and cmd/ (front ends own their
// signal-handling and pprof goroutines): `go` statements and channel
// sends. The one sanctioned exception is the wall-clock locking ablation
// in internal/sim/extras.go, which measures real contention and is
// annotated //ptmlint:allow(goscope) at the spawn site.
var Goscope = &Analyzer{
	Name: "goscope",
	Doc:  "flag goroutine spawns and channel sends outside internal/engine and cmd/",
	Run:  runGoscope,
}

// goscopeExempt reports whether a package may spawn goroutines: the
// engine (deterministic worker pool) and command front ends.
func goscopeExempt(relDir string) bool {
	return relDir == "internal/engine" || relDir == "cmd" || strings.HasPrefix(relDir, "cmd/")
}

func runGoscope(p *Pass) {
	if goscopeExempt(p.Pkg.RelDir) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Go,
					"goroutine spawned in simulation code: only the engine's worker pool (internal/engine) guarantees deterministic reduce; run scenarios through it or annotate //ptmlint:allow(goscope) reason")
			case *ast.SendStmt:
				p.Reportf(n.Arrow,
					"channel send in simulation code: cross-goroutine communication outside internal/engine has no deterministic ordering; route results through the engine")
			}
			return true
		})
	}
}
