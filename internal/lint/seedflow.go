package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Seedflow enforces that every random stream is replayable from the
// scenario configuration alone. Two things break that:
//
//   - the global math/rand source (rand.Intn, rand.Seed, ...), which is
//     shared process-wide state seeded outside the scenario; and
//   - rand.NewSource seeded from anything that is not a constant, a
//     config field (a selector whose field name contains "Seed"), a
//     seed-named local/parameter, or an engine.DeriveSeed result.
//
// Constructing generators (rand.New, rand.NewZipf) is fine — it is the
// seed provenance that matters.
//
// The global-source rule is interprocedural (ISSUE 7): a call into a
// module function that transitively draws from the global source is
// flagged at the call site with the witness chain, so a one-level helper
// cannot launder rand.Intn into the sim core even if its own finding was
// waived.
var Seedflow = &Analyzer{
	Name: "seedflow",
	Doc:  "flag global math/rand use (direct or via module helpers) and rand.NewSource seeds of unknown provenance",
	Run:  runSeedflow,
}

// seedflowConstructors are the math/rand top-level functions that build
// explicitly-seeded generators rather than touching the global source.
var seedflowConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// isGlobalRandCall reports whether the call site invokes a math/rand
// top-level function backed by the process-global source.
func isGlobalRandCall(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if path := fn.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	// Methods on *rand.Rand (an explicit generator) have a receiver; only
	// package-level functions touch the global source.
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return !seedflowConstructors[fn.Name()]
}

func runSeedflow(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg := p.PkgNameOf(sel)
			if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
				return true
			}
			name := sel.Sel.Name
			if !seedflowConstructors[name] {
				p.Reportf(call.Pos(),
					"rand.%s uses the process-global source: build a per-scenario generator with rand.New(rand.NewSource(seed)) instead",
					name)
				return true
			}
			if name == "NewSource" && len(call.Args) == 1 && !seedOK(p, call.Args[0]) {
				p.Reportf(call.Pos(),
					"rand.NewSource seed %s is not a constant, a config Seed field, or an engine.DeriveSeed result: seeds must be replayable from the scenario config",
					types.ExprString(call.Args[0]))
			}
			return true
		})
	}

	// Transitive draws from the global source, through any chain of
	// module helpers.
	chains := p.Module.seedflowTaint()
	for _, node := range p.Module.Graph.Nodes() {
		if node.Pkg != p.Pkg {
			continue
		}
		for _, site := range node.Calls {
			chain, tainted := chains[site.Callee]
			if !tainted {
				continue
			}
			last := chain[0]
			p.Reportf(site.Pos,
				"call to %s reaches global rand.%s (%s → rand.%s): random streams must come from a per-scenario generator",
				site.Callee.Name(), last.Site.Callee.Name(), ChainString(chain), last.Site.Callee.Name())
		}
	}
}

// seedflowTaint computes (once per module, memoized) which module
// functions transitively draw from the global math/rand source. No
// barriers: the global source is illegitimate everywhere, cmd/ included.
func (m *Module) seedflowTaint() map[*types.Func][]TaintStep {
	if m.randChains == nil {
		m.randChains = m.Graph.Taint(
			func(site CallSite) bool { return isGlobalRandCall(site.Callee) },
			func(node *FuncNode) bool { return false },
		)
	}
	return m.randChains
}

// seedOK reports whether a seed expression has acceptable provenance:
// constants, Seed-named fields or variables, engine.DeriveSeed calls,
// conversions of any of those, and arithmetic over them (the historical
// pre-engine seed formulas are `seed + k`).
func seedOK(p *Pass, e ast.Expr) bool {
	if tv, ok := p.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return true // compile-time constant
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return seedOK(p, e.X)
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), "seed")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), "seed")
	case *ast.BinaryExpr:
		return seedOK(p, e.X) || seedOK(p, e.Y)
	case *ast.UnaryExpr:
		return seedOK(p, e.X)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "DeriveSeed" {
			return true
		}
		// A type conversion wraps exactly one operand; look through it.
		if tv, ok := p.Pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return seedOK(p, e.Args[0])
		}
	}
	return false
}
