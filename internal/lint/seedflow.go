package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Seedflow enforces that every random stream is replayable from the
// scenario configuration alone. Two things break that:
//
//   - the global math/rand source (rand.Intn, rand.Seed, ...), which is
//     shared process-wide state seeded outside the scenario; and
//   - rand.NewSource seeded from anything that is not a constant, a
//     config field (a selector whose field name contains "Seed"), a
//     seed-named local/parameter, or an engine.DeriveSeed result.
//
// Constructing generators (rand.New, rand.NewZipf) is fine — it is the
// seed provenance that matters.
var Seedflow = &Analyzer{
	Name: "seedflow",
	Doc:  "flag global math/rand use and rand.NewSource seeds of unknown provenance",
	Run:  runSeedflow,
}

// seedflowConstructors are the math/rand top-level functions that build
// explicitly-seeded generators rather than touching the global source.
var seedflowConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runSeedflow(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg := p.PkgNameOf(sel)
			if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
				return true
			}
			name := sel.Sel.Name
			if !seedflowConstructors[name] {
				p.Reportf(call.Pos(),
					"rand.%s uses the process-global source: build a per-scenario generator with rand.New(rand.NewSource(seed)) instead",
					name)
				return true
			}
			if name == "NewSource" && len(call.Args) == 1 && !seedOK(p, call.Args[0]) {
				p.Reportf(call.Pos(),
					"rand.NewSource seed %s is not a constant, a config Seed field, or an engine.DeriveSeed result: seeds must be replayable from the scenario config",
					types.ExprString(call.Args[0]))
			}
			return true
		})
	}
}

// seedOK reports whether a seed expression has acceptable provenance:
// constants, Seed-named fields or variables, engine.DeriveSeed calls,
// conversions of any of those, and arithmetic over them (the historical
// pre-engine seed formulas are `seed + k`).
func seedOK(p *Pass, e ast.Expr) bool {
	if tv, ok := p.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return true // compile-time constant
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return seedOK(p, e.X)
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), "seed")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), "seed")
	case *ast.BinaryExpr:
		return seedOK(p, e.X) || seedOK(p, e.Y)
	case *ast.UnaryExpr:
		return seedOK(p, e.X)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "DeriveSeed" {
			return true
		}
		// A type conversion wraps exactly one operand; look through it.
		if tv, ok := p.Pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return seedOK(p, e.Args[0])
		}
	}
	return false
}
