package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detrange flags `range` statements over map-typed values. Go randomizes
// map iteration order per run, so any computation folded over a raw map
// range — float sums, output lines, frees into an order-sensitive
// allocator — can differ between two executions with identical seeds,
// which breaks the engine's bit-identical-reduce contract (DESIGN.md §5).
//
// The one shape allowed without annotation is the first half of the
// repo's collect-then-sort idiom: a loop whose entire body is a single
// append of the range variables into a slice. Everything else must
// iterate over sorted keys or carry //ptmlint:allow(detrange) with a
// reason (e.g. a provably order-insensitive fold).
var Detrange = &Analyzer{
	Name: "detrange",
	Doc:  "flag map iteration whose order can leak into simulation results",
	Run:  runDetrange,
}

func runDetrange(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isCollectLoop(rs) {
				return true
			}
			p.Reportf(rs.For,
				"range over map %s: iteration order is randomized; iterate sorted keys (see sortedCopy in internal/sim/sim.go) or annotate //ptmlint:allow(detrange) reason",
				types.ExprString(rs.X))
			return true
		})
	}
}

// isCollectLoop reports whether the range body is exactly one
// `s = append(s, ...)` statement — the gather step of the
// collect-keys-then-sort idiom, which is order-insensitive as long as the
// slice is sorted before use (the sort itself is what detrange cannot
// see; the idiom is audited by the paired sort call it feeds).
func isCollectLoop(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return false
	}
	return types.ExprString(asg.Lhs[0]) == types.ExprString(call.Args[0])
}
