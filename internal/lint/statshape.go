package lint

import (
	"go/ast"
	"go/types"
)

// Statshape enforces the observability API shape of DESIGN.md §8: every
// stat-bearing component exposes exactly one counter-reading pair,
//
//	Snapshot() T          // T a named value type
//	(T) Delta(prev T) T   // value receiver, windowed difference
//
// A Snapshot method with parameters, multiple results, or a pointer/
// unnamed result is flagged, as is a Snapshot whose result type lacks the
// matching Delta method, and a Delta method whose signature deviates from
// func (T) Delta(T) T. One uniform shape is what lets the facade, the
// telemetry layer, and windowed measurement treat every component the
// same way.
var Statshape = &Analyzer{
	Name: "statshape",
	Doc:  "enforce the Snapshot() T / T.Delta(T) T stats API shape",
	Run:  runStatshape,
}

func runStatshape(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok {
				continue
			}
			switch fd.Name.Name {
			case "Snapshot":
				checkSnapshot(p, fd, sig)
			case "Delta":
				checkDelta(p, fd, sig)
			}
		}
	}
}

// checkSnapshot verifies Snapshot() T with T a named non-pointer type
// carrying a Delta(T) T method.
func checkSnapshot(p *Pass, fd *ast.FuncDecl, sig *types.Signature) {
	if sig.Params().Len() != 0 {
		p.Reportf(fd.Name.Pos(), "Snapshot must take no arguments (the stats contract is Snapshot() T)")
		return
	}
	if sig.Results().Len() != 1 {
		p.Reportf(fd.Name.Pos(), "Snapshot must return exactly one value (the stats contract is Snapshot() T)")
		return
	}
	rt := sig.Results().At(0).Type()
	if _, isPtr := rt.(*types.Pointer); isPtr {
		p.Reportf(fd.Name.Pos(), "Snapshot must return a value, not a pointer: callers rely on snapshots being independent copies")
		return
	}
	if !hasDeltaMethod(rt, p.Pkg.Types) {
		p.Reportf(fd.Name.Pos(), "Snapshot result type %s has no Delta(%s) %s method: every snapshot type must support windowed measurement",
			rt, rt, rt)
	}
}

// checkDelta verifies func (T) Delta(prev T) T on a value receiver.
func checkDelta(p *Pass, fd *ast.FuncDecl, sig *types.Signature) {
	recv := sig.Recv().Type()
	if _, isPtr := recv.(*types.Pointer); isPtr {
		p.Reportf(fd.Name.Pos(), "Delta must use a value receiver: deltas are pure functions over two snapshots")
		return
	}
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 ||
		!types.Identical(sig.Params().At(0).Type(), recv) ||
		!types.Identical(sig.Results().At(0).Type(), recv) {
		p.Reportf(fd.Name.Pos(), "Delta must have signature func (%s) Delta(%s) %s (receiver, parameter, and result all the same snapshot type)",
			recv, recv, recv)
	}
}

// hasDeltaMethod reports whether t's method set (as a value) contains
// Delta(t) t.
func hasDeltaMethod(t types.Type, from *types.Package) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, false, from, "Delta")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return types.Identical(sig.Recv().Type(), t) &&
		sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
		types.Identical(sig.Params().At(0).Type(), t) &&
		types.Identical(sig.Results().At(0).Type(), t)
}
