// Fixture for the seedflow analyzer: random streams must be replayable
// from the scenario configuration.
package sim

import (
	"math/rand"

	"fixture/internal/engine"
)

// Config carries the scenario seed.
type Config struct {
	Seed int64
}

// Good builds generators with acceptable seed provenance — none flagged.
func Good(cfg Config, seed int64) []*rand.Rand {
	return []*rand.Rand{
		rand.New(rand.NewSource(42)),                                // constant
		rand.New(rand.NewSource(cfg.Seed)),                          // config field
		rand.New(rand.NewSource(seed + 3)),                          // historical seed formula
		rand.New(rand.NewSource(int64(uint64(cfg.Seed)))),           // conversion of a config field
		rand.New(rand.NewSource(engine.DeriveSeed(cfg.Seed, "wk"))), // derived
	}
}

// GlobalDraw uses the process-global source — flagged.
func GlobalDraw() int {
	return rand.Intn(8) // want `\[seedflow\] rand\.Intn uses the process-global source`
}

// GlobalShuffle also touches the global source — flagged.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `\[seedflow\] rand\.Shuffle uses the process-global source`
}

// UnknownSeed seeds from a value with no config provenance — flagged.
func UnknownSeed(counter int64) *rand.Rand {
	return rand.New(rand.NewSource(counter)) // want `\[seedflow\] rand\.NewSource seed counter is not a constant`
}

// Waived seeds from an annotated source — suppressed.
func Waived(counter int64) *rand.Rand {
	//ptmlint:allow(seedflow) fixture demonstrates the escape hatch
	return rand.New(rand.NewSource(counter))
}

// GlobalIndirect launders the global source through one module helper —
// the call is flagged with its witness chain.
func GlobalIndirect() int {
	return GlobalDraw() // want `\[seedflow\] call to GlobalDraw reaches global rand\.Intn \(GlobalDraw → rand\.Intn\)`
}

// CoreDraw reaches the global source two hops away — still flagged.
func CoreDraw() int {
	return GlobalIndirect() // want `\[seedflow\] call to GlobalIndirect reaches global rand\.Intn \(GlobalIndirect → GlobalDraw → rand\.Intn\)`
}

// LocalDraw draws from an explicit generator — methods on *rand.Rand
// never touch the global source, so nothing is flagged.
func LocalDraw(cfg Config) int {
	return rand.New(rand.NewSource(cfg.Seed)).Intn(8)
}
