// Stand-in for the real engine package: DeriveSeed is the blessed way to
// derive per-scenario seeds.
package engine

// DeriveSeed mirrors the real engine's seed derivation.
func DeriveSeed(base int64, name string) int64 {
	return base ^ int64(len(name))
}
