// Package stats exercises the statshape analyzer: every Snapshot method
// must be func() T with T a named value type carrying Delta(T) T, and
// every Delta method must be func (T) Delta(T) T on a value receiver.
package stats

// Good is the canonical snapshot type.
type Good struct{ N uint64 }

// Delta is the canonical windowed difference.
func (s Good) Delta(prev Good) Good { return Good{N: s.N - prev.N} }

// Component exposes the canonical pair; no findings.
type Component struct{ n uint64 }

func (c *Component) Snapshot() Good { return Good{N: c.n} }

// Snapshot as a free function is not part of the contract; ignored.
func Snapshot() int { return 0 }

// ArgComponent's Snapshot takes an argument.
type ArgComponent struct{}

func (a *ArgComponent) Snapshot(window int) Good { return Good{} } // want `Snapshot must take no arguments`

// BareComponent's Snapshot returns nothing.
type BareComponent struct{}

func (b *BareComponent) Snapshot() {} // want `Snapshot must return exactly one value`

// PairComponent's Snapshot returns two values.
type PairComponent struct{}

func (p *PairComponent) Snapshot() (Good, error) { return Good{}, nil } // want `Snapshot must return exactly one value`

// PtrComponent's Snapshot leaks a pointer into the caller's hands.
type PtrComponent struct{ s Good }

func (p *PtrComponent) Snapshot() *Good { return &p.s } // want `Snapshot must return a value, not a pointer`

// NoDelta is a snapshot type with no windowed difference.
type NoDelta struct{ N uint64 }

// OrphanComponent returns a type that cannot express Delta.
type OrphanComponent struct{}

func (o *OrphanComponent) Snapshot() NoDelta { return NoDelta{} } // want `has no Delta`

// PtrDelta declares Delta on a pointer receiver: not a pure function
// over two snapshots, and absent from the value method set.
type PtrDelta struct{ N uint64 }

func (p *PtrDelta) Delta(prev PtrDelta) PtrDelta { return PtrDelta{} } // want `Delta must use a value receiver`

// PtrDeltaComponent returns it; the pair is broken from both ends.
type PtrDeltaComponent struct{}

func (p *PtrDeltaComponent) Snapshot() PtrDelta { return PtrDelta{} } // want `has no Delta`

// WideDelta takes an extra parameter.
type WideDelta struct{ N uint64 }

func (w WideDelta) Delta(prev WideDelta, scale int) WideDelta { return WideDelta{} } // want `Delta must have signature`

// CrossDelta differences against a different type.
type CrossDelta struct{ N uint64 }

func (c CrossDelta) Delta(prev Good) CrossDelta { return CrossDelta{} } // want `Delta must have signature`

// LossyDelta narrows the result type.
type LossyDelta struct{ N uint64 }

func (l LossyDelta) Delta(prev LossyDelta) uint64 { return l.N - prev.N } // want `Delta must have signature`
