// Command front ends own their signal-handling goroutines — exempt.
package main

import "fixture/internal/sim"

func main() {
	ch := make(chan int, 1)
	go sim.Receive(ch)
	ch <- 1
}
