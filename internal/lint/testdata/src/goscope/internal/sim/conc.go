// Fixture for the goscope analyzer: concurrency is confined to the
// engine's worker pool; simulation code stays single-threaded.
package sim

// work is a stand-in workload body.
func work() {}

// Spawn starts a goroutine and feeds a channel in simulation code — both
// flagged.
func Spawn(ch chan int) {
	go work() // want `\[goscope\] goroutine spawned in simulation code`
	ch <- 1   // want `\[goscope\] channel send in simulation code`
}

// Receive only drains a channel — receives carry no ordering hazard by
// themselves, not flagged.
func Receive(ch chan int) int {
	return <-ch
}

// Waived spawns with a justified annotation — suppressed.
func Waived() {
	//ptmlint:allow(goscope) fixture demonstrates the escape hatch
	go work()
}
