// The engine package owns the deterministic worker pool, so it may
// spawn goroutines and use channels freely.
package engine

// Fan runs fn on its own goroutine and reports completion.
func Fan(fn func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		fn()
		done <- struct{}{}
	}()
	return done
}
