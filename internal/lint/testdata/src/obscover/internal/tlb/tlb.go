// Fixture for the obscover analyzer: every uint64 counter a Snapshot
// exposes must be read by some RegisterObs registration, or it goes dark
// in telemetry.
package tlb

import "fixture/internal/obs"

// Stats is the snapshot of the TLB counters.
type Stats struct {
	Lookups uint64
	Hits    uint64
}

// TLB exposes lookups and hits but registers only hits — the dark
// counter is flagged.
type TLB struct {
	lookups uint64
	hits    uint64
	evicted uint64 // not in Snapshot, so not obscover's business
}

// Snapshot reads the counters at once.
func (t *TLB) Snapshot() Stats { return Stats{Lookups: t.lookups, Hits: t.hits} }

// RegisterObs registers the counters.
func (t *TLB) RegisterObs(r *obs.Registry, prefix string) { // want `\[obscover\] counter TLB\.lookups is exposed by Snapshot but never read`
	r.Counter(prefix+"hits", func() uint64 { return t.hits })
}

// Full registers every snapshot counter — nothing flagged.
type Full struct {
	lookups uint64
	hits    uint64
}

// Snapshot reads the counters at once.
func (f *Full) Snapshot() Stats { return Stats{Lookups: f.lookups, Hits: f.hits} }

// RegisterObs registers the counters, one directly and one through a
// helper — the call graph makes helper registrations count.
func (f *Full) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"lookups", func() uint64 { return f.lookups })
	f.registerMore(r, prefix)
}

// registerMore registers the rest of the counters.
func (f *Full) registerMore(r *obs.Registry, prefix string) {
	r.Counter(prefix+"hits", func() uint64 { return f.hits })
}

// WalkStats is a struct-valued counter group.
type WalkStats struct {
	Walks  uint64
	Faults uint64
}

// Walker snapshots a whole struct field: its uint64 leaves are expanded,
// and the unregistered one is flagged by its dotted path.
type Walker struct {
	stats WalkStats
}

// Snapshot reads the counters at once.
func (w *Walker) Snapshot() WalkStats { return w.stats }

// RegisterObs registers only one leaf of the stats struct.
func (w *Walker) RegisterObs(r *obs.Registry, prefix string) { // want `\[obscover\] counter Walker\.stats\.Faults is exposed by Snapshot but never read`
	r.Counter(prefix+"walks", func() uint64 { return w.stats.Walks })
}

// SnapshotOnly has no RegisterObs: its counters surface through a parent
// component, so it is out of obscover's scope.
type SnapshotOnly struct {
	count uint64
}

// Snapshot reads the counter.
func (s *SnapshotOnly) Snapshot() Stats { return Stats{Lookups: s.count} }
