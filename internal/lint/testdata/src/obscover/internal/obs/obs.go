// Stand-in for the real obs package: Registry is the named counter view.
package obs

// Registry holds named counter read closures.
type Registry struct {
	reads map[string]func() uint64
}

// Counter registers one named counter.
func (r *Registry) Counter(name string, read func() uint64) {
	if r.reads == nil {
		r.reads = map[string]func() uint64{}
	}
	r.reads[name] = read
}
