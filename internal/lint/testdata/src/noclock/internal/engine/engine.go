// The engine package owns the timing hook, so it may read the clock.
package engine

import "time"

// StartTimer mirrors the real engine's timing hook — exempt.
func StartTimer() func() time.Duration {
	t0 := time.Now()
	return func() time.Duration { return time.Since(t0) }
}
