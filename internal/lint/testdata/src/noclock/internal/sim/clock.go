// Fixture for the noclock analyzer: simulation packages must not read
// the wall clock directly, nor reach it through module helpers.
package sim

import (
	"time"

	"fixture/internal/engine"
)

// Stamp reads the clock inside a simulation package — flagged.
func Stamp() time.Time {
	return time.Now() // want `\[noclock\] time\.Now in simulation code`
}

// Elapsed measures with time.Since — flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `\[noclock\] time\.Since in simulation code`
}

// Waived reads the clock with a justified annotation — suppressed.
func Waived() time.Time {
	//ptmlint:allow(noclock) fixture demonstrates the escape hatch
	return time.Now()
}

// Sleepy uses other time functions — not flagged (only Now/Since read
// host state that leaks into measurements).
func Sleepy(d time.Duration) time.Time {
	return time.Unix(0, 0).Add(d)
}

// StampIndirect launders the clock through one module helper — the call
// is flagged with its witness chain.
func StampIndirect() time.Time {
	return Stamp() // want `\[noclock\] call to Stamp reaches time\.Now \(Stamp → time\.Now\)`
}

// Core reaches the clock two hops away — still flagged, chain included.
func Core() time.Time {
	return StampIndirect() // want `\[noclock\] call to StampIndirect reaches time\.Now \(StampIndirect → Stamp → time\.Now\)`
}

// Timed measures through the engine's timing hook — the engine is a
// taint barrier, so nothing is flagged.
func Timed() time.Duration {
	elapsed := engine.StartTimer()
	return elapsed()
}

// PingPong and PongPing are mutually recursive: the taint fixpoint must
// resolve the cycle rather than loop or miss it.
func PingPong(n int) time.Time {
	if n == 0 {
		return time.Now() // want `\[noclock\] time\.Now in simulation code`
	}
	return PongPing(n - 1) // want `\[noclock\] call to PongPing reaches time\.Now \(PongPing → PingPong → time\.Now\)`
}

// PongPing is the other half of the cycle.
func PongPing(n int) time.Time {
	return PingPong(n - 1) // want `\[noclock\] call to PingPong reaches time\.Now \(PingPong → time\.Now\)`
}
