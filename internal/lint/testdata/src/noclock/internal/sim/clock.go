// Fixture for the noclock analyzer: simulation packages must not read
// the wall clock directly.
package sim

import "time"

// Stamp reads the clock inside a simulation package — flagged.
func Stamp() time.Time {
	return time.Now() // want `\[noclock\] time\.Now in simulation code`
}

// Elapsed measures with time.Since — flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `\[noclock\] time\.Since in simulation code`
}

// Waived reads the clock with a justified annotation — suppressed.
func Waived() time.Time {
	//ptmlint:allow(noclock) fixture demonstrates the escape hatch
	return time.Now()
}

// Sleepy uses other time functions — not flagged (only Now/Since read
// host state that leaks into measurements).
func Sleepy(d time.Duration) time.Time {
	return time.Unix(0, 0).Add(d)
}
