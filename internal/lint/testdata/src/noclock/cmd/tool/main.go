// Command front ends print progress to humans, so they may read the
// clock — exempt.
package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now())
}
