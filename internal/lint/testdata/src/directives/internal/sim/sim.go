// Fixture for the directive audit: Run reports stale suppressions and
// allows naming unknown checks.
package sim

// Sum carries a live suppression: the allow matches a real detrange
// finding, so it is not stale.
func Sum(m map[int]int) int {
	total := 0
	//ptmlint:allow(detrange) commutative integer sum, order cannot reach the result
	for _, v := range m {
		total += v
	}
	return total
}

// Clean carries a stale suppression: nothing on the next line violates
// detrange, so the directive is reported.
func Clean() int {
	//ptmlint:allow(detrange) left behind after the loop was rewritten
	return 1
}

// Typo carries an allow naming a check no analyzer ships.
func Typo() int {
	//ptmlint:allow(nosuchcheck) the check name is wrong
	return 2
}
