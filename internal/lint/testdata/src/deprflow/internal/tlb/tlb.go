// Fixture for the deprflow analyzer: the package defining the deprecated
// compatibility surface.
package tlb

// Stats is the snapshot of the TLB counters.
type Stats struct {
	Lookups uint64
	Hits    uint64
}

// TLB is a toy TLB with counters.
type TLB struct {
	lookups uint64
	hits    uint64
}

// Snapshot reads the counters at once.
func (t *TLB) Snapshot() Stats { return Stats{Lookups: t.lookups, Hits: t.hits} }

// Lookups returns the number of probes performed.
//
// Deprecated: use Snapshot().Lookups.
func (t *TLB) Lookups() uint64 { return t.Snapshot().Lookups }

// Ratio returns the hit ratio.
//
// Deprecated: use Snapshot.
func (t *TLB) Ratio() float64 {
	// Delegation between deprecated wrappers is allowed: this body is
	// itself deprecated.
	if t.Lookups() == 0 {
		return 0
	}
	return float64(t.Snapshot().Hits) / float64(t.Lookups())
}

// LegacyConfig is the pre-Stats configuration shape.
//
// Deprecated: use Stats.
type LegacyConfig struct{}

// OldDefaultEntries is the historical default size.
//
// Deprecated: size explicitly.
var OldDefaultEntries = 64

// Adopt is NOT deprecated, so its use of a deprecated identifier inside
// the defining package is flagged like anywhere else internal.
func Adopt(t *TLB) uint64 {
	return t.Lookups() // want `\[deprflow\] use of deprecated Lookups: Deprecated: use Snapshot\(\)\.Lookups\.`
}
