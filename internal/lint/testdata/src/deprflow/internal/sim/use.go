// Fixture for the deprflow analyzer: internal code must use the
// replacement API the deprecation notice names.
package sim

import "fixture/internal/tlb"

// Probe uses the deprecated accessor — flagged.
func Probe(t *tlb.TLB) uint64 {
	return t.Lookups() // want `\[deprflow\] use of deprecated Lookups: Deprecated: use Snapshot\(\)\.Lookups\.`
}

// ProbeWell reads through the snapshot — fine.
func ProbeWell(t *tlb.TLB) uint64 {
	return t.Snapshot().Lookups
}

// Configure names the deprecated type — flagged.
func Configure() any {
	var c tlb.LegacyConfig // want `\[deprflow\] use of deprecated LegacyConfig: Deprecated: use Stats\.`
	return c
}

// Size reads the deprecated variable — flagged.
func Size() int {
	return tlb.OldDefaultEntries // want `\[deprflow\] use of deprecated OldDefaultEntries: Deprecated: size explicitly\.`
}
