// The examples tree is the compatibility surface deprecated wrappers
// exist for — uses here are exempt.
package main

import "fixture/internal/tlb"

func main() {
	t := &tlb.TLB{}
	_ = t.Lookups()
	_ = tlb.OldDefaultEntries
}
