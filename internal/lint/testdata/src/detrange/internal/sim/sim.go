// Fixture for the detrange analyzer: each `// want` comment asserts a
// finding on its line; lines without one must stay clean.
package sim

import "sort"

// Counts is a named map type; detrange sees through it to the underlying
// map.
type Counts map[string]int

// RawSum folds over a raw map range — flagged.
func RawSum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `\[detrange\] range over map m`
		total += v
	}
	return total
}

// NamedRange ranges a named map type — still flagged.
func NamedRange(c Counts) int {
	n := 0
	for range c { // want `\[detrange\] range over map c`
		n++
	}
	return n
}

// MultiStmt collects keys but does extra work in the loop — flagged (the
// extra statement could be order-sensitive).
func MultiStmt(m map[string]int) ([]string, int) {
	var keys []string
	total := 0
	for k, v := range m { // want `\[detrange\] range over map m`
		keys = append(keys, k)
		total += v
	}
	return keys, total
}

// SortedSum is the collect-then-sort idiom: the gather loop is allowed,
// the ordered loop ranges a slice.
func SortedSum(m map[string]int) int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Waived carries a justified annotation — suppressed.
func Waived(m map[string]int) int {
	total := 0
	//ptmlint:allow(detrange) commutative integer sum, order cannot reach the result
	for _, v := range m {
		total += v
	}
	return total
}

// SliceRange ranges a slice — never flagged.
func SliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
