// internal/arch is the one package allowed to spell the geometry out in
// raw literals — nothing here is flagged.
package arch

// PageShift and friends are defined from raw literals, as the real arch
// package does.
const (
	PageShift = 12
	PageSize  = 1 << 12
	PageMask  = PageSize - 1
)

// Split is raw address arithmetic, legal only here.
func Split(addr uint64) (page, off uint64) {
	return addr >> 12, addr & 0xFFF
}
