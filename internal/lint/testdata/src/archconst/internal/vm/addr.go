// Fixture for the archconst analyzer: raw address-geometry literals
// outside internal/arch are flagged with the named constant to use.
package vm

// PageOf shifts by a raw page shift — flagged.
func PageOf(addr uint64) uint64 {
	return addr >> 12 // want `\[archconst\] raw shift amount 12 .*arch\.PageShift`
}

// Offset masks with a raw page mask — flagged.
func Offset(addr uint64) uint64 {
	return addr & 0xFFF // want `\[archconst\] raw mask 0xFFF .*arch\.PageMask`
}

// LeafIndex combines a raw shift and a raw index mask — two findings on
// one line.
func LeafIndex(addr uint64) uint64 {
	return (addr >> 21) & 511 // want `\[archconst\] raw shift amount 21` `\[archconst\] raw mask 511`
}

// ZeroCost scales by the PT fan-out — flagged.
func ZeroCost(pages uint64) uint64 {
	return pages * 512 // want `\[archconst\] raw scale factor 512`
}

// WordOf divides by words-per-page — flagged.
func WordOf(cursor uint64) uint64 {
	return cursor / 512 % 4096 // want `\[archconst\] raw scale factor 512` `\[archconst\] raw scale factor 4096`
}

// MemSize is a byte-size expression, not address arithmetic: 512 on the
// left of a shift means 512MB — not flagged.
func MemSize() uint64 {
	return 512 << 20
}

// Waived keeps a raw literal with a justification — suppressed.
func Waived(addr uint64) uint64 {
	//ptmlint:allow(archconst) fixture demonstrates the escape hatch
	return addr >> 12
}
