// Fixture for the errwrap analyzer: error chains must survive wrapping
// (%w) and be matched structurally (errors.Is/As), never by identity or
// concrete type.
package trace

import (
	"errors"
	"fmt"
	"io"
)

// ErrBad is the package sentinel.
var ErrBad = errors.New("bad")

// ParseError is a typed error.
type ParseError struct{ Line int }

// Error describes the failure.
func (e *ParseError) Error() string { return fmt.Sprintf("parse error at line %d", e.Line) }

// Is implements the errors.Is protocol — identity comparison against the
// sentinel inside an Is method is the intended implementation, not
// flagged.
func (e *ParseError) Is(target error) bool { return target == ErrBad }

// WrapBadly flattens the chain with %v — flagged.
func WrapBadly(err error) error {
	return fmt.Errorf("reading: %v", err) // want `\[errwrap\] fmt\.Errorf formats error err with %v`
}

// WrapStringly flattens the chain with %s — flagged.
func WrapStringly(err error) error {
	return fmt.Errorf("reading: %s", err) // want `\[errwrap\] fmt\.Errorf formats error err with %s`
}

// WrapWell wraps with %w — fine, the chain stays matchable.
func WrapWell(err error) error {
	return fmt.Errorf("reading: %w", err)
}

// WrapTwice wraps two errors, both with %w — fine since Go 1.20.
func WrapTwice(a, b error) error {
	return fmt.Errorf("%w while handling %w", a, b)
}

// FormatValue formats a non-error operand — not errwrap's business.
func FormatValue(n int) error {
	return fmt.Errorf("bad count %d", n)
}

// CompareBadly tests identity against the sentinel — flagged.
func CompareBadly(err error) bool {
	return err == ErrBad // want `\[errwrap\] error compared with ==`
}

// CompareBadlyNeq is the same violation with != — flagged.
func CompareBadlyNeq(err error) bool {
	return err != io.EOF // want `\[errwrap\] error compared with !=`
}

// NilCheck compares to the nil literal — fine, that is presence, not
// identity matching.
func NilCheck(err error) bool { return err != nil }

// CompareWell matches structurally — fine.
func CompareWell(err error) bool { return errors.Is(err, ErrBad) }

// SwitchBadly switches over the error value: each non-nil case is an
// identity comparison in disguise — flagged per case.
func SwitchBadly(err error) int {
	switch err {
	case nil:
		return 0
	case io.EOF: // want `\[errwrap\] switch over error err compares by identity`
		return 1
	}
	return 2
}

// AssertBadly type-asserts on an error — flagged.
func AssertBadly(err error) bool {
	_, ok := err.(*ParseError) // want `\[errwrap\] type assertion on error err`
	return ok
}

// AssertWell matches the concrete type structurally — fine.
func AssertWell(err error) bool {
	var pe *ParseError
	return errors.As(err, &pe)
}

// TypeSwitchBadly type-switches on an error — flagged.
func TypeSwitchBadly(err error) int {
	switch err.(type) { // want `\[errwrap\] type switch on error err`
	case *ParseError:
		return 1
	}
	return 0
}

// Waived compares with a justified annotation — suppressed.
func Waived(err error) bool {
	//ptmlint:allow(errwrap) fixture demonstrates the escape hatch
	return err == ErrBad
}
